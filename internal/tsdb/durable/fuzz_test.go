package durable

// Fuzzed durable codecs (DESIGN.md §11). Everything here decodes bytes
// that normally sit behind a CRC32 frame — but recovery runs before
// anything can vouch for those CRCs being written by this software, so
// the decoders themselves must hold the line: never panic, never
// over-allocate on a hostile count, and never hand back garbage as a
// valid record.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/lineproto"
)

// frame wraps one payload in the WAL's [len][CRC32][payload] framing.
func frame(dst, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// FuzzWALReplaySegment feeds arbitrary bytes to recovery as the content
// of a WAL segment file. Recovery must never fail or panic — a torn or
// corrupt segment is an expected crash artifact, not an error — and the
// records it accepts, re-framed, must reproduce a byte prefix of the
// segment: replay stops at the first tear and never invents, reorders,
// or resequences data. A second recovery over the repaired log must see
// exactly the same records (the repair is stable).
func FuzzWALReplaySegment(f *testing.F) {
	intact := []byte(segMagic)
	intact = frame(intact, []byte("cpu user=1"))
	intact = frame(intact, bytes.Repeat([]byte{0xab}, 300))
	f.Add(append([]byte(nil), intact...))         // fully intact
	f.Add(intact[:len(intact)-3])                 // torn payload
	f.Add(append(intact, 0xde, 0xad, 0xbe, 0xef)) // trailing garbage
	corrupt := append([]byte(nil), intact...)
	corrupt[len(segMagic)+frameOverhead] ^= 0xff // flip a payload byte
	f.Add(corrupt)
	f.Add([]byte(segMagic))        // empty log
	f.Add([]byte("LMSWAL2\nxxxx")) // wrong magic version
	huge := []byte(segMagic)
	huge = binary.LittleEndian.AppendUint32(huge, 1<<31) // implausible length
	f.Add(binary.LittleEndian.AppendUint32(huge, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("segment larger than the fuzz budget")
		}
		fs := faultfs.New()
		if err := fs.MkdirAll("wal", 0o755); err != nil {
			t.Fatal(err)
		}
		h, err := fs.OpenFile("wal/wal-00000001.log", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(data); err != nil {
			t.Fatal(err)
		}
		h.Close()

		replay := func() [][]byte {
			var got [][]byte
			w, err := OpenWAL("wal", 0, Options{Fsync: FsyncOff, FS: fs}, func(p []byte) error {
				got = append(got, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				t.Fatalf("recovery failed on arbitrary segment content: %v", err)
			}
			w.Abort()
			return got
		}

		got := replay()
		rebuilt := []byte(segMagic)
		for _, p := range got {
			rebuilt = frame(rebuilt, p)
		}
		if bytes.HasPrefix(data, []byte(segMagic)) {
			if !bytes.HasPrefix(data, rebuilt) {
				t.Fatalf("replayed %d records that are not a byte prefix of the segment", len(got))
			}
		} else if len(got) != 0 {
			t.Fatalf("replayed %d records from a segment with no magic header", len(got))
		}

		again := replay()
		if len(again) != len(got) {
			t.Fatalf("second recovery replayed %d records, first saw %d", len(again), len(got))
		}
		for i := range got {
			if !bytes.Equal(again[i], got[i]) {
				t.Fatalf("second recovery changed record %d", i)
			}
		}
	})
}

// FuzzDecodeBatch: arbitrary bytes through the WAL record codec.
// DecodeBatch must never panic, and an accepted batch must survive the
// canonical re-encode/decode round trip point-for-point — otherwise a
// replayed WAL would rebuild different state than the one that was
// acknowledged.
func FuzzDecodeBatch(f *testing.F) {
	ts := time.Unix(0, 1439856000000000000).UTC()
	pts := []lineproto.Point{
		{Measurement: "cpu", Tags: map[string]string{"host": "a", "core": "3"},
			Fields: map[string]lineproto.Value{"user": lineproto.Float(1.5), "sys": lineproto.Int(-7)}, Time: ts},
		{Measurement: "disk", Fields: map[string]lineproto.Value{
			"label": lineproto.String(`root "fs"`), "full": lineproto.Bool(false)}},
	}
	seed := AppendBatch(nil, pts, 42)
	f.Add(append([]byte(nil), seed...))
	f.Add(seed[:len(seed)-2])           // torn tail
	f.Add([]byte{0xff, 0xff, 0xff})     // implausible count
	f.Add(binary.AppendUvarint(nil, 0)) // empty batch

	f.Fuzz(func(t *testing.T, payload []byte) {
		got, err := DecodeBatch(payload)
		if err != nil {
			return
		}
		enc := AppendBatch(nil, got, 42)
		rt, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if len(rt) != len(got) {
			t.Fatalf("round trip changed batch size: %d -> %d", len(got), len(rt))
		}
		for i := range got {
			if !rt[i].Equal(got[i]) {
				t.Fatalf("round trip changed point %d", i)
			}
		}
	})
}

// FuzzCheckpointDecode: arbitrary bytes through the checkpoint codec.
// decodeSnapshot must never panic, and an accepted snapshot must be a
// fixed point of the codec: encoding it and decoding the result must
// land on the identical byte string, so checkpoint contents cannot
// drift across save/load cycles.
func FuzzCheckpointDecode(f *testing.F) {
	snap := &Snapshot{Measurements: []Measurement{{
		Name:   "cpu",
		Fields: []FieldSchema{{Name: "user", Kind: lineproto.KindFloat}, {Name: "mode", Kind: lineproto.KindString}},
		Strs:   []string{"idle", "busy"},
		Series: []Series{{
			Tags: map[string]string{"host": "a"},
			Runs: []Run{{
				Ts: []int64{100, 200, 350},
				Cols: []Col{
					{Name: "user", Kind: lineproto.KindFloat, Floats: []float64{1, 2, 3}},
					{Name: "mode", Kind: lineproto.KindString, StrIDs: []uint32{0, 1, 0},
						Present: []uint64{0b101}},
				},
			}},
		}},
	}}}
	compSnap := &Snapshot{Measurements: []Measurement{{
		Name:   "cpu",
		Fields: []FieldSchema{{Name: "user", Kind: lineproto.KindFloat}},
		Series: []Series{{
			Tags: map[string]string{"host": "a"},
			Runs: []Run{{Comp: &CompRun{
				N: 3, MinTS: 100, MaxTS: 350, RawBytes: 48,
				Ts: []byte{1, 2, 3, 4, 5, 6, 7, 8, 0xaa},
				Cols: []CompCol{{Name: "user", Kind: lineproto.KindFloat,
					Data: []byte{9, 8, 7, 6, 5, 4, 3, 2, 0x55}}},
			}}},
		}},
	}}}
	for _, version := range []int{SnapV1, SnapV2} {
		f.Add(appendSnapshot(nil, snap, version), version)
		f.Add(appendSnapshot(nil, &Snapshot{}, version), version)
	}
	f.Add(appendSnapshot(nil, compSnap, SnapV2), SnapV2)
	f.Add([]byte{0x01}, SnapV2)             // one measurement, then nothing
	f.Add([]byte{0xff, 0xff, 0x7f}, SnapV1) // implausible measurement count

	f.Fuzz(func(t *testing.T, payload []byte, version int) {
		if version != SnapV1 {
			version = SnapV2 // the loader only ever passes known versions
		}
		s, err := decodeSnapshot(payload, version)
		if err != nil {
			return
		}
		// Accepted V1 payloads hold raw runs only, so re-encoding at the
		// same version always succeeds; the fixed-point property is per
		// version.
		enc := appendSnapshot(nil, s, version)
		s2, err := decodeSnapshot(enc, version)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if enc2 := appendSnapshot(nil, s2, version); !bytes.Equal(enc, enc2) {
			t.Fatalf("codec is not a fixed point: %d vs %d bytes", len(enc), len(enc2))
		}
	})
}
