package obs

// Distributed request tracing (DESIGN.md §14). A Trace is one request's
// journey through the stack — router ingest, cluster fan-out, storage
// phases — recorded as flat spans with nanosecond timings and key=value
// attributes. Traces ride a context.Context within a process and the
// X-Lms-Trace HTTP header across processes, so the router, a cluster
// coordinator and the chosen replica all stamp the same trace id; each
// process keeps its completed traces in a bounded TraceRing served as
// JSON on GET /debug/traces.
//
// The design goal is zero cost when tracing is off. Every producer
// guards on an atomic check (TraceRing.Enabled) before allocating a
// Trace, and every instrumentation point goes through nil-safe methods:
// TraceFrom on a context without a trace returns nil, and calling
// Start/Attr/End/Finish on a nil *Trace or *Span is a no-op that
// performs zero allocations — the hot paths carry bare pointer tests,
// not branches on configuration.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that propagates a trace id between the
// router, cluster coordinators and storage nodes.
const TraceHeader = "X-Lms-Trace"

// Attr is one key=value annotation on a span.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one timed operation inside a trace. A span is owned by the
// goroutine that started it until End; the trace serializes the set.
type Span struct {
	name    string
	startNS int64
	endNS   int64
	attrs   []Attr
}

// Trace is one in-flight request being recorded. Create through
// TraceRing.StartTrace; a nil *Trace is a valid no-op recorder.
type Trace struct {
	id   string
	name string

	ring    *TraceRing
	startNS int64

	mu    sync.Mutex
	spans []*Span
	done  bool
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span. Nil-safe: on a nil trace it returns a nil span,
// costing nothing.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{name: name, startNS: time.Now().UnixNano()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Attr annotates the span. Nil-safe; returns the span for chaining.
func (s *Span) Attr(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	return s
}

// AttrInt annotates the span with an integer value. Nil-safe.
func (s *Span) AttrInt(key string, val int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: strconv.FormatInt(val, 10)})
	return s
}

// End closes the span. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endNS = time.Now().UnixNano()
}

// Finish completes the trace and publishes it to its ring. Spans still
// open are closed at the finish time. Finishing twice (or finishing a
// nil trace) is a no-op.
func (t *Trace) Finish() {
	if t == nil || t.ring == nil {
		return
	}
	endNS := time.Now().UnixNano()
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	spans := t.spans
	t.mu.Unlock()
	d := TraceData{
		ID:         t.id,
		Name:       t.name,
		StartUnix:  t.startNS,
		DurationNS: endNS - t.startNS,
	}
	for _, sp := range spans {
		sd := SpanData{
			Name:    sp.name,
			StartNS: sp.startNS - t.startNS,
		}
		end := sp.endNS
		if end == 0 {
			end = endNS
		}
		sd.DurNS = end - sp.startNS
		sd.Attrs = sp.attrs
		d.Spans = append(d.Spans, sd)
	}
	sort.SliceStable(d.Spans, func(i, j int) bool { return d.Spans[i].StartNS < d.Spans[j].StartNS })
	t.ring.push(d)
}

// TraceData is one completed trace as stored in the ring and rendered on
// /debug/traces.
type TraceData struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	StartUnix  int64      `json:"start_unix_ns"`
	DurationNS int64      `json:"duration_ns"`
	Spans      []SpanData `json:"spans"`
}

// SpanData is one completed span; StartNS is the offset from the trace
// start.
type SpanData struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the first attribute with that key ("" when
// absent) — a test convenience.
func (s SpanData) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// TraceRing keeps the last N completed traces of one process, newest
// overwriting oldest, and serves them as JSON on GET /debug/traces
// (newest first; ?min_dur=10ms filters short traces, ?limit=n caps the
// count). A nil *TraceRing is valid and permanently disabled.
type TraceRing struct {
	enabled atomic.Bool
	idc     atomic.Uint64

	mu   sync.Mutex
	buf  []TraceData
	next int // next slot to overwrite
	n    int // occupied slots
}

// NewTraceRing returns an enabled ring holding the last capacity traces
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	r := &TraceRing{buf: make([]TraceData, capacity)}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether traces should be recorded — the one atomic
// check producers make before allocating anything. Nil-safe.
func (r *TraceRing) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// SetEnabled flips recording on or off.
func (r *TraceRing) SetEnabled(on bool) { r.enabled.Store(on) }

// StartTrace begins recording a trace. id continues an upstream trace
// (the X-Lms-Trace header); empty generates a fresh id. Returns nil —
// the no-op recorder — when the ring is nil or disabled.
func (r *TraceRing) StartTrace(name, id string) *Trace {
	if !r.Enabled() {
		return nil
	}
	if id == "" {
		id = r.newID()
	}
	return &Trace{id: id, name: name, ring: r, startNS: time.Now().UnixNano()}
}

// newID returns a 16-hex-digit random trace id (counter fallback if the
// system randomness fails).
func (r *TraceRing) newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t" + strconv.FormatUint(r.idc.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

func (r *TraceRing) push(d TraceData) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns completed traces newest-first, dropping traces
// shorter than minDur and capping the result at limit (<=0: no cap).
func (r *TraceRing) Snapshot(minDur time.Duration, limit int) []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, r.n)
	for i := 0; i < r.n; i++ {
		// newest is the slot just before next
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		d := r.buf[idx]
		if d.DurationNS < int64(minDur) {
			continue
		}
		out = append(out, d)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Find returns the newest completed trace with that id (test
// convenience).
func (r *TraceRing) Find(id string) (TraceData, bool) {
	for _, d := range r.Snapshot(0, 0) {
		if d.ID == id {
			return d, true
		}
	}
	return TraceData{}, false
}

// ServeHTTP renders the ring as a JSON array, newest first. Query
// parameters: min_dur (Go duration, e.g. 250ms) and limit.
func (r *TraceRing) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var minDur time.Duration
	if v := req.URL.Query().Get("min_dur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, "bad min_dur: "+err.Error(), http.StatusBadRequest)
			return
		}
		minDur = d
	}
	limit := 0
	if v := req.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
			return
		}
		limit = n
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(r.Snapshot(minDur, limit))
}

// --- context plumbing ------------------------------------------------------

type traceKey struct{}

// WithTrace attaches the trace to the context. Attaching nil returns ctx
// unchanged, so callers can pass through the disabled case for free.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil. The lookup key is a
// zero-size type, so the call allocates nothing.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// --- debug listener --------------------------------------------------------

// DebugMux builds the mux served on the -debug-addr listener of lms-db
// and lms-router: the net/http/pprof profiling endpoints plus (when ring
// is non-nil) GET /debug/traces. A separate mux keeps profiling off the
// ingest port.
func DebugMux(ring *TraceRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if ring != nil {
		mux.Handle("/debug/traces", ring)
	}
	return mux
}
