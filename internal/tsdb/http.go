package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/lineproto"
)

// Handler exposes a Store over the InfluxDB HTTP API. The LMS router, the
// host agents (Diamond, cronjobs with curl) and the dashboard agent all talk
// to this interface (paper Fig. 1):
//
//	POST /write?db=<name>[&precision=ns|u|ms|s|m|h]   line-protocol body
//	GET|POST /query?db=<name>&q=<influxql>            JSON results
//	GET /ping                                         204 No Content
//
// Unknown databases are created on first write, which keeps the
// "integration effort as low as possible" goal: an agent can start pushing
// before an administrator provisions anything.
//
// SELECTs served through /query run on the lock-light two-phase engine
// behind DB.Select (select.go): a query holds its shard's read lock only
// while snapshotting the matching point runs, so dashboard polling through
// this handler no longer stalls agents writing to the same shard, and
// repeated identical queries inside the cache TTL are answered from the
// query-result cache (cache.go).
type Handler struct {
	store *Store
	mux   *http.ServeMux

	// AutoCreate controls whether /write creates missing databases.
	AutoCreate bool
}

// NewHandler returns an HTTP handler serving the store.
func NewHandler(store *Store) *Handler {
	h := &Handler{store: store, AutoCreate: true}
	mux := http.NewServeMux()
	mux.HandleFunc("/write", h.handleWrite)
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/ping", h.handlePing)
	h.mux = mux
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handlePing(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("X-Influxdb-Version", "lms-tsdb-1.0")
	w.WriteHeader(http.StatusNoContent)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// precisionMult returns the multiplier converting a timestamp in the given
// precision to nanoseconds.
func precisionMult(p string) (int64, error) {
	switch p {
	case "", "ns", "n":
		return 1, nil
	case "u", "µ":
		return int64(time.Microsecond), nil
	case "ms":
		return int64(time.Millisecond), nil
	case "s":
		return int64(time.Second), nil
	case "m":
		return int64(time.Minute), nil
	case "h":
		return int64(time.Hour), nil
	default:
		return 0, fmt.Errorf("invalid precision %q", p)
	}
}

func (h *Handler) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	dbName := r.URL.Query().Get("db")
	if dbName == "" {
		httpError(w, http.StatusBadRequest, "missing db parameter")
		return
	}
	mult, err := precisionMult(r.URL.Query().Get("precision"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	db := h.store.DB(dbName)
	if db == nil {
		if !h.AutoCreate {
			httpError(w, http.StatusNotFound, "database %q not found", dbName)
			return
		}
		db = h.store.CreateDatabase(dbName)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	pts, err := lineproto.Parse(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if mult != 1 {
		for i := range pts {
			if !pts[i].Time.IsZero() {
				pts[i].Time = time.Unix(0, pts[i].Time.UnixNano()*mult).UTC()
			}
		}
	}
	if err := db.WriteBatch(pts); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// queryResponse is the top-level InfluxDB JSON document.
type queryResponse struct {
	Results []ExecResult `json:"results"`
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qstr, dbName string
	switch r.Method {
	case http.MethodGet:
		qstr = r.URL.Query().Get("q")
		dbName = r.URL.Query().Get("db")
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			httpError(w, http.StatusBadRequest, "parse form: %v", err)
			return
		}
		qstr = r.Form.Get("q")
		dbName = r.Form.Get("db")
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	if qstr == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	stmts, err := ParseQuery(qstr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := queryResponse{}
	for _, st := range stmts {
		res, err := Execute(h.store, dbName, st)
		if err != nil {
			res = ExecResult{Err: err.Error()}
		}
		resp.Results = append(resp.Results, res)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// Client is a minimal InfluxDB HTTP client used by the LMS components to
// write to and query a tsdb (or a real InfluxDB, or the router, which mimics
// this interface).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8086".
	BaseURL string
	// Database is the target database for writes and queries.
	Database string
	// HTTPClient optionally overrides http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	resp, err := c.httpClient().Get(c.BaseURL + "/ping")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tsdb: ping status %d", resp.StatusCode)
	}
	return nil
}

// WriteBody posts a raw line-protocol payload.
func (c *Client) WriteBody(body []byte) error {
	url := c.BaseURL + "/write?db=" + c.Database
	resp, err := c.httpClient().Post(url, "text/plain", readerOf(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("tsdb: write status %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// WritePoints encodes and posts a batch of points.
func (c *Client) WritePoints(pts []lineproto.Point) error {
	body, err := lineproto.Encode(pts)
	if err != nil {
		return err
	}
	return c.WriteBody(body)
}

// Query runs an InfluxQL statement and decodes the JSON response.
func (c *Client) Query(q string) ([]ExecResult, error) {
	url := c.BaseURL + "/query?db=" + c.Database + "&q=" + urlQueryEscape(q)
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("tsdb: query status %d: %s", resp.StatusCode, msg)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, err
	}
	for _, r := range qr.Results {
		if r.Err != "" {
			return qr.Results, fmt.Errorf("tsdb: %s", r.Err)
		}
	}
	return qr.Results, nil
}

func urlQueryEscape(s string) string {
	const hex = "0123456789ABCDEF"
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9',
			c == '-' || c == '_' || c == '.' || c == '~':
			b = append(b, c)
		case c == ' ':
			b = append(b, '+')
		default:
			b = append(b, '%', hex[c>>4], hex[c&0xf])
		}
	}
	return string(b)
}

// readerOf avoids importing bytes just for NewReader.
type byteReader struct {
	b []byte
	i int
}

func readerOf(b []byte) io.Reader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// ParseTimestamp converts an InfluxDB JSON time column entry (RFC3339 string
// or integer nanoseconds) back to time.Time. Helper for client-side result
// processing in the dashboard and analysis components.
func ParseTimestamp(v interface{}) (time.Time, error) {
	switch t := v.(type) {
	case string:
		ts, err := time.Parse(time.RFC3339Nano, t)
		if err != nil {
			return time.Time{}, err
		}
		return ts, nil
	case float64:
		return time.Unix(0, int64(t)).UTC(), nil
	case json.Number:
		ns, err := strconv.ParseInt(string(t), 10, 64)
		if err != nil {
			return time.Time{}, err
		}
		return time.Unix(0, ns).UTC(), nil
	default:
		return time.Time{}, fmt.Errorf("tsdb: unsupported time column type %T", v)
	}
}
