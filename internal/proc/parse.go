package proc

import (
	"fmt"
	"strconv"
	"strings"
)

// This file contains the parsers for the /proc snapshot formats. They are
// used by the collector plugins (and work equally on a real Linux /proc,
// which is why they tolerate more fields than the generator emits).

// LoadAvgValues holds the parsed /proc/loadavg.
type LoadAvgValues struct {
	Load1, Load5, Load15 float64
	Runnable, Total      int
}

// ParseLoadAvg parses /proc/loadavg content.
func ParseLoadAvg(text string) (LoadAvgValues, error) {
	fields := strings.Fields(text)
	if len(fields) < 4 {
		return LoadAvgValues{}, fmt.Errorf("proc: short loadavg %q", text)
	}
	var v LoadAvgValues
	var err error
	if v.Load1, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return v, fmt.Errorf("proc: loadavg: %w", err)
	}
	if v.Load5, err = strconv.ParseFloat(fields[1], 64); err != nil {
		return v, fmt.Errorf("proc: loadavg: %w", err)
	}
	if v.Load15, err = strconv.ParseFloat(fields[2], 64); err != nil {
		return v, fmt.Errorf("proc: loadavg: %w", err)
	}
	slash := strings.SplitN(fields[3], "/", 2)
	if len(slash) != 2 {
		return v, fmt.Errorf("proc: loadavg procs field %q", fields[3])
	}
	if v.Runnable, err = strconv.Atoi(slash[0]); err != nil {
		return v, fmt.Errorf("proc: loadavg: %w", err)
	}
	if v.Total, err = strconv.Atoi(slash[1]); err != nil {
		return v, fmt.Errorf("proc: loadavg: %w", err)
	}
	return v, nil
}

// StatValues holds the parsed /proc/stat CPU lines: the aggregate and the
// per-CPU breakdowns.
type StatValues struct {
	Aggregate CPUTimes
	CPUs      []CPUTimes
}

// ParseStat parses /proc/stat content.
func ParseStat(text string) (StatValues, error) {
	var out StatValues
	seenAgg := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "cpu") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 8 {
			return out, fmt.Errorf("proc: short stat line %q", line)
		}
		var c CPUTimes
		vals := make([]uint64, 7)
		for i := 0; i < 7; i++ {
			v, err := strconv.ParseUint(fields[i+1], 10, 64)
			if err != nil {
				return out, fmt.Errorf("proc: stat line %q: %w", line, err)
			}
			vals[i] = v
		}
		c.User, c.Nice, c.System, c.Idle, c.IOWait, c.IRQ, c.SoftIRQ =
			vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6]
		if fields[0] == "cpu" {
			out.Aggregate = c
			seenAgg = true
		} else {
			out.CPUs = append(out.CPUs, c)
		}
	}
	if !seenAgg {
		return out, fmt.Errorf("proc: no aggregate cpu line")
	}
	return out, nil
}

// MeminfoValues holds the parsed /proc/meminfo in KB.
type MeminfoValues struct {
	TotalKB, FreeKB, AvailableKB, BuffersKB, CachedKB uint64
}

// UsedKB derives the allocated memory size (the Sect. V metric).
func (m MeminfoValues) UsedKB() uint64 {
	used := m.TotalKB - m.FreeKB - m.BuffersKB - m.CachedKB
	if used > m.TotalKB {
		return 0
	}
	return used
}

// ParseMeminfo parses /proc/meminfo content.
func ParseMeminfo(text string) (MeminfoValues, error) {
	var out MeminfoValues
	seen := 0
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "MemTotal:":
			out.TotalKB = v
			seen++
		case "MemFree:":
			out.FreeKB = v
			seen++
		case "MemAvailable:":
			out.AvailableKB = v
		case "Buffers:":
			out.BuffersKB = v
		case "Cached:":
			out.CachedKB = v
		}
	}
	if seen < 2 {
		return out, fmt.Errorf("proc: meminfo missing MemTotal/MemFree")
	}
	return out, nil
}

// ParseNetDev parses /proc/net/dev into per-interface counters.
func ParseNetDev(text string) (map[string]NetCounters, error) {
	out := map[string]NetCounters{}
	for _, line := range strings.Split(text, "\n") {
		idx := strings.IndexByte(line, ':')
		if idx < 0 {
			continue // header lines
		}
		iface := strings.TrimSpace(line[:idx])
		fields := strings.Fields(line[idx+1:])
		if len(fields) < 16 {
			return nil, fmt.Errorf("proc: short net/dev line %q", line)
		}
		var c NetCounters
		var err error
		if c.RxBytes, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: net/dev %s: %w", iface, err)
		}
		if c.RxPackets, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: net/dev %s: %w", iface, err)
		}
		if c.TxBytes, err = strconv.ParseUint(fields[8], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: net/dev %s: %w", iface, err)
		}
		if c.TxPackets, err = strconv.ParseUint(fields[9], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: net/dev %s: %w", iface, err)
		}
		out[iface] = c
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("proc: empty net/dev")
	}
	return out, nil
}

// ParseDiskstats parses /proc/diskstats into per-device counters.
func ParseDiskstats(text string) (map[string]DiskCounters, error) {
	out := map[string]DiskCounters{}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 10 {
			continue
		}
		dev := fields[2]
		var c DiskCounters
		var err error
		if c.ReadIOs, err = strconv.ParseUint(fields[3], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: diskstats %s: %w", dev, err)
		}
		if c.ReadSectors, err = strconv.ParseUint(fields[5], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: diskstats %s: %w", dev, err)
		}
		if c.WriteIOs, err = strconv.ParseUint(fields[7], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: diskstats %s: %w", dev, err)
		}
		if c.WriteSectors, err = strconv.ParseUint(fields[9], 10, 64); err != nil {
			return nil, fmt.Errorf("proc: diskstats %s: %w", dev, err)
		}
		out[dev] = c
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("proc: empty diskstats")
	}
	return out, nil
}
