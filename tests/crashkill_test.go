package tests

// Process-level crash-kill harness (DESIGN.md §11). The in-process chaos
// run restarts the store gracefully; this harness removes that courtesy:
// it builds the real lms-db binary once, runs it as a child process with
// per-batch fsync and a tiny checkpoint/segment budget (so checkpoints
// fire constantly), and SIGKILLs it at random points under concurrent
// writer load — including mid-append, mid-rotation and mid-checkpoint.
// After every kill the database restarts on the same address and the
// writers resume. When the dust settles the harness opens the data
// directory in-process and asserts the durability contract end to end:
// every batch a writer got a 2xx for is fully present, byte-for-byte
// recovered through the real WAL + checkpoint recovery path.

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
)

// lmsDBBin is the real lms-db binary, built once by TestMain; empty when
// the go toolchain cannot build it (the tests then skip).
var lmsDBBin string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "lms-chaos-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: temp dir:", err)
		os.Exit(1)
	}
	bin := filepath.Join(tmp, "lms-db")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/lms-db")
	if out, err := cmd.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: cannot build lms-db (crash-kill tests will skip): %v\n%s", err, out)
	} else {
		lmsDBBin = bin
	}
	code := m.Run()
	_ = os.RemoveAll(tmp)
	os.Exit(code)
}

// child is one lms-db process incarnation.
type child struct {
	cmd   *exec.Cmd
	waitc chan error
}

// spawnDB starts an lms-db child on addr over dir and waits until /ping
// answers. The previous incarnation's socket may linger briefly, so a
// child that dies before becoming ready is respawned.
func spawnDB(t *testing.T, dir, addr string) *child {
	t.Helper()
	for attempt := 0; ; attempt++ {
		cmd := exec.Command(lmsDBBin,
			"-addr", addr, "-db", "lms", "-data-dir", dir, "-fsync", "batch",
			"-segment-bytes", "4096", "-checkpoint-bytes", "8192")
		if err := cmd.Start(); err != nil {
			t.Fatalf("start lms-db: %v", err)
		}
		c := &child{cmd: cmd, waitc: make(chan error, 1)}
		go func() { c.waitc <- cmd.Wait() }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			select {
			case err := <-c.waitc:
				if attempt >= 5 {
					t.Fatalf("lms-db died before becoming ready (attempt %d): %v", attempt, err)
				}
				goto respawn
			default:
			}
			if resp, err := http.Get("http://" + addr + "/ping"); err == nil {
				resp.Body.Close()
				if resp.StatusCode/100 == 2 {
					return c
				}
			}
			if time.Now().After(deadline) {
				c.kill()
				t.Fatalf("lms-db not ready on %s after 10s (attempt %d)", addr, attempt)
			}
			time.Sleep(20 * time.Millisecond)
		}
	respawn:
		time.Sleep(50 * time.Millisecond)
	}
}

// kill SIGKILLs the child — no shutdown handler, no final checkpoint, no
// WAL flush — and reaps it.
func (c *child) kill() {
	_ = c.cmd.Process.Kill()
	<-c.waitc
}

// TestChaosCrashKillNoAckedPointLost is the crash-kill run described in
// the package comment. Short mode rides in CI; LMS_CHAOS_LONG=1 scales
// it to the soak configuration.
func TestChaosCrashKillNoAckedPointLost(t *testing.T) {
	if lmsDBBin == "" {
		t.Skip("lms-db binary unavailable (go build failed)")
	}
	p := params()
	dir := t.TempDir()

	// Reserve an address for the child, then free it. A rebind race is
	// possible but spawnDB retries through it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	ch := spawnDB(t, dir, addr)
	dbURL := "http://" + addr

	stop := make(chan struct{})
	var wg sync.WaitGroup
	acked := make([]int, p.writers) // acked[w]: batches with a 2xx, covering seqs [0, acked[w]*batch)
	base := time.Unix(1_700_000_000, 0).UTC()
	for w := 0; w < p.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &tsdb.Client{BaseURL: dbURL, Database: "lms", HTTPClient: &http.Client{Timeout: 5 * time.Second}}
			for batchNo := 0; ; batchNo++ {
				pts := make([]lineproto.Point, p.batch)
				for i := range pts {
					seq := batchNo*p.batch + i
					pts[i] = lineproto.Point{
						Measurement: "crashkill",
						Tags:        map[string]string{"writer": fmt.Sprintf("w%d", w)},
						Fields:      map[string]lineproto.Value{"seq": lineproto.Int(int64(seq))},
						Time:        base.Add(time.Duration(seq) * time.Millisecond),
					}
				}
				// Retry the same batch across kills: the seq timestamps
				// make re-writes idempotent per series, so an un-acked
				// batch that secretly survived is harmless.
				for {
					if err := c.WritePoints(pts); err == nil {
						acked[w] = batchNo + 1
						break
					}
					select {
					case <-stop:
						return
					case <-time.After(10 * time.Millisecond):
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	// Kill schedule: SIGKILL at randomized offsets under load. The rng
	// seed is fixed so a CI failure replays the same schedule; wall-clock
	// jitter still varies the exact syscall the kill lands on.
	rng := rand.New(rand.NewSource(7))
	deadline := time.After(p.duration)
	for r := 0; r < p.restarts; r++ {
		gap := p.restGap/2 + time.Duration(rng.Int63n(int64(p.restGap)))
		select {
		case <-deadline:
		case <-time.After(gap):
		}
		ch.kill()
		ch = spawnDB(t, dir, addr)
	}
	<-deadline
	close(stop)
	wg.Wait()

	// The live incarnation must not have sealed its WAL: kills are not
	// disk faults, every incarnation gets a healthy log.
	doc := scrape(t, dbURL)
	if v, ok := metricValue(doc, `lms_db_wal_sealed{db="lms"}`); !ok || v != 0 {
		t.Errorf(`lms_db_wal_sealed{db="lms"} = %v (ok=%v), want 0`, v, ok)
	}

	// Final kill — no graceful shutdown — then recover in-process and
	// check the oracle against the acked batches.
	ch.kill()
	store, err := tsdb.OpenStore(tsdb.StoreOptions{
		Durability: tsdb.Durability{Dir: dir, Fsync: durable.FsyncPerBatch},
	})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer store.Close()
	fdb := store.DB("lms")
	if fdb == nil {
		t.Fatal("database lms not recovered")
	}
	series, err := fdb.Select(tsdb.Query{
		Measurement: "crashkill",
		Fields:      []string{"seq"},
		GroupByTags: []string{"writer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]map[int64]bool{}
	stored := 0
	for _, s := range series {
		w := s.Tags["writer"]
		if got[w] == nil {
			got[w] = map[int64]bool{}
		}
		for _, row := range s.Rows {
			for _, v := range row.Values {
				if v != nil {
					got[w][v.IntVal()] = true
					stored++
				}
			}
		}
	}
	ackedPoints := 0
	for w := 0; w < p.writers; w++ {
		name := fmt.Sprintf("w%d", w)
		ackedPoints += acked[w] * p.batch
		for seq := 0; seq < acked[w]*p.batch; seq++ {
			if !got[name][int64(seq)] {
				t.Errorf("writer %s: acked seq %d lost after crash-kill recovery", name, seq)
			}
		}
	}
	if ackedPoints == 0 {
		t.Fatal("no batch was ever acked; the harness exercised nothing")
	}
	t.Logf("crash-kill: %d writers, %d kills, %d acked points, %d stored",
		p.writers, p.restarts, ackedPoints, stored)
}
