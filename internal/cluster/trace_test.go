package cluster

// Distributed tracing across the ring (DESIGN.md §14): one trace id
// started at the coordinator must reappear, spans and all, in the ring
// of every replica the request touched — the X-Lms-Trace header is the
// only thread connecting them. The same harness pins the clustered
// EXPLAIN ANALYZE contract: routing profile appended, SELECT rows
// byte-identical.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/tsdb"
)

// traceRings installs one trace ring per node and returns them by peer
// URL.
func traceRings(h *harness) map[string]*obs.TraceRing {
	rings := map[string]*obs.TraceRing{}
	for url, tn := range h.nodes {
		ring := obs.NewTraceRing(16)
		tn.store.SetTraces(ring)
		rings[url] = ring
	}
	return rings
}

func spanNames(d obs.TraceData) map[string]obs.SpanData {
	out := map[string]obs.SpanData{}
	for _, sp := range d.Spans {
		out[sp.Name] = sp
	}
	return out
}

// TestClusterQueryTracePropagation: a routed query traced at the
// coordinator records the fan-out span naming the chosen replica, and
// that replica's own ring holds the same trace id with its handler and
// engine spans — the end-to-end coordinator→replica trace.
func TestClusterQueryTracePropagation(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 1})
	h.seed(t)
	rings := traceRings(h)

	coordRing := obs.NewTraceRing(16)
	tr := coordRing.StartTrace("coordinator.query", "")
	ctx := obs.WithTrace(context.Background(), tr)
	rsp, err := h.coord.Querier().Query(ctx, tsdb.Request{
		Database: "lms", RawQuery: "SELECT mean(value) FROM cpu GROUP BY hostname",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Err() != nil {
		t.Fatal(rsp.Err())
	}
	tr.Finish()

	d, ok := coordRing.Find(tr.ID())
	if !ok {
		t.Fatal("coordinator trace not recorded")
	}
	names := spanNames(d)
	if _, ok := names["cluster.query"]; !ok {
		t.Fatalf("missing cluster.query span: %+v", d.Spans)
	}
	node, ok := names["cluster.query.node"]
	if !ok {
		t.Fatalf("missing cluster.query.node span: %+v", d.Spans)
	}
	chosen := node.Attr("peer")
	if rings[chosen] == nil {
		t.Fatalf("chosen replica %q is not a cluster member", chosen)
	}
	if node.Attr("error") != "" {
		t.Fatalf("healthy query recorded error: %+v", node)
	}

	// The replica continued the same trace id in its own ring.
	rd, ok := rings[chosen].Find(tr.ID())
	if !ok {
		t.Fatalf("replica %s has no trace %s", chosen, tr.ID())
	}
	rnames := spanNames(rd)
	for _, want := range []string{"tsdb.http.query", "tsdb.select"} {
		if _, ok := rnames[want]; !ok {
			t.Fatalf("replica trace missing %q: %+v", want, rd.Spans)
		}
	}
	// No other node executed the routed statement.
	for url, ring := range rings {
		if url == chosen {
			continue
		}
		if _, ok := ring.Find(tr.ID()); ok {
			t.Fatalf("non-chosen replica %s also traced the query", url)
		}
	}
}

// TestClusterWriteTraceFanout: a traced replicated write records one
// cluster.write.node span per owner, and each owner's ring carries the
// same trace id down through the storage engine. With an owner down the
// hinted-handoff parking shows up as a cluster.hint.enqueue span.
func TestClusterWriteTraceFanout(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 1, HintsDir: t.TempDir(), DrainInterval: time.Hour})
	h.seed(t)
	rings := traceRings(h)
	sink, ok := h.coord.SinkFor("lms").(router.ContextSink)
	if !ok {
		t.Fatal("cluster sink does not implement router.ContextSink")
	}

	coordRing := obs.NewTraceRing(16)
	tr := coordRing.StartTrace("coordinator.write", "")
	ctx := obs.WithTrace(context.Background(), tr)
	if err := sink.WritePointsContext(ctx, testPoints("traced_m", "h1", 3)); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	d, ok := coordRing.Find(tr.ID())
	if !ok {
		t.Fatal("write trace not recorded")
	}
	if _, ok := spanNames(d)["cluster.write"]; !ok {
		t.Fatalf("missing cluster.write span: %+v", d.Spans)
	}
	owners := map[string]bool{}
	for _, id := range h.coord.owners("lms", "traced_m") {
		owners[id] = true
	}
	var fanout []string
	for _, sp := range d.Spans {
		if sp.Name == "cluster.write.node" {
			fanout = append(fanout, sp.Attr("peer"))
			if !owners[sp.Attr("peer")] {
				t.Fatalf("fan-out span names non-owner %q (owners %v)", sp.Attr("peer"), owners)
			}
			if sp.Attr("points") != "3" {
				t.Fatalf("fan-out span points attr %q", sp.Attr("points"))
			}
		}
	}
	if len(fanout) != 2 {
		t.Fatalf("want one fan-out span per owner (R=2), got %v", fanout)
	}
	// Each owner continued the trace across the wire into its engine.
	for _, url := range fanout {
		rd, ok := rings[url].Find(tr.ID())
		if !ok {
			t.Fatalf("owner %s has no trace %s", url, tr.ID())
		}
		rnames := spanNames(rd)
		for _, want := range []string{"tsdb.http.write", "tsdb.apply"} {
			if _, ok := rnames[want]; !ok {
				t.Fatalf("owner trace missing %q: %+v", want, rd.Spans)
			}
		}
	}

	// Outage: the parked share appears as a hint span naming the victim.
	victim := h.coord.owners("lms", "traced_m")[0]
	h.nodes[victim].down.Store(true)
	tr2 := coordRing.StartTrace("coordinator.write", "")
	if err := sink.WritePointsContext(obs.WithTrace(context.Background(), tr2), testPoints("traced_m", "h1", 2)); err != nil {
		t.Fatal(err)
	}
	tr2.Finish()
	d2, ok := coordRing.Find(tr2.ID())
	if !ok {
		t.Fatal("outage write trace not recorded")
	}
	var hinted, errored bool
	for _, sp := range d2.Spans {
		switch sp.Name {
		case "cluster.hint.enqueue":
			hinted = sp.Attr("peer") == victim && sp.Attr("error") == ""
		case "cluster.write.node":
			if sp.Attr("peer") == victim && sp.Attr("error") != "" {
				errored = true
			}
		}
	}
	if !hinted || !errored {
		t.Fatalf("outage trace missing hint/error spans (hinted=%v errored=%v): %+v", hinted, errored, d2.Spans)
	}
}

// TestClusterExplainAnalyze is 3-node acceptance: EXPLAIN ANALYZE through
// the coordinator returns the SELECT's rows byte-identical to the
// single-node oracle once the explain_analyze* series are stripped, and
// the appended routing profile names a real replica.
func TestClusterExplainAnalyze(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 1})
	h.seed(t)
	ctx := context.Background()
	oracle := tsdb.LocalQuerier{Store: h.oracle}

	for _, sel := range []string{
		"SELECT mean(value) FROM cpu GROUP BY time(10s), hostname",
		"SELECT * FROM cpu",
		"SELECT value FROM ghost_measurement",
	} {
		want, err := oracle.Query(ctx, tsdb.Request{Database: "lms", RawQuery: sel, Epoch: "ns"})
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.coord.Querier().Query(ctx, tsdb.Request{Database: "lms", RawQuery: "EXPLAIN ANALYZE " + sel, Epoch: "ns"})
		if err != nil {
			t.Fatal(err)
		}
		if got.Err() != nil {
			t.Fatal(got.Err())
		}

		var kept, profiles []tsdb.ResultSeries
		for _, s := range got.Results[0].Series {
			if strings.HasPrefix(s.Name, tsdb.ExplainSeriesName) {
				profiles = append(profiles, s)
				continue
			}
			kept = append(kept, s)
		}
		stripped := got
		stripped.Results = []tsdb.ExecResult{got.Results[0]}
		stripped.Results[0].Series = kept

		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(stripped)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("%q: clustered EXPLAIN ANALYZE changed the rows:\n got: %s\nwant: %s", sel, gotJSON, wantJSON)
		}

		// Two profiles: the replica's storage profile and the
		// coordinator's routing profile.
		if len(profiles) != 2 {
			t.Fatalf("%q: want storage + routing profiles, got %+v", sel, profiles)
		}
		var routing *tsdb.ResultSeries
		for i := range profiles {
			if profiles[i].Name == tsdb.ExplainClusterSeriesName {
				routing = &profiles[i]
			}
		}
		if routing == nil {
			t.Fatalf("%q: no %s series", sel, tsdb.ExplainClusterSeriesName)
		}
		vals := map[string]interface{}{}
		for _, row := range routing.Values {
			vals[row[0].(string)] = row[1]
		}
		chosen, _ := vals["chosen_replica"].(string)
		if h.nodes[chosen] == nil {
			t.Fatalf("%q: chosen_replica %q not a cluster member (profile %v)", sel, chosen, vals)
		}
		if vals["replication"] != 2.0 && vals["replication"] != 2 {
			t.Fatalf("%q: replication %v", sel, vals["replication"])
		}
	}
}

// TestClusterExplainAnalyzeFailover: with the first-choice replica down
// the routing profile records the failed attempt and the failover target
// that answered.
func TestClusterExplainAnalyzeFailover(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 1})
	h.seed(t)
	victim := h.coord.owners("lms", "cpu")[0]
	h.nodes[victim].down.Store(true)

	got, err := h.coord.Querier().Query(context.Background(),
		tsdb.Request{Database: "lms", RawQuery: "EXPLAIN ANALYZE SELECT mean(value) FROM cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Err() != nil {
		t.Fatal(got.Err())
	}
	var routing *tsdb.ResultSeries
	for i, s := range got.Results[0].Series {
		if s.Name == tsdb.ExplainClusterSeriesName {
			routing = &got.Results[0].Series[i]
		}
	}
	if routing == nil {
		t.Fatal("no routing profile")
	}
	vals := map[string]interface{}{}
	for _, row := range routing.Values {
		vals[row[0].(string)] = row[1]
	}
	if vals["attempts"] != 2 && vals["attempts"] != 2.0 {
		t.Fatalf("attempts %v (profile %v)", vals["attempts"], vals)
	}
	if chosen, _ := vals["chosen_replica"].(string); chosen == victim || h.nodes[chosen] == nil {
		t.Fatalf("chosen_replica %q after killing %q", chosen, victim)
	}
	if status, _ := vals["attempt_1_status"].(string); status == "ok" {
		t.Fatalf("dead first attempt reported ok: %v", vals)
	}
}
