// Package cluster turns N independent lms-db nodes into one clustered
// time-series database (DESIGN.md §12): a consistent-hash ring assigns
// every (database, measurement) pair to R owning replicas, the write path
// fans each batch to all owners and acknowledges at write-quorum W with a
// durable hinted-handoff queue absorbing failed replicas, and a
// DistributedQuerier implements tsdb.Querier by routing each statement to
// the ring slice owning its measurement (metadata statements are fanned to
// every node and union-merged). The paper's stack runs multi-host with a
// single InfluxDB behind the router; this package is that topology pushed
// to production scale while keeping the stack's core invariant: query
// answers are byte-identical whether they come from one node or the ring.
package cluster

import (
	"sort"
	"strconv"
)

// fnv64a hashes s with FNV-1a (the hash family the tsdb shard router uses,
// tsdb.go) and finishes with a 64-bit avalanche mix. Plain FNV-1a barely
// diffuses its high bits on short, near-identical inputs — exactly what
// virtual-node labels ("url#0", "url#1", …) are — which clumps a node's
// ring positions and skews ownership by 3-4x; the finalizer restores the
// uniform spread consistent hashing depends on.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// PlacementKey is the ring key of one (database, measurement) pair. The
// NUL separator keeps ("a", "bc") and ("ab", "c") distinct. Placement is
// per measurement, not per series: a measurement lives whole on its owner
// replicas, so any single replica can answer any SELECT over it exactly —
// the property that keeps clustered answers byte-identical to a single
// node (querier.go).
func PlacementKey(db, measurement string) string {
	return db + "\x00" + measurement
}

// DefaultVirtualNodes is the number of ring positions each node occupies.
// 128 virtual nodes keep the ownership imbalance of a small cluster within
// a few percent while the full ring stays under a few KiB.
const DefaultVirtualNodes = 128

type ringPoint struct {
	hash uint64
	node int32 // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a fixed member list.
// Every participant (each lms-db node, the router) builds its ring from
// the same -cluster-peers list, so placement is deterministic cluster-wide
// without any coordination traffic.
type Ring struct {
	nodes  []string // sorted, deduplicated member ids (base URLs)
	points []ringPoint
	gen    uint64
}

// NewRing builds the ring over the given member ids (the nodes' HTTP base
// URLs). The input is sorted and deduplicated, so every process handed the
// same member set — in any order — builds the identical ring. vnodes <= 0
// selects DefaultVirtualNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for _, n := range sorted {
		if n == "" {
			continue
		}
		if len(uniq) == 0 || uniq[len(uniq)-1] != n {
			uniq = append(uniq, n)
		}
	}
	r := &Ring{nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			h := fnv64a(n + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit hash collision between two nodes' virtual points is
		// astronomically unlikely, but placement must still be identical on
		// every process, so ties break on the node id, never on input order.
		return r.nodes[r.points[a].node] < r.nodes[r.points[b].node]
	})
	// The generation is a digest of the membership: two processes agree on
	// placement iff they agree on this number, so it is exported as a gauge
	// and compared across /metrics when debugging a misrouted cluster.
	g := uint64(14695981039346656037)
	for _, n := range uniq {
		for i := 0; i < len(n); i++ {
			g ^= uint64(n[i])
			g *= 1099511628211
		}
		g ^= uint64(0xff)
		g *= 1099511628211
	}
	r.gen = g
	return r
}

// Nodes returns the sorted member ids.
func (r *Ring) Nodes() []string { return r.nodes }

// Generation identifies the membership: equal generations imply identical
// placement. Exposed as the lms_cluster_ring_generation gauge.
func (r *Ring) Generation() uint64 { return r.gen }

// Owners returns the n distinct nodes owning key, in ring order starting
// at the key's position. n is capped at the member count. The first owner
// is the primary; the rest are the replicas a write fans to and a read
// fails over to.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.nodes) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		n = 1
	}
	h := fnv64a(key)
	// First ring point clockwise of h (wrapping).
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[int32]struct{}, n)
	for c := 0; c < len(r.points) && len(owners) < n; c++ {
		p := r.points[(i+c)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		owners = append(owners, r.nodes[p.node])
	}
	return owners
}
