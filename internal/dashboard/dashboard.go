// Package dashboard implements the LMS dashboard agent and web viewer
// (paper Sect. III-D).
//
// In the original stack the visualization front-end is Grafana, but
// "Grafana is not configured manually": a Grafana Agent generates the
// dashboards out of templates, based on available databases and the metrics
// in them. Dashboard, row and panel templates are JSON documents with
// substitution variables; the agent selects panel templates by the
// measurements present for the hosts participating in a job, combines them
// into a full dashboard, and adjusts settings (time range, job tag filters)
// for the current job. As a header, analysis results of the job are
// presented "to see badly behaving jobs on the initial view" (Fig. 2).
//
// This reproduction keeps the agent logic intact — template selection,
// JSON assembly, per-job adjustment — and replaces the Grafana renderer
// with a small built-in web viewer (viewer.go) that draws the same panels
// as unicode sparkline graphs.
package dashboard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/template"
	"time"

	"repro/internal/analysis"
	"repro/internal/tsdb"
)

// Dashboard is the generated document, a compatible subset of Grafana's
// dashboard JSON model.
type Dashboard struct {
	Title       string       `json:"title"`
	UID         string       `json:"uid"`
	Tags        []string     `json:"tags,omitempty"`
	Time        TimeRange    `json:"time"`
	Annotations []Annotation `json:"annotations,omitempty"`
	Rows        []Row        `json:"rows"`
}

// TimeRange is the dashboard's visible window.
type TimeRange struct {
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
}

// Annotation marks an event overlay (job start/end, user events).
type Annotation struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

// Row groups panels.
type Row struct {
	Title  string  `json:"title"`
	Panels []Panel `json:"panels"`
}

// Panel is one visualization.
type Panel struct {
	ID      int      `json:"id"`
	Title   string   `json:"title"`
	Type    string   `json:"type"` // "graph", "table", "text"
	Span    int      `json:"span"`
	Unit    string   `json:"unit,omitempty"`
	Targets []Target `json:"targets,omitempty"`
	Content string   `json:"content,omitempty"` // for text panels
}

// Target is one data query of a panel.
type Target struct {
	Query  string `json:"query"`
	Legend string `json:"legend,omitempty"`
}

// PanelTemplate is a JSON panel description with text/template
// placeholders. Context fields available during execution:
//
//	{{.JobID}} {{.User}} {{.Measurement}} {{.Field}} {{.StartNS}} {{.EndNS}}
type PanelTemplate struct {
	// Measurement selects this template when the measurement is present
	// for the job's hosts; "*" is the generic fallback.
	Measurement string
	// JSON is the panel body with placeholders.
	JSON string
}

// templateContext is the data available to panel templates.
type templateContext struct {
	JobID       string
	User        string
	Measurement string
	Field       string
	StartNS     int64
	EndNS       int64
}

// Agent generates dashboards from templates and database content. It
// discovers measurements, fields and participating hosts through the tsdb
// query API (SHOW statements over a Querier), so it generates the same
// dashboards whether the database is in-process or a remote lms-db.
type Agent struct {
	Querier tsdb.Querier
	// Database is the database the agent inspects.
	Database string
	// Templates are tried in order; the first whose Measurement matches is
	// used for that measurement. Defaults to BuiltinTemplates().
	Templates []PanelTemplate
	// Evaluator produces the analysis header; nil skips the header.
	Evaluator *analysis.Evaluator
	// HiddenMeasurements are never turned into panels (internal series).
	HiddenMeasurements []string
}

func (a *Agent) templates() []PanelTemplate {
	if a.Templates != nil {
		return a.Templates
	}
	return BuiltinTemplates()
}

func (a *Agent) hidden(meas string) bool {
	for _, h := range a.HiddenMeasurements {
		if h == meas {
			return true
		}
	}
	return meas == "events"
}

// measurementsForJob discovers which measurements carry data for the job's
// hosts: the template-selection input ("Based on the hostnames
// participating in the job, the agent selects the templates").
func (a *Agent) measurementsForJob(ctx context.Context, job analysis.JobMeta) ([]string, error) {
	hostSet := map[string]bool{}
	for _, h := range job.Nodes {
		hostSet[h] = true
	}
	all, err := tsdb.QueryStrings(ctx, a.Querier, a.Database, tsdb.ShowMeasurementsStatement(), 0)
	if err != nil {
		return nil, fmt.Errorf("dashboard: list measurements: %w", err)
	}
	// One batched request for every measurement's hostname values: against
	// a remote lms-db this is a single round trip instead of one per
	// measurement.
	var candidates []string
	var stmts []tsdb.Statement
	for _, meas := range all {
		if a.hidden(meas) {
			continue
		}
		candidates = append(candidates, meas)
		stmts = append(stmts, tsdb.ShowTagValuesStatement(meas, "hostname"))
	}
	perMeas, err := tsdb.QueryStringsBatch(ctx, a.Querier, a.Database, stmts, 1)
	if err != nil {
		return nil, fmt.Errorf("dashboard: hosts per measurement: %w", err)
	}
	var out []string
	for i, meas := range candidates {
		for _, host := range perMeas[i] {
			if hostSet[host] {
				out = append(out, meas)
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func (a *Agent) findTemplate(meas string) (PanelTemplate, bool) {
	var fallback PanelTemplate
	haveFallback := false
	for _, t := range a.templates() {
		if t.Measurement == meas {
			return t, true
		}
		if t.Measurement == "*" && !haveFallback {
			fallback = t
			haveFallback = true
		}
	}
	return fallback, haveFallback
}

// renderPanel executes one panel template.
func renderPanel(tpl PanelTemplate, ctx templateContext, id int) (Panel, error) {
	t, err := template.New(tpl.Measurement).Parse(tpl.JSON)
	if err != nil {
		return Panel{}, fmt.Errorf("dashboard: template %q: %w", tpl.Measurement, err)
	}
	var buf bytes.Buffer
	if err := t.Execute(&buf, ctx); err != nil {
		return Panel{}, fmt.Errorf("dashboard: execute %q: %w", tpl.Measurement, err)
	}
	var p Panel
	if err := json.Unmarshal(buf.Bytes(), &p); err != nil {
		return Panel{}, fmt.Errorf("dashboard: template %q produced invalid JSON: %w", tpl.Measurement, err)
	}
	p.ID = id
	if p.Span == 0 {
		p.Span = 6
	}
	return p, nil
}

// GenerateJobDashboard builds the per-job dashboard (context-free
// convenience form of GenerateJobDashboardContext).
func (a *Agent) GenerateJobDashboard(job analysis.JobMeta) (*Dashboard, error) {
	return a.GenerateJobDashboardContext(context.Background(), job)
}

// GenerateJobDashboardContext builds the per-job dashboard: analysis
// header, one row per measurement with per-field graph panels, and the
// job's event annotations. Metadata discovery and the evaluation header
// run through the agent's Querier under ctx.
func (a *Agent) GenerateJobDashboardContext(ctx context.Context, job analysis.JobMeta) (*Dashboard, error) {
	if a.Querier == nil {
		return nil, fmt.Errorf("dashboard: agent has no querier")
	}
	end := job.End
	if end.IsZero() {
		end = time.Now()
	}
	d := &Dashboard{
		Title: fmt.Sprintf("Job %s", job.ID),
		UID:   "job-" + job.ID,
		Tags:  []string{"lms", "job"},
		Time:  TimeRange{From: job.Start, To: end},
		Annotations: []Annotation{{
			Name:  "job events",
			Query: fmt.Sprintf("SELECT text FROM events WHERE jobid = '%s'", job.ID),
		}},
	}

	// Header row: online job evaluation (Fig. 2).
	if a.Evaluator != nil {
		rep, err := a.Evaluator.EvaluateContext(ctx, job)
		if err != nil {
			return nil, err
		}
		d.Rows = append(d.Rows, Row{
			Title: "Job evaluation",
			Panels: []Panel{{
				ID:      1,
				Title:   "Online job evaluation",
				Type:    "text",
				Span:    12,
				Content: rep.FormatTable(),
			}},
		})
	}

	id := 100
	ctxBase := templateContext{
		JobID:   job.ID,
		User:    job.User,
		StartNS: job.Start.UnixNano(),
		EndNS:   end.UnixNano(),
	}
	measurements, err := a.measurementsForJob(ctx, job)
	if err != nil {
		return nil, err
	}
	// Field keys of all selected measurements in one batched request.
	fieldStmts := make([]tsdb.Statement, len(measurements))
	for i, meas := range measurements {
		fieldStmts[i] = tsdb.ShowFieldKeysStatement(meas)
	}
	fieldsPerMeas, err := tsdb.QueryStringsBatch(ctx, a.Querier, a.Database, fieldStmts, 0)
	if err != nil {
		return nil, fmt.Errorf("dashboard: field keys: %w", err)
	}
	for mi, meas := range measurements {
		tpl, ok := a.findTemplate(meas)
		if !ok {
			continue
		}
		row := Row{Title: meas}
		for _, field := range fieldsPerMeas[mi] {
			ctx := ctxBase
			ctx.Measurement = meas
			ctx.Field = field
			p, err := renderPanel(tpl, ctx, id)
			if err != nil {
				return nil, err
			}
			id++
			row.Panels = append(row.Panels, p)
		}
		if len(row.Panels) > 0 {
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// GenerateAdminDashboard builds the administrator main view: "all currently
// running jobs with small thumbnails of the job's graphs and further
// information".
func (a *Agent) GenerateAdminDashboard(jobs []analysis.JobMeta) (*Dashboard, error) {
	d := &Dashboard{
		Title: "Running jobs",
		UID:   "admin-running",
		Tags:  []string{"lms", "admin"},
	}
	row := Row{Title: "Jobs"}
	id := 1
	for _, job := range jobs {
		end := job.End
		var endNS int64
		if end.IsZero() {
			endNS = time.Now().UnixNano()
		} else {
			endNS = end.UnixNano()
		}
		row.Panels = append(row.Panels, Panel{
			ID:    id,
			Title: fmt.Sprintf("Job %s (%s, %d nodes)", job.ID, job.User, len(job.Nodes)),
			Type:  "graph",
			Span:  3, // thumbnail size
			Targets: []Target{{
				Query: fmt.Sprintf(
					"SELECT mean(dp_mflop_s) FROM likwid_mem_dp WHERE jobid = '%s' AND time >= %d AND time <= %d GROUP BY time(60s)",
					job.ID, job.Start.UnixNano(), endNS),
				Legend: "DP MFLOP/s",
			}},
		})
		id++
	}
	d.Rows = append(d.Rows, row)
	return d, nil
}

// MarshalIndent renders the dashboard as Grafana-style JSON.
func (d *Dashboard) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Validate checks structural invariants of a generated dashboard: unique
// panel ids, non-empty queries on graph panels, sane time range.
func (d *Dashboard) Validate() error {
	if d.Title == "" {
		return fmt.Errorf("dashboard: empty title")
	}
	if !d.Time.From.IsZero() && !d.Time.To.IsZero() && d.Time.To.Before(d.Time.From) {
		return fmt.Errorf("dashboard: inverted time range")
	}
	seen := map[int]bool{}
	for _, row := range d.Rows {
		for _, p := range row.Panels {
			if seen[p.ID] {
				return fmt.Errorf("dashboard: duplicate panel id %d", p.ID)
			}
			seen[p.ID] = true
			if (p.Type == "graph" || p.Type == "histogram") && len(p.Targets) == 0 {
				return fmt.Errorf("dashboard: %s panel %d has no targets", p.Type, p.ID)
			}
			for _, tgt := range p.Targets {
				if strings.TrimSpace(tgt.Query) == "" {
					return fmt.Errorf("dashboard: panel %d has empty query", p.ID)
				}
				if _, err := tsdb.ParseQuery(tgt.Query); err != nil {
					return fmt.Errorf("dashboard: panel %d query: %w", p.ID, err)
				}
			}
		}
	}
	return nil
}
