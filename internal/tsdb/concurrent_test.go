package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
)

// The tests in this file exercise the sharded write path under goroutine
// fan-out and are meant to run under the race detector (go test -race).

func concPoint(meas, host string, i int) lineproto.Point {
	return lineproto.Point{
		Measurement: meas,
		Tags:        map[string]string{"hostname": host},
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i))},
		Time:        time.Unix(int64(i), 0),
	}
}

// TestDBConcurrentWriters checks that parallel writers on distinct and
// shared measurements lose no points across shards.
func TestDBConcurrentWriters(t *testing.T) {
	t.Parallel()
	const (
		writers = 8
		batches = 25
		perB    = 20
	)
	db := NewDBShards("lms", 4)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Even writers share one hot measurement, odd writers get
			// their own, so both the contended and the spread shard
			// paths are exercised.
			meas := "shared"
			if w%2 == 1 {
				meas = fmt.Sprintf("meas%02d", w)
			}
			host := fmt.Sprintf("host%02d", w)
			for bi := 0; bi < batches; bi++ {
				pts := make([]lineproto.Point, perB)
				for i := range pts {
					pts[i] = concPoint(meas, host, bi*perB+i)
				}
				if err := db.WriteBatch(pts); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := db.PointCount(), writers*batches*perB; got != want {
		t.Fatalf("PointCount = %d, want %d", got, want)
	}
	// Every odd writer's measurement must be visible, plus the shared one.
	meas := db.Measurements()
	if want := writers/2 + 1; len(meas) != want {
		t.Fatalf("Measurements = %v, want %d entries", meas, want)
	}
	for _, m := range meas {
		res, err := db.Select(Query{Measurement: m})
		if err != nil {
			t.Fatalf("Select(%s): %v", m, err)
		}
		if len(res) == 0 {
			t.Fatalf("Select(%s): no series", m)
		}
	}
}

// TestDBConcurrentWriteReadDrop runs writers, readers and a dropper
// side by side: the store must stay consistent (no lost updates outside the
// dropped window, no panics, race-free under -race).
func TestDBConcurrentWriteReadDrop(t *testing.T) {
	t.Parallel()
	const (
		writers = 4
		readers = 4
		rounds  = 50
	)
	db := NewDBShards("lms", 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			meas := fmt.Sprintf("cpu%02d", w)
			for i := 0; i < rounds; i++ {
				pts := []lineproto.Point{
					concPoint(meas, "h1", i),
					concPoint(meas, "h2", i),
				}
				if err := db.WriteBatch(pts); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.PointCount()
				db.Measurements()
				db.TagValues("", "hostname")
				meas := fmt.Sprintf("cpu%02d", r%writers)
				if _, err := db.Select(Query{
					Measurement: meas,
					Agg:         AggMean,
					Every:       10 * time.Second,
				}); err != nil && err != ErrNoMeasurement {
					t.Errorf("select: %v", err)
					return
				}
				db.FieldKeys(meas)
				db.TagKeys(meas)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Drops roughly the first half of each writer's window while
			// writes are still in flight.
			db.DropBefore(time.Unix(int64(rounds/2), 0))
		}
	}()

	// Wait for the writers first, then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	// After a final drop the surviving points are exactly the second half
	// of each series.
	db.DropBefore(time.Unix(int64(rounds/2), 0))
	want := writers * 2 * (rounds - rounds/2)
	if got := db.PointCount(); got != want {
		t.Fatalf("PointCount after drop = %d, want %d", got, want)
	}
}

// TestDBConcurrentRetentionWrites checks the lazy per-shard pruning under
// concurrent batch writes.
func TestDBConcurrentRetentionWrites(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 2)
	db.SetRetention(time.Hour)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			meas := fmt.Sprintf("m%d", w)
			for i := 0; i < 100; i++ {
				if err := db.WritePoint(concPoint(meas, "h", i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if db.PointCount() == 0 {
		t.Fatal("no points survived retention writes")
	}
}

// TestRetentionPrunesIdleShards guards the retention sweep: a write to one
// shard must expire old data living in *other* shards, not only its own.
func TestRetentionPrunesIdleShards(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 4)
	db.SetRetention(time.Hour)
	old := concPoint("oldmeas", "h", 0)
	old.Time = time.Unix(100, 0)
	if err := db.WritePoint(old); err != nil {
		t.Fatal(err)
	}
	// Pick a measurement that hashes into a different shard, then write a
	// point two hours newer there.
	fresh := "fresh"
	for i := 0; db.shardIndex(fresh) == db.shardIndex("oldmeas"); i++ {
		fresh = fmt.Sprintf("fresh%d", i)
	}
	db.lastPrune.Store(0) // bypass the once-per-second throttle
	p := concPoint(fresh, "h", 0)
	p.Time = time.Unix(100, 0).Add(2 * time.Hour)
	if err := db.WritePoint(p); err != nil {
		t.Fatal(err)
	}
	for _, m := range db.Measurements() {
		if m == "oldmeas" {
			t.Fatalf("expired measurement in an idle shard was not pruned: %v", db.Measurements())
		}
	}
	if got := db.PointCount(); got != 1 {
		t.Fatalf("PointCount = %d, want 1 (only the fresh point)", got)
	}
}

// TestDBConcurrentSelectVsWriteBatchOneShard drives the lock-light read
// path head-on against the write path inside a single lock domain: one
// shard, every query and every batch on the same measurements, raw /
// windowed / total / percentile query shapes, in-order and out-of-order
// batches (the copy-on-reorder path). Must be race-clean and the final
// state consistent.
func TestDBConcurrentSelectVsWriteBatchOneShard(t *testing.T) {
	t.Parallel()
	const (
		writers = 4
		readers = 4
		batches = 40
		perB    = 25
	)
	db := NewDBShards("lms", 1)
	db.SetQueryCacheTTL(0) // exercise the engine, not the cache
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			meas := fmt.Sprintf("cpu%02d", w%2) // two measurements, one shard
			host := fmt.Sprintf("h%d", w)
			for bi := 0; bi < batches; bi++ {
				pts := make([]lineproto.Point, perB)
				for i := range pts {
					n := bi*perB + i
					if bi%3 == 2 {
						// Every third batch arrives in reverse order to
						// force the merge-into-fresh-array write path under
						// concurrent snapshots.
						n = bi*perB + (perB - 1 - i)
					}
					pts[i] = concPoint(meas, host, n)
				}
				if err := db.WriteBatch(pts); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	queries := []Query{
		{Measurement: "cpu00"},
		{Measurement: "cpu01", Limit: 10},
		{Measurement: "cpu00", Agg: AggMean, Every: 10 * time.Second, GroupByTags: []string{"hostname"}},
		{Measurement: "cpu01", Agg: AggPercentile, Percentile: 95},
		{Measurement: "cpu00", Agg: AggSum, Start: time.Unix(100, 0), End: time.Unix(800, 0)},
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(r+i)%len(queries)]
				res, err := db.Select(q)
				if err != nil && err != ErrNoMeasurement {
					t.Errorf("select: %v", err)
					return
				}
				// Snapshot consistency: rows of every series must be sorted
				// even while writers reorder concurrently.
				for _, s := range res {
					for j := 1; j < len(s.Rows); j++ {
						if s.Rows[j].Time.Before(s.Rows[j-1].Time) {
							t.Errorf("unsorted snapshot rows in %v", s.Tags)
							return
						}
					}
				}
			}
		}(r)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	if got, want := db.PointCount(), writers*batches*perB; got != want {
		t.Fatalf("PointCount = %d, want %d", got, want)
	}
	res, err := db.Select(Query{Measurement: "cpu00", Agg: AggCount, GroupByTags: []string{"hostname"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res {
		if got := s.Rows[0].Values[0].IntVal(); got != batches*perB {
			t.Fatalf("series %v count = %d, want %d", s.Tags, got, batches*perB)
		}
	}
}

// TestStoreConcurrentCreateDrop hammers the store-level database map.
func TestStoreConcurrentCreateDrop(t *testing.T) {
	t.Parallel()
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("db%d", i%5)
				db := s.CreateDatabase(name)
				if err := db.WritePoint(concPoint("cpu", "h", i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				s.DB(name)
				s.Databases()
				if w == 0 && i%10 == 9 {
					s.DropDatabase(name)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestWriteBatchOutOfOrder guards the per-series append buffer: a batch
// whose timestamps interleave and regress must still read back fully
// sorted.
func TestWriteBatchOutOfOrder(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 4)
	var pts []lineproto.Point
	// Two series interleaved, timestamps deliberately regressing.
	for _, i := range []int{5, 3, 9, 1, 7, 2} {
		pts = append(pts, concPoint("cpu", "h1", i), concPoint("cpu", "h2", 100-i))
	}
	if err := db.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
	// A second batch older than everything already stored.
	if err := db.WriteBatch([]lineproto.Point{concPoint("cpu", "h1", 0)}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Select(Query{Measurement: "cpu", GroupByTags: []string{"hostname"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("series = %d, want 2", len(res))
	}
	for _, s := range res {
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i].Time.Before(s.Rows[i-1].Time) {
				t.Fatalf("series %v rows not sorted: %v before %v",
					s.Tags, s.Rows[i].Time, s.Rows[i-1].Time)
			}
		}
	}
}

// TestShardDistribution sanity-checks that multiple measurements spread
// over more than one shard (FNV should not degenerate).
func TestShardDistribution(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 4)
	if db.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", db.ShardCount())
	}
	used := map[int]bool{}
	for i := 0; i < 32; i++ {
		used[db.shardIndex(fmt.Sprintf("measurement%02d", i))] = true
	}
	if len(used) < 2 {
		t.Fatalf("32 measurements landed in %d shard(s)", len(used))
	}
}
