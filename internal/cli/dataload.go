package cli

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// JobSource is the shared job-data plumbing of lms-analyze and
// lms-dashboard: exactly one of DataPath (offline line-protocol dump) or
// DBURL (remote lms-db over HTTP) selects the mode, plus the common
// window and node overrides. The mains validate the exactly-one rule
// against their flag set; Open assumes it holds.
type JobSource struct {
	DataPath string // line-protocol dump file (offline mode)
	DBURL    string // base URL of a running lms-db (remote mode)
	DBName   string
	JobID    string
	StartArg string // RFC3339 override; "" = mode default
	EndArg   string // RFC3339 override; "" = mode default
	NodesArg string // comma-separated override; "" = discover
	// OfflineEndPad widens the dump-derived end of the window (the
	// dashboard pads one second so panels include the last sample). An
	// explicit EndArg replaces the padded value.
	OfflineEndPad time.Duration
}

// Open resolves the source into a querier over the job's data, the node
// list (jobid-scoped discovery unless NodesArg is set) and the evaluation
// window. Offline mode defaults the window to the dump's extent; remote
// mode to the last hour.
func (s JobSource) Open(ctx context.Context) (qr tsdb.Querier, nodes []string, start, end time.Time, err error) {
	if s.DBURL != "" {
		qr = &tsdb.Client{BaseURL: strings.TrimRight(s.DBURL, "/"), Database: s.DBName}
		end = time.Now().UTC().Truncate(time.Second)
		start = end.Add(-time.Hour)
	} else {
		if qr, start, end, err = loadDump(s.DataPath, s.DBName); err != nil {
			return nil, nil, start, end, err
		}
		end = end.Add(s.OfflineEndPad)
	}
	if s.StartArg != "" {
		if start, err = time.Parse(time.RFC3339, s.StartArg); err != nil {
			return nil, nil, start, end, fmt.Errorf("bad -start: %w", err)
		}
	}
	if s.EndArg != "" {
		if end, err = time.Parse(time.RFC3339, s.EndArg); err != nil {
			return nil, nil, start, end, fmt.Errorf("bad -end: %w", err)
		}
	}
	if s.NodesArg != "" {
		nodes = strings.Split(s.NodesArg, ",")
	} else {
		nodes, err = analysis.DiscoverJobNodes(ctx, qr, s.DBName, s.JobID)
		if err != nil {
			return nil, nil, start, end, fmt.Errorf("discover nodes: %w", err)
		}
	}
	if len(nodes) == 0 {
		return nil, nil, start, end, fmt.Errorf("no nodes given and no hostname tags found")
	}
	return qr, nodes, start, end, nil
}

// loadDump reads a line-protocol dump file into a fresh single-database
// store and returns a local querier over it plus the dump's time extent.
func loadDump(path, dbName string) (qr tsdb.Querier, start, end time.Time, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, start, end, err
	}
	pts, err := lineproto.Parse(raw)
	if err != nil {
		return nil, start, end, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(pts) == 0 {
		return nil, start, end, fmt.Errorf("no points in %s", path)
	}
	store := tsdb.NewStore()
	if err := store.CreateDatabase(dbName).WriteBatch(pts); err != nil {
		return nil, start, end, fmt.Errorf("load %s: %w", path, err)
	}
	start, end = pts[0].Time, pts[0].Time
	for _, p := range pts {
		if p.Time.Before(start) {
			start = p.Time
		}
		if p.Time.After(end) {
			end = p.Time
		}
	}
	return tsdb.LocalQuerier{Store: store}, start, end, nil
}
