package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkO3_TSDBWriteInOrder    	   41702	     29058 ns/op	   3441417 points/s	    9683 B/op	       3 allocs/op
BenchmarkQ1_SelectWindowParallel-4 	     1272	    964476 ns/op	   5010049 max-write-stall-ns	    414733 points/s	      2074 queries/s	 1120638 B/op	    9475 allocs/op
PASS
ok  	repro	6.882s
`

func TestParseBench(t *testing.T) {
	doc, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(doc.Results))
	}
	r0 := doc.Results[0]
	if r0.Name != "BenchmarkO3_TSDBWriteInOrder" || r0.Runs != 41702 ||
		r0.NsPerOp != 29058 || r0.BytesPerOp != 9683 || r0.AllocsPerOp != 3 {
		t.Fatalf("r0 = %+v", r0)
	}
	if got := r0.Metrics["points/s"]; got != 3441417 {
		t.Fatalf("r0 points/s = %v", got)
	}
	r1 := doc.Results[1]
	if r1.Name != "BenchmarkQ1_SelectWindowParallel" || r1.Procs != 4 {
		t.Fatalf("r1 name/procs = %q/%d", r1.Name, r1.Procs)
	}
	if r1.Metrics["queries/s"] != 2074 || r1.Metrics["max-write-stall-ns"] != 5010049 {
		t.Fatalf("r1 metrics = %+v", r1.Metrics)
	}
	if doc.Env["cpu"] == "" || doc.Env["goos"] != "linux" {
		t.Fatalf("env = %+v", doc.Env)
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-in", in, "-o", out}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("round-tripped results = %d", len(doc.Results))
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX\tnotanumber\n")); err == nil {
		t.Fatal("expected error for bad iteration count")
	}
}
