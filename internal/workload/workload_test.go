package workload

import (
	"math"
	"testing"

	"repro/internal/hpm"
)

func TestProfileRatesBasic(t *testing.T) {
	p := busyProfile(2000, 1.5)
	p.AVXDP = 1e9
	p.MemBytes = 6.4e9
	p.PowerWatts = 20
	r := p.Rates(2200)
	if r["CPU_CLK_UNHALTED_CORE"] != 2e9 {
		t.Errorf("cycles %v", r["CPU_CLK_UNHALTED_CORE"])
	}
	if r["INSTR_RETIRED_ANY"] != 3e9 {
		t.Errorf("instr %v", r["INSTR_RETIRED_ANY"])
	}
	if r["CPU_CLK_UNHALTED_REF"] != 2.2e9 {
		t.Errorf("ref %v", r["CPU_CLK_UNHALTED_REF"])
	}
	// 6.4 GB/s => 100M lines/s, split 2:1.
	rd, wr := r["CAS_COUNT_RD"], r["CAS_COUNT_WR"]
	if math.Abs(rd+wr-1e8) > 1 {
		t.Errorf("cas total %v", rd+wr)
	}
	if math.Abs(rd/wr-2) > 0.01 {
		t.Errorf("cas split %v/%v", rd, wr)
	}
	if r["PWR_PKG_ENERGY"] != 20e6 {
		t.Errorf("power %v", r["PWR_PKG_ENERGY"])
	}
	if r["BR_INST_RETIRED_ALL_BRANCHES"] != 3e9*0.08 {
		t.Errorf("branches %v", r["BR_INST_RETIRED_ALL_BRANCHES"])
	}
}

func TestIdleProfileRates(t *testing.T) {
	p := IdleProfile()
	if !p.Idle() {
		t.Fatal("not idle")
	}
	r := p.Rates(2200)
	if len(r) != 1 || r["PWR_PKG_ENERGY"] != idleWatts*1e6 {
		t.Fatalf("idle rates %v", r)
	}
	// Fully zero profile: no events at all.
	if rates := (CPUProfile{}).Rates(2200); rates != nil {
		t.Fatalf("zero profile rates %v", rates)
	}
}

func TestRatesValidAgainstMachine(t *testing.T) {
	// Every event emitted by every model must exist in the hpm catalog.
	m, err := hpm.NewMachine(hpm.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{
		NewTriad(8, 100),
		NewDGEMM(8, 100),
		&LoadImbalance{Cores: 8, RuntimeSecs: 100},
		&MemoryLeak{Cores: 4, RuntimeSecs: 100, StartKB: 1 << 20, LeakKBPerS: 1024},
		NewIdleBreak(8, 100, 30, 60),
		NewMiniMD(8, 131072, 1000),
	}
	for _, w := range models {
		for _, tt := range []float64{0, 25, 45, 99} {
			for core := 0; core < 8; core++ {
				p := w.ProfileAt(tt, core)
				if err := m.SetRates(core, p.Rates(2200)); err != nil {
					t.Fatalf("%s t=%v core=%d: %v", w.Name(), tt, core, err)
				}
			}
		}
	}
}

func TestValidateModels(t *testing.T) {
	models := []Model{
		NewTriad(4, 60),
		NewDGEMM(4, 60),
		&LoadImbalance{Cores: 4, RuntimeSecs: 60},
		&MemoryLeak{Cores: 4, RuntimeSecs: 60, StartKB: 1 << 20, LeakKBPerS: 100},
		NewIdleBreak(4, 60, 20, 40),
		NewMiniMD(4, 65536, 500),
	}
	for _, m := range models {
		if err := Validate(m, 4); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
	bad := &Triad{Cores: 4, RuntimeSecs: 0}
	if err := Validate(bad, 4); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestTriadShape(t *testing.T) {
	w := NewTriad(4, 100)
	p := w.ProfileAt(50, 0)
	if p.Idle() {
		t.Fatal("active core idle")
	}
	// Bandwidth-bound: operational intensity well below 1 flop/byte.
	flops := p.ScalarDP + 2*p.SSEDP + 4*p.AVXDP
	if oi := flops / p.MemBytes; oi > 0.5 {
		t.Errorf("triad operational intensity %v too high", oi)
	}
	// Cores beyond the active set and times outside the run are idle.
	if !w.ProfileAt(50, 7).Idle() {
		t.Error("inactive core busy")
	}
	if !w.ProfileAt(101, 0).Idle() {
		t.Error("busy after end")
	}
	if w.MemUsedKB(50) == 0 || w.MemUsedKB(101) != 0 {
		t.Error("memory model")
	}
}

func TestDGEMMShape(t *testing.T) {
	w := NewDGEMM(4, 100)
	p := w.ProfileAt(50, 0)
	flops := p.ScalarDP + 2*p.SSEDP + 4*p.AVXDP
	if flops < 1e10 {
		t.Errorf("dgemm flops %v too low", flops)
	}
	if oi := flops / p.MemBytes; oi < 10 {
		t.Errorf("dgemm operational intensity %v too low", oi)
	}
	// DGEMM must out-compute triad by a large factor.
	tr := NewTriad(4, 100).ProfileAt(50, 0)
	trFlops := tr.ScalarDP + 2*tr.SSEDP + 4*tr.AVXDP
	if flops/trFlops < 5 {
		t.Errorf("dgemm/triad flop ratio %v", flops/trFlops)
	}
}

func TestLoadImbalanceShape(t *testing.T) {
	w := &LoadImbalance{Cores: 4, RuntimeSecs: 100}
	p0 := w.ProfileAt(50, 0)
	p1 := w.ProfileAt(50, 1)
	f0 := p0.ScalarDP + 2*p0.SSEDP + 4*p0.AVXDP
	f1 := p1.ScalarDP + 2*p1.SSEDP + 4*p1.AVXDP
	if f0 == 0 || f1 != 0 {
		t.Fatalf("flops %v %v", f0, f1)
	}
	// The spinning cores still burn cycles.
	if p1.Idle() {
		t.Fatal("spinner idle")
	}
	if p1.BranchFrac <= p0.BranchFrac {
		t.Error("spinner should be branch-heavy")
	}
}

func TestMemoryLeakGrowth(t *testing.T) {
	w := &MemoryLeak{Cores: 4, RuntimeSecs: 100, StartKB: 1000, LeakKBPerS: 10}
	if w.MemUsedKB(0) != 1000 {
		t.Error("start")
	}
	if w.MemUsedKB(50) != 1500 {
		t.Errorf("mid %d", w.MemUsedKB(50))
	}
	if w.MemUsedKB(100) <= w.MemUsedKB(50) {
		t.Error("not monotone")
	}
}

func TestIdleBreakWindows(t *testing.T) {
	w := NewIdleBreak(4, 100, 30, 60)
	// Before break: triad profile with real bandwidth.
	if p := w.ProfileAt(10, 0); p.MemBytes == 0 {
		t.Error("pre-break idle")
	}
	// During break: cores 1..3 halted, core 0 nearly idle.
	if p := w.ProfileAt(45, 1); !p.Idle() {
		t.Error("break core busy")
	}
	p0 := w.ProfileAt(45, 0)
	if p0.Idle() {
		t.Error("core 0 should tick along")
	}
	if p0.MemBytes != 0 {
		t.Error("break should have no memory traffic")
	}
	// After break: back to work.
	if p := w.ProfileAt(80, 2); p.MemBytes == 0 {
		t.Error("post-break idle")
	}
}

func TestMiniMDIterations(t *testing.T) {
	w := NewMiniMD(8, 131072, 1000)
	if w.IterationsAt(-1) != 0 || w.IterationsAt(0) != 0 {
		t.Error("start")
	}
	if got := w.IterationsAt(w.Duration()); got != 1000 {
		t.Errorf("end iterations %d", got)
	}
	if got := w.IterationsAt(w.Duration() * 10); got != 1000 {
		t.Errorf("clamp %d", got)
	}
	half := w.IterationsAt(w.Duration() / 2)
	if half < 450 || half > 550 {
		t.Errorf("half %d", half)
	}
}

func TestMiniMDSamples(t *testing.T) {
	w := NewMiniMD(8, 131072, 1000)
	all := w.Samples(0, w.Duration())
	if len(all) != 10 {
		t.Fatalf("samples %d", len(all))
	}
	for i, s := range all {
		if s.Iteration != (i+1)*100 {
			t.Errorf("sample %d iteration %d", i, s.Iteration)
		}
		if s.Runtime100 <= 0 {
			t.Errorf("sample %d runtime %v", i, s.Runtime100)
		}
		if s.Temp < 0.6 || s.Temp > 1.6 {
			t.Errorf("sample %d temp %v out of physical range", i, s.Temp)
		}
		if s.Pressure < 5 || s.Pressure > 7 {
			t.Errorf("sample %d pressure %v", i, s.Pressure)
		}
		if s.Energy > -4 || s.Energy < -5 {
			t.Errorf("sample %d energy %v", i, s.Energy)
		}
	}
	// Windowed emission matches full emission.
	var windowed []Sample
	step := w.Duration() / 7
	for t0 := 0.0; t0 < w.Duration(); t0 += step {
		windowed = append(windowed, w.Samples(t0, math.Min(t0+step, w.Duration()))...)
	}
	if len(windowed) != len(all) {
		t.Fatalf("windowed %d vs full %d", len(windowed), len(all))
	}
	// Empty/backward windows emit nothing.
	if w.Samples(5, 5) != nil || w.Samples(9, 3) != nil {
		t.Error("degenerate windows emitted samples")
	}
}

func TestMiniMDTemperatureEquilibrates(t *testing.T) {
	w := NewMiniMD(8, 131072, 2000)
	early, _, _ := w.StateAt(0)
	late, _, _ := w.StateAt(2000)
	if early < 1.3 || early > 1.6 {
		t.Errorf("initial temp %v, want ~1.44", early)
	}
	if late < 0.65 || late > 0.85 {
		t.Errorf("equilibrated temp %v, want ~0.72", late)
	}
}

func TestMiniMDRebuildSpikes(t *testing.T) {
	w := NewMiniMD(8, 131072, 10000)
	base := w.SecsPer100
	spiked := 0
	for block := 1; block <= 100; block++ {
		if w.Runtime100At(block*100) > base*1.08 {
			spiked++
		}
	}
	if spiked < 10 || spiked > 40 {
		t.Errorf("spiked blocks %d out of 100", spiked)
	}
}

func TestMiniMDProfilePhases(t *testing.T) {
	w := NewMiniMD(8, 131072, 10000)
	// Find a force-phase time and a rebuild-phase time.
	var force, rebuild CPUProfile
	foundF, foundR := false, false
	for it := 0; it < 40 && !(foundF && foundR); it++ {
		tt := (float64(it) + 0.5) / 100 * w.SecsPer100
		p := w.ProfileAt(tt, 0)
		if it%20 >= 18 {
			rebuild, foundR = p, true
		} else if it%20 < 17 {
			force, foundF = p, true
		}
	}
	if !foundF || !foundR {
		t.Fatal("phases not found")
	}
	if rebuild.MemBytes <= force.MemBytes {
		t.Error("rebuild should be more memory intensive")
	}
	fFlops := force.ScalarDP + 2*force.SSEDP
	rFlops := rebuild.ScalarDP + 2*rebuild.SSEDP
	if rFlops >= fFlops {
		t.Error("rebuild should compute less")
	}
}

func TestMiniMDScaling(t *testing.T) {
	small := NewMiniMD(8, 65536, 1000)
	big := NewMiniMD(8, 262144, 1000)
	if big.SecsPer100 <= small.SecsPer100 {
		t.Error("more atoms should be slower")
	}
	wide := NewMiniMD(16, 65536, 1000)
	if wide.SecsPer100 >= small.SecsPer100 {
		t.Error("more cores should be faster")
	}
	if big.MemUsedKB(1) <= small.MemUsedKB(1) {
		t.Error("memory should scale with atoms")
	}
}

func TestJitterBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := jitter(float64(i)*0.37, 0.1)
		if v < 0.9-1e-9 || v > 1.1+1e-9 {
			t.Fatalf("jitter %v out of bounds", v)
		}
	}
	// Deterministic.
	if jitter(1.5, 0.2) != jitter(1.5, 0.2) {
		t.Fatal("jitter not deterministic")
	}
}

func TestHelpers(t *testing.T) {
	ps := []CPUProfile{{ScalarDP: 1, SSEDP: 1, AVXDP: 1, MemBytes: 10}, {MemBytes: 5}}
	if TotalDPFlopRate(ps) != 1+2+4 {
		t.Error("flop rate")
	}
	if TotalMemBandwidth(ps) != 15 {
		t.Error("bandwidth")
	}
}

func TestEndToEndHPMFlopsMatchModel(t *testing.T) {
	// Drive a machine with the DGEMM model and verify the measured
	// DP MFLOP/s matches the model's configured rate.
	m, _ := hpm.NewMachine(hpm.Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 1, BaseClockMHz: 2200})
	w := NewDGEMM(4, 100)
	for core := 0; core < 4; core++ {
		if err := m.SetRates(core, w.ProfileAt(1, core).Rates(2200)); err != nil {
			t.Fatal(err)
		}
	}
	sess, _ := hpm.NewSession(m, "FLOPS_DP", []int{0, 1, 2, 3})
	_ = sess.Start()
	_ = m.Advance(10)
	_ = sess.Stop()
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Sum("DP MFLOP/s")
	want := 4 * w.FlopsPerSec / 1e6
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("measured %v MFLOP/s, model %v", got, want)
	}
}
