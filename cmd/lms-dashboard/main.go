// Command lms-dashboard is the dashboard agent in offline mode: from a
// line-protocol dump it generates the Grafana-model dashboard JSON for a
// job out of the panel templates (paper Sect. III-D) and optionally renders
// the panels as text graphs.
//
// Usage:
//
//	lms-dashboard -data job.lp -job 42 -user alice -nodes node01,node02 \
//	              -render
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/dashboard"
	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lms-dashboard: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	dataPath := flag.String("data", "", "line-protocol dump file (required)")
	jobID := flag.String("job", "", "job id (required)")
	user := flag.String("user", "", "job owner")
	nodesArg := flag.String("nodes", "", "comma-separated node list (default: hostnames in the data)")
	render := flag.Bool("render", false, "render the panels as text instead of emitting JSON")
	flag.Parse()
	if *dataPath == "" || *jobID == "" {
		flag.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(*dataPath)
	if err != nil {
		fatalf("%v", err)
	}
	pts, err := lineproto.Parse(raw)
	if err != nil {
		fatalf("parse: %v", err)
	}
	if len(pts) == 0 {
		fatalf("empty dump")
	}
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	if err := db.WritePoints(pts); err != nil {
		fatalf("load: %v", err)
	}

	var nodes []string
	if *nodesArg != "" {
		nodes = strings.Split(*nodesArg, ",")
	} else {
		nodes = db.TagValues("", "hostname")
	}
	start, end := pts[0].Time, pts[0].Time
	for _, p := range pts {
		if p.Time.Before(start) {
			start = p.Time
		}
		if p.Time.After(end) {
			end = p.Time
		}
	}

	agent := &dashboard.Agent{DB: db, Evaluator: &analysis.Evaluator{DB: db}}
	d, err := agent.GenerateJobDashboard(analysis.JobMeta{
		ID: *jobID, User: *user, Nodes: nodes,
		Start: start, End: end.Add(time.Second),
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := d.Validate(); err != nil {
		fatalf("generated dashboard invalid: %v", err)
	}
	if *render {
		text, err := dashboard.RenderDashboard(store, "lms", d)
		if err != nil {
			fatalf("render: %v", err)
		}
		fmt.Print(text)
		return
	}
	out, err := d.MarshalIndent()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(out))
}
