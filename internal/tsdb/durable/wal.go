package durable

// Segmented write-ahead log. One WAL is a directory of numbered segment
// files:
//
//	wal-00000001.log, wal-00000002.log, ...
//
// Each segment starts with an 8-byte magic header and then holds framed
// records:
//
//	[4B little-endian payload length][4B CRC32 (IEEE) of payload][payload]
//
// Appends go to the newest segment; past Options.SegmentBytes the log
// rotates to a fresh one. Checkpoints rotate explicitly and then delete
// every segment below the checkpoint's replay floor, so the on-disk log
// only ever covers data not yet captured by a checkpoint.
//
// Recovery reads the segments in order and validates every frame. The
// first bad frame — short header, implausible length, CRC mismatch — is
// where a crash tore the log: the segment is truncated right there, any
// later segments are dropped, and everything before it (the acknowledged
// prefix) replays. A CRC mismatch in the *middle* of the log means media
// corruption rather than a torn tail; recovery still stops at the first
// bad frame rather than guess at the integrity of what follows.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fsys"
)

const (
	segMagic      = "LMSWAL1\n" // 8 bytes
	frameOverhead = 8           // length + CRC32
	maxFrameBytes = 1 << 30
)

// ErrClosed is returned by appends to a closed WAL.
var ErrClosed = errors.New("durable: WAL is closed")

func segmentName(idx int) string { return fmt.Sprintf("wal-%08d.log", idx) }

func parseSegmentName(name string) (int, bool) {
	var idx int
	if n, err := fmt.Sscanf(name, "wal-%08d.log", &idx); n != 1 || err != nil {
		return 0, false
	}
	if segmentName(idx) != name {
		return 0, false
	}
	return idx, true
}

// WAL is one open write-ahead log.
type WAL struct {
	dir  string
	opts Options
	fs   fsys.FS // opts.FS after defaulting; every file op goes through it

	mu      sync.Mutex
	f       fsys.File     // newest segment, open for append
	seg     int           // index of the newest segment
	sizes   map[int]int64 // per-segment byte size
	buf     []byte        // scratch frame buffer, reused across appends
	dirty   bool          // unsynced appends (FsyncEveryInterval)
	closed  bool
	failErr error // latched write/sync failure; the log refuses appends after one

	// Group commit (FsyncPerBatch): frames are numbered by writeSeq;
	// syncedSeq is the highest frame known durable. syncMu serializes the
	// fsyncs themselves, outside mu, so one fsync acknowledges every
	// frame written before it started and queued writers skip theirs.
	writeSeq  int64 // guarded by mu
	syncedSeq int64 // guarded by mu
	syncMu    sync.Mutex

	stopSync sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// OpenWAL opens (or creates) the log in dir. Segments below floor are
// covered by a checkpoint and deleted unread. The surviving segments are
// replayed in order through fn (nil fn validates and positions the log
// without handing payloads out); the payload slice passed to fn is only
// valid during the call. A torn tail is truncated as described in the
// file comment. After OpenWAL returns, the WAL is positioned for appends.
func OpenWAL(dir string, floor int, o Options, fn func(payload []byte) error) (*WAL, error) {
	o = o.withDefaults()
	if err := o.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := o.FS.ReadDirNames(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	removed := false
	for _, name := range names {
		idx, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		if idx < floor {
			if err := o.FS.Remove(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
			removed = true
			continue
		}
		segs = append(segs, idx)
	}
	sort.Ints(segs)

	w := &WAL{dir: dir, opts: o, fs: o.FS, sizes: make(map[int]int64), stop: make(chan struct{})}
	for i, idx := range segs {
		size, ok, err := w.replaySegment(idx, fn)
		if err != nil {
			return nil, err
		}
		w.sizes[idx] = size
		w.seg = idx
		if !ok {
			// Torn or corrupt frame: this segment was truncated at the
			// last good frame; anything after it is past the tear.
			for _, later := range segs[i+1:] {
				if err := w.fs.Remove(filepath.Join(dir, segmentName(later))); err != nil {
					return nil, err
				}
				removed = true
			}
			break
		}
	}
	if removed {
		// Make the deletions durable: a crash must not resurrect
		// checkpoint-covered or past-the-tear segments that a later
		// recovery would happily replay.
		if err := w.fs.SyncDir(dir); err != nil {
			return nil, err
		}
	}
	if w.seg == 0 {
		w.seg = floor
		if w.seg < 1 {
			w.seg = 1
		}
		if err := w.createSegment(w.seg); err != nil {
			return nil, err
		}
	} else if err := w.openForAppend(); err != nil {
		return nil, err
	}
	if o.Fsync == FsyncEveryInterval {
		w.wg.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

// replaySegment validates the frames of one segment, feeding payloads to
// fn, and truncates the file at the first bad frame. It returns the
// validated size and whether the segment was fully intact.
func (w *WAL) replaySegment(idx int, fn func([]byte) error) (int64, bool, error) {
	path := filepath.Join(w.dir, segmentName(idx))
	data, err := w.fs.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	good := int64(0)
	intact := false
	if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
		good = int64(len(segMagic))
		off := len(segMagic)
		for {
			if off == len(data) {
				intact = true
				break
			}
			if len(data)-off < frameOverhead {
				break // torn frame header
			}
			n := int(binary.LittleEndian.Uint32(data[off:]))
			crc := binary.LittleEndian.Uint32(data[off+4:])
			if n > maxFrameBytes || off+frameOverhead+n > len(data) {
				break // implausible length or torn payload
			}
			payload := data[off+frameOverhead : off+frameOverhead+n]
			if crc32.ChecksumIEEE(payload) != crc {
				break // corrupt payload
			}
			if fn != nil {
				if err := fn(payload); err != nil {
					return 0, false, err
				}
			}
			off += frameOverhead + n
			good = int64(off)
		}
	}
	if !intact {
		if err := w.fs.Truncate(path, good); err != nil {
			return 0, false, err
		}
		if good < int64(len(data)) {
			// The repair itself must be durable: the truncation only
			// changed the kernel's view, so a crash right after recovery
			// could resurrect the corrupt tail — and a later recovery
			// would cut the log there again, dropping everything acked
			// after this point. Fsync the file (its new size) and the
			// directory before appending behind the repaired tail.
			if err := w.fs.SyncFile(path); err != nil {
				return 0, false, err
			}
			if err := w.fs.SyncDir(w.dir); err != nil {
				return 0, false, err
			}
		}
	}
	return good, intact, nil
}

// createSegment starts segment idx as the append target. The handle is
// only installed once the segment is fully established (header written,
// directory entry synced): a failure part-way leaves the WAL on its old
// state rather than appending into a segment that may not survive a
// crash.
func (w *WAL) createSegment(idx int) error {
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segmentName(idx)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if w.opts.Fsync != FsyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.seg = idx
	w.sizes[idx] = int64(len(segMagic))
	return nil
}

// openForAppend positions the newest (already validated) segment for
// appends. A segment whose header itself was torn has size 0 and gets the
// header rewritten.
func (w *WAL) openForAppend() error {
	path := filepath.Join(w.dir, segmentName(w.seg))
	f, err := w.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	if w.sizes[w.seg] == 0 {
		if _, err := f.Write([]byte(segMagic)); err != nil {
			return err
		}
		w.sizes[w.seg] = int64(len(segMagic))
	}
	return nil
}

// syncFile fsyncs one file handle, reporting the latency to the
// configured observer (Options.SyncObserver). Every durability-relevant
// sync of the log goes through here so the exported fsync histogram sees
// group commits, interval syncs, rotations and Close alike.
func (w *WAL) syncFile(f fsys.File) error {
	if obs := w.opts.SyncObserver; obs != nil {
		start := time.Now()
		err := f.Sync()
		obs(time.Since(start))
		return err
	}
	return f.Sync()
}

// sealLocked latches the first fatal error: the log refuses every later
// append (the failed or partial operation may have left a torn frame, or
// dirty pages in unknown state, and appending behind it would silently
// vanish on replay). Fires Options.OnSeal exactly once, on the first
// seal. Callers hold w.mu.
func (w *WAL) sealLocked(what string, err error) error {
	if w.failErr == nil {
		w.failErr = fmt.Errorf("durable: WAL %s failed, log sealed: %w", what, err)
		if w.opts.OnSeal != nil {
			w.opts.OnSeal(w.failErr)
		}
	}
	return w.failErr
}

// Sealed reports the latched error that sealed the log against appends,
// or nil for a healthy (or merely closed) log. The tsdb layer exports it
// as the lms_db_wal_sealed gauge.
func (w *WAL) Sealed() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failErr != nil && !errors.Is(w.failErr, ErrClosed) {
		return w.failErr
	}
	return nil
}

// Append writes one framed record and, under FsyncPerBatch, does not
// return until the record is on stable storage — the write may be
// acknowledged once Append returns. Concurrent appenders group-commit:
// the fsync runs outside the write lock and covers every frame written
// before it started, so N queued batches pay ~one flush, not N. Append
// reports the segment and the offset just past the record's last byte
// (crash-injection tests cut the file at offsets derived from these).
func (w *WAL) Append(payload []byte) (seg int, end int64, err error) {
	w.mu.Lock()
	seg, end, seq, err := w.appendLocked(payload)
	perBatch := w.opts.Fsync == FsyncPerBatch
	w.mu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	if perBatch {
		if err := w.syncThrough(seq); err != nil {
			return 0, 0, err
		}
	}
	return seg, end, nil
}

func (w *WAL) appendLocked(payload []byte) (seg int, end int64, seq int64, err error) {
	if w.closed {
		return 0, 0, 0, ErrClosed
	}
	if w.failErr != nil {
		// A failed or partial write left a (possibly torn) frame on disk.
		// Recovery truncates at the first bad frame, so anything appended
		// after it would silently vanish on replay — refuse instead.
		return 0, 0, 0, w.failErr
	}
	if w.sizes[w.seg] >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, 0, 0, err
		}
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, payload...)
	n, err := w.f.Write(w.buf)
	w.sizes[w.seg] += int64(n) // a partial write leaves a torn frame for recovery to cut
	if err != nil {
		w.sealLocked("write", err)
		return 0, 0, 0, err
	}
	w.writeSeq++
	if w.opts.Fsync != FsyncPerBatch {
		w.dirty = true
	}
	return w.seg, w.sizes[w.seg], w.writeSeq, nil
}

// syncThrough blocks until frame seq is durable. Whoever holds syncMu
// fsyncs once for the whole queue: a waiter whose frame was covered by an
// earlier group leader (or by a rotation's sync) returns without touching
// the disk.
func (w *WAL) syncThrough(seq int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.syncedSeq >= seq {
		w.mu.Unlock()
		return nil
	}
	if w.closed {
		// Close/Abort ran between the write and here; Close syncs before
		// closing, so either the frame is durable (failErr nil) or the
		// latched error tells the story.
		err := w.failErr
		w.mu.Unlock()
		return err
	}
	f := w.f
	top := w.writeSeq
	w.mu.Unlock()
	err := w.syncFile(f)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		if w.syncedSeq >= seq {
			// A rotation (or Close) synced past our frame while we raced
			// with a stale handle; the frame is durable, the error moot.
			return nil
		}
		// fsync failure: the kernel may have dropped the dirty pages, so
		// the frame's on-disk fate is unknown. Seal the log.
		return w.sealLocked("fsync", err)
	}
	if top > w.syncedSeq {
		w.syncedSeq = top
	}
	return nil
}

// Sync flushes appended records to stable storage. Like every other sync
// path, a failure seals the log: the frames' on-disk fate is unknown and
// appending behind them would risk silent loss on replay.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.syncFile(w.f); err != nil {
		w.sealLocked("fsync", err)
		return err
	}
	w.dirty = false
	w.syncedSeq = w.writeSeq
	return nil
}

// Rotate cuts the log to a fresh segment and returns the new segment's
// index: every record appended before the call lives in segments strictly
// below it. Checkpoints rotate first, so the returned index is the replay
// floor the checkpoint file is named after. A current segment holding no
// records is reused instead of cut — repeated checkpoints with no traffic
// in between (retries against a full disk included) must not grow an
// unbounded trail of empty segment files.
func (w *WAL) Rotate() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.sizes[w.seg] <= int64(len(segMagic)) {
		return w.seg, nil
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seg, nil
}

func (w *WAL) rotateLocked() error {
	// Any failure mid-rotation seals the log: after a failed sync the old
	// segment's dirty pages are in unknown state, and after a failed
	// close or create the append target is gone or half-established
	// (e.g. a new segment whose directory entry never hit the platter —
	// appending into it would ack frames a power cut then deletes
	// wholesale). Sealing forces a recovery instead of guessing.
	if err := w.syncFile(w.f); err != nil {
		w.sealLocked("fsync", err)
		return err
	}
	if err := w.f.Close(); err != nil {
		w.sealLocked("rotate", err)
		return err
	}
	w.dirty = false
	w.syncedSeq = w.writeSeq // the closed segment's frames are durable
	if err := w.createSegment(w.seg + 1); err != nil {
		w.sealLocked("rotate", err)
		return err
	}
	return nil
}

// RemoveBelow deletes every segment with an index below floor (the
// segments a just-written checkpoint covers) and syncs the directory so
// the deletions stick. A crash-resurrected segment would be deleted
// again unread at the next open (it is below the checkpoint floor), so a
// failure here is reported but nothing is sealed.
func (w *WAL) RemoveBelow(floor int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := false
	for idx := range w.sizes {
		if idx >= floor {
			continue
		}
		if err := w.fs.Remove(filepath.Join(w.dir, segmentName(idx))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		removed = true
		delete(w.sizes, idx)
	}
	if removed {
		return w.fs.SyncDir(w.dir)
	}
	return nil
}

// TotalSize returns the byte size of the log across all live segments.
func (w *WAL) TotalSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := int64(0)
	for _, s := range w.sizes {
		total += s
	}
	return total
}

// CurrentSegment returns the index of the append segment.
func (w *WAL) CurrentSegment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// SegmentPath returns the file path of segment idx (crash-injection tests
// truncate and corrupt segments through it).
func (w *WAL) SegmentPath(idx int) string {
	return filepath.Join(w.dir, segmentName(idx))
}

func (w *WAL) stopSyncLoop() {
	w.stopSync.Do(func() { close(w.stop) })
	w.wg.Wait()
}

// Close syncs outstanding records and closes the log.
func (w *WAL) Close() error {
	w.stopSyncLoop()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncFile(w.f)
	if err == nil {
		w.syncedSeq = w.writeSeq
	} else {
		w.sealLocked("fsync", err)
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the log without syncing, simulating a crash: records the
// OS has not flushed yet are at the kernel's mercy, exactly as if the
// process had died. Crash-recovery tests and benchmarks use it in place
// of Close.
func (w *WAL) Abort() {
	w.stopSyncLoop()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if w.failErr == nil {
		w.failErr = ErrClosed // racing group-commit waiters must not report durable
	}
	_ = w.f.Close()
}

// syncLoop is the FsyncEveryInterval background syncer.
func (w *WAL) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && !w.closed {
				if err := w.syncFile(w.f); err != nil {
					// The documented loss bound is one interval; a disk
					// that stops syncing must seal the log so appends
					// start failing, not silently widen the window.
					w.sealLocked("fsync", err)
				} else {
					w.dirty = false
					w.syncedSeq = w.writeSeq
				}
			}
			w.mu.Unlock()
		}
	}
}
