package cluster

// Fault-injection coverage of the hint queue (ISSUE 8 chaos satellite,
// queue half): the durable handoff log under a failing disk and power
// cuts. The two-sided acked-prefix oracle from the storage chaos suite
// applies unchanged: an acknowledged hint must survive crash + reopen,
// and a recovered hint must come from the attempted prefix — the queue
// may keep an unacknowledged hint (fault after the bytes landed) but may
// never lose an acknowledged one or invent one.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/lineproto"
	"repro/internal/tsdb/durable"
)

var errInjected = errors.New("injected I/O error")

// hintScenario opens a queue on fs and enqueues n hints with measurements
// m0..m(n-1), returning how many enqueues acked. openErr reports an open
// that failed under injection.
func hintScenario(fs *faultfs.FS, n int) (acked int, openErr error) {
	q, err := openHintQueue("hints", "http://peer:8086", 0, durable.Options{FS: fs})
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if err := q.enqueue("lms", testPoints(fmt.Sprintf("m%d", i), "h1", 2), 1e9); err != nil {
			break
		}
		acked++
	}
	return acked, nil
}

// recover reopens the queue with injection cleared and returns the
// recovered hints in order.
func recoverHints(t *testing.T, fs *faultfs.FS) []hint {
	t.Helper()
	fs.SetInject(nil)
	q, err := openHintQueue("hints", "http://peer:8086", 0, durable.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen after crash failed: %v", err)
	}
	defer q.close()
	return q.pending
}

func TestHintQueueFaultSweep(t *testing.T) {
	const batches = 5
	// Rehearse fault-free to learn the scenario length.
	dry := faultfs.New()
	if acked, err := hintScenario(dry, batches); err != nil || acked != batches {
		t.Fatalf("dry run: acked=%d err=%v", acked, err)
	}
	total := dry.Ops()

	for idx := int64(0); idx < total; idx++ {
		fs := faultfs.New()
		fs.FailOp(idx, errInjected)
		acked, openErr := hintScenario(fs, batches)
		fs.Crash()
		got := recoverHints(t, fs)

		if openErr != nil && acked != 0 {
			t.Fatalf("op %d: open failed yet %d hints acked", idx, acked)
		}
		if len(got) < acked {
			t.Fatalf("op %d: acked %d hints, only %d survived crash", idx, acked, len(got))
		}
		if len(got) > batches {
			t.Fatalf("op %d: %d hints recovered, only %d attempted", idx, len(got), batches)
		}
		// Recovered hints must be the attempted prefix, byte-exact.
		for i, h := range got {
			if h.db != "lms" || len(h.pts) != 2 || h.pts[0].Measurement != fmt.Sprintf("m%d", i) {
				t.Fatalf("op %d: hint %d corrupted: db=%q pts=%d m=%q", idx, i, h.db, len(h.pts), h.pts[0].Measurement)
			}
		}
	}
}

// TestHintQueueKillSweep cuts the power at every op index instead of
// failing one op: everything after the cut is lost, the acked prefix is
// not.
func TestHintQueueKillSweep(t *testing.T) {
	const batches = 4
	dry := faultfs.New()
	if _, err := hintScenario(dry, batches); err != nil {
		t.Fatal(err)
	}
	total := dry.Ops()

	for idx := int64(0); idx < total; idx++ {
		fs := faultfs.New()
		fs.KillAtOp(idx)
		acked, _ := hintScenario(fs, batches)
		fs.Crash()
		got := recoverHints(t, fs)
		if len(got) < acked {
			t.Fatalf("kill at op %d: acked %d hints, only %d recovered", idx, acked, len(got))
		}
		for i, h := range got {
			if h.pts[0].Measurement != fmt.Sprintf("m%d", i) {
				t.Fatalf("kill at op %d: recovered hint %d out of order: %q", idx, i, h.pts[0].Measurement)
			}
		}
	}
}

// TestHintQueueCrashMidDrain: a coordinator crash between partial drain
// and queue-empty keeps every undelivered hint AND re-replays the
// delivered prefix — at-least-once, made convergent by the store upsert.
func TestHintQueueCrashMidDrain(t *testing.T) {
	fs := faultfs.New()
	q, err := openHintQueue("hints", "http://peer:8086", 0, durable.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.enqueue("lms", testPoints(fmt.Sprintf("m%d", i), "h1", 1), 1e9); err != nil {
			t.Fatal(err)
		}
	}
	// Peer accepts one batch, then fails again.
	delivered := 0
	_, err = q.drain(func(db string, pts []lineproto.Point) error {
		if delivered == 1 {
			return errors.New("peer down again")
		}
		delivered++
		return nil
	})
	if err == nil || delivered != 1 {
		t.Fatalf("drain: delivered=%d err=%v", delivered, err)
	}
	if n, _ := q.depth(); n != 2 {
		t.Fatalf("depth after partial drain: %d", n)
	}

	fs.Crash()
	got := recoverHints(t, fs)
	// The WAL only truncates on a fully drained queue, so the restart
	// replays all three — including the one already delivered.
	if len(got) != 3 {
		t.Fatalf("recovered %d hints after mid-drain crash, want 3", len(got))
	}
}

// TestHintQueueReclaimsDiskAfterDrain: a fully drained queue rotates its
// WAL and removes the drained segments — a healed cluster returns to
// zero hint bytes on disk.
func TestHintQueueReclaimsDiskAfterDrain(t *testing.T) {
	fs := faultfs.New()
	q, err := openHintQueue("hints", "http://peer:8086", 0, durable.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.enqueue("lms", testPoints(fmt.Sprintf("m%d", i), "h1", 2), 1e9); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := q.drain(func(string, []lineproto.Point) error { return nil })
	if err != nil || replayed != 3 {
		t.Fatalf("drain: replayed=%d err=%v", replayed, err)
	}
	// Reopen: nothing must come back.
	if err := q.close(); err != nil {
		t.Fatal(err)
	}
	got := recoverHints(t, fs)
	if len(got) != 0 {
		t.Fatalf("drained queue recovered %d stale hints", len(got))
	}
}
