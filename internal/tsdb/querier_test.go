package tsdb

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lineproto"
)

// seedQuerierStore writes a deliberately diverse data set: several
// measurements, several tag sets, mixed value kinds (floats, large int64s
// beyond 2^53, bools, strings) and an out-of-order batch, so the
// equivalence suite exercises every JSON encoding path.
func seedQuerierStore(t testing.TB) *Store {
	t.Helper()
	store := NewStore()
	db := store.CreateDatabase("lms")
	base := time.Unix(1000, 0).UTC()
	var pts []lineproto.Point
	for i := 0; i < 50; i++ {
		ts := base.Add(time.Duration(i) * time.Second)
		for _, host := range []string{"h1", "h2"} {
			fields := map[string]lineproto.Value{
				"value": lineproto.Float(float64(i%7) + 0.25),
				"ticks": lineproto.Int(9007199254740993 + int64(i)), // > 2^53
				"busy":  lineproto.Bool(i%2 == 0),
			}
			if i%13 == 0 {
				// A sparse column: most rows lack it (presence bitmaps on
				// the columnar storage).
				fields["note"] = lineproto.String(fmt.Sprintf("mark-%d", i))
			}
			if i%5 == 0 {
				// A mixed-kind column: float on some rows, string on
				// others (forces the mixed representation).
				if i%2 == 0 {
					fields["mode"] = lineproto.Float(float64(i))
				} else {
					fields["mode"] = lineproto.String("burst")
				}
			}
			pts = append(pts,
				lineproto.Point{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": host, "jobid": "42"},
					Fields:      fields,
					Time:        ts,
				},
				lineproto.Point{
					Measurement: "likwid_mem_dp",
					Tags:        map[string]string{"hostname": host},
					Fields:      map[string]lineproto.Value{"dp_mflop_s": lineproto.Float(2000 + float64(i))},
					Time:        ts,
				})
		}
	}
	pts = append(pts, lineproto.Point{
		Measurement: "events",
		Tags:        map[string]string{"jobid": "42"},
		Fields:      map[string]lineproto.Value{"text": lineproto.String("jobstart")},
		Time:        base,
	})
	if err := db.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
	// An out-of-order batch, so multiple point runs exist.
	if err := db.WriteBatch([]lineproto.Point{{
		Measurement: "cpu",
		Tags:        map[string]string{"hostname": "h1", "jobid": "42"},
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(99)},
		Time:        base.Add(-10 * time.Second),
	}}); err != nil {
		t.Fatal(err)
	}
	return store
}

// equivalenceStatements is the statement corpus both queriers must agree
// on, covering raw selects, aggregation, windowing, grouping, limits,
// percentiles, metadata statements and multi-statement scripts.
var equivalenceStatements = []string{
	"SELECT * FROM cpu",
	"SELECT value FROM cpu",
	"SELECT value FROM cpu WHERE hostname = 'h1' LIMIT 3",
	"SELECT ticks FROM cpu LIMIT 5",
	"SELECT mean(value) FROM cpu GROUP BY time(10s), hostname",
	"SELECT max(value) FROM cpu GROUP BY hostname",
	"SELECT count(value) FROM cpu WHERE time >= 1005000000000 AND time <= 1030000000000",
	"SELECT percentile(value, 90) FROM cpu",
	"SELECT note FROM cpu",
	"SELECT note, mode FROM cpu WHERE hostname = 'h2'",
	"SELECT count(note) FROM cpu GROUP BY time(15s)",
	"SELECT last(mode) FROM cpu GROUP BY hostname",
	"SELECT sum(dp_mflop_s) FROM likwid_mem_dp GROUP BY time(20s)",
	"SELECT text FROM events WHERE jobid = '42'",
	"SELECT value FROM ghost_measurement",
	"SHOW DATABASES",
	"SHOW MEASUREMENTS",
	"SHOW FIELD KEYS FROM cpu",
	"SHOW TAG KEYS FROM cpu",
	"SHOW TAG VALUES FROM cpu WITH KEY = hostname",
	"SHOW TAG VALUES WITH KEY = jobid",
	"SHOW MEASUREMENTS; SELECT mean(value) FROM cpu GROUP BY hostname",
}

// mustJSON canonicalizes a response for byte comparison.
func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestQuerierLocalRemoteEquivalence is the acceptance suite of the query
// API: the same statements sent through a LocalQuerier and through the
// HTTP Client against the handler must produce byte-identical JSON — for
// raw text and pre-parsed statements, across epochs, chunked or not.
func TestQuerierLocalRemoteEquivalence(t *testing.T) {
	store := seedQuerierStore(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	local := LocalQuerier{Store: store}
	remote := &Client{BaseURL: srv.URL, Database: "lms"}
	ctx := context.Background()

	for _, epoch := range []string{"", "ns", "ms", "s"} {
		for _, chunked := range []bool{false, true} {
			for _, qtext := range equivalenceStatements {
				req := Request{Database: "lms", RawQuery: qtext, Epoch: epoch, Chunked: chunked}
				lresp, err := local.Query(ctx, req)
				if err != nil {
					t.Fatalf("local %q: %v", qtext, err)
				}
				rresp, err := remote.Query(ctx, req)
				if err != nil {
					t.Fatalf("remote %q: %v", qtext, err)
				}
				lj, rj := mustJSON(t, lresp), mustJSON(t, rresp)
				if lj != rj {
					t.Fatalf("mismatch epoch=%q chunked=%v %q:\nlocal  %s\nremote %s",
						epoch, chunked, qtext, lj, rj)
				}

				// The pre-parsed AST path must agree with the raw-text path.
				stmts, err := ParseQuery(qtext)
				if err != nil {
					t.Fatal(err)
				}
				sreq := req
				sreq.RawQuery = ""
				sreq.Statements = stmts
				lsresp, err := local.Query(ctx, sreq)
				if err != nil {
					t.Fatalf("local stmts %q: %v", qtext, err)
				}
				rsresp, err := remote.Query(ctx, sreq)
				if err != nil {
					t.Fatalf("remote stmts %q: %v", qtext, err)
				}
				if got := mustJSON(t, lsresp); got != lj {
					t.Fatalf("local AST path diverged for %q:\n%s\n%s", qtext, got, lj)
				}
				if got := mustJSON(t, rsresp); got != lj {
					t.Fatalf("remote AST path diverged for %q:\n%s\n%s", qtext, got, lj)
				}
			}
		}
	}
}

// TestQuerierRequestLimit checks the request-level row cap on both
// queriers: it clamps on top of statement-level LIMITs.
func TestQuerierRequestLimit(t *testing.T) {
	store := seedQuerierStore(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	ctx := context.Background()
	for name, qr := range map[string]Querier{
		"local":  LocalQuerier{Store: store},
		"remote": &Client{BaseURL: srv.URL, Database: "lms"},
	} {
		resp, err := qr.Query(ctx, Request{
			Database: "lms",
			RawQuery: "SELECT value FROM cpu WHERE hostname = 'h1'",
			Limit:    2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n := len(resp.Results[0].Series[0].Values); n != 2 {
			t.Fatalf("%s: rows %d, want 2", name, n)
		}
		// A tighter statement LIMIT wins over a looser request limit.
		resp, err = qr.Query(ctx, Request{
			Database: "lms",
			RawQuery: "SELECT value FROM cpu WHERE hostname = 'h1' LIMIT 1",
			Limit:    5,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n := len(resp.Results[0].Series[0].Values); n != 1 {
			t.Fatalf("%s: rows %d, want 1", name, n)
		}
	}
}

// TestStatementTextRoundTrip checks that Text() is a fixed point under
// parsing: parse(text) renders to the same text, and both execute to the
// same result. This is what lets the Client ship pre-built ASTs.
func TestStatementTextRoundTrip(t *testing.T) {
	store := seedQuerierStore(t)
	local := LocalQuerier{Store: store}
	ctx := context.Background()

	constructed := []Statement{
		SelectStatement(Query{Measurement: "cpu"}),
		SelectStatement(Query{
			Measurement: "cpu",
			Filter:      TagFilter{"hostname": "h1", "jobid": "42"},
			Start:       time.Unix(1000, 0),
			End:         time.Unix(1050, 0),
			Every:       10 * time.Second,
			Limit:       3,
		}, AggCol{Field: "value", Agg: AggMean}),
		SelectStatement(Query{Measurement: "cpu"},
			AggCol{Field: "value", Agg: AggPercentile, Pct: 95}),
		SelectStatement(Query{Measurement: "cpu", GroupByTags: []string{"hostname"}},
			AggCol{Field: "value"}, AggCol{Field: "ticks"}),
		ShowMeasurementsStatement(),
		ShowFieldKeysStatement("cpu"),
		ShowTagValuesStatement("", "hostname"),
		ShowTagValuesStatement("cpu", "jobid"),
	}
	for _, st := range constructed {
		text := st.Text()
		reparsed, err := ParseQuery(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		if len(reparsed) != 1 {
			t.Fatalf("%q parsed to %d statements", text, len(reparsed))
		}
		if got := reparsed[0].Text(); got != text {
			t.Fatalf("text not a fixed point: %q -> %q", text, got)
		}
		orig, err := local.Query(ctx, Request{Database: "lms", Statements: []Statement{st}})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := local.Query(ctx, Request{Database: "lms", Statements: reparsed})
		if err != nil {
			t.Fatal(err)
		}
		if mustJSON(t, orig) != mustJSON(t, rt) {
			t.Fatalf("round-trip changed results of %q", text)
		}
	}

	// Identifiers and string values outside the bare alphabet survive via
	// quoting.
	db := store.CreateDatabase("lms")
	if err := db.WriteBatch([]lineproto.Point{{
		Measurement: "weird meas",
		Tags:        map[string]string{"host name": "it's h1&co"},
		Fields:      map[string]lineproto.Value{"v": lineproto.Float(1)},
		Time:        time.Unix(1000, 0),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBatch([]lineproto.Point{{
		Measurement: `nvme"0\disk`,
		Tags:        map[string]string{"hostname": "h1"},
		Fields:      map[string]lineproto.Value{"v": lineproto.Float(2)},
		Time:        time.Unix(1000, 0),
	}}); err != nil {
		t.Fatal(err)
	}
	for _, quoted := range []Statement{
		SelectStatement(Query{Measurement: `nvme"0\disk`}, AggCol{Field: "v"}),
		ShowFieldKeysStatement(`nvme"0\disk`),
	} {
		reparsed, err := ParseQuery(quoted.Text())
		if err != nil {
			t.Fatalf("reparse %q: %v", quoted.Text(), err)
		}
		if got := reparsed[0].Text(); got != quoted.Text() {
			t.Fatalf("escaped ident not a fixed point: %q -> %q", quoted.Text(), got)
		}
		resp, err := local.Query(ctx, Request{Database: "lms", Statements: reparsed})
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Err(); err != nil {
			t.Fatalf("%q: %v", quoted.Text(), err)
		}
		if len(resp.Results[0].Series) != 1 {
			t.Fatalf("%q lost the series: %+v", quoted.Text(), resp.Results)
		}
	}

	st := SelectStatement(Query{
		Measurement: "weird meas",
		Filter:      TagFilter{"host name": "it's h1&co"},
	}, AggCol{Field: "v"})
	reparsed, err := ParseQuery(st.Text())
	if err != nil {
		t.Fatalf("reparse %q: %v", st.Text(), err)
	}
	resp, err := local.Query(ctx, Request{Database: "lms", Statements: reparsed})
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Err(); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results[0].Series) != 1 || len(resp.Results[0].Series[0].Values) != 1 {
		t.Fatalf("quoted round-trip lost the row: %+v", resp.Results)
	}
}

// TestQueryHTTPErrorPaths covers the handler's rejection paths: bad
// method, bad epoch, bad limit, parse errors, missing q.
func TestQueryHTTPErrorPaths(t *testing.T) {
	store := seedQuerierStore(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	check := func(method, rawquery string, wantStatus int) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+"/query?"+rawquery, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s /query?%s: status %d, want %d", method, rawquery, resp.StatusCode, wantStatus)
		}
	}
	check(http.MethodPut, "db=lms&q=SHOW+MEASUREMENTS", http.StatusMethodNotAllowed)
	check(http.MethodDelete, "db=lms&q=SHOW+MEASUREMENTS", http.StatusMethodNotAllowed)
	check(http.MethodGet, "db=lms&q=SHOW+MEASUREMENTS&epoch=parsec", http.StatusBadRequest)
	check(http.MethodGet, "db=lms&q=SHOW+MEASUREMENTS&limit=minus", http.StatusBadRequest)
	check(http.MethodGet, "db=lms&q=SHOW+MEASUREMENTS&limit=-3", http.StatusBadRequest)
	check(http.MethodGet, "db=lms&q=NOT+A+STATEMENT", http.StatusBadRequest)
	check(http.MethodGet, "db=lms", http.StatusBadRequest)
	check(http.MethodGet, "db=lms&q=SHOW+MEASUREMENTS&epoch=ms&limit=10", http.StatusOK)
}

// TestSelectContextCancellation checks that a cancelled context stops the
// read path: before the snapshot, between aggregation tasks, and through
// the querier without poisoning the result cache.
func TestSelectContextCancellation(t *testing.T) {
	store := seedQuerierStore(t)
	db := store.DB("lms")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	q := Query{Measurement: "cpu", GroupByTags: []string{"hostname"}, Agg: AggMean, Fields: []string{"value"}}
	if _, err := db.SelectContext(ctx, q); err != context.Canceled {
		t.Fatalf("SelectContext error %v, want context.Canceled", err)
	}
	// The cancelled attempt must not have cached anything bogus; a live
	// context sees real results.
	res, err := db.SelectContext(context.Background(), q)
	if err != nil || len(res) != 2 {
		t.Fatalf("post-cancel select: %v %v", res, err)
	}

	// Through the querier, cancellation comes back as an error rather than
	// an embedded statement failure.
	local := LocalQuerier{Store: store}
	if _, err := local.Query(ctx, Request{Database: "lms", RawQuery: "SELECT value FROM cpu"}); err != context.Canceled {
		t.Fatalf("local querier error %v, want context.Canceled", err)
	}

	// And the serial engine path (workers=1) observes it between groups
	// too.
	db1 := NewDBShards("one", 1)
	db1.SetQueryWorkers(1)
	if err := db1.WriteBatch([]lineproto.Point{
		{Measurement: "m", Tags: map[string]string{"h": "a"}, Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}, Time: time.Unix(1, 0)},
		{Measurement: "m", Tags: map[string]string{"h": "b"}, Fields: map[string]lineproto.Value{"v": lineproto.Float(2)}, Time: time.Unix(1, 0)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db1.SelectContext(ctx, Query{Measurement: "m"}); err != context.Canceled {
		t.Fatalf("serial engine error %v, want context.Canceled", err)
	}
}

// TestClientRetriesTransientFailures checks the backoff loop: 5xx and
// connection-level failures are retried, 4xx is not, MaxRetries<0 disables
// retrying.
func TestClientRetriesTransientFailures(t *testing.T) {
	store := seedQuerierStore(t)
	inner := NewHandler(store)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "try later", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Database: "lms", RetryBackoff: time.Millisecond}
	resp, err := c.Query(context.Background(), Request{RawQuery: "SHOW MEASUREMENTS"})
	if err != nil {
		t.Fatalf("query after retries: %v", err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results %+v", resp.Results)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}

	// Retries disabled: the first 503 is final.
	calls.Store(0)
	cNo := &Client{BaseURL: srv.URL, Database: "lms", MaxRetries: -1}
	if _, err := cNo.Query(context.Background(), Request{RawQuery: "SHOW MEASUREMENTS"}); err == nil {
		t.Fatal("expected error without retries")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1", n)
	}

	// 4xx is the caller's fault and is not retried.
	calls.Store(0)
	var badCalls atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer bad.Close()
	cBad := &Client{BaseURL: bad.URL, Database: "lms", RetryBackoff: time.Millisecond}
	if _, err := cBad.Query(context.Background(), Request{RawQuery: "SHOW MEASUREMENTS"}); err == nil {
		t.Fatal("expected 4xx error")
	}
	if n := badCalls.Load(); n != 1 {
		t.Fatalf("4xx retried: %d calls", n)
	}
}

// TestHandlerChunkedStreaming checks the wire shape of chunked=true: one
// JSON document per statement, which the stream reader merges back.
func TestHandlerChunkedStreaming(t *testing.T) {
	store := seedQuerierStore(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?db=lms&chunked=true&q=" +
		"SHOW+MEASUREMENTS%3BSELECT+mean%28value%29+FROM+cpu")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	docs := 0
	for dec.More() {
		var chunk Response
		if err := dec.Decode(&chunk); err != nil {
			t.Fatal(err)
		}
		if len(chunk.Results) != 1 {
			t.Fatalf("chunk carries %d results", len(chunk.Results))
		}
		docs++
	}
	if docs != 2 {
		t.Fatalf("%d chunk documents, want 2", docs)
	}
}

// TestQueryStringsHelper covers the metadata helper the dashboard agent
// and the standalone mains use for discovery.
func TestQueryStringsHelper(t *testing.T) {
	store := seedQuerierStore(t)
	local := LocalQuerier{Store: store}
	ctx := context.Background()
	meas, err := QueryStrings(ctx, local, "lms", ShowMeasurementsStatement(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(meas, ",") != "cpu,events,likwid_mem_dp" {
		t.Fatalf("measurements %v", meas)
	}
	hosts, err := QueryStrings(ctx, local, "lms", ShowTagValuesStatement("", "hostname"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(hosts, ",") != "h1,h2" {
		t.Fatalf("hosts %v", hosts)
	}
	if _, err := QueryStrings(ctx, local, "ghostdb", ShowFieldKeysStatement("cpu"), 0); err == nil {
		t.Fatal("missing database accepted")
	}
}
