// Command lms-sim runs the complete LIKWID Monitoring Stack against a
// simulated cluster and reproduces the paper's figures (see EXPERIMENTS.md
// for the mapping):
//
//	-scenario minimd        application-level monitoring of miniMD (Fig. 3)
//	-scenario pathological  four-node job with a >10 min compute break (Fig. 4)
//	-scenario mixed         a small production mix for the admin view (Fig. 2)
//
// While the simulation runs, the web viewer is served on -http (default
// :8080): "/" is the administrator view with all running jobs, "/job/<id>"
// the per-job user view, "/api/dashboard/<id>" the generated Grafana JSON.
// After the run the per-job evaluation tables are printed, and -dump writes
// the collected raw data as a line-protocol file for lms-analyze /
// lms-dashboard.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/jobsched"
	"repro/internal/lineproto"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

type scenario struct {
	nodes    int
	duration float64
	submit   func(sim *core.Simulation) error
}

func scenarios() map[string]scenario {
	return map[string]scenario{
		"minimd": {
			nodes:    1,
			duration: 0, // model duration + slack, filled below
			submit: func(sim *core.Simulation) error {
				mm := workload.NewMiniMD(20, 2097152, 40000)
				return sim.SubmitJob(jobsched.JobRequest{
					ID: "1234.master", User: "alice", Nodes: 1,
				}, mm)
			},
		},
		"pathological": {
			nodes:    4,
			duration: 7200,
			submit: func(sim *core.Simulation) error {
				// Fig. 4: computation break from minute 40 to minute 58.
				w := workload.NewIdleBreak(20, 6600, 2400, 3480)
				return sim.SubmitJob(jobsched.JobRequest{
					ID: "4711.master", User: "bob", Nodes: 4,
				}, w)
			},
		},
		"mixed": {
			nodes:    8,
			duration: 5400,
			submit: func(sim *core.Simulation) error {
				jobs := []struct {
					id, user string
					nodes    int
					model    workload.Model
				}{
					{"2001.master", "alice", 2, workload.NewTriad(20, 3600)},
					{"2002.master", "bob", 4, workload.NewDGEMM(20, 2400)},
					{"2003.master", "carol", 1, workload.NewMiniMD(20, 2097152, 30000)},
					{"2004.master", "dave", 2, &workload.LoadImbalance{Cores: 20, RuntimeSecs: 2400}},
				}
				for _, j := range jobs {
					err := sim.SubmitJob(jobsched.JobRequest{
						ID: j.id, User: j.user, Nodes: j.nodes,
					}, j.model)
					if err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

func main() { cli.Main("lms-sim", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-sim", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "mixed", "minimd, pathological or mixed")
	httpAddr := fs.String("http", ":8080", "web viewer listen address (empty = off)")
	dbAddr := fs.String("db-http", "", "serve the InfluxDB-compatible API here (empty = off)")
	publish := fs.String("publish", "", "ZeroMQ-style publisher address (empty = off)")
	interval := fs.Float64("interval", 60, "collection interval in simulated seconds")
	duration := fs.Float64("duration", 0, "override the scenario's simulated duration in seconds (0 = scenario default)")
	shards := fs.Int("shards", 0, "tsdb lock shards per database (0 = GOMAXPROCS)")
	dump := fs.String("dump", "", "write collected data as line protocol to this file")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	sc, ok := scenarios()[*scenarioName]
	if !ok {
		return cli.Usagef("unknown scenario %q", *scenarioName)
	}
	stack, sim, err := core.NewSimulatedStack(
		core.StackConfig{PerUserDBs: true, PubSubAddr: *publish, TSDBShards: *shards},
		core.SimConfig{Nodes: sc.nodes, CollectInterval: *interval},
	)
	if err != nil {
		return err
	}
	defer stack.Close()

	if *httpAddr != "" {
		go func() {
			fmt.Fprintf(stdout, "lms-sim: web viewer on http://localhost%s/\n", *httpAddr)
			log.Println(http.ListenAndServe(*httpAddr, stack.Viewer))
		}()
	}
	if *dbAddr != "" {
		go func() {
			fmt.Fprintf(stdout, "lms-sim: database API on http://localhost%s/\n", *dbAddr)
			log.Println(http.ListenAndServe(*dbAddr, stack.DBHandler))
		}()
	}

	if err := sc.submit(sim); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	secs := sc.duration
	if *duration > 0 {
		secs = *duration
	}
	if secs == 0 {
		// minimd: model duration plus slack.
		secs = workload.NewMiniMD(20, 2097152, 40000).Duration() + 300
	}
	fmt.Fprintf(stdout, "lms-sim: scenario %q on %d nodes, %.0f simulated seconds, sampling every %.0fs\n",
		*scenarioName, sc.nodes, secs, *interval)
	if err := sim.Run(secs); err != nil {
		return fmt.Errorf("run: %w", err)
	}

	rec, fwd, drop := stack.Router.Stats()
	fmt.Fprintf(stdout, "lms-sim: router received %d, forwarded %d, dropped %d points; db holds %d points\n",
		rec, fwd, drop, stack.DB.PointCount())

	// Per-job evaluation (Fig. 2 header) for every finished job, feeding
	// the cluster usage statistics (Sect. I: statistical foundation for
	// operational settings and procurements).
	var usage analysis.UsageStats
	for _, job := range sim.Sched.Finished() {
		rep, err := stack.Evaluator.Evaluate(sim.JobMeta(job))
		if err != nil {
			return fmt.Errorf("evaluate %s: %w", job.Req.ID, err)
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, rep.FormatTable())
		usage.Add(analysis.RecordFromReport(rep))
	}
	if usage.Len() > 0 {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, usage.FormatReport())
	}
	// Rendered user view for the first job (Fig. 3 / Fig. 4 timelines).
	if fin := sim.Sched.Finished(); len(fin) > 0 {
		meta := sim.JobMeta(fin[0])
		d, err := stack.Agent.GenerateJobDashboard(meta)
		if err != nil {
			return fmt.Errorf("dashboard: %w", err)
		}
		text, err := dashboard.RenderDashboard(context.Background(), stack.Querier, stack.DBName(), d)
		if err != nil {
			return fmt.Errorf("render: %w", err)
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, text)
	}

	if *dump != "" {
		if err := dumpDB(stack.DB, *dump); err != nil {
			return fmt.Errorf("dump: %w", err)
		}
		fmt.Fprintf(stdout, "lms-sim: wrote %s\n", *dump)
	}
	return nil
}

// dumpDB exports every stored point as line protocol.
func dumpDB(db *tsdb.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, meas := range db.Measurements() {
		series, err := db.Select(tsdb.Query{Measurement: meas, GroupByTags: db.TagKeys(meas)})
		if err != nil {
			return err
		}
		for _, s := range series {
			for _, row := range s.Rows {
				p := lineproto.Point{
					Measurement: meas,
					Tags:        map[string]string{},
					Fields:      map[string]lineproto.Value{},
					Time:        row.Time,
				}
				for k, v := range s.Tags {
					if v != "" {
						p.Tags[k] = v
					}
				}
				for i, col := range s.Columns {
					if row.Values[i] != nil {
						p.Fields[col] = *row.Values[i]
					}
				}
				if len(p.Fields) == 0 {
					continue
				}
				enc, err := lineproto.EncodePoint(p)
				if err != nil {
					return err
				}
				if _, err := f.Write(append(enc, '\n')); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
