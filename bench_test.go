package lms

// Benchmark harness: one bench per experiment id of DESIGN.md §4.
//
//	E1..E5  reproduce the paper's figures (architecture flow, job
//	        evaluation, miniMD app-level monitoring, pathological
//	        detection, pattern tree),
//	O1..O6  quantify the overhead claims of the text (router, line
//	        protocol, database, libusermetric, publisher, HPM collection).
//
// Run with: go test -bench=. -benchmem
// EXPERIMENTS.md records the measured outcomes against the paper's claims.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/hpm"
	"repro/internal/jobsched"
	"repro/internal/lineproto"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/router"
	"repro/internal/stream"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
	"repro/internal/usermetric"
	"repro/internal/workload"
)

func benchTopo() hpm.Topology {
	return hpm.Topology{Sockets: 2, CoresPerSocket: 10, ThreadsPerCore: 1, BaseClockMHz: 2200}
}

// --- E1: Fig. 1, the full architecture flow -------------------------------

// BenchmarkE1_EndToEndPipeline measures one full simulation step of a
// 4-node cluster running a triad job: scheduler, workload profiles, HPM and
// /proc counters, collection agents, router enrichment, database insert.
func BenchmarkE1_EndToEndPipeline(b *testing.B) {
	stack, sim, err := core.NewSimulatedStack(
		core.StackConfig{PerUserDBs: true},
		core.SimConfig{Nodes: 4, Topology: benchTopo(), CollectInterval: 60},
	)
	if err != nil {
		b.Fatal(err)
	}
	defer stack.Close()
	err = sim.SubmitJob(jobsched.JobRequest{
		ID: "bench", User: "u", Nodes: 4, Walltime: 1e12,
	}, workload.NewTriad(20, 1e12))
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Step(); err != nil { // arm HPM sessions
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stack.DB.PointCount())/float64(b.N), "points/step")
}

// --- E2: Fig. 2, online job evaluation ------------------------------------

func seedEvaluationDB(b *testing.B, nodes, minutes int) (*tsdb.DB, analysis.JobMeta) {
	b.Helper()
	db := tsdb.NewDB("lms")
	start := time.Unix(0, 0).UTC()
	meta := analysis.JobMeta{ID: "e2", User: "u", Start: start, End: start.Add(time.Duration(minutes) * time.Minute)}
	for n := 0; n < nodes; n++ {
		host := fmt.Sprintf("node%02d", n+1)
		meta.Nodes = append(meta.Nodes, host)
		for i := 0; i < minutes; i++ {
			ts := start.Add(time.Duration(i) * time.Minute)
			err := db.WritePoints([]lineproto.Point{
				{
					Measurement: "likwid_mem_dp",
					Tags:        map[string]string{"hostname": host},
					Fields: map[string]lineproto.Value{
						"dp_mflop_s":                lineproto.Float(9000 + float64(i%100)),
						"memory_bandwidth_mbytes_s": lineproto.Float(90000),
						"ipc":                       lineproto.Float(0.7),
					},
					Time: ts,
				},
				{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": host},
					Fields:      map[string]lineproto.Value{"percent": lineproto.Float(95)},
					Time:        ts,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	return db, meta
}

// BenchmarkE2_JobEvaluation measures the cost of computing the Fig. 2
// header (per-node means, node statistics, rule scan, pattern tree) for a
// 4-node, 2-hour job at 1-minute sampling — the work done every time a
// dashboard is loaded.
func BenchmarkE2_JobEvaluation(b *testing.B) {
	db, meta := seedEvaluationDB(b, 4, 120)
	ev := &analysis.Evaluator{Querier: tsdb.QuerierFor(db), Database: db.Name(), PeakMemBWMBs: 120000, PeakDPMFlops: 500000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ev.Evaluate(meta)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// --- E3: Fig. 3, miniMD application-level monitoring ----------------------

// BenchmarkE3_MiniMDMonitoring measures the libusermetric emission path for
// one 100-iteration sample block of miniMD: model state, buffered client,
// line-protocol encoding, router ingest, database insert.
func BenchmarkE3_MiniMDMonitoring(b *testing.B) {
	db := tsdb.NewDB("lms")
	rt, err := router.New(router.Config{Primary: router.LocalSink{DB: db}})
	if err != nil {
		b.Fatal(err)
	}
	client, err := usermetric.New(usermetric.Config{
		Sink: func(payload []byte) error {
			pts, err := lineproto.Parse(payload)
			if err != nil {
				return err
			}
			return rt.Ingest(pts)
		},
		DefaultTags:   map[string]string{"hostname": "node01", "app": "minimd"},
		FlushInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	mm := workload.NewMiniMD(20, 2097152, 1<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter := (i + 1) * 100
		temp, press, energy := mm.StateAt(iter)
		err := client.MetricFields("minimd", map[string]lineproto.Value{
			"runtime_100iter": lineproto.Float(mm.Runtime100At(iter)),
			"pressure":        lineproto.Float(press),
			"temperature":     lineproto.Float(temp),
			"energy":          lineproto.Float(energy),
		}, map[string]string{"iteration": fmt.Sprint(iter)})
		if err != nil {
			b.Fatal(err)
		}
		if err := client.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Fig. 4, pathological detection -----------------------------------

func breakSeries(minutes, breakStart, breakEnd int) []analysis.TimedValue {
	out := make([]analysis.TimedValue, minutes)
	for i := range out {
		v := 8000.0
		if i >= breakStart && i < breakEnd {
			v = 1.0
		}
		out[i] = analysis.TimedValue{T: time.Unix(int64(i*60), 0), V: v}
	}
	return out
}

// BenchmarkE4_PathologicalDetection measures the batch rule scan over a
// 2-hour, 1-minute-sampled timeline containing one Fig. 4 break.
func BenchmarkE4_PathologicalDetection(b *testing.B) {
	rule := analysis.DefaultRules()[0]
	series := breakSeries(120, 40, 58)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := analysis.Detect(rule, series); len(got) != 1 {
			b.Fatalf("violations %d", len(got))
		}
	}
}

// BenchmarkE4_PathologicalDetection_Streaming is the ablation of DESIGN.md
// §5: the online single-sample feed instead of the batch re-scan.
func BenchmarkE4_PathologicalDetection_Streaming(b *testing.B) {
	rule := analysis.DefaultRules()[0]
	series := breakSeries(120, 40, 58)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := &analysis.DetectStreaming{Rule: rule}
		fired := 0
		for _, s := range series {
			if _, ok := det.Feed(s); ok {
				fired++
			}
		}
		if fired == 0 {
			b.Fatal("no alarm")
		}
	}
}

// --- E5: Sect. V, performance pattern decision tree -----------------------

// BenchmarkE5_PatternTree measures one classification.
func BenchmarkE5_PatternTree(b *testing.B) {
	in := analysis.PatternInput{
		CPUUtil: 0.93, IPC: 0.7, DPMFlops: 9800, MemBWMBs: 95000,
		PeakMemBWMBs: 120000, PeakDPMFlops: 500000, Imbalance: 0.1,
		BranchMissRatio: 0.02,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := analysis.Classify(in)
		if c.Pattern == "" {
			b.Fatal("no pattern")
		}
	}
}

// --- O1: router overhead ----------------------------------------------------

func routerBatch(nPoints int, host string) []lineproto.Point {
	return measurementBatch(nPoints, "cpu", host)
}

func measurementBatch(nPoints int, meas, host string) []lineproto.Point {
	pts := make([]lineproto.Point, nPoints)
	for i := range pts {
		pts[i] = lineproto.Point{
			Measurement: meas,
			Tags:        map[string]string{"hostname": host},
			Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i))},
			Time:        time.Unix(int64(i), 0),
		}
	}
	return pts
}

// BenchmarkO1_RouterThroughput measures the tagging+forwarding pipeline per
// 100-point batch, with the DESIGN.md §5 ablations: number of job tags in
// the tag store, per-user duplication, and publisher attachment.
func BenchmarkO1_RouterThroughput(b *testing.B) {
	cases := []struct {
		name    string
		tags    int
		dup     bool
		publish bool
	}{
		{"tags=0", 0, false, false},
		{"tags=4", 4, false, false},
		{"tags=16", 16, false, false},
		{"tags=4/dup", 4, true, false},
		{"tags=4/publish", 4, false, true},
		{"tags=4/dup+publish", 4, true, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			db := tsdb.NewDB("lms")
			cfg := router.Config{Primary: router.LocalSink{DB: db}}
			if c.dup {
				udb := tsdb.NewDB("user")
				cfg.UserSink = func(string) router.Sink { return router.LocalSink{DB: udb} }
			}
			if c.publish {
				pub, err := pubsub.NewPublisher("127.0.0.1:0", 0)
				if err != nil {
					b.Fatal(err)
				}
				defer pub.Close()
				cfg.Publisher = pub
			}
			rt, err := router.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if c.tags > 0 {
				tags := map[string]string{}
				for i := 0; i < c.tags; i++ {
					tags[fmt.Sprintf("tag%02d", i)] = fmt.Sprintf("value%02d", i)
				}
				sig := router.JobSignal{JobID: "1", User: "u", Nodes: []string{"h1"}, Tags: tags}
				if err := rt.JobStart(sig); err != nil {
					b.Fatal(err)
				}
			}
			batch := routerBatch(100, "h1")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Ingest(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// --- O2: line protocol ------------------------------------------------------

// BenchmarkO2_LineProtocolEncode measures single-point encoding.
func BenchmarkO2_LineProtocolEncode(b *testing.B) {
	p := lineproto.Point{
		Measurement: "likwid_mem_dp",
		Tags:        map[string]string{"hostname": "node01", "jobid": "1234.master", "username": "alice"},
		Fields: map[string]lineproto.Value{
			"dp_mflop_s":                lineproto.Float(9823.5),
			"memory_bandwidth_mbytes_s": lineproto.Float(95234.1),
			"ipc":                       lineproto.Float(0.71),
		},
		Time: time.Unix(1500000000, 0),
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = lineproto.AppendPoint(buf[:0], p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkO2_LineProtocolParse measures single-line parsing.
func BenchmarkO2_LineProtocolParse(b *testing.B) {
	line := "likwid_mem_dp,hostname=node01,jobid=1234.master,username=alice dp_mflop_s=9823.5,ipc=0.71,memory_bandwidth_mbytes_s=95234.1 1500000000000000000"
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if _, err := lineproto.ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkO2_BatchedVsSingle quantifies the batched-transmission design
// choice (Sect. III-A): parse cost of one 100-line payload vs 100 single
// lines.
func BenchmarkO2_BatchedVsSingle(b *testing.B) {
	pts := routerBatch(100, "h1")
	payload, err := lineproto.Encode(pts)
	if err != nil {
		b.Fatal(err)
	}
	single, err := lineproto.EncodePoint(pts[0])
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batched100", func(b *testing.B) {
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			got, err := lineproto.Parse(payload)
			if err != nil || len(got) != 100 {
				b.Fatal(err)
			}
		}
	})
	b.Run("single100", func(b *testing.B) {
		b.SetBytes(int64(100 * len(single)))
		for i := 0; i < b.N; i++ {
			for j := 0; j < 100; j++ {
				if _, err := lineproto.Parse(single); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- O3: database ------------------------------------------------------------

// BenchmarkO3_TSDBWrite measures ingest of 100-point batches. The batch
// re-writes the same timestamps every iteration — the pattern that paid
// amortized run compaction under the PR 2 log-structured layout and now
// takes the columnar same-timestamp rewrite fast path (DESIGN.md §8):
// fields merge copy-on-write with last-write-wins, InfluxDB
// duplicate-point semantics, no run churn. In-order ingest — rising
// timestamps, the realistic agent pattern — is BenchmarkO3_TSDBWriteInOrder.
func BenchmarkO3_TSDBWrite(b *testing.B) {
	db := tsdb.NewDB("lms")
	batch := routerBatch(100, "h1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.WritePoints(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkO3_TSDBWriteInOrder measures the realistic agent ingest
// pattern: 100-point batches with strictly rising timestamps, which take
// the append-to-newest-run hot path. Run with -benchmem: this is the
// workload whose allocs/op the columnar builders and the series-key cache
// are meant to shrink (EXPERIMENTS.md, experiment O3).
func BenchmarkO3_TSDBWriteInOrder(b *testing.B) {
	db := tsdb.NewDB("lms")
	batch := routerBatch(100, "h1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := time.Unix(int64(i)*100, 0)
		for k := range batch {
			batch[k].Time = base.Add(time.Duration(k) * time.Second)
		}
		if err := db.WritePoints(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkO3_TSDBMemoryFootprint reports the resident bytes/point of a
// 1M-point load (4 series, float+int fields, in-order 1000-point
// batches): the storage-layout metric the columnar run representation
// optimizes. ns/op is the full load time; bytes/point is measured from
// the live heap after a GC, so transient write-path garbage is excluded.
func BenchmarkO3_TSDBMemoryFootprint(b *testing.B) {
	const (
		points = 1_000_000
		perB   = 1000
		series = 4
	)
	var bytesPerPoint float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.StartTimer()

		db := tsdb.NewDBShards("lms", 4)
		pts := make([]lineproto.Point, perB)
		for wrote := 0; wrote < points; wrote += perB {
			for k := range pts {
				n := wrote + k
				pts[k] = lineproto.Point{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": fmt.Sprintf("h%d", n%series)},
					Fields: map[string]lineproto.Value{
						"value": lineproto.Float(float64(n)),
						"ops":   lineproto.Int(int64(n % 4096)),
					},
					Time: time.Unix(int64(n/series), int64(n%series)),
				}
			}
			if err := db.WriteBatch(pts); err != nil {
				b.Fatal(err)
			}
		}

		b.StopTimer()
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		bytesPerPoint = float64(after.HeapAlloc-before.HeapAlloc) / points
		if got := db.PointCount(); got != points {
			b.Fatalf("PointCount = %d, want %d", got, points)
		}
		runtime.KeepAlive(db)
		b.StartTimer()
	}
	b.ReportMetric(bytesPerPoint, "bytes/point")
	b.ReportMetric(points, "points")
}

// BenchmarkO3_TSDBWriteParallel measures concurrent ingest of 100-point
// batches from GOMAXPROCS writers. Each writer streams a distinct
// measurement (the realistic hot path: different agents and metric types
// arrive concurrently), so the measurement-hashed shards spread the writers
// over independent locks and throughput scales with cores instead of
// serializing behind one database mutex.
func BenchmarkO3_TSDBWriteParallel(b *testing.B) {
	db := tsdb.NewDB("lms") // default shard count = GOMAXPROCS
	var writer atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := writer.Add(1)
		batch := measurementBatch(100, fmt.Sprintf("cpu%02d", id), "h1")
		for pb.Next() {
			if err := db.WriteBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkO3_TSDBWriteParallelSingleShard is the ablation: the same
// parallel workload forced onto one shard, i.e. the pre-sharding lock
// layout.
func BenchmarkO3_TSDBWriteParallelSingleShard(b *testing.B) {
	db := tsdb.NewDBShards("lms", 1)
	var writer atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := writer.Add(1)
		batch := measurementBatch(100, fmt.Sprintf("cpu%02d", id), "h1")
		for pb.Next() {
			if err := db.WriteBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkO3_TSDBQueryWindowed measures the dashboard's typical windowed
// aggregation over a 2-hour series. The result cache is disabled so the
// aggregation engine itself is measured (BenchmarkQ3_SelectCachedRefresh
// covers the cached path).
func BenchmarkO3_TSDBQueryWindowed(b *testing.B) {
	db, meta := seedEvaluationDB(b, 4, 120)
	db.SetQueryCacheTTL(0)
	q := tsdb.Query{
		Measurement: "likwid_mem_dp",
		Fields:      []string{"dp_mflop_s"},
		Start:       meta.Start,
		End:         meta.End,
		GroupByTags: []string{"hostname"},
		Every:       5 * time.Minute,
		Agg:         tsdb.AggMean,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Select(q)
		if err != nil || len(res) != 4 {
			b.Fatal(err)
		}
	}
}

// BenchmarkO3_TSDBQueryInfluxQL adds the query-language layer on top
// (cache disabled, as in BenchmarkO3_TSDBQueryWindowed).
func BenchmarkO3_TSDBQueryInfluxQL(b *testing.B) {
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	db.SetQueryCacheTTL(0)
	batch := routerBatch(100, "h1")
	for i := 0; i < 100; i++ {
		// Distinct timestamps per batch: re-writing identical ones is an
		// upsert since the columnar rewrite path, which would shrink the
		// queried data set to one batch.
		base := time.Unix(int64(i)*100, 0)
		for k := range batch {
			batch[k].Time = base.Add(time.Duration(k) * time.Second)
		}
		if err := db.WritePoints(batch); err != nil {
			b.Fatal(err)
		}
	}
	const q = "SELECT mean(value) FROM cpu WHERE hostname = 'h1' GROUP BY time(10s)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmts, err := tsdb.ParseQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tsdb.Execute(store, "lms", stmts[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C: compressed run state (DESIGN.md §13) ------------------------------

// loadFootprintDB builds the BenchmarkO3_TSDBMemoryFootprint data set:
// 1M points over 4 series, float+int fields, in-order 1000-point batches.
func loadFootprintDB(b *testing.B, points int) *tsdb.DB {
	b.Helper()
	const (
		perB   = 1000
		series = 4
	)
	db := tsdb.NewDBShards("lms", 4)
	pts := make([]lineproto.Point, perB)
	for wrote := 0; wrote < points; wrote += perB {
		for k := range pts {
			n := wrote + k
			pts[k] = lineproto.Point{
				Measurement: "cpu",
				Tags:        map[string]string{"hostname": fmt.Sprintf("h%d", n%series)},
				Fields: map[string]lineproto.Value{
					"value": lineproto.Float(float64(n)),
					"ops":   lineproto.Int(int64(n % 4096)),
				},
				Time: time.Unix(int64(n/series), int64(n%series)),
			}
		}
		if err := db.WriteBatch(pts); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkC1_CompressThroughput measures the chunk encoders over the 1M
// point footprint data set: points/s through Compress() and the heap
// bytes the compressed state releases.
func BenchmarkC1_CompressThroughput(b *testing.B) {
	const points = 1_000_000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := loadFootprintDB(b, points)
		b.StartTimer()
		if db.Compress() == 0 {
			b.Fatal("nothing compressed")
		}
		runtime.KeepAlive(db)
	}
	b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkC2_CompressedSelect measures the phase-2 vectorized decode
// feeding the aggregation sweeps: a full-scan mean over 1M compressed
// points, per-worker arenas reused across calls. ns/op over points is the
// decode throughput EXPERIMENTS.md records.
func BenchmarkC2_CompressedSelect(b *testing.B) {
	const points = 1_000_000
	db := loadFootprintDB(b, points)
	db.SetQueryCacheTTL(0)
	db.Compress()
	q := tsdb.Query{Measurement: "cpu", Fields: []string{"value"}, Agg: tsdb.AggMean}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Select(q)
		if err != nil || len(res) != 1 {
			b.Fatal(err, res)
		}
	}
	b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkC3_TSDBMemoryFootprintCompressed is the compressed steady
// state of BenchmarkO3_TSDBMemoryFootprint: same 1M-point load, then
// Compress(), then the live heap is measured. The PR 9 acceptance floor
// is < 8 bytes/point (raw columnar sits at ~26).
func BenchmarkC3_TSDBMemoryFootprintCompressed(b *testing.B) {
	const points = 1_000_000
	var bytesPerPoint float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.StartTimer()

		db := loadFootprintDB(b, points)
		db.Compress()

		b.StopTimer()
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		bytesPerPoint = float64(after.HeapAlloc-before.HeapAlloc) / points
		if got := db.PointCount(); got != points {
			b.Fatalf("PointCount = %d, want %d", got, points)
		}
		runtime.KeepAlive(db)
		b.StartTimer()
	}
	b.ReportMetric(bytesPerPoint, "bytes/point")
	b.ReportMetric(points, "points")
}

// benchCompressedStoreDir builds a durable store holding 200k compressed
// points, checkpoints and closes it, returning the directory and the
// on-disk snapshot size (checkpoint frames store the chunks verbatim).
func benchCompressedStoreDir(b *testing.B, points int) (string, int64) {
	b.Helper()
	dir := b.TempDir()
	st, err := tsdb.OpenStore(tsdb.StoreOptions{
		ShardsPerDB: 4,
		Durability:  tsdb.Durability{Dir: dir, Fsync: durable.FsyncOff},
	})
	if err != nil {
		b.Fatal(err)
	}
	db, err := st.OpenDatabase("lms")
	if err != nil {
		b.Fatal(err)
	}
	const perB, series = 1000, 4
	pts := make([]lineproto.Point, perB)
	for wrote := 0; wrote < points; wrote += perB {
		for k := range pts {
			n := wrote + k
			pts[k] = lineproto.Point{
				Measurement: "cpu",
				Tags:        map[string]string{"hostname": fmt.Sprintf("h%d", n%series)},
				Fields: map[string]lineproto.Value{
					"value": lineproto.Float(float64(n)),
					"ops":   lineproto.Int(int64(n % 4096)),
				},
				Time: time.Unix(int64(n/series), int64(n%series)),
			}
		}
		if err := db.WriteBatch(pts); err != nil {
			b.Fatal(err)
		}
	}
	db.Compress()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	var snapBytes int64
	matches, err := filepath.Glob(filepath.Join(dir, "lms", "checkpoint-*.snap"))
	if err != nil || len(matches) == 0 {
		b.Fatalf("no checkpoint written: %v", err)
	}
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			b.Fatal(err)
		}
		snapBytes += fi.Size()
	}
	return dir, snapBytes
}

// BenchmarkC4_CheckpointCompressed measures the checkpoint written over a
// compressed resident set: on-disk bytes/point (compressed frames are
// stored verbatim, no re-encoding) and the wall time of the final
// checkpoint+close.
func BenchmarkC4_CheckpointCompressed(b *testing.B) {
	const points = 200_000
	var snapBytes int64
	for i := 0; i < b.N; i++ {
		_, snapBytes = benchCompressedStoreDir(b, points)
	}
	b.ReportMetric(float64(snapBytes)/points, "snapbytes/point")
}

// BenchmarkC5_RecoveryCompressed measures reopening a store whose latest
// checkpoint holds compressed frames: recovery adopts the chunks without
// decoding, so startup cost is proportional to the compressed size.
func BenchmarkC5_RecoveryCompressed(b *testing.B) {
	const points = 200_000
	dir, _ := benchCompressedStoreDir(b, points)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := tsdb.OpenStore(tsdb.StoreOptions{
			ShardsPerDB: 4,
			Durability:  tsdb.Durability{Dir: dir, Fsync: durable.FsyncOff},
		})
		if err != nil {
			b.Fatal(err)
		}
		if got := st.DB("lms").PointCount(); got != points {
			b.Fatalf("recovered %d points, want %d", got, points)
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/s")
}

// --- O4: libusermetric --------------------------------------------------------

// newBenchHTTPServer serves a real tsdb over HTTP for the libusermetric
// transmission benches.
func newBenchHTTPServer(b *testing.B) string {
	b.Helper()
	store := tsdb.NewStore()
	srv := httptest.NewServer(tsdb.NewHandler(store))
	b.Cleanup(srv.Close)
	return srv.URL
}

// BenchmarkO4_UserMetricBuffered measures the per-metric cost with real
// HTTP transmission and batching (the design the paper chose: "buffers and
// sends batched messages"): one request per 500 metrics.
func BenchmarkO4_UserMetricBuffered(b *testing.B) {
	c, err := usermetric.New(usermetric.Config{
		Endpoint:      newBenchHTTPServer(b),
		DefaultTags:   map[string]string{"hostname": "h1"},
		FlushInterval: -1,
		MaxBatch:      500,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Metric("pressure", float64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = c.Flush()
}

// BenchmarkO4_UserMetricUnbuffered is the ablation: one HTTP request per
// metric (what a naive, non-buffering client would do).
func BenchmarkO4_UserMetricUnbuffered(b *testing.B) {
	c, err := usermetric.New(usermetric.Config{
		Endpoint:      newBenchHTTPServer(b),
		DefaultTags:   map[string]string{"hostname": "h1"},
		FlushInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Metric("pressure", float64(i), nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- O5: pub/sub publisher ----------------------------------------------------

// BenchmarkO5_PubSubPublish measures publisher fan-out to 4 subscribers
// with a draining reader each.
func BenchmarkO5_PubSubPublish(b *testing.B) {
	pub, err := pubsub.NewPublisher("127.0.0.1:0", 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	const nSubs = 4
	for i := 0; i < nSubs; i++ {
		sub, err := pubsub.Dial(pub.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Close()
		if err := sub.Subscribe("metrics/"); err != nil {
			b.Fatal(err)
		}
		go func() {
			for range sub.Messages() {
			}
		}()
	}
	// Wait for subscriptions to be active.
	deadline := time.Now().Add(5 * time.Second)
	for pub.SubscriberCount() < nSubs && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	payload := []byte("cpu,hostname=h1 value=1 1500000000000000000\n")
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub.Publish("metrics/cpu", payload)
	}
}

// BenchmarkO5_PubSubNoSubscribers is the ablation: publisher attached but
// nobody listening (the common deployment until an analyzer connects).
func BenchmarkO5_PubSubNoSubscribers(b *testing.B) {
	pub, err := pubsub.NewPublisher("127.0.0.1:0", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	payload := []byte("cpu,hostname=h1 value=1 1500000000000000000\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub.Publish("metrics/cpu", payload)
	}
}

// --- O6: HPM collection ---------------------------------------------------------

// BenchmarkO6_HPMCollection measures one full likwid-style measurement
// cycle on a 20-core node: stop, evaluate all MEM_DP metrics for all
// threads, restart, emit points.
func BenchmarkO6_HPMCollection(b *testing.B) {
	machine, err := hpm.NewMachine(benchTopo())
	if err != nil {
		b.Fatal(err)
	}
	w := workload.NewTriad(20, 1e12)
	for core := 0; core < 20; core++ {
		if err := machine.SetRates(core, w.ProfileAt(1, core).Rates(2200)); err != nil {
			b.Fatal(err)
		}
	}
	plugin := &collector.HPMPlugin{Machine: machine, GroupName: "MEM_DP"}
	if _, err := plugin.Collect(time.Unix(0, 0)); err != nil { // arm
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = machine.Advance(60)
		pts, err := plugin.Collect(time.Unix(int64(i+1)*60, 0))
		if err != nil || len(pts) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkO6_HPMFormulaEval isolates the formula evaluator, the innermost
// loop of metric derivation.
func BenchmarkO6_HPMFormulaEval(b *testing.B) {
	f := hpm.MustCompileFormula("1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time")
	vars := map[string]float64{"PMC0": 1e9, "PMC1": 5e8, "PMC2": 2e9, "time": 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Eval(vars); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Q: query path (DESIGN.md §4/§6) ----------------------------------------

// seedQueryDB fills an n-shard DB with 8 measurements x 4 hostname series
// x 7200 points: the queried measurement carries the shape of an 8-hour
// job at 4-second sampling, heavy enough that the aggregation engine (not
// goroutine scheduling) dominates the mixed benchmark below.
func seedQueryDB(b *testing.B, shards int) *tsdb.DB {
	b.Helper()
	db := tsdb.NewDBShards("lms", shards)
	for m := 0; m < 8; m++ {
		for h := 0; h < 4; h++ {
			pts := make([]lineproto.Point, 0, 7200)
			for i := 0; i < 7200; i++ {
				pts = append(pts, lineproto.Point{
					Measurement: fmt.Sprintf("qmeas%02d", m),
					Tags:        map[string]string{"hostname": fmt.Sprintf("h%d", h)},
					Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i))},
					Time:        time.Unix(int64(i*4+h), 0),
				})
			}
			if err := db.WriteBatch(pts); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

var windowQuery = tsdb.Query{
	Measurement: "qmeas00",
	Start:       time.Unix(0, 0),
	End:         time.Unix(7200*4, 0),
	GroupByTags: []string{"hostname"},
	Every:       60 * time.Second,
	Agg:         tsdb.AggMean,
}

// BenchmarkQ1_SelectWindowParallel measures the mixed workload the paper's
// dashboards create: each round runs 4 WriteBatch calls and 2 windowed
// panel aggregations concurrently against the *same measurement* of an
// 8-shard DB. Before the two-phase engine a Select held the full shard
// lock for its whole filter+aggregate pass, so every write in the round
// stalled behind hundreds of µs of aggregation; now a writer only ever
// overlaps with the RLock'd snapshot. ns/op is the round completion time;
// max-write-stall-ns is the worst single WriteBatch latency observed while
// the readers were aggregating. The cache is disabled so the engine itself
// is measured (BenchmarkQ3 measures the cache).
func BenchmarkQ1_SelectWindowParallel(b *testing.B) {
	db := seedQueryDB(b, 8)
	db.SetQueryCacheTTL(0)
	const writers, readers = 4, 2
	var off atomic.Int64
	var maxStall atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Strictly increasing timestamps beyond the queried window:
				// appends stay in order and the readers' range cut keeps
				// their work bounded as the benchmark grows the series.
				base := 7200*4 + off.Add(100)
				host := fmt.Sprintf("w%d", w)
				pts := make([]lineproto.Point, 100)
				for k := range pts {
					pts[k] = lineproto.Point{
						Measurement: "qmeas00",
						Tags:        map[string]string{"hostname": host},
						Fields:      map[string]lineproto.Value{"value": lineproto.Float(1)},
						Time:        time.Unix(base+int64(k), 0),
					}
				}
				t0 := time.Now()
				if err := db.WriteBatch(pts); err != nil {
					b.Error(err)
					return
				}
				d := time.Since(t0).Nanoseconds()
				for {
					cur := maxStall.Load()
					if d <= cur || maxStall.CompareAndSwap(cur, d) {
						break
					}
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := db.Select(windowQuery); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(100*writers*b.N)/b.Elapsed().Seconds(), "points/s")
	b.ReportMetric(float64(readers*b.N)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(float64(maxStall.Load()), "max-write-stall-ns")
}

// BenchmarkQ2_SelectRawLimit measures the Limit pushdown on a raw query:
// LIMIT 10 over a 100k-point series. The seed engine materialized and
// copied every row before truncating; phase 1 now clamps the snapshot to
// the limit.
func BenchmarkQ2_SelectRawLimit(b *testing.B) {
	db := tsdb.NewDB("lms")
	db.SetQueryCacheTTL(0)
	pts := make([]lineproto.Point, 0, 100000)
	for i := 0; i < 100000; i++ {
		pts = append(pts, lineproto.Point{
			Measurement: "raw",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i))},
			Time:        time.Unix(int64(i), 0),
		})
	}
	if err := db.WriteBatch(pts); err != nil {
		b.Fatal(err)
	}
	q := tsdb.Query{Measurement: "raw", Limit: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Select(q)
		if err != nil || len(res[0].Rows) != 10 {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ3_SelectCachedRefresh measures the dashboard viewer's panel
// refresh pattern: the identical windowed query re-issued inside the cache
// TTL, served from the query-result cache.
func BenchmarkQ3_SelectCachedRefresh(b *testing.B) {
	db := seedQueryDB(b, 8)
	db.SetQueryCacheTTL(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Select(windowQuery); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if hits, _ := db.QueryCacheStats(); b.N > 1 && hits == 0 {
		b.Fatal("cache never hit")
	}
}

// BenchmarkQ4_RemoteQuery measures the query API's two doors over the same
// windowed panel query (DESIGN.md §7): sub-bench "local" runs pre-parsed
// statements on a LocalQuerier (no string round-trip, no transport),
// sub-bench "remote" sends them through the HTTP Client — URL encoding,
// GET /query, chunk-aware JSON stream decode — against the tsdb handler on
// a real listener, i.e. the split lms-dashboard / lms-db deployment. The
// gap between the two is the price of scale-out per panel refresh. The
// cache is disabled so the full path is measured every iteration.
func BenchmarkQ4_RemoteQuery(b *testing.B) {
	store := tsdb.NewStore()
	store.Attach(seedQueryDB(b, 8))
	store.DB("lms").SetQueryCacheTTL(0)
	stmt := tsdb.SelectStatement(tsdb.Query{
		Measurement: windowQuery.Measurement,
		Start:       windowQuery.Start,
		End:         windowQuery.End,
		GroupByTags: windowQuery.GroupByTags,
		Every:       windowQuery.Every,
	}, tsdb.AggCol{Field: "value", Agg: tsdb.AggMean})
	req := tsdb.Request{Database: "lms", Statements: []tsdb.Statement{stmt}}
	ctx := context.Background()

	run := func(b *testing.B, qr tsdb.Querier) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			resp, err := qr.Query(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Results) != 1 || len(resp.Results[0].Series) != 4 {
				b.Fatalf("unexpected result shape %+v", resp.Results)
			}
		}
	}
	b.Run("local", func(b *testing.B) {
		run(b, tsdb.LocalQuerier{Store: store})
	})
	b.Run("remote", func(b *testing.B) {
		srv := httptest.NewServer(tsdb.NewHandler(store))
		defer srv.Close()
		run(b, &tsdb.Client{BaseURL: srv.URL, Database: "lms"})
	})
}

// --- X1: extension, stream analyzer -----------------------------------------

// BenchmarkX1_StreamAnalyzerHandle measures the online analyzer's cost per
// published 100-point batch (decode + aggregate + rule feed).
func BenchmarkX1_StreamAnalyzerHandle(b *testing.B) {
	a := stream.New(stream.Config{})
	payload, err := lineproto.Encode(routerBatch(100, "h1"))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Handle("metrics/cpu", payload)
	}
	_, processed, _ := a.Snapshot()
	if processed == 0 {
		b.Fatal("nothing processed")
	}
}

// --- D1..D3: durable storage engine (DESIGN.md §9) -------------------------

// durBatch builds one 100-point in-order agent flush (float + int fields)
// starting at batch index i.
func durBatch(i int) []lineproto.Point {
	pts := make([]lineproto.Point, 0, 100)
	base := int64(1600000000_000000000) + int64(i)*100*int64(time.Second)
	for j := 0; j < 100; j++ {
		pts = append(pts, lineproto.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": "node01"},
			Fields: map[string]lineproto.Value{
				"user": lineproto.Float(float64(i*100 + j)),
				"ctx":  lineproto.Int(int64(j)),
			},
			Time: time.Unix(0, base+int64(j)*int64(time.Second)),
		})
	}
	return pts
}

var durPolicies = []durable.FsyncPolicy{durable.FsyncOff, durable.FsyncEveryInterval, durable.FsyncPerBatch}

// BenchmarkD1_WALAppend prices one WAL append of an encoded 100-point
// batch under each fsync policy — the durability tax on the
// acknowledgement path, isolated from the in-memory write.
func BenchmarkD1_WALAppend(b *testing.B) {
	payload := durable.AppendBatch(nil, durBatch(0), time.Now().UnixNano())
	for _, pol := range durPolicies {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			w, err := durable.OpenWAL(b.TempDir(), 0, durable.Options{Fsync: pol}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkD2_IngestDurable measures WriteBatch end to end — encode, WAL
// append, columnar apply — against the in-memory baseline, one sub-bench
// per fsync policy. The closing sub-metric diskB/point is the checkpoint
// footprint after a clean Close.
func BenchmarkD2_IngestDurable(b *testing.B) {
	run := func(b *testing.B, db *tsdb.DB) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.WriteBatch(durBatch(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "points/s")
	}
	b.Run("volatile", func(b *testing.B) {
		db := tsdb.NewDB("bench")
		defer db.Close()
		run(b, db)
	})
	for _, pol := range durPolicies {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			dir := b.TempDir()
			st, err := tsdb.OpenStore(tsdb.StoreOptions{Durability: tsdb.Durability{Dir: dir, Fsync: pol}})
			if err != nil {
				b.Fatal(err)
			}
			db, err := st.OpenDatabase("bench")
			if err != nil {
				b.Fatal(err)
			}
			run(b, db)
			if err := st.Close(); err != nil { // final checkpoint
				b.Fatal(err)
			}
			var disk int64
			_ = filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
				if err != nil || d.IsDir() {
					return err
				}
				if info, err := d.Info(); err == nil {
					disk += info.Size()
				}
				return nil
			})
			b.ReportMetric(float64(disk)/float64(100*b.N), "diskB/point")
		})
	}
}

// BenchmarkD3_Recovery measures startup recovery of a 100k-point
// database in points/s replayed: once from the raw WAL (crash, no
// checkpoint — the worst case) and once from a clean checkpoint.
func BenchmarkD3_Recovery(b *testing.B) {
	const batches = 1000 // x100 points
	seed := func(b *testing.B, clean bool) string {
		b.Helper()
		dir := b.TempDir()
		st, err := tsdb.OpenStore(tsdb.StoreOptions{Durability: tsdb.Durability{Dir: dir, Fsync: durable.FsyncOff}})
		if err != nil {
			b.Fatal(err)
		}
		db, err := st.OpenDatabase("bench")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < batches; i++ {
			if err := db.WriteBatch(durBatch(i)); err != nil {
				b.Fatal(err)
			}
		}
		if clean {
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		} else {
			st.Abort()
		}
		return dir
	}
	run := func(b *testing.B, dir string) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := tsdb.OpenStore(tsdb.StoreOptions{Durability: tsdb.Durability{Dir: dir, Fsync: durable.FsyncOff}})
			if err != nil {
				b.Fatal(err)
			}
			if got := st.DB("bench").PointCount(); got != 100*batches {
				b.Fatalf("recovered %d points, want %d", got, 100*batches)
			}
			st.Abort() // leave the directory exactly as found
		}
		b.ReportMetric(float64(100*batches*b.N)/b.Elapsed().Seconds(), "points/s")
	}
	b.Run("wal-replay", func(b *testing.B) { run(b, seed(b, false)) })
	b.Run("checkpoint", func(b *testing.B) { run(b, seed(b, true)) })
}

// --- E5b/E6: clustered lms-db (DESIGN.md §12) -----------------------------

// benchCluster stands up a 3-node in-process cluster (three real stores
// behind real HTTP handlers) plus a coordinator, and returns the
// coordinator and a teardown.
func benchCluster(b *testing.B, seedPoints int) *cluster.Cluster {
	b.Helper()
	var peers []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(tsdb.NewHandler(tsdb.NewStore()))
		b.Cleanup(srv.Close)
		peers = append(peers, srv.URL)
	}
	clu, err := cluster.New(cluster.Config{Peers: peers, Replication: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = clu.Close() })
	if seedPoints > 0 {
		sink := clu.SinkFor("lms")
		base := time.Unix(1000, 0).UTC()
		for off := 0; off < seedPoints; off += 100 {
			batch := make([]lineproto.Point, 0, 100)
			for i := 0; i < 100 && off+i < seedPoints; i++ {
				batch = append(batch, lineproto.Point{
					Measurement: fmt.Sprintf("cpu%d", (off+i)%8),
					Tags:        map[string]string{"hostname": fmt.Sprintf("h%d", (off+i)%16)},
					Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(off + i))},
					Time:        base.Add(time.Duration(off+i) * time.Second),
				})
			}
			if err := sink.WritePoints(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := clu.Ensure(context.Background(), "lms"); err != nil {
			b.Fatal(err)
		}
	}
	return clu
}

// BenchmarkE5_ClusterIngest measures the replicated write path: each
// 100-point batch is ring-split and fanned to R=2 of 3 nodes over HTTP,
// acknowledged at quorum.
func BenchmarkE5_ClusterIngest(b *testing.B) {
	clu := benchCluster(b, 0)
	sink := clu.SinkFor("lms")
	base := time.Unix(1000, 0).UTC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]lineproto.Point, 0, 100)
		for j := 0; j < 100; j++ {
			batch = append(batch, lineproto.Point{
				Measurement: fmt.Sprintf("cpu%d", j%8),
				Tags:        map[string]string{"hostname": fmt.Sprintf("h%d", j%16)},
				Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i*100 + j))},
				Time:        base.Add(time.Duration(i*100+j) * time.Millisecond),
			})
		}
		if err := sink.WritePoints(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkE6_ScatterGatherQuery measures the distributed read path over
// a seeded cluster: a routed aggregation (one owner replica answers
// whole) and a fanned metadata union across all nodes.
func BenchmarkE6_ScatterGatherQuery(b *testing.B) {
	clu := benchCluster(b, 4000)
	qr := clu.Querier()
	ctx := context.Background()
	cases := []struct{ name, q string }{
		{"routed-agg", "SELECT mean(value) FROM cpu3 GROUP BY time(60s), hostname"},
		{"fan-union", "SHOW MEASUREMENTS"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := qr.Query(ctx, tsdb.Request{Database: "lms", RawQuery: c.q})
				if err != nil {
					b.Fatal(err)
				}
				if res.Err() != nil {
					b.Fatal(res.Err())
				}
			}
		})
	}
}

// --- T1: tracing-off overhead guard (DESIGN.md §14) ------------------------

// BenchmarkT1_TracingOff is the CI guard for the tracing layer's
// zero-cost-when-off claim. Part one asserts the claim outright: the
// complete per-request machinery a disabled ring adds to the hot paths —
// StartTrace on a nil ring, TraceFrom on a context carrying no trace, and
// spans started on the resulting nil trace — must allocate nothing, so the
// disabled-tracing query path costs 0 extra bytes/op over the pre-tracing
// engine. Part two benchmarks the same cached panel refresh as Q3 through
// SelectContext with tracing off; against BENCH_pr9.json's Q3 the B/op
// must not move, and BENCH_pr10.json records it for future diffs.
func BenchmarkT1_TracingOff(b *testing.B) {
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		var ring *obs.TraceRing
		tr := ring.StartTrace("bench", "")
		sp := tr.Start("phase").Attr("k", "v").AttrInt("n", 1)
		sp.End()
		obs.TraceFrom(ctx).Finish()
		tr.Finish()
	}); allocs != 0 {
		b.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}

	db := seedQueryDB(b, 8)
	db.SetQueryCacheTTL(time.Hour)
	if _, err := db.SelectContext(ctx, windowQuery); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SelectContext(ctx, windowQuery); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if hits, _ := db.QueryCacheStats(); b.N > 1 && hits == 0 {
		b.Fatal("cache never hit")
	}
}
