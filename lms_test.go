package lms

import (
	"strings"
	"testing"

	"repro/internal/tsdb"
)

// TestFacadeQuickstart exercises the public API end to end, mirroring
// examples/quickstart.
func TestFacadeQuickstart(t *testing.T) {
	stack, sim, err := NewSimulatedStack(
		StackConfig{PerUserDBs: true},
		SimConfig{Nodes: 2, CollectInterval: 60},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if err := sim.SubmitJob(JobRequest{ID: "q1", User: "alice", Nodes: 2}, NewTriad(20, 600)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(900); err != nil {
		t.Fatal(err)
	}
	fin := sim.Sched.Finished()
	if len(fin) != 1 {
		t.Fatalf("finished %d", len(fin))
	}
	rep, err := stack.Evaluator.Evaluate(sim.JobMeta(fin[0]))
	if err != nil {
		t.Fatal(err)
	}
	table := rep.FormatTable()
	if !strings.Contains(table, "Job q1 (user alice) on 2 nodes") {
		t.Fatalf("table:\n%s", table)
	}
	if stack.Store.DB("user_alice") == nil {
		t.Fatal("per-user database missing")
	}
}

// TestFacadeWorkloads checks the exported workload constructors.
func TestFacadeWorkloads(t *testing.T) {
	models := []WorkloadModel{
		NewTriad(4, 100),
		NewDGEMM(4, 100),
		NewMiniMD(4, 65536, 500),
		NewIdleBreak(4, 100, 30, 60),
		&LoadImbalance{Cores: 4, RuntimeSecs: 100},
	}
	for _, m := range models {
		if m.Name() == "" || m.Duration() <= 0 {
			t.Errorf("%T: bad model", m)
		}
	}
	if !SimTime(0).Equal(SimTime(0)) {
		t.Fatal("SimTime")
	}
}

// TestFacadeJobMetaAndQueries checks the stack's DB is reachable through
// the facade types.
func TestFacadeJobMetaAndQueries(t *testing.T) {
	stack, sim, err := NewSimulatedStack(StackConfig{}, SimConfig{Nodes: 1, CollectInterval: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if err := sim.SubmitJob(JobRequest{ID: "j", User: "u", Nodes: 1}, NewDGEMM(20, 300)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(600); err != nil {
		t.Fatal(err)
	}
	res, err := stack.DB.Select(tsdb.Query{
		Measurement: "likwid_mem_dp",
		Filter:      tsdb.TagFilter{"jobid": "j"},
		Agg:         tsdb.AggCount,
	})
	if err != nil || len(res) == 0 {
		t.Fatalf("%v %v", res, err)
	}
	if res[0].Rows[0].Values[0].IntVal() == 0 {
		t.Fatal("no tagged HPM points")
	}
}
