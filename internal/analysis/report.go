package analysis

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/tsdb"
)

// MetricSpec describes one row of the job evaluation table: where the data
// lives in the database and how to present it.
type MetricSpec struct {
	Label       string
	Measurement string
	Field       string
	Unit        string
	Scale       float64 // presentation multiplier (default 1)
}

// DefaultMetricSpecs lists the elementary resource-utilization metrics of
// Sect. V: CPU load, FP rate, allocated memory, memory bandwidth, network
// I/O and file I/O.
func DefaultMetricSpecs() []MetricSpec {
	return []MetricSpec{
		{Label: "CPU load", Measurement: "cpu", Field: "percent", Unit: "%"},
		{Label: "IPC", Measurement: "likwid_mem_dp", Field: "ipc", Unit: ""},
		{Label: "DP FP rate", Measurement: "likwid_mem_dp", Field: "dp_mflop_s", Unit: "MFLOP/s"},
		{Label: "Memory bandwidth", Measurement: "likwid_mem_dp", Field: "memory_bandwidth_mbytes_s", Unit: "MB/s"},
		{Label: "Allocated memory", Measurement: "memory", Field: "used_kb", Unit: "GB", Scale: 1.0 / (1024 * 1024)},
		{Label: "Network I/O", Measurement: "network", Field: "rx_bytes_per_s", Unit: "MB/s", Scale: 1e-6},
		{Label: "File I/O", Measurement: "disk", Field: "read_bytes_per_s", Unit: "MB/s", Scale: 1e-6},
	}
}

// JobMeta identifies the job under evaluation.
type JobMeta struct {
	ID    string
	User  string
	Nodes []string
	Start time.Time
	End   time.Time // zero = now (running job, online evaluation)
}

// MetricRow is one evaluated metric: the per-node time averages and their
// statistics across nodes (the min/median/max plus per-node columns of
// Fig. 2).
type MetricRow struct {
	Spec    MetricSpec
	PerNode map[string]float64 // NaN = no data for that node
	Stats   Stats
}

// NodeViolation attributes a rule violation to a node.
type NodeViolation struct {
	Node string
	Violation
}

// Report is the full job evaluation.
type Report struct {
	Job            JobMeta
	Rows           []MetricRow
	Violations     []NodeViolation
	Classification Classification
}

// Pathological reports whether any rule fired.
func (r *Report) Pathological() bool { return len(r.Violations) > 0 }

// Evaluator computes job reports through the tsdb query API. It implements
// the online analysis performed when a dashboard is loaded (Fig. 2 shows
// "data from the start of the job until the loading of the Grafana
// dashboard") as well as the offline in-depth variant over finished jobs.
//
// The evaluator depends only on tsdb.Querier: wired with a LocalQuerier it
// runs in-process next to the store, wired with a tsdb.Client it evaluates
// against a remote lms-db — the separate-service topology of the paper.
// Its metric timelines are built as pre-parsed statements, so the local
// path never round-trips through InfluxQL text.
type Evaluator struct {
	Querier  tsdb.Querier
	Database string       // database the job's metrics live in
	Specs    []MetricSpec // nil = DefaultMetricSpecs
	Rules    []Rule       // nil = DefaultRules

	// Peaks feed the pattern decision tree; zero disables the respective
	// saturation checks.
	PeakMemBWMBs float64
	PeakDPMFlops float64
	// Now overrides the clock for running jobs (tests).
	Now func() time.Time
}

// NewDBEvaluator wires an evaluator directly to one in-process database,
// the common offline-analysis construction.
func NewDBEvaluator(db *tsdb.DB) *Evaluator {
	return &Evaluator{Querier: tsdb.QuerierFor(db), Database: db.Name()}
}

func (e *Evaluator) specs() []MetricSpec {
	if e.Specs != nil {
		return e.Specs
	}
	return DefaultMetricSpecs()
}

func (e *Evaluator) rules() []Rule {
	if e.Rules != nil {
		return e.Rules
	}
	return DefaultRules()
}

// series fetches one node's metric timeline within the job window through
// the query API. Timestamps are requested as nanosecond epochs, so both the
// local and the remote querier return them without a string formatting
// round-trip. A missing measurement is no data (nil, nil); a failed query —
// unreachable remote database, cancelled context — is an error, so a
// broken connection cannot masquerade as a clean job.
func (e *Evaluator) series(ctx context.Context, node, measurement, field string, start, end time.Time) ([]TimedValue, error) {
	st := tsdb.SelectStatement(tsdb.Query{
		Measurement: measurement,
		Start:       start,
		End:         end,
		Filter:      tsdb.TagFilter{"hostname": node},
	}, tsdb.AggCol{Field: field})
	resp, err := e.Querier.Query(ctx, tsdb.Request{
		Database:   e.Database,
		Statements: []tsdb.Statement{st},
		Epoch:      "ns",
	})
	if err == nil {
		err = resp.Err()
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s.%s on %s: %w", measurement, field, node, err)
	}
	var out []TimedValue
	for _, res := range resp.Results {
		for _, s := range res.Series {
			for _, row := range s.Values {
				if len(row) < 2 || row[1] == nil {
					continue
				}
				v, ok := tsdb.FloatValue(row[1])
				if !ok {
					continue
				}
				t, err := tsdb.ParseTimestamp(row[0])
				if err != nil {
					continue
				}
				out = append(out, TimedValue{T: t, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T.Before(out[j].T) })
	return out, nil
}

func mean(series []TimedValue) float64 {
	if len(series) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, s := range series {
		sum += s.V
	}
	return sum / float64(len(series))
}

// Evaluate builds the report for a job (context-free convenience form of
// EvaluateContext).
func (e *Evaluator) Evaluate(job JobMeta) (*Report, error) {
	return e.EvaluateContext(context.Background(), job)
}

// EvaluateContext builds the report for a job. Every metric and rule
// timeline is fetched through the evaluator's Querier under ctx, so a
// cancelled dashboard request stops the evaluation mid-way.
func (e *Evaluator) EvaluateContext(ctx context.Context, job JobMeta) (*Report, error) {
	if e.Querier == nil {
		return nil, fmt.Errorf("analysis: evaluator has no querier")
	}
	if len(job.Nodes) == 0 {
		return nil, fmt.Errorf("analysis: job %s has no nodes", job.ID)
	}
	end := job.End
	if end.IsZero() {
		if e.Now != nil {
			end = e.Now()
		} else {
			end = time.Now()
		}
	}
	rep := &Report{Job: job}

	// Metric rows.
	for _, spec := range e.specs() {
		scale := spec.Scale
		if scale == 0 {
			scale = 1
		}
		row := MetricRow{Spec: spec, PerNode: make(map[string]float64, len(job.Nodes))}
		var present []float64
		for _, node := range job.Nodes {
			s, err := e.series(ctx, node, spec.Measurement, spec.Field, job.Start, end)
			if err != nil {
				return nil, err
			}
			v := mean(s) * scale
			row.PerNode[node] = v
			if !math.IsNaN(v) {
				present = append(present, v)
			}
		}
		row.Stats = ComputeStats(present)
		rep.Rows = append(rep.Rows, row)
	}

	// Rule violations per node.
	for _, rule := range e.rules() {
		for _, node := range job.Nodes {
			series, err := e.series(ctx, node, rule.Measurement, rule.Field, job.Start, end)
			if err != nil {
				return nil, err
			}
			for _, v := range Detect(rule, series) {
				rep.Violations = append(rep.Violations, NodeViolation{Node: node, Violation: v})
			}
		}
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		if !rep.Violations[i].Start.Equal(rep.Violations[j].Start) {
			return rep.Violations[i].Start.Before(rep.Violations[j].Start)
		}
		return rep.Violations[i].Node < rep.Violations[j].Node
	})

	// Pattern classification from the aggregated rows.
	in, err := e.patternInput(ctx, rep, job, end)
	if err != nil {
		return nil, err
	}
	rep.Classification = Classify(in)
	return rep, nil
}

// rowByField finds an evaluated row.
func (r *Report) rowByField(measurement, field string) (MetricRow, bool) {
	for _, row := range r.Rows {
		if row.Spec.Measurement == measurement && row.Spec.Field == field {
			return row, true
		}
	}
	return MetricRow{}, false
}

func (e *Evaluator) patternInput(ctx context.Context, rep *Report, job JobMeta, end time.Time) (PatternInput, error) {
	in := PatternInput{PeakMemBWMBs: e.PeakMemBWMBs, PeakDPMFlops: e.PeakDPMFlops}
	if row, ok := rep.rowByField("cpu", "percent"); ok {
		in.CPUUtil = row.Stats.Mean / 100
	}
	if row, ok := rep.rowByField("likwid_mem_dp", "ipc"); ok {
		in.IPC = row.Stats.Mean
	}
	if row, ok := rep.rowByField("likwid_mem_dp", "dp_mflop_s"); ok {
		in.DPMFlops = row.Stats.Mean
		var perNode []float64
		for _, v := range row.PerNode {
			if !math.IsNaN(v) {
				perNode = append(perNode, v)
			}
		}
		in.Imbalance = ImbalanceFrac(perNode)
	}
	if row, ok := rep.rowByField("likwid_mem_dp", "memory_bandwidth_mbytes_s"); ok {
		in.MemBWMBs = row.Stats.Mean
	}
	// Branch data comes from the BRANCH group when collected.
	for _, node := range job.Nodes {
		s, err := e.series(ctx, node, "likwid_branch", "branch_misprediction_ratio", job.Start, end)
		if err != nil {
			return PatternInput{}, err
		}
		if len(s) > 0 {
			in.BranchMissRatio = math.Max(in.BranchMissRatio, mean(s))
		}
	}
	return in, nil
}

// FormatTable renders the Fig. 2 evaluation header: one row per metric with
// min/median/max across nodes followed by the per-node columns.
func (r *Report) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Job %s", r.Job.ID)
	if r.Job.User != "" {
		fmt.Fprintf(&b, " (user %s)", r.Job.User)
	}
	fmt.Fprintf(&b, " on %d nodes\n", len(r.Job.Nodes))

	nodes := append([]string(nil), r.Job.Nodes...)
	sort.Strings(nodes)
	header := []string{"metric", "min", "median", "max"}
	header = append(header, nodes...)
	widths := make([]int, len(header))
	rows := [][]string{header}
	fmtv := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.4g", v)
	}
	for _, row := range r.Rows {
		label := row.Spec.Label
		if row.Spec.Unit != "" {
			label += " [" + row.Spec.Unit + "]"
		}
		cells := []string{label, fmtv(row.Stats.Min), fmtv(row.Stats.Median), fmtv(row.Stats.Max)}
		for _, n := range nodes {
			cells = append(cells, fmtv(row.PerNode[n]))
		}
		rows = append(rows, cells)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}

	if len(r.Violations) > 0 {
		b.WriteString("\nPathological behaviour detected:\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  [%s] %s\n", v.Node, v.Violation.String())
		}
	} else {
		b.WriteString("\nNo pathological behaviour detected.\n")
	}
	fmt.Fprintf(&b, "Performance pattern: %s — %s\n", r.Classification.Pattern, r.Classification.Advice)
	return b.String()
}
