// Command lms-analyze performs the offline in-depth analysis of Sect. V on
// a job's monitoring data: the resource-utilization evaluation table
// (Fig. 2), pathological-interval detection with threshold + timeout rules
// (Fig. 4) and the performance-pattern decision tree.
//
// Data comes either from a line-protocol dump file (-data, as produced by
// recording the router stream or exporting from the database) or straight
// from a running lms-db over HTTP (-db-url) — the analysis engine only
// talks to the tsdb query API, so both modes produce identical reports.
//
// Usage:
//
//	lms-analyze -data job.lp -job 42 -user alice -nodes node01,node02 \
//	            -start 2017-08-04T10:00:00Z -end 2017-08-04T12:00:00Z
//	lms-analyze -db-url http://dbhost:8086 -db lms -job 42 \
//	            -start 2017-08-04T10:00:00Z -end 2017-08-04T12:00:00Z
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
)

// errPathological marks a successfully analyzed but flagged job; main turns
// it into exit status 3 so batch scripts can filter.
var errPathological = errors.New("job flagged as pathological")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, errPathological) {
		os.Exit(3) // scriptable: non-zero for flagged jobs
	}
	cli.Exit("lms-analyze", err)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-analyze", flag.ContinueOnError)
	dataPath := fs.String("data", "", "line-protocol dump file (offline mode)")
	dbURL := fs.String("db-url", "", "base URL of a running lms-db, e.g. http://127.0.0.1:8086 (remote mode)")
	dbName := fs.String("db", "lms", "database name")
	jobID := fs.String("job", "", "job id (required)")
	user := fs.String("user", "", "job owner")
	nodesArg := fs.String("nodes", "", "comma-separated node list (default: hostnames of series tagged with the job, else all hostnames)")
	startArg := fs.String("start", "", "job start (RFC3339; offline default: earliest sample, remote default: end-1h)")
	endArg := fs.String("end", "", "job end (RFC3339; offline default: latest sample, remote default: now)")
	peakBW := fs.Float64("peak-membw", 60000, "achievable node memory bandwidth [MB/s] for the pattern tree")
	peakFlops := fs.Float64("peak-flops", 352000, "peak node DP rate [MFLOP/s] for the pattern tree")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	if *jobID == "" {
		return cli.UsageErr(fs, "-job is required")
	}
	if (*dataPath == "") == (*dbURL == "") {
		return cli.UsageErr(fs, "exactly one of -data (offline) or -db-url (remote) is required")
	}

	ctx := context.Background()
	qr, nodes, start, end, err := cli.JobSource{
		DataPath: *dataPath, DBURL: *dbURL, DBName: *dbName, JobID: *jobID,
		StartArg: *startArg, EndArg: *endArg, NodesArg: *nodesArg,
	}.Open(ctx)
	if err != nil {
		return err
	}

	ev := &analysis.Evaluator{
		Querier: qr, Database: *dbName,
		PeakMemBWMBs: *peakBW, PeakDPMFlops: *peakFlops,
	}
	rep, err := ev.EvaluateContext(ctx, analysis.JobMeta{
		ID: *jobID, User: *user, Nodes: nodes, Start: start, End: end,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.FormatTable())
	if rep.Pathological() {
		return errPathological
	}
	return nil
}
