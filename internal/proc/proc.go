// Package proc simulates the Linux /proc interface of a compute node and
// provides parsers for the snapshot formats.
//
// LMS host agents (Diamond, cronjobs, Ganglia gmond — paper Sect. III-A)
// obtain system-level metrics (CPU load, allocated memory size, network and
// file I/O, Sect. V) by reading /proc. In this reproduction each simulated
// node owns a proc.State whose counters are driven by the workload model;
// the State renders textual snapshots in the exact /proc formats
// (/proc/loadavg, /proc/stat, /proc/meminfo, /proc/net/dev,
// /proc/diskstats) and the collector plugins parse them back, so the full
// agent code path runs against realistic inputs.
package proc

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Jiffies per second, the USER_HZ constant of Linux.
const UserHZ = 100

// CPUTimes is the per-CPU jiffy breakdown of /proc/stat.
type CPUTimes struct {
	User, Nice, System, Idle, IOWait, IRQ, SoftIRQ uint64
}

// Total returns the sum of all jiffy classes.
func (c CPUTimes) Total() uint64 {
	return c.User + c.Nice + c.System + c.Idle + c.IOWait + c.IRQ + c.SoftIRQ
}

// Busy returns the non-idle jiffies.
func (c CPUTimes) Busy() uint64 {
	return c.Total() - c.Idle - c.IOWait
}

// NetCounters are the cumulative per-interface counters of /proc/net/dev.
type NetCounters struct {
	RxBytes, RxPackets, TxBytes, TxPackets uint64
}

// DiskCounters are the cumulative per-device counters of /proc/diskstats
// (the subset the monitoring uses: completed I/Os and 512-byte sectors).
type DiskCounters struct {
	ReadIOs, ReadSectors, WriteIOs, WriteSectors uint64
}

// State is the simulated OS state of one node.
type State struct {
	mu sync.Mutex

	hostname string
	ncpu     int

	// Dynamic inputs (set by the workload model).
	busyFrac  []float64 // 0..1 per cpu, share of time spent in user code
	sysFrac   []float64 // share spent in system code
	memUsedKB uint64
	rxRate    float64 // bytes/s on eth0
	txRate    float64
	readRate  float64 // bytes/s on sda
	writeRate float64
	procs     int // runnable process count fed into the load average

	// Accumulated counters.
	cpus     []CPUTimes
	net      NetCounters
	disk     DiskCounters
	memTotal uint64 // KB
	load1    float64
	load5    float64
	load15   float64

	fracUser []float64
	fracSys  []float64
	fracIdle []float64
	fracNet  [4]float64
	fracDisk [4]float64
}

// NewState boots a simulated node with the given CPU count and memory size.
func NewState(hostname string, ncpu int, memTotalKB uint64) (*State, error) {
	if ncpu <= 0 {
		return nil, fmt.Errorf("proc: invalid cpu count %d", ncpu)
	}
	if memTotalKB == 0 {
		return nil, fmt.Errorf("proc: zero memory size")
	}
	return &State{
		hostname: hostname,
		ncpu:     ncpu,
		busyFrac: make([]float64, ncpu),
		sysFrac:  make([]float64, ncpu),
		cpus:     make([]CPUTimes, ncpu),
		memTotal: memTotalKB,
		fracUser: make([]float64, ncpu),
		fracSys:  make([]float64, ncpu),
		fracIdle: make([]float64, ncpu),
	}, nil
}

// Hostname returns the node name.
func (s *State) Hostname() string { return s.hostname }

// NumCPU returns the CPU count.
func (s *State) NumCPU() int { return s.ncpu }

// SetCPULoad sets the user/system busy fractions of one CPU (clamped to
// [0,1], combined at most 1).
func (s *State) SetCPULoad(cpu int, user, system float64) error {
	if cpu < 0 || cpu >= s.ncpu {
		return fmt.Errorf("proc: cpu %d out of range [0,%d)", cpu, s.ncpu)
	}
	user = clamp01(user)
	system = clamp01(system)
	if user+system > 1 {
		system = 1 - user
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.busyFrac[cpu] = user
	s.sysFrac[cpu] = system
	return nil
}

// SetRunnable sets the number of runnable processes, the input of the load
// average.
func (s *State) SetRunnable(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.procs = n
}

// SetMemUsed sets the currently allocated memory in KB (clamped to total).
func (s *State) SetMemUsed(kb uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kb > s.memTotal {
		kb = s.memTotal
	}
	s.memUsedKB = kb
}

// SetNetRates sets the instantaneous network throughput in bytes/s.
func (s *State) SetNetRates(rx, tx float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rxRate = math.Max(rx, 0)
	s.txRate = math.Max(tx, 0)
}

// SetDiskRates sets the instantaneous file I/O throughput in bytes/s.
func (s *State) SetDiskRates(read, write float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readRate = math.Max(read, 0)
	s.writeRate = math.Max(write, 0)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Tick advances the simulated OS by dt seconds: jiffy counters accumulate
// according to the configured rates and the load averages decay toward the
// runnable count with the kernel's exponential smoothing.
func (s *State) Tick(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("proc: negative dt %v", dt)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	jiffies := dt * UserHZ
	for i := 0; i < s.ncpu; i++ {
		addFrac := func(acc *uint64, frac *float64, share float64) {
			v := share*jiffies + *frac
			whole := uint64(v)
			*frac = v - float64(whole)
			*acc += whole
		}
		addFrac(&s.cpus[i].User, &s.fracUser[i], s.busyFrac[i])
		addFrac(&s.cpus[i].System, &s.fracSys[i], s.sysFrac[i])
		addFrac(&s.cpus[i].Idle, &s.fracIdle[i], 1-s.busyFrac[i]-s.sysFrac[i])
	}
	addRate := func(acc *uint64, frac *float64, rate float64) {
		v := rate*dt + *frac
		whole := uint64(v)
		*frac = v - float64(whole)
		*acc += whole
	}
	addRate(&s.net.RxBytes, &s.fracNet[0], s.rxRate)
	addRate(&s.net.TxBytes, &s.fracNet[1], s.txRate)
	addRate(&s.net.RxPackets, &s.fracNet[2], s.rxRate/1400)
	addRate(&s.net.TxPackets, &s.fracNet[3], s.txRate/1400)
	addRate(&s.disk.ReadSectors, &s.fracDisk[0], s.readRate/512)
	addRate(&s.disk.WriteSectors, &s.fracDisk[1], s.writeRate/512)
	addRate(&s.disk.ReadIOs, &s.fracDisk[2], s.readRate/4096)
	addRate(&s.disk.WriteIOs, &s.fracDisk[3], s.writeRate/4096)

	// Kernel load average: exp decay with time constants 1/5/15 minutes.
	n := float64(s.procs)
	decay := func(load *float64, periodSec float64) {
		e := math.Exp(-dt / periodSec)
		*load = *load*e + n*(1-e)
	}
	decay(&s.load1, 60)
	decay(&s.load5, 300)
	decay(&s.load15, 900)
	return nil
}

// LoadAvg renders /proc/loadavg.
func (s *State) LoadAvg() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("%.2f %.2f %.2f %d/%d 12345\n",
		s.load1, s.load5, s.load15, s.procs, 200+s.procs)
}

// Stat renders /proc/stat (aggregate cpu line plus per-cpu lines).
func (s *State) Stat() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	var agg CPUTimes
	for _, c := range s.cpus {
		agg.User += c.User
		agg.Nice += c.Nice
		agg.System += c.System
		agg.Idle += c.Idle
		agg.IOWait += c.IOWait
		agg.IRQ += c.IRQ
		agg.SoftIRQ += c.SoftIRQ
	}
	writeLine := func(name string, c CPUTimes) {
		fmt.Fprintf(&b, "%s %d %d %d %d %d %d %d 0 0 0\n",
			name, c.User, c.Nice, c.System, c.Idle, c.IOWait, c.IRQ, c.SoftIRQ)
	}
	writeLine("cpu", agg)
	for i, c := range s.cpus {
		writeLine(fmt.Sprintf("cpu%d", i), c)
	}
	fmt.Fprintf(&b, "ctxt 123456\nprocesses 4242\nprocs_running %d\n", s.procs)
	return b.String()
}

// Meminfo renders /proc/meminfo (the fields monitoring reads).
func (s *State) Meminfo() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	free := s.memTotal - s.memUsedKB
	cached := free / 10
	if cached > free {
		cached = free
	}
	return fmt.Sprintf(
		"MemTotal:       %d kB\nMemFree:        %d kB\nMemAvailable:   %d kB\nBuffers:        %d kB\nCached:         %d kB\nSwapTotal:      0 kB\nSwapFree:       0 kB\n",
		s.memTotal, free-cached, free, uint64(0), cached)
}

// NetDev renders /proc/net/dev with lo and eth0.
func (s *State) NetDev() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString("Inter-|   Receive                                                |  Transmit\n")
	b.WriteString(" face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n")
	fmt.Fprintf(&b, "    lo: %8d %7d    0    0    0     0          0         0 %8d %7d    0    0    0     0       0          0\n",
		0, 0, 0, 0)
	fmt.Fprintf(&b, "  eth0: %8d %7d    0    0    0     0          0         0 %8d %7d    0    0    0     0       0          0\n",
		s.net.RxBytes, s.net.RxPackets, s.net.TxBytes, s.net.TxPackets)
	return b.String()
}

// Diskstats renders /proc/diskstats with one device (sda).
func (s *State) Diskstats() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("   8       0 sda %d 0 %d 0 %d 0 %d 0 0 0 0\n",
		s.disk.ReadIOs, s.disk.ReadSectors, s.disk.WriteIOs, s.disk.WriteSectors)
}

// Counters returns copies of the raw counters for direct inspection.
func (s *State) Counters() ([]CPUTimes, NetCounters, DiskCounters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cpus := append([]CPUTimes(nil), s.cpus...)
	return cpus, s.net, s.disk
}

// MemTotalKB returns the configured memory size.
func (s *State) MemTotalKB() uint64 { return s.memTotal }
