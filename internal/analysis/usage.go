package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// This file implements the fourth goal of the paper's introduction:
// "enable application-specific statistical performance analysis of system
// usage for optimizing operational settings and guiding future
// procurements". Every evaluated job contributes one UsageRecord; the
// UsageStats accumulator produces per-user and cluster-wide summaries with
// pattern histograms and wasted-capacity accounting.

// UsageRecord is the statistical footprint of one finished job.
type UsageRecord struct {
	JobID        string
	User         string
	Nodes        int
	Walltime     time.Duration
	NodeHours    float64
	Pattern      Pattern
	Pathological bool
	// WastedNodeHours is the capacity burned inside detected pathological
	// intervals (interval duration x nodes involved).
	WastedNodeHours float64
	// MeanCPUUtil, MeanDPMFlops and MeanMemBWMBs summarize resource usage.
	MeanCPUUtil  float64
	MeanDPMFlops float64
	MeanMemBWMBs float64
}

// RecordFromReport derives the usage record of an evaluated job.
func RecordFromReport(rep *Report) UsageRecord {
	job := rep.Job
	wall := job.End.Sub(job.Start)
	if wall < 0 {
		wall = 0
	}
	rec := UsageRecord{
		JobID:        job.ID,
		User:         job.User,
		Nodes:        len(job.Nodes),
		Walltime:     wall,
		NodeHours:    wall.Hours() * float64(len(job.Nodes)),
		Pattern:      rep.Classification.Pattern,
		Pathological: rep.Pathological(),
	}
	for _, v := range rep.Violations {
		rec.WastedNodeHours += v.Duration().Hours()
	}
	if row, ok := rep.rowByField("cpu", "percent"); ok && row.Stats.N > 0 {
		rec.MeanCPUUtil = row.Stats.Mean / 100
	}
	if row, ok := rep.rowByField("likwid_mem_dp", "dp_mflop_s"); ok && row.Stats.N > 0 {
		rec.MeanDPMFlops = row.Stats.Mean
	}
	if row, ok := rep.rowByField("likwid_mem_dp", "memory_bandwidth_mbytes_s"); ok && row.Stats.N > 0 {
		rec.MeanMemBWMBs = row.Stats.Mean
	}
	return rec
}

// UserUsage is the per-user aggregate.
type UserUsage struct {
	User             string
	Jobs             int
	NodeHours        float64
	PathologicalJobs int
	WastedNodeHours  float64
	Patterns         map[Pattern]int
	meanCPUSum       float64
}

// MeanCPUUtil is the job-weighted average CPU utilization.
func (u *UserUsage) MeanCPUUtil() float64 {
	if u.Jobs == 0 {
		return 0
	}
	return u.meanCPUSum / float64(u.Jobs)
}

// UsageStats accumulates records. The zero value is ready to use.
type UsageStats struct {
	records []UsageRecord
}

// Add appends one record.
func (s *UsageStats) Add(rec UsageRecord) {
	s.records = append(s.records, rec)
}

// Merge folds the records of o into s. It enables the same
// partial-aggregate pattern the tsdb read path uses (DESIGN.md §6): when
// a large job history is evaluated across workers, each worker accumulates
// a private UsageStats and the partials are merged afterwards — PerUser
// and Summary over the merged accumulator equal the serial result, since
// both are order-insensitive over the record set. o is not modified and
// may be reused; neither accumulator is safe for concurrent mutation.
func (s *UsageStats) Merge(o *UsageStats) {
	if o == nil {
		return
	}
	s.records = append(s.records, o.records...)
}

// Len returns the record count.
func (s *UsageStats) Len() int { return len(s.records) }

// PerUser aggregates by user, sorted by node-hours descending.
func (s *UsageStats) PerUser() []UserUsage {
	byUser := map[string]*UserUsage{}
	for _, r := range s.records {
		u, ok := byUser[r.User]
		if !ok {
			u = &UserUsage{User: r.User, Patterns: map[Pattern]int{}}
			byUser[r.User] = u
		}
		u.Jobs++
		u.NodeHours += r.NodeHours
		u.WastedNodeHours += r.WastedNodeHours
		u.meanCPUSum += r.MeanCPUUtil
		if r.Pathological {
			u.PathologicalJobs++
		}
		if r.Pattern != "" {
			u.Patterns[r.Pattern]++
		}
	}
	out := make([]UserUsage, 0, len(byUser))
	for _, u := range byUser {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeHours != out[j].NodeHours {
			return out[i].NodeHours > out[j].NodeHours
		}
		return out[i].User < out[j].User
	})
	return out
}

// ClusterSummary is the whole-system view.
type ClusterSummary struct {
	Jobs             int
	Users            int
	NodeHours        float64
	PathologicalJobs int
	WastedNodeHours  float64
	Patterns         map[Pattern]int
	// BandwidthBoundShare and ComputeBoundShare inform procurement: a
	// bandwidth-dominated mix argues for more memory channels over cores.
	BandwidthBoundShare float64
	ComputeBoundShare   float64
}

// Summary computes the cluster-wide aggregate.
func (s *UsageStats) Summary() ClusterSummary {
	sum := ClusterSummary{Patterns: map[Pattern]int{}}
	users := map[string]bool{}
	classified := 0
	for _, r := range s.records {
		sum.Jobs++
		users[r.User] = true
		sum.NodeHours += r.NodeHours
		sum.WastedNodeHours += r.WastedNodeHours
		if r.Pathological {
			sum.PathologicalJobs++
		}
		if r.Pattern != "" {
			sum.Patterns[r.Pattern]++
			classified++
		}
	}
	sum.Users = len(users)
	if classified > 0 {
		sum.BandwidthBoundShare = float64(sum.Patterns[PatternBandwidthBound]) / float64(classified)
		sum.ComputeBoundShare = float64(sum.Patterns[PatternComputeBound]) / float64(classified)
	}
	return sum
}

// FormatReport renders the usage statistics for operators.
func (s *UsageStats) FormatReport() string {
	var b strings.Builder
	sum := s.Summary()
	fmt.Fprintf(&b, "Cluster usage: %d jobs by %d users, %.1f node-hours total\n",
		sum.Jobs, sum.Users, sum.NodeHours)
	if sum.Jobs == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "Pathological jobs: %d (%.0f%%), wasted capacity: %.1f node-hours (%.1f%%)\n",
		sum.PathologicalJobs,
		100*float64(sum.PathologicalJobs)/float64(sum.Jobs),
		sum.WastedNodeHours,
		pct(sum.WastedNodeHours, sum.NodeHours))
	b.WriteString("Pattern mix:")
	patterns := make([]Pattern, 0, len(sum.Patterns))
	for p := range sum.Patterns {
		patterns = append(patterns, p)
	}
	sort.Slice(patterns, func(i, j int) bool { return patterns[i] < patterns[j] })
	for _, p := range patterns {
		fmt.Fprintf(&b, " %s=%d", p, sum.Patterns[p])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "Procurement signal: %.0f%% bandwidth-bound vs %.0f%% compute-bound jobs\n",
		100*sum.BandwidthBoundShare, 100*sum.ComputeBoundShare)
	b.WriteString("\nPer-user:\n")
	fmt.Fprintf(&b, "%-10s %6s %12s %8s %8s  %s\n", "user", "jobs", "node-hours", "patho", "cpu-util", "dominant pattern")
	for _, u := range s.PerUser() {
		fmt.Fprintf(&b, "%-10s %6d %12.1f %8d %7.0f%%  %s\n",
			u.User, u.Jobs, u.NodeHours, u.PathologicalJobs,
			100*u.MeanCPUUtil(), dominantPattern(u.Patterns))
	}
	return b.String()
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}

func dominantPattern(patterns map[Pattern]int) Pattern {
	best := Pattern("-")
	bestN := math.MinInt32
	keys := make([]Pattern, 0, len(patterns))
	for p := range patterns {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		if patterns[p] > bestN {
			best, bestN = p, patterns[p]
		}
	}
	return best
}
