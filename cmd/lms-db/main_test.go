package main

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestRunHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"--help"}, &out); err != nil {
		t.Fatalf("run(--help) = %v, want nil", err)
	}
	for _, flag := range []string{"-addr", "-db", "-retention", "-shards"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("help output missing %s:\n%s", flag, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("run(-no-such-flag) = nil, want error")
	}
}

func TestRunBadAddr(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-addr", "256.256.256.256:http"}, &out); err == nil {
		t.Fatal("run with unbindable addr = nil, want error")
	}
}

// TestRunServes boots the server on an ephemeral port and exercises the
// /ping and /write endpoints end to end.
func TestRunServes(t *testing.T) {
	pr, pw := io.Pipe()
	go func() {
		if err := run([]string{"-addr", "127.0.0.1:0", "-shards", "2"}, pw); err != nil {
			pw.CloseWithError(fmt.Errorf("run: %w", err))
		}
	}()
	// The first output line announces the bound address.
	buf := make([]byte, 256)
	n, err := pr.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	line := string(buf[:n])
	m := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("no address in startup line %q", line)
	}
	base := "http://" + m[1]
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(base + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/ping status = %d", resp.StatusCode)
	}
	resp, err = client.Post(base+"/write?db=lms", "text/plain",
		strings.NewReader("cpu,hostname=h1 value=1 1500000000000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/write status = %d", resp.StatusCode)
	}
}
