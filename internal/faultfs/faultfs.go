// Package faultfs is a deterministic, fault-injectable in-memory
// filesystem implementing the fsys.FS seam under the durable storage
// engine (DESIGN.md §11). The chaos sweeps drive the real WAL and
// checkpoint code against it to prove the ack invariant: for every
// possible fault point, a write is either durably acknowledged or
// refused — never acknowledged and then lost.
//
// # Fault model
//
// Every mutating operation (create/truncate open, write, file sync,
// remove, rename, truncate, dir sync) consumes one index from a global
// operation counter. An injection hook inspects each operation before it
// applies and may fail it:
//
//   - a transient error (EIO on the k-th op: the disk hiccuped once,
//     later operations succeed),
//   - a short write (the first Keep bytes land, the rest do not — torn
//     frames),
//   - ENOSPC via a byte budget (writes consume it; once exhausted they
//     fail partially, like a filling disk),
//   - power loss (Fault.Dead or KillAtOp: the op and everything after it
//     fails, until Crash() "reboots" the machine).
//
// # Durability model
//
// Each file is an inode holding volatile content (what reads see — the
// page cache) and synced content (what survives a power cut — the
// platter). File.Sync/SyncFile promote volatile to synced. The namespace
// is similarly split: a created, renamed or removed directory entry only
// survives a power cut after SyncDir on its parent — fsync(fd) persists
// bytes, fsync(dirfd) persists names, exactly the two barriers POSIX
// distinguishes. Crash() discards every unsynced byte and every
// uncommitted namespace change; a reopen then observes what a machine
// would find on its disk after power returns. Closing files never syncs,
// so an Abort-style process crash (no Crash call) keeps volatile state —
// the kernel survives a process, only a power cut kills the page cache.
//
// Directories themselves (MkdirAll) are modeled as immediately durable;
// the storage engine creates its directory once and syncs it before any
// acknowledgement, so the simplification cannot mask a lost ack.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"repro/internal/fsys"
)

// Canonical injectable errors. ErrNoSpace is also what budget
// exhaustion returns, so sweeps can match on it.
var (
	ErrNoSpace = error(syscall.ENOSPC)
	ErrIO      = error(syscall.EIO)
)

// Op identifies one mutating filesystem operation class.
type Op uint8

// The mutating operation classes, in the order the engine issues them.
const (
	OpOpen     Op = iota // OpenFile with O_CREATE or O_TRUNC
	OpWrite              // File.Write
	OpSync               // File.Sync / SyncFile
	OpRemove             // Remove
	OpRename             // Rename
	OpTruncate           // Truncate
	OpSyncDir            // SyncDir
)

// String returns the lowercase op name.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "syncdir"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Info describes one operation about to be applied, handed to the
// injection hook.
type Info struct {
	Op    Op
	Path  string // target path (new path for renames)
	Index int64  // global op index, starting at 0
	Size  int    // byte count for writes
}

// Fault is the hook's verdict on one operation.
type Fault struct {
	// Err fails the operation. For writes, Keep bytes still land first.
	Err error
	// Keep is the number of bytes of a write applied before failing — a
	// short write. Zero fails the whole write.
	Keep int
	// Dead kills the machine: this operation and every later one fail
	// with ErrPowerLost until Crash() reboots.
	Dead bool
}

// ErrPowerLost is returned by every operation after the simulated
// machine died (Fault.Dead, KillAtOp) until Crash() reboots it.
var ErrPowerLost = errors.New("faultfs: power lost")

// inode is one file: volatile content (page cache) plus the synced
// content that survives a power cut.
type inode struct {
	data   []byte // volatile: what reads observe
	synced []byte // durable: what Crash() restores
}

// FS is one fault-injectable filesystem. The zero value is not usable;
// call New.
type FS struct {
	mu     sync.Mutex
	files  map[string]*inode // volatile namespace: path -> inode
	durs   map[string]*inode // durable namespace: entries that survive a power cut
	dirs   map[string]bool
	ops    int64
	inject func(Info) *Fault
	budget int64 // remaining writable bytes; <0 = unlimited
	dead   error // non-nil after power loss, cleared by Crash
}

var _ fsys.FS = (*FS)(nil)

// New returns an empty filesystem with no faults armed and an unlimited
// disk budget.
func New() *FS {
	return &FS{
		files:  make(map[string]*inode),
		durs:   make(map[string]*inode),
		dirs:   make(map[string]bool),
		budget: -1,
	}
}

// SetInject installs (or, with nil, clears) the fault hook consulted
// before every mutating operation.
func (fs *FS) SetInject(fn func(Info) *Fault) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.inject = fn
}

// FailOp arms a single transient fault: operation index idx fails with
// err, every other operation succeeds.
func (fs *FS) FailOp(idx int64, err error) {
	fs.SetInject(func(i Info) *Fault {
		if i.Index == idx {
			return &Fault{Err: err}
		}
		return nil
	})
}

// KillAtOp cuts the power just before operation index idx: it and every
// later operation fail with ErrPowerLost until Crash().
func (fs *FS) KillAtOp(idx int64) {
	fs.SetInject(func(i Info) *Fault {
		if i.Index >= idx {
			return &Fault{Err: ErrPowerLost, Dead: true}
		}
		return nil
	})
}

// SetDiskBudget bounds the bytes future writes may consume before they
// fail with ENOSPC (negative = unlimited). A write that overruns the
// budget lands partially, like a real disk filling mid-write.
func (fs *FS) SetDiskBudget(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.budget = n
}

// Ops returns the number of mutating operations issued so far. Sweeps
// rehearse a scenario once to learn its length, then re-run it injecting
// a fault at every index.
func (fs *FS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crash simulates the power cut completing and the machine rebooting:
// every file reverts to its synced content, uncommitted namespace
// changes (creates, renames, removes never followed by SyncDir) are
// rolled back, and the dead state is cleared. The injection hook and
// disk budget are left as the test configured them.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dead = nil
	fs.files = make(map[string]*inode, len(fs.durs))
	for p, ino := range fs.durs {
		restored := &inode{
			data:   append([]byte(nil), ino.synced...),
			synced: append([]byte(nil), ino.synced...),
		}
		fs.files[p] = restored
		fs.durs[p] = restored
	}
}

// step consumes one op index and consults the fault machinery. Callers
// hold fs.mu. The returned fault is nil when the op should apply fully.
func (fs *FS) step(op Op, path string, size int) (int64, *Fault) {
	idx := fs.ops
	fs.ops++
	if fs.dead != nil {
		return idx, &Fault{Err: fs.dead, Dead: true}
	}
	if fs.inject != nil {
		if flt := fs.inject(Info{Op: op, Path: path, Index: idx, Size: size}); flt != nil {
			if flt.Dead {
				fs.dead = flt.Err
				if fs.dead == nil {
					fs.dead = ErrPowerLost
				}
			}
			return idx, flt
		}
	}
	return idx, nil
}

// file is one open handle.
type file struct {
	fs     *FS
	path   string
	ino    *inode
	closed bool
}

// OpenFile implements fsys.FS. Only the flag combinations the storage
// engine uses are supported: O_CREATE|O_TRUNC|O_WRONLY and
// O_WRONLY|O_APPEND.
func (fs *FS) OpenFile(name string, flag int, _ os.FileMode) (fsys.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino := fs.files[name]
	mutates := flag&(os.O_CREATE|os.O_TRUNC) != 0
	if mutates {
		if _, flt := fs.step(OpOpen, name, 0); flt != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: flt.Err}
		}
	}
	switch {
	case ino == nil && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case ino == nil:
		ino = &inode{}
		fs.files[name] = ino
	case flag&os.O_TRUNC != 0:
		ino.data = nil // volatile truncation; synced content stands until fsync
	}
	return &file{fs: fs, path: name, ino: ino}, nil
}

// Write implements fsys.File with append semantics (the only write
// pattern the engine uses). Short writes land a prefix.
func (f *file) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	keep := len(p)
	var ferr error
	if _, flt := fs.step(OpWrite, f.path, len(p)); flt != nil {
		keep = flt.Keep
		if keep > len(p) {
			keep = len(p)
		}
		ferr = flt.Err
	}
	if fs.budget >= 0 {
		if int64(keep) > fs.budget {
			keep = int(fs.budget)
			if ferr == nil {
				ferr = &os.PathError{Op: "write", Path: f.path, Err: ErrNoSpace}
			}
		}
		fs.budget -= int64(keep)
	}
	f.ino.data = append(f.ino.data, p[:keep]...)
	if ferr != nil {
		return keep, ferr
	}
	return len(p), nil
}

// Sync implements fsys.File: volatile content becomes durable.
func (f *file) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	return fs.syncInodeLocked(f.path, f.ino)
}

func (fs *FS) syncInodeLocked(path string, ino *inode) error {
	if _, flt := fs.step(OpSync, path, 0); flt != nil {
		return &os.PathError{Op: "sync", Path: path, Err: flt.Err}
	}
	ino.synced = append(ino.synced[:0], ino.data...)
	return nil
}

// Close implements fsys.File. Closing never syncs: unsynced bytes stay
// volatile, exactly like a real close.
func (f *file) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

// ReadFile implements fsys.FS, serving volatile (page cache) content.
// Reads fail too while the machine is dead — nothing runs without power.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: fs.dead}
	}
	ino := fs.files[name]
	if ino == nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

// ReadDirNames implements fsys.FS over the volatile namespace.
func (fs *FS) ReadDirNames(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	seen := map[string]bool{}
	for p := range fs.files {
		if filepath.Dir(p) == dir {
			seen[filepath.Base(p)] = true
		}
	}
	for d := range fs.dirs {
		if filepath.Dir(d) == dir {
			seen[filepath.Base(d)] = true
		}
	}
	if len(seen) == 0 && !fs.dirs[dir] {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: os.ErrNotExist}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements fsys.FS. Directories are immediately durable (see
// the package comment).
func (fs *FS) MkdirAll(dir string, _ os.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	for dir != "." && dir != "/" && dir != "" {
		fs.dirs[dir] = true
		dir = filepath.Dir(dir)
	}
	return nil
}

// Remove implements fsys.FS. The durable entry lingers until SyncDir —
// a power cut may resurrect the file.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, flt := fs.step(OpRemove, name, 0); flt != nil {
		return &os.PathError{Op: "remove", Path: name, Err: flt.Err}
	}
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

// Rename implements fsys.FS. Durable only after SyncDir.
func (fs *FS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, flt := fs.step(OpRename, newpath, 0); flt != nil {
		return &os.PathError{Op: "rename", Path: oldpath, Err: flt.Err}
	}
	ino, ok := fs.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	fs.files[newpath] = ino
	delete(fs.files, oldpath)
	return nil
}

// Truncate implements fsys.FS (volatile until the file is synced).
func (fs *FS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, flt := fs.step(OpTruncate, name, 0); flt != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: flt.Err}
	}
	ino := fs.files[name]
	if ino == nil {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	for int64(len(ino.data)) < size {
		ino.data = append(ino.data, 0)
	}
	ino.data = ino.data[:size]
	return nil
}

// SyncFile implements fsys.FS: fsync by path.
func (fs *FS) SyncFile(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino := fs.files[name]
	if ino == nil {
		return &os.PathError{Op: "sync", Path: name, Err: os.ErrNotExist}
	}
	return fs.syncInodeLocked(name, ino)
}

// SyncDir implements fsys.FS: the directory's volatile namespace becomes
// its durable namespace — creations, renames and removals in dir now
// survive a power cut.
func (fs *FS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	if _, flt := fs.step(OpSyncDir, dir, 0); flt != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: flt.Err}
	}
	for p, ino := range fs.files {
		if filepath.Dir(p) == dir {
			fs.durs[p] = ino
		}
	}
	for p := range fs.durs {
		if filepath.Dir(p) == dir {
			if _, ok := fs.files[p]; !ok {
				delete(fs.durs, p)
			}
		}
	}
	return nil
}
