// Package usermetric is the Go port of LMS's libusermetric (paper
// Sect. IV): a lightweight application-level annotation library that
// buffers metrics and events and sends them as batched line-protocol
// messages over HTTP.
//
// Compared to rich annotation systems like Caliper, libusermetric
// deliberately supports only values and events: a metric has a name, a
// value (or several fields), default tags configured once, arbitrary
// per-call tags (such as a thread identifier) and a timestamp. Events are
// string-valued points in the shared "events" measurement, rendered as
// annotations by the dashboards.
package usermetric

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// DefaultFlushInterval is the background flush period when none is
// configured.
const DefaultFlushInterval = time.Second

// DefaultMaxBatch is the point count that triggers an early flush.
const DefaultMaxBatch = 500

// Config configures a Client.
type Config struct {
	// Endpoint is the router or database base URL, e.g.
	// "http://router:8090". Required unless Sink is set.
	Endpoint string
	// Database is the target database name (default "lms").
	Database string
	// Sink overrides HTTP transmission with a direct callback; used by
	// in-process simulations and tests. Receives an encoded line-protocol
	// payload.
	Sink func(payload []byte) error
	// DefaultTags are added to every metric and event. The hostname tag
	// should be present so the router can attach job information.
	DefaultTags map[string]string
	// FlushInterval is the background flush period; 0 selects the default,
	// negative disables background flushing (explicit Flush only).
	FlushInterval time.Duration
	// MaxBatch flushes early when this many points are buffered
	// (default 500).
	MaxBatch int
	// OnError observes transmission errors (payloads are retried on the
	// next flush up to RetryLimit times). Optional.
	OnError func(error)
	// RetryLimit bounds re-transmissions of a failed payload (default 3).
	RetryLimit int
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Client is the libusermetric handle. All methods are safe for concurrent
// use; metric submission never blocks on the network.
type Client struct {
	cfg   Config
	send  func(payload []byte) error
	now   func() time.Time
	batch *lineproto.Batch

	mu      sync.Mutex
	pending [][]byte // failed payloads awaiting retry
	retries int
	closed  bool
	stop    chan struct{}
	done    chan struct{}

	sent    int64
	dropped int64
}

// New validates the configuration and starts the background flusher.
func New(cfg Config) (*Client, error) {
	if cfg.Endpoint == "" && cfg.Sink == nil {
		return nil, fmt.Errorf("usermetric: Endpoint or Sink required")
	}
	if cfg.Database == "" {
		cfg.Database = "lms"
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Client{
		cfg:   cfg,
		now:   cfg.Now,
		batch: lineproto.NewBatch(cfg.DefaultTags),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if cfg.Sink != nil {
		c.send = cfg.Sink
	} else {
		client := &tsdb.Client{BaseURL: strings.TrimRight(cfg.Endpoint, "/"), Database: cfg.Database, HTTPClient: cfg.HTTPClient}
		c.send = client.WriteBody
	}
	if cfg.FlushInterval > 0 {
		go c.flushLoop()
	} else {
		close(c.done)
	}
	return c, nil
}

func (c *Client) flushLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := c.Flush(); err != nil && c.cfg.OnError != nil {
				c.cfg.OnError(err)
			}
		case <-c.stop:
			return
		}
	}
}

// Metric buffers a single-value metric. Extra tags override default tags on
// collision.
func (c *Client) Metric(name string, value float64, tags map[string]string) error {
	return c.MetricFields(name, map[string]lineproto.Value{"value": lineproto.Float(value)}, tags)
}

// MetricFields buffers a multi-field metric.
func (c *Client) MetricFields(name string, fields map[string]lineproto.Value, tags map[string]string) error {
	p := lineproto.Point{Measurement: name, Tags: tags, Fields: fields}
	if err := c.batch.Add(p, c.now()); err != nil {
		return fmt.Errorf("usermetric: %w", err)
	}
	if c.batch.Len() >= c.cfg.MaxBatch {
		return c.Flush()
	}
	return nil
}

// Event buffers a string event into the "events" measurement. Events mark
// points in time (application start/end, phase changes) and appear as
// dashed annotation lines in the dashboards (paper Fig. 3).
func (c *Client) Event(text string, tags map[string]string) error {
	p := lineproto.Point{
		Measurement: "events",
		Tags:        tags,
		Fields:      map[string]lineproto.Value{"text": lineproto.String(text)},
	}
	if err := c.batch.Add(p, c.now()); err != nil {
		return fmt.Errorf("usermetric: %w", err)
	}
	if c.batch.Len() >= c.cfg.MaxBatch {
		return c.Flush()
	}
	return nil
}

// Flush transmits the buffered batch plus any pending retries. Failed
// payloads are kept for the next flush until RetryLimit is exceeded, then
// dropped (monitoring must never stall the application).
func (c *Client) Flush() error {
	payload := c.batch.Flush()
	c.mu.Lock()
	defer c.mu.Unlock()
	if payload != nil {
		c.pending = append(c.pending, payload)
	}
	var firstErr error
	for len(c.pending) > 0 {
		p := c.pending[0]
		if err := c.send(p); err != nil {
			c.retries++
			if c.retries > c.cfg.RetryLimit {
				c.dropped += int64(countLines(p))
				c.pending = c.pending[1:]
				c.retries = 0
			}
			if firstErr == nil {
				firstErr = err
			}
			break // try again next flush
		}
		c.sent += int64(countLines(p))
		c.pending = c.pending[1:]
		c.retries = 0
	}
	return firstErr
}

func countLines(p []byte) int {
	n := 0
	for _, b := range p {
		if b == '\n' {
			n++
		}
	}
	return n
}

// Stats returns the number of points transmitted and dropped.
func (c *Client) Stats() (sent, dropped int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.dropped
}

// Close flushes remaining data and stops the background flusher. The client
// must not be used afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.cfg.FlushInterval > 0 {
		close(c.stop)
		<-c.done
	}
	return c.Flush()
}

// --- application-transparent wrappers ---------------------------------------

// The paper describes automatically preloadable libraries that overload
// common functions for thread affinity and data allocation, providing
// monitoring data in an application-transparent way. Go has no LD_PRELOAD,
// so the equivalents are explicit instrumentation hooks with the same
// output: metrics named like the preload libraries emit them.

// Tracker mirrors the preloadable instrumentation: it observes allocations
// and thread-affinity changes and reports them through a Client.
type Tracker struct {
	c  *Client
	mu sync.Mutex
	// current allocation total in bytes
	allocated int64
}

// NewTracker wraps a client.
func NewTracker(c *Client) *Tracker { return &Tracker{c: c} }

// TrackAlloc records an allocation (positive) or free (negative) of n bytes
// and emits the running total, like the malloc-overloading preload library.
func (t *Tracker) TrackAlloc(n int64, tags map[string]string) error {
	t.mu.Lock()
	t.allocated += n
	if t.allocated < 0 {
		t.allocated = 0
	}
	total := t.allocated
	t.mu.Unlock()
	return t.c.MetricFields("app_allocation", map[string]lineproto.Value{
		"delta": lineproto.Int(n),
		"total": lineproto.Int(total),
	}, tags)
}

// Allocated returns the currently tracked allocation total.
func (t *Tracker) Allocated() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allocated
}

// TrackAffinity records that a thread was pinned to a CPU, like the
// pthread_setaffinity-overloading preload library.
func (t *Tracker) TrackAffinity(threadID, cpu int, tags map[string]string) error {
	merged := map[string]string{"tid": fmt.Sprint(threadID)}
	for k, v := range tags {
		merged[k] = v
	}
	return t.c.MetricFields("app_affinity", map[string]lineproto.Value{
		"cpu": lineproto.Int(int64(cpu)),
	}, merged)
}
