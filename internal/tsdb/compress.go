package tsdb

// Gorilla-style chunk compression: the third run state (DESIGN.md §13).
//
// Runs progress building → sealed → compressed. A building run is the
// shard's transient runBuilder; a sealed run is a published colRun with
// raw typed columns (column.go); once a run has sat untouched for the
// configured idle window the background compactor (tsdb.go,
// SetCompressAfter) re-encodes it into a compRun — per-column compressed
// chunks — and drops the raw arrays:
//
//   - timestamps: delta-of-delta, bucketed bit codes (Facebook Gorilla §4.1
//     as adopted by Prometheus/InfluxDB). Fixed-interval samples — the
//     monitoring hot case — cost 1 bit/point;
//   - float columns: XOR with leading/trailing-zero windows (Gorilla §4.2),
//     bit-exact for every float64 including NaN payloads;
//   - int and bool columns: zigzag delta varints, byte-aligned;
//   - string columns: interned ids bit-packed at the width of the largest
//     id in the chunk;
//   - presence bitmaps stay raw words (already 1 bit/row) so query views
//     can alias them without a decode; mixed-kind columns stay raw too
//     (they are rare and carry no exploitable structure).
//
// Everything is byte-exact: decompression reproduces the raw columns
// bit for bit, so aggregation answers are byte-identical to the sealed
// state. A compressed run is immutable; the write path handles the rare
// mutations by decompress-merge-recompress (exact-timestamp rewrites) or
// by opening a fresh run next to it (appends), and compaction
// decompresses when run sizes demand a merge (tsdb.go).
//
// Arithmetic note: deltas and delta-of-deltas are computed in uint64 with
// wraparound and zigzag-coded, so the codec is total over all int64
// timestamps/values — no overflow special cases.

import (
	"math"
	mbits "math/bits"
	"sort"
	"sync"

	"repro/internal/lineproto"
	"repro/internal/obs"
)

// compRun is one compressed run: the per-column chunks plus the header
// fields phase 1 of Select needs without decoding (row count, time
// bounds). Immutable once published.
type compRun struct {
	n            int
	minTS, maxTS int64
	ts           []byte // delta-of-delta timestamp chunk
	cols         []compCol
	rawBytes     int64 // resident-byte estimate of the sealed form (ratio gauge)
}

// compCol is one field's compressed column.
type compCol struct {
	name    string
	kind    lineproto.ValueKind
	mixed   bool
	width   uint8             // bit width of packed string ids (0 = all id 0)
	data    []byte            // XOR floats / zigzag-delta varints / bit-packed ids
	present []uint64          // raw bitmap words; nil = dense
	vals    []lineproto.Value // mixed columns stay raw
}

func (c *compRun) colByName(name string) int {
	for i := range c.cols {
		if c.cols[i].name == name {
			return i
		}
	}
	return -1
}

// sizeBytes estimates the resident footprint of the compressed run.
func (c *compRun) sizeBytes() int64 {
	n := int64(len(c.ts))
	for i := range c.cols {
		cc := &c.cols[i]
		n += int64(len(cc.data)) + int64(len(cc.present))*8 + int64(len(cc.vals))*valueBytes
	}
	return n
}

// valueBytes approximates sizeof(lineproto.Value) for footprint gauges.
const valueBytes = 40

// rawRunBytes estimates the resident footprint of a sealed run's arrays.
func rawRunBytes(ts []int64, cols []col) int64 {
	n := int64(len(ts)) * 8
	for i := range cols {
		c := &cols[i]
		n += int64(len(c.floats))*8 + int64(len(c.ints))*8 +
			int64(len(c.strs))*4 + int64(len(c.vals))*valueBytes +
			int64(len(c.present))*8
	}
	return n
}

// --- timestamp chunk: delta-of-delta -----------------------------------

// Bit codes for one zigzagged delta-of-delta:
//
//	0                  → dod == 0 (the fixed-interval steady state)
//	10  + 16 bits      → |dod| fits the ±ms jitter of real scrape loops
//	110 + 32 bits      → second-scale gaps
//	111 + 64 bits      → anything (first delta of a run lands here once)
func appendDodBits(w *bitWriter, z uint64) {
	switch {
	case z == 0:
		w.writeBit(false)
	case z < 1<<16:
		w.writeBit(true)
		w.writeBit(false)
		w.writeBits(z, 16)
	case z < 1<<32:
		w.writeBit(true)
		w.writeBit(true)
		w.writeBit(false)
		w.writeBits(z, 32)
	default:
		w.writeBit(true)
		w.writeBit(true)
		w.writeBit(true)
		w.writeBits(z, 64)
	}
}

func zigzag(v uint64) uint64   { return (v << 1) ^ uint64(int64(v)>>63) }
func unzigzag(z uint64) uint64 { return (z >> 1) ^ -(z & 1) }

// encodeTimestamps compresses a sorted timestamp column. The first
// timestamp is stored raw; every later one as the zigzagged
// delta-of-delta against an initial delta of 0.
func encodeTimestamps(ts []int64) []byte {
	var w bitWriter
	w.writeBits(uint64(ts[0]), 64)
	prevDelta := uint64(0)
	for i := 1; i < len(ts); i++ {
		delta := uint64(ts[i]) - uint64(ts[i-1])
		appendDodBits(&w, zigzag(delta-prevDelta))
		prevDelta = delta
	}
	return w.bytes()
}

// decodeTimestamps decompresses a timestamp chunk into dst (len n).
func decodeTimestamps(data []byte, dst []int64) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitReader{b: data}
	first, err := r.readBits(64)
	if err != nil {
		return err
	}
	dst[0] = int64(first)
	prev, prevDelta := first, uint64(0)
	for i := 1; i < len(dst); i++ {
		bits, err := readDodBits(&r)
		if err != nil {
			return err
		}
		prevDelta += unzigzag(bits)
		prev += prevDelta
		dst[i] = int64(prev)
	}
	return nil
}

func readDodBits(r *bitReader) (uint64, error) {
	b, err := r.readBit()
	if err != nil || !b {
		return 0, err
	}
	if b, err = r.readBit(); err != nil {
		return 0, err
	}
	if !b {
		return r.readBits(16)
	}
	if b, err = r.readBit(); err != nil {
		return 0, err
	}
	if !b {
		return r.readBits(32)
	}
	return r.readBits(64)
}

// --- float chunk: XOR with leading/trailing-zero windows ----------------

// encodeFloats compresses a float column bit-exactly (Gorilla §4.2). The
// first value is raw; each later value XORs against its predecessor:
// '0' repeats the previous value, '10' reuses the previous significant-bit
// window, '11' opens a new window (5 bits leading zeros, 6 bits length-1,
// then the significant bits).
func encodeFloats(vals []float64) []byte {
	var w bitWriter
	prev := math.Float64bits(vals[0])
	w.writeBits(prev, 64)
	lead, sig := uint(0), uint(0) // sig == 0 marks "no window yet"
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.writeBit(false)
			continue
		}
		w.writeBit(true)
		l := uint(mbits.LeadingZeros64(x))
		if l > 31 {
			l = 31 // 5-bit field; longer runs just store a few extra bits
		}
		t := uint(mbits.TrailingZeros64(x))
		s := 64 - l - t
		if sig != 0 && l >= lead && 64-lead-sig <= t {
			// The previous window still covers every significant bit.
			w.writeBit(false)
			w.writeBits(x>>(64-lead-sig), sig)
			continue
		}
		w.writeBit(true)
		w.writeBits(uint64(l), 5)
		w.writeBits(uint64(s-1), 6)
		w.writeBits(x>>t, s)
		lead, sig = l, s
	}
	return w.bytes()
}

// decodeFloats decompresses a float chunk into dst (len n).
func decodeFloats(data []byte, dst []float64) error {
	if len(dst) == 0 {
		return nil
	}
	r := bitReader{b: data}
	prev, err := r.readBits(64)
	if err != nil {
		return err
	}
	dst[0] = math.Float64frombits(prev)
	lead, sig := uint(0), uint(0)
	for i := 1; i < len(dst); i++ {
		changed, err := r.readBit()
		if err != nil {
			return err
		}
		if !changed {
			dst[i] = math.Float64frombits(prev)
			continue
		}
		newWin, err := r.readBit()
		if err != nil {
			return err
		}
		if newWin {
			hdr, err := r.readBits(11)
			if err != nil {
				return err
			}
			lead = uint(hdr >> 6)
			sig = uint(hdr&63) + 1
		} else if sig == 0 {
			return errShortChunk // window reuse before any window opened
		}
		bits, err := r.readBits(sig)
		if err != nil {
			return err
		}
		prev ^= bits << (64 - lead - sig)
		dst[i] = math.Float64frombits(prev)
	}
	return nil
}

// --- int chunk: zigzag delta varints ------------------------------------

// encodeInts compresses an int/bool column as byte-aligned zigzag delta
// varints: counters move by small steps, so most deltas are 1-2 bytes.
func encodeInts(vals []int64) []byte {
	out := make([]byte, 0, len(vals)+8)
	prev := uint64(0)
	for _, v := range vals {
		out = appendUvarint64(out, zigzag(uint64(v)-prev))
		prev = uint64(v)
	}
	return out
}

// decodeInts decompresses an int chunk into dst (len n).
func decodeInts(data []byte, dst []int64) error {
	prev := uint64(0)
	for i := range dst {
		z, m, err := readUvarint64(data)
		if err != nil {
			return err
		}
		data = data[m:]
		prev += unzigzag(z)
		dst[i] = int64(prev)
	}
	return nil
}

// appendUvarint64/readUvarint64 are binary.AppendUvarint/Uvarint with an
// explicit error instead of panics or silent truncation on hostile input.
func appendUvarint64(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint64(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1, nil
		}
	}
	return 0, 0, errShortChunk
}

// --- string-id chunk: bit-width packing ---------------------------------

// encodeStrIDs packs interned string ids at the bit width of the largest
// id in the chunk. Event columns usually intern a handful of payloads, so
// ids cost 1-4 bits instead of 4 bytes.
func encodeStrIDs(ids []uint32) (data []byte, width uint8) {
	maxID := uint32(0)
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	width = uint8(mbits.Len32(maxID))
	if width == 0 {
		return nil, 0 // every id is 0
	}
	var w bitWriter
	for _, id := range ids {
		w.writeBits(uint64(id), uint(width))
	}
	return w.bytes(), width
}

// decodeStrIDs unpacks a string-id chunk into dst (len n). Every id must
// be below maxID (the snapshotted intern-table length), so a corrupt
// chunk can never index past the table.
func decodeStrIDs(data []byte, width uint8, maxID uint32, dst []uint32) error {
	if width == 0 {
		for i := range dst {
			dst[i] = 0
		}
		if maxID == 0 && len(dst) > 0 {
			return errShortChunk
		}
		return nil
	}
	if width > 32 {
		return errShortChunk
	}
	r := bitReader{b: data}
	for i := range dst {
		v, err := r.readBits(uint(width))
		if err != nil {
			return err
		}
		if uint32(v) >= maxID {
			return errShortChunk
		}
		dst[i] = uint32(v)
	}
	return nil
}

// --- run compression -----------------------------------------------------

// compressColumns encodes a sealed run's captured column headers into a
// compRun. The inputs are immutable snapshots (the same guarantee Select's
// phase 1 relies on), so callers may encode outside the shard lock.
func compressColumns(ts []int64, cols []col) *compRun {
	n := len(ts)
	c := &compRun{
		n:        n,
		minTS:    ts[0],
		maxTS:    ts[n-1],
		ts:       encodeTimestamps(ts),
		rawBytes: rawRunBytes(ts, cols),
	}
	c.cols = make([]compCol, len(cols))
	for i := range cols {
		src := &cols[i]
		dst := &c.cols[i]
		dst.name = src.name
		dst.kind = src.kind
		dst.mixed = src.mixed
		if src.present != nil {
			dst.present = append([]uint64(nil), src.present[:bitWords(n)]...)
		}
		switch {
		case src.mixed:
			dst.vals = append([]lineproto.Value(nil), src.vals[:n]...)
		case src.kind == lineproto.KindFloat:
			dst.data = encodeFloats(src.floats[:n])
		case src.kind == lineproto.KindString:
			dst.data, dst.width = encodeStrIDs(src.strs[:n])
		default: // KindInt, KindBool
			dst.data = encodeInts(src.ints[:n])
		}
	}
	return c
}

// compressRun encodes a published sealed run. Caller must hold the shard
// lock (read mode suffices: it only reads the immutable arrays).
func compressRun(r *colRun) *compRun { return compressColumns(r.ts, r.cols) }

// decompress rebuilds the full sealed form of the run into freshly
// allocated arrays. strsLen bounds string ids (0 disables the check for
// runs that cannot contain string columns).
func (c *compRun) decompress(strsLen int) (*colRun, error) {
	out := &colRun{ts: make([]int64, c.n)}
	if err := decodeTimestamps(c.ts, out.ts); err != nil {
		return nil, err
	}
	out.cols = make([]col, len(c.cols))
	for i := range c.cols {
		src := &c.cols[i]
		dst := &out.cols[i]
		dst.name = src.name
		dst.kind = src.kind
		dst.mixed = src.mixed
		dst.n = c.n
		if src.present != nil {
			dst.present = append([]uint64(nil), src.present...)
		}
		switch {
		case src.mixed:
			dst.vals = append([]lineproto.Value(nil), src.vals...)
		case src.kind == lineproto.KindFloat:
			dst.floats = make([]float64, c.n)
			if err := decodeFloats(src.data, dst.floats); err != nil {
				return nil, err
			}
		case src.kind == lineproto.KindString:
			dst.strs = make([]uint32, c.n)
			if err := decodeStrIDs(src.data, src.width, uint32(strsLen), dst.strs); err != nil {
				return nil, err
			}
		default:
			dst.ints = make([]int64, c.n)
			if err := decodeInts(src.data, dst.ints); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// --- query-time materialization ------------------------------------------
//
// Phase 1 of Select snapshots a compressed run as its immutable compRun
// pointer (after a min/max time-bound cut); phase 2 decodes the chunk
// into a per-worker scratch arena right before the vectorized foldView
// sweeps run over it. The arena recycles its backing arrays across
// queries (sync.Pool), so steady dashboard traffic decodes into warm
// memory instead of allocating per run.

// decodeArena hands out typed scratch slices. Slices taken from it stay
// valid until reset: exhausting a block allocates a fresh one and strands
// the old block with its outstanding slices (freed by GC after the query).
type decodeArena struct {
	i64                    []int64
	f64                    []float64
	u32                    []uint32
	i64off, f64off, u32off int
}

const arenaBlock = 16 * 1024

func arenaGrow(need int) int {
	if need < arenaBlock {
		return arenaBlock
	}
	return need
}

func (a *decodeArena) takeI64(n int) []int64 {
	if a.i64off+n > len(a.i64) {
		a.i64 = make([]int64, arenaGrow(n))
		a.i64off = 0
	}
	s := a.i64[a.i64off : a.i64off+n : a.i64off+n]
	a.i64off += n
	return s
}

func (a *decodeArena) takeF64(n int) []float64 {
	if a.f64off+n > len(a.f64) {
		a.f64 = make([]float64, arenaGrow(n))
		a.f64off = 0
	}
	s := a.f64[a.f64off : a.f64off+n : a.f64off+n]
	a.f64off += n
	return s
}

func (a *decodeArena) takeU32(n int) []uint32 {
	if a.u32off+n > len(a.u32) {
		a.u32 = make([]uint32, arenaGrow(n))
		a.u32off = 0
	}
	s := a.u32[a.u32off : a.u32off+n : a.u32off+n]
	a.u32off += n
	return s
}

func (a *decodeArena) reset() { a.i64off, a.f64off, a.u32off = 0, 0, 0 }

var arenaPool = sync.Pool{New: func() any { return &decodeArena{} }}

// decodeErrOnce rate-limits the corrupt-chunk log: a decode failure at
// query time means bytes that passed the checkpoint CRC still failed the
// codec, which is outside the storage fault model — log it once, serve
// the run as empty rather than failing every query forever.
var decodeErrOnce sync.Once

func noteDecodeError(err error) {
	decodeErrOnce.Do(func() {
		obs.Errorf("tsdb: compressed chunk decode failed (serving affected runs as empty): %v", err)
	})
}

// materializeSnap decodes a compressed run snapshot into scratch-backed
// column views, applying the same time-range cut and raw-Limit clamp
// phase 1 applies to sealed runs. On return rs is an ordinary runSnap:
// the foldView sweeps, raw emission and window bucketing never know the
// rows came out of a chunk.
func materializeSnap(rs *runSnap, q Query, cols []string, strsLen int, a *decodeArena) {
	c := rs.comp
	rs.comp = nil
	rs.cols = make([]colView, len(cols))
	ts := a.takeI64(c.n)
	if err := decodeTimestamps(c.ts, ts); err != nil {
		noteDecodeError(err)
		return
	}
	startNS, endNS := rangeNS(q.Start, q.End)
	lo := sort.Search(len(ts), func(i int) bool { return ts[i] >= startNS })
	hi := sort.Search(len(ts), func(i int) bool { return ts[i] > endNS })
	if lo >= hi {
		return
	}
	if q.Limit > 0 && (q.Agg == "" || q.Agg == AggNone) && len(q.Fields) == 0 && hi-lo > q.Limit {
		hi = lo + q.Limit // the raw-Limit pushdown, post-decode
	}
	rs.ts = ts[lo:hi]
	for ci, name := range cols {
		cci := c.colByName(name)
		if cci < 0 {
			continue
		}
		cc := &c.cols[cci]
		v := &rs.cols[ci]
		v.ok = true
		v.kind = cc.kind
		v.mixed = cc.mixed
		v.off = lo
		v.present = cc.present
		switch {
		case cc.mixed:
			v.vals = cc.vals[lo:hi]
		case cc.kind == lineproto.KindFloat:
			buf := a.takeF64(c.n)
			if err := decodeFloats(cc.data, buf); err != nil {
				noteDecodeError(err)
				*rs = runSnap{cols: make([]colView, len(cols))}
				return
			}
			v.floats = buf[lo:hi]
		case cc.kind == lineproto.KindString:
			buf := a.takeU32(c.n)
			if err := decodeStrIDs(cc.data, cc.width, uint32(strsLen), buf); err != nil {
				noteDecodeError(err)
				*rs = runSnap{cols: make([]colView, len(cols))}
				return
			}
			v.strs = buf[lo:hi]
		default:
			buf := a.takeI64(c.n)
			if err := decodeInts(cc.data, buf); err != nil {
				noteDecodeError(err)
				*rs = runSnap{cols: make([]colView, len(cols))}
				return
			}
			v.ints = buf[lo:hi]
		}
	}
}

// materializeGroup decodes every compressed run of a group and drops runs
// the precise time cut left empty (phase 1 can only bound-check a chunk's
// min/max timestamp, so a run may turn out to hold no row in range — a
// sealed run would never have been snapshotted, and byte-identity demands
// the same here). Returns false when the whole group vanished.
func materializeGroup(g *selectGroup, q Query, cols []string, strsLen int, a *decodeArena) bool {
	kept := g.runs[:0]
	for ri := range g.runs {
		if g.runs[ri].comp != nil {
			materializeSnap(&g.runs[ri], q, cols, strsLen, a)
			if len(g.runs[ri].ts) == 0 {
				continue
			}
		}
		kept = append(kept, g.runs[ri])
	}
	g.runs = kept
	return len(g.runs) > 0
}
