package analysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// seedJobData writes a 4-node job's monitoring data covering the Fig. 2 and
// Fig. 4 scenarios: nodes h1..h3 compute steadily, h4 has an 15-minute
// idle break starting at minute 30.
func seedJobData(t *testing.T) (*tsdb.DB, JobMeta) {
	t.Helper()
	db := tsdb.NewDB("lms")
	nodes := []string{"h1", "h2", "h3", "h4"}
	start := time.Unix(10000, 0).UTC()
	for i := 0; i < 120; i++ { // 2 hours, one sample per minute
		ts := start.Add(time.Duration(i) * time.Minute)
		for ni, node := range nodes {
			flops := 2000.0 + float64(ni)*10 // distinguishable per node
			bw := 8000.0 + float64(ni)*50
			cpu := 95.0
			if node == "h4" && i >= 30 && i < 45 {
				flops, bw, cpu = 2.0, 50.0, 1.0
			}
			pts := []lineproto.Point{
				{
					Measurement: "likwid_mem_dp",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields: map[string]lineproto.Value{
						"dp_mflop_s":                lineproto.Float(flops),
						"memory_bandwidth_mbytes_s": lineproto.Float(bw),
						"ipc":                       lineproto.Float(1.2),
					},
					Time: ts,
				},
				{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields:      map[string]lineproto.Value{"percent": lineproto.Float(cpu)},
					Time:        ts,
				},
				{
					Measurement: "memory",
					Tags:        map[string]string{"hostname": node},
					Fields:      map[string]lineproto.Value{"used_kb": lineproto.Int(8 * 1024 * 1024), "used_percent": lineproto.Float(30)},
					Time:        ts,
				},
				{
					Measurement: "network",
					Tags:        map[string]string{"hostname": node},
					Fields:      map[string]lineproto.Value{"rx_bytes_per_s": lineproto.Float(2e6)},
					Time:        ts,
				},
				{
					Measurement: "disk",
					Tags:        map[string]string{"hostname": node},
					Fields:      map[string]lineproto.Value{"read_bytes_per_s": lineproto.Float(1e6)},
					Time:        ts,
				},
			}
			if err := db.WritePoints(pts); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, JobMeta{
		ID: "42", User: "alice", Nodes: nodes,
		Start: start, End: start.Add(2 * time.Hour),
	}
}

func TestEvaluateJobReport(t *testing.T) {
	db, job := seedJobData(t)
	ev := NewDBEvaluator(db)
	ev.PeakMemBWMBs, ev.PeakDPMFlops = 100000, 500000
	rep, err := ev.Evaluate(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(DefaultMetricSpecs()) {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	// DP FP rate row: h1 mean 2000, h4 dragged down by the break.
	row, ok := rep.rowByField("likwid_mem_dp", "dp_mflop_s")
	if !ok {
		t.Fatal("missing flops row")
	}
	if math.Abs(row.PerNode["h1"]-2000) > 1 {
		t.Fatalf("h1 %v", row.PerNode["h1"])
	}
	if row.PerNode["h4"] >= row.PerNode["h3"] {
		t.Fatalf("h4 should trail: %v vs %v", row.PerNode["h4"], row.PerNode["h3"])
	}
	if row.Stats.Min != row.PerNode["h4"] || row.Stats.Max != row.PerNode["h3"] {
		t.Fatalf("stats %+v", row.Stats)
	}
	// Memory row scaled to GB.
	memRow, _ := rep.rowByField("memory", "used_kb")
	if math.Abs(memRow.Stats.Mean-8) > 0.01 {
		t.Fatalf("memory GB %v", memRow.Stats.Mean)
	}
}

func TestEvaluateDetectsFig4Break(t *testing.T) {
	db, job := seedJobData(t)
	ev := NewDBEvaluator(db)
	rep, err := ev.Evaluate(job)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pathological() {
		t.Fatal("break not detected")
	}
	// Both HPM rules fire on h4 only.
	byRule := map[string][]string{}
	for _, v := range rep.Violations {
		byRule[v.Rule.Name] = append(byRule[v.Rule.Name], v.Node)
	}
	for _, rule := range []string{"low_flops", "low_membw"} {
		nodes := byRule[rule]
		if len(nodes) != 1 || nodes[0] != "h4" {
			t.Fatalf("%s violations on %v", rule, nodes)
		}
	}
	for _, v := range rep.Violations {
		if v.Duration() < 10*time.Minute {
			t.Fatalf("violation shorter than timeout: %v", v.Duration())
		}
	}
}

func TestEvaluateHealthyJobClean(t *testing.T) {
	db := tsdb.NewDB("lms")
	start := time.Unix(0, 0).UTC()
	for i := 0; i < 60; i++ {
		_ = db.WritePoint(lineproto.Point{
			Measurement: "likwid_mem_dp",
			Tags:        map[string]string{"hostname": "h1"},
			Fields: map[string]lineproto.Value{
				"dp_mflop_s":                lineproto.Float(50000),
				"memory_bandwidth_mbytes_s": lineproto.Float(40000),
				"ipc":                       lineproto.Float(1.8),
			},
			Time: start.Add(time.Duration(i) * time.Minute),
		})
		_ = db.WritePoint(lineproto.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{"percent": lineproto.Float(98)},
			Time:        start.Add(time.Duration(i) * time.Minute),
		})
	}
	ev := NewDBEvaluator(db)
	ev.PeakMemBWMBs, ev.PeakDPMFlops = 50000, 400000
	rep, err := ev.Evaluate(JobMeta{ID: "1", Nodes: []string{"h1"}, Start: start, End: start.Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pathological() {
		t.Fatalf("healthy job flagged: %+v", rep.Violations)
	}
	// 40000/50000 = 80% of peak bandwidth -> bandwidth saturated.
	if rep.Classification.Pattern != PatternBandwidthBound {
		t.Fatalf("pattern %s (path %v)", rep.Classification.Pattern, rep.Classification.Path)
	}
}

func TestEvaluateIdleJobClassifiedIdle(t *testing.T) {
	db := tsdb.NewDB("lms")
	start := time.Unix(0, 0).UTC()
	for i := 0; i < 60; i++ {
		_ = db.WritePoint(lineproto.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{"percent": lineproto.Float(0.5)},
			Time:        start.Add(time.Duration(i) * time.Minute),
		})
	}
	ev := NewDBEvaluator(db)
	rep, err := ev.Evaluate(JobMeta{ID: "1", Nodes: []string{"h1"}, Start: start, End: start.Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classification.Pattern != PatternIdle {
		t.Fatalf("pattern %s", rep.Classification.Pattern)
	}
	// idle_cpu rule fires too.
	found := false
	for _, v := range rep.Violations {
		if v.Rule.Name == "idle_cpu" {
			found = true
		}
	}
	if !found {
		t.Fatalf("idle rule silent: %+v", rep.Violations)
	}
}

func TestEvaluateRunningJobUsesNow(t *testing.T) {
	db, job := seedJobData(t)
	job.End = time.Time{} // running
	fixed := job.Start.Add(20 * time.Minute)
	ev := NewDBEvaluator(db)
	ev.Now = func() time.Time { return fixed }
	rep, err := ev.Evaluate(job)
	if err != nil {
		t.Fatal(err)
	}
	// Online view before the break: no violations yet.
	if rep.Pathological() {
		t.Fatalf("early online view flagged: %+v", rep.Violations)
	}
}

func TestEvaluateValidation(t *testing.T) {
	ev := &Evaluator{}
	if _, err := ev.Evaluate(JobMeta{ID: "x", Nodes: []string{"h"}}); err == nil {
		t.Error("nil querier accepted")
	}
	ev.Querier = tsdb.QuerierFor(tsdb.NewDB("lms"))
	ev.Database = "lms"
	if _, err := ev.Evaluate(JobMeta{ID: "x"}); err == nil {
		t.Error("no nodes accepted")
	}
	// Empty database: all rows NaN, no violations, still a report.
	rep, err := ev.Evaluate(JobMeta{ID: "x", Nodes: []string{"h1"}, Start: time.Unix(0, 0), End: time.Unix(100, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if !math.IsNaN(row.PerNode["h1"]) {
			t.Fatalf("expected NaN, got %v", row.PerNode["h1"])
		}
		if row.Stats.N != 0 {
			t.Fatalf("stats over missing data: %+v", row.Stats)
		}
	}
}

func TestFormatTableFig2Shape(t *testing.T) {
	db, job := seedJobData(t)
	ev := NewDBEvaluator(db)
	rep, _ := ev.Evaluate(job)
	table := rep.FormatTable()
	// Header names the job and the four rightmost columns are the nodes.
	if !strings.Contains(table, "Job 42 (user alice) on 4 nodes") {
		t.Fatalf("header missing:\n%s", table)
	}
	lines := strings.Split(table, "\n")
	if len(lines) < 10 {
		t.Fatalf("table too short:\n%s", table)
	}
	headerLine := lines[1]
	for _, col := range []string{"metric", "min", "median", "max", "h1", "h2", "h3", "h4"} {
		if !strings.Contains(headerLine, col) {
			t.Fatalf("header %q missing %q", headerLine, col)
		}
	}
	for _, label := range []string{"CPU load", "DP FP rate", "Memory bandwidth", "Allocated memory", "Network I/O", "File I/O"} {
		if !strings.Contains(table, label) {
			t.Fatalf("row %q missing:\n%s", label, table)
		}
	}
	if !strings.Contains(table, "Pathological behaviour detected") {
		t.Fatalf("violations section missing:\n%s", table)
	}
	if !strings.Contains(table, "Performance pattern:") {
		t.Fatalf("pattern line missing:\n%s", table)
	}
}

func TestFormatTableHealthy(t *testing.T) {
	db := tsdb.NewDB("lms")
	start := time.Unix(0, 0).UTC()
	for i := 0; i < 30; i++ {
		_ = db.WritePoint(lineproto.Point{
			Measurement: "cpu", Tags: map[string]string{"hostname": "h1"},
			Fields: map[string]lineproto.Value{"percent": lineproto.Float(90)},
			Time:   start.Add(time.Duration(i) * time.Minute),
		})
	}
	ev := NewDBEvaluator(db)
	rep, _ := ev.Evaluate(JobMeta{ID: "ok", Nodes: []string{"h1"}, Start: start, End: start.Add(time.Hour)})
	table := rep.FormatTable()
	if !strings.Contains(table, "No pathological behaviour detected") {
		t.Fatalf("healthy summary missing:\n%s", table)
	}
	// Missing metrics render as "-".
	if !strings.Contains(table, "-") {
		t.Fatalf("missing data marker absent:\n%s", table)
	}
}
