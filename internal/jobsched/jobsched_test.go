package jobsched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func cluster(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("node%02d", i+1), Cores: 8}
	}
	return nodes
}

func newSched(t *testing.T, n int) *Scheduler {
	t.Helper()
	s, err := New(cluster(n))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := New([]Node{{Name: "", Cores: 8}}); err == nil {
		t.Error("anonymous node accepted")
	}
	if _, err := New([]Node{{Name: "a", Cores: 0}}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New([]Node{{Name: "a", Cores: 8}, {Name: "a", Cores: 8}}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSched(t, 4)
	cases := []JobRequest{
		{ID: "", Nodes: 1, Walltime: 10},
		{ID: "a", Nodes: 0, Walltime: 10},
		{ID: "a", Nodes: 5, Walltime: 10},
		{ID: "a", Nodes: 1, Walltime: 0},
	}
	for i, req := range cases {
		if err := s.Submit(req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
	if err := s.Submit(JobRequest{ID: "a", Nodes: 1, Walltime: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobRequest{ID: "a", Nodes: 1, Walltime: 10}); err == nil {
		t.Error("duplicate queued id accepted")
	}
	if _, err := s.Advance(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(JobRequest{ID: "a", Nodes: 1, Walltime: 10}); err == nil {
		t.Error("duplicate running id accepted")
	}
	if _, err := s.Advance(-1); err == nil {
		t.Error("negative advance accepted")
	}
}

func TestFIFOStartAndEnd(t *testing.T) {
	s := newSched(t, 4)
	_ = s.Submit(JobRequest{ID: "j1", User: "alice", Nodes: 2, Walltime: 100})
	_ = s.Submit(JobRequest{ID: "j2", User: "bob", Nodes: 2, Walltime: 50})
	events, err := s.Advance(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || !events[0].Start || !events[1].Start {
		t.Fatalf("events %+v", events)
	}
	if events[0].Job.Req.ID != "j1" || events[1].Job.Req.ID != "j2" {
		t.Fatalf("order %+v", events)
	}
	if s.Utilization() != 1 {
		t.Fatalf("utilization %v", s.Utilization())
	}
	// j2 ends at t=50, j1 at t=100.
	events, _ = s.Advance(60)
	if len(events) != 1 || events[0].Start || events[0].Job.Req.ID != "j2" {
		t.Fatalf("events %+v", events)
	}
	if events[0].Time != 50 {
		t.Fatalf("end time %v", events[0].Time)
	}
	events, _ = s.Advance(60)
	if len(events) != 1 || events[0].Job.Req.ID != "j1" || events[0].Time != 100 {
		t.Fatalf("events %+v", events)
	}
	if len(s.Finished()) != 2 || s.Utilization() != 0 {
		t.Fatal("cleanup")
	}
}

func TestAllocationDeterministic(t *testing.T) {
	s := newSched(t, 4)
	_ = s.Submit(JobRequest{ID: "j1", Nodes: 2, Walltime: 10})
	events, _ := s.Advance(0)
	nodes := events[0].Job.Nodes
	if len(nodes) != 2 || nodes[0] != "node01" || nodes[1] != "node02" {
		t.Fatalf("nodes %v", nodes)
	}
}

func TestQueueWhenFull(t *testing.T) {
	s := newSched(t, 2)
	_ = s.Submit(JobRequest{ID: "j1", Nodes: 2, Walltime: 100})
	_ = s.Submit(JobRequest{ID: "j2", Nodes: 1, Walltime: 10})
	events, _ := s.Advance(0)
	if len(events) != 1 {
		t.Fatalf("events %+v", events)
	}
	if len(s.Queued()) != 1 {
		t.Fatal("j2 should queue")
	}
	// j2 starts right when j1 ends.
	events, _ = s.Advance(150)
	var started, ended []string
	for _, e := range events {
		if e.Start {
			started = append(started, e.Job.Req.ID)
		} else {
			ended = append(ended, e.Job.Req.ID)
		}
	}
	if len(ended) != 2 || len(started) != 1 || started[0] != "j2" {
		t.Fatalf("events %+v", events)
	}
	// j2 ran 100..110.
	j2 := s.Finished()[1]
	if j2.StartT != 100 || j2.EndT != 110 {
		t.Fatalf("j2 times %v %v", j2.StartT, j2.EndT)
	}
}

func TestBackfill(t *testing.T) {
	s := newSched(t, 4)
	_ = s.Submit(JobRequest{ID: "big", Nodes: 3, Walltime: 100})
	_ = s.Submit(JobRequest{ID: "huge", Nodes: 4, Walltime: 100}) // blocks head
	_ = s.Submit(JobRequest{ID: "small", Nodes: 1, Walltime: 10}) // backfills
	events, _ := s.Advance(0)
	ids := map[string]bool{}
	for _, e := range events {
		if e.Start {
			ids[e.Job.Req.ID] = true
		}
	}
	if !ids["big"] || !ids["small"] || ids["huge"] {
		t.Fatalf("started %v", ids)
	}
	// Without backfill, small waits behind huge.
	s2 := newSched(t, 4)
	s2.Backfill = false
	_ = s2.Submit(JobRequest{ID: "big", Nodes: 3, Walltime: 100})
	_ = s2.Submit(JobRequest{ID: "huge", Nodes: 4, Walltime: 100})
	_ = s2.Submit(JobRequest{ID: "small", Nodes: 1, Walltime: 10})
	events, _ = s2.Advance(0)
	if len(events) != 1 || events[0].Job.Req.ID != "big" {
		t.Fatalf("fifo events %+v", events)
	}
}

func TestNodeJobLookup(t *testing.T) {
	s := newSched(t, 2)
	_ = s.Submit(JobRequest{ID: "j1", Nodes: 1, Walltime: 10})
	_, _ = s.Advance(0)
	job, ok := s.NodeJob("node01")
	if !ok || job.Req.ID != "j1" {
		t.Fatalf("%v %v", job, ok)
	}
	if _, ok := s.NodeJob("node02"); ok {
		t.Fatal("free node has job")
	}
	if _, ok := s.NodeJob("ghost"); ok {
		t.Fatal("ghost node has job")
	}
}

func TestJobStateString(t *testing.T) {
	if StateQueued.String() != "queued" || StateRunning.String() != "running" || StateFinished.String() != "finished" {
		t.Fatal("state names")
	}
	if JobState(9).String() == "" {
		t.Fatal("unknown state")
	}
}

func TestEventTimesMonotonic(t *testing.T) {
	s := newSched(t, 3)
	for i := 0; i < 9; i++ {
		_ = s.Submit(JobRequest{ID: fmt.Sprintf("j%d", i), Nodes: 1 + i%3, Walltime: float64(10 + i*7)})
	}
	var all []Event
	for i := 0; i < 20; i++ {
		events, err := s.Advance(25)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, events...)
	}
	prev := -1.0
	for _, e := range all {
		if e.Time < prev {
			t.Fatalf("events out of order: %v after %v", e.Time, prev)
		}
		prev = e.Time
	}
	if len(s.Finished()) != 9 {
		t.Fatalf("finished %d", len(s.Finished()))
	}
}

// Property: never more nodes allocated than exist, and every started job
// eventually ends with start <= end and pairwise-disjoint concurrent
// allocations.
func TestNoOversubscriptionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		_ = seed
		nNodes := r.Intn(6) + 2
		s, err := New(cluster(nNodes))
		if err != nil {
			return false
		}
		njobs := r.Intn(20) + 5
		for i := 0; i < njobs; i++ {
			_ = s.Submit(JobRequest{
				ID:       fmt.Sprintf("j%d", i),
				Nodes:    r.Intn(nNodes) + 1,
				Walltime: float64(r.Intn(100) + 1),
			})
		}
		type span struct {
			start, end float64
			nodes      []string
		}
		open := map[string]*span{}
		var closed []span
		for step := 0; step < 50; step++ {
			events, err := s.Advance(float64(r.Intn(30) + 1))
			if err != nil {
				return false
			}
			for _, e := range events {
				if e.Start {
					open[e.Job.Req.ID] = &span{start: e.Time, nodes: e.Job.Nodes}
				} else {
					sp := open[e.Job.Req.ID]
					if sp == nil {
						return false // end without start
					}
					sp.end = e.Time
					if sp.end < sp.start {
						return false
					}
					closed = append(closed, *sp)
					delete(open, e.Job.Req.ID)
				}
			}
			// Concurrent running jobs never share nodes.
			used := map[string]bool{}
			for _, j := range s.Running() {
				for _, n := range j.Nodes {
					if used[n] {
						return false
					}
					used[n] = true
				}
			}
			if len(used) > nNodes {
				return false
			}
		}
		// Drain: enough simulated time for every queued job to run.
		events, err := s.Advance(float64(njobs) * 200)
		if err != nil {
			return false
		}
		for _, e := range events {
			if e.Start {
				open[e.Job.Req.ID] = &span{start: e.Time, nodes: e.Job.Nodes}
			} else {
				sp := open[e.Job.Req.ID]
				if sp == nil || e.Time < sp.start {
					return false
				}
				sp.end = e.Time
				closed = append(closed, *sp)
				delete(open, e.Job.Req.ID)
			}
		}
		return len(open) == 0 && len(closed) == njobs && len(s.Queued()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: start/end signal ordering per job (start strictly before end in
// the event stream).
func TestSignalOrderingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	f := func(seed int64) bool {
		_ = seed
		s, _ := New(cluster(3))
		n := r.Intn(10) + 2
		for i := 0; i < n; i++ {
			_ = s.Submit(JobRequest{ID: fmt.Sprintf("j%d", i), Nodes: r.Intn(3) + 1, Walltime: float64(r.Intn(50) + 1)})
		}
		seenStart := map[string]bool{}
		for step := 0; step < 40; step++ {
			events, _ := s.Advance(20)
			for _, e := range events {
				id := e.Job.Req.ID
				if e.Start {
					if seenStart[id] {
						return false // double start
					}
					seenStart[id] = true
				} else if !seenStart[id] {
					return false // end before start
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
