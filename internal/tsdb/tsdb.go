// Package tsdb implements the time-series database back-end of the LIKWID
// Monitoring Stack.
//
// The paper (Sect. III-C) uses InfluxDB: a time-series store that accepts
// floating-point metrics as well as string events, written via an HTTP
// endpoint in the line protocol and read back with InfluxQL queries. This
// package is a from-scratch, stdlib-only replacement that keeps the parts of
// the interface LMS depends on:
//
//   - a Store holding multiple named databases (the router duplicates job
//     metrics into per-user databases),
//   - series organized by measurement + tag set, floats and strings mixed,
//   - time-range queries with aggregation, GROUP BY time(...) windows and
//     GROUP BY tag,
//   - an InfluxDB-compatible HTTP API (/write, /query, /ping) in http.go and
//     an InfluxQL subset in influxql.go,
//   - a first-class query API (querier.go, DESIGN.md §7): the Querier
//     interface with a LocalQuerier for in-process stores and the HTTP
//     Client for remote ones, returning byte-identical results.
//
// # Sharding
//
// A DB is partitioned into N independent shards, each guarded by its own
// lock. Points are routed to a shard by a hash of their measurement name, so
// a measurement lives wholly inside one shard and all query semantics are
// unaffected; writers and readers touching different measurements proceed in
// parallel. N defaults to GOMAXPROCS and is configurable with NewDBShards
// (or Store.ShardsPerDB for databases created through a Store).
//
// The batched entry point is WriteBatch: it validates the whole batch,
// splits it per shard, and inside each shard appends consecutive points of
// the same series into a columnar run builder (column.go, DESIGN.md §8) —
// one sorted timestamp column plus one typed value column per field, no
// per-point field map allocation. Writes keep every series sorted
// (out-of-order batches open new runs that compaction merges into freshly
// allocated columns), so published point runs are immutable to readers.
//
// # Read path
//
// DB.Select runs on a two-phase, lock-light engine (select.go, DESIGN.md
// §6): phase 1 holds the shard *read* lock only while snapshotting slice
// headers of the matching columnar runs — with the time range and, for raw
// queries, the row Limit pushed into the snapshot — and phase 2 buckets,
// groups and aggregates entirely outside the lock, fanning result groups
// out over a bounded worker pool (SetQueryWorkers) and merging per-run
// partial aggregates (agg.go) computed by vectorized sweeps over the
// typed columns. A small TTL'd query-result cache (cache.go) absorbs the
// dashboard viewer's repeated panel refreshes and is invalidated per
// measurement on write.
//
// # Durability
//
// A store opened with OpenStore and a data directory survives restarts
// (persist.go and the durable subpackage, DESIGN.md §9), mirroring the
// InfluxDB storage engine the paper's stack persists into: WriteBatch
// appends each batch to a segmented, CRC32-framed write-ahead log before
// acknowledging (fsync per batch, on an interval, or off), checkpoints
// serialize the sealed columnar runs to immutable on-disk blocks and
// truncate the log, and recovery loads the newest checkpoint and replays
// the WAL tail through the ordinary columnar write path — surviving a
// torn final record by truncating at the first bad frame. Close writes a
// final checkpoint; retention sweeps delete expired on-disk state.
package tsdb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lineproto"
	"repro/internal/obs"
)

// Common errors returned by the storage layer.
var (
	ErrNoDatabase    = errors.New("tsdb: database does not exist")
	ErrNoMeasurement = errors.New("tsdb: measurement does not exist")
)

// Store is a collection of named databases, the equivalent of one InfluxDB
// server instance.
type Store struct {
	// ShardsPerDB is the shard count for databases created by
	// CreateDatabase; 0 selects the default (GOMAXPROCS). Set it before the
	// store starts serving traffic.
	ShardsPerDB int

	// QueryWorkersPerDB bounds the Select aggregation fan-out of databases
	// created by CreateDatabase; 0 selects the default (GOMAXPROCS). Set it
	// before the store starts serving traffic.
	QueryWorkersPerDB int

	// CompressAfter enables background chunk compression (DESIGN.md §13)
	// on databases opened through the store: sealed runs idle for this
	// long are re-encoded into Gorilla-style compressed chunks. 0 keeps
	// runs sealed forever. Set it before the store starts serving traffic.
	CompressAfter time.Duration

	// durOpts enables the durable storage engine (persist.go, DESIGN.md
	// §9) when its Dir is non-empty; dirLock holds the flock on the data
	// directory. Both set through OpenStore.
	durOpts Durability
	dirLock *os.File

	// metrics is the observability bundle (metrics.go, DESIGN.md §10),
	// created with the store and attached to every database it opens.
	metrics *Metrics

	mu     sync.RWMutex
	dbs    map[string]*DB
	closed bool // set by Close/Abort; durable opens are refused after
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{dbs: make(map[string]*DB)}
	s.metrics = newMetrics(s)
	return s
}

// CreateDatabase creates (or returns the existing) database with that
// name. On a durable store a failure to open the on-disk state (an I/O
// error; corrupt files are recovered from, not failed on) degrades to a
// fresh in-memory database so in-process callers keep accepting data.
// The degraded database is NOT cached: the next call retries the durable
// open, so the degradation lasts one caller, not the store's lifetime.
// Callers that must not lose durability silently — the HTTP /write
// auto-create and InfluxQL CREATE DATABASE do this — use OpenDatabase
// and check the error instead.
func (s *Store) CreateDatabase(name string) *DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, err := s.openLocked(name)
	if err != nil {
		db = NewDBShards(name, s.ShardsPerDB)
		if s.QueryWorkersPerDB > 0 {
			db.SetQueryWorkers(s.QueryWorkersPerDB)
		}
		if s.CompressAfter > 0 {
			db.SetCompressAfter(s.CompressAfter)
		}
		db.metrics.Store(s.metrics)
	}
	return db
}

// Attach registers an existing database (built with NewDB / NewDBShards)
// under its own name, so DB-first callers can serve it through the query
// API (QuerierFor). An existing database of the same name is replaced.
func (s *Store) Attach(db *DB) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db.metrics.Store(s.metrics)
	s.dbs[db.name] = db
}

// DB returns the database with that name, or nil.
func (s *Store) DB(name string) *DB {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dbs[name]
}

// DropDatabase removes a database and all its contents, including its
// on-disk directory when the store is durable. The store lock is held
// across the close and directory removal: a concurrent auto-create of
// the same name must not re-open the directory only to have its live
// WAL deleted from under it.
func (s *Store) DropDatabase(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.dbs[name]
	delete(s.dbs, name)
	if db == nil {
		return
	}
	_ = db.closeInternal(false)
	if db.dur != nil {
		_ = os.RemoveAll(db.dur.dir)
	}
}

// Databases lists database names in sorted order.
func (s *Store) Databases() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DB is one named time-series database, partitioned into measurement-hashed
// shards (see the package comment).
type DB struct {
	name      string
	shards    []*shard
	retention atomic.Int64 // nanoseconds; 0 = keep forever
	newest    atomic.Int64 // unix ns of the newest point ever written
	lastPrune atomic.Int64 // wall-clock unix ns of the last retention sweep
	lastWrite atomic.Int64 // wall-clock unix ns of the last applied batch

	// dur is the durable storage engine (persist.go, DESIGN.md §9); nil
	// keeps the database in memory only. closed flips once on
	// Close/Abort; durable writes check it.
	dur    *durability
	closed atomic.Bool

	// metrics points at the owning store's observability bundle
	// (metrics.go); nil for standalone DBs. Atomic because Attach may
	// publish a bundle onto a DB that is already serving writes.
	metrics atomic.Pointer[Metrics]

	// Background retention ticker (SetRetention), so expired data ages
	// out of an idle database too. retStop is the live ticker's stop
	// channel, nil when no ticker runs.
	retMu   sync.Mutex
	retStop chan struct{}

	// Background compression ticker (SetCompressAfter, compress.go):
	// sealed runs idle past compressAfter are re-encoded into compressed
	// chunks. Same lifecycle shape as the retention ticker.
	compressAfter atomic.Int64 // nanoseconds; 0 = never compress
	compMu        sync.Mutex
	compStop      chan struct{}

	// Read path (select.go, cache.go). queryWorkers bounds the phase-2
	// fan-out of Select; qsem is the shared slot pool sized to it.
	queryWorkers int
	qsem         chan struct{}
	qcache       queryCache
	// measGens holds one invalidation generation counter per measurement
	// (*atomic.Uint64); globalGen invalidates everything (retention sweeps,
	// DropBefore).
	measGens  sync.Map
	globalGen atomic.Uint64
}

// shard is one lock domain of a DB. A measurement is wholly contained in
// one shard.
type shard struct {
	mu           sync.RWMutex
	measurements map[string]*measurement
	bld          runBuilder        // reusable columnar pending buffer, guarded by mu
	fieldBuf     []lineproto.Field // reusable sorted-fields scratch, guarded by mu
}

// DefaultShards is the shard count used when none is configured: one lock
// domain per schedulable CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// NewDB returns an empty database with the default shard count.
func NewDB(name string) *DB { return NewDBShards(name, 0) }

// NewDBShards returns an empty database with n shards. n <= 0 selects
// DefaultShards.
func NewDBShards(name string, n int) *DB {
	if n <= 0 {
		n = DefaultShards()
	}
	db := &DB{name: name, shards: make([]*shard, n)}
	for i := range db.shards {
		db.shards[i] = &shard{measurements: make(map[string]*measurement)}
	}
	db.queryWorkers = DefaultQueryWorkers()
	db.qsem = make(chan struct{}, db.queryWorkers)
	db.qcache.init()
	return db
}

// DefaultQueryWorkers is the phase-2 fan-out bound used when none is
// configured: one aggregation worker per schedulable CPU.
func DefaultQueryWorkers() int { return runtime.GOMAXPROCS(0) }

// SetQueryWorkers bounds the number of goroutines one Select may fan
// group aggregation out to. n <= 0 restores the default (GOMAXPROCS),
// n == 1 forces the serial engine. Like Store.ShardsPerDB it must be set
// before the database starts serving queries.
func (db *DB) SetQueryWorkers(n int) {
	if n <= 0 {
		n = DefaultQueryWorkers()
	}
	db.queryWorkers = n
	db.qsem = make(chan struct{}, n)
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// ShardCount returns the number of lock domains.
func (db *DB) ShardCount() int { return len(db.shards) }

// shardFor routes a measurement name to its shard.
func (db *DB) shardFor(measurement string) *shard {
	return db.shards[db.shardIndex(measurement)]
}

// FNV-1a parameters (inlined so the hot write path hashes the measurement
// name without the []byte conversion and hasher allocation of hash/fnv).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func (db *DB) shardIndex(measurement string) int {
	if len(db.shards) == 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(measurement); i++ {
		h ^= uint32(measurement[i])
		h *= fnvPrime32
	}
	return int(h % uint32(len(db.shards)))
}

// SetRetention configures the retention window. Points older than d
// relative to the newest inserted point are pruned lazily during writes,
// and a background ticker (stopped by Close) sweeps idle databases so
// expired data ages out without further ingest. The ticker advances the
// cutoff anchor by the wall-clock time elapsed since the last write —
// an idle database keeps aging as if its stream clock kept running —
// rather than jumping to the wall clock outright, so historical data
// (simulation dumps, backfills, the 2017-era corpora of this repo) keeps
// its retention window anchored at its own newest point. Zero disables
// pruning and stops the ticker.
func (db *DB) SetRetention(d time.Duration) {
	db.retention.Store(int64(d))
	db.retMu.Lock()
	defer db.retMu.Unlock()
	if db.retStop != nil {
		close(db.retStop)
		db.retStop = nil
	}
	if d <= 0 || db.closed.Load() {
		return
	}
	// Sweep at least every second; sub-second windows sweep at half the
	// window so data expires promptly (tests use tiny windows).
	period := d / 2
	if period > time.Second {
		period = time.Second
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	stop := make(chan struct{})
	db.retStop = stop
	go db.retentionLoop(stop, period)
}

// stopRetention halts the background retention ticker, if any.
func (db *DB) stopRetention() {
	db.retMu.Lock()
	defer db.retMu.Unlock()
	if db.retStop != nil {
		close(db.retStop)
		db.retStop = nil
	}
}

func (db *DB) retentionLoop(stop chan struct{}, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			db.pruneTick()
		}
	}
}

// pruneTick is the ticker-driven retention sweep. Unlike the write-path
// sweep it advances the cutoff anchor past the newest point by the time
// the database has sat idle, so expired data ages out without further
// ingest while historical data keeps its window anchored at the stream's
// own newest timestamp (see SetRetention).
func (db *DB) pruneTick() {
	ret := db.retention.Load()
	if ret <= 0 {
		return
	}
	now := time.Now().UnixNano()
	anchor := db.newest.Load()
	if anchor == 0 {
		return // nothing ever written or recovered
	}
	if idle := now - db.lastWrite.Load(); idle > 0 {
		anchor += idle
	}
	db.lastPrune.Store(now)
	db.pruneNow(anchor - ret)
}

// SetCompressAfter configures the compressed run state (DESIGN.md §13):
// a background ticker re-encodes sealed runs that have gone d without a
// mutation into Gorilla-style compressed chunks (compress.go), cutting
// their resident footprint several-fold while queries stay
// byte-identical. Zero disables the compactor and stops the ticker;
// already-compressed runs stay compressed.
func (db *DB) SetCompressAfter(d time.Duration) {
	db.compressAfter.Store(int64(d))
	db.compMu.Lock()
	defer db.compMu.Unlock()
	if db.compStop != nil {
		close(db.compStop)
		db.compStop = nil
	}
	if d <= 0 || db.closed.Load() {
		return
	}
	// Tick at half the idle window so a run is compressed within ~1.5x d
	// of going cold, bounded the same way the retention ticker is.
	period := d / 2
	if period > time.Second {
		period = time.Second
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	stop := make(chan struct{})
	db.compStop = stop
	go db.compressLoop(stop, period)
}

// stopCompressor halts the background compression ticker, if any.
func (db *DB) stopCompressor() {
	db.compMu.Lock()
	defer db.compMu.Unlock()
	if db.compStop != nil {
		close(db.compStop)
		db.compStop = nil
	}
}

func (db *DB) compressLoop(stop chan struct{}, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d := db.compressAfter.Load()
			if d <= 0 {
				return
			}
			db.compressNow(time.Now().UnixNano()-d, true)
		}
	}
}

// Compress immediately compresses every run, including each series'
// building run, regardless of idle time. Exported for tooling, benchmarks
// and tests ("freeze the resident set now"); production databases
// compress in the background via SetCompressAfter, which only takes
// sealed runs. It returns the number of runs compressed.
func (db *DB) Compress() int { return db.compressNow(maxInt64, false) }

// compCandidate is one sealed run captured for out-of-lock encoding: the
// slice headers are a consistent snapshot (taken under the shard RLock),
// gen detects mutations between capture and commit.
type compCandidate struct {
	m    *measurement
	sr   *series
	run  *colRun
	gen  uint64
	ts   []int64
	cols []col
}

// compressNow re-encodes runs whose last mutation is <= cutoffNS. With
// sealedOnly (the background compactor), each series' newest run — the
// building run, where in-order appends and same-timestamp rewrites land —
// is left raw so the write path's run layout is unchanged by when the
// compactor happens to fire. Encoding runs outside any lock against
// captured slice headers (the same immutability contract Select's phase 1
// relies on); each result is then committed under a short write lock only
// if the run is still published and unmutated — a stale encode is simply
// dropped.
func (db *DB) compressNow(cutoffNS int64, sealedOnly bool) int {
	total := 0
	for _, sh := range db.shards {
		var cands []compCandidate
		sh.mu.RLock()
		for _, m := range sh.measurements {
			for _, sr := range m.series {
				for i, run := range sr.runs {
					if sealedOnly && i == len(sr.runs)-1 {
						continue
					}
					if run.comp != nil || len(run.ts) == 0 || run.modNS > cutoffNS {
						continue
					}
					cands = append(cands, compCandidate{
						m: m, sr: sr, run: run, gen: run.gen,
						ts:   run.ts,
						cols: append([]col(nil), run.cols...),
					})
				}
			}
		}
		sh.mu.RUnlock()
		for i := range cands {
			c := &cands[i]
			comp := compressColumns(c.ts, c.cols)
			sh.mu.Lock()
			if c.run.gen == c.gen && c.run.comp == nil && runPublished(c.m, c.sr, c.run) {
				c.run.comp = comp
				c.run.ts = nil
				c.run.cols = nil
				total++
			}
			sh.mu.Unlock()
		}
	}
	return total
}

// runPublished reports whether run is still an element of sr.runs and sr
// is still the series the measurement maps to (compaction, pruning and
// retention may have replaced either while the encoder ran).
func runPublished(m *measurement, sr *series, run *colRun) bool {
	if got, ok := m.series[seriesKey(sr.tags)]; !ok || got != sr {
		return false
	}
	for _, r := range sr.runs {
		if r == run {
			return true
		}
	}
	return false
}

type measurement struct {
	name   string
	series map[string]*series
	fields map[string]lineproto.ValueKind
	names  map[string]string // interned field-name strings (one per schema field)
	strs   strTable          // interned string field values (column.go)
}

// internField returns the canonical (interned) copy of a field name,
// registering it in the measurement schema on first sight. Column headers
// across every run and series of the measurement then share one string
// allocation per field name instead of retaining per-batch parse strings.
func (m *measurement) internField(name string, kind lineproto.ValueKind) string {
	if canon, ok := m.names[name]; ok {
		return canon
	}
	m.names[name] = name
	m.fields[name] = kind
	return name
}

// series holds the point runs of one tag set, log-structured: a list of
// individually sorted columnar runs (column.go), ordered by creation.
// Invariants the lock-light read path (select.go) relies on:
//
//   - every run's ts column is sorted,
//   - a backing array that has been published in runs is never reordered
//     or overwritten in place: in-order writes append to the newest run's
//     columns (growing past len is invisible to readers holding shorter
//     slice headers), presence bitmaps are copy-on-write, out-of-order
//     writes start a new run, compaction merges runs into freshly
//     allocated columns, pruning copies survivors, and the
//     same-timestamp rewrite path swaps whole value arrays.
//
// A reader that snapshotted column sub-slices under the shard RLock may
// therefore keep reading them after releasing the lock. Compaction keeps
// run sizes roughly geometric, so a series holds O(log n) runs and the
// write amplification of out-of-order ingest stays O(log n) per point
// instead of the O(n) a single always-sorted array would cost.
type series struct {
	tags map[string]string // immutable after creation
	runs []*colRun
}

// totalPoints is the row count across all runs.
func (sr *series) totalPoints() int {
	n := 0
	for _, run := range sr.runs {
		n += run.rows()
	}
	return n
}

// seriesKey builds the canonical identity of a tag set.
func seriesKey(tags map[string]string) string {
	if len(tags) == 0 {
		return ""
	}
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(tags[k])
	}
	return b.String()
}

// tagsEqual reports whether two tag maps hold the same pairs. It is the
// per-point fast path of the series-key cache in writeBatch: comparing
// maps costs two lookups per tag, while seriesKey sorts keys and builds a
// fresh string — batches overwhelmingly repeat one tag set, so the key is
// built once per series run instead of once per point.
func tagsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// WritePoint inserts one point. Points without a timestamp get the current
// time, mirroring InfluxDB's server-side timestamping.
func (db *DB) WritePoint(p lineproto.Point) error {
	return db.WriteBatch([]lineproto.Point{p})
}

// WritePoints inserts a batch of points. It is an alias of WriteBatch, kept
// for callers predating the sharded write path.
func (db *DB) WritePoints(pts []lineproto.Point) error {
	return db.WriteBatch(pts)
}

// WriteBatch is the batched ingest entry point: the whole batch is
// validated, split per shard, and written with one lock acquisition per
// touched shard. Points without a timestamp share one server-side
// timestamp, mirroring InfluxDB. On a durable database the batch is
// appended to the write-ahead log — fsynced per the configured policy —
// before it is applied and acknowledged (persist.go).
func (db *DB) WriteBatch(pts []lineproto.Point) error {
	return db.WriteBatchContext(context.Background(), pts)
}

// WriteBatchContext is WriteBatch with a context carrying an optional
// trace (obs.WithTrace): a traced durable write records spans for the
// WAL append (which includes the fsync wait under the per-batch policy)
// and the in-memory apply. The context is not used for cancellation —
// a batch appended to the WAL is already acknowledged territory.
func (db *DB) WriteBatchContext(ctx context.Context, pts []lineproto.Point) error {
	if len(pts) == 0 {
		return nil
	}
	for i := range pts {
		if err := pts[i].Validate(); err != nil {
			db.noteDrop(len(pts))
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	now := time.Now()
	if db.dur != nil {
		if db.closed.Load() {
			db.noteDrop(len(pts))
			return ErrDBClosed
		}
		if err := db.dur.writeDurable(ctx, db, pts, now); err != nil {
			db.noteDrop(len(pts))
			return err
		}
		db.noteIngest(len(pts))
		return nil
	}
	sp := obs.TraceFrom(ctx).Start("tsdb.apply").AttrInt("points", int64(len(pts)))
	db.applyBatch(pts, now)
	sp.End()
	db.noteIngest(len(pts))
	return nil
}

// applyBatch inserts a pre-validated batch into the in-memory columnar
// state. It is the whole write path for in-memory databases and the
// post-WAL half for durable ones (both live writes and recovery replay).
// Points without a timestamp are resolved to now — the same value the
// durable path encoded into the WAL, so replay reproduces this state
// exactly.
func (db *DB) applyBatch(pts []lineproto.Point, now time.Time) {
	db.lastWrite.Store(now.UnixNano())
	defer db.maybePrune()
	defer db.bumpMeasGens(pts) // invalidate cached query results per measurement
	if len(db.shards) == 1 {
		db.shards[0].writeBatch(db, pts, now)
		return
	}

	// Batches are usually runs of one measurement (one agent flush), so
	// first scan for the single-shard case before paying for bucketing.
	runMeas := pts[0].Measurement
	runIdx := db.shardIndex(runMeas)
	firstIdx := runIdx
	single := true
	for i := 1; i < len(pts); i++ {
		if pts[i].Measurement == runMeas {
			continue
		}
		runMeas = pts[i].Measurement
		runIdx = db.shardIndex(runMeas)
		if runIdx != firstIdx {
			single = false
			break
		}
	}
	if single {
		db.shards[firstIdx].writeBatch(db, pts, now)
		return
	}

	buckets := make([][]lineproto.Point, len(db.shards))
	runMeas, runIdx = pts[0].Measurement, firstIdx
	for _, p := range pts {
		if p.Measurement != runMeas {
			runMeas = p.Measurement
			runIdx = db.shardIndex(runMeas)
		}
		buckets[runIdx] = append(buckets[runIdx], p)
	}
	for idx, bucket := range buckets {
		if len(bucket) > 0 {
			db.shards[idx].writeBatch(db, bucket, now)
		}
	}
}

// writeBatch inserts pre-validated points under one lock acquisition.
// Consecutive points of the same series are appended into the shard's
// reusable columnar builder (column.go) — no per-point field map is
// allocated — and committed per series run:
//
//   - in-order blocks (the agent hot path) bulk-append onto the newest
//     run's columns,
//   - a block whose timestamps exactly rewrite the newest run merges
//     field-by-field with last-write-wins (InfluxDB duplicate-point
//     semantics) instead of opening a run and paying compaction,
//   - anything else opens a new run and compacts similar-sized runs.
func (sh *shard) writeBatch(db *DB, pts []lineproto.Point, now time.Time) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	var (
		curM     *measurement
		curName  string
		curS     *series
		curKey   string
		prevTags map[string]string
	)
	nowNS := now.UnixNano()
	b := &sh.bld
	b.reset()
	commit := func() {
		if curS == nil || len(b.ts) == 0 {
			return
		}
		b.finish()
		if n := len(curS.runs); n > 0 {
			last := curS.runs[n-1]
			if c := last.comp; c != nil {
				// A compressed run is immutable. The one mutation worth
				// paying a decode for is the exact same-timestamp rewrite
				// (the dashboard upsert pattern): decompress, merge
				// last-write-wins, recompress, swap the chunk pointer.
				// Anything else opens a new run next to it.
				if len(b.ts) == c.n && b.ts[0] == c.minTS && b.ts[len(b.ts)-1] == c.maxTS {
					if raw, err := c.decompress(len(curM.strs.vals)); err == nil && b.tsEqual(raw.ts) {
						raw.rewriteBlock(b, curM)
						last.comp = compressRun(raw)
						last.gen++
						last.modNS = nowNS
						b.reset()
						return
					}
				}
			} else if m := len(last.ts); m > 0 {
				// The exact-match check precedes the in-order check: a
				// run whose timestamps are all equal (e.g. a single
				// point) satisfies both, and re-writing it must upsert,
				// not accumulate duplicates.
				if b.tsEqual(last.ts) {
					// Same-timestamp rewrite: update the run's columns
					// copy-on-write instead of opening a run and paying
					// compaction (EXPERIMENTS.md, experiment O3).
					last.rewriteBlock(b, curM)
					last.gen++
					last.modNS = nowNS
					b.reset()
					return
				}
				if last.ts[m-1] <= b.ts[0] && !pastSparseRollLimit(last, b) {
					// In-order arrival (the hot path): extend the newest
					// run's columns with one bulk append per field.
					last.appendBlock(b, curM)
					last.gen++
					last.modNS = nowNS
					b.reset()
					return
				}
			}
		}
		// Out-of-order arrival: the builder's arrays become a new run, then
		// runs of similar size are compacted so the run count stays
		// logarithmic. Merging allocates fresh columns (decompressing a
		// compressed operand first), so readers holding snapshots of the
		// old runs are unaffected.
		nr := b.toRun()
		nr.modNS = nowNS
		curS.runs = append(curS.runs, nr)
		b.handoff()
		for n := len(curS.runs); n >= 2 && curS.runs[n-2].rows() <= 2*curS.runs[n-1].rows(); n = len(curS.runs) {
			ra, err := curS.runs[n-2].rawRun(len(curM.strs.vals))
			if err != nil {
				noteDecodeError(err)
				break
			}
			rb, err := curS.runs[n-1].rawRun(len(curM.strs.vals))
			if err != nil {
				noteDecodeError(err)
				break
			}
			merged := mergeRuns(curM, ra, rb)
			merged.modNS = nowNS
			curS.runs = append(curS.runs[:n-2], merged)
		}
	}

	newest := int64(minInt64)
	for _, p := range pts {
		if p.Time.IsZero() {
			p.Time = now
		}
		if curM == nil || p.Measurement != curName {
			commit()
			curS = nil
			curName = p.Measurement
			m, ok := sh.measurements[curName]
			if !ok {
				m = &measurement{
					name:   curName,
					series: make(map[string]*series),
					fields: make(map[string]lineproto.ValueKind),
					names:  make(map[string]string),
				}
				sh.measurements[curName] = m
			}
			curM = m
		}
		if curS == nil || !tagsEqual(p.Tags, prevTags) {
			key := seriesKey(p.Tags)
			prevTags = p.Tags
			if curS == nil || key != curKey {
				commit()
				curKey = key
				sr, ok := curM.series[key]
				if !ok {
					tags := make(map[string]string, len(p.Tags))
					for k, v := range p.Tags {
						tags[k] = v
					}
					sr = &series{tags: tags}
					curM.series[key] = sr
				}
				curS = sr
			}
		}
		sh.fieldBuf = p.AppendFields(sh.fieldBuf[:0])
		ns := p.Time.UnixNano()
		b.addPoint(curM, sh.fieldBuf, ns)
		if ns > newest {
			newest = ns
		}
	}
	commit()

	// Publish the newest timestamp for retention sweeps (atomic max).
	for {
		cur := db.newest.Load()
		if newest <= cur || db.newest.CompareAndSwap(cur, newest) {
			break
		}
	}
}

// maybePrune runs a retention sweep over every shard, at most once per
// second, with the cutoff anchored at the newest inserted point. It is
// called after batch writes, outside any shard lock, so the sweep can take
// each shard lock in turn without nesting.
func (db *DB) maybePrune() {
	ret := db.retention.Load()
	if ret <= 0 {
		return
	}
	now := time.Now().UnixNano()
	last := db.lastPrune.Load()
	if now-last < int64(time.Second) || !db.lastPrune.CompareAndSwap(last, now) {
		return
	}
	db.pruneNow(db.newest.Load() - ret)
}

// pruneNow sweeps every shard with the given cutoff. A sweep that
// removed rows invalidates every cached query result (an empty sweep
// must not flush unrelated entries) and, on a durable database,
// schedules a checkpoint so the expired rows leave the disk too.
func (db *DB) pruneNow(beforeNS int64) {
	dropped := false
	for _, sh := range db.shards {
		sh.mu.Lock()
		dropped = sh.pruneLocked(beforeNS) || dropped
		sh.mu.Unlock()
	}
	if !dropped {
		return
	}
	db.globalGen.Add(1)
	if db.dur != nil {
		db.dur.noteRetentionDrop(db)
	}
}

// pruneLocked drops rows older than beforeNS and reports whether anything
// was removed.
func (sh *shard) pruneLocked(beforeNS int64) bool {
	anyDropped := false
	nowNS := time.Now().UnixNano()
	for mname, m := range sh.measurements {
		for key, sr := range m.series {
			changed := false
			kept := sr.runs[:0:0]
			for _, run := range sr.runs {
				if c := run.comp; c != nil {
					// Whole-run decisions come from the chunk header; only
					// a partially expired run pays a decode (and is left
					// sealed — the compressor re-compresses it later).
					switch {
					case c.minTS >= beforeNS:
						kept = append(kept, run)
					case c.maxTS < beforeNS:
						changed = true
					default:
						raw, err := c.decompress(len(m.strs.vals))
						if err != nil {
							noteDecodeError(err)
							kept = append(kept, run) // keep data over dropping it
							continue
						}
						idx := sort.Search(len(raw.ts), func(i int) bool { return raw.ts[i] >= beforeNS })
						nr := raw.sliceRun(idx, len(raw.ts))
						nr.modNS = nowNS
						kept = append(kept, nr)
						changed = true
					}
					continue
				}
				idx := sort.Search(len(run.ts), func(i int) bool { return run.ts[i] >= beforeNS })
				switch {
				case idx == 0:
					kept = append(kept, run)
				case idx == len(run.ts):
					changed = true
				default:
					// Copy the survivors: readers may still hold snapshots
					// of the old backing arrays.
					nr := run.sliceRun(idx, len(run.ts))
					nr.modNS = nowNS
					kept = append(kept, nr)
					changed = true
				}
			}
			if changed {
				sr.runs = kept
				anyDropped = true
			}
			if len(sr.runs) == 0 {
				delete(m.series, key)
			}
		}
		if len(m.series) == 0 {
			delete(sh.measurements, mname)
		}
	}
	return anyDropped
}

// DropBefore removes all points older than t from every series.
func (db *DB) DropBefore(t time.Time) {
	db.pruneNow(t.UnixNano())
}

// Measurements lists measurement names in sorted order, merged across
// shards.
func (db *DB) Measurements() []string {
	var names []string
	for _, sh := range db.shards {
		sh.mu.RLock()
		for n := range sh.measurements {
			names = append(names, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// FieldKeys lists the field keys seen for a measurement, sorted.
func (db *DB) FieldKeys(measurement string) []string {
	sh := db.shardFor(measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.measurements[measurement]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(m.fields))
	for k := range m.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TagKeys lists tag keys across all series of a measurement, sorted.
func (db *DB) TagKeys(measurement string) []string {
	sh := db.shardFor(measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.measurements[measurement]
	if !ok {
		return nil
	}
	set := map[string]struct{}{}
	for _, sr := range m.series {
		for k := range sr.tags {
			set[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TagValues lists the distinct values of one tag key over a measurement.
// With measurement == "" it scans all measurements across all shards (used
// by the dashboard agent to discover the hosts participating in a job).
func (db *DB) TagValues(meas, key string) []string {
	set := map[string]struct{}{}
	collect := func(m *measurement) {
		for _, sr := range m.series {
			if v, ok := sr.tags[key]; ok {
				set[v] = struct{}{}
			}
		}
	}
	if meas == "" {
		for _, sh := range db.shards {
			sh.mu.RLock()
			for _, m := range sh.measurements {
				collect(m)
			}
			sh.mu.RUnlock()
		}
	} else {
		sh := db.shardFor(meas)
		sh.mu.RLock()
		if m, ok := sh.measurements[meas]; ok {
			collect(m)
		}
		sh.mu.RUnlock()
	}
	vals := make([]string, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// PointCount returns the total number of stored points (all measurements,
// all shards).
func (db *DB) PointCount() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, m := range sh.measurements {
			for _, sr := range m.series {
				n += sr.totalPoints()
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// TagFilter matches series by tag values. A nil filter matches everything.
// Values are exact matches; the special value "*" requires only that the tag
// key exists.
type TagFilter map[string]string

func (f TagFilter) matches(tags map[string]string) bool {
	for k, want := range f {
		got, ok := tags[k]
		if !ok {
			return false
		}
		if want != "*" && got != want {
			return false
		}
	}
	return true
}

// Query describes a programmatic read. Zero Start/End mean unbounded. If
// Every > 0 points are grouped into aligned time windows and Agg is applied
// per window and field; if Every == 0 and Agg != "" a single aggregate row is
// produced per series; otherwise raw points are returned.
type Query struct {
	Measurement string
	Start, End  time.Time
	Filter      TagFilter
	Fields      []string // nil = all fields
	GroupByTags []string // produce one result series per distinct combination
	Every       time.Duration
	Agg         AggFunc
	Percentile  float64 // used by AggPercentile
	Limit       int     // max rows per series, 0 = unlimited
}

// Row is one result row: a timestamp and one value per requested column.
// Missing values are represented by a nil entry.
type Row struct {
	Time   time.Time
	Values []*lineproto.Value
}

// Series is one result series.
type Series struct {
	Name    string
	Tags    map[string]string // group-by tag values
	Columns []string          // field columns (time excluded)
	Rows    []Row
}

// Select executes a query against the database with the two-phase,
// lock-light engine in select.go: phase 1 snapshots matching point runs
// under the shard read lock, phase 2 filters, buckets and aggregates them
// outside any lock on a bounded worker pool. Results may be served from and
// are stored into a small TTL'd cache (cache.go); treat them as read-only.
func (db *DB) Select(q Query) ([]Series, error) {
	return db.SelectContext(context.Background(), q)
}

// SelectContext is Select with cancellation: the context is observed
// between phase-2 aggregation tasks (and by the pool workers before they
// start one), so a caller that goes away stops the query instead of
// finishing aggregation nobody will read. A cancelled query returns the
// context's error and stores nothing in the result cache.
//
// A context carrying a trace (obs.WithTrace) gets per-phase spans, and
// one carrying a profile collector (withProf — EXPLAIN ANALYZE) gets the
// engine's scan/decode/cache counters and phase timings. Both lookups
// are zero-allocation no-ops on ordinary queries.
func (db *DB) SelectContext(ctx context.Context, q Query) ([]Series, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prof := profFrom(ctx)
	tr := obs.TraceFrom(ctx)
	if prof == nil && tr == nil {
		// The untraced hot path: no timestamps, no spans, no counters.
		res, ref, ok := db.qcache.lookup(db, q)
		if ok {
			return res, nil
		}
		cols, strs, groups, err := db.snapshotSelect(q, nil)
		if err != nil {
			return nil, err
		}
		out, err := db.executeGroups(ctx, q, cols, strs, groups, nil)
		if err != nil {
			return nil, err
		}
		db.qcache.store(db, ref, out)
		return out, nil
	}

	sp := tr.Start("tsdb.select").Attr("db", db.name).Attr("measurement", q.Measurement)
	defer sp.End()
	t0 := time.Now()
	csp := tr.Start("tsdb.select.cache")
	res, ref, ok := db.qcache.lookup(db, q)
	csp.Attr("hit", strconv.FormatBool(ok)).End()
	if prof != nil {
		prof.CacheLookupNS = sinceNS(t0)
		prof.CacheHit = ok
	}
	if ok {
		if prof != nil {
			prof.TotalNS = sinceNS(t0)
		}
		sp.Attr("cache", "hit")
		return res, nil
	}
	t1 := time.Now()
	ssp := tr.Start("tsdb.select.snapshot")
	cols, strs, groups, err := db.snapshotSelect(q, prof)
	ssp.End()
	if prof != nil {
		prof.SnapshotNS = sinceNS(t1)
		prof.ShardsVisited = 1
	}
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	esp := tr.Start("tsdb.select.execute").AttrInt("groups", int64(len(groups)))
	out, err := db.executeGroups(ctx, q, cols, strs, groups, prof)
	esp.End()
	if prof != nil {
		prof.ExecuteNS = sinceNS(t2)
		prof.TotalNS = sinceNS(t0)
	}
	if err != nil {
		return nil, err
	}
	db.qcache.store(db, ref, out)
	return out, nil
}
