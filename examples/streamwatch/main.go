// Online stream analysis, the Sect. III-B integration point: a stream
// analyzer attaches to the router's ZeroMQ-style publisher over TCP,
// observes the live metric feed of a pathological job, and raises the
// low-FP-rate alarm while the job is still running — before any offline
// analysis sees the data. Afterwards the accumulated usage statistics
// (Sect. I: "statistical foundation about application specific system
// usage") are printed for all finished jobs.
//
//	go run ./examples/streamwatch
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	lms "repro"
	"repro/internal/analysis"
	"repro/internal/stream"
)

func main() {
	// A stack with the publisher enabled on an ephemeral port.
	stack, sim, err := lms.NewSimulatedStack(
		lms.StackConfig{PubSubAddr: "127.0.0.1:0"},
		lms.SimConfig{Nodes: 4, CollectInterval: 60},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// The analyzer attaches over TCP like an external tool would.
	var mu sync.Mutex
	var alarms []stream.Alarm
	analyzer := stream.New(stream.Config{
		OnAlarm: func(al stream.Alarm) {
			mu.Lock()
			alarms = append(alarms, al)
			mu.Unlock()
			fmt.Printf("ONLINE ALARM  host=%s job=%s  %s\n", al.Host, al.JobID, al.Violation.String())
		},
		OnJob: func(ev stream.JobEvent) {
			kind := "end"
			if ev.Start {
				kind = "start"
			}
			fmt.Printf("JOB %-5s id=%s user=%s nodes=%v\n", kind, ev.JobID, ev.User, ev.Nodes)
		},
	})
	if err := analyzer.Attach(stack.Publisher.Addr()); err != nil {
		log.Fatal(err)
	}
	defer analyzer.Close()

	// Give the TCP subscription a moment to become active before the
	// simulation floods the publisher.
	time.Sleep(100 * time.Millisecond)

	// A healthy job and the Fig. 4 pathological job side by side.
	if err := sim.SubmitJob(lms.JobRequest{ID: "ok.1", User: "alice", Nodes: 2}, lms.NewDGEMM(20, 5400)); err != nil {
		log.Fatal(err)
	}
	if err := sim.SubmitJob(lms.JobRequest{ID: "bad.1", User: "bob", Nodes: 2},
		lms.NewIdleBreak(20, 5400, 1200, 2400)); err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(6000); err != nil {
		log.Fatal(err)
	}

	// Wait for the published tail to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(alarms)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println()
	fmt.Print(analyzer.FormatSnapshot())

	// Usage statistics over the finished jobs (procurement view).
	var usage analysis.UsageStats
	for _, job := range sim.Sched.Finished() {
		rep, err := stack.Evaluator.Evaluate(sim.JobMeta(job))
		if err != nil {
			log.Fatal(err)
		}
		usage.Add(analysis.RecordFromReport(rep))
	}
	fmt.Println()
	fmt.Print(usage.FormatReport())
}
