package hpm

import (
	"fmt"
	"sort"
	"sync"
)

// Session is one HPM measurement: a performance group armed on a set of
// hardware threads, the programmatic equivalent of
// `likwid-perfctr -g GROUP -c CPULIST`. The usual cycle is
// Start -> (workload advances the machine) -> Stop -> Result.
//
// Counter overflow: registers wrap at 48 bits; deltas are computed modulo
// 2^48, so a single wrap between Start and Stop is handled exactly like in
// the real tool.
type Session struct {
	machine *Machine
	group   *Group
	threads []int

	mu       sync.Mutex
	running  bool
	started  bool
	startT   float64
	stopT    float64
	startCnt map[int]map[string]uint64 // thread -> counter reg -> raw value
	stopCnt  map[int]map[string]uint64
}

// NewSession prepares a measurement of the named built-in group on the
// given hardware threads (all threads when threads is empty).
func NewSession(m *Machine, groupName string, threads []int) (*Session, error) {
	g, err := LookupGroup(groupName)
	if err != nil {
		return nil, err
	}
	return NewSessionGroup(m, g, threads)
}

// NewSessionGroup is NewSession for a caller-supplied (e.g. custom-parsed)
// group.
func NewSessionGroup(m *Machine, g *Group, threads []int) (*Session, error) {
	n := m.Topology().NumHWThreads()
	if len(threads) == 0 {
		threads = make([]int, n)
		for i := range threads {
			threads[i] = i
		}
	}
	seen := map[int]bool{}
	for _, t := range threads {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("hpm: hwthread %d out of range [0,%d)", t, n)
		}
		if seen[t] {
			return nil, fmt.Errorf("hpm: hwthread %d listed twice", t)
		}
		seen[t] = true
	}
	sorted := append([]int(nil), threads...)
	sort.Ints(sorted)
	return &Session{machine: m, group: g, threads: sorted}, nil
}

// Group returns the measured performance group.
func (s *Session) Group() *Group { return s.group }

// Threads returns the measured hardware threads (sorted).
func (s *Session) Threads() []int { return append([]int(nil), s.threads...) }

// Start samples all counters and begins the measurement interval.
func (s *Session) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return fmt.Errorf("hpm: session already running")
	}
	cnt, err := s.sample()
	if err != nil {
		return err
	}
	s.startCnt = cnt
	s.startT = s.machine.Now()
	s.running = true
	s.started = true
	return nil
}

// Stop samples all counters and ends the measurement interval.
func (s *Session) Stop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return fmt.Errorf("hpm: session not running")
	}
	cnt, err := s.sample()
	if err != nil {
		return err
	}
	s.stopCnt = cnt
	s.stopT = s.machine.Now()
	s.running = false
	return nil
}

// sample reads every assigned counter for every measured thread. For
// socket-scope counters the socket register of the thread's socket is read;
// the result attribution (first thread per socket) happens in Result.
func (s *Session) sample() (map[int]map[string]uint64, error) {
	out := make(map[int]map[string]uint64, len(s.threads))
	for _, tid := range s.threads {
		sock, err := s.machine.Topology().SocketOf(tid)
		if err != nil {
			return nil, err
		}
		regs := make(map[string]uint64, len(s.group.Events))
		for _, ea := range s.group.Events {
			var v uint64
			if ea.Event.Scope == ScopeSocket {
				v, err = s.machine.ReadSocketCounter(sock, ea.Event.Name)
			} else {
				v, err = s.machine.ReadThreadCounter(tid, ea.Event.Name)
			}
			if err != nil {
				return nil, err
			}
			regs[ea.Counter] = v
		}
		out[tid] = regs
	}
	return out, nil
}

// Result holds the evaluated measurement.
type Result struct {
	Group    string
	Threads  []int
	Duration float64 // simulated seconds between Start and Stop

	// Raw holds per-thread counter deltas. Socket-scope counters are
	// attributed to the first measured thread of each socket and zero on
	// the others, matching likwid-perfctr output.
	Raw map[int]map[string]uint64

	// Metrics holds per-thread derived metric values keyed by metric name.
	Metrics map[int]map[string]float64

	metricOrder []string
}

// Result evaluates the finished measurement. It is an error to call it
// while the session is running or before any interval was measured.
func (s *Session) Result() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return nil, fmt.Errorf("hpm: session still running")
	}
	if !s.started || s.stopCnt == nil {
		return nil, fmt.Errorf("hpm: no finished measurement")
	}
	res := &Result{
		Group:       s.group.Name,
		Threads:     append([]int(nil), s.threads...),
		Duration:    s.stopT - s.startT,
		Raw:         make(map[int]map[string]uint64, len(s.threads)),
		Metrics:     make(map[int]map[string]float64, len(s.threads)),
		metricOrder: s.group.MetricNames(),
	}
	inverseClock := 1.0 / (s.machine.Topology().BaseClockMHz * 1e6)
	socketSeen := map[int]bool{}
	for _, tid := range s.threads {
		sock, _ := s.machine.Topology().SocketOf(tid)
		firstOfSocket := !socketSeen[sock]
		socketSeen[sock] = true
		deltas := make(map[string]uint64, len(s.group.Events))
		for _, ea := range s.group.Events {
			start := s.startCnt[tid][ea.Counter]
			stop := s.stopCnt[tid][ea.Counter]
			delta := (stop - start) & CounterMask // modulo 2^48 handles one wrap
			if ea.Event.Scope == ScopeSocket && !firstOfSocket {
				delta = 0
			}
			deltas[ea.Counter] = delta
		}
		res.Raw[tid] = deltas

		vars := make(map[string]float64, len(deltas)+2)
		for reg, d := range deltas {
			vars[reg] = float64(d)
		}
		vars[VarTime] = res.Duration
		vars[VarInverseClock] = inverseClock
		mv := make(map[string]float64, len(s.group.Metrics))
		for _, m := range s.group.Metrics {
			v, err := m.Formula.Eval(vars)
			if err != nil {
				return nil, err
			}
			mv[m.Name] = v
		}
		res.Metrics[tid] = mv
	}
	return res, nil
}

// MetricNames returns the group's metric names in file order.
func (r *Result) MetricNames() []string {
	return append([]string(nil), r.metricOrder...)
}

// Sum aggregates one metric over all measured threads. For rate- and
// volume-like metrics (MFLOP/s, bandwidth, data volume) the sum is the node
// value.
func (r *Result) Sum(metric string) float64 {
	var s float64
	for _, tid := range r.Threads {
		s += r.Metrics[tid][metric]
	}
	return s
}

// Mean aggregates one metric as the average over measured threads (for
// intensive metrics like CPI or Clock).
func (r *Result) Mean(metric string) float64 {
	if len(r.Threads) == 0 {
		return 0
	}
	return r.Sum(metric) / float64(len(r.Threads))
}

// Max returns the per-thread maximum of a metric.
func (r *Result) Max(metric string) float64 {
	first := true
	var m float64
	for _, tid := range r.Threads {
		v := r.Metrics[tid][metric]
		if first || v > m {
			m = v
			first = false
		}
	}
	return m
}

// Min returns the per-thread minimum of a metric.
func (r *Result) Min(metric string) float64 {
	first := true
	var m float64
	for _, tid := range r.Threads {
		v := r.Metrics[tid][metric]
		if first || v < m {
			m = v
			first = false
		}
	}
	return m
}
