// Command lms-collector runs the LMS host agent (the Diamond role of the
// paper's test setup): it samples system metrics and pushes them to the
// router in the InfluxDB line protocol.
//
// On Linux the system plugins read the real /proc filesystem. Hardware
// performance metrics come from the simulated LIKWID substrate: with
// -simulate a synthetic workload drives the HPM counters so that the full
// metric path can be demonstrated on any machine (see DESIGN.md for the
// substitution rationale).
//
// Usage:
//
//	lms-collector -hostname $(hostname) -endpoint http://router:8090 \
//	              -interval 10s -simulate triad -groups MEM_DP,CLOCK
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/collector"
	"repro/internal/hpm"
	"repro/internal/workload"
)

// realProcFS reads the live /proc filesystem of the host.
type realProcFS struct{}

func read(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return string(b)
}

func (realProcFS) LoadAvg() string   { return read("/proc/loadavg") }
func (realProcFS) Stat() string      { return read("/proc/stat") }
func (realProcFS) Meminfo() string   { return read("/proc/meminfo") }
func (realProcFS) NetDev() string    { return read("/proc/net/dev") }
func (realProcFS) Diskstats() string { return read("/proc/diskstats") }

func pickWorkload(name string, cores int) (workload.Model, error) {
	switch name {
	case "triad":
		return workload.NewTriad(cores, 1e12), nil
	case "dgemm":
		return workload.NewDGEMM(cores, 1e12), nil
	case "minimd":
		return workload.NewMiniMD(cores, 131072, 1<<40), nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want triad, dgemm or minimd)", name)
	}
}

func main() { cli.Main("lms-collector", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-collector", flag.ContinueOnError)
	hostname := fs.String("hostname", "", "hostname tag (default: os.Hostname)")
	endpoint := fs.String("endpoint", "http://127.0.0.1:8090", "router or database base URL")
	dbName := fs.String("db", "lms", "database name")
	interval := fs.Duration("interval", 10*time.Second, "collection interval")
	perCore := fs.Bool("per-core", false, "emit per-core CPU utilization")
	simulate := fs.String("simulate", "", "drive simulated HPM counters with a workload (triad, dgemm, minimd)")
	groups := fs.String("groups", "MEM_DP", "comma-separated LIKWID performance groups")
	groupDir := fs.String("group-dir", "", "directory with site-local performance group files (*.txt)")
	cluster := fs.String("cluster", "", "optional cluster tag")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	host := *hostname
	if host == "" {
		h, err := os.Hostname()
		if err != nil {
			return err
		}
		host = h
	}
	extra := map[string]string{}
	if *cluster != "" {
		extra["cluster"] = *cluster
	}
	agent, err := collector.New(collector.Config{
		Hostname:  host,
		Endpoint:  *endpoint,
		Database:  *dbName,
		Interval:  *interval,
		ExtraTags: extra,
		OnError: func(plugin string, err error) {
			log.Printf("lms-collector: %s: %v", plugin, err)
		},
	})
	if err != nil {
		return err
	}

	procFS := realProcFS{}
	for _, p := range []collector.Plugin{
		&collector.LoadPlugin{FS: procFS},
		&collector.CPUPlugin{FS: procFS, PerCore: *perCore},
		&collector.MemoryPlugin{FS: procFS},
		&collector.NetworkPlugin{FS: procFS},
		&collector.DiskPlugin{FS: procFS},
	} {
		if err := agent.Register(p); err != nil {
			return err
		}
	}

	if *simulate != "" {
		topo := hpm.DefaultTopology()
		machine, err := hpm.NewMachine(topo)
		if err != nil {
			return err
		}
		model, err := pickWorkload(*simulate, topo.NumHWThreads())
		if err != nil {
			return err
		}
		groupSet := hpm.Builtin()
		if *groupDir != "" {
			loaded, err := groupSet.LoadDir(*groupDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "lms-collector: loaded custom groups %v from %s\n", loaded, *groupDir)
		}
		for core := 0; core < topo.NumHWThreads(); core++ {
			if err := machine.SetRates(core, model.ProfileAt(1, core).Rates(topo.BaseClockMHz)); err != nil {
				return err
			}
		}
		for _, g := range strings.Split(*groups, ",") {
			g = strings.TrimSpace(g)
			if g == "" {
				continue
			}
			if err := agent.Register(&collector.HPMPlugin{Machine: machine, GroupName: g, Groups: groupSet}); err != nil {
				return err
			}
		}
		// Advance the simulated counters in real time.
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for range tick.C {
				_ = machine.Advance(1)
			}
		}()
	}

	fmt.Fprintf(stdout, "lms-collector: host %s -> %s every %v (plugins: %s)\n",
		host, *endpoint, *interval, strings.Join(agent.Plugins(), ", "))
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() { <-sig; close(stop) }()
	agent.Run(stop)
	return nil
}
