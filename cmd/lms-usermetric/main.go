// Command lms-usermetric is the libusermetric command line tool of paper
// Sect. IV: "For use in batch scripts, a command line application can send
// metrics and events from the shell." The miniMD use case of Fig. 3 sends
// its application start/end events with exactly this tool.
//
// Usage:
//
//	lms-usermetric -endpoint http://router:8090 -tag hostname=node01 \
//	               metric pressure 5.9
//	lms-usermetric -endpoint http://router:8090 -tag hostname=node01 \
//	               event "starting miniMD"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/usermetric"
)

type tagFlags map[string]string

func (t tagFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tagFlags) Set(s string) error {
	idx := strings.IndexByte(s, '=')
	if idx <= 0 {
		return fmt.Errorf("tag must be key=value, got %q", s)
	}
	t[s[:idx]] = s[idx+1:]
	return nil
}

func main() { cli.Main("lms-usermetric", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-usermetric", flag.ContinueOnError)
	fs.Usage = func() {
		// fs.Output() so cli.Parse controls where this lands (stdout for
		// --help, suppressed on flag errors).
		fmt.Fprintf(fs.Output(), `usage:
  lms-usermetric [flags] metric <name> <value> [<field>=<value>...]
  lms-usermetric [flags] event <text>

flags:
`)
		fs.PrintDefaults()
	}
	endpoint := fs.String("endpoint", "http://127.0.0.1:8090", "router or database base URL")
	dbName := fs.String("db", "lms", "database name")
	tags := tagFlags{}
	fs.Var(tags, "tag", "default tag key=value (repeatable); include hostname for job tagging")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 2 {
		return cli.UsageErr(fs, "need a metric or event command")
	}

	if _, ok := tags["hostname"]; !ok {
		if h, err := os.Hostname(); err == nil {
			tags["hostname"] = h
		}
	}
	client, err := usermetric.New(usermetric.Config{
		Endpoint:      *endpoint,
		Database:      *dbName,
		DefaultTags:   tags,
		FlushInterval: -1, // single shot
	})
	if err != nil {
		return err
	}

	switch rest[0] {
	case "metric":
		if len(rest) < 3 {
			return cli.UsageErr(fs, "metric needs a name and a value")
		}
		name := rest[1]
		value, err := strconv.ParseFloat(rest[2], 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", rest[2], err)
		}
		if err := client.Metric(name, value, nil); err != nil {
			return err
		}
	case "event":
		text := strings.Join(rest[1:], " ")
		if err := client.Event(text, nil); err != nil {
			return err
		}
	default:
		return cli.UsageErr(fs, "unknown command %q", rest[0])
	}
	if err := client.Close(); err != nil {
		return fmt.Errorf("send: %w", err)
	}
	return nil
}
