package tsdb

// Tests of the durable storage engine (persist.go, DESIGN.md §9): clean
// close/reopen round trips, the crash-injection harness (torn WAL tails
// at randomized offsets, recovered state held byte-identical to the
// acknowledged prefix via /query JSON), checkpoint+replay oracles against
// an in-memory store, on-disk retention expiry and race coverage of
// checkpoints vs concurrent writers.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb/durable"
)

// corpusBatches builds a deterministic write sequence covering every
// columnar write shape: in-order appends, out-of-order runs (compaction),
// exact-timestamp rewrites (upsert), sparse string/event columns, mixed
// kinds and multi-measurement batches.
func corpusBatches() [][]lineproto.Point {
	base := int64(1600000000_000000000)
	at := func(s int64) time.Time { return time.Unix(0, base+s*int64(time.Second)).UTC() }
	cpu := func(host string, sec int64, user float64, ctx int64) lineproto.Point {
		return lineproto.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": host},
			Fields: map[string]lineproto.Value{
				"user": lineproto.Float(user),
				"ctx":  lineproto.Int(ctx),
			},
			Time: at(sec),
		}
	}
	var batches [][]lineproto.Point
	// 1-4: the in-order agent pattern, two hosts, two flushes each.
	for flush := int64(0); flush < 2; flush++ {
		for _, host := range []string{"h1", "h2"} {
			var b []lineproto.Point
			for i := int64(0); i < 25; i++ {
				s := flush*25 + i
				b = append(b, cpu(host, s, float64(s)+0.5, s*3))
			}
			batches = append(batches, b)
		}
	}
	// 5: out of order — opens a new run and compacts.
	batches = append(batches, []lineproto.Point{
		cpu("h1", -30, 1.25, -7), cpu("h1", -20, 2.5, 0), cpu("h1", 10, 99, 42),
	})
	// 6: exact-timestamp rewrite of the newest h2 run (upsert semantics).
	var rw []lineproto.Point
	for i := int64(25); i < 50; i++ {
		rw = append(rw, cpu("h2", i, 1000+float64(i), i))
	}
	batches = append(batches, rw)
	// 7: sparse events — msg only on some rows, code on others.
	ev := func(sec int64, fields map[string]lineproto.Value) lineproto.Point {
		return lineproto.Point{
			Measurement: "events",
			Tags:        map[string]string{"hostname": "h1", "jobid": "42"},
			Fields:      fields,
			Time:        at(sec),
		}
	}
	batches = append(batches, []lineproto.Point{
		ev(1, map[string]lineproto.Value{"msg": lineproto.String("job started")}),
		ev(2, map[string]lineproto.Value{"code": lineproto.Float(0)}),
		ev(3, map[string]lineproto.Value{"msg": lineproto.String("phase"), "code": lineproto.Float(1)}),
		ev(9, map[string]lineproto.Value{"msg": lineproto.String("job started")}), // repeated interned string
	})
	// 8: mixed kinds — v flips float -> int -> bool across batches.
	mix := func(sec int64, v lineproto.Value) lineproto.Point {
		return lineproto.Point{Measurement: "mixm", Fields: map[string]lineproto.Value{"v": v}, Time: at(sec)}
	}
	batches = append(batches,
		[]lineproto.Point{mix(1, lineproto.Float(1.5)), mix(2, lineproto.Float(2.5))},
		[]lineproto.Point{mix(3, lineproto.Int(3)), mix(4, lineproto.Bool(true))},
	)
	// 9: multi-measurement batch crossing shards.
	batches = append(batches, []lineproto.Point{
		cpu("h3", 60, 1, 1),
		{Measurement: "mem", Tags: map[string]string{"hostname": "h3"},
			Fields: map[string]lineproto.Value{"used_kb": lineproto.Float(4096)}, Time: at(60)},
		cpu("h3", 61, 2, 2),
	})
	return batches
}

var corpusQueries = []string{
	"SELECT * FROM cpu",
	"SELECT user FROM cpu WHERE hostname = 'h1' LIMIT 7",
	"SELECT mean(user) FROM cpu GROUP BY time(10s), hostname",
	"SELECT max(ctx) FROM cpu GROUP BY hostname",
	"SELECT percentile(user, 90) FROM cpu",
	"SELECT * FROM events",
	"SELECT msg FROM events WHERE jobid = '42'",
	"SELECT * FROM mixm",
	"SELECT * FROM mem",
	"SHOW MEASUREMENTS",
	"SHOW FIELD KEYS FROM cpu",
	"SHOW TAG VALUES FROM cpu WITH KEY = hostname",
}

// queryFingerprint renders every corpus query through the HTTP handler
// and concatenates the raw JSON bodies: the byte-identity oracle of the
// recovery tests.
func queryFingerprint(t *testing.T, store *Store, db string) string {
	t.Helper()
	h := NewHandler(store)
	var sb strings.Builder
	for _, q := range corpusQueries {
		req := httptest.NewRequest("GET",
			"/query?db="+url.QueryEscape(db)+"&q="+url.QueryEscape(q)+"&epoch=ns", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("query %q: status %d: %s", q, rec.Code, rec.Body.String())
		}
		fmt.Fprintf(&sb, "-- %s\n%s\n", q, rec.Body.String())
	}
	return sb.String()
}

// memoryOracle builds an in-memory store holding the given batch prefix.
func memoryOracle(t *testing.T, batches [][]lineproto.Point) *Store {
	t.Helper()
	st := NewStore()
	st.ShardsPerDB = 4
	db := st.CreateDatabase("lms")
	for _, b := range batches {
		if err := db.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func openDurableStore(t *testing.T, d Durability) *Store {
	t.Helper()
	st, err := OpenStore(StoreOptions{ShardsPerDB: 4, Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDurableCloseReopenByteIdentical is the clean restart round trip:
// ingest the corpus, Close (final checkpoint), reopen, and every /query
// response must be byte-identical — to the pre-restart store and to an
// in-memory oracle that never touched disk.
func TestDurableCloseReopenByteIdentical(t *testing.T) {
	dir := t.TempDir()
	batches := corpusBatches()

	st := openDurableStore(t, Durability{Dir: dir})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := db.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	before := queryFingerprint(t, st, "lms")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openDurableStore(t, Durability{Dir: dir})
	after := queryFingerprint(t, st2, "lms")
	if after != before {
		t.Fatal("recovered /query responses differ from pre-restart responses")
	}
	if oracle := queryFingerprint(t, memoryOracle(t, batches), "lms"); after != oracle {
		t.Fatal("recovered /query responses differ from the in-memory oracle")
	}
	// Writes keep working after recovery and survive a second restart.
	db2 := st2.DB("lms")
	if err := db2.WriteBatch(batches[len(batches)-1]); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := openDurableStore(t, Durability{Dir: dir})
	if got, want := st3.DB("lms").PointCount(), db2.PointCount(); got != want {
		t.Fatalf("third open PointCount = %d, want %d", got, want)
	}
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointPlusReplayOracle crashes (no final checkpoint)
// with half the corpus behind a checkpoint and half only in the WAL:
// recovery must stitch both together byte-identically.
func TestDurableCheckpointPlusReplayOracle(t *testing.T) {
	dir := t.TempDir()
	batches := corpusBatches()
	half := len(batches) / 2

	st := openDurableStore(t, Durability{Dir: dir, Fsync: durable.FsyncOff})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:half] {
		if err := db.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[half:] {
		if err := db.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	st.Abort() // crash: the tail lives only in the WAL

	st2 := openDurableStore(t, Durability{Dir: dir})
	got := queryFingerprint(t, st2, "lms")
	want := queryFingerprint(t, memoryOracle(t, batches), "lms")
	if got != want {
		t.Fatal("checkpoint+WAL recovery differs from the in-memory oracle")
	}
	st2.Abort()
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDurableCrashRecoveryTornTail is the crash-injection harness of the
// issue: the WAL is cut at randomized byte offsets — including mid-frame,
// producing a torn final record — and the recovered /query responses must
// be byte-identical to an in-memory oracle holding exactly the batches
// whose WAL frames survived the cut (the acknowledged prefix).
func TestDurableCrashRecoveryTornTail(t *testing.T) {
	master := t.TempDir()
	batches := corpusBatches()

	st := openDurableStore(t, Durability{Dir: master, Fsync: durable.FsyncOff})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	ends := make([]int64, 0, len(batches)) // WAL offset just past each batch's frame
	for _, b := range batches {
		if err := db.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, db.dur.wal.TotalSize())
	}
	seg := db.dur.wal.CurrentSegment()
	if seg != 1 {
		t.Fatalf("corpus spilled to segment %d; the harness assumes one segment", seg)
	}
	segFile := db.dur.wal.SegmentPath(seg)
	segRel, err := filepath.Rel(master, segFile)
	if err != nil {
		t.Fatal(err)
	}
	st.Abort()
	info, err := os.Stat(segFile)
	if err != nil {
		t.Fatal(err)
	}
	fileSize := info.Size()

	rng := rand.New(rand.NewSource(5)) // deterministic "randomized offsets"
	cuts := []int64{0, 3, ends[0] - 1, ends[0], fileSize - 1, fileSize}
	for i := 0; i < 10; i++ {
		cuts = append(cuts, rng.Int63n(fileSize+1))
	}
	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, master, dir)
			if err := os.Truncate(filepath.Join(dir, segRel), cut); err != nil {
				t.Fatal(err)
			}
			acked := 0
			for _, end := range ends {
				if end <= cut {
					acked++
				}
			}
			st2 := openDurableStore(t, Durability{Dir: dir})
			got := queryFingerprint(t, st2, "lms")
			want := queryFingerprint(t, memoryOracle(t, batches[:acked]), "lms")
			if got != want {
				t.Errorf("cut at %d (%d/%d batches acked): recovered state differs from oracle",
					cut, acked, len(batches))
			}
			st2.Abort()
		})
	}
}

// TestDurableRetentionDeletesOnDiskState: a retention sweep that dropped
// rows must also shrink the disk — the scheduled checkpoint excludes the
// expired blocks and deletes the covered WAL segments.
func TestDurableRetentionDeletesOnDiskState(t *testing.T) {
	dir := t.TempDir()
	st := openDurableStore(t, Durability{
		Dir:                      dir,
		Fsync:                    durable.FsyncOff,
		RetentionCheckpointEvery: time.Millisecond,
	})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	old := lineproto.Point{Measurement: "cpu", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)},
		Time: now.Add(-2 * time.Hour)}
	fresh := lineproto.Point{Measurement: "cpu", Fields: map[string]lineproto.Value{"v": lineproto.Float(2)},
		Time: now}
	// Suppress the write-path sweep so the background ticker does the drop.
	db.lastPrune.Store(now.UnixNano())
	if err := db.WriteBatch([]lineproto.Point{old, fresh}); err != nil {
		t.Fatal(err)
	}
	if got := db.PointCount(); got != 2 {
		t.Fatalf("PointCount before sweep = %d, want 2", got)
	}
	walSizeBefore := db.dur.wal.TotalSize()
	db.SetRetention(time.Hour) // ticker sweeps at 1s period

	deadline := time.Now().Add(10 * time.Second)
	for db.PointCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("ticker sweep never dropped the expired point")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The sweep schedules a checkpoint: eventually a checkpoint file
	// exists and the WAL has been truncated below its pre-sweep size.
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint shrank the WAL (size %d, before %d)", db.dur.wal.TotalSize(), walSizeBefore)
		}
		snaps, _ := filepath.Glob(filepath.Join(dir, "*", "checkpoint-*.snap"))
		if len(snaps) > 0 && db.dur.wal.TotalSize() < walSizeBefore {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A crash-reopen now must come up without the expired point.
	st.Abort()
	st2 := openDurableStore(t, Durability{Dir: dir})
	if got := st2.DB("lms").PointCount(); got != 1 {
		t.Fatalf("reopened PointCount = %d, want 1 (expired point resurrected?)", got)
	}
	st2.Abort()
}

// TestDurableConcurrentWritesAndCheckpoints races writers against
// explicit checkpoints; run under -race this exercises the write gate and
// the immutability invariants buildSnapshot relies on. Every acknowledged
// batch must survive the final crash-reopen.
func TestDurableConcurrentWritesAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st := openDurableStore(t, Durability{Dir: dir, Fsync: durable.FsyncOff})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	const writers, batchesPer, perBatch = 4, 30, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			meas := fmt.Sprintf("m%d", w)
			for i := 0; i < batchesPer; i++ {
				var b []lineproto.Point
				for j := 0; j < perBatch; j++ {
					b = append(b, lineproto.Point{
						Measurement: meas,
						Tags:        map[string]string{"hostname": "h"},
						Fields:      map[string]lineproto.Value{"v": lineproto.Float(float64(i*perBatch + j))},
						Time:        time.Unix(int64(i*perBatch+j), 0),
					})
				}
				if err := db.WriteBatch(b); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	want := writers * batchesPer * perBatch
	if got := db.PointCount(); got != want {
		t.Fatalf("PointCount = %d, want %d", got, want)
	}
	st.Abort()
	st2 := openDurableStore(t, Durability{Dir: dir})
	if got := st2.DB("lms").PointCount(); got != want {
		t.Fatalf("recovered PointCount = %d, want %d", got, want)
	}
	st2.Abort()
}

// TestStoreRecoversAllDatabases: OpenStore must bring back every
// database in the directory (the router's per-user duplicates included),
// even ones whose names need path escaping.
func TestStoreRecoversAllDatabases(t *testing.T) {
	dir := t.TempDir()
	st := openDurableStore(t, Durability{Dir: dir})
	for _, name := range []string{"lms", "user_alice", "we/ird db"} {
		db, err := st.OpenDatabase(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.WriteBatch([]lineproto.Point{{
			Measurement: "cpu",
			Fields:      map[string]lineproto.Value{"v": lineproto.Float(1)},
			Time:        time.Unix(1, 0),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openDurableStore(t, Durability{Dir: dir})
	got := st2.Databases()
	want := []string{"lms", "user_alice", "we/ird db"}
	if len(got) != len(want) {
		t.Fatalf("recovered databases %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered databases %v, want %v", got, want)
		}
		if n := st2.DB(want[i]).PointCount(); n != 1 {
			t.Fatalf("database %q recovered %d points, want 1", want[i], n)
		}
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableWriteAfterCloseErrors(t *testing.T) {
	st := openDurableStore(t, Durability{Dir: t.TempDir()})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	err = db.WriteBatch([]lineproto.Point{{
		Measurement: "cpu", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)},
	}})
	if err != ErrDBClosed {
		t.Fatalf("write after close = %v, want ErrDBClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

// TestDropDatabaseRemovesDir: dropping a durable database must delete its
// on-disk directory, and re-creating it starts empty.
func TestDropDatabaseRemovesDir(t *testing.T) {
	dir := t.TempDir()
	st := openDurableStore(t, Durability{Dir: dir})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBatch([]lineproto.Point{{
		Measurement: "cpu", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}, Time: time.Unix(1, 0),
	}}); err != nil {
		t.Fatal(err)
	}
	dbDir := db.dur.dir
	st.DropDatabase("lms")
	if _, err := os.Stat(dbDir); !os.IsNotExist(err) {
		t.Fatal("dropped database directory still exists")
	}
	db2, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.PointCount(); got != 0 {
		t.Fatalf("re-created database has %d points, want 0", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStoreLocksDataDir: two processes on one data directory would
// interleave WAL frames and delete each other's segments; the second open
// must be refused until the first closes.
func TestOpenStoreLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	st := openDurableStore(t, Durability{Dir: dir})
	if _, err := OpenStore(StoreOptions{Durability: Durability{Dir: dir}}); err == nil {
		t.Fatal("second OpenStore on a locked data directory succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openDurableStore(t, Durability{Dir: dir})
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointIdempotentSegments: repeated checkpoints with no traffic
// in between (the disk-full retry pattern) must reuse the empty tail
// segment instead of growing a trail of files.
func TestCheckpointIdempotentSegments(t *testing.T) {
	dir := t.TempDir()
	st := openDurableStore(t, Durability{Dir: dir, Fsync: durable.FsyncOff})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBatch(corpusBatches()[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*", "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d WAL segments after repeated checkpoints, want 1: %v", len(segs), segs)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "*", "checkpoint-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("%d checkpoint files, want 1: %v", len(snaps), snaps)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableInvalidDatabaseNamesRefused: names whose directory form
// would escape the data dir ("..", ".") or collide with the store's LOCK
// file must not open durably — a handler-auto-created "db=.." scattering
// WAL files into (or RemoveAll-ing) the parent directory would be a
// disaster.
func TestDurableInvalidDatabaseNamesRefused(t *testing.T) {
	st := openDurableStore(t, Durability{Dir: t.TempDir()})
	defer st.Close()
	for _, name := range []string{".", "..", "LOCK"} {
		if _, err := st.OpenDatabase(name); err == nil {
			t.Errorf("OpenDatabase(%q) succeeded, want error", name)
		}
	}
	// CreateDatabase degrades to an uncached volatile DB rather than
	// touching the disk outside the store.
	db := st.CreateDatabase("..")
	if db == nil || db.dur != nil {
		t.Fatal("CreateDatabase(..) must degrade to a volatile DB")
	}
}
