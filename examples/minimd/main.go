// Application-level monitoring of Mantevo's miniMD proxy app, reproducing
// paper Fig. 3: the instrumented application emits runtime per 100
// iterations, pressure, temperature and energy through libusermetric, the
// start/end events come from the command-line tool, and the dashboard
// renders the four series against the runtime with the events as
// annotations.
//
//	go run ./examples/minimd
package main

import (
	"context"
	"fmt"
	"log"

	lms "repro"
	"repro/internal/dashboard"
	"repro/internal/tsdb"
)

func main() {
	stack, sim, err := lms.NewSimulatedStack(
		lms.StackConfig{PerUserDBs: true},
		lms.SimConfig{Nodes: 1, CollectInterval: 60},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// One miniMD run: 2M atoms, 20000 iterations on 20 cores (~26 simulated
	// minutes). The simulation wires the model's per-100-iteration samples
	// through a libusermetric client into the router.
	mm := lms.NewMiniMD(20, 2097152, 20000)
	if err := sim.SubmitJob(lms.JobRequest{ID: "1234.master", User: "alice", Nodes: 1}, mm); err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(mm.Duration() + 180); err != nil {
		log.Fatal(err)
	}

	// Fig. 3 (left): runtime of 100 iterations and pressure; (right):
	// energy and temperature — all four as sparkline timelines, plus the
	// start/end events as dashed annotation markers in the original.
	job := sim.Sched.Finished()[0]
	meta := sim.JobMeta(job)
	d, err := stack.Agent.GenerateJobDashboard(meta)
	if err != nil {
		log.Fatal(err)
	}
	text, err := dashboard.RenderDashboard(context.Background(), stack.Querier, stack.DBName(), d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)

	// The same data, queried the way a Grafana panel would.
	res, err := stack.DB.Select(tsdb.Query{
		Measurement: "minimd",
		Fields:      []string{"pressure"},
		Filter:      tsdb.TagFilter{"jobid": "1234.master"},
		Agg:         tsdb.AggMean,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmean pressure over the run: %.3f (LJ reduced units)\n",
		res[0].Rows[0].Values[0].FloatVal())
}
