package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lineproto"
)

func ts(ns int64) time.Time { return time.Unix(0, ns).UTC() }

func pt(meas string, tags map[string]string, val float64, t int64) lineproto.Point {
	return lineproto.Point{
		Measurement: meas,
		Tags:        tags,
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(val)},
		Time:        ts(t),
	}
}

func TestStoreCreateAndDrop(t *testing.T) {
	s := NewStore()
	db := s.CreateDatabase("lms")
	if db == nil || s.DB("lms") != db {
		t.Fatal("create/get mismatch")
	}
	if s.CreateDatabase("lms") != db {
		t.Fatal("create should be idempotent")
	}
	s.CreateDatabase("user_a")
	got := s.Databases()
	want := []string{"lms", "user_a"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("databases %v", got)
	}
	s.DropDatabase("user_a")
	if s.DB("user_a") != nil {
		t.Fatal("drop failed")
	}
}

func TestWriteAndSelectRaw(t *testing.T) {
	db := NewDB("test")
	for i := 0; i < 10; i++ {
		if err := db.WritePoint(pt("cpu", map[string]string{"hostname": "h1"}, float64(i), int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Select(Query{Measurement: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("series %d", len(res))
	}
	if len(res[0].Rows) != 10 {
		t.Fatalf("rows %d", len(res[0].Rows))
	}
	for i, r := range res[0].Rows {
		if r.Time.UnixNano() != int64(i*100) {
			t.Errorf("row %d time %v", i, r.Time)
		}
		if r.Values[0].FloatVal() != float64(i) {
			t.Errorf("row %d value %v", i, r.Values[0])
		}
	}
}

func TestSelectTimeRange(t *testing.T) {
	db := NewDB("test")
	for i := 0; i < 100; i++ {
		_ = db.WritePoint(pt("m", nil, float64(i), int64(i)))
	}
	res, err := db.Select(Query{Measurement: "m", Start: ts(10), End: ts(19)})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res[0].Rows); n != 10 {
		t.Fatalf("rows %d", n)
	}
	if res[0].Rows[0].Time.UnixNano() != 10 || res[0].Rows[9].Time.UnixNano() != 19 {
		t.Fatalf("range wrong: %v..%v", res[0].Rows[0].Time, res[0].Rows[9].Time)
	}
}

func TestSelectTagFilter(t *testing.T) {
	db := NewDB("test")
	for i := 0; i < 4; i++ {
		host := fmt.Sprintf("h%d", i%2+1)
		_ = db.WritePoint(pt("cpu", map[string]string{"hostname": host}, float64(i), int64(i)))
	}
	res, err := db.Select(Query{Measurement: "cpu", Filter: TagFilter{"hostname": "h1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 2 {
		t.Fatalf("res %+v", res)
	}
	// Wildcard: tag must exist.
	res, err = db.Select(Query{Measurement: "cpu", Filter: TagFilter{"hostname": "*"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Rows) != 4 {
		t.Fatalf("wildcard rows %d", len(res[0].Rows))
	}
	// Missing tag never matches.
	res, _ = db.Select(Query{Measurement: "cpu", Filter: TagFilter{"rack": "*"}})
	if len(res) != 0 {
		t.Fatalf("expected no series, got %+v", res)
	}
}

func TestSelectGroupByTag(t *testing.T) {
	db := NewDB("test")
	for i := 0; i < 6; i++ {
		host := fmt.Sprintf("h%d", i%3+1)
		_ = db.WritePoint(pt("cpu", map[string]string{"hostname": host, "core": "0"}, float64(i), int64(i)))
	}
	res, err := db.Select(Query{Measurement: "cpu", GroupByTags: []string{"hostname"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("series %d", len(res))
	}
	seen := map[string]bool{}
	for _, s := range res {
		seen[s.Tags["hostname"]] = true
		if len(s.Rows) != 2 {
			t.Errorf("series %v rows %d", s.Tags, len(s.Rows))
		}
	}
	if !seen["h1"] || !seen["h2"] || !seen["h3"] {
		t.Fatalf("hosts %v", seen)
	}
}

func TestSelectAggregate(t *testing.T) {
	db := NewDB("test")
	vals := []float64{4, 2, 8, 6}
	for i, v := range vals {
		_ = db.WritePoint(pt("m", nil, v, int64(i)))
	}
	cases := []struct {
		agg  AggFunc
		want float64
	}{
		{AggMean, 5}, {AggMin, 2}, {AggMax, 8}, {AggSum, 20},
		{AggFirst, 4}, {AggLast, 6}, {AggSpread, 6}, {AggMedian, 5},
	}
	for _, c := range cases {
		res, err := db.Select(Query{Measurement: "m", Agg: c.agg})
		if err != nil {
			t.Fatalf("%s: %v", c.agg, err)
		}
		got := res[0].Rows[0].Values[0].FloatVal()
		if got != c.want {
			t.Errorf("%s: got %v want %v", c.agg, got, c.want)
		}
	}
	res, _ := db.Select(Query{Measurement: "m", Agg: AggCount})
	if res[0].Rows[0].Values[0].IntVal() != 4 {
		t.Error("count")
	}
	res, _ = db.Select(Query{Measurement: "m", Agg: AggStddev})
	want := math.Sqrt((1 + 9 + 9 + 1) / 3.0)
	if got := res[0].Rows[0].Values[0].FloatVal(); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev got %v want %v", got, want)
	}
	res, _ = db.Select(Query{Measurement: "m", Agg: AggPercentile, Percentile: 100})
	if res[0].Rows[0].Values[0].FloatVal() != 8 {
		t.Error("p100")
	}
}

func TestSelectDerivative(t *testing.T) {
	db := NewDB("test")
	// A counter increasing by 10 per second.
	for i := 0; i < 5; i++ {
		_ = db.WritePoint(pt("net_bytes", nil, float64(i*10), int64(i)*time.Second.Nanoseconds()))
	}
	res, err := db.Select(Query{Measurement: "net_bytes", Agg: AggDerivative})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0].Values[0].FloatVal(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("derivative %v", got)
	}
}

func TestSelectWindowed(t *testing.T) {
	db := NewDB("test")
	// 60 points, one per second, value == second index.
	for i := 0; i < 60; i++ {
		_ = db.WritePoint(pt("m", nil, float64(i), int64(i)*time.Second.Nanoseconds()))
	}
	res, err := db.Select(Query{
		Measurement: "m",
		Start:       ts(0),
		End:         ts(59 * time.Second.Nanoseconds()),
		Every:       10 * time.Second,
		Agg:         AggMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 6 {
		t.Fatalf("windows %d", len(rows))
	}
	for i, r := range rows {
		wantT := int64(i*10) * time.Second.Nanoseconds()
		wantV := float64(i*10) + 4.5
		if r.Time.UnixNano() != wantT {
			t.Errorf("window %d time %v", i, r.Time)
		}
		if got := r.Values[0].FloatVal(); math.Abs(got-wantV) > 1e-9 {
			t.Errorf("window %d mean %v want %v", i, got, wantV)
		}
	}
}

func TestSelectWindowAlignment(t *testing.T) {
	db := NewDB("test")
	// Points at t=15s and t=25s with 10s windows must land in the 10s and 20s
	// aligned buckets.
	_ = db.WritePoint(pt("m", nil, 1, 15*time.Second.Nanoseconds()))
	_ = db.WritePoint(pt("m", nil, 2, 25*time.Second.Nanoseconds()))
	res, err := db.Select(Query{Measurement: "m", Every: 10 * time.Second, Agg: AggSum})
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].Time.UnixNano() != 10*time.Second.Nanoseconds() ||
		rows[1].Time.UnixNano() != 20*time.Second.Nanoseconds() {
		t.Fatalf("alignment: %v %v", rows[0].Time, rows[1].Time)
	}
}

func TestSelectMissingMeasurement(t *testing.T) {
	db := NewDB("test")
	if _, err := db.Select(Query{Measurement: "nope"}); err != ErrNoMeasurement {
		t.Fatalf("err %v", err)
	}
}

func TestSelectLimit(t *testing.T) {
	db := NewDB("test")
	for i := 0; i < 10; i++ {
		_ = db.WritePoint(pt("m", nil, float64(i), int64(i)))
	}
	res, _ := db.Select(Query{Measurement: "m", Limit: 3})
	if len(res[0].Rows) != 3 {
		t.Fatalf("rows %d", len(res[0].Rows))
	}
}

func TestStringEvents(t *testing.T) {
	db := NewDB("test")
	ev := lineproto.Point{
		Measurement: "events",
		Tags:        map[string]string{"hostname": "h1"},
		Fields:      map[string]lineproto.Value{"text": lineproto.String("job 42 start")},
		Time:        ts(100),
	}
	if err := db.WritePoint(ev); err != nil {
		t.Fatal(err)
	}
	res, err := db.Select(Query{Measurement: "events"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0].Values[0].StringVal(); got != "job 42 start" {
		t.Fatalf("event %q", got)
	}
	// Numeric aggregation over a string column yields no value.
	res, err = db.Select(Query{Measurement: "events", Agg: AggMean})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows[0].Values[0] != nil {
		t.Fatal("mean of string column should be nil")
	}
	// count/last work on strings.
	res, _ = db.Select(Query{Measurement: "events", Agg: AggLast})
	if res[0].Rows[0].Values[0].StringVal() != "job 42 start" {
		t.Fatal("last of string column")
	}
}

func TestOutOfOrderInsertIsSorted(t *testing.T) {
	db := NewDB("test")
	order := []int64{50, 10, 30, 20, 40}
	for _, n := range order {
		_ = db.WritePoint(pt("m", nil, float64(n), n))
	}
	res, err := db.Select(Query{Measurement: "m"})
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, r := range res[0].Rows {
		if r.Time.UnixNano() <= prev {
			t.Fatalf("rows not sorted: %v", res[0].Rows)
		}
		prev = r.Time.UnixNano()
	}
}

func TestMetadataQueries(t *testing.T) {
	db := NewDB("test")
	_ = db.WritePoint(lineproto.Point{
		Measurement: "cpu",
		Tags:        map[string]string{"hostname": "h1", "core": "0"},
		Fields:      map[string]lineproto.Value{"user": lineproto.Float(1), "system": lineproto.Float(2)},
		Time:        ts(1),
	})
	_ = db.WritePoint(pt("mem", map[string]string{"hostname": "h2"}, 1, 2))
	if got := db.Measurements(); len(got) != 2 || got[0] != "cpu" || got[1] != "mem" {
		t.Fatalf("measurements %v", got)
	}
	if got := db.FieldKeys("cpu"); len(got) != 2 || got[0] != "system" || got[1] != "user" {
		t.Fatalf("fields %v", got)
	}
	if got := db.TagKeys("cpu"); len(got) != 2 || got[0] != "core" || got[1] != "hostname" {
		t.Fatalf("tagkeys %v", got)
	}
	if got := db.TagValues("cpu", "hostname"); len(got) != 1 || got[0] != "h1" {
		t.Fatalf("tagvalues %v", got)
	}
	if got := db.TagValues("", "hostname"); len(got) != 2 {
		t.Fatalf("global tagvalues %v", got)
	}
	if db.FieldKeys("absent") != nil || db.TagKeys("absent") != nil {
		t.Fatal("metadata for absent measurement should be nil")
	}
}

func TestRetention(t *testing.T) {
	db := NewDB("test")
	db.SetRetention(time.Minute)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 100; i++ {
		_ = db.WritePoint(pt("m", nil, float64(i), base.Add(time.Duration(i)*time.Second).UnixNano()))
	}
	// Writing a fresh point triggers pruning of everything older than 1m.
	_ = db.WritePoint(pt("m", nil, 1, time.Now().UnixNano()))
	db.DropBefore(time.Now().Add(-time.Minute))
	if n := db.PointCount(); n != 1 {
		t.Fatalf("points after retention: %d", n)
	}
}

func TestDropBeforeRemovesEmptyMeasurements(t *testing.T) {
	db := NewDB("test")
	_ = db.WritePoint(pt("m", nil, 1, 10))
	db.DropBefore(ts(100))
	if got := db.Measurements(); len(got) != 0 {
		t.Fatalf("measurements %v", got)
	}
}

func TestWriteInvalidPoint(t *testing.T) {
	db := NewDB("test")
	if err := db.WritePoint(lineproto.Point{}); err == nil {
		t.Fatal("expected error")
	}
	err := db.WritePoints([]lineproto.Point{pt("m", nil, 1, 1), {}})
	if err == nil {
		t.Fatal("expected batch error")
	}
	if db.PointCount() != 0 {
		t.Fatal("partial batch written")
	}
}

func TestWriteAssignsNow(t *testing.T) {
	db := NewDB("test")
	p := lineproto.Point{Measurement: "m", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}}
	before := time.Now()
	_ = db.WritePoint(p)
	res, _ := db.Select(Query{Measurement: "m"})
	got := res[0].Rows[0].Time
	if got.Before(before.Add(-time.Second)) || got.After(time.Now().Add(time.Second)) {
		t.Fatalf("assigned time %v", got)
	}
}

// Property: for random points, a full-range query returns them sorted and the
// mean of any window lies within [min, max].
func TestQueryInvariantsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		_ = seed
		db := NewDB("prop")
		n := r.Intn(200) + 2
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := r.NormFloat64() * 100
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			_ = db.WritePoint(pt("m", nil, v, r.Int63n(1_000_000)))
		}
		res, err := db.Select(Query{Measurement: "m"})
		if err != nil || len(res) != 1 {
			return false
		}
		prev := int64(-1)
		for _, row := range res[0].Rows {
			if row.Time.UnixNano() < prev {
				return false
			}
			prev = row.Time.UnixNano()
		}
		agg, err := db.Select(Query{Measurement: "m", Agg: AggMean})
		if err != nil {
			return false
		}
		mean := agg[0].Rows[0].Values[0].FloatVal()
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ingestion order does not change query results.
func TestIngestOrderIndependenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		_ = seed
		n := r.Intn(50) + 2
		pts := make([]lineproto.Point, n)
		for i := range pts {
			// Unique timestamps so ordering is deterministic.
			pts[i] = pt("m", nil, r.Float64(), int64(i)*1000+r.Int63n(999))
		}
		db1 := NewDB("a")
		for _, p := range pts {
			_ = db1.WritePoint(p)
		}
		shuffled := append([]lineproto.Point(nil), pts...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		db2 := NewDB("b")
		for _, p := range shuffled {
			_ = db2.WritePoint(p)
		}
		r1, _ := db1.Select(Query{Measurement: "m"})
		r2, _ := db2.Select(Query{Measurement: "m"})
		if len(r1) != 1 || len(r2) != 1 || len(r1[0].Rows) != len(r2[0].Rows) {
			return false
		}
		for i := range r1[0].Rows {
			a, b := r1[0].Rows[i], r2[0].Rows[i]
			if !a.Time.Equal(b.Time) || a.Values[0].FloatVal() != b.Values[0].FloatVal() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileFunction(t *testing.T) {
	nums := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {-5, 1}, {150, 10},
	}
	for _, c := range cases {
		if got := percentile(nums, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%v got %v want %v", c.p, got, c.want)
		}
	}
	if percentile([]float64{42}, 50) != 42 {
		t.Error("single element")
	}
	// Input must not be modified.
	in := []float64{3, 1, 2}
	percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("percentile modified input")
	}
}

func TestConcurrentWriteAndQuery(t *testing.T) {
	db := NewDB("test")
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				_ = db.WritePoint(pt("m", map[string]string{"g": fmt.Sprint(g)}, float64(i), int64(g*1000+i)))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		_, _ = db.Select(Query{Measurement: "m", Agg: AggMean})
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if n := db.PointCount(); n != 2000 {
		t.Fatalf("points %d", n)
	}
}

func TestSeriesKeyCanonical(t *testing.T) {
	a := seriesKey(map[string]string{"b": "2", "a": "1"})
	b := seriesKey(map[string]string{"a": "1", "b": "2"})
	if a != b || a != "a=1,b=2" {
		t.Fatalf("keys %q %q", a, b)
	}
	if seriesKey(nil) != "" {
		t.Fatal("nil tags key")
	}
}

func TestAggValidNames(t *testing.T) {
	for _, n := range []string{"count", "sum", "mean", "min", "max", "first", "last", "spread", "stddev", "median", "percentile", "derivative"} {
		if !ValidAgg(n) {
			t.Errorf("%s should be valid", n)
		}
	}
	if ValidAgg("explode") || ValidAgg("") {
		t.Error("invalid names accepted")
	}
}

func sortedCopy(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}

// Property: median equals the 50th percentile of the sorted values.
func TestMedianProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		_ = seed
		n := r.Intn(30) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		s := sortedCopy(xs)
		var want float64
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		return math.Abs(percentile(xs, 50)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionTickerAgesOutIdleData guards the background retention
// ticker: before it existed, the sweep only fired on writes, so an idle
// database kept expired data forever. The ticker anchors the cutoff at
// the wall clock, so this data must disappear with no further ingest.
func TestRetentionTickerAgesOutIdleData(t *testing.T) {
	db := NewDB("test")
	defer db.Close()
	if err := db.WritePoint(pt("m", nil, 1, time.Now().UnixNano())); err != nil {
		t.Fatal(err)
	}
	db.SetRetention(100 * time.Millisecond) // ticker sweeps every 50ms
	deadline := time.Now().Add(10 * time.Second)
	for db.PointCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired data survived an idle database; the ticker never swept")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSetRetentionZeroStopsTicker: disabling retention stops the sweeper,
// so data written afterwards stays put.
func TestSetRetentionZeroStopsTicker(t *testing.T) {
	db := NewDB("test")
	defer db.Close()
	db.SetRetention(20 * time.Millisecond)
	db.SetRetention(0)
	if err := db.WritePoint(pt("m", nil, 1, time.Now().Add(-time.Hour).UnixNano())); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if got := db.PointCount(); got != 1 {
		t.Fatalf("PointCount = %d after disabling retention, want 1", got)
	}
	// Close is idempotent and stops any ticker left running.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionTickerPreservesHistoricalData guards the ticker's anchor
// arithmetic: simulation dumps and backfills carry timestamps far in the
// past, and the retention window must stay anchored at the *stream's*
// newest point (advanced only by idle wall time), not jump to the wall
// clock and instantly purge everything.
func TestRetentionTickerPreservesHistoricalData(t *testing.T) {
	db := NewDB("test")
	defer db.Close()
	newest := time.Now().Add(-time.Hour) // a 2017-style historical corpus
	_ = db.WritePoint(pt("m", nil, 1, newest.Add(-5*time.Second).UnixNano()))
	_ = db.WritePoint(pt("m", nil, 2, newest.UnixNano()))
	db.SetRetention(10 * time.Second)
	time.Sleep(2500 * time.Millisecond) // several ticker periods
	if got := db.PointCount(); got != 2 {
		t.Fatalf("historical points within the retention window were purged: PointCount = %d, want 2", got)
	}
}
