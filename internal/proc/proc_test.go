package proc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newState(t *testing.T) *State {
	t.Helper()
	s, err := NewState("node01", 4, 64*1024*1024) // 64 GB
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState("h", 0, 1024); err == nil {
		t.Error("zero cpus accepted")
	}
	if _, err := NewState("h", 4, 0); err == nil {
		t.Error("zero memory accepted")
	}
	s := newState(t)
	if s.Hostname() != "node01" || s.NumCPU() != 4 {
		t.Error("accessors")
	}
	if s.MemTotalKB() != 64*1024*1024 {
		t.Error("mem total")
	}
}

func TestCPUAccounting(t *testing.T) {
	s := newState(t)
	// CPU 0 fully busy in user, CPU 1 half user / quarter system, rest idle.
	if err := s.SetCPULoad(0, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCPULoad(1, 0.5, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(10); err != nil {
		t.Fatal(err)
	}
	cpus, _, _ := s.Counters()
	if cpus[0].User != 10*UserHZ {
		t.Errorf("cpu0 user %d", cpus[0].User)
	}
	if cpus[0].Idle != 0 {
		t.Errorf("cpu0 idle %d", cpus[0].Idle)
	}
	if cpus[1].User != 5*UserHZ || cpus[1].System != 250 {
		t.Errorf("cpu1 %+v", cpus[1])
	}
	if cpus[2].Idle != 10*UserHZ {
		t.Errorf("cpu2 idle %d", cpus[2].Idle)
	}
	if cpus[0].Busy() != 1000 || cpus[2].Busy() != 0 {
		t.Errorf("busy derivation")
	}
}

func TestCPULoadClamping(t *testing.T) {
	s := newState(t)
	if err := s.SetCPULoad(0, 2.0, 0.5); err != nil {
		t.Fatal(err)
	}
	_ = s.Tick(1)
	cpus, _, _ := s.Counters()
	if cpus[0].User != UserHZ || cpus[0].System != 0 {
		t.Fatalf("clamping %+v", cpus[0])
	}
	if err := s.SetCPULoad(9, 1, 0); err == nil {
		t.Fatal("bad cpu accepted")
	}
	if err := s.Tick(-1); err == nil {
		t.Fatal("negative tick accepted")
	}
}

func TestLoadAverageConvergence(t *testing.T) {
	s := newState(t)
	s.SetRunnable(4)
	// After 5 time constants the 1-minute average reaches ~99% of target.
	for i := 0; i < 300; i++ {
		_ = s.Tick(1)
	}
	v, err := ParseLoadAvg(s.LoadAvg())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Load1-4) > 0.1 {
		t.Errorf("load1 %v", v.Load1)
	}
	if v.Load5 < 1 || v.Load5 > 4 {
		t.Errorf("load5 %v", v.Load5)
	}
	if v.Load15 >= v.Load5 {
		t.Errorf("load15 %v >= load5 %v", v.Load15, v.Load5)
	}
	if v.Runnable != 4 {
		t.Errorf("runnable %d", v.Runnable)
	}
	// Negative runnable clamps.
	s.SetRunnable(-3)
	_ = s.Tick(1)
	v, _ = ParseLoadAvg(s.LoadAvg())
	if v.Runnable != 0 {
		t.Errorf("negative runnable: %d", v.Runnable)
	}
}

func TestStatRoundTrip(t *testing.T) {
	s := newState(t)
	_ = s.SetCPULoad(0, 0.8, 0.1)
	_ = s.SetCPULoad(3, 0.2, 0)
	_ = s.Tick(60)
	parsed, err := ParseStat(s.Stat())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.CPUs) != 4 {
		t.Fatalf("cpus %d", len(parsed.CPUs))
	}
	cpus, _, _ := s.Counters()
	for i := range cpus {
		if parsed.CPUs[i] != cpus[i] {
			t.Errorf("cpu%d: parsed %+v raw %+v", i, parsed.CPUs[i], cpus[i])
		}
	}
	var wantAgg CPUTimes
	for _, c := range cpus {
		wantAgg.User += c.User
		wantAgg.System += c.System
		wantAgg.Idle += c.Idle
	}
	if parsed.Aggregate.User != wantAgg.User || parsed.Aggregate.Idle != wantAgg.Idle {
		t.Errorf("aggregate %+v want %+v", parsed.Aggregate, wantAgg)
	}
}

func TestMeminfoRoundTrip(t *testing.T) {
	s := newState(t)
	s.SetMemUsed(10 * 1024 * 1024) // 10 GB
	m, err := ParseMeminfo(s.Meminfo())
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalKB != 64*1024*1024 {
		t.Errorf("total %d", m.TotalKB)
	}
	if m.UsedKB() != 10*1024*1024 {
		t.Errorf("used %d", m.UsedKB())
	}
	// Used beyond total clamps to total.
	s.SetMemUsed(1 << 60)
	m, _ = ParseMeminfo(s.Meminfo())
	if m.UsedKB() != 64*1024*1024 {
		t.Errorf("clamped used %d", m.UsedKB())
	}
}

func TestNetDevRoundTrip(t *testing.T) {
	s := newState(t)
	s.SetNetRates(1e6, 5e5) // 1 MB/s rx, 0.5 MB/s tx
	_ = s.Tick(10)
	ifaces, err := ParseNetDev(s.NetDev())
	if err != nil {
		t.Fatal(err)
	}
	eth, ok := ifaces["eth0"]
	if !ok {
		t.Fatalf("ifaces %v", ifaces)
	}
	if eth.RxBytes != 1e7 || eth.TxBytes != 5e6 {
		t.Errorf("eth0 %+v", eth)
	}
	if eth.RxPackets == 0 || eth.TxPackets == 0 {
		t.Errorf("packets %+v", eth)
	}
	if _, ok := ifaces["lo"]; !ok {
		t.Error("lo missing")
	}
}

func TestDiskstatsRoundTrip(t *testing.T) {
	s := newState(t)
	s.SetDiskRates(4096*100, 4096*50) // 100 read IOs/s, 50 write IOs/s
	_ = s.Tick(10)
	devs, err := ParseDiskstats(s.Diskstats())
	if err != nil {
		t.Fatal(err)
	}
	sda, ok := devs["sda"]
	if !ok {
		t.Fatalf("devs %v", devs)
	}
	if sda.ReadIOs != 1000 || sda.WriteIOs != 500 {
		t.Errorf("ios %+v", sda)
	}
	if sda.ReadSectors != 4096*100*10/512 {
		t.Errorf("sectors %+v", sda)
	}
}

func TestNegativeRatesClamp(t *testing.T) {
	s := newState(t)
	s.SetNetRates(-5, -5)
	s.SetDiskRates(-5, -5)
	_ = s.Tick(10)
	_, net, disk := s.Counters()
	if net.RxBytes != 0 || disk.WriteSectors != 0 {
		t.Fatalf("negative rates counted: %+v %+v", net, disk)
	}
}

func TestParseLoadAvgErrors(t *testing.T) {
	bad := []string{"", "1.0 2.0", "a b c 1/2 3", "1 2 3 nodash 5", "1 2 x 1/2 3", "1 x 3 1/2 3", "1 2 3 x/2 3", "1 2 3 1/x 3"}
	for _, s := range bad {
		if _, err := ParseLoadAvg(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestParseStatErrors(t *testing.T) {
	if _, err := ParseStat("intr 5"); err == nil {
		t.Error("missing cpu line accepted")
	}
	if _, err := ParseStat("cpu 1 2 3"); err == nil {
		t.Error("short cpu line accepted")
	}
	if _, err := ParseStat("cpu a b c d e f g"); err == nil {
		t.Error("garbage cpu line accepted")
	}
}

func TestParseMeminfoErrors(t *testing.T) {
	if _, err := ParseMeminfo(""); err == nil {
		t.Error("empty meminfo accepted")
	}
	if _, err := ParseMeminfo("SomethingElse: 5 kB"); err == nil {
		t.Error("irrelevant meminfo accepted")
	}
	// Unparsable numbers in known fields are skipped, leading to an error.
	if _, err := ParseMeminfo("MemTotal: abc kB\nMemFree: def kB"); err == nil {
		t.Error("garbage meminfo accepted")
	}
}

func TestParseNetDevErrors(t *testing.T) {
	if _, err := ParseNetDev("header only\n"); err == nil {
		t.Error("no interfaces accepted")
	}
	if _, err := ParseNetDev("eth0: 1 2 3\n"); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ParseNetDev("eth0: a 2 0 0 0 0 0 0 9 10 0 0 0 0 0 0\n"); err == nil {
		t.Error("garbage rx accepted")
	}
}

func TestParseDiskstatsErrors(t *testing.T) {
	if _, err := ParseDiskstats("\n\n"); err == nil {
		t.Error("empty diskstats accepted")
	}
	if _, err := ParseDiskstats("8 0 sda a 0 1 0 1 0 1 0\n"); err == nil {
		t.Error("garbage diskstats accepted")
	}
}

func TestParseRealWorldFormats(t *testing.T) {
	// Excerpts in real-kernel shapes (extra fields, multiple devices).
	load := "0.01 0.04 0.05 2/345 6789\n"
	if v, err := ParseLoadAvg(load); err != nil || v.Total != 345 {
		t.Errorf("%+v %v", v, err)
	}
	stat := "cpu  4705 150 1120 16250 520 30 45 0 0 0\ncpu0 4705 150 1120 16250 520 30 45 0 0 0\nintr 114930548\nctxt 1990473\n"
	if v, err := ParseStat(stat); err != nil || v.Aggregate.User != 4705 || len(v.CPUs) != 1 {
		t.Errorf("%+v %v", v, err)
	}
	netdev := `Inter-|   Receive                                                |  Transmit
 face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed
    lo: 1839064    8032    0    0    0     0          0         0  1839064    8032    0    0    0     0       0          0
  ib0: 90123456789 1234567    0    0    0     0          0         0 80123456789 7654321    0    0    0     0       0          0
`
	ifaces, err := ParseNetDev(netdev)
	if err != nil || ifaces["ib0"].RxBytes != 90123456789 {
		t.Errorf("%+v %v", ifaces, err)
	}
	disks := "   8       0 sda 168040 12924 6579954 1052456 72960 888313 14736174 4406280 0 559892 5459184\n   8       1 sda1 102 0 816 89 0 0 0 0 0 89 89\n"
	devs, err := ParseDiskstats(disks)
	if err != nil || devs["sda"].ReadSectors != 6579954 || len(devs) != 2 {
		t.Errorf("%+v %v", devs, err)
	}
}

// Property: for any load fractions and tick lengths, jiffies per CPU add up
// to elapsed time within rounding.
func TestJiffyConservationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		_ = seed
		s, _ := NewState("p", 2, 1024*1024)
		total := 0.0
		for i := 0; i < 20; i++ {
			_ = s.SetCPULoad(0, r.Float64(), r.Float64()/2)
			_ = s.SetCPULoad(1, r.Float64(), 0)
			dt := r.Float64() * 5
			_ = s.Tick(dt)
			total += dt
		}
		cpus, _, _ := s.Counters()
		wantJiffies := total * UserHZ
		// Each of the three jiffy classes (user/system/idle) carries a
		// fractional remainder below one jiffy, so the total may trail the
		// elapsed time by up to 3 jiffies.
		for _, c := range cpus {
			diff := wantJiffies - float64(c.Total())
			if diff < -1e-6 || diff > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatRenderStable(t *testing.T) {
	s := newState(t)
	_ = s.Tick(1)
	out := s.Stat()
	if !strings.HasPrefix(out, "cpu ") {
		t.Fatalf("stat output %q", out)
	}
	if !strings.Contains(out, "cpu3 ") {
		t.Fatal("missing per-cpu line")
	}
}
