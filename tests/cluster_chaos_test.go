package tests

// Cluster partition chaos (ISSUE 8, chaos extension): the flaky-proxy
// partition harness from partition_test.go pointed at a 3-node cluster.
// One replica sits behind the proxy; the link drops into a blackhole
// while a real lms-router keeps writing through the replicated sink.
// Every write must keep acknowledging (W=1 and the second replica is
// healthy), the missed share must park in the durable hint queue, and
// after the heal the queue must drain to zero with the replicas
// byte-identical to each other and to a single-node oracle fed the same
// acked writes — no replica divergence, no handoff-queue loss.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/router"
	"repro/internal/tsdb"
)

func TestChaosClusterPartitionHandoff(t *testing.T) {
	// Three real lms-db nodes; the third is only reachable through the
	// flaky proxy, so its peer id IS the proxy address — the coordinator
	// and the ring know nothing of the partition harness.
	stores := make([]*tsdb.Store, 3)
	var peers []string
	var victimProxy *flakyProxy
	for i := range stores {
		stores[i] = tsdb.NewStore()
		srv := httptest.NewServer(tsdb.NewHandler(stores[i]))
		defer srv.Close()
		if i == 2 {
			victimProxy = newFlakyProxy(t, strings.TrimPrefix(srv.URL, "http://"))
			peers = append(peers, "http://"+victimProxy.addr())
		} else {
			peers = append(peers, srv.URL)
		}
	}
	storeFor := func(peer string) *tsdb.Store {
		for i, p := range peers {
			if p == peer {
				return stores[i]
			}
		}
		t.Fatalf("unknown peer %s", peer)
		return nil
	}

	clu, err := cluster.New(cluster.Config{
		Peers:         peers,
		Replication:   2,
		WriteQuorum:   1,
		HintsDir:      t.TempDir(),
		DrainInterval: 20 * time.Millisecond,
		HTTPClient:    &http.Client{Timeout: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	// A real router in front: its Primary is the replicated cluster sink,
	// and the cluster's series land on the router's own /metrics.
	rt, err := router.New(router.Config{Primary: clu.SinkFor("lms")})
	if err != nil {
		t.Fatal(err)
	}
	clu.RegisterMetrics(rt.Metrics())
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	// The acked-prefix oracle: a plain single-node store receiving the
	// identical bodies. Only 204-acked bodies enter the oracle.
	oracleStore := tsdb.NewStore()
	oracleSrv := httptest.NewServer(tsdb.NewHandler(oracleStore))
	defer oracleSrv.Close()

	measurements := []string{"part0", "part1", "part2", "part3", "part4"}
	seq := 0
	write := func(phase string) {
		t.Helper()
		body := &strings.Builder{}
		for _, m := range measurements {
			fmt.Fprintf(body, "%s,hostname=h1 value=%di %d\n", m, seq, int64(seq+1)*1e6)
		}
		seq++
		resp, err := http.Post(rtSrv.URL+"/write?db=lms", "text/plain", strings.NewReader(body.String()))
		if err != nil {
			t.Fatalf("%s: write through router: %v", phase, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("%s: replicated write not acknowledged: status %d", phase, resp.StatusCode)
		}
		// Acked → the oracle gets the same body.
		oresp, err := http.Post(oracleSrv.URL+"/write?db=lms", "text/plain", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, oresp.Body)
		oresp.Body.Close()
	}

	// Phase 1 — healthy: writes replicate everywhere.
	for i := 0; i < 4; i++ {
		write("pass")
	}

	// Phase 2 — blackhole the victim. Writes must still ack (the other
	// owner answers) and the victim's share parks as hints.
	victimProxy.setMode(linkBlackhole)
	for i := 0; i < 4; i++ {
		write("blackhole")
	}
	victim := peers[2]
	ownedByVictim := 0
	for _, m := range measurements {
		for _, id := range clu.Ring().Owners(cluster.PlacementKey("lms", m), 2) {
			if id == victim {
				ownedByVictim++
			}
		}
	}
	if ownedByVictim == 0 {
		t.Skip("ring placed no measurement on the proxied node (vnode layout)")
	}
	if clu.PendingHints() == 0 {
		t.Fatal("blackholed replica accumulated no hints")
	}

	// Mid-partition reads through the coordinator still match the oracle:
	// the healthy replica of every slice answers.
	ctx := context.Background()
	oracle := tsdb.LocalQuerier{Store: oracleStore}
	checkAnswers := func(phase string, qr tsdb.Querier) {
		t.Helper()
		for _, m := range measurements {
			req := tsdb.Request{Database: "lms", RawQuery: "SELECT * FROM " + m, Epoch: "ns"}
			want, err := oracle.Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := qr.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s: %s: %v", phase, m, err)
			}
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			if string(gj) != string(wj) {
				t.Fatalf("%s: %s diverged from oracle:\n cluster: %s\n oracle:  %s", phase, m, gj, wj)
			}
		}
	}
	checkAnswers("blackhole", clu.Querier())

	// Phase 3 — heal. The drain loop must empty the queue on its own.
	victimProxy.setMode(linkPass)
	deadline := time.Now().Add(15 * time.Second)
	for clu.PendingHints() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hint queue stuck after heal: %d pending", clu.PendingHints())
		}
		time.Sleep(20 * time.Millisecond)
	}
	checkAnswers("healed", clu.Querier())

	// Replica divergence check: every owner of every measurement answers
	// byte-identically from its own store — and identically to the oracle.
	// This is the two-sided bound: nothing acked is missing anywhere, and
	// no replica holds points the oracle never acked.
	for _, m := range measurements {
		req := tsdb.Request{Database: "lms", RawQuery: "SELECT * FROM " + m, Epoch: "ns"}
		want, err := oracle.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		wj, _ := json.Marshal(want)
		for _, id := range clu.Ring().Owners(cluster.PlacementKey("lms", m), 2) {
			res, err := tsdb.LocalQuerier{Store: storeFor(id)}.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s on %s: %v", m, id, err)
			}
			rj, _ := json.Marshal(res)
			if string(rj) != string(wj) {
				t.Fatalf("replica %s diverged on %s:\n replica: %s\n oracle:  %s", id, m, rj, wj)
			}
		}
	}

	// The router's /metrics carries the cluster series: hints were
	// replayed and the queue gauge is back to zero.
	doc := scrape(t, rtSrv.URL)
	if replayed, ok := metricSum(doc, "lms_cluster_hints_replayed_total"); !ok || replayed == 0 {
		t.Fatalf("lms_cluster_hints_replayed_total missing or zero after heal:\n%s", doc)
	}
	if depth, ok := metricSum(doc, "lms_cluster_hint_queue_depth"); !ok || depth != 0 {
		t.Fatalf("lms_cluster_hint_queue_depth not drained: %v", depth)
	}
}

// metricSum totals every sample of a metric across its label sets (the
// cluster series carry a peer label, so metricValue's unlabeled match
// does not see them).
func metricSum(doc, name string) (float64, bool) {
	sum, found := 0.0, false
	for _, line := range strings.Split(doc, "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || (!strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ")) {
			continue
		}
		if i := strings.LastIndex(rest, " "); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest[i+1:]), 64); err == nil {
				sum += v
				found = true
			}
		}
	}
	return sum, found
}
