package hpm

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LIKWID ships its performance groups as text files in per-architecture
// directories (groups/<ARCH>/<NAME>.txt) and sites add their own. This file
// provides the same mechanism: a GroupSet combines the built-in groups with
// groups loaded from disk, and the collector/session layers accept either.

// GroupSet is a named collection of performance groups. The zero value is
// empty; Builtin() returns the shipped set.
type GroupSet struct {
	groups map[string]*Group
}

// Builtin returns a set containing the built-in groups.
func Builtin() *GroupSet {
	gs := &GroupSet{groups: make(map[string]*Group, len(builtinGroups))}
	for name, g := range builtinGroups {
		gs.groups[name] = g
	}
	return gs
}

// Add registers a group, replacing any previous group of the same name
// (site-local overrides of shipped groups, as LIKWID allows).
func (gs *GroupSet) Add(g *Group) {
	if gs.groups == nil {
		gs.groups = make(map[string]*Group)
	}
	gs.groups[g.Name] = g
}

// Lookup resolves a group by name.
func (gs *GroupSet) Lookup(name string) (*Group, error) {
	g, ok := gs.groups[name]
	if !ok {
		return nil, fmt.Errorf("hpm: unknown performance group %q", name)
	}
	return g, nil
}

// Names lists the groups sorted by name.
func (gs *GroupSet) Names() []string {
	names := make([]string, 0, len(gs.groups))
	for n := range gs.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadDir parses every "*.txt" file in dir as a group file (the group name
// is the file name without extension, uppercased like LIKWID's) and adds
// the groups to the set. Returns the loaded names. Files that fail to
// parse abort the load with a descriptive error.
func (gs *GroupSet) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hpm: %w", err)
	}
	var loaded []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		text, err := os.ReadFile(path)
		if err != nil {
			return loaded, fmt.Errorf("hpm: %w", err)
		}
		name := strings.ToUpper(strings.TrimSuffix(e.Name(), ".txt"))
		g, err := ParseGroup(name, string(text))
		if err != nil {
			return loaded, fmt.Errorf("hpm: %s: %w", path, err)
		}
		gs.Add(g)
		loaded = append(loaded, name)
	}
	sort.Strings(loaded)
	return loaded, nil
}
