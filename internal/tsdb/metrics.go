package tsdb

// Self-observability of the storage engine (DESIGN.md §10). Every Store
// carries a Metrics bundle — obs instruments fed by the hot paths —
// rendered on GET /metrics by the HTTP handler:
//
//   - lms_ingest_points_total / lms_ingest_batches_total: WriteBatch
//     acknowledgements (recovery replay is not ingest and does not count);
//   - lms_dropped_points_total: points in batches the engine refused
//     (validation failures, WAL append errors, writes after Close);
//   - lms_ingest_bytes_total: /write body bytes accepted by the handler;
//   - lms_wal_fsync_seconds: latency of every WAL fsync (group commits,
//     interval syncs, rotations, Close), via durable.Options.SyncObserver;
//   - lms_checkpoints_total: completed columnar checkpoints;
//   - lms_query_seconds + lms_slow_queries_total: /query handler latency
//     and the slow-query log counter (Handler.SlowQueryThreshold);
//   - lms_http_requests_shed_total, lms_http_inflight_requests/bytes:
//     the ingest admission gate (Handler.SetAdmission);
//   - per-database Func metrics sampled at scrape time: query-cache
//     hits/misses (the cache keeps its own atomics), resident points per
//     DB and per shard (the "queue depth" of each lock domain), and busy
//     query-pool workers.
//
// The bundle is created with the Store, so instrument pointers are always
// valid; databases opened through the store carry a reference for the
// write-path counters. Standalone DBs (NewDB, never attached) simply skip
// metrics — every hook is nil-safe.

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics is the observability bundle of one Store.
type Metrics struct {
	reg *obs.Registry

	IngestPoints  *obs.Counter
	IngestBatches *obs.Counter
	IngestBytes   *obs.Counter
	DroppedPoints *obs.Counter
	Checkpoints   *obs.Counter
	SlowQueries   *obs.Counter
	WALFsync      *obs.Histogram
	QuerySeconds  *obs.Histogram

	// gate is the ingest admission gate installed by Handler.SetAdmission;
	// the shed/in-flight Func metrics sample it at scrape time.
	gate atomic.Pointer[obs.Gate]

	// traces is the completed-trace ring installed by Store.SetTraces
	// (DESIGN.md §14); background work not tied to a request (checkpoints)
	// starts its own traces through it. Nil keeps tracing off.
	traces atomic.Pointer[obs.TraceRing]
}

// newMetrics registers the store-level instruments and the per-database
// sampling funcs over s.
func newMetrics(s *Store) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:           reg,
		IngestPoints:  reg.NewCounter("lms_ingest_points_total", "Points acknowledged by WriteBatch."),
		IngestBatches: reg.NewCounter("lms_ingest_batches_total", "Batches acknowledged by WriteBatch."),
		IngestBytes:   reg.NewCounter("lms_ingest_bytes_total", "Line-protocol body bytes accepted by /write."),
		DroppedPoints: reg.NewCounter("lms_dropped_points_total", "Points in batches the engine refused (validation, WAL failure, closed DB)."),
		Checkpoints:   reg.NewCounter("lms_checkpoints_total", "Completed columnar checkpoints."),
		SlowQueries:   reg.NewCounter("lms_slow_queries_total", "Queries slower than the slow-query threshold."),
		WALFsync:      reg.NewHistogram("lms_wal_fsync_seconds", "WAL fsync latency.", nil),
		QuerySeconds:  reg.NewHistogram("lms_query_seconds", "/query request latency.", nil),
	}
	reg.NewFunc("lms_http_requests_shed_total", "Ingest requests shed with 429 by the admission gate.", "counter",
		func(emit func(string, float64)) {
			emit("", float64(m.gate.Load().Shed()))
		})
	reg.NewFunc("lms_http_inflight_requests", "Ingest requests currently admitted.", "gauge",
		func(emit func(string, float64)) {
			reqs, _ := m.gate.Load().InFlight()
			emit("", float64(reqs))
		})
	reg.NewFunc("lms_http_inflight_bytes", "Ingest body bytes currently admitted.", "gauge",
		func(emit func(string, float64)) {
			_, bytes := m.gate.Load().InFlight()
			emit("", float64(bytes))
		})
	reg.NewFunc("lms_db_query_cache_hits_total", "Select calls served from the query-result cache.", "counter",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				hits, _ := db.QueryCacheStats()
				emit(obs.L("db", db.Name()), float64(hits))
			}
		})
	reg.NewFunc("lms_db_query_cache_misses_total", "Select calls that executed the engine.", "counter",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				_, misses := db.QueryCacheStats()
				emit(obs.L("db", db.Name()), float64(misses))
			}
		})
	reg.NewFunc("lms_db_points", "Resident points per database.", "gauge",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				emit(obs.L("db", db.Name()), float64(db.PointCount()))
			}
		})
	reg.NewFunc("lms_db_shard_points", "Resident points per lock shard.", "gauge",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				for i, n := range db.shardPointCounts() {
					emit(obs.L("db", db.Name(), "shard", strconv.Itoa(i)), float64(n))
				}
			}
		})
	reg.NewFunc("lms_db_query_workers_busy", "Query-pool workers currently aggregating.", "gauge",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				emit(obs.L("db", db.Name()), float64(len(db.qsem)))
			}
		})
	reg.NewFunc("lms_db_resident_bytes", "Estimated resident column bytes per database, split by run state (building = each series' newest raw run, the append target; sealed = older raw runs; compressed = chunk-encoded runs, DESIGN.md §13).", "gauge",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				cs := db.compressionStats()
				emit(obs.L("db", db.Name(), "state", "building"), float64(cs.buildingBytes))
				emit(obs.L("db", db.Name(), "state", "sealed"), float64(cs.sealedBytes))
				emit(obs.L("db", db.Name(), "state", "compressed"), float64(cs.compressedBytes))
			}
		})
	reg.NewFunc("lms_db_compressed_chunks", "Compressed column chunks resident per database (one timestamp chunk plus one per column of every compressed run).", "gauge",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				emit(obs.L("db", db.Name()), float64(db.compressionStats().chunks))
			}
		})
	reg.NewFunc("lms_db_compression_ratio", "Sealed-size over compressed-size ratio of the compressed runs (0 when nothing is compressed yet).", "gauge",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				cs := db.compressionStats()
				v := 0.0
				if cs.compressedBytes > 0 {
					v = float64(cs.rawOfCompressed) / float64(cs.compressedBytes)
				}
				emit(obs.L("db", db.Name()), v)
			}
		})
	reg.NewFunc("lms_db_wal_sealed", "1 when the database's WAL sealed itself after a write/fsync failure and refuses appends (the seal reason is logged once).", "gauge",
		func(emit func(string, float64)) {
			for _, db := range s.snapshotDBs() {
				v := 0.0
				if db.WALSealed() != nil {
					v = 1
				}
				emit(obs.L("db", db.Name()), v)
			}
		})
	return m
}

// Registry exposes the underlying obs registry (the /metrics document).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Handler serves the metrics as a Prometheus scrape endpoint.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

// setGate installs the admission gate sampled by the shed/in-flight
// metrics.
func (m *Metrics) setGate(g *obs.Gate) { m.gate.Store(g) }

// Metrics returns the store's observability bundle.
func (s *Store) Metrics() *Metrics { return s.metrics }

// SetTraces installs the completed-trace ring (DESIGN.md §14): databases
// opened through the store record checkpoint traces into it, and the
// HTTP handler (SetTraces there too) serves it on /debug/traces.
func (s *Store) SetTraces(r *obs.TraceRing) { s.metrics.traces.Store(r) }

// traceRing returns the store's trace ring, nil for standalone DBs or
// when tracing is off.
func (db *DB) traceRing() *obs.TraceRing {
	if m := db.metrics.Load(); m != nil {
		return m.traces.Load()
	}
	return nil
}

// --- DB-side hooks (nil-safe: standalone DBs carry no bundle) -------------

// noteIngest counts an acknowledged batch.
func (db *DB) noteIngest(points int) {
	if m := db.metrics.Load(); m != nil {
		m.IngestPoints.Add(uint64(points))
		m.IngestBatches.Inc()
	}
}

// noteDrop counts a refused batch.
func (db *DB) noteDrop(points int) {
	if m := db.metrics.Load(); m != nil {
		m.DroppedPoints.Add(uint64(points))
	}
}

// noteCheckpoint counts a completed checkpoint.
func (db *DB) noteCheckpoint() {
	if m := db.metrics.Load(); m != nil {
		m.Checkpoints.Inc()
	}
}

// observeFsync feeds the WAL fsync histogram (durable.Options.SyncObserver).
func (db *DB) observeFsync(d time.Duration) {
	if m := db.metrics.Load(); m != nil {
		m.WALFsync.Observe(d.Seconds())
	}
}

// compStats is one scrape-time sweep of the run states (DESIGN.md §13):
// estimated resident bytes per state, the compressed chunk count, and the
// pre-compression size of the compressed runs (for the ratio gauge).
type compStats struct {
	buildingBytes   int64
	sealedBytes     int64
	compressedBytes int64
	rawOfCompressed int64
	chunks          int
}

// compressionStats sweeps every shard under its read lock and sizes the
// resident runs by state. The newest raw run of each series is the
// append target ("building"); older raw runs are "sealed"; runs holding a
// compRun are "compressed".
func (db *DB) compressionStats() compStats {
	var cs compStats
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, m := range sh.measurements {
			for _, sr := range m.series {
				for i, run := range sr.runs {
					if c := run.comp; c != nil {
						cs.compressedBytes += c.sizeBytes()
						cs.rawOfCompressed += c.rawBytes
						cs.chunks += 1 + len(c.cols)
						continue
					}
					b := rawRunBytes(run.ts, run.cols)
					if i == len(sr.runs)-1 {
						cs.buildingBytes += b
					} else {
						cs.sealedBytes += b
					}
				}
			}
		}
		sh.mu.RUnlock()
	}
	return cs
}

// shardPointCounts returns the resident point count of every lock shard.
func (db *DB) shardPointCounts() []int {
	out := make([]int, len(db.shards))
	for i, sh := range db.shards {
		sh.mu.RLock()
		n := 0
		for _, m := range sh.measurements {
			for _, sr := range m.series {
				n += sr.totalPoints()
			}
		}
		sh.mu.RUnlock()
		out[i] = n
	}
	return out
}
