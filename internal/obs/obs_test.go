package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("lms_test_points_total", "points seen")
	g := r.NewGauge("lms_test_inflight", "in flight")
	c.Add(41)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	out := render(r)
	for _, want := range []string{
		"# HELP lms_test_points_total points seen",
		"# TYPE lms_test_points_total counter",
		"lms_test_points_total 42",
		"# TYPE lms_test_inflight gauge",
		"lms_test_inflight 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 42 || g.Value() != 5 {
		t.Fatalf("Value() = %d, %d; want 42, 5", c.Value(), g.Value())
	}
}

func TestRegistryOrderAndDuplicates(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zzz_total", "z")
	r.NewCounter("aaa_total", "a")
	out := render(r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("metrics not sorted by name:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("aaa_total", "dup")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lms_test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	out := render(r)
	for _, want := range []string{
		"# TYPE lms_test_seconds histogram",
		`lms_test_seconds_bucket{le="0.1"} 1`,
		`lms_test_seconds_bucket{le="1"} 3`,
		`lms_test_seconds_bucket{le="10"} 4`,
		`lms_test_seconds_bucket{le="+Inf"} 5`,
		"lms_test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("b_seconds", "b", []float64{1})
	h.Observe(1) // le="1" is inclusive in Prometheus semantics
	if !strings.Contains(render(r), `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("observation at the boundary not counted in its bucket:\n%s", render(r))
	}
}

func TestFuncMetricAndLabels(t *testing.T) {
	r := NewRegistry()
	r.NewFunc("lms_test_shard_points", "per shard", "gauge", func(emit func(string, float64)) {
		emit(L("db", "lms", "shard", "0"), 10)
		emit(L("db", `we"ird\`), 3)
	})
	out := render(r)
	for _, want := range []string{
		`lms_test_shard_points{db="lms",shard="0"} 10`,
		`lms_test_shard_points{db="we\"ird\\"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 0") {
		t.Fatalf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestGateBudgets(t *testing.T) {
	g := NewGate(2, 100)
	rel1, ok := g.Acquire(60)
	if !ok {
		t.Fatal("first acquire refused")
	}
	if _, ok := g.Acquire(60); ok {
		t.Fatal("byte budget not enforced")
	}
	rel2, ok := g.Acquire(30)
	if !ok {
		t.Fatal("within-budget acquire refused")
	}
	if _, ok := g.Acquire(0); ok {
		t.Fatal("request budget not enforced")
	}
	if g.Shed() != 2 {
		t.Fatalf("Shed = %d, want 2", g.Shed())
	}
	reqs, bytes := g.InFlight()
	if reqs != 2 || bytes != 90 {
		t.Fatalf("InFlight = %d, %d; want 2, 90", reqs, bytes)
	}
	rel1()
	rel1() // double release must not underflow
	rel2()
	reqs, bytes = g.InFlight()
	if reqs != 0 || bytes != 0 {
		t.Fatalf("after release InFlight = %d, %d; want 0, 0", reqs, bytes)
	}
}

func TestGateUnlimitedAndNil(t *testing.T) {
	var nilGate *Gate
	rel, ok := nilGate.Acquire(1 << 40)
	if !ok {
		t.Fatal("nil gate refused")
	}
	rel()
	g := NewGate(0, 0)
	for i := 0; i < 100; i++ {
		if _, ok := g.Acquire(1 << 30); !ok {
			t.Fatal("unlimited gate refused")
		}
	}
}

func TestGateConcurrent(t *testing.T) {
	g := NewGate(8, 0)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if rel, ok := g.Acquire(16); ok {
					rel()
				}
			}
		}()
	}
	wg.Wait()
	if reqs, bytes := g.InFlight(); reqs != 0 || bytes != 0 {
		t.Fatalf("leaked in-flight state: %d reqs, %d bytes", reqs, bytes)
	}
}
