package router

// Tests for the router's self-observability and ingest hardening: the
// /metrics endpoint, the admission gate (429 + Retry-After), and the
// 413 refusal of oversized /write bodies.

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/lineproto"
)

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRouterMetricsEndpoint(t *testing.T) {
	e := newEnv(t, nil)
	e.post(t, "/write", "cpu,hostname=h1 value=1\ncpu,hostname=h2 value=2\n")
	out := scrape(t, e.srv.URL)
	for _, want := range []string{
		"lms_router_received_points_total 2",
		"lms_router_forwarded_points_total 2",
		"lms_router_dropped_points_total 0",
		"lms_router_shed_requests_total 0",
		"lms_router_inflight_requests 0",
		"lms_router_jobs_running 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	// Metrics agree with the Stats oracle.
	recv, fwd, drop := e.router.Stats()
	if recv != 2 || fwd != 2 || drop != 0 {
		t.Fatalf("Stats = %d, %d, %d", recv, fwd, drop)
	}
}

func TestRouterWriteOversizedBody413(t *testing.T) {
	e := newEnv(t, func(cfg *Config) { cfg.MaxBodyBytes = 32 })
	body := strings.Repeat("cpu,hostname=h1 value=1\n", 4)
	resp := e.post(t, "/write", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if n := e.db.PointCount(); n != 0 {
		t.Fatalf("refused write stored %d points", n)
	}
}

// blockingSink blocks WritePoints until released, simulating a stalled
// database back-end.
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *blockingSink) WritePoints(pts []lineproto.Point) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return nil
}

// TestRouterOverloadSheds drives the router into overload against a
// stalled sink and asserts excess load is shed with 429 + Retry-After
// while the admitted request keeps its bounded slot.
func TestRouterOverloadSheds(t *testing.T) {
	sink := &blockingSink{entered: make(chan struct{}), release: make(chan struct{})}
	e := newEnv(t, func(cfg *Config) {
		cfg.Primary = sink
		cfg.MaxInFlightRequests = 1
	})

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(e.srv.URL+"/write", "text/plain",
			strings.NewReader("cpu,hostname=h1 value=1\n"))
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-sink.entered // first write holds the only admission slot

	resp := e.post(t, "/write", "cpu,hostname=h2 value=2\n")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	out := scrape(t, e.srv.URL)
	if !strings.Contains(out, "lms_router_shed_requests_total 1") {
		t.Fatalf("shed not counted:\n%s", out)
	}
	if !strings.Contains(out, "lms_router_inflight_requests 1") {
		t.Fatalf("admitted request not visible in-flight:\n%s", out)
	}

	close(sink.release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	out = scrape(t, e.srv.URL)
	if !strings.Contains(out, "lms_router_inflight_requests 0") {
		t.Fatalf("slot not released:\n%s", out)
	}
}
