package lineproto

// Fuzzed decoder hardening (DESIGN.md §11). The line-protocol parser is
// the outermost attacker-facing decoder of lms-db — every /write body
// runs through it — so it must never panic, and anything it accepts must
// survive the canonical encode/reparse round trip: parse → encode →
// parse must reproduce the same point, or the WAL and the router would
// disagree with the in-memory store about what was written.

import "testing"

// FuzzParseLine: arbitrary bytes through the single-line parser.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		"cpu user=1.5",
		"cpu,host=a,core=3 user=1.5,sys=2i,idle=97i 1439856000000000000",
		`disk,path=/var free=12i,label="root \"fs\"",full=false`,
		`we\,ird\ m\=eas,t\ ag=v\,al fi\=eld=1`,
		"m f=" + `"unterminated`,
		"m f=1e309",
		"m f=NaN,g=+Inf,h=-0",
		"m f=9223372036854775807i -9223372036854775808",
		"m,t== f=1",
		"m f=1 99999999999999999999",
		"m\\",
		"# comment",
		"m f=t,g=F,h=TRUE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		p, err := ParseLine(line)
		if err != nil {
			return
		}
		// The parser's own checks (non-empty measurement, tag keys/values,
		// field keys) are exactly what Validate demands; a parsed point
		// must therefore always be encodable.
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed point fails validation: %v (line %q)", err, line)
		}
		enc, err := EncodePoint(p)
		if err != nil {
			t.Fatalf("parsed point does not encode: %v (line %q)", err, line)
		}
		rt, err := ParseLine(string(enc))
		if err != nil {
			t.Fatalf("canonical encoding does not reparse: %v (%q from %q)", err, enc, line)
		}
		if !rt.Equal(p) {
			t.Fatalf("round trip changed the point: %q -> %q", line, enc)
		}
	})
}

// FuzzParse: arbitrary bytes through the batch parser — the exact code
// path a hostile /write body takes. Parse must never panic, and every
// point of an accepted batch must round-trip like the single-line case.
func FuzzParse(f *testing.F) {
	f.Add([]byte("cpu user=1.5\n# comment\n\nmem used=2i 1439856000000000000\n"))
	f.Add([]byte("  \t\r\ncpu,host=a user=1\r\n"))
	f.Add([]byte("cpu user=1 bad"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := Parse(data)
		if err != nil {
			return
		}
		enc, err := Encode(pts)
		if err != nil {
			t.Fatalf("accepted batch does not encode: %v", err)
		}
		rt, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical batch does not reparse: %v (%q)", err, enc)
		}
		if len(rt) != len(pts) {
			t.Fatalf("round trip changed batch size: %d -> %d", len(pts), len(rt))
		}
		for i := range pts {
			if !rt[i].Equal(pts[i]) {
				t.Fatalf("round trip changed point %d", i)
			}
		}
	})
}
