package dashboard

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

func TestHistogramBasic(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	if len(bins) != 5 {
		t.Fatalf("bins %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 11 {
		t.Fatalf("total %d", total)
	}
	// First bin [0,2): values 0,1. Last bin [8,10]: 8,9,10.
	if bins[0].Count != 2 {
		t.Fatalf("first %+v", bins[0])
	}
	if bins[4].Count != 3 {
		t.Fatalf("last %+v", bins[4])
	}
	if bins[0].Lo != 0 || bins[4].Hi != 10 {
		t.Fatalf("range %+v %+v", bins[0], bins[4])
	}
}

func TestHistogramEdges(t *testing.T) {
	if Histogram(nil, 5) != nil {
		t.Error("empty")
	}
	if Histogram([]float64{1}, 0) != nil {
		t.Error("zero bins")
	}
	if Histogram([]float64{math.NaN()}, 3) != nil {
		t.Error("all NaN")
	}
	// Constant series: one bin holding all.
	bins := Histogram([]float64{5, 5, 5}, 4)
	if len(bins) != 1 || bins[0].Count != 3 || bins[0].Lo != 5 || bins[0].Hi != 5 {
		t.Fatalf("%+v", bins)
	}
	// NaNs skipped.
	bins = Histogram([]float64{1, math.NaN(), 3}, 2)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 2 {
		t.Fatalf("total %d", total)
	}
}

// Property: bin counts sum to the number of finite values, and every value
// lies inside its bin's range.
func TestHistogramConservationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	f := func(seed int64) bool {
		_ = seed
		n := r.Intn(200) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
		}
		binCount := r.Intn(20) + 1
		bins := Histogram(vals, binCount)
		total := 0
		for _, b := range bins {
			total += b.Count
			if b.Hi < b.Lo {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderHistogram(t *testing.T) {
	bins := Histogram([]float64{1, 1, 1, 1, 2, 3}, 2)
	out := RenderHistogram(bins, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%q", out)
	}
	if !strings.Contains(lines[0], "████████████████████") {
		t.Fatalf("full bar missing: %q", lines[0])
	}
	// Non-zero bucket always gets at least one bar glyph.
	if !strings.Contains(lines[1], "█") {
		t.Fatalf("min bar missing: %q", lines[1])
	}
	if RenderHistogram(nil, 10) != "(no data)\n" {
		t.Fatal("empty rendering")
	}
}

func TestHistogramPanelRendering(t *testing.T) {
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	for i := 0; i < 100; i++ {
		_ = db.WritePoint(lineproto.Point{
			Measurement: "likwid_mem_dp",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{"dp_mflop_s": lineproto.Float(float64(i % 10))},
			Time:        time.Unix(int64(i), 0),
		})
	}
	p := Panel{
		ID: 1, Title: "FP rate distribution", Type: "histogram",
		Targets: []Target{{Query: "SELECT dp_mflop_s FROM likwid_mem_dp"}},
	}
	out, err := RenderPanel(context.Background(), tsdb.LocalQuerier{Store: store}, "lms", p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FP rate distribution") || !strings.Contains(out, "n=100") {
		t.Fatalf("%q", out)
	}
	if !strings.Contains(out, "█") {
		t.Fatalf("no bars: %q", out)
	}
	// Histogram panels without targets fail validation.
	d := Dashboard{Title: "x", Rows: []Row{{Panels: []Panel{{ID: 1, Type: "histogram"}}}}}
	if err := d.Validate(); err == nil {
		t.Fatal("target-less histogram accepted")
	}
}
