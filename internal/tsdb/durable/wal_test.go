package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func collectWAL(t *testing.T, dir string, floor int, o Options) (*WAL, [][]byte) {
	t.Helper()
	var got [][]byte
	w, err := OpenWAL(dir, floor, o, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, got
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{Fsync: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 25; i++ {
		p := []byte(fmt.Sprintf("payload-%03d-%s", i, string(make([]byte, i*7))))
		want = append(want, p)
		if _, _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got := collectWAL(t, dir, 0, Options{Fsync: FsyncOff})
	defer w2.Abort()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Appends continue after a replayed open.
	if _, _, err := w2.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
}

func TestWALSegmentRotationAndRemoveBelow(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{Fsync: FsyncOff, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 40)
	lastSeg := 0
	for i := 0; i < 10; i++ {
		seg, _, err := w.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		lastSeg = seg
	}
	if lastSeg < 3 {
		t.Fatalf("expected size rotation, still on segment %d", lastSeg)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// All 10 records replay across the segments.
	w2, got := collectWAL(t, dir, 0, Options{Fsync: FsyncOff, SegmentBytes: 64})
	if len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}

	// An explicit rotate plus RemoveBelow leaves only the fresh segment.
	seg, err := w2.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.RemoveBelow(seg); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, got := collectWAL(t, dir, 0, Options{Fsync: FsyncOff})
	defer w3.Abort()
	if len(got) != 0 {
		t.Fatalf("replayed %d after RemoveBelow, want 0", len(got))
	}
	entries, _ := os.ReadDir(dir)
	var segs int
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("%d segment files on disk, want 1", segs)
	}
}

func TestWALFloorDeletesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{Fsync: FsyncOff, SegmentBytes: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := w.Append([]byte("0123456789012345678901234567890")); err != nil {
			t.Fatal(err)
		}
	}
	last := w.CurrentSegment()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Open with floor = last: earlier segments are deleted unread.
	w2, got := collectWAL(t, dir, last, Options{Fsync: FsyncOff, SegmentBytes: 32})
	defer w2.Abort()
	for idx := 1; idx < last; idx++ {
		if _, err := os.Stat(filepath.Join(dir, segmentName(idx))); !os.IsNotExist(err) {
			t.Fatalf("segment %d below floor still exists", idx)
		}
	}
	if len(got) > 1 {
		t.Fatalf("replayed %d records from below the floor", len(got))
	}
}

// TestWALTornTailTruncatedAtEveryOffset is the exhaustive torn-write
// harness: the segment is cut at every possible byte offset and recovery
// must return exactly the records whose frames lie fully below the cut,
// then truncate the file so appends continue cleanly.
func TestWALTornTailTruncatedAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	w, err := OpenWAL(master, 0, Options{Fsync: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	var ends []int64
	for i := 0; i < 6; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{byte('a' + i)}, 5+i*3))))
		payloads = append(payloads, p)
		_, end, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, end)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(master, segmentName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off <= len(data); off++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, got := collectWAL(t, dir, 0, Options{Fsync: FsyncOff})
		want := 0
		for _, end := range ends {
			if end <= int64(off) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", off, len(got), want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut at %d: record %d corrupted", off, i)
			}
		}
		// The log must accept appends after the truncation.
		if _, _, err := w2.Append([]byte("after-tear")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", off, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALCorruptMiddleFrameStopsReplay flips a byte inside an early
// frame: replay must stop before it rather than hand corrupt data out,
// and later segments are dropped.
func TestWALCorruptMiddleFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{Fsync: FsyncOff, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var firstEnd int64
	for i := 0; i < 8; i++ {
		_, end, err := w.Append(bytes.Repeat([]byte{byte(i)}, 30))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstEnd = end
		}
	}
	if w.CurrentSegment() < 2 {
		t.Fatal("test needs multiple segments")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second record of segment 1 (one byte inside its payload).
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstEnd+frameOverhead+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, got := collectWAL(t, dir, 0, Options{Fsync: FsyncOff, SegmentBytes: 64})
	defer w2.Abort()
	if len(got) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(got))
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if idx, ok := parseSegmentName(e.Name()); ok && idx > 1 {
			t.Fatalf("segment %d after the corruption survived", idx)
		}
	}
}

func TestWALAppendAfterCloseErrors(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), 0, Options{Fsync: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestWALFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncPerBatch, FsyncEveryInterval, FsyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir, 0, Options{Fsync: pol, FsyncInterval: 5 * time.Millisecond}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, _, err := w.Append([]byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			if pol == FsyncEveryInterval {
				time.Sleep(20 * time.Millisecond) // let the background syncer run once
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2, got := collectWAL(t, dir, 0, Options{Fsync: pol})
			w2.Abort()
			if len(got) != 10 {
				t.Fatalf("replayed %d, want 10", len(got))
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"": FsyncPerBatch, "batch": FsyncPerBatch, "always": FsyncPerBatch,
		"interval": FsyncEveryInterval,
		"off":      FsyncOff, "none": FsyncOff,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Error("ParseFsyncPolicy(bogus) succeeded")
	}
}

// TestWALConcurrentAppendGroupCommit hammers FsyncPerBatch from many
// goroutines: the group-commit path must keep every record intact and in
// a replayable log (order across goroutines is unspecified).
func TestWALConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{Fsync: FsyncPerBatch}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
				if _, _, err := w.Append(payload); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	w2, err := OpenWAL(dir, 0, Options{}, func(p []byte) error {
		seen[string(p)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	if len(seen) != writers*each {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*each)
	}
}
