// Package fsys is the narrow filesystem seam under the durable storage
// engine (DESIGN.md §11). The durable package performs every file
// operation — segment appends, fsyncs, checkpoint renames, torn-tail
// truncation — through the FS interface below instead of calling os.*
// directly, so tests can slide a fault-injecting implementation
// (internal/faultfs) underneath the real WAL and checkpoint code paths:
// ENOSPC on the k-th write, a torn fsync, a power cut that drops every
// unsynced byte.
//
// The interface is deliberately the exact footprint the storage engine
// uses and nothing more: sequential appends to files opened with
// OpenFile, whole-file reads, directory listings by name, atomic rename,
// truncate for tail repair, and explicit file and directory syncs (the
// two distinct durability barriers POSIX gives us — fsync(fd) persists a
// file's bytes, fsync(dirfd) persists its directory entry).
package fsys

import (
	"os"
	"path/filepath"
	"sort"
)

// File is one open file handle. The storage engine only ever appends:
// every writer opens with O_APPEND or O_TRUNC and writes sequentially,
// so implementations may treat Write as append-only.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes the file's written bytes (and its size) to stable
	// storage — the fsync(fd) durability barrier.
	Sync() error
	Close() error
}

// FS is the filesystem the durable storage engine runs on. The os-backed
// default is OS; internal/faultfs provides the fault-injecting
// implementation used by the chaos sweeps.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flag subset
	// the engine uses: O_CREATE|O_TRUNC|O_WRONLY (fresh file) and
	// O_WRONLY|O_APPEND (continue an existing one).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	// ReadDirNames returns the sorted entry names of a directory.
	ReadDirNames(dir string) ([]string, error)
	MkdirAll(dir string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	// SyncFile fsyncs name without the caller holding a handle — the
	// barrier torn-tail repair needs right after Truncate.
	SyncFile(name string) error
	// SyncDir fsyncs the directory itself, making entry creations,
	// renames and removals durable.
	SyncDir(dir string) error
}

// OS is the production FS: plain os.* calls.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDirNames implements FS.
func (OS) ReadDirNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncFile implements FS.
func (OS) SyncFile(name string) error {
	f, err := os.OpenFile(name, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
