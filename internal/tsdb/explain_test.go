package tsdb

// EXPLAIN ANALYZE (DESIGN.md §14): the statement must parse and
// round-trip through Text() (the cluster ships pre-parsed statements as
// text), return the wrapped SELECT's rows byte-identically, and append
// the execution profile as one extra series the client can strip by its
// "explain_analyze" name prefix.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseExplainAnalyze(t *testing.T) {
	st := mustParse(t, "EXPLAIN ANALYZE SELECT mean(value) FROM cpu GROUP BY time(10s), hostname")
	if st.Kind != StmtExplainAnalyze {
		t.Fatalf("kind %v", st.Kind)
	}
	if st.Query.Measurement != "cpu" || st.AggCols[0].Agg != AggMean || st.Query.Every != 10*time.Second {
		t.Fatalf("wrapped select lost: %+v", st)
	}

	// Text() must round-trip so pre-parsed statements cross the cluster
	// wire losslessly.
	text := st.Text()
	if !strings.HasPrefix(text, "EXPLAIN ANALYZE SELECT") {
		t.Fatalf("Text() = %q", text)
	}
	again := mustParse(t, text)
	if again.Kind != StmtExplainAnalyze || again.Text() != text {
		t.Fatalf("round trip diverged: %q vs %q", again.Text(), text)
	}

	// The constructor agrees with the parser.
	built := ExplainAnalyzeStatement(st.Query, st.AggCols...)
	if built.Kind != StmtExplainAnalyze {
		t.Fatalf("constructor kind %v", built.Kind)
	}
}

func TestParseExplainAnalyzeErrors(t *testing.T) {
	for _, q := range []string{
		"EXPLAIN SELECT value FROM cpu",
		"EXPLAIN ANALYZE SHOW MEASUREMENTS",
		"EXPLAIN ANALYZE",
		"EXPLAIN",
	} {
		if _, err := ParseQuery(q); err == nil {
			t.Fatalf("%q parsed", q)
		}
	}
}

// stripExplain removes the appended profile series (single-node and
// cluster variants both carry the "explain_analyze" name prefix),
// returning them separately.
func stripExplain(rsp Response) (Response, []ResultSeries) {
	var profiles []ResultSeries
	out := rsp
	out.Results = nil
	for _, res := range rsp.Results {
		kept := res
		kept.Series = nil
		for _, s := range res.Series {
			if strings.HasPrefix(s.Name, ExplainSeriesName) {
				profiles = append(profiles, s)
				continue
			}
			kept.Series = append(kept.Series, s)
		}
		out.Results = append(out.Results, kept)
	}
	return out, profiles
}

func explainMetric(t *testing.T, s ResultSeries, name string) interface{} {
	t.Helper()
	for _, row := range s.Values {
		if row[0] == name {
			return row[1]
		}
	}
	t.Fatalf("profile missing %q: %+v", name, s.Values)
	return nil
}

// explainCount coerces a profile counter: an in-process LocalQuerier
// keeps the engine's int/int64 types, the HTTP path delivers float64.
func explainCount(t *testing.T, s ResultSeries, name string) int64 {
	t.Helper()
	switch v := explainMetric(t, s, name).(type) {
	case int:
		return int64(v)
	case int64:
		return v
	case float64:
		return int64(v)
	default:
		t.Fatalf("profile %q has non-numeric value %T", name, v)
		return 0
	}
}

// TestExplainAnalyzeByteIdentity is acceptance: for every statement of
// the equivalence corpus shape, EXPLAIN ANALYZE returns the SELECT's own
// rows byte-for-byte once the profile series is stripped.
func TestExplainAnalyzeByteIdentity(t *testing.T) {
	store := seedStore(t)
	store.DB("lms").SetQueryCacheTTL(0)
	qr := LocalQuerier{Store: store}
	ctx := context.Background()
	for _, sel := range []string{
		"SELECT value FROM cpu",
		"SELECT * FROM cpu",
		"SELECT mean(value) FROM cpu GROUP BY time(10s), hostname",
		"SELECT max(value) FROM cpu WHERE hostname = 'h1' LIMIT 2",
		"SELECT value FROM ghost",
	} {
		want, err := qr.Query(ctx, Request{Database: "lms", RawQuery: sel, Epoch: "ns"})
		if err != nil {
			t.Fatal(err)
		}
		got, err := qr.Query(ctx, Request{Database: "lms", RawQuery: "EXPLAIN ANALYZE " + sel, Epoch: "ns"})
		if err != nil {
			t.Fatal(err)
		}
		stripped, profiles := stripExplain(got)
		if len(profiles) != 1 || profiles[0].Name != ExplainSeriesName {
			t.Fatalf("%q: want one %s series, got %+v", sel, ExplainSeriesName, profiles)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(stripped)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("%q: EXPLAIN ANALYZE changed the rows:\n got: %s\nwant: %s", sel, gotJSON, wantJSON)
		}
	}
}

func TestExplainAnalyzeProfile(t *testing.T) {
	store := seedStore(t)
	db := store.DB("lms")
	db.SetQueryCacheTTL(time.Hour)
	qr := LocalQuerier{Store: store}
	ctx := context.Background()

	run := func() ResultSeries {
		rsp, err := qr.Query(ctx, Request{Database: "lms", RawQuery: "EXPLAIN ANALYZE SELECT mean(value) FROM cpu GROUP BY hostname"})
		if err != nil {
			t.Fatal(err)
		}
		_, profiles := stripExplain(rsp)
		if len(profiles) != 1 {
			t.Fatalf("profiles %+v", profiles)
		}
		return profiles[0]
	}

	cold := run()
	if cols := cold.Columns; len(cols) != 2 || cols[0] != "metric" || cols[1] != "value" {
		t.Fatalf("columns %v", cold.Columns)
	}
	if n := explainCount(t, cold, "runs_scanned"); n <= 0 {
		t.Fatalf("runs_scanned %v", n)
	}
	if n := explainCount(t, cold, "points_examined"); n != 10 {
		t.Fatalf("points_examined %v, want 10", n)
	}
	if n := explainCount(t, cold, "shards_visited"); n != 1 {
		t.Fatalf("shards_visited %v", n)
	}
	if got := explainMetric(t, cold, "cache").(string); got != "miss" {
		t.Fatalf("cold cache %q", got)
	}
	if n := explainCount(t, cold, "phase_total_ns"); n <= 0 {
		t.Fatalf("phase_total_ns %v", n)
	}

	// A cached re-run reports the hit and skips the engine phases.
	warm := run()
	if got := explainMetric(t, warm, "cache").(string); got != "hit" {
		t.Fatalf("warm cache %q", got)
	}
	if n := explainCount(t, warm, "points_examined"); n != 0 {
		t.Fatalf("warm points_examined %v", n)
	}
}

// TestHandlerTracesQuery pins in-process trace recording on the HTTP
// surface: a /query carrying an upstream X-Lms-Trace id lands in the
// store's ring under that id with the handler and engine spans, and
// /debug/traces serves it back.
func TestHandlerTracesQuery(t *testing.T) {
	store := seedStore(t)
	store.DB("lms").SetQueryCacheTTL(0)
	ring := obs.NewTraceRing(8)
	store.SetTraces(ring)
	h := NewHandler(store)

	const id = "0123456789abcdef"
	req := httptest.NewRequest("GET", "/query?db=lms&q="+
		strings.ReplaceAll("SELECT mean(value) FROM cpu GROUP BY hostname", " ", "%20"), nil)
	req.Header.Set(obs.TraceHeader, id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}

	d, ok := ring.Find(id)
	if !ok {
		t.Fatalf("trace %s not recorded; ring has %+v", id, ring.Snapshot(0, 0))
	}
	names := map[string]obs.SpanData{}
	for _, sp := range d.Spans {
		names[sp.Name] = sp
	}
	for _, want := range []string{"tsdb.http.query", "tsdb.select", "tsdb.select.cache", "tsdb.select.snapshot", "tsdb.select.execute"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("trace missing span %q: %+v", d.Spans, names)
		}
	}
	if got := names["tsdb.http.query"].Attr("db"); got != "lms" {
		t.Fatalf("db attr %q", got)
	}

	// The ring is served on the handler's own /debug/traces.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), id) {
		t.Fatalf("/debug/traces: %d %s", rec.Code, rec.Body.String())
	}
}

// TestHandlerTracesWrite: a traced /write records the ingest spans down
// through the storage engine under the upstream id.
func TestHandlerTracesWrite(t *testing.T) {
	store := NewStore()
	store.CreateDatabase("lms")
	ring := obs.NewTraceRing(8)
	store.SetTraces(ring)
	h := NewHandler(store)

	const id = "feedbeeffeedbeef"
	body := "cpu,hostname=h1 value=1.5 1000000000\n"
	req := httptest.NewRequest("POST", "/write?db=lms", strings.NewReader(body))
	req.Header.Set(obs.TraceHeader, id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 204 {
		t.Fatalf("write: %d %s", rec.Code, rec.Body.String())
	}
	d, ok := ring.Find(id)
	if !ok {
		t.Fatal("write trace not recorded")
	}
	var haveHTTP, haveApply bool
	for _, sp := range d.Spans {
		switch sp.Name {
		case "tsdb.http.write":
			haveHTTP = sp.Attr("points") == "1"
		case "tsdb.apply":
			haveApply = true
		}
	}
	if !haveHTTP || !haveApply {
		t.Fatalf("write spans incomplete: %+v", d.Spans)
	}
}

// TestHandlerDebugTracesDisabled: without a ring the endpoint answers 404
// instead of an empty array, so operators can tell "off" from "idle".
func TestHandlerDebugTracesDisabled(t *testing.T) {
	h := NewHandler(NewStore())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled /debug/traces: %d", rec.Code)
	}
}

// TestSlowQueryLogCarriesTraceID: the slow-query line (satellite of the
// tracing work) names the request's trace so operators can jump from the
// log to /debug/traces.
func TestSlowQueryLogCarriesTraceID(t *testing.T) {
	store := seedStore(t)
	ring := obs.NewTraceRing(4)
	store.SetTraces(ring)
	h := NewHandler(store)
	h.SlowQueryThreshold = time.Nanosecond // everything is slow
	var lines []string
	h.Logf = func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}

	const id = "cafecafecafecafe"
	req := httptest.NewRequest("GET", "/query?db=lms&q=SELECT%20value%20FROM%20cpu", nil)
	req.Header.Set(obs.TraceHeader, id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("query: %d", rec.Code)
	}
	if len(lines) == 0 || !strings.Contains(lines[0], "trace="+id) {
		t.Fatalf("slow-query line missing trace id: %q", lines)
	}
}
