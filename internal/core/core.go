// Package core wires the LIKWID Monitoring Stack together: database,
// metrics router, pub/sub publisher, dashboard agent, web viewer and
// analysis (paper Fig. 1). The components stay loosely coupled — each is
// usable standalone through its own package — and core provides the
// "complete stack" composition plus the cluster simulation driver
// (sim.go) that stands in for real compute nodes.
package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/dashboard"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/router"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
)

// StackConfig configures a full LMS deployment.
type StackConfig struct {
	// DBName is the primary database (default "lms").
	DBName string
	// PerUserDBs enables duplication of job metrics into "user_<name>"
	// databases.
	PerUserDBs bool
	// PubSubAddr, when non-empty, starts the ZeroMQ-style publisher on the
	// address (e.g. "127.0.0.1:0").
	PubSubAddr string
	// PubSubHWM is the per-subscriber high-water mark (0 = default).
	PubSubHWM int
	// Retention prunes data older than this from the primary DB (0 = keep).
	Retention time.Duration
	// CompressAfter re-encodes sealed columnar runs that have gone this
	// long without a mutation into compressed chunks (DESIGN.md §13),
	// cutting resident memory several-fold; queries stay byte-identical.
	// Zero keeps every run raw.
	CompressAfter time.Duration
	// DataDir enables the durable storage engine (WAL + on-disk columnar
	// checkpoints, DESIGN.md §9): every database lives under this
	// directory and survives restarts. Empty keeps the stack in memory
	// only. Call Stack.Close on shutdown so the final checkpoint lands.
	DataDir string
	// FsyncPolicy selects when WAL appends reach stable storage when
	// DataDir is set: "batch" (default; sync before acknowledging every
	// batch), "interval" or "off".
	FsyncPolicy string
	// TSDBShards is the lock-shard count per database (0 = GOMAXPROCS).
	TSDBShards int
	// QueryWorkers bounds the per-Select aggregation fan-out of the read
	// path (0 = GOMAXPROCS, 1 = serial engine).
	QueryWorkers int
	// PeakMemBWMBs / PeakDPMFlops parameterize the pattern decision tree.
	PeakMemBWMBs float64
	PeakDPMFlops float64
	// Now overrides the router clock (simulations inject simulated time).
	Now func() time.Time

	// ClusterPeers lists the HTTP base URLs of every lms-db node of a
	// cluster (DESIGN.md §12). When set, the stack's router forwards
	// ring-aware — each batch fans to the Replication owners of its
	// measurement — and every read-side consumer queries through the
	// cluster's DistributedQuerier. Empty keeps the classic single-node
	// stack.
	ClusterPeers []string
	// ClusterSelf is this stack's own entry in ClusterPeers ("" makes the
	// stack a pure coordinator owning no ring slice). When set, the
	// stack's local store backs that ring member.
	ClusterSelf string
	// Replication and WriteQuorum are the cluster's R and W (0 = 2 and 1).
	Replication int
	WriteQuorum int
	// HintsDir is the durable hinted-handoff directory (empty = hints in
	// memory only).
	HintsDir string

	// TraceBuffer is the capacity of the completed-trace ring (DESIGN.md
	// §14): the last N traced requests served on /debug/traces of the
	// store's HTTP handler and the router. 0 disables tracing entirely —
	// the request paths then pay only nil checks.
	TraceBuffer int
}

// Stack is one assembled LMS instance.
type Stack struct {
	Store     *tsdb.Store
	DB        *tsdb.DB
	Router    *router.Router
	Publisher *pubsub.Publisher
	Evaluator *analysis.Evaluator
	Agent     *dashboard.Agent
	Viewer    *dashboard.Viewer

	// Querier is the read-side API every consumer of this stack is wired
	// through. In-process stacks get a LocalQuerier over Store; the same
	// consumers accept a tsdb.Client instead to read from a remote lms-db,
	// and a clustered stack (StackConfig.ClusterPeers) gets the cluster's
	// DistributedQuerier here.
	Querier tsdb.Querier

	// Cluster is the ring view of a clustered stack; nil otherwise.
	Cluster *cluster.Cluster

	DBHandler *tsdb.Handler // InfluxDB-compatible HTTP API of the store

	// Traces is the completed-trace ring shared by the router and the
	// store handler (StackConfig.TraceBuffer); nil when tracing is off.
	Traces *obs.TraceRing

	cfg StackConfig
}

// NewStack builds and wires all components.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.DBName == "" {
		cfg.DBName = "lms"
	}
	fsync, err := durable.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	store, err := tsdb.OpenStore(tsdb.StoreOptions{
		ShardsPerDB:       cfg.TSDBShards,
		QueryWorkersPerDB: cfg.QueryWorkers,
		CompressAfter:     cfg.CompressAfter,
		Durability:        tsdb.Durability{Dir: cfg.DataDir, Fsync: fsync},
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Past this point a constructor failure must close the store, or the
	// recovered databases' WAL descriptors (and the directory lock) leak.
	db, err := store.OpenDatabase(cfg.DBName)
	if err != nil {
		_ = store.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Retention > 0 {
		db.SetRetention(cfg.Retention)
	}

	var pub *pubsub.Publisher
	if cfg.PubSubAddr != "" {
		pub, err = pubsub.NewPublisher(cfg.PubSubAddr, cfg.PubSubHWM)
		if err != nil {
			_ = store.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	// A clustered stack routes writes over the consistent-hash ring and
	// reads through the distributed querier; the classic stack keeps its
	// in-process sinks and local querier.
	var clu *cluster.Cluster
	if len(cfg.ClusterPeers) > 0 {
		ccfg := cluster.Config{
			Peers:       cfg.ClusterPeers,
			Self:        cfg.ClusterSelf,
			Replication: cfg.Replication,
			WriteQuorum: cfg.WriteQuorum,
			HintsDir:    cfg.HintsDir,
		}
		if cfg.ClusterSelf != "" {
			ccfg.SelfStore = store
		}
		clu, err = cluster.New(ccfg)
		if err != nil {
			if pub != nil {
				_ = pub.Close()
			}
			_ = store.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	var traces *obs.TraceRing
	if cfg.TraceBuffer > 0 {
		traces = obs.NewTraceRing(cfg.TraceBuffer)
		store.SetTraces(traces)
	}

	rcfg := router.Config{
		Primary:   router.LocalSink{DB: db},
		Publisher: pub,
		Now:       cfg.Now,
		Traces:    traces,
	}
	if clu != nil {
		rcfg.Primary = clu.SinkFor(cfg.DBName)
	}
	if cfg.PerUserDBs {
		rcfg.UserSink = func(user string) router.Sink {
			return router.LocalSink{DB: store.CreateDatabase("user_" + user)}
		}
		if clu != nil {
			rcfg.UserSink = func(user string) router.Sink {
				return clu.SinkFor("user_" + user)
			}
		}
	}
	rt, err := router.New(rcfg)
	if err != nil {
		if clu != nil {
			_ = clu.Close()
		}
		if pub != nil {
			_ = pub.Close()
		}
		_ = store.Close()
		return nil, err
	}

	var qr tsdb.Querier = tsdb.LocalQuerier{Store: store}
	if clu != nil {
		qr = clu.Querier()
	}
	ev := &analysis.Evaluator{
		Querier:      qr,
		Database:     cfg.DBName,
		PeakMemBWMBs: cfg.PeakMemBWMBs,
		PeakDPMFlops: cfg.PeakDPMFlops,
		Now:          cfg.Now,
	}
	agent := &dashboard.Agent{Querier: qr, Database: cfg.DBName, Evaluator: ev}
	viewer := dashboard.NewViewer(qr, cfg.DBName, rt.Jobs(), agent)
	if cfg.Now != nil {
		viewer.Now = cfg.Now
	}

	handler := tsdb.NewHandler(store)
	if clu != nil {
		handler.Distributed = clu.Querier()
		clu.RegisterMetrics(store.Metrics().Registry())
	}
	return &Stack{
		Store:     store,
		DB:        db,
		Router:    rt,
		Publisher: pub,
		Evaluator: ev,
		Agent:     agent,
		Viewer:    viewer,
		Querier:   qr,
		Cluster:   clu,
		DBHandler: handler,
		Traces:    traces,
		cfg:       cfg,
	}, nil
}

// DBName returns the primary database name.
func (s *Stack) DBName() string { return s.cfg.DBName }

// Close releases network resources (the publisher) and closes the store:
// on a durable stack (StackConfig.DataDir) that flushes the WAL and
// writes the final checkpoint, so skipping Close risks replaying the WAL
// tail on the next start instead of loading one clean checkpoint.
func (s *Stack) Close() error {
	var perr error
	if s.Cluster != nil {
		perr = s.Cluster.Close()
	}
	if s.Publisher != nil {
		if err := s.Publisher.Close(); perr == nil {
			perr = err
		}
	}
	if serr := s.Store.Close(); serr != nil {
		return serr
	}
	return perr
}
