package obs

// Leveled logging (DESIGN.md §14). The stack's ad-hoc log.Printf call
// sites (WAL seal reasons, slow queries, chunk-decode failures, cluster
// hint drops) funnel through one small leveled logger so chaos and soak
// runs can silence noise with -log-level and tests can capture warnings
// by swapping the output writer. Level checks are a single atomic load;
// a suppressed line formats nothing.

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders log severities. Off suppresses everything.
type LogLevel int32

const (
	LevelDebug LogLevel = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	}
	return "unknown"
}

// ParseLogLevel maps a -log-level flag value to a LogLevel.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error, off)", s)
}

// Logger writes leveled, timestamped lines to one writer. All methods
// are safe for concurrent use.
type Logger struct {
	level atomic.Int32
	mu    sync.Mutex
	out   io.Writer
}

// NewLogger returns a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level LogLevel) *Logger {
	l := &Logger{out: w}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum level emitted.
func (l *Logger) SetLevel(level LogLevel) { l.level.Store(int32(level)) }

// Level returns the current minimum level.
func (l *Logger) Level() LogLevel { return LogLevel(l.level.Load()) }

// SetOutput swaps the destination writer, returning the previous one
// (tests capture warnings by installing a buffer and restoring after).
func (l *Logger) SetOutput(w io.Writer) io.Writer {
	l.mu.Lock()
	prev := l.out
	l.out = w
	l.mu.Unlock()
	return prev
}

// Logf emits one line at the given level if it clears the threshold.
func (l *Logger) Logf(level LogLevel, format string, args ...any) {
	if int32(level) < l.level.Load() || level >= LevelOff {
		return
	}
	line := fmt.Sprintf("%s %s %s\n",
		time.Now().UTC().Format("2006-01-02T15:04:05.000Z"),
		strings.ToUpper(level.String()),
		fmt.Sprintf(format, args...))
	l.mu.Lock()
	if l.out != nil {
		io.WriteString(l.out, line)
	}
	l.mu.Unlock()
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.Logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.Logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.Logf(LevelError, format, args...) }

// std is the process-wide default logger the stack's components share.
var std = NewLogger(os.Stderr, LevelInfo)

// Log returns the process-wide default logger.
func Log() *Logger { return std }

// SetLogLevel sets the default logger's threshold (the -log-level flag).
func SetLogLevel(level LogLevel) { std.SetLevel(level) }

// Debugf logs to the default logger at debug level.
func Debugf(format string, args ...any) { std.Logf(LevelDebug, format, args...) }

// Infof logs to the default logger at info level.
func Infof(format string, args ...any) { std.Logf(LevelInfo, format, args...) }

// Warnf logs to the default logger at warn level.
func Warnf(format string, args ...any) { std.Logf(LevelWarn, format, args...) }

// Errorf logs to the default logger at error level.
func Errorf(format string, args ...any) { std.Logf(LevelError, format, args...) }
