package lineproto

import (
	"sync"
	"time"
)

// Batch accumulates points and renders them as a single concatenated
// line-protocol payload. It is the building block for the batched
// transmission mode used by libusermetric and the collector agent: callers
// add points as they are produced and flush them in one HTTP request.
//
// A Batch is safe for concurrent use.
type Batch struct {
	mu     sync.Mutex
	buf    []byte
	n      int
	defTag map[string]string
}

// NewBatch returns an empty batch. defaultTags (may be nil) are merged into
// every added point; explicit point tags win on key collision.
func NewBatch(defaultTags map[string]string) *Batch {
	b := &Batch{}
	if len(defaultTags) > 0 {
		b.defTag = make(map[string]string, len(defaultTags))
		for k, v := range defaultTags {
			b.defTag[k] = v
		}
	}
	return b
}

// Add validates and appends one point. If the point has no timestamp, now is
// assigned so the batch is self-contained when it reaches the database.
func (b *Batch) Add(p Point, now time.Time) error {
	if p.Time.IsZero() {
		p.Time = now
	}
	if len(b.defTag) > 0 {
		if len(p.Tags) == 0 {
			// Hot path for clients that rely on default tags only
			// (usermetric.Metric with nil tags): encoding below never
			// mutates the map, so the defaults can be aliased instead of
			// copied per point.
			p.Tags = b.defTag
		} else {
			merged := make(map[string]string, len(b.defTag)+len(p.Tags))
			for k, v := range b.defTag {
				merged[k] = v
			}
			for k, v := range p.Tags {
				merged[k] = v
			}
			p.Tags = merged
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, err := AppendPoint(b.buf, p)
	if err != nil {
		return err
	}
	b.buf = append(buf, '\n')
	b.n++
	return nil
}

// Len reports the number of buffered points.
func (b *Batch) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Size reports the buffered payload size in bytes.
func (b *Batch) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Flush returns the accumulated payload and resets the batch. It returns nil
// when the batch is empty.
func (b *Batch) Flush() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == 0 {
		return nil
	}
	out := b.buf
	b.buf = nil
	b.n = 0
	return out
}
