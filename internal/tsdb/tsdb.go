// Package tsdb implements the time-series database back-end of the LIKWID
// Monitoring Stack.
//
// The paper (Sect. III-C) uses InfluxDB: a time-series store that accepts
// floating-point metrics as well as string events, written via an HTTP
// endpoint in the line protocol and read back with InfluxQL queries. This
// package is a from-scratch, stdlib-only replacement that keeps the parts of
// the interface LMS depends on:
//
//   - a Store holding multiple named databases (the router duplicates job
//     metrics into per-user databases),
//   - series organized by measurement + tag set, floats and strings mixed,
//   - time-range queries with aggregation, GROUP BY time(...) windows and
//     GROUP BY tag,
//   - an InfluxDB-compatible HTTP API (/write, /query, /ping) in http.go and
//     an InfluxQL subset in influxql.go.
package tsdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/lineproto"
)

// Common errors returned by the storage layer.
var (
	ErrNoDatabase    = errors.New("tsdb: database does not exist")
	ErrNoMeasurement = errors.New("tsdb: measurement does not exist")
)

// Store is a collection of named databases, the equivalent of one InfluxDB
// server instance.
type Store struct {
	mu  sync.RWMutex
	dbs map[string]*DB
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{dbs: make(map[string]*DB)}
}

// CreateDatabase creates (or returns the existing) database with that name.
func (s *Store) CreateDatabase(name string) *DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.dbs[name]; ok {
		return db
	}
	db := NewDB(name)
	s.dbs[name] = db
	return db
}

// DB returns the database with that name, or nil.
func (s *Store) DB(name string) *DB {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dbs[name]
}

// DropDatabase removes a database and all its contents.
func (s *Store) DropDatabase(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dbs, name)
}

// Databases lists database names in sorted order.
func (s *Store) Databases() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DB is one named time-series database.
type DB struct {
	name string

	mu           sync.RWMutex
	measurements map[string]*measurement
	retention    time.Duration // 0 = keep forever
	lastPrune    time.Time
}

// NewDB returns an empty database.
func NewDB(name string) *DB {
	return &DB{name: name, measurements: make(map[string]*measurement)}
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// SetRetention configures the retention window. Points older than d relative
// to the newest inserted point are pruned lazily during writes. Zero disables
// pruning.
func (db *DB) SetRetention(d time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.retention = d
}

type measurement struct {
	name   string
	series map[string]*series
	fields map[string]lineproto.ValueKind
}

type series struct {
	tags   map[string]string
	points []row
	sorted bool
}

type row struct {
	t      int64 // unix nanoseconds
	fields map[string]lineproto.Value
}

// seriesKey builds the canonical identity of a tag set.
func seriesKey(tags map[string]string) string {
	if len(tags) == 0 {
		return ""
	}
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(tags[k])
	}
	return b.String()
}

// WritePoint inserts one point. Points without a timestamp get the current
// time, mirroring InfluxDB's server-side timestamping.
func (db *DB) WritePoint(p lineproto.Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Time.IsZero() {
		p.Time = time.Now()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.writeLocked(p)
	return nil
}

// WritePoints inserts a batch of points under a single lock acquisition.
func (db *DB) WritePoints(pts []lineproto.Point) error {
	now := time.Now()
	for i := range pts {
		if err := pts[i].Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, p := range pts {
		if p.Time.IsZero() {
			p.Time = now
		}
		db.writeLocked(p)
	}
	return nil
}

func (db *DB) writeLocked(p lineproto.Point) {
	m, ok := db.measurements[p.Measurement]
	if !ok {
		m = &measurement{
			name:   p.Measurement,
			series: make(map[string]*series),
			fields: make(map[string]lineproto.ValueKind),
		}
		db.measurements[p.Measurement] = m
	}
	key := seriesKey(p.Tags)
	sr, ok := m.series[key]
	if !ok {
		tags := make(map[string]string, len(p.Tags))
		for k, v := range p.Tags {
			tags[k] = v
		}
		sr = &series{tags: tags, sorted: true}
		m.series[key] = sr
	}
	fields := make(map[string]lineproto.Value, len(p.Fields))
	for k, v := range p.Fields {
		fields[k] = v
		m.fields[k] = v.Kind()
	}
	ns := p.Time.UnixNano()
	if n := len(sr.points); n > 0 && sr.points[n-1].t > ns {
		sr.sorted = false
	}
	sr.points = append(sr.points, row{t: ns, fields: fields})

	if db.retention > 0 && time.Since(db.lastPrune) > time.Second {
		db.lastPrune = time.Now()
		db.pruneLocked(p.Time.Add(-db.retention).UnixNano())
	}
}

func (db *DB) pruneLocked(beforeNS int64) {
	for mname, m := range db.measurements {
		for key, sr := range m.series {
			sr.ensureSorted()
			idx := sort.Search(len(sr.points), func(i int) bool { return sr.points[i].t >= beforeNS })
			if idx > 0 {
				sr.points = append([]row(nil), sr.points[idx:]...)
			}
			if len(sr.points) == 0 {
				delete(m.series, key)
			}
		}
		if len(m.series) == 0 {
			delete(db.measurements, mname)
		}
	}
}

// DropBefore removes all points older than t from every series.
func (db *DB) DropBefore(t time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pruneLocked(t.UnixNano())
}

func (sr *series) ensureSorted() {
	if sr.sorted {
		return
	}
	sort.SliceStable(sr.points, func(i, j int) bool { return sr.points[i].t < sr.points[j].t })
	sr.sorted = true
}

// Measurements lists measurement names in sorted order.
func (db *DB) Measurements() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.measurements))
	for n := range db.measurements {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FieldKeys lists the field keys seen for a measurement, sorted.
func (db *DB) FieldKeys(measurement string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m, ok := db.measurements[measurement]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(m.fields))
	for k := range m.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TagKeys lists tag keys across all series of a measurement, sorted.
func (db *DB) TagKeys(measurement string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m, ok := db.measurements[measurement]
	if !ok {
		return nil
	}
	set := map[string]struct{}{}
	for _, sr := range m.series {
		for k := range sr.tags {
			set[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TagValues lists the distinct values of one tag key over a measurement.
// With measurement == "" it scans all measurements (used by the dashboard
// agent to discover the hosts participating in a job).
func (db *DB) TagValues(meas, key string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := map[string]struct{}{}
	collect := func(m *measurement) {
		for _, sr := range m.series {
			if v, ok := sr.tags[key]; ok {
				set[v] = struct{}{}
			}
		}
	}
	if meas == "" {
		for _, m := range db.measurements {
			collect(m)
		}
	} else if m, ok := db.measurements[meas]; ok {
		collect(m)
	}
	vals := make([]string, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// PointCount returns the total number of stored points (all measurements).
func (db *DB) PointCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, m := range db.measurements {
		for _, sr := range m.series {
			n += len(sr.points)
		}
	}
	return n
}

// TagFilter matches series by tag values. A nil filter matches everything.
// Values are exact matches; the special value "*" requires only that the tag
// key exists.
type TagFilter map[string]string

func (f TagFilter) matches(tags map[string]string) bool {
	for k, want := range f {
		got, ok := tags[k]
		if !ok {
			return false
		}
		if want != "*" && got != want {
			return false
		}
	}
	return true
}

// Query describes a programmatic read. Zero Start/End mean unbounded. If
// Every > 0 points are grouped into aligned time windows and Agg is applied
// per window and field; if Every == 0 and Agg != "" a single aggregate row is
// produced per series; otherwise raw points are returned.
type Query struct {
	Measurement string
	Start, End  time.Time
	Filter      TagFilter
	Fields      []string // nil = all fields
	GroupByTags []string // produce one result series per distinct combination
	Every       time.Duration
	Agg         AggFunc
	Percentile  float64 // used by AggPercentile
	Limit       int     // max rows per series, 0 = unlimited
}

// Row is one result row: a timestamp and one value per requested column.
// Missing values are represented by a nil entry.
type Row struct {
	Time   time.Time
	Values []*lineproto.Value
}

// Series is one result series.
type Series struct {
	Name    string
	Tags    map[string]string // group-by tag values
	Columns []string          // field columns (time excluded)
	Rows    []Row
}

// Select executes a query against the database.
func (db *DB) Select(q Query) ([]Series, error) {
	db.mu.Lock() // full lock: ensureSorted may reorder points
	defer db.mu.Unlock()
	m, ok := db.measurements[q.Measurement]
	if !ok {
		return nil, ErrNoMeasurement
	}
	cols := q.Fields
	if len(cols) == 0 {
		cols = make([]string, 0, len(m.fields))
		for k := range m.fields {
			cols = append(cols, k)
		}
		sort.Strings(cols)
	}
	startNS, endNS := rangeNS(q.Start, q.End)

	// Group matching series by the requested group-by tag combination.
	type group struct {
		tags map[string]string
		rows []row
	}
	groups := map[string]*group{}
	var order []string
	for _, sr := range m.series {
		if !q.Filter.matches(sr.tags) {
			continue
		}
		sr.ensureSorted()
		lo := sort.Search(len(sr.points), func(i int) bool { return sr.points[i].t >= startNS })
		hi := sort.Search(len(sr.points), func(i int) bool { return sr.points[i].t > endNS })
		if lo >= hi {
			continue
		}
		gtags := map[string]string{}
		for _, k := range q.GroupByTags {
			gtags[k] = sr.tags[k]
		}
		key := seriesKey(gtags)
		g, ok := groups[key]
		if !ok {
			g = &group{tags: gtags}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, sr.points[lo:hi]...)
	}
	sort.Strings(order)

	var out []Series
	for _, key := range order {
		g := groups[key]
		sort.SliceStable(g.rows, func(i, j int) bool { return g.rows[i].t < g.rows[j].t })
		res := Series{Name: q.Measurement, Tags: g.tags, Columns: cols}
		switch {
		case q.Agg == "" || q.Agg == AggNone:
			for _, r := range g.rows {
				vals := make([]*lineproto.Value, len(cols))
				any := false
				for i, c := range cols {
					if v, ok := r.fields[c]; ok {
						vv := v
						vals[i] = &vv
						any = true
					}
				}
				if any {
					res.Rows = append(res.Rows, Row{Time: time.Unix(0, r.t).UTC(), Values: vals})
				}
			}
		case q.Every > 0:
			res.Rows = windowAggregate(g.rows, cols, q.Agg, q.Percentile, q.Every, startNS, endNS)
		default:
			vals := make([]*lineproto.Value, len(cols))
			for i, c := range cols {
				if v, ok := aggregateColumn(g.rows, c, q.Agg, q.Percentile); ok {
					vv := v
					vals[i] = &vv
				}
			}
			t := q.Start
			if t.IsZero() && len(g.rows) > 0 {
				t = time.Unix(0, g.rows[0].t).UTC()
			}
			res.Rows = append(res.Rows, Row{Time: t, Values: vals})
		}
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		out = append(out, res)
	}
	return out, nil
}

func rangeNS(start, end time.Time) (int64, int64) {
	startNS := int64(minInt64)
	endNS := int64(maxInt64)
	if !start.IsZero() {
		startNS = start.UnixNano()
	}
	if !end.IsZero() {
		endNS = end.UnixNano()
	}
	return startNS, endNS
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// windowAggregate buckets rows into aligned windows of width every and
// applies agg per column. Empty windows are skipped (InfluxDB fill(none)).
func windowAggregate(rows []row, cols []string, agg AggFunc, pct float64, every time.Duration, startNS, endNS int64) []Row {
	if len(rows) == 0 {
		return nil
	}
	w := every.Nanoseconds()
	if w <= 0 {
		return nil
	}
	if startNS == minInt64 {
		startNS = rows[0].t
	}
	// Align the first window to a multiple of the interval, like InfluxDB.
	first := rows[0].t
	if first < startNS {
		first = startNS
	}
	align := func(t int64) int64 {
		if t >= 0 {
			return t - t%w
		}
		return t - (w+t%w)%w
	}
	var out []Row
	i := 0
	for winStart := align(first); i < len(rows); winStart += w {
		winEnd := winStart + w
		j := i
		for j < len(rows) && rows[j].t < winEnd {
			j++
		}
		if j > i {
			vals := make([]*lineproto.Value, len(cols))
			for ci, c := range cols {
				if v, ok := aggregateColumn(rows[i:j], c, agg, pct); ok {
					vv := v
					vals[ci] = &vv
				}
			}
			out = append(out, Row{Time: time.Unix(0, winStart).UTC(), Values: vals})
			i = j
		}
		if winStart > endNS {
			break
		}
	}
	return out
}
