package tsdb

// Columnar run storage (DESIGN.md §8). A point run is stored as one sorted
// timestamp column plus one typed value column per field, instead of a
// slice of per-point field maps: a 100k-point scan walks contiguous
// []float64 / []int64 / interned-string-id slices and the aggregation
// inner loops (agg.go) become index-free column sweeps.
//
// Invariants the lock-light read path (select.go) relies on, extending the
// series invariants documented in tsdb.go:
//
//   - run.ts is sorted and only ever grows by appending (readers holding a
//     shorter slice header never observe the new tail);
//   - value slices only grow by appending, and elements below a published
//     length are never overwritten in place — the dedup rewrite path and
//     kind conversions swap in freshly allocated arrays (copy-on-write);
//   - presence bitmaps are fully copy-on-write: any change allocates a new
//     word array, because appending a bit would mutate the shared last
//     word a reader may have snapshotted.
//
// A column is "dense" (present == nil) while every row carries a value —
// the hot case for metric fields — and materializes a presence bitmap only
// when a row skips the field (sparse event/annotation columns). Dense
// columns pay zero presence bookkeeping on the append path and aggregate
// with straight slice sweeps.

import (
	"sort"

	"repro/internal/lineproto"
)

// --- bit helpers -------------------------------------------------------

func bitWords(n int) int { return (n + 63) / 64 }

func bitGet(bm []uint64, i int) bool { return bm[i>>6]&(1<<(uint(i)&63)) != 0 }

func bitSet(bm []uint64, i int) { bm[i>>6] |= 1 << (uint(i) & 63) }

// denseBits returns a fresh bitmap with bits [0, n) set.
func denseBits(n int) []uint64 {
	bm := make([]uint64, bitWords(n))
	for i := range bm {
		bm[i] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		bm[len(bm)-1] = (1 << r) - 1
	}
	return bm
}

// setBitRange sets bits [lo, hi) of bm.
func setBitRange(bm []uint64, lo, hi int) {
	for i := lo; i < hi; i++ {
		bitSet(bm, i)
	}
}

// --- string interning --------------------------------------------------

// strTable interns the string field values of one measurement: a column
// stores uint32 ids, the table owns each distinct payload exactly once.
// The vals slice is append-only, so a reader that snapshotted its header
// under the shard RLock can resolve every id it saw after releasing the
// lock (ids referenced by snapshotted rows are always < the snapshotted
// length).
type strTable struct {
	ids  map[string]uint32
	vals []string
}

func (t *strTable) intern(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]uint32)
	}
	id := uint32(len(t.vals))
	t.ids[s] = id
	t.vals = append(t.vals, s)
	return id
}

// --- columns -----------------------------------------------------------

// col is one field's value column over a run. Exactly one storage arm is
// active: floats (KindFloat), ints (KindInt and KindBool, booleans as
// 0/1), strs (KindString, ids into the measurement strTable) — or vals
// when the field was written with conflicting kinds (mixed). Absent rows
// hold a zero placeholder in the active arm and a cleared presence bit.
type col struct {
	name  string
	kind  lineproto.ValueKind // element kind while !mixed
	mixed bool
	n     int // rows covered (values + gaps); equals len(run.ts) once committed

	floats []float64
	ints   []int64
	strs   []uint32
	vals   []lineproto.Value

	// present marks value-carrying rows, bit i ↔ row i; nil means dense.
	// Copy-on-write once published (see the file comment).
	present []uint64
}

// has reports whether row i carries a value.
func (c *col) has(i int) bool { return c.present == nil || bitGet(c.present, i) }

// valueAt reconstructs the lineproto.Value of row i. strs is the
// measurement intern table (only consulted for string columns).
func (c *col) valueAt(i int, strs []string) (lineproto.Value, bool) {
	if !c.has(i) {
		return lineproto.Value{}, false
	}
	if c.mixed {
		return c.vals[i], true
	}
	switch c.kind {
	case lineproto.KindFloat:
		return lineproto.Float(c.floats[i]), true
	case lineproto.KindInt:
		return lineproto.Int(c.ints[i]), true
	case lineproto.KindBool:
		return lineproto.Bool(c.ints[i] != 0), true
	default:
		return lineproto.String(strs[c.strs[i]]), true
	}
}

// padValues appends k zero placeholders to the active storage arm.
func (c *col) padValues(k int) {
	switch {
	case c.mixed:
		for i := 0; i < k; i++ {
			c.vals = append(c.vals, lineproto.Value{})
		}
	case c.kind == lineproto.KindFloat:
		for i := 0; i < k; i++ {
			c.floats = append(c.floats, 0)
		}
	case c.kind == lineproto.KindString:
		for i := 0; i < k; i++ {
			c.strs = append(c.strs, 0)
		}
	default: // KindInt, KindBool
		for i := 0; i < k; i++ {
			c.ints = append(c.ints, 0)
		}
	}
}

// toMixed converts a typed column to the mixed representation into a
// freshly allocated vals array (copy-on-write safe for published columns).
func (c *col) toMixed(strs []string) {
	if c.mixed {
		return
	}
	vals := make([]lineproto.Value, c.n)
	for i := 0; i < c.n; i++ {
		if v, ok := c.valueAt(i, strs); ok {
			vals[i] = v
		}
	}
	c.vals = vals
	c.mixed = true
	c.floats, c.ints, c.strs = nil, nil, nil
}

// --- builder-side mutation (private pending columns only) ---------------

// padTo registers rows [c.n, r) as absent. Builder-only: it may grow the
// presence bitmap in place.
func (c *col) padTo(r int) {
	if c.n >= r {
		return
	}
	if c.present == nil {
		c.present = denseBits(c.n)
	}
	for len(c.present) < bitWords(r) {
		c.present = append(c.present, 0)
	}
	c.padValues(r - c.n)
	c.n = r
}

// add appends one value as row c.n. Builder-only (in-place bit append).
func (c *col) add(v lineproto.Value, st *strTable) {
	if !c.mixed && v.Kind() != c.kind {
		c.toMixed(st.vals)
	}
	if c.present != nil {
		for len(c.present) < bitWords(c.n+1) {
			c.present = append(c.present, 0)
		}
		bitSet(c.present, c.n)
	}
	switch {
	case c.mixed:
		c.vals = append(c.vals, v)
	case c.kind == lineproto.KindFloat:
		c.floats = append(c.floats, v.FloatVal())
	case c.kind == lineproto.KindString:
		c.strs = append(c.strs, st.intern(v.StringVal()))
	default: // KindInt, KindBool
		c.ints = append(c.ints, v.IntVal())
	}
	c.n++
}

// gather rebuilds the column in permutation order (row i of the result is
// old row idx[i]) into fresh arrays. Builder-only (used by the stable
// timestamp sort of out-of-order batches).
func (c *col) gather(idx []int32) {
	if c.present != nil {
		np := make([]uint64, bitWords(len(idx)))
		for i, j := range idx {
			if bitGet(c.present, int(j)) {
				bitSet(np, i)
			}
		}
		c.present = np
	}
	switch {
	case c.mixed:
		nv := make([]lineproto.Value, len(idx))
		for i, j := range idx {
			nv[i] = c.vals[j]
		}
		c.vals = nv
	case c.kind == lineproto.KindFloat:
		nv := make([]float64, len(idx))
		for i, j := range idx {
			nv[i] = c.floats[j]
		}
		c.floats = nv
	case c.kind == lineproto.KindString:
		nv := make([]uint32, len(idx))
		for i, j := range idx {
			nv[i] = c.strs[j]
		}
		c.strs = nv
	default:
		nv := make([]int64, len(idx))
		for i, j := range idx {
			nv[i] = c.ints[j]
		}
		c.ints = nv
	}
}

// truncate empties a builder column slot for reuse, keeping the allocated
// typed arrays (their contents were already copied out by the previous
// commit).
func (c *col) truncate() {
	c.n = 0
	c.mixed = false
	c.present = nil
	c.floats = c.floats[:0]
	c.ints = c.ints[:0]
	c.strs = c.strs[:0]
	c.vals = c.vals[:0]
}

// clone returns a deep copy (fresh arrays) of the column.
func (c *col) clone() col {
	out := *c
	if c.present != nil {
		out.present = append([]uint64(nil), c.present...)
	}
	switch {
	case c.mixed:
		out.vals = append([]lineproto.Value(nil), c.vals...)
	case c.kind == lineproto.KindFloat:
		out.floats = append([]float64(nil), c.floats...)
	case c.kind == lineproto.KindString:
		out.strs = append([]uint32(nil), c.strs...)
	default:
		out.ints = append([]int64(nil), c.ints...)
	}
	return out
}

// --- published-column mutation (copy-on-write presence) -----------------

// padAppendCOW registers rows [c.n, newN) as absent on a published column:
// values are appended (invisible past snapshotted lengths), the presence
// bitmap is rebuilt into a fresh array.
func (c *col) padAppendCOW(newN int) {
	np := make([]uint64, bitWords(newN))
	if c.present != nil {
		copy(np, c.present)
	} else {
		setBitRange(np, 0, c.n)
	}
	c.present = np
	c.padValues(newN - c.n)
	c.n = newN
}

// appendBlockCOW appends every row of src (a finished builder column of
// the same field) onto the published column c. strs resolves string ids
// when a kind conflict forces the mixed representation.
func (c *col) appendBlockCOW(src *col, strs []string) {
	oldN := c.n
	newN := oldN + src.n
	if c.present != nil || src.present != nil {
		np := make([]uint64, bitWords(newN))
		if c.present != nil {
			copy(np, c.present)
		} else {
			setBitRange(np, 0, oldN)
		}
		for i := 0; i < src.n; i++ {
			if src.has(i) {
				bitSet(np, oldN+i)
			}
		}
		c.present = np
	}
	switch {
	case !c.mixed && !src.mixed && c.kind == src.kind:
		switch c.kind {
		case lineproto.KindFloat:
			c.floats = append(c.floats, src.floats...)
		case lineproto.KindString:
			c.strs = append(c.strs, src.strs...)
		default:
			c.ints = append(c.ints, src.ints...)
		}
	default:
		c.toMixed(strs)
		if src.mixed {
			c.vals = append(c.vals, src.vals...)
		} else {
			for i := 0; i < src.n; i++ {
				v, _ := src.valueAt(i, strs)
				c.vals = append(c.vals, v)
			}
		}
	}
	c.n = newN
}

// overwriteCOW applies src (a builder column whose rows map 1:1 onto c's
// rows) with last-write-wins per row, into freshly allocated arrays so
// concurrent snapshots keep reading the previous version.
func (c *col) overwriteCOW(src *col, strs []string) {
	if !c.mixed && !src.mixed && c.kind == src.kind {
		if src.present == nil {
			// The block rewrites every row: the new arrays replace the
			// old ones wholesale and the column is dense afterwards.
			nc := src.clone()
			c.floats, c.ints, c.strs, c.present = nc.floats, nc.ints, nc.strs, nil
			return
		}
		switch c.kind {
		case lineproto.KindFloat:
			nv := append([]float64(nil), c.floats...)
			for i := 0; i < src.n; i++ {
				if src.has(i) {
					nv[i] = src.floats[i]
				}
			}
			c.floats = nv
		case lineproto.KindString:
			nv := append([]uint32(nil), c.strs...)
			for i := 0; i < src.n; i++ {
				if src.has(i) {
					nv[i] = src.strs[i]
				}
			}
			c.strs = nv
		default:
			nv := append([]int64(nil), c.ints...)
			for i := 0; i < src.n; i++ {
				if src.has(i) {
					nv[i] = src.ints[i]
				}
			}
			c.ints = nv
		}
		c.unionPresentCOW(src)
		return
	}
	// Kind conflict: rebuild as mixed.
	vals := make([]lineproto.Value, c.n)
	for i := 0; i < c.n; i++ {
		if v, ok := c.valueAt(i, strs); ok {
			vals[i] = v
		}
	}
	for i := 0; i < src.n; i++ {
		if v, ok := src.valueAt(i, strs); ok {
			vals[i] = v
		}
	}
	c.vals = vals
	c.mixed = true
	c.floats, c.ints, c.strs = nil, nil, nil
	c.unionPresentCOW(src)
}

// unionPresentCOW merges src's presence into c (rows map 1:1).
func (c *col) unionPresentCOW(src *col) {
	if c.present == nil {
		return // already dense, union is a no-op
	}
	if src.present == nil {
		c.present = nil // src covers every row
		return
	}
	np := append([]uint64(nil), c.present...)
	for i := range src.present {
		np[i] |= src.present[i]
	}
	c.present = np
}

// sliceRows returns a fresh column holding rows [lo, hi) (used by the
// retention pruner; readers may still hold the old arrays).
func (c *col) sliceRows(lo, hi int) col {
	k := hi - lo
	out := col{name: c.name, kind: c.kind, mixed: c.mixed, n: k}
	switch {
	case c.mixed:
		out.vals = append([]lineproto.Value(nil), c.vals[lo:hi]...)
	case c.kind == lineproto.KindFloat:
		out.floats = append([]float64(nil), c.floats[lo:hi]...)
	case c.kind == lineproto.KindString:
		out.strs = append([]uint32(nil), c.strs[lo:hi]...)
	default:
		out.ints = append([]int64(nil), c.ints[lo:hi]...)
	}
	if c.present != nil {
		np := make([]uint64, bitWords(k))
		all := true
		for i := 0; i < k; i++ {
			if bitGet(c.present, lo+i) {
				bitSet(np, i)
			} else {
				all = false
			}
		}
		if !all {
			out.present = np
		}
	}
	return out
}

// --- runs --------------------------------------------------------------

// maxSparseRunRows bounds the in-order growth of runs whose extension
// would rebuild presence bitmaps: bitmap updates are copy-on-write
// (O(run rows / 64) per commit), so letting such a run grow without bound
// would make steady sparse-field ingest quadratic. Past this size the
// block opens a new run instead and the geometric compaction keeps total
// work O(n log n). Fully dense runs (no bitmaps anywhere — the metric hot
// path) never roll: their appends are pure bulk copies.
const maxSparseRunRows = 1 << 15

// pastSparseRollLimit reports whether extending run r with block b should
// be abandoned in favour of a new run because r is large and the append
// would have to rebuild presence bitmaps (sparse columns on either side,
// or a column-set mismatch that forces absent-row padding).
func pastSparseRollLimit(r *colRun, b *runBuilder) bool {
	if len(r.ts) < maxSparseRunRows {
		return false
	}
	for i := range r.cols {
		if r.cols[i].present != nil {
			return true
		}
	}
	if len(r.cols) != len(b.cols) {
		return true
	}
	for i := range b.cols {
		if b.cols[i].present != nil || r.colByName(b.cols[i].name) < 0 {
			return true
		}
	}
	return false
}

// colRun is one sorted, immutable-to-readers run of a series in columnar
// layout: the timestamp column plus one col per field seen in the run.
// Every col covers exactly len(ts) rows once the owning writeBatch commit
// returns.
//
// A run lives in one of two resident states: sealed (ts/cols hold the raw
// typed arrays) or compressed (comp holds the Gorilla-encoded chunks,
// ts/cols are nil — compress.go, DESIGN.md §13). Both states obey the
// same reader contract: everything a snapshot captures under the shard
// RLock stays immutable after the lock is released.
type colRun struct {
	ts   []int64
	cols []col

	// comp is the compressed form; non-nil exactly when ts/cols are nil.
	comp *compRun
	// modNS is the wall-clock unix ns of the last mutation; the background
	// compressor only touches runs idle past the configured window.
	modNS int64
	// gen counts in-place mutations (appendBlock/rewriteBlock), so the
	// compressor can encode outside the lock and verify-and-swap under it.
	gen uint64
}

func (r *colRun) colByName(name string) int {
	for i := range r.cols {
		if r.cols[i].name == name {
			return i
		}
	}
	return -1
}

// rows is the run's row count in either resident state.
func (r *colRun) rows() int {
	if r.comp != nil {
		return r.comp.n
	}
	return len(r.ts)
}

// rawRun returns the sealed (raw-column) form of the run, decompressing a
// compressed run into fresh arrays. strsLen bounds decoded string ids.
func (r *colRun) rawRun(strsLen int) (*colRun, error) {
	if r.comp == nil {
		return r, nil
	}
	return r.comp.decompress(strsLen)
}

// appendBlock extends the run with a finished builder block whose first
// timestamp is >= the run's last (the in-order hot path). Only appends and
// presence copy-on-write — published array prefixes are never rewritten.
func (r *colRun) appendBlock(b *runBuilder, m *measurement) {
	oldN := len(r.ts)
	newN := oldN + len(b.ts)
	for i := range b.cols {
		bc := &b.cols[i]
		ci := r.colByName(bc.name)
		if ci < 0 {
			r.cols = append(r.cols, col{name: bc.name, kind: bc.kind})
			ci = len(r.cols) - 1
			if oldN > 0 {
				r.cols[ci].padAppendCOW(oldN)
			}
		}
		r.cols[ci].appendBlockCOW(bc, m.strs.vals)
	}
	for i := range r.cols {
		if r.cols[i].n < newN {
			r.cols[i].padAppendCOW(newN)
		}
	}
	r.ts = append(r.ts, b.ts...)
}

// rewriteBlock applies a builder block whose timestamps exactly equal the
// run's (the same-timestamp rewrite pattern): instead of opening a new run
// and paying compaction, each rewritten field is merged row-for-row with
// last-write-wins (InfluxDB duplicate-point semantics), copy-on-write so
// concurrent snapshots stay on the previous version. Fields absent from
// the block keep their stored values.
func (r *colRun) rewriteBlock(b *runBuilder, m *measurement) {
	for i := range b.cols {
		bc := &b.cols[i]
		ci := r.colByName(bc.name)
		if ci < 0 {
			// A field the run had never seen: the cloned builder column
			// becomes the run column (same row count by construction).
			r.cols = append(r.cols, bc.clone())
			continue
		}
		r.cols[ci].overwriteCOW(bc, m.strs.vals)
	}
}

// sliceRun returns a fresh run holding rows [lo, hi).
func (r *colRun) sliceRun(lo, hi int) *colRun {
	out := &colRun{ts: append([]int64(nil), r.ts[lo:hi]...)}
	out.cols = make([]col, 0, len(r.cols))
	for i := range r.cols {
		out.cols = append(out.cols, r.cols[i].sliceRows(lo, hi))
	}
	return out
}

// mergeRuns stably merges two sorted runs into a freshly allocated run; on
// equal timestamps rows of a precede rows of b (a is the older run, so the
// merge preserves insertion order exactly like the row engine did).
func mergeRuns(m *measurement, a, b *colRun) *colRun {
	na, nb := len(a.ts), len(b.ts)
	n := na + nb
	ts := make([]int64, 0, n)
	// take[i] >= 0 selects row take[i] of a; take[i] < 0 selects row
	// ^take[i] of b.
	take := make([]int32, 0, n)
	i, j := 0, 0
	for i < na && j < nb {
		if a.ts[i] <= b.ts[j] {
			ts = append(ts, a.ts[i])
			take = append(take, int32(i))
			i++
		} else {
			ts = append(ts, b.ts[j])
			take = append(take, int32(^j))
			j++
		}
	}
	for ; i < na; i++ {
		ts = append(ts, a.ts[i])
		take = append(take, int32(i))
	}
	for ; j < nb; j++ {
		ts = append(ts, b.ts[j])
		take = append(take, int32(^j))
	}

	out := &colRun{ts: ts}
	for ci := range a.cols {
		ca := &a.cols[ci]
		var cb *col
		if bi := b.colByName(ca.name); bi >= 0 {
			cb = &b.cols[bi]
		}
		out.cols = append(out.cols, mergeCols(ca, cb, take, m.strs.vals))
	}
	for ci := range b.cols {
		cb := &b.cols[ci]
		if a.colByName(cb.name) < 0 {
			out.cols = append(out.cols, mergeCols(nil, cb, take, m.strs.vals))
		}
	}
	return out
}

// mergeCols gathers one field column of a merged run. ca rows are selected
// by take values >= 0, cb rows by values < 0; a nil side contributes
// absent rows.
func mergeCols(ca, cb *col, take []int32, strs []string) col {
	n := len(take)
	pick := func(t int32) (*col, int) {
		if t >= 0 {
			return ca, int(t)
		}
		return cb, int(^t)
	}
	ref := ca
	if ref == nil {
		ref = cb
	}
	out := col{name: ref.name, n: n}

	typed := !ref.mixed &&
		(ca == nil || cb == nil || (!ca.mixed && !cb.mixed && ca.kind == cb.kind))
	dense := typed && ca != nil && cb != nil && ca.present == nil && cb.present == nil
	if !dense {
		out.present = make([]uint64, bitWords(n))
		for r, t := range take {
			if c, idx := pick(t); c != nil && c.has(idx) {
				bitSet(out.present, r)
			}
		}
	}
	if typed {
		out.kind = ref.kind
		switch ref.kind {
		case lineproto.KindFloat:
			out.floats = make([]float64, n)
			for r, t := range take {
				if c, idx := pick(t); c != nil && c.has(idx) {
					out.floats[r] = c.floats[idx]
				}
			}
		case lineproto.KindString:
			out.strs = make([]uint32, n)
			for r, t := range take {
				if c, idx := pick(t); c != nil && c.has(idx) {
					out.strs[r] = c.strs[idx]
				}
			}
		default:
			out.ints = make([]int64, n)
			for r, t := range take {
				if c, idx := pick(t); c != nil && c.has(idx) {
					out.ints[r] = c.ints[idx]
				}
			}
		}
		return out
	}
	out.mixed = true
	out.vals = make([]lineproto.Value, n)
	for r, t := range take {
		if c, idx := pick(t); c != nil {
			if v, ok := c.valueAt(idx, strs); ok {
				out.vals[r] = v
			}
		}
	}
	return out
}

// --- pending builder ---------------------------------------------------

// runBuilder accumulates one series' pending rows of a batch in columnar
// form: no per-point field map is allocated on the write path. It is
// reused across batches (shard scratch); toRun hands its arrays off to a
// new run, the in-order and rewrite paths bulk-copy out of it.
type runBuilder struct {
	ts     []int64
	cols   []col
	sorted bool
}

func (b *runBuilder) reset() {
	b.ts = b.ts[:0]
	b.cols = b.cols[:0]
	b.sorted = true
}

// handoff clears the builder after toRun moved its arrays into a run.
func (b *runBuilder) handoff() {
	b.ts, b.cols = nil, nil
	b.sorted = true
}

// colIdx finds or creates the builder column for one field. The caller
// passes the position hint j (the field's index in the point's sorted
// field list): consecutive points with an identical schema hit their
// column without any search.
func (b *runBuilder) colIdx(m *measurement, j int, name string, kind lineproto.ValueKind) int {
	if j < len(b.cols) && b.cols[j].name == name {
		return j
	}
	for i := range b.cols {
		if b.cols[i].name == name {
			return i
		}
	}
	canon := m.internField(name, kind)
	// Reuse the spare col slot (and its typed arrays) left by a previous
	// batch when its shape matches; otherwise start a fresh column.
	if len(b.cols) < cap(b.cols) {
		b.cols = b.cols[:len(b.cols)+1]
		c := &b.cols[len(b.cols)-1]
		if c.name == canon && c.kind == kind {
			c.truncate()
			return len(b.cols) - 1
		}
		*c = col{name: canon, kind: kind}
		return len(b.cols) - 1
	}
	b.cols = append(b.cols, col{name: canon, kind: kind})
	return len(b.cols) - 1
}

// addPoint appends one point's timestamp and fields. fields must be the
// point's sorted field list (lineproto.Point.AppendFields).
func (b *runBuilder) addPoint(m *measurement, fields []lineproto.Field, tns int64) {
	r := len(b.ts)
	if r > 0 && b.ts[r-1] > tns {
		b.sorted = false
	}
	b.ts = append(b.ts, tns)
	for j := range fields {
		idx := b.colIdx(m, j, fields[j].Key, fields[j].Value.Kind())
		c := &b.cols[idx]
		c.padTo(r)
		c.add(fields[j].Value, &m.strs)
	}
}

// finish pads every column to the full row count and, if the batch was
// internally out of order, stable-sorts all columns by timestamp.
func (b *runBuilder) finish() {
	for i := range b.cols {
		b.cols[i].padTo(len(b.ts))
	}
	if b.sorted {
		return
	}
	idx := make([]int32, len(b.ts))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(i, j int) bool { return b.ts[idx[i]] < b.ts[idx[j]] })
	nts := make([]int64, len(b.ts))
	for i, j := range idx {
		nts[i] = b.ts[j]
	}
	b.ts = nts
	for i := range b.cols {
		b.cols[i].gather(idx)
	}
	b.sorted = true
}

// tsEqual reports whether the builder's timestamps exactly equal ts.
func (b *runBuilder) tsEqual(ts []int64) bool {
	if len(b.ts) != len(ts) {
		return false
	}
	if b.ts[0] != ts[0] || b.ts[len(b.ts)-1] != ts[len(ts)-1] {
		return false
	}
	for i := range b.ts {
		if b.ts[i] != ts[i] {
			return false
		}
	}
	return true
}

// toRun publishes the builder's arrays as a new run. The builder must be
// handoff()-reset afterwards — the arrays now belong to the run.
func (b *runBuilder) toRun() *colRun {
	return &colRun{ts: b.ts, cols: b.cols}
}
