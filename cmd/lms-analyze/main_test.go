package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// jobPoints builds a small two-node job data set covering several
// evaluation metrics.
func jobPoints(t *testing.T) []lineproto.Point {
	t.Helper()
	start, err := time.Parse(time.RFC3339, "2017-08-04T10:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	var pts []lineproto.Point
	for i := 0; i < 30; i++ {
		ts := start.Add(time.Duration(i) * time.Minute)
		for ni, node := range []string{"node01", "node02"} {
			pts = append(pts,
				lineproto.Point{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields:      map[string]lineproto.Value{"percent": lineproto.Float(90 + float64(ni))},
					Time:        ts,
				},
				lineproto.Point{
					Measurement: "likwid_mem_dp",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields: map[string]lineproto.Value{
						"dp_mflop_s":                lineproto.Float(2000 + float64(10*ni)),
						"memory_bandwidth_mbytes_s": lineproto.Float(9000),
						"ipc":                       lineproto.Float(1.4),
					},
					Time: ts,
				})
		}
	}
	return pts
}

// startRemoteDB stands in for a separately running lms-db: the same
// tsdb.Handler the binary serves, wired over real HTTP via httptest.
func startRemoteDB(t *testing.T, pts []lineproto.Point) string {
	t.Helper()
	store := tsdb.NewStore()
	srv := httptest.NewServer(tsdb.NewHandler(store))
	t.Cleanup(srv.Close)
	c := &tsdb.Client{BaseURL: srv.URL, Database: "lms"}
	if err := c.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	return srv.URL
}

func writeDump(t *testing.T, pts []lineproto.Point) string {
	t.Helper()
	body, err := lineproto.Encode(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "job.lp")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunRemoteMatchesOffline is the deployment-split acceptance test:
// lms-analyze -db-url against a separately served lms-db handler must
// produce a byte-identical report to the offline -data mode over the same
// points and window.
func TestRunRemoteMatchesOffline(t *testing.T) {
	pts := jobPoints(t)
	window := []string{"-start", "2017-08-04T10:00:00Z", "-end", "2017-08-04T10:30:00Z"}

	var offline strings.Builder
	args := append([]string{"-data", writeDump(t, pts), "-job", "42", "-user", "alice"}, window...)
	if err := run(args, &offline); err != nil {
		t.Fatalf("offline: %v", err)
	}

	var remote strings.Builder
	args = append([]string{"-db-url", startRemoteDB(t, pts), "-db", "lms", "-job", "42", "-user", "alice"}, window...)
	if err := run(args, &remote); err != nil {
		t.Fatalf("remote: %v", err)
	}

	if offline.String() != remote.String() {
		t.Fatalf("remote report diverged from offline:\n--- offline ---\n%s\n--- remote ---\n%s",
			offline.String(), remote.String())
	}
	for _, want := range []string{"Job 42", "node01", "node02", "CPU load", "DP FP rate"} {
		if !strings.Contains(remote.String(), want) {
			t.Errorf("report missing %q:\n%s", want, remote.String())
		}
	}
}

func TestRunModeFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-job", "42"}, &out); err == nil {
		t.Error("neither -data nor -db-url accepted")
	}
	if err := run([]string{"-job", "42", "-data", "x.lp", "-db-url", "http://h:1"}, &out); err == nil {
		t.Error("both -data and -db-url accepted")
	}
	if err := run([]string{"-data", "x.lp"}, &out); err == nil {
		t.Error("missing -job accepted")
	}
}

func TestRunRemoteNodeDiscovery(t *testing.T) {
	pts := jobPoints(t)
	// A shared cluster database also holds another job's data; discovery
	// must scope to jobid 42 and not pull node99 into the report.
	pts = append(pts, lineproto.Point{
		Measurement: "cpu",
		Tags:        map[string]string{"hostname": "node99", "jobid": "7"},
		Fields:      map[string]lineproto.Value{"percent": lineproto.Float(50)},
		Time:        pts[0].Time,
	})
	var out strings.Builder
	// No -nodes: hostnames are discovered through the query API over HTTP.
	err := run([]string{
		"-db-url", startRemoteDB(t, pts), "-job", "42",
		"-start", "2017-08-04T10:00:00Z", "-end", "2017-08-04T10:30:00Z",
	}, &out)
	if err != nil {
		t.Fatalf("remote run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "on 2 nodes") {
		t.Fatalf("node discovery failed:\n%s", out.String())
	}
	if strings.Contains(out.String(), "node99") {
		t.Fatalf("foreign job's node leaked into the report:\n%s", out.String())
	}
}
