package hpm

import (
	"fmt"
	"sync"
)

// CounterMask is the width of the simulated hardware counters. Real x86
// general-purpose PMCs are 48 bits wide and wrap silently; the measurement
// session must handle the overflow, so the simulation reproduces it.
const CounterMask = (uint64(1) << 48) - 1

// EventRates gives event increments per simulated second for one hardware
// thread. Events not present count zero. Socket-scope events (CAS_COUNT_*,
// PWR_PKG_ENERGY) are given per thread and accumulated into the owning
// socket's register, the way per-core memory traffic aggregates at the
// memory controller.
type EventRates map[string]float64

// Machine is the simulated node hardware: a topology plus one register file
// per hardware thread and per socket, advanced in simulated time by
// workload-defined rates. It is safe for concurrent use.
type Machine struct {
	topo Topology

	mu      sync.Mutex
	now     float64 // simulated seconds since boot
	rates   []EventRates
	threads []map[string]uint64 // per hwthread: event -> cumulative count
	sockets []map[string]uint64 // per socket: event -> cumulative count
	frac    []map[string]float64
	sfrac   []map[string]float64
}

// NewMachine boots a simulated machine with all counters at zero and no
// load on any thread.
func NewMachine(topo Topology) (*Machine, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	n := topo.NumHWThreads()
	m := &Machine{
		topo:    topo,
		rates:   make([]EventRates, n),
		threads: make([]map[string]uint64, n),
		frac:    make([]map[string]float64, n),
		sockets: make([]map[string]uint64, topo.Sockets),
		sfrac:   make([]map[string]float64, topo.Sockets),
	}
	for i := 0; i < n; i++ {
		m.threads[i] = make(map[string]uint64)
		m.frac[i] = make(map[string]float64)
	}
	for s := 0; s < topo.Sockets; s++ {
		m.sockets[s] = make(map[string]uint64)
		m.sfrac[s] = make(map[string]float64)
	}
	return m, nil
}

// Topology returns the machine layout.
func (m *Machine) Topology() Topology { return m.topo }

// Now returns the simulated time in seconds since boot.
func (m *Machine) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// SetRates installs the current event rates for one hardware thread,
// replacing any previous rates. Unknown events are rejected so workload
// bugs surface immediately.
func (m *Machine) SetRates(thread int, rates EventRates) error {
	if thread < 0 || thread >= len(m.threads) {
		return fmt.Errorf("hpm: hwthread %d out of range [0,%d)", thread, len(m.threads))
	}
	cp := make(EventRates, len(rates))
	for ev, r := range rates {
		if _, err := LookupEvent(ev); err != nil {
			return err
		}
		if r < 0 {
			return fmt.Errorf("hpm: negative rate %v for event %s", r, ev)
		}
		cp[ev] = r
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rates[thread] = cp
	return nil
}

// Idle clears the rates of a thread (halted core: no events count).
func (m *Machine) Idle(thread int) error {
	return m.SetRates(thread, nil)
}

// Advance moves simulated time forward by dt seconds, accumulating
// rate*dt into every counter. Fractional event counts are carried between
// calls so long runs do not lose events to truncation. Registers wrap at
// 48 bits.
func (m *Machine) Advance(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("hpm: negative time step %v", dt)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now += dt
	for tid, rates := range m.rates {
		if len(rates) == 0 {
			continue
		}
		sock := tid / (m.topo.CoresPerSocket * m.topo.ThreadsPerCore)
		for ev, rate := range rates {
			inc := rate*dt + m.fracFor(tid, sock, ev)
			whole := uint64(inc)
			rem := inc - float64(whole)
			e := eventCatalog[ev]
			if e.Scope == ScopeSocket {
				m.sockets[sock][ev] = (m.sockets[sock][ev] + whole) & CounterMask
				m.sfrac[sock][ev] = rem
			} else {
				m.threads[tid][ev] = (m.threads[tid][ev] + whole) & CounterMask
				m.frac[tid][ev] = rem
			}
		}
	}
	return nil
}

func (m *Machine) fracFor(tid, sock int, ev string) float64 {
	if eventCatalog[ev].Scope == ScopeSocket {
		return m.sfrac[sock][ev]
	}
	return m.frac[tid][ev]
}

// ReadThreadCounter returns the current 48-bit register value of a
// thread-scope event on one hardware thread.
func (m *Machine) ReadThreadCounter(thread int, event string) (uint64, error) {
	ev, err := LookupEvent(event)
	if err != nil {
		return 0, err
	}
	if ev.Scope != ScopeThread {
		return 0, fmt.Errorf("hpm: event %s is socket-scope", event)
	}
	if thread < 0 || thread >= len(m.threads) {
		return 0, fmt.Errorf("hpm: hwthread %d out of range", thread)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.threads[thread][event], nil
}

// ReadSocketCounter returns the current 48-bit register value of a
// socket-scope event.
func (m *Machine) ReadSocketCounter(socket int, event string) (uint64, error) {
	ev, err := LookupEvent(event)
	if err != nil {
		return 0, err
	}
	if ev.Scope != ScopeSocket {
		return 0, fmt.Errorf("hpm: event %s is thread-scope", event)
	}
	if socket < 0 || socket >= len(m.sockets) {
		return 0, fmt.Errorf("hpm: socket %d out of range", socket)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sockets[socket][event], nil
}

// poke is a test hook that force-sets a register close to the wrap point.
func (m *Machine) poke(thread int, event string, value uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := eventCatalog[event]
	if e.Scope == ScopeSocket {
		sock := thread / (m.topo.CoresPerSocket * m.topo.ThreadsPerCore)
		m.sockets[sock][event] = value & CounterMask
	} else {
		m.threads[thread][event] = value & CounterMask
	}
}
