package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"--help"}, &out); err != nil {
		t.Fatalf("run(--help) = %v, want nil", err)
	}
	for _, flag := range []string{"-scenario", "-interval", "-duration", "-shards", "-dump"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("help output missing %s:\n%s", flag, out.String())
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scenario", "nope", "-http", ""}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("run(-scenario nope) = %v, want unknown scenario error", err)
	}
}

// TestRunShortSimulation drives a real (but short) simulation through the
// full stack: scheduler, collection agents, batched router ingest, sharded
// store, and the final stats line.
func TestRunShortSimulation(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "out.lp")
	var out strings.Builder
	err := run([]string{
		"-scenario", "mixed",
		"-http", "", // no web viewer in tests
		"-duration", "180",
		"-interval", "60",
		"-shards", "2",
		"-dump", dump,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "router received") {
		t.Fatalf("missing stats line in output:\n%s", text)
	}
	if strings.Contains(text, "dropped 0 points") == false {
		t.Errorf("expected no dropped points:\n%s", text)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("dump file is empty")
	}
}
