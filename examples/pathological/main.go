// Pathological-job detection, reproducing paper Fig. 4: a four-node job
// suffers a computation break of more than ten minutes; the DP FP rate and
// memory bandwidth stay below their thresholds longer than the rule
// timeout, so the job is flagged with the exact interval — both offline
// (batch scan) and online (streaming detection firing the moment the
// sustained window crosses the timeout).
//
//	go run ./examples/pathological
package main

import (
	"fmt"
	"log"
	"time"

	lms "repro"
	"repro/internal/analysis"
	"repro/internal/dashboard"
	"repro/internal/tsdb"
)

func main() {
	stack, sim, err := lms.NewSimulatedStack(
		lms.StackConfig{},
		lms.SimConfig{Nodes: 4, CollectInterval: 60},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// 110-minute job; the break runs from minute 40 to minute 58 (18
	// minutes, comfortably beyond the 10-minute timeout of Fig. 4).
	w := lms.NewIdleBreak(20, 6600, 2400, 3480)
	if err := sim.SubmitJob(lms.JobRequest{ID: "4711.master", User: "bob", Nodes: 4}, w); err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(7200); err != nil {
		log.Fatal(err)
	}

	job := sim.Sched.Finished()[0]
	meta := sim.JobMeta(job)

	// Offline analysis: the evaluation table with the flagged intervals.
	report, err := stack.Evaluator.Evaluate(meta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.FormatTable())

	// The Fig. 4 timeline: per-host DP FP rate and memory bandwidth.
	fmt.Println()
	for _, field := range []string{"dp_mflop_s", "memory_bandwidth_mbytes_s"} {
		res, err := stack.DB.Select(tsdb.Query{
			Measurement: "likwid_mem_dp",
			Fields:      []string{field},
			Filter:      tsdb.TagFilter{"jobid": "4711.master"},
			GroupByTags: []string{"hostname"},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s per host:\n", field)
		for _, s := range res {
			var vals []float64
			for _, r := range s.Rows {
				vals = append(vals, r.Values[0].FloatVal())
			}
			fmt.Printf("  %-8s %s\n", s.Tags["hostname"], dashboard.Sparkline(vals))
		}
	}

	// Online detection: replay node01's FP-rate timeline through the
	// streaming detector and report when the alarm would have fired during
	// the run ("detect badly behaving jobs directly for instant user
	// feedback").
	series := jobSeries(stack, meta, "node01")
	rule := analysis.DefaultRules()[0] // low_flops, 10 min timeout
	det := &analysis.DetectStreaming{Rule: rule}
	for _, s := range series {
		if v, ok := det.Feed(s); ok {
			fmt.Printf("\nonline alarm at %s: %s\n",
				s.T.Format("15:04:05"), v.String())
			break
		}
	}
}

func jobSeries(stack *lms.Stack, meta lms.JobMeta, node string) []analysis.TimedValue {
	res, err := stack.DB.Select(tsdb.Query{
		Measurement: "likwid_mem_dp",
		Fields:      []string{"dp_mflop_s"},
		Filter:      tsdb.TagFilter{"hostname": node},
		Start:       meta.Start,
		End:         meta.End,
	})
	if err != nil || len(res) == 0 {
		log.Fatal("no series for ", node, ": ", err)
	}
	var out []analysis.TimedValue
	for _, r := range res[0].Rows {
		out = append(out, analysis.TimedValue{T: r.Time, V: r.Values[0].FloatVal()})
	}
	_ = time.Second
	return out
}
