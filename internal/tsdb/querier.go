package tsdb

// The first-class query API of the stack (DESIGN.md §7).
//
// The paper's monitoring stack is explicitly multi-process: collectors,
// router, metrics database and web front-end run as separate services on
// separate hosts. Querier is the one door every read-side consumer — the
// dashboard viewer, the analysis engine, offline tools — walks through,
// whether the database lives in the same process (LocalQuerier) or behind
// the InfluxDB-compatible HTTP API (Client in http.go). Swapping one for
// the other changes deployment topology, never behavior: the equivalence
// suite in querier_test.go holds both to byte-identical JSON results.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Request describes one query round-trip.
type Request struct {
	// Database is the target database. Empty falls back to the querier's
	// default (Client.Database), if any.
	Database string

	// RawQuery is InfluxQL text, used when Statements is empty.
	RawQuery string

	// Statements is the pre-parsed AST form. A LocalQuerier executes it
	// directly against the Select engine — no string round-trip — while the
	// HTTP Client serializes it back to canonical InfluxQL (Statement.Text)
	// for the wire. Takes precedence over RawQuery.
	Statements []Statement

	// Epoch selects integer result timestamps in the given precision
	// ("ns", "u", "ms", "s", "m", "h") instead of RFC3339 strings,
	// mirroring the InfluxDB /query epoch parameter.
	Epoch string

	// Limit, when > 0, caps the number of rows per result series of every
	// SELECT in the request, on top of any per-statement LIMIT.
	Limit int

	// Chunked asks the HTTP transport to stream one JSON document per
	// statement instead of a single response document. Results are
	// identical; large responses start flowing before the last statement
	// finished. Ignored by LocalQuerier.
	Chunked bool
}

// Response is the result set of a Request, one entry per statement. It is
// also the wire format of the /query endpoint ({"results": [...]}).
type Response struct {
	Results []ExecResult `json:"results"`
}

// Err returns the first per-statement execution error embedded in the
// response, if any. Transport- and parse-level failures are returned by
// Querier.Query itself; statement failures ride inside the response so one
// bad statement does not hide the results of its neighbours.
func (r Response) Err() error {
	for _, res := range r.Results {
		if res.Err != "" {
			return fmt.Errorf("tsdb: %s", res.Err)
		}
	}
	return nil
}

// Querier is the read-side API of the stack. Implementations: LocalQuerier
// (in-process store) and *Client (remote HTTP). Components that only read —
// the dashboard viewer, the analysis evaluator, report tooling — depend on
// this interface and nothing else, so they run unchanged against a local
// store or a remote lms-db.
type Querier interface {
	Query(ctx context.Context, req Request) (Response, error)
}

// LocalQuerier executes requests directly against an in-process Store.
// Pre-parsed statements skip the InfluxQL string round-trip entirely and
// run straight on the two-phase Select engine.
type LocalQuerier struct {
	Store *Store
}

// Query implements Querier.
func (lq LocalQuerier) Query(ctx context.Context, req Request) (Response, error) {
	if lq.Store == nil {
		return Response{}, fmt.Errorf("tsdb: local querier has no store")
	}
	stmts := req.Statements
	if len(stmts) == 0 {
		var err error
		stmts, err = ParseQuery(req.RawQuery)
		if err != nil {
			return Response{}, err
		}
	}
	var resp Response
	err := execStatements(ctx, lq.Store, req.Database, stmts, ExecOptions{Epoch: req.Epoch, Limit: req.Limit},
		func(res ExecResult) error {
			resp.Results = append(resp.Results, res)
			return nil
		})
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}

// execStatements runs each statement in order, emitting one ExecResult per
// statement. Execution errors are embedded per result (matching the HTTP
// handler); context cancellation aborts the remaining statements and is
// returned as the error. Shared by LocalQuerier and the /query handler so
// both doors behave identically.
func execStatements(ctx context.Context, store *Store, dbName string, stmts []Statement, opts ExecOptions, emit func(ExecResult) error) error {
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := ExecuteContext(ctx, store, dbName, st, opts)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res = ExecResult{Err: err.Error()}
		}
		if err := emit(res); err != nil {
			return err
		}
	}
	return nil
}

// QuerierFor wraps a standalone DB (built with NewDB, outside any Store) in
// a local querier serving exactly that database under its own name.
func QuerierFor(db *DB) Querier {
	s := NewStore()
	s.Attach(db)
	return LocalQuerier{Store: s}
}

// ---------------------------------------------------------------------------
// Programmatic statement construction.
//
// Read-side components build their queries as ASTs once and hand them to a
// Querier; against a LocalQuerier they execute without ever becoming a
// string. The constructors produce exactly what ParseQuery would, so the
// remote wire form (Text) round-trips to the same statement.

// SelectStatement builds a SELECT over q's measurement, range, filter,
// grouping and limit. cols lists the projected columns with their
// aggregation; none selects every field (SELECT *). q.Fields, q.Agg and
// q.Percentile are derived from cols at execution time and need not be set.
func SelectStatement(q Query, cols ...AggCol) Statement {
	q.Fields = nil
	q.Agg = ""
	q.Percentile = 0
	st := Statement{Kind: StmtSelect, Query: q, AggCols: cols}
	if len(cols) == 0 {
		st.Star = true
	}
	return st
}

// ExplainAnalyzeStatement wraps the same SELECT in EXPLAIN ANALYZE: it
// executes identically but the result carries an extra execution-profile
// series (DESIGN.md §14).
func ExplainAnalyzeStatement(q Query, cols ...AggCol) Statement {
	st := SelectStatement(q, cols...)
	st.Kind = StmtExplainAnalyze
	return st
}

// ShowMeasurementsStatement builds SHOW MEASUREMENTS.
func ShowMeasurementsStatement() Statement {
	return Statement{Kind: StmtShowMeasurements}
}

// ShowFieldKeysStatement builds SHOW FIELD KEYS FROM measurement.
func ShowFieldKeysStatement(measurement string) Statement {
	return Statement{Kind: StmtShowFieldKeys, Query: Query{Measurement: measurement}}
}

// ShowTagValuesStatement builds SHOW TAG VALUES [FROM measurement] WITH
// KEY = key. An empty measurement scans all measurements.
func ShowTagValuesStatement(measurement, key string) Statement {
	return Statement{Kind: StmtShowTagValues, Query: Query{Measurement: measurement}, Target: key}
}

// QueryStrings runs one statement through a querier and returns column col
// of every result series as strings — the shape of the SHOW metadata
// statements (measurement names, field keys, tag values).
func QueryStrings(ctx context.Context, qr Querier, db string, st Statement, col int) ([]string, error) {
	per, err := QueryStringsBatch(ctx, qr, db, []Statement{st}, col)
	if err != nil {
		return nil, err
	}
	return per[0], nil
}

// QueryStringsBatch runs several statements in ONE request — one HTTP
// round trip against a remote querier — and returns column col of each
// statement's result series, indexed like stmts. The dashboard agent uses
// it to batch its per-measurement metadata discovery.
func QueryStringsBatch(ctx context.Context, qr Querier, db string, stmts []Statement, col int) ([][]string, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	resp, err := qr.Query(ctx, Request{Database: db, Statements: stmts})
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(stmts) {
		return nil, fmt.Errorf("tsdb: %d statements produced %d results", len(stmts), len(resp.Results))
	}
	out := make([][]string, len(resp.Results))
	for i, res := range resp.Results {
		for _, s := range res.Series {
			for _, row := range s.Values {
				if col < len(row) {
					if v, ok := row[col].(string); ok {
						out[i] = append(out[i], v)
					}
				}
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Canonical InfluxQL serialization: the wire form of a pre-parsed statement.

// Text renders the statement as canonical InfluxQL. Parsing the result
// yields an equivalent statement, so a pre-built AST can cross the HTTP
// boundary losslessly (Client serializes Request.Statements with it).
func (st Statement) Text() string {
	var b strings.Builder
	switch st.Kind {
	case StmtSelect, StmtExplainAnalyze:
		if st.Kind == StmtExplainAnalyze {
			b.WriteString("EXPLAIN ANALYZE ")
		}
		b.WriteString("SELECT ")
		if st.Star || len(st.AggCols) == 0 {
			b.WriteByte('*')
		} else {
			for i, c := range st.AggCols {
				if i > 0 {
					b.WriteString(", ")
				}
				field := identText(c.Field)
				if c.Field == "*" {
					field = "*" // count(*) etc.: all fields, not an identifier
				}
				switch {
				case c.Agg == "" || c.Agg == AggNone:
					b.WriteString(field)
				case c.Agg == AggPercentile:
					fmt.Fprintf(&b, "percentile(%s, %s)", field,
						strconv.FormatFloat(c.Pct, 'g', -1, 64))
				default:
					fmt.Fprintf(&b, "%s(%s)", string(c.Agg), field)
				}
			}
		}
		b.WriteString(" FROM ")
		b.WriteString(identText(st.Query.Measurement))
		var conds []string
		if !st.Query.Start.IsZero() {
			conds = append(conds, "time >= "+strconv.FormatInt(st.Query.Start.UnixNano(), 10))
		}
		if !st.Query.End.IsZero() {
			conds = append(conds, "time <= "+strconv.FormatInt(st.Query.End.UnixNano(), 10))
		}
		tags := make([]string, 0, len(st.Query.Filter))
		for k := range st.Query.Filter {
			tags = append(tags, k)
		}
		sort.Strings(tags)
		for _, k := range tags {
			conds = append(conds, identText(k)+" = "+stringText(st.Query.Filter[k]))
		}
		if len(conds) > 0 {
			b.WriteString(" WHERE ")
			b.WriteString(strings.Join(conds, " AND "))
		}
		var groups []string
		if st.Query.Every > 0 {
			groups = append(groups, "time("+strconv.FormatInt(st.Query.Every.Nanoseconds(), 10)+"ns)")
		}
		for _, t := range st.Query.GroupByTags {
			if t == "*" {
				groups = append(groups, "*")
				continue
			}
			groups = append(groups, identText(t))
		}
		if len(groups) > 0 {
			b.WriteString(" GROUP BY ")
			b.WriteString(strings.Join(groups, ", "))
		}
		if st.Query.Limit > 0 {
			b.WriteString(" LIMIT ")
			b.WriteString(strconv.Itoa(st.Query.Limit))
		}
	case StmtShowDatabases:
		b.WriteString("SHOW DATABASES")
	case StmtShowMeasurements:
		b.WriteString("SHOW MEASUREMENTS")
	case StmtShowFieldKeys:
		b.WriteString("SHOW FIELD KEYS")
		if st.Query.Measurement != "" {
			b.WriteString(" FROM ")
			b.WriteString(identText(st.Query.Measurement))
		}
	case StmtShowTagKeys:
		b.WriteString("SHOW TAG KEYS")
		if st.Query.Measurement != "" {
			b.WriteString(" FROM ")
			b.WriteString(identText(st.Query.Measurement))
		}
	case StmtShowTagValues:
		b.WriteString("SHOW TAG VALUES")
		if st.Query.Measurement != "" {
			b.WriteString(" FROM ")
			b.WriteString(identText(st.Query.Measurement))
		}
		b.WriteString(" WITH KEY = ")
		b.WriteString(identText(st.Target))
	case StmtCreateDatabase:
		b.WriteString("CREATE DATABASE ")
		b.WriteString(identText(st.Target))
	case StmtDropDatabase:
		b.WriteString("DROP DATABASE ")
		b.WriteString(identText(st.Target))
	}
	return b.String()
}

// identText renders an identifier, double-quoting (with backslash escapes
// for '"' and '\') when it contains bytes outside the bare-identifier
// alphabet of the lexer.
func identText(s string) string {
	if s == "" {
		return `""`
	}
	bare := true
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			bare = false
			break
		}
	}
	if bare {
		return s
	}
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

// stringText renders a single-quoted string literal with escaping.
func stringText(s string) string {
	var b strings.Builder
	b.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' || s[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('\'')
	return b.String()
}

// textOf joins statements into one ';'-separated InfluxQL script.
func textOf(stmts []Statement) string {
	parts := make([]string, len(stmts))
	for i, st := range stmts {
		parts[i] = st.Text()
	}
	return strings.Join(parts, "; ")
}

// epochMult returns the nanoseconds-per-unit divisor of an epoch parameter
// value; "" means RFC3339 string timestamps.
func epochMult(epoch string) (int64, error) {
	switch epoch {
	case "":
		return 0, nil
	case "ns", "n":
		return 1, nil
	case "u", "µ":
		return int64(time.Microsecond), nil
	case "ms":
		return int64(time.Millisecond), nil
	case "s":
		return int64(time.Second), nil
	case "m":
		return int64(time.Minute), nil
	case "h":
		return int64(time.Hour), nil
	default:
		return 0, fmt.Errorf("tsdb: invalid epoch %q", epoch)
	}
}
