package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

func jobPoints(t *testing.T) []lineproto.Point {
	t.Helper()
	start, err := time.Parse(time.RFC3339, "2017-08-04T10:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	var pts []lineproto.Point
	for i := 0; i < 20; i++ {
		ts := start.Add(time.Duration(i) * time.Minute)
		for _, node := range []string{"node01", "node02"} {
			pts = append(pts,
				lineproto.Point{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields:      map[string]lineproto.Value{"percent": lineproto.Float(88)},
					Time:        ts,
				},
				lineproto.Point{
					Measurement: "likwid_mem_dp",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields:      map[string]lineproto.Value{"dp_mflop_s": lineproto.Float(2100)},
					Time:        ts,
				})
		}
	}
	return pts
}

// startRemoteDB serves the points the way a separately started lms-db
// would: the tsdb HTTP handler behind a real listener.
func startRemoteDB(t *testing.T, pts []lineproto.Point) string {
	t.Helper()
	store := tsdb.NewStore()
	srv := httptest.NewServer(tsdb.NewHandler(store))
	t.Cleanup(srv.Close)
	c := &tsdb.Client{BaseURL: srv.URL, Database: "lms"}
	if err := c.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	return srv.URL
}

func writeDump(t *testing.T, pts []lineproto.Point) string {
	t.Helper()
	body, err := lineproto.Encode(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "job.lp")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunRemoteMatchesOffline: the generated dashboard JSON for the same
// job window must be byte-identical whether the agent loads a dump
// in-process or queries a remote lms-db over HTTP.
func TestRunRemoteMatchesOffline(t *testing.T) {
	pts := jobPoints(t)
	window := []string{"-start", "2017-08-04T10:00:00Z", "-end", "2017-08-04T10:20:00Z"}

	var offline strings.Builder
	args := append([]string{"-data", writeDump(t, pts), "-job", "42", "-user", "alice"}, window...)
	if err := run(args, &offline); err != nil {
		t.Fatalf("offline: %v", err)
	}

	var remote strings.Builder
	args = append([]string{"-db-url", startRemoteDB(t, pts), "-job", "42", "-user", "alice"}, window...)
	if err := run(args, &remote); err != nil {
		t.Fatalf("remote: %v", err)
	}

	if offline.String() != remote.String() {
		t.Fatalf("remote dashboard diverged from offline:\n--- offline ---\n%s\n--- remote ---\n%s",
			offline.String(), remote.String())
	}
	var d struct {
		Title string `json:"title"`
		Rows  []struct {
			Title string `json:"title"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(remote.String()), &d); err != nil {
		t.Fatalf("output is not dashboard JSON: %v", err)
	}
	if d.Title != "Job 42" || len(d.Rows) < 2 {
		t.Fatalf("unexpected dashboard %+v", d)
	}
}

// TestRunRemoteRender drives the full remote read path including panel
// rendering: every panel query goes over HTTP to the lms-db handler.
func TestRunRemoteRender(t *testing.T) {
	pts := jobPoints(t)
	var out strings.Builder
	err := run([]string{
		"-db-url", startRemoteDB(t, pts), "-job", "42", "-render",
		"-start", "2017-08-04T10:00:00Z", "-end", "2017-08-04T10:20:00Z",
	}, &out)
	if err != nil {
		t.Fatalf("remote render: %v", err)
	}
	for _, want := range []string{"### Job 42 ###", "-- cpu --", "-- likwid_mem_dp --"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("rendering missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunModeFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-job", "42"}, &out); err == nil {
		t.Error("neither -data nor -db-url accepted")
	}
	if err := run([]string{"-job", "42", "-data", "x.lp", "-db-url", "http://h:1"}, &out); err == nil {
		t.Error("both -data and -db-url accepted")
	}
	if err := run([]string{"-data", "x.lp"}, &out); err == nil {
		t.Error("missing -job accepted")
	}
}
