package tsdb

import (
	"math"
	"sort"
	"time"

	"repro/internal/lineproto"
)

// AggFunc names an aggregation function applied to a column of values.
type AggFunc string

// Supported aggregators. They mirror the InfluxQL functions the LMS
// dashboards and analysis queries use.
const (
	AggNone       AggFunc = ""
	AggCount      AggFunc = "count"
	AggSum        AggFunc = "sum"
	AggMean       AggFunc = "mean"
	AggMin        AggFunc = "min"
	AggMax        AggFunc = "max"
	AggFirst      AggFunc = "first"
	AggLast       AggFunc = "last"
	AggSpread     AggFunc = "spread"
	AggStddev     AggFunc = "stddev"
	AggMedian     AggFunc = "median"
	AggPercentile AggFunc = "percentile"
	AggDerivative AggFunc = "derivative" // per-second first derivative
)

// ValidAgg reports whether name is a known aggregator.
func ValidAgg(name string) bool {
	switch AggFunc(name) {
	case AggCount, AggSum, AggMean, AggMin, AggMax, AggFirst, AggLast,
		AggSpread, AggStddev, AggMedian, AggPercentile, AggDerivative:
		return true
	}
	return false
}

// aggregateColumn applies agg to the named column of the given rows.
// Rows lacking the column are skipped. String columns support only
// count/first/last. The bool result is false when no value was produced.
func aggregateColumn(rows []row, col string, agg AggFunc, pct float64) (lineproto.Value, bool) {
	switch agg {
	case AggCount:
		n := int64(0)
		for _, r := range rows {
			if _, ok := r.fields[col]; ok {
				n++
			}
		}
		if n == 0 {
			return lineproto.Value{}, false
		}
		return lineproto.Int(n), true
	case AggFirst:
		for _, r := range rows {
			if v, ok := r.fields[col]; ok {
				return v, true
			}
		}
		return lineproto.Value{}, false
	case AggLast:
		for i := len(rows) - 1; i >= 0; i-- {
			if v, ok := rows[i].fields[col]; ok {
				return v, true
			}
		}
		return lineproto.Value{}, false
	case AggDerivative:
		// Per-second rate between first and last sample, matching the
		// InfluxDB derivative(..., 1s) the dashboards use for counters.
		var firstT, lastT int64
		var firstV, lastV float64
		n := 0
		for _, r := range rows {
			v, ok := r.fields[col]
			if !ok || v.Kind() == lineproto.KindString {
				continue
			}
			if n == 0 {
				firstT, firstV = r.t, v.FloatVal()
			}
			lastT, lastV = r.t, v.FloatVal()
			n++
		}
		if n < 2 || lastT == firstT {
			return lineproto.Value{}, false
		}
		dt := float64(lastT-firstT) / 1e9
		return lineproto.Float((lastV - firstV) / dt), true
	}

	// Numeric aggregators.
	nums := make([]float64, 0, len(rows))
	for _, r := range rows {
		v, ok := r.fields[col]
		if !ok || v.Kind() == lineproto.KindString {
			continue
		}
		nums = append(nums, v.FloatVal())
	}
	if len(nums) == 0 {
		return lineproto.Value{}, false
	}
	switch agg {
	case AggSum:
		return lineproto.Float(sum(nums)), true
	case AggMean:
		return lineproto.Float(sum(nums) / float64(len(nums))), true
	case AggMin:
		m := nums[0]
		for _, v := range nums[1:] {
			if v < m {
				m = v
			}
		}
		return lineproto.Float(m), true
	case AggMax:
		m := nums[0]
		for _, v := range nums[1:] {
			if v > m {
				m = v
			}
		}
		return lineproto.Float(m), true
	case AggSpread:
		lo, hi := nums[0], nums[0]
		for _, v := range nums[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lineproto.Float(hi - lo), true
	case AggStddev:
		if len(nums) < 2 {
			return lineproto.Float(0), true
		}
		mean := sum(nums) / float64(len(nums))
		var ss float64
		for _, v := range nums {
			d := v - mean
			ss += d * d
		}
		return lineproto.Float(math.Sqrt(ss / float64(len(nums)-1))), true
	case AggMedian:
		return lineproto.Float(percentile(nums, 50)), true
	case AggPercentile:
		return lineproto.Float(percentile(nums, pct)), true
	default:
		return lineproto.Value{}, false
	}
}

func sum(nums []float64) float64 {
	// Kahan summation keeps long-window aggregates stable.
	var s, c float64
	for _, v := range nums {
		y := v - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// percentile returns the p-th percentile (0..100) using linear interpolation
// between closest ranks. The input slice is not modified.
func percentile(nums []float64, p float64) float64 {
	s := append([]float64(nil), nums...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func rangeNS(start, end time.Time) (int64, int64) {
	startNS := int64(minInt64)
	endNS := int64(maxInt64)
	if !start.IsZero() {
		startNS = start.UnixNano()
	}
	if !end.IsZero() {
		endNS = end.UnixNano()
	}
	return startNS, endNS
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// windowAggregate buckets rows into aligned windows of width every and
// applies agg per column. Empty windows are skipped (InfluxDB fill(none)).
func windowAggregate(rows []row, cols []string, agg AggFunc, pct float64, every time.Duration, startNS, endNS int64) []Row {
	if len(rows) == 0 {
		return nil
	}
	w := every.Nanoseconds()
	if w <= 0 {
		return nil
	}
	if startNS == minInt64 {
		startNS = rows[0].t
	}
	// Align the first window to a multiple of the interval, like InfluxDB.
	first := rows[0].t
	if first < startNS {
		first = startNS
	}
	align := func(t int64) int64 {
		if t >= 0 {
			return t - t%w
		}
		return t - (w+t%w)%w
	}
	var out []Row
	i := 0
	for winStart := align(first); i < len(rows); winStart += w {
		winEnd := winStart + w
		j := i
		for j < len(rows) && rows[j].t < winEnd {
			j++
		}
		if j > i {
			vals := make([]*lineproto.Value, len(cols))
			for ci, c := range cols {
				if v, ok := aggregateColumn(rows[i:j], c, agg, pct); ok {
					vv := v
					vals[ci] = &vv
				}
			}
			out = append(out, Row{Time: time.Unix(0, winStart).UTC(), Values: vals})
			i = j
		}
		if winStart > endNS {
			break
		}
	}
	return out
}
