// Command lms-router runs the standalone LMS metrics router. It mimics the
// InfluxDB /write interface, tags incoming metrics with job information
// from its tag store, forwards them in per-destination batches to the
// database back-end, optionally duplicates job metrics into per-user
// databases and publishes everything on a ZeroMQ-style PUB socket.
//
// Job signals are received on POST /api/job/start and /api/job/end with a
// JSON body {"jobid": "...", "username": "...", "nodes": ["h1", ...]}.
//
// GET /metrics exposes the router's own pipeline counters (received,
// forwarded, dropped, shed) in the Prometheus text format. Ingest is
// bounded the same way as lms-db: -max-body-mb (413 on oversized bodies)
// and -max-inflight-reqs / -max-inflight-mb (429 + Retry-After on
// overload).
//
// Observability (DESIGN.md §14): each /write starts a distributed trace
// whose id fans out to the lms-db replicas via X-Lms-Trace; the completed
// traces are served on GET /debug/traces (-traces sets the ring capacity,
// 0 disables). -debug-addr starts a separate listener with net/http/pprof
// plus the same /debug/traces; -log-level selects the log verbosity.
//
// With -cluster-peers the router forwards ring-aware (DESIGN.md §12):
// each batch is split by the consistent-hash ring over (db, measurement),
// fanned to the -replication owning lms-db replicas, and acknowledged at
// -write-quorum; a replica that misses an acknowledged write gets its
// share parked in the durable hinted-handoff queue under -hints-dir and
// replayed when it heals. -db-url is ignored in cluster mode.
//
// Usage:
//
//	lms-router -addr :8090 -db-url http://localhost:8086 -db lms \
//	           -user-dbs -publish 0.0.0.0:5571
//
//	lms-router -addr :8090 -db lms \
//	           -cluster-peers http://db1:8086,http://db2:8086,http://db3:8086 \
//	           -replication 2 -write-quorum 1 -hints-dir /var/lib/lms-router/hints
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/router"
	"repro/internal/tsdb"
)

func main() { cli.Main("lms-router", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-router", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	dbURL := fs.String("db-url", "http://127.0.0.1:8086", "database back-end base URL (single-node mode)")
	dbName := fs.String("db", "lms", "primary database name")
	userDBs := fs.Bool("user-dbs", false, "duplicate job metrics into per-user databases")
	publish := fs.String("publish", "", "ZeroMQ-style publisher listen address (empty = off)")
	hwm := fs.Int("publish-hwm", 0, "publisher high-water mark (0 = default)")
	maxBodyMB := fs.Int64("max-body-mb", 0, "refuse /write bodies above this many MiB with 413 (0 = 64)")
	maxInflightMB := fs.Int64("max-inflight-mb", 0, "shed /write with 429 beyond this many MiB of in-flight bodies (0 = unlimited)")
	maxInflightReqs := fs.Int64("max-inflight-reqs", 0, "shed /write with 429 beyond this many concurrent requests (0 = unlimited)")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated base URLs of every lms-db cluster node (empty = single -db-url back-end)")
	replication := fs.Int("replication", 0, "replicas per (db, measurement) in cluster mode (0 = 2)")
	writeQuorum := fs.Int("write-quorum", 0, "replica acks required before a write acknowledges (0 = 1)")
	hintsDir := fs.String("hints-dir", "", "durable hinted-handoff directory in cluster mode (empty = hints in memory only)")
	debugAddr := fs.String("debug-addr", "", "separate listener for net/http/pprof and /debug/traces (empty = off)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error or off")
	traceBuf := fs.Int("traces", 256, "completed traces kept for /debug/traces (0 = tracing off)")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	peers := cli.SplitList(*clusterPeers)
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return cli.UsageErr(fs, "%v", err)
	}
	obs.SetLogLevel(level)

	cfg := router.Config{
		MaxBodyBytes:        *maxBodyMB << 20,
		MaxInFlightRequests: *maxInflightReqs,
		MaxInFlightBytes:    *maxInflightMB << 20,
	}
	if *traceBuf > 0 {
		cfg.Traces = obs.NewTraceRing(*traceBuf)
	}
	var clu *cluster.Cluster
	if len(peers) > 0 {
		var err error
		clu, err = cluster.New(cluster.Config{
			Peers:       peers,
			Replication: *replication,
			WriteQuorum: *writeQuorum,
			HintsDir:    *hintsDir,
		})
		if err != nil {
			return err
		}
		defer clu.Close()
		cfg.Primary = clu.SinkFor(*dbName)
		if *userDBs {
			cfg.UserSink = func(user string) router.Sink {
				return clu.SinkFor("user_" + user)
			}
		}
	} else {
		cfg.Primary = &tsdb.Client{BaseURL: *dbURL, Database: *dbName}
		if *userDBs {
			cfg.UserSink = func(user string) router.Sink {
				return &tsdb.Client{BaseURL: *dbURL, Database: "user_" + user}
			}
		}
	}
	if *publish != "" {
		pub, err := pubsub.NewPublisher(*publish, *hwm)
		if err != nil {
			return err
		}
		defer pub.Close()
		cfg.Publisher = pub
		fmt.Fprintf(stdout, "lms-router: publishing on %s\n", pub.Addr())
	}
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}
	if clu != nil {
		clu.RegisterMetrics(rt.Metrics())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		debugLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		defer debugLn.Close()
		go func() { _ = http.Serve(debugLn, obs.DebugMux(cfg.Traces)) }()
		fmt.Fprintf(stdout, "lms-router: pprof and /debug/traces on %s\n", debugLn.Addr())
	}
	if clu != nil {
		fmt.Fprintf(stdout, "lms-router: forwarding to %d-node cluster (db %q, R=%d, W=%d, ring %x) on %s\n",
			len(clu.Ring().Nodes()), *dbName, clu.Replication(), clu.WriteQuorum(), clu.Ring().Generation(), ln.Addr())
	} else {
		fmt.Fprintf(stdout, "lms-router: forwarding to %s (db %q) on %s\n", *dbURL, *dbName, ln.Addr())
	}
	return http.Serve(ln, rt)
}
