package lms

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdRefPattern matches documentation references like DESIGN.md or
// EXPERIMENTS.md in Go sources and markdown. Doc files in this repo are
// upper-case by convention, which keeps the pattern from tripping over
// identifiers.
var mdRefPattern = regexp.MustCompile(`\b([A-Z][A-Za-z0-9_-]*\.md)\b`)

// TestDocLinks fails when a *.md file referenced from Go comments or
// markdown does not exist in the repository, so documentation pointers
// (DESIGN.md, EXPERIMENTS.md, ...) cannot silently rot. Run by CI as the
// doc-link check step.
func TestDocLinks(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string][]string{} // referenced name -> referencing files
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		ext := filepath.Ext(path)
		if ext != ".go" && ext != ".md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, m := range mdRefPattern.FindAllStringSubmatch(string(data), -1) {
			refs[m[1]] = append(refs[m[1]], rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no markdown references found; the scanner is broken")
	}
	for name, from := range refs {
		if _, err := os.Stat(filepath.Join(root, name)); err != nil {
			t.Errorf("%s is referenced by %s but does not exist at the repo root",
				name, strings.Join(dedupe(from), ", "))
		}
	}
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
