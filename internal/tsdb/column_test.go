package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
)

// Tests of the columnar run storage (column.go): a randomized oracle
// holding the engine to a naive row-based model fed the same batches, and
// deterministic coverage of the same-timestamp rewrite path, sparse
// fields, mixed-kind columns and compaction.

// modelSeries is the naive independent reference: every accepted point in
// insertion order, one slice per series. It shares nothing with the
// columnar storage, so a storage bug cannot cancel out of the comparison.
type modelSeries struct {
	tags map[string]string
	rows []row
}

type model struct {
	series map[string]*modelSeries
	fields map[string]struct{}
}

func newModel() *model {
	return &model{series: map[string]*modelSeries{}, fields: map[string]struct{}{}}
}

func (mo *model) add(p lineproto.Point) {
	key := seriesKey(p.Tags)
	sr, ok := mo.series[key]
	if !ok {
		tags := make(map[string]string, len(p.Tags))
		for k, v := range p.Tags {
			tags[k] = v
		}
		sr = &modelSeries{tags: tags}
		mo.series[key] = sr
	}
	fields := make(map[string]lineproto.Value, len(p.Fields))
	for k, v := range p.Fields {
		fields[k] = v
		mo.fields[k] = struct{}{}
	}
	sr.rows = append(sr.rows, row{t: p.Time.UnixNano(), fields: fields})
}

// naiveSelect executes q over the model with the seed concat-sort-
// aggregate pipeline (aggregateColumn / windowAggregate from
// select_test.go).
func (mo *model) naiveSelect(q Query) []Series {
	cols := q.Fields
	if len(cols) == 0 {
		for k := range mo.fields {
			cols = append(cols, k)
		}
		sort.Strings(cols)
	}
	startNS, endNS := rangeNS(q.Start, q.End)

	type group struct {
		tags map[string]string
		rows []row
	}
	groups := map[string]*group{}
	keys := make([]string, 0, len(mo.series))
	for key := range mo.series {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var order []string
	for _, skey := range keys {
		sr := mo.series[skey]
		if !q.Filter.matches(sr.tags) {
			continue
		}
		var rows []row
		for _, r := range sr.rows {
			if r.t >= startNS && r.t <= endNS {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue
		}
		gtags := map[string]string{}
		for _, k := range q.GroupByTags {
			gtags[k] = sr.tags[k]
		}
		key := seriesKey(gtags)
		g, ok := groups[key]
		if !ok {
			g = &group{tags: gtags}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, rows...)
	}
	sort.Strings(order)

	var out []Series
	for _, key := range order {
		g := groups[key]
		sort.SliceStable(g.rows, func(i, j int) bool { return g.rows[i].t < g.rows[j].t })
		res := Series{Name: q.Measurement, Tags: g.tags, Columns: cols}
		switch {
		case q.Agg == "" || q.Agg == AggNone:
			for _, r := range g.rows {
				vals := make([]*lineproto.Value, len(cols))
				any := false
				for i, c := range cols {
					if v, ok := r.fields[c]; ok {
						vv := v
						vals[i] = &vv
						any = true
					}
				}
				if any {
					res.Rows = append(res.Rows, Row{Time: time.Unix(0, r.t).UTC(), Values: vals})
				}
			}
		case q.Every > 0:
			res.Rows = windowAggregate(g.rows, cols, q.Agg, q.Percentile, q.Every, startNS, endNS)
		default:
			vals := make([]*lineproto.Value, len(cols))
			for i, c := range cols {
				if v, ok := aggregateColumn(g.rows, c, q.Agg, q.Percentile); ok {
					vv := v
					vals[i] = &vv
				}
			}
			t := q.Start
			if t.IsZero() && len(g.rows) > 0 {
				t = time.Unix(0, g.rows[0].t).UTC()
			}
			res.Rows = append(res.Rows, Row{Time: t, Values: vals})
		}
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		out = append(out, res)
	}
	return out
}

// exactAggs lists the aggregators whose engine result must match the
// naive reference bit-for-bit; the compensated-sum family merges float
// additions in a different order and is compared within tolerance.
var exactAggs = map[AggFunc]bool{
	AggCount: true, AggMin: true, AggMax: true, AggSpread: true,
	AggFirst: true, AggLast: true, AggMedian: true, AggPercentile: true,
	AggDerivative: true, AggNone: true,
}

// compareResults holds got to want, exactly for discrete aggregators and
// within 1e-9 relative tolerance for the float-merge family.
func compareResults(t *testing.T, label string, q Query, want, got []Series) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s agg %q: series %d != %d\nwant %+v\ngot  %+v", label, q.Agg, len(got), len(want), want, got)
	}
	for si := range want {
		ws, gs := want[si], got[si]
		if !reflect.DeepEqual(ws.Tags, gs.Tags) || !reflect.DeepEqual(ws.Columns, gs.Columns) {
			t.Fatalf("%s agg %q series %d: header mismatch (%v/%v vs %v/%v)",
				label, q.Agg, si, gs.Tags, gs.Columns, ws.Tags, ws.Columns)
		}
		if len(ws.Rows) != len(gs.Rows) {
			t.Fatalf("%s agg %q series %d: rows %d != %d", label, q.Agg, si, len(gs.Rows), len(ws.Rows))
		}
		for ri := range ws.Rows {
			wr, gr := ws.Rows[ri], gs.Rows[ri]
			if !wr.Time.Equal(gr.Time) {
				t.Fatalf("%s agg %q series %d row %d: time %v != %v", label, q.Agg, si, ri, gr.Time, wr.Time)
			}
			for ci := range wr.Values {
				wv, gv := wr.Values[ci], gr.Values[ci]
				if (wv == nil) != (gv == nil) {
					t.Fatalf("%s agg %q series %d row %d col %d: nil mismatch (%v vs %v)",
						label, q.Agg, si, ri, ci, wv, gv)
				}
				if wv == nil {
					continue
				}
				if exactAggs[q.Agg] {
					if !reflect.DeepEqual(*wv, *gv) {
						t.Fatalf("%s agg %q series %d row %d col %d: %v != %v",
							label, q.Agg, si, ri, ci, gv, wv)
					}
					continue
				}
				a, b := wv.FloatVal(), gv.FloatVal()
				if diff := math.Abs(a - b); diff > 1e-9*math.Max(1, math.Abs(a)) {
					t.Fatalf("%s agg %q series %d row %d col %d: %g != %g (diff %g)",
						label, q.Agg, si, ri, ci, b, a, diff)
				}
			}
		}
	}
}

// TestColumnarRandomizedOracle writes randomized batches — in-order,
// out-of-order, duplicate timestamps, sparse fields, mixed value kinds —
// into both the columnar store and the naive row model, and compares
// every query shape after every few batches. The seed is fixed, so a
// failure reproduces.
func TestColumnarRandomizedOracle(t *testing.T) {
	t.Parallel()
	rnd := rand.New(rand.NewSource(42))
	// Compress decisions draw from their own stream: the data stream stays
	// byte-identical to the uncompressed baseline, so any divergence below
	// is the compressed read path's fault, not a reshuffled workload.
	crnd := rand.New(rand.NewSource(7))
	db := NewDBShards("lms", 2)
	db.SetQueryCacheTTL(0)
	mo := newModel()

	hosts := []string{"h0", "h1", "h2"}
	nextUnique := int64(1 << 40) // strictly rising, appended once per batch
	makePoint := func(inOrder bool, lastTS *int64) lineproto.Point {
		var ts int64
		if inOrder {
			*lastTS += int64(rnd.Intn(5)) * 1e9
			ts = *lastTS
		} else {
			ts = int64(rnd.Intn(400)) * 1e9 // deliberately collides across batches
		}
		host := hosts[rnd.Intn(len(hosts))]
		fields := map[string]lineproto.Value{}
		if rnd.Intn(10) < 9 {
			fields["value"] = lineproto.Float(float64(rnd.Intn(10000)) / 7)
		}
		if rnd.Intn(10) < 5 {
			fields["ops"] = lineproto.Int(int64(rnd.Intn(1 << 40)))
		}
		if rnd.Intn(10) < 2 {
			fields["note"] = lineproto.String(fmt.Sprintf("ev-%d", rnd.Intn(5)))
		}
		if rnd.Intn(10) < 2 {
			fields["flag"] = lineproto.Bool(rnd.Intn(2) == 0)
		}
		if rnd.Intn(10) < 3 {
			// A field written with conflicting kinds: forces the mixed
			// column representation.
			if rnd.Intn(2) == 0 {
				fields["weird"] = lineproto.Float(float64(rnd.Intn(100)))
			} else {
				fields["weird"] = lineproto.String(fmt.Sprintf("w%d", rnd.Intn(3)))
			}
		}
		if len(fields) == 0 {
			fields["value"] = lineproto.Float(1)
		}
		return lineproto.Point{
			Measurement: "m",
			Tags:        map[string]string{"hostname": host, "rack": host[1:]},
			Fields:      fields,
			Time:        time.Unix(0, ts).UTC(),
		}
	}

	check := func(round int) {
		t.Helper()
		start := time.Unix(50, 0).UTC()
		end := time.Unix(300, 0).UTC()
		queries := []Query{
			{Measurement: "m"},
			{Measurement: "m", Limit: 13},
			{Measurement: "m", GroupByTags: []string{"hostname"}},
			{Measurement: "m", Fields: []string{"note", "weird"}},
			{Measurement: "m", Filter: TagFilter{"hostname": "h1"}, Start: start, End: end},
		}
		for _, agg := range allAggs {
			queries = append(queries,
				Query{Measurement: "m", Agg: agg, Percentile: 90},
				Query{Measurement: "m", Agg: agg, Percentile: 37.5, Every: 30 * time.Second, GroupByTags: []string{"hostname"}},
				Query{Measurement: "m", Agg: agg, Percentile: 75, Every: 45 * time.Second, Start: start, End: end, Limit: 4},
			)
		}
		for _, q := range queries {
			want := mo.naiveSelect(q)
			got, err := db.Select(q)
			if err != nil && err != ErrNoMeasurement {
				t.Fatalf("round %d: %v", round, err)
			}
			compareResults(t, fmt.Sprintf("round %d", round), q, want, got)
		}
	}

	lastTS := map[string]*int64{}
	for _, h := range hosts {
		v := int64(0)
		lastTS[h] = &v
	}
	for round := 0; round < 30; round++ {
		n := 1 + rnd.Intn(40)
		inOrder := rnd.Intn(3) > 0
		pts := make([]lineproto.Point, 0, n+1)
		for i := 0; i < n; i++ {
			p := makePoint(inOrder, lastTS[hosts[rnd.Intn(len(hosts))]])
			pts = append(pts, p)
		}
		// One globally unique timestamp per batch: the batch can then
		// never exactly rewrite an existing run, so the model (which has
		// no upsert semantics) stays a valid oracle. The rewrite path has
		// its own deterministic tests below.
		nextUnique += 1e9
		uniq := makePoint(false, nil)
		uniq.Time = time.Unix(0, nextUnique).UTC()
		pts = append(pts, uniq)

		if err := db.WriteBatch(pts); err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			mo.add(p)
		}
		// Randomly compress the sealed runs (DESIGN.md §13), exactly like
		// the background compactor would: answers must stay byte-identical
		// whether a run is raw or compressed, and later batches must still
		// merge with compressed runs. Each series' building run stays raw —
		// compressing it would shift where the exact-rewrite upsert
		// triggers, which the naive model cannot express.
		if crnd.Intn(3) == 0 {
			db.compressNow(maxInt64, true)
		}
		if round%5 == 4 || round == 29 {
			check(round)
		}
	}
}

// rewriteBatchPts builds one batch of n points on series host with fixed
// timestamps 0..n-1 seconds and the given field values.
func rewriteBatchPts(host string, n int, fields func(i int) map[string]lineproto.Value) []lineproto.Point {
	pts := make([]lineproto.Point, n)
	for i := range pts {
		pts[i] = lineproto.Point{
			Measurement: "m",
			Tags:        map[string]string{"hostname": host},
			Fields:      fields(i),
			Time:        time.Unix(int64(i), 0).UTC(),
		}
	}
	return pts
}

// TestSameTimestampRewrite pins the dedup-on-append fast path: a batch
// that re-writes the newest run's exact timestamps updates the stored
// values in place (last write wins, InfluxDB duplicate-point semantics)
// instead of accumulating duplicate rows.
func TestSameTimestampRewrite(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(0)
	const n = 10
	write := func(pts []lineproto.Point) {
		t.Helper()
		if err := db.WriteBatch(pts); err != nil {
			t.Fatal(err)
		}
	}
	write(rewriteBatchPts("h1", n, func(i int) map[string]lineproto.Value {
		return map[string]lineproto.Value{
			"a": lineproto.Float(float64(i)),
			"b": lineproto.Int(int64(i) * 10),
		}
	}))
	// Rewrite every row of field a, leave b untouched.
	write(rewriteBatchPts("h1", n, func(i int) map[string]lineproto.Value {
		return map[string]lineproto.Value{"a": lineproto.Float(float64(i) + 100)}
	}))

	if got := db.PointCount(); got != n {
		t.Fatalf("PointCount after rewrite = %d, want %d (no duplicate rows)", got, n)
	}
	res, err := db.Select(Query{Measurement: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != n {
		t.Fatalf("rows after rewrite: %+v", res)
	}
	for i, r := range res[0].Rows {
		// Columns sorted: a, b.
		if got := r.Values[0].FloatVal(); got != float64(i)+100 {
			t.Fatalf("row %d: a = %v, want %v (new value)", i, got, float64(i)+100)
		}
		if got := r.Values[1].IntVal(); got != int64(i)*10 {
			t.Fatalf("row %d: b = %v, want %v (field absent from rewrite keeps old value)", i, got, int64(i)*10)
		}
	}

	// A rewrite may also introduce a brand-new sparse field...
	write(rewriteBatchPts("h1", n, func(i int) map[string]lineproto.Value {
		f := map[string]lineproto.Value{"a": lineproto.Float(-1)}
		if i%3 == 0 {
			f["c"] = lineproto.String(fmt.Sprintf("mark-%d", i))
		}
		return f
	}))
	// ...and change a field's kind (b: int → string), forcing the mixed
	// representation.
	write(rewriteBatchPts("h1", n, func(i int) map[string]lineproto.Value {
		f := map[string]lineproto.Value{"a": lineproto.Float(-2)}
		if i == 4 {
			f["b"] = lineproto.String("overridden")
		}
		return f
	}))

	if got := db.PointCount(); got != n {
		t.Fatalf("PointCount after 4 rewrites = %d, want %d", got, n)
	}
	res, err = db.Select(Query{Measurement: "m"})
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if cols := res[0].Columns; !reflect.DeepEqual(cols, []string{"a", "b", "c"}) {
		t.Fatalf("columns = %v", cols)
	}
	for i, r := range rows {
		if got := r.Values[0].FloatVal(); got != -2 {
			t.Fatalf("row %d: a = %v, want -2", i, got)
		}
		if i == 4 {
			if got := r.Values[1].StringVal(); got != "overridden" {
				t.Fatalf("row 4: b = %v, want kind-changed string", r.Values[1])
			}
		} else if got := r.Values[1].IntVal(); got != int64(i)*10 {
			t.Fatalf("row %d: b = %v, want original int", i, r.Values[1])
		}
		if i%3 == 0 {
			if r.Values[2] == nil || r.Values[2].StringVal() != fmt.Sprintf("mark-%d", i) {
				t.Fatalf("row %d: c = %v", i, r.Values[2])
			}
		} else if r.Values[2] != nil {
			t.Fatalf("row %d: c should be absent, got %v", i, r.Values[2])
		}
	}
}

// TestSameTimestampRewriteDoesNotCrossSeries ensures the rewrite path is
// per series: the same timestamps on another tag set still append.
func TestSameTimestampRewriteDoesNotCrossSeries(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(0)
	mk := func(host string) []lineproto.Point {
		return rewriteBatchPts(host, 5, func(i int) map[string]lineproto.Value {
			return map[string]lineproto.Value{"v": lineproto.Float(float64(i))}
		})
	}
	if err := db.WriteBatch(mk("h1")); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBatch(mk("h2")); err != nil {
		t.Fatal(err)
	}
	if got := db.PointCount(); got != 10 {
		t.Fatalf("PointCount = %d, want 10 (two series)", got)
	}
}

// TestSameTimestampRewritePartialOverlapKeepsDuplicates pins the
// boundary: only an exact timestamp match takes the rewrite path; a batch
// overlapping the newest run partially keeps the historical
// duplicate-preserving log-structured behaviour.
func TestSameTimestampRewritePartialOverlapKeepsDuplicates(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(0)
	if err := db.WriteBatch(rewriteBatchPts("h1", 5, func(i int) map[string]lineproto.Value {
		return map[string]lineproto.Value{"v": lineproto.Float(1)}
	})); err != nil {
		t.Fatal(err)
	}
	// Rewrites t=0..3 only (4 of 5 timestamps): not an exact match.
	if err := db.WriteBatch(rewriteBatchPts("h1", 4, func(i int) map[string]lineproto.Value {
		return map[string]lineproto.Value{"v": lineproto.Float(2)}
	})); err != nil {
		t.Fatal(err)
	}
	if got := db.PointCount(); got != 9 {
		t.Fatalf("PointCount = %d, want 9 (partial overlap appends)", got)
	}
}

// TestConcurrentRewriteVsSelect races the copy-on-write rewrite path
// against raw and aggregating readers: a reader must always observe one
// coherent generation of the rewritten column (count stays fixed, the sum
// is a multiple of a single written value), never a torn mix. Run under
// -race this also proves the rewrite never mutates a snapshotted array.
func TestConcurrentRewriteVsSelect(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 1)
	db.SetQueryCacheTTL(0)
	const n = 50
	gen := func(v float64) []lineproto.Point {
		return rewriteBatchPts("h1", n, func(i int) map[string]lineproto.Value {
			return map[string]lineproto.Value{"v": lineproto.Float(v)}
		})
	}
	if err := db.WriteBatch(gen(0)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 1; g <= 200; g++ {
			if err := db.WriteBatch(gen(float64(g))); err != nil {
				t.Errorf("rewrite: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Select(Query{Measurement: "m", Agg: AggSum})
				if err != nil {
					t.Errorf("select: %v", err)
					return
				}
				sum := res[0].Rows[0].Values[0].FloatVal()
				if v := sum / n; v != math.Trunc(v) || v < 0 || v > 200 {
					t.Errorf("torn rewrite snapshot: sum %v is not n×(one generation)", sum)
					return
				}
				cres, err := db.Select(Query{Measurement: "m", Agg: AggCount})
				if err != nil {
					t.Errorf("count: %v", err)
					return
				}
				if got := cres[0].Rows[0].Values[0].IntVal(); got != n {
					t.Errorf("count = %d, want %d", got, n)
					return
				}
			}
		}()
	}
	// Let readers overlap the writer, then wind down.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	res, err := db.Select(Query{Measurement: "m", Agg: AggSum})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0].Values[0].FloatVal(); got != 200*n {
		t.Fatalf("final sum = %v, want %v", got, 200*n)
	}
}

// TestColumnarCompactionMergesDisjointFields forces run compaction between
// runs with disjoint field sets and checks the merged columns via a raw
// select (presence bitmaps must track which side each row came from).
func TestColumnarCompactionMergesDisjointFields(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 1)
	db.SetQueryCacheTTL(0)
	w := func(tsec int64, field string, v lineproto.Value) {
		t.Helper()
		err := db.WriteBatch([]lineproto.Point{{
			Measurement: "m",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{field: v},
			Time:        time.Unix(tsec, 0).UTC(),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order singles force new runs and immediate compaction.
	w(100, "a", lineproto.Float(1))
	w(50, "b", lineproto.Int(2))
	w(25, "c", lineproto.String("x"))
	w(10, "a", lineproto.Bool(true))

	res, err := db.Select(Query{Measurement: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 4 {
		t.Fatalf("res %+v", res)
	}
	if !reflect.DeepEqual(res[0].Columns, []string{"a", "b", "c"}) {
		t.Fatalf("columns %v", res[0].Columns)
	}
	type want struct {
		sec int64
		col int
		val lineproto.Value
	}
	wants := []want{
		{10, 0, lineproto.Bool(true)},
		{25, 2, lineproto.String("x")},
		{50, 1, lineproto.Int(2)},
		{100, 0, lineproto.Float(1)},
	}
	for ri, wnt := range wants {
		r := res[0].Rows[ri]
		if r.Time.Unix() != wnt.sec {
			t.Fatalf("row %d time %v, want %ds", ri, r.Time, wnt.sec)
		}
		for ci := 0; ci < 3; ci++ {
			if ci == wnt.col {
				if r.Values[ci] == nil || !r.Values[ci].Equal(wnt.val) {
					t.Fatalf("row %d col %d = %v, want %v", ri, ci, r.Values[ci], wnt.val)
				}
			} else if r.Values[ci] != nil {
				t.Fatalf("row %d col %d should be absent, got %v", ri, ci, r.Values[ci])
			}
		}
	}
}

// TestColumnarStringInterning checks that repeated string values resolve
// through the per-measurement intern table and round-trip exactly.
func TestColumnarStringInterning(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 1)
	db.SetQueryCacheTTL(0)
	var pts []lineproto.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, lineproto.Point{
			Measurement: "ev",
			Fields:      map[string]lineproto.Value{"text": lineproto.String(fmt.Sprintf("state-%d", i%3))},
			Time:        time.Unix(int64(i), 0).UTC(),
		})
	}
	if err := db.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
	sh := db.shardFor("ev")
	sh.mu.RLock()
	nDistinct := len(sh.measurements["ev"].strs.vals)
	sh.mu.RUnlock()
	if nDistinct != 3 {
		t.Fatalf("interned strings = %d, want 3", nDistinct)
	}
	res, err := db.Select(Query{Measurement: "ev"})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res[0].Rows {
		if got, want := r.Values[0].StringVal(), fmt.Sprintf("state-%d", i%3); got != want {
			t.Fatalf("row %d: %q, want %q", i, got, want)
		}
	}
}

// TestSameTimestampRewriteSinglePoint pins the simplest upsert the docs
// promise: re-writing one point (same series, same timestamp) replaces it
// instead of accumulating duplicates — the all-equal-timestamps run shape
// must take the rewrite path, not the in-order append.
func TestSameTimestampRewriteSinglePoint(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(0)
	p := func(v float64) lineproto.Point {
		return lineproto.Point{
			Measurement: "m",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{"v": lineproto.Float(v)},
			Time:        time.Unix(5, 0).UTC(),
		}
	}
	for i := 1; i <= 3; i++ {
		if err := db.WritePoint(p(float64(i) * 10)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.PointCount(); got != 1 {
		t.Fatalf("PointCount = %d, want 1 (repeated point upserts)", got)
	}
	res, err := db.Select(Query{Measurement: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Rows) != 1 || res[0].Rows[0].Values[0].FloatVal() != 30 {
		t.Fatalf("rows = %+v, want single row v=30 (last write wins)", res[0].Rows)
	}
}

// TestSparseRunRollsOverPastLimit guards the quadratic-bitmap defence:
// once a run carrying presence bitmaps reaches maxSparseRunRows, further
// in-order blocks open a new run (bounded COW work per commit) instead of
// rebuilding the big run's bitmaps, and reads stay correct across the
// seam.
func TestSparseRunRollsOverPastLimit(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 1)
	db.SetQueryCacheTTL(0)
	const perBatch = 512
	total := maxSparseRunRows + 2*perBatch
	var notes int64
	for wrote := 0; wrote < total; wrote += perBatch {
		pts := make([]lineproto.Point, perBatch)
		for k := range pts {
			n := wrote + k
			fields := map[string]lineproto.Value{"v": lineproto.Float(float64(n))}
			if n%7 == 0 {
				fields["note"] = lineproto.String("ev")
				notes++
			}
			pts[k] = lineproto.Point{
				Measurement: "m",
				Tags:        map[string]string{"hostname": "h1"},
				Fields:      fields,
				Time:        time.Unix(int64(n), 0).UTC(),
			}
		}
		if err := db.WriteBatch(pts); err != nil {
			t.Fatal(err)
		}
	}
	sh := db.shardFor("m")
	sh.mu.RLock()
	runs := len(sh.measurements["m"].series[seriesKey(map[string]string{"hostname": "h1"})].runs)
	sh.mu.RUnlock()
	if runs < 2 {
		t.Fatalf("runs = %d, want >= 2 (sparse run must roll over past %d rows)", runs, maxSparseRunRows)
	}
	res, err := db.Select(Query{Measurement: "m", Fields: []string{"v"}, Agg: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0].Values[0].IntVal(); got != int64(total) {
		t.Fatalf("count(v) = %d, want %d", got, total)
	}
	res, err = db.Select(Query{Measurement: "m", Fields: []string{"note"}, Agg: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0].Values[0].IntVal(); got != notes {
		t.Fatalf("count(note) = %d, want %d", got, notes)
	}
}
