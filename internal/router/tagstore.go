package router

import (
	"sync"
	"time"
)

// TagStore is the router's hash table keyed by hostname (paper Sect. III-A:
// "the only mandatory tag for all metrics and events is the host name which
// is used as key in the tag store's hash table"). Each host may carry tags
// from at most one job at a time in the common batch-exclusive case; shared
// nodes stack jobs and the most recent one wins, with earlier jobs restored
// when it ends.
type TagStore struct {
	mu    sync.RWMutex
	hosts map[string][]tagEntry
}

type tagEntry struct {
	jobID string
	tags  map[string]string
}

// NewTagStore returns an empty tag store.
func NewTagStore() *TagStore {
	return &TagStore{hosts: make(map[string][]tagEntry)}
}

// Set attaches a job's tags to a host. tags must contain "jobid".
func (s *TagStore) Set(host string, tags map[string]string) {
	cp := make(map[string]string, len(tags))
	for k, v := range tags {
		cp[k] = v
	}
	jobID := cp["jobid"]
	s.mu.Lock()
	defer s.mu.Unlock()
	// Replace an existing entry of the same job (signal retransmission).
	entries := s.hosts[host]
	for i := range entries {
		if entries[i].jobID == jobID {
			entries[i].tags = cp
			return
		}
	}
	s.hosts[host] = append(entries, tagEntry{jobID: jobID, tags: cp})
}

// Lookup returns the tags currently attached to a host (the most recently
// started job wins on shared nodes).
func (s *TagStore) Lookup(host string) (map[string]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := s.hosts[host]
	if len(entries) == 0 {
		return nil, false
	}
	return entries[len(entries)-1].tags, true
}

// Remove detaches one job's tags from a host.
func (s *TagStore) Remove(host, jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.hosts[host]
	for i := range entries {
		if entries[i].jobID == jobID {
			s.hosts[host] = append(entries[:i:i], entries[i+1:]...)
			break
		}
	}
	if len(s.hosts[host]) == 0 {
		delete(s.hosts, host)
	}
}

// Hosts returns the number of hosts with attached tags.
func (s *TagStore) Hosts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.hosts)
}

// Job is one registered job with its monitoring tags.
type Job struct {
	ID    string            `json:"jobid"`
	User  string            `json:"username,omitempty"`
	Nodes []string          `json:"nodes"`
	Tags  map[string]string `json:"tags,omitempty"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end,omitempty"`
}

// Running reports whether the job has not ended yet.
func (j *Job) Running() bool { return j.End.IsZero() }

// JobRegistry tracks running jobs and a bounded history of finished ones.
type JobRegistry struct {
	mu         sync.RWMutex
	running    map[string]*Job
	history    []*Job
	maxHistory int
}

// NewJobRegistry returns a registry keeping up to maxHistory finished jobs.
func NewJobRegistry(maxHistory int) *JobRegistry {
	return &JobRegistry{running: make(map[string]*Job), maxHistory: maxHistory}
}

// Start registers a running job. Duplicate ids are rejected.
func (r *JobRegistry) Start(job *Job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.running[job.ID]; ok {
		return errDuplicateJob(job.ID)
	}
	r.running[job.ID] = job
	return nil
}

type errDuplicateJob string

func (e errDuplicateJob) Error() string { return "router: job " + string(e) + " already running" }

type errUnknownJob string

func (e errUnknownJob) Error() string { return "router: job " + string(e) + " not running" }

// End moves a job to history, stamping its end time, and returns it.
func (r *JobRegistry) End(jobID string, end time.Time) (*Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.running[jobID]
	if !ok {
		return nil, errUnknownJob(jobID)
	}
	delete(r.running, jobID)
	job.End = end
	r.history = append(r.history, job)
	if len(r.history) > r.maxHistory {
		r.history = r.history[len(r.history)-r.maxHistory:]
	}
	return job, nil
}

// Get finds a job by id among running and finished jobs.
func (r *JobRegistry) Get(jobID string) (*Job, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if job, ok := r.running[jobID]; ok {
		return job, true
	}
	for i := len(r.history) - 1; i >= 0; i-- {
		if r.history[i].ID == jobID {
			return r.history[i], true
		}
	}
	return nil, false
}

// Running returns a snapshot of the running jobs.
func (r *JobRegistry) Running() []*Job {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Job, 0, len(r.running))
	for _, j := range r.running {
		out = append(out, j)
	}
	return out
}

// History returns a snapshot of the finished jobs, oldest first.
func (r *JobRegistry) History() []*Job {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Job(nil), r.history...)
}
