// Package tsdb implements the time-series database back-end of the LIKWID
// Monitoring Stack.
//
// The paper (Sect. III-C) uses InfluxDB: a time-series store that accepts
// floating-point metrics as well as string events, written via an HTTP
// endpoint in the line protocol and read back with InfluxQL queries. This
// package is a from-scratch, stdlib-only replacement that keeps the parts of
// the interface LMS depends on:
//
//   - a Store holding multiple named databases (the router duplicates job
//     metrics into per-user databases),
//   - series organized by measurement + tag set, floats and strings mixed,
//   - time-range queries with aggregation, GROUP BY time(...) windows and
//     GROUP BY tag,
//   - an InfluxDB-compatible HTTP API (/write, /query, /ping) in http.go and
//     an InfluxQL subset in influxql.go.
//
// # Sharding
//
// A DB is partitioned into N independent shards, each guarded by its own
// lock. Points are routed to a shard by a hash of their measurement name, so
// a measurement lives wholly inside one shard and all query semantics are
// unaffected; writers and readers touching different measurements proceed in
// parallel. N defaults to GOMAXPROCS and is configurable with NewDBShards
// (or Store.ShardsPerDB for databases created through a Store).
//
// The batched entry point is WriteBatch: it validates the whole batch,
// splits it per shard, and inside each shard groups consecutive points of
// the same series into an append buffer so the per-point cost is one row
// append instead of two map lookups and a key build.
package tsdb

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lineproto"
)

// Common errors returned by the storage layer.
var (
	ErrNoDatabase    = errors.New("tsdb: database does not exist")
	ErrNoMeasurement = errors.New("tsdb: measurement does not exist")
)

// Store is a collection of named databases, the equivalent of one InfluxDB
// server instance.
type Store struct {
	// ShardsPerDB is the shard count for databases created by
	// CreateDatabase; 0 selects the default (GOMAXPROCS). Set it before the
	// store starts serving traffic.
	ShardsPerDB int

	mu  sync.RWMutex
	dbs map[string]*DB
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{dbs: make(map[string]*DB)}
}

// CreateDatabase creates (or returns the existing) database with that name.
func (s *Store) CreateDatabase(name string) *DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.dbs[name]; ok {
		return db
	}
	db := NewDBShards(name, s.ShardsPerDB)
	s.dbs[name] = db
	return db
}

// DB returns the database with that name, or nil.
func (s *Store) DB(name string) *DB {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dbs[name]
}

// DropDatabase removes a database and all its contents.
func (s *Store) DropDatabase(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dbs, name)
}

// Databases lists database names in sorted order.
func (s *Store) Databases() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DB is one named time-series database, partitioned into measurement-hashed
// shards (see the package comment).
type DB struct {
	name      string
	shards    []*shard
	retention atomic.Int64 // nanoseconds; 0 = keep forever
	newest    atomic.Int64 // unix ns of the newest point ever written
	lastPrune atomic.Int64 // wall-clock unix ns of the last retention sweep
}

// shard is one lock domain of a DB. A measurement is wholly contained in
// one shard.
type shard struct {
	mu           sync.RWMutex
	measurements map[string]*measurement
	scratch      []row // reusable append buffer, guarded by mu
}

// DefaultShards is the shard count used when none is configured: one lock
// domain per schedulable CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// NewDB returns an empty database with the default shard count.
func NewDB(name string) *DB { return NewDBShards(name, 0) }

// NewDBShards returns an empty database with n shards. n <= 0 selects
// DefaultShards.
func NewDBShards(name string, n int) *DB {
	if n <= 0 {
		n = DefaultShards()
	}
	db := &DB{name: name, shards: make([]*shard, n)}
	for i := range db.shards {
		db.shards[i] = &shard{measurements: make(map[string]*measurement)}
	}
	return db
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// ShardCount returns the number of lock domains.
func (db *DB) ShardCount() int { return len(db.shards) }

// shardFor routes a measurement name to its shard.
func (db *DB) shardFor(measurement string) *shard {
	return db.shards[db.shardIndex(measurement)]
}

// FNV-1a parameters (inlined so the hot write path hashes the measurement
// name without the []byte conversion and hasher allocation of hash/fnv).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func (db *DB) shardIndex(measurement string) int {
	if len(db.shards) == 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(measurement); i++ {
		h ^= uint32(measurement[i])
		h *= fnvPrime32
	}
	return int(h % uint32(len(db.shards)))
}

// SetRetention configures the retention window. Points older than d relative
// to the newest inserted point are pruned lazily during writes. Zero disables
// pruning.
func (db *DB) SetRetention(d time.Duration) {
	db.retention.Store(int64(d))
}

type measurement struct {
	name   string
	series map[string]*series
	fields map[string]lineproto.ValueKind
}

type series struct {
	tags   map[string]string
	points []row
	sorted bool
}

type row struct {
	t      int64 // unix nanoseconds
	fields map[string]lineproto.Value
}

// seriesKey builds the canonical identity of a tag set.
func seriesKey(tags map[string]string) string {
	if len(tags) == 0 {
		return ""
	}
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(tags[k])
	}
	return b.String()
}

// WritePoint inserts one point. Points without a timestamp get the current
// time, mirroring InfluxDB's server-side timestamping.
func (db *DB) WritePoint(p lineproto.Point) error {
	return db.WriteBatch([]lineproto.Point{p})
}

// WritePoints inserts a batch of points. It is an alias of WriteBatch, kept
// for callers predating the sharded write path.
func (db *DB) WritePoints(pts []lineproto.Point) error {
	return db.WriteBatch(pts)
}

// WriteBatch is the batched ingest entry point: the whole batch is
// validated, split per shard, and written with one lock acquisition per
// touched shard. Points without a timestamp share one server-side
// timestamp, mirroring InfluxDB.
func (db *DB) WriteBatch(pts []lineproto.Point) error {
	if len(pts) == 0 {
		return nil
	}
	for i := range pts {
		if err := pts[i].Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	now := time.Now()
	defer db.maybePrune()
	if len(db.shards) == 1 {
		db.shards[0].writeBatch(db, pts, now)
		return nil
	}

	// Batches are usually runs of one measurement (one agent flush), so
	// first scan for the single-shard case before paying for bucketing.
	runMeas := pts[0].Measurement
	runIdx := db.shardIndex(runMeas)
	firstIdx := runIdx
	single := true
	for i := 1; i < len(pts); i++ {
		if pts[i].Measurement == runMeas {
			continue
		}
		runMeas = pts[i].Measurement
		runIdx = db.shardIndex(runMeas)
		if runIdx != firstIdx {
			single = false
			break
		}
	}
	if single {
		db.shards[firstIdx].writeBatch(db, pts, now)
		return nil
	}

	buckets := make([][]lineproto.Point, len(db.shards))
	runMeas, runIdx = pts[0].Measurement, firstIdx
	for _, p := range pts {
		if p.Measurement != runMeas {
			runMeas = p.Measurement
			runIdx = db.shardIndex(runMeas)
		}
		buckets[runIdx] = append(buckets[runIdx], p)
	}
	for idx, bucket := range buckets {
		if len(bucket) > 0 {
			db.shards[idx].writeBatch(db, bucket, now)
		}
	}
	return nil
}

// writeBatch inserts pre-validated points under one lock acquisition.
// Consecutive points of the same series are collected in an append buffer
// and committed with a single bulk append.
func (sh *shard) writeBatch(db *DB, pts []lineproto.Point, now time.Time) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	var (
		curM    *measurement
		curName string
		curS    *series
		curKey  string
	)
	pending := sh.scratch[:0]
	commit := func() {
		if curS == nil || len(pending) == 0 {
			return
		}
		if n := len(curS.points); n > 0 && curS.points[n-1].t > pending[0].t {
			curS.sorted = false
		}
		curS.points = append(curS.points, pending...)
		pending = pending[:0]
	}

	newest := int64(minInt64)
	for _, p := range pts {
		if p.Time.IsZero() {
			p.Time = now
		}
		if curM == nil || p.Measurement != curName {
			commit()
			curS = nil
			curName = p.Measurement
			m, ok := sh.measurements[curName]
			if !ok {
				m = &measurement{
					name:   curName,
					series: make(map[string]*series),
					fields: make(map[string]lineproto.ValueKind),
				}
				sh.measurements[curName] = m
			}
			curM = m
		}
		key := seriesKey(p.Tags)
		if curS == nil || key != curKey {
			commit()
			curKey = key
			sr, ok := curM.series[key]
			if !ok {
				tags := make(map[string]string, len(p.Tags))
				for k, v := range p.Tags {
					tags[k] = v
				}
				sr = &series{tags: tags, sorted: true}
				curM.series[key] = sr
			}
			curS = sr
		}
		fields := make(map[string]lineproto.Value, len(p.Fields))
		for k, v := range p.Fields {
			fields[k] = v
			curM.fields[k] = v.Kind()
		}
		ns := p.Time.UnixNano()
		if n := len(pending); n > 0 && pending[n-1].t > ns {
			curS.sorted = false
		}
		pending = append(pending, row{t: ns, fields: fields})
		if ns > newest {
			newest = ns
		}
	}
	commit()
	sh.scratch = pending[:0]

	// Publish the newest timestamp for retention sweeps (atomic max).
	for {
		cur := db.newest.Load()
		if newest <= cur || db.newest.CompareAndSwap(cur, newest) {
			break
		}
	}
}

// maybePrune runs a retention sweep over every shard, at most once per
// second, with the cutoff anchored at the newest inserted point. It is
// called after batch writes, outside any shard lock, so the sweep can take
// each shard lock in turn without nesting.
func (db *DB) maybePrune() {
	ret := db.retention.Load()
	if ret <= 0 {
		return
	}
	now := time.Now().UnixNano()
	last := db.lastPrune.Load()
	if now-last < int64(time.Second) || !db.lastPrune.CompareAndSwap(last, now) {
		return
	}
	cutoff := db.newest.Load() - ret
	for _, sh := range db.shards {
		sh.mu.Lock()
		sh.pruneLocked(cutoff)
		sh.mu.Unlock()
	}
}

func (sh *shard) pruneLocked(beforeNS int64) {
	for mname, m := range sh.measurements {
		for key, sr := range m.series {
			sr.ensureSorted()
			idx := sort.Search(len(sr.points), func(i int) bool { return sr.points[i].t >= beforeNS })
			if idx > 0 {
				sr.points = append([]row(nil), sr.points[idx:]...)
			}
			if len(sr.points) == 0 {
				delete(m.series, key)
			}
		}
		if len(m.series) == 0 {
			delete(sh.measurements, mname)
		}
	}
}

// DropBefore removes all points older than t from every series.
func (db *DB) DropBefore(t time.Time) {
	ns := t.UnixNano()
	for _, sh := range db.shards {
		sh.mu.Lock()
		sh.pruneLocked(ns)
		sh.mu.Unlock()
	}
}

func (sr *series) ensureSorted() {
	if sr.sorted {
		return
	}
	sort.SliceStable(sr.points, func(i, j int) bool { return sr.points[i].t < sr.points[j].t })
	sr.sorted = true
}

// Measurements lists measurement names in sorted order, merged across
// shards.
func (db *DB) Measurements() []string {
	var names []string
	for _, sh := range db.shards {
		sh.mu.RLock()
		for n := range sh.measurements {
			names = append(names, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// FieldKeys lists the field keys seen for a measurement, sorted.
func (db *DB) FieldKeys(measurement string) []string {
	sh := db.shardFor(measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.measurements[measurement]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(m.fields))
	for k := range m.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TagKeys lists tag keys across all series of a measurement, sorted.
func (db *DB) TagKeys(measurement string) []string {
	sh := db.shardFor(measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.measurements[measurement]
	if !ok {
		return nil
	}
	set := map[string]struct{}{}
	for _, sr := range m.series {
		for k := range sr.tags {
			set[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TagValues lists the distinct values of one tag key over a measurement.
// With measurement == "" it scans all measurements across all shards (used
// by the dashboard agent to discover the hosts participating in a job).
func (db *DB) TagValues(meas, key string) []string {
	set := map[string]struct{}{}
	collect := func(m *measurement) {
		for _, sr := range m.series {
			if v, ok := sr.tags[key]; ok {
				set[v] = struct{}{}
			}
		}
	}
	if meas == "" {
		for _, sh := range db.shards {
			sh.mu.RLock()
			for _, m := range sh.measurements {
				collect(m)
			}
			sh.mu.RUnlock()
		}
	} else {
		sh := db.shardFor(meas)
		sh.mu.RLock()
		if m, ok := sh.measurements[meas]; ok {
			collect(m)
		}
		sh.mu.RUnlock()
	}
	vals := make([]string, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// PointCount returns the total number of stored points (all measurements,
// all shards).
func (db *DB) PointCount() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, m := range sh.measurements {
			for _, sr := range m.series {
				n += len(sr.points)
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// TagFilter matches series by tag values. A nil filter matches everything.
// Values are exact matches; the special value "*" requires only that the tag
// key exists.
type TagFilter map[string]string

func (f TagFilter) matches(tags map[string]string) bool {
	for k, want := range f {
		got, ok := tags[k]
		if !ok {
			return false
		}
		if want != "*" && got != want {
			return false
		}
	}
	return true
}

// Query describes a programmatic read. Zero Start/End mean unbounded. If
// Every > 0 points are grouped into aligned time windows and Agg is applied
// per window and field; if Every == 0 and Agg != "" a single aggregate row is
// produced per series; otherwise raw points are returned.
type Query struct {
	Measurement string
	Start, End  time.Time
	Filter      TagFilter
	Fields      []string // nil = all fields
	GroupByTags []string // produce one result series per distinct combination
	Every       time.Duration
	Agg         AggFunc
	Percentile  float64 // used by AggPercentile
	Limit       int     // max rows per series, 0 = unlimited
}

// Row is one result row: a timestamp and one value per requested column.
// Missing values are represented by a nil entry.
type Row struct {
	Time   time.Time
	Values []*lineproto.Value
}

// Series is one result series.
type Series struct {
	Name    string
	Tags    map[string]string // group-by tag values
	Columns []string          // field columns (time excluded)
	Rows    []Row
}

// Select executes a query against the database. A measurement lives wholly
// inside one shard, so only that shard is locked; queries on other
// measurements proceed concurrently.
func (db *DB) Select(q Query) ([]Series, error) {
	sh := db.shardFor(q.Measurement)
	sh.mu.Lock() // full lock: ensureSorted may reorder points
	defer sh.mu.Unlock()
	m, ok := sh.measurements[q.Measurement]
	if !ok {
		return nil, ErrNoMeasurement
	}
	cols := q.Fields
	if len(cols) == 0 {
		cols = make([]string, 0, len(m.fields))
		for k := range m.fields {
			cols = append(cols, k)
		}
		sort.Strings(cols)
	}
	startNS, endNS := rangeNS(q.Start, q.End)

	// Group matching series by the requested group-by tag combination.
	type group struct {
		tags map[string]string
		rows []row
	}
	groups := map[string]*group{}
	var order []string
	for _, sr := range m.series {
		if !q.Filter.matches(sr.tags) {
			continue
		}
		sr.ensureSorted()
		lo := sort.Search(len(sr.points), func(i int) bool { return sr.points[i].t >= startNS })
		hi := sort.Search(len(sr.points), func(i int) bool { return sr.points[i].t > endNS })
		if lo >= hi {
			continue
		}
		gtags := map[string]string{}
		for _, k := range q.GroupByTags {
			gtags[k] = sr.tags[k]
		}
		key := seriesKey(gtags)
		g, ok := groups[key]
		if !ok {
			g = &group{tags: gtags}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, sr.points[lo:hi]...)
	}
	sort.Strings(order)

	var out []Series
	for _, key := range order {
		g := groups[key]
		sort.SliceStable(g.rows, func(i, j int) bool { return g.rows[i].t < g.rows[j].t })
		res := Series{Name: q.Measurement, Tags: g.tags, Columns: cols}
		switch {
		case q.Agg == "" || q.Agg == AggNone:
			for _, r := range g.rows {
				vals := make([]*lineproto.Value, len(cols))
				any := false
				for i, c := range cols {
					if v, ok := r.fields[c]; ok {
						vv := v
						vals[i] = &vv
						any = true
					}
				}
				if any {
					res.Rows = append(res.Rows, Row{Time: time.Unix(0, r.t).UTC(), Values: vals})
				}
			}
		case q.Every > 0:
			res.Rows = windowAggregate(g.rows, cols, q.Agg, q.Percentile, q.Every, startNS, endNS)
		default:
			vals := make([]*lineproto.Value, len(cols))
			for i, c := range cols {
				if v, ok := aggregateColumn(g.rows, c, q.Agg, q.Percentile); ok {
					vv := v
					vals[i] = &vv
				}
			}
			t := q.Start
			if t.IsZero() && len(g.rows) > 0 {
				t = time.Unix(0, g.rows[0].t).UTC()
			}
			res.Rows = append(res.Rows, Row{Time: t, Values: vals})
		}
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		out = append(out, res)
	}
	return out, nil
}
