package tsdb_test

import (
	"fmt"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// ExampleQuery shows the programmatic read path: write a small batch, then
// aggregate it into aligned one-minute windows with DB.Select.
func ExampleQuery() {
	db := tsdb.NewDB("lms")
	var pts []lineproto.Point
	for i := 0; i < 4; i++ {
		pts = append(pts, lineproto.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": "node01"},
			Fields:      map[string]lineproto.Value{"percent": lineproto.Float(float64(80 + i))},
			Time:        time.Unix(int64(i*30), 0).UTC(),
		})
	}
	if err := db.WriteBatch(pts); err != nil {
		fmt.Println(err)
		return
	}
	res, err := db.Select(tsdb.Query{
		Measurement: "cpu",
		Fields:      []string{"percent"},
		Every:       time.Minute,
		Agg:         tsdb.AggMean,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range res[0].Rows {
		fmt.Printf("%s mean=%.1f\n", row.Time.Format("15:04:05"), row.Values[0].FloatVal())
	}
	// Output:
	// 00:00:00 mean=80.5
	// 00:01:00 mean=82.5
}

// ExampleParseQuery shows the InfluxQL layer on top of the same engine:
// the statements a dashboard panel would send to /query.
func ExampleParseQuery() {
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	for i := 0; i < 4; i++ {
		err := db.WritePoint(lineproto.Point{
			Measurement: "likwid_mem_dp",
			Tags:        map[string]string{"hostname": "node01"},
			Fields:      map[string]lineproto.Value{"dp_mflop_s": lineproto.Float(9000 + float64(100*i))},
			Time:        time.Unix(int64(i*60), 0).UTC(),
		})
		if err != nil {
			fmt.Println(err)
			return
		}
	}
	stmts, err := tsdb.ParseQuery(
		"SELECT max(dp_mflop_s) FROM likwid_mem_dp WHERE hostname = 'node01' GROUP BY time(120s)")
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := tsdb.Execute(store, "lms", stmts[0])
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, vals := range res.Series[0].Values {
		fmt.Println(vals[0], vals[1])
	}
	// Output:
	// 1970-01-01T00:00:00Z 9100
	// 1970-01-01T00:02:00Z 9300
}
