package hpm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Formula is a compiled arithmetic expression over counter and environment
// variables, the evaluator behind the METRICS section of a LIKWID
// performance group file. Supported syntax:
//
//	numbers      1.0E-06, 64, .5
//	variables    PMC0, FIXC1, time, inverseClock (letters, digits, '_')
//	operators    + - * / with usual precedence, unary minus
//	parentheses  ( )
//
// Division by zero evaluates to 0 rather than Inf: LIKWID clamps metrics of
// empty measurement intervals, and the monitoring stack depends on that
// (an idle interval must report 0 MFLOP/s, not NaN, for threshold rules).
type Formula struct {
	src string
	rpn []fToken
}

type fTokenKind uint8

const (
	fNum fTokenKind = iota
	fVar
	fOp
)

type fToken struct {
	kind fTokenKind
	num  float64
	name string
	op   byte
}

// CompileFormula parses the expression into reverse Polish notation using
// the shunting-yard algorithm.
func CompileFormula(src string) (*Formula, error) {
	toks, err := lexFormula(src)
	if err != nil {
		return nil, fmt.Errorf("hpm: formula %q: %w", src, err)
	}
	var out, ops []fToken
	prec := func(op byte) int {
		switch op {
		case 'u': // unary minus
			return 3
		case '*', '/':
			return 2
		default:
			return 1
		}
	}
	expectOperand := true
	for _, t := range toks {
		switch t.kind {
		case fNum, fVar:
			if !expectOperand {
				return nil, fmt.Errorf("hpm: formula %q: missing operator", src)
			}
			out = append(out, t)
			expectOperand = false
		case fOp:
			switch t.op {
			case '(':
				ops = append(ops, t)
				expectOperand = true
			case ')':
				if expectOperand {
					return nil, fmt.Errorf("hpm: formula %q: empty parentheses", src)
				}
				for {
					if len(ops) == 0 {
						return nil, fmt.Errorf("hpm: formula %q: unbalanced ')'", src)
					}
					top := ops[len(ops)-1]
					ops = ops[:len(ops)-1]
					if top.op == '(' {
						break
					}
					out = append(out, top)
				}
			default:
				op := t.op
				if expectOperand {
					if op == '-' {
						op = 'u' // unary minus
					} else if op == '+' {
						continue // unary plus is a no-op
					} else {
						return nil, fmt.Errorf("hpm: formula %q: operator %q needs an operand", src, t.op)
					}
				}
				for len(ops) > 0 {
					top := ops[len(ops)-1]
					if top.op == '(' || prec(top.op) < prec(op) || (op == 'u' && top.op == 'u') {
						break
					}
					out = append(out, top)
					ops = ops[:len(ops)-1]
				}
				ops = append(ops, fToken{kind: fOp, op: op})
				expectOperand = true
			}
		}
	}
	if expectOperand {
		return nil, fmt.Errorf("hpm: formula %q: trailing operator", src)
	}
	for len(ops) > 0 {
		top := ops[len(ops)-1]
		ops = ops[:len(ops)-1]
		if top.op == '(' {
			return nil, fmt.Errorf("hpm: formula %q: unbalanced '('", src)
		}
		out = append(out, top)
	}
	f := &Formula{src: src, rpn: out}
	// Validate stack discipline once at compile time.
	depth := 0
	for _, t := range f.rpn {
		switch {
		case t.kind != fOp:
			depth++
		case t.op == 'u':
			if depth < 1 {
				return nil, fmt.Errorf("hpm: formula %q: malformed", src)
			}
		default:
			if depth < 2 {
				return nil, fmt.Errorf("hpm: formula %q: malformed", src)
			}
			depth--
		}
	}
	if depth != 1 {
		return nil, fmt.Errorf("hpm: formula %q: malformed", src)
	}
	return f, nil
}

func lexFormula(src string) ([]fToken, error) {
	var toks []fToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '(' || c == ')':
			toks = append(toks, fToken{kind: fOp, op: c})
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			seenExp := false
			for j < len(src) {
				d := src[j]
				if d >= '0' && d <= '9' || d == '.' {
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp {
					// Exponent, possibly signed.
					seenExp = true
					j++
					if j < len(src) && (src[j] == '+' || src[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q", src[i:j])
			}
			toks = append(toks, fToken{kind: fNum, num: n})
			i = j
		case isVarChar(c):
			j := i
			for j < len(src) && isVarChar(src[j]) {
				j++
			}
			toks = append(toks, fToken{kind: fVar, name: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected byte %q", c)
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty formula")
	}
	return toks, nil
}

func isVarChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':'
}

// Source returns the original expression text.
func (f *Formula) Source() string { return f.src }

// Variables lists the distinct variable names used by the formula.
func (f *Formula) Variables() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, t := range f.rpn {
		if t.kind == fVar {
			if _, ok := seen[t.name]; !ok {
				seen[t.name] = struct{}{}
				out = append(out, t.name)
			}
		}
	}
	return out
}

// Eval computes the formula. Unknown variables are an error; division by
// zero yields 0 (see type doc); NaN operands propagate.
func (f *Formula) Eval(vars map[string]float64) (float64, error) {
	stack := make([]float64, 0, 8)
	for _, t := range f.rpn {
		switch t.kind {
		case fNum:
			stack = append(stack, t.num)
		case fVar:
			v, ok := vars[t.name]
			if !ok {
				return 0, fmt.Errorf("hpm: formula %q: unknown variable %q", f.src, t.name)
			}
			stack = append(stack, v)
		case fOp:
			if t.op == 'u' {
				stack[len(stack)-1] = -stack[len(stack)-1]
				continue
			}
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			var r float64
			switch t.op {
			case '+':
				r = a + b
			case '-':
				r = a - b
			case '*':
				r = a * b
			case '/':
				if b == 0 {
					r = 0
				} else {
					r = a / b
				}
			}
			stack[len(stack)-1] = r
		}
	}
	v := stack[0]
	if math.IsInf(v, 0) {
		// Overflow in intermediate arithmetic: clamp like LIKWID's output.
		return 0, nil
	}
	return v, nil
}

// MustCompileFormula compiles or panics; for the built-in group tables.
func MustCompileFormula(src string) *Formula {
	f, err := CompileFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

// String implements fmt.Stringer.
func (f *Formula) String() string { return "Formula(" + f.src + ")" }

// rpnString renders the compiled form, used in tests.
func (f *Formula) rpnString() string {
	parts := make([]string, len(f.rpn))
	for i, t := range f.rpn {
		switch t.kind {
		case fNum:
			parts[i] = strconv.FormatFloat(t.num, 'g', -1, 64)
		case fVar:
			parts[i] = t.name
		case fOp:
			parts[i] = string(t.op)
		}
	}
	return strings.Join(parts, " ")
}
