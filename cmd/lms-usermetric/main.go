// Command lms-usermetric is the libusermetric command line tool of paper
// Sect. IV: "For use in batch scripts, a command line application can send
// metrics and events from the shell." The miniMD use case of Fig. 3 sends
// its application start/end events with exactly this tool.
//
// Usage:
//
//	lms-usermetric -endpoint http://router:8090 -tag hostname=node01 \
//	               metric pressure 5.9
//	lms-usermetric -endpoint http://router:8090 -tag hostname=node01 \
//	               event "starting miniMD"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/usermetric"
)

type tagFlags map[string]string

func (t tagFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tagFlags) Set(s string) error {
	idx := strings.IndexByte(s, '=')
	if idx <= 0 {
		return fmt.Errorf("tag must be key=value, got %q", s)
	}
	t[s[:idx]] = s[idx+1:]
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lms-usermetric [flags] metric <name> <value> [<field>=<value>...]
  lms-usermetric [flags] event <text>

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	endpoint := flag.String("endpoint", "http://127.0.0.1:8090", "router or database base URL")
	dbName := flag.String("db", "lms", "database name")
	tags := tagFlags{}
	flag.Var(tags, "tag", "default tag key=value (repeatable); include hostname for job tagging")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
	}

	if _, ok := tags["hostname"]; !ok {
		if h, err := os.Hostname(); err == nil {
			tags["hostname"] = h
		}
	}
	client, err := usermetric.New(usermetric.Config{
		Endpoint:      *endpoint,
		Database:      *dbName,
		DefaultTags:   tags,
		FlushInterval: -1, // single shot
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lms-usermetric:", err)
		os.Exit(1)
	}

	switch args[0] {
	case "metric":
		if len(args) < 3 {
			usage()
		}
		name := args[1]
		value, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lms-usermetric: bad value %q: %v\n", args[2], err)
			os.Exit(1)
		}
		if err := client.Metric(name, value, nil); err != nil {
			fmt.Fprintln(os.Stderr, "lms-usermetric:", err)
			os.Exit(1)
		}
	case "event":
		text := strings.Join(args[1:], " ")
		if err := client.Event(text, nil); err != nil {
			fmt.Fprintln(os.Stderr, "lms-usermetric:", err)
			os.Exit(1)
		}
	default:
		usage()
	}
	if err := client.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lms-usermetric: send:", err)
		os.Exit(1)
	}
}
