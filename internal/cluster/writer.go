package cluster

// The replicated write path (DESIGN.md §12). One incoming batch is split
// by the ring into per-node sub-batches (a point goes to all R owners of
// its measurement), the sub-batches fan out concurrently, and the batch
// acknowledges once every owner group reached write-quorum W. A replica
// that failed an acknowledged write gets its sub-batch parked in the
// durable hint queue and replayed on heal, so R-W down replicas cost no
// availability and no acknowledged data.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/lineproto"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/tsdb"
)

// dbSink binds the cluster write path to one database. It implements
// router.Sink, so the router's per-destination batching (one flush per
// database per ingest round) feeds the ring exactly like it fed a single
// lms-db.
type dbSink struct {
	c  *Cluster
	db string
}

// SinkFor returns the replicated write sink of one database. The router
// plugs these in as Primary and per-user sinks; each WritePoints call is
// one replicated batch.
func (c *Cluster) SinkFor(db string) router.Sink {
	return dbSink{c: c, db: db}
}

// WritePoints implements router.Sink.
func (s dbSink) WritePoints(pts []lineproto.Point) error {
	return s.c.writeDB(context.Background(), s.db, pts)
}

// WritePointsContext is the traced form: a trace riding the context gets
// per-owner fan-out spans, and the trace id crosses to each replica via
// X-Lms-Trace. The router's ingest path prefers this interface.
func (s dbSink) WritePointsContext(ctx context.Context, pts []lineproto.Point) error {
	return s.c.writeDB(ctx, s.db, pts)
}

// writeDB replicates one batch into db. It returns nil iff every owner
// group in the batch reached write quorum; on a quorum failure the caller
// (the router) counts the batch dropped and the upstream client retries —
// replay is safe because same-timestamp rewrites are last-write-wins
// upserts.
func (c *Cluster) writeDB(ctx context.Context, db string, pts []lineproto.Point) error {
	if len(pts) == 0 {
		return nil
	}
	tr := obs.TraceFrom(ctx)
	wsp := tr.Start("cluster.write").Attr("db", db).AttrInt("points", int64(len(pts)))
	defer wsp.End()
	c.ensureDatabase(db)

	// Zero timestamps are resolved here, once, by the coordinator: if each
	// replica stamped its own arrival time the copies would diverge and a
	// read failover would change answers. Same rule as the WAL codec — the
	// batch that replicates is the batch that acknowledged.
	now := time.Now().UTC()
	stamped := pts
	for i := range pts {
		if pts[i].Time.IsZero() {
			stamped = make([]lineproto.Point, len(pts))
			copy(stamped, pts)
			for j := range stamped {
				if stamped[j].Time.IsZero() {
					stamped[j].Time = now
				}
			}
			break
		}
	}

	// Split the batch: per-node sub-batches (input order preserved) and
	// per-owner-group point counts for the quorum decision. Batches are
	// usually dominated by a handful of measurements, so the owner lookup
	// is memoized per measurement.
	type group struct {
		owners []string
		points int
	}
	perNode := make(map[string][]lineproto.Point, c.cfg.Replication)
	groups := make(map[string]*group)
	ownersOf := make(map[string][]string)
	for i := range stamped {
		m := stamped[i].Measurement
		owners, ok := ownersOf[m]
		if !ok {
			owners = c.owners(db, m)
			ownersOf[m] = owners
		}
		gk := strings.Join(owners, "\x00")
		g := groups[gk]
		if g == nil {
			g = &group{owners: owners}
			groups[gk] = g
		}
		g.points++
		for _, id := range owners {
			perNode[id] = append(perNode[id], stamped[i])
		}
	}

	// Fan out concurrently; the transport underneath is shared and
	// connection-capped, so a wide ring cannot exhaust sockets.
	errs := make(map[string]error, len(perNode))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, sub := range perNode {
		wg.Add(1)
		go func(id string, sub []lineproto.Point) {
			defer wg.Done()
			sp := tr.Start("cluster.write.node").Attr("peer", id).AttrInt("points", int64(len(sub)))
			err := c.writeNode(ctx, id, db, sub)
			if err != nil {
				sp.Attr("error", err.Error())
			}
			sp.End()
			mu.Lock()
			errs[id] = err
			mu.Unlock()
		}(id, sub)
	}
	wg.Wait()

	// Quorum per owner group: every point's replica set must have at least
	// W successful writes, else the whole batch reports failure upstream.
	var quorumErr error
	for _, g := range groups {
		acked := 0
		var lastErr error
		for _, id := range g.owners {
			if errs[id] == nil {
				acked++
			} else {
				lastErr = errs[id]
			}
		}
		if acked < c.cfg.WriteQuorum {
			c.quorumFailures.Add(1)
			quorumErr = fmt.Errorf("cluster: %d/%d replicas acked %d points (want %d): %w",
				acked, len(g.owners), g.points, c.cfg.WriteQuorum, lastErr)
		}
	}
	if quorumErr != nil {
		return quorumErr
	}

	// The batch is acknowledged. Park the failed replicas' sub-batches as
	// hints; a hint that cannot be parked (full queue, sealed WAL) is
	// counted as dropped but does not un-acknowledge the write — quorum
	// already holds the data.
	for id, err := range errs {
		if err == nil {
			continue
		}
		n := c.nodes[id]
		if n.hints == nil {
			continue
		}
		hsp := tr.Start("cluster.hint.enqueue").Attr("peer", id).AttrInt("points", int64(len(perNode[id])))
		if herr := n.hints.enqueue(db, perNode[id], now.UnixNano()); herr != nil {
			hsp.Attr("error", herr.Error())
			n.hintDropped.Add(1)
			c.logf("cluster: dropping hint for %s (%d points): %v", id, len(perNode[id]), herr)
		} else {
			c.kickDrain()
		}
		hsp.End()
	}
	return nil
}

// writeNode delivers one sub-batch to a single replica, keeping the
// per-peer counters.
func (c *Cluster) writeNode(ctx context.Context, id, db string, pts []lineproto.Point) error {
	n := c.nodes[id]
	var err error
	if n.local != nil {
		var ldb *tsdb.DB
		ldb, err = n.local.OpenDatabase(db)
		if err == nil {
			err = ldb.WriteBatchContext(ctx, pts)
		}
	} else {
		err = c.clientFor(id, db).WritePointsContext(ctx, pts)
	}
	if err != nil {
		n.batchesErr.Add(1)
		n.pointsErr.Add(uint64(len(pts)))
		return err
	}
	n.batchesOK.Add(1)
	n.pointsOK.Add(uint64(len(pts)))
	return nil
}
