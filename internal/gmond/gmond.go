// Package gmond emulates the Ganglia monitoring daemon's XML interface and
// provides the pulling proxy that feeds it into the LMS router.
//
// The paper integrates existing monitoring infrastructure by pulling: "For
// data that needs to be pulled from other sources, like the XML-interface of
// Ganglia's monitoring daemon gmond, a pulling proxy can push the data into
// the router" (Sect. III-B). This package implements both halves: a Server
// that renders the gmond XML dump over TCP (gmond answers every connection
// on port 8649 with a full state dump), and a Proxy that periodically
// connects, parses the XML and pushes the metrics as line-protocol points.
package gmond

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/lineproto"
)

// Metric is one gmond metric value.
type Metric struct {
	Name  string
	Value float64
	Units string
}

// Server holds the cluster state and serves the XML dump.
type Server struct {
	cluster string

	mu    sync.Mutex
	hosts map[string]map[string]Metric // host -> metric name -> metric
	seen  map[string]time.Time

	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup
}

// NewServer creates a gmond emulation for one cluster.
func NewServer(cluster string) *Server {
	return &Server{
		cluster: cluster,
		hosts:   make(map[string]map[string]Metric),
		seen:    make(map[string]time.Time),
	}
}

// Update stores metrics for a host, as if gmond received a UDP metric
// packet from it.
func (s *Server) Update(host string, reported time.Time, metrics []Metric) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hm, ok := s.hosts[host]
	if !ok {
		hm = make(map[string]Metric)
		s.hosts[host] = hm
	}
	for _, m := range metrics {
		hm[m.Name] = m
	}
	s.seen[host] = reported
}

// xmlDoc mirrors the gmond XML structure (the subset the proxy reads).
type xmlDoc struct {
	XMLName  xml.Name     `xml:"GANGLIA_XML"`
	Version  string       `xml:"VERSION,attr"`
	Clusters []xmlCluster `xml:"CLUSTER"`
}

type xmlCluster struct {
	Name  string    `xml:"NAME,attr"`
	Hosts []xmlHost `xml:"HOST"`
}

type xmlHost struct {
	Name     string      `xml:"NAME,attr"`
	Reported int64       `xml:"REPORTED,attr"`
	Metrics  []xmlMetric `xml:"METRIC"`
}

type xmlMetric struct {
	Name  string `xml:"NAME,attr"`
	Val   string `xml:"VAL,attr"`
	Type  string `xml:"TYPE,attr"`
	Units string `xml:"UNITS,attr"`
}

// RenderXML produces the gmond state dump.
func (s *Server) RenderXML() ([]byte, error) {
	s.mu.Lock()
	doc := xmlDoc{Version: "3.7.2", Clusters: []xmlCluster{{Name: s.cluster}}}
	for host, metrics := range s.hosts {
		xh := xmlHost{Name: host, Reported: s.seen[host].Unix()}
		for _, m := range metrics {
			xh.Metrics = append(xh.Metrics, xmlMetric{
				Name:  m.Name,
				Val:   strconv.FormatFloat(m.Value, 'g', -1, 64),
				Type:  "double",
				Units: m.Units,
			})
		}
		doc.Clusters[0].Hosts = append(doc.Clusters[0].Hosts, xh)
	}
	s.mu.Unlock()
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("gmond: render: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// ListenAndServe starts the TCP listener; every accepted connection receives
// the full XML dump and is closed, exactly like gmond's port 8649.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gmond: listen: %w", err)
	}
	s.ln = ln
	s.done = make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.done:
					return
				default:
					continue
				}
			}
			s.wg.Add(1)
			go func(c net.Conn) {
				defer s.wg.Done()
				defer c.Close()
				if dump, err := s.RenderXML(); err == nil {
					w := bufio.NewWriter(c)
					_, _ = w.Write(dump)
					_ = w.Flush()
				}
			}(conn)
		}
	}()
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	close(s.done)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// ParseXML decodes a gmond dump into per-host metrics.
func ParseXML(data []byte) (map[string][]Metric, error) {
	var doc xmlDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("gmond: parse: %w", err)
	}
	out := map[string][]Metric{}
	for _, cl := range doc.Clusters {
		for _, h := range cl.Hosts {
			for _, m := range h.Metrics {
				v, err := strconv.ParseFloat(m.Val, 64)
				if err != nil {
					continue // non-numeric gmond metrics are skipped
				}
				out[h.Name] = append(out[h.Name], Metric{Name: m.Name, Value: v, Units: m.Units})
			}
		}
	}
	return out, nil
}

// Proxy pulls a gmond XML endpoint and pushes the metrics into the router.
type Proxy struct {
	// Addr is the gmond TCP address.
	Addr string
	// Ingest receives the converted points (typically Router.Ingest or an
	// HTTP write wrapper).
	Ingest func(pts []lineproto.Point) error
	// MeasurementPrefix prefixes gmond metric names (default "ganglia_").
	MeasurementPrefix string
	// Timeout bounds one pull (default 5s).
	Timeout time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Pull performs one pull-convert-push cycle and returns the number of
// points pushed.
func (p *Proxy) Pull() (int, error) {
	if p.Ingest == nil {
		return 0, fmt.Errorf("gmond: proxy has no Ingest")
	}
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	prefix := p.MeasurementPrefix
	if prefix == "" {
		prefix = "ganglia_"
	}
	now := time.Now()
	if p.Now != nil {
		now = p.Now()
	}
	conn, err := net.DialTimeout("tcp", p.Addr, timeout)
	if err != nil {
		return 0, fmt.Errorf("gmond: dial: %w", err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	var data []byte
	buf := make([]byte, 32<<10)
	for {
		n, err := conn.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break // gmond closes after the dump; EOF is the terminator
		}
		if len(data) > 64<<20 {
			return 0, fmt.Errorf("gmond: dump too large")
		}
	}
	hosts, err := ParseXML(data)
	if err != nil {
		return 0, err
	}
	var pts []lineproto.Point
	for host, metrics := range hosts {
		for _, m := range metrics {
			pts = append(pts, lineproto.Point{
				Measurement: prefix + m.Name,
				Tags:        map[string]string{"hostname": host},
				Fields:      map[string]lineproto.Value{"value": lineproto.Float(m.Value)},
				Time:        now,
			})
		}
	}
	if len(pts) == 0 {
		return 0, nil
	}
	if err := p.Ingest(pts); err != nil {
		return 0, fmt.Errorf("gmond: ingest: %w", err)
	}
	return len(pts), nil
}

// Run pulls every interval until stop is closed; errors are delivered to
// onError (may be nil).
func (p *Proxy) Run(interval time.Duration, stop <-chan struct{}, onError func(error)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := p.Pull(); err != nil && onError != nil {
				onError(err)
			}
		case <-stop:
			return
		}
	}
}
