package tsdb

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/lineproto"
)

// This file carries the serial reference engine — the seed implementation
// of Select, aggregateColumn and windowAggregate, kept verbatim as a
// test-only oracle over naive per-point row maps — and the equivalence
// suites pinning the two-phase partial-merging columnar engine
// (select.go, column.go) to it. The row type itself now lives here: the
// oracle materializes rows by decoding the columnar runs, so it doubles
// as a storage round-trip check.

// row is the naive per-point representation the seed engine stored; the
// oracle decodes columnar runs back into it.
type row struct {
	t      int64 // unix nanoseconds
	fields map[string]lineproto.Value
}

// decodeRun materializes one columnar run of a measurement back into
// rows, reconstructing every field value through the interned tables.
func decodeRun(m *measurement, run *colRun) []row {
	out := make([]row, len(run.ts))
	for i := range run.ts {
		fields := make(map[string]lineproto.Value)
		for ci := range run.cols {
			if v, ok := run.cols[ci].valueAt(i, m.strs.vals); ok {
				fields[run.cols[ci].name] = v
			}
		}
		out[i] = row{t: run.ts[i], fields: fields}
	}
	return out
}

// percentile is percentileSorted over an unsorted input (copied, so the
// input is not modified).
func percentile(nums []float64, p float64) float64 {
	s := append([]float64(nil), nums...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// aggregateColumn applies agg to the named column of the given rows.
// Rows lacking the column are skipped. String columns support only
// count/first/last. The bool result is false when no value was produced.
func aggregateColumn(rows []row, col string, agg AggFunc, pct float64) (lineproto.Value, bool) {
	switch agg {
	case AggCount:
		n := int64(0)
		for _, r := range rows {
			if _, ok := r.fields[col]; ok {
				n++
			}
		}
		if n == 0 {
			return lineproto.Value{}, false
		}
		return lineproto.Int(n), true
	case AggFirst:
		for _, r := range rows {
			if v, ok := r.fields[col]; ok {
				return v, true
			}
		}
		return lineproto.Value{}, false
	case AggLast:
		for i := len(rows) - 1; i >= 0; i-- {
			if v, ok := rows[i].fields[col]; ok {
				return v, true
			}
		}
		return lineproto.Value{}, false
	case AggDerivative:
		var firstT, lastT int64
		var firstV, lastV float64
		n := 0
		for _, r := range rows {
			v, ok := r.fields[col]
			if !ok || v.Kind() == lineproto.KindString {
				continue
			}
			if n == 0 {
				firstT, firstV = r.t, v.FloatVal()
			}
			lastT, lastV = r.t, v.FloatVal()
			n++
		}
		if n < 2 || lastT == firstT {
			return lineproto.Value{}, false
		}
		dt := float64(lastT-firstT) / 1e9
		return lineproto.Float((lastV - firstV) / dt), true
	}

	nums := make([]float64, 0, len(rows))
	for _, r := range rows {
		v, ok := r.fields[col]
		if !ok || v.Kind() == lineproto.KindString {
			continue
		}
		nums = append(nums, v.FloatVal())
	}
	if len(nums) == 0 {
		return lineproto.Value{}, false
	}
	switch agg {
	case AggSum:
		return lineproto.Float(sum(nums)), true
	case AggMean:
		return lineproto.Float(sum(nums) / float64(len(nums))), true
	case AggMin:
		m := nums[0]
		for _, v := range nums[1:] {
			if v < m {
				m = v
			}
		}
		return lineproto.Float(m), true
	case AggMax:
		m := nums[0]
		for _, v := range nums[1:] {
			if v > m {
				m = v
			}
		}
		return lineproto.Float(m), true
	case AggSpread:
		lo, hi := nums[0], nums[0]
		for _, v := range nums[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lineproto.Float(hi - lo), true
	case AggStddev:
		if len(nums) < 2 {
			return lineproto.Float(0), true
		}
		mean := sum(nums) / float64(len(nums))
		var ss float64
		for _, v := range nums {
			d := v - mean
			ss += d * d
		}
		return lineproto.Float(math.Sqrt(ss / float64(len(nums)-1))), true
	case AggMedian:
		return lineproto.Float(percentile(nums, 50)), true
	case AggPercentile:
		return lineproto.Float(percentile(nums, pct)), true
	default:
		return lineproto.Value{}, false
	}
}

// windowAggregate buckets rows into aligned windows of width every and
// applies agg per column. Empty windows are skipped (InfluxDB fill(none)).
func windowAggregate(rows []row, cols []string, agg AggFunc, pct float64, every time.Duration, startNS, endNS int64) []Row {
	if len(rows) == 0 {
		return nil
	}
	w := every.Nanoseconds()
	if w <= 0 {
		return nil
	}
	if startNS == minInt64 {
		startNS = rows[0].t
	}
	first := rows[0].t
	if first < startNS {
		first = startNS
	}
	align := func(t int64) int64 {
		if t >= 0 {
			return t - t%w
		}
		return t - (w+t%w)%w
	}
	var out []Row
	i := 0
	for winStart := align(first); i < len(rows); winStart += w {
		winEnd := winStart + w
		j := i
		for j < len(rows) && rows[j].t < winEnd {
			j++
		}
		if j > i {
			vals := make([]*lineproto.Value, len(cols))
			for ci, c := range cols {
				if v, ok := aggregateColumn(rows[i:j], c, agg, pct); ok {
					vv := v
					vals[ci] = &vv
				}
			}
			out = append(out, Row{Time: time.Unix(0, winStart).UTC(), Values: vals})
			i = j
		}
		if winStart > endNS {
			break
		}
	}
	return out
}

// referenceSelect is the pre-pushdown serial engine: lock the shard, merge
// every matching row into per-group slices, stable-sort by time, aggregate
// with aggregateColumn/windowAggregate. It is kept verbatim as the oracle
// for the partial-merging engine behind DB.Select.
func referenceSelect(db *DB, q Query) ([]Series, error) {
	sh := db.shardFor(q.Measurement)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.measurements[q.Measurement]
	if !ok {
		return nil, ErrNoMeasurement
	}
	cols := q.Fields
	if len(cols) == 0 {
		cols = make([]string, 0, len(m.fields))
		for k := range m.fields {
			cols = append(cols, k)
		}
		sort.Strings(cols)
	}
	startNS, endNS := rangeNS(q.Start, q.End)

	type group struct {
		tags map[string]string
		rows []row
	}
	groups := map[string]*group{}
	var order []string
	// Deterministic series order (the historical engine iterated the map).
	keys := make([]string, 0, len(m.series))
	for key := range m.series {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, skey := range keys {
		sr := m.series[skey]
		if !q.Filter.matches(sr.tags) {
			continue
		}
		var any bool
		var rows []row
		for _, run := range sr.runs {
			lo := sort.Search(len(run.ts), func(i int) bool { return run.ts[i] >= startNS })
			hi := sort.Search(len(run.ts), func(i int) bool { return run.ts[i] > endNS })
			if lo < hi {
				rows = append(rows, decodeRun(m, run)[lo:hi]...)
				any = true
			}
		}
		if !any {
			continue
		}
		gtags := map[string]string{}
		for _, k := range q.GroupByTags {
			gtags[k] = sr.tags[k]
		}
		key := seriesKey(gtags)
		g, ok := groups[key]
		if !ok {
			g = &group{tags: gtags}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, rows...)
	}
	sort.Strings(order)

	var out []Series
	for _, key := range order {
		g := groups[key]
		sort.SliceStable(g.rows, func(i, j int) bool { return g.rows[i].t < g.rows[j].t })
		res := Series{Name: q.Measurement, Tags: g.tags, Columns: cols}
		switch {
		case q.Agg == "" || q.Agg == AggNone:
			for _, r := range g.rows {
				vals := make([]*lineproto.Value, len(cols))
				any := false
				for i, c := range cols {
					if v, ok := r.fields[c]; ok {
						vv := v
						vals[i] = &vv
						any = true
					}
				}
				if any {
					res.Rows = append(res.Rows, Row{Time: time.Unix(0, r.t).UTC(), Values: vals})
				}
			}
		case q.Every > 0:
			res.Rows = windowAggregate(g.rows, cols, q.Agg, q.Percentile, q.Every, startNS, endNS)
		default:
			vals := make([]*lineproto.Value, len(cols))
			for i, c := range cols {
				if v, ok := aggregateColumn(g.rows, c, q.Agg, q.Percentile); ok {
					vv := v
					vals[i] = &vv
				}
			}
			t := q.Start
			if t.IsZero() && len(g.rows) > 0 {
				t = time.Unix(0, g.rows[0].t).UTC()
			}
			res.Rows = append(res.Rows, Row{Time: t, Values: vals})
		}
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		out = append(out, res)
	}
	return out, nil
}

// allAggs lists every supported aggregator.
var allAggs = []AggFunc{
	AggCount, AggSum, AggMean, AggMin, AggMax, AggFirst, AggLast,
	AggSpread, AggStddev, AggMedian, AggPercentile, AggDerivative,
}

// seedSelectDB builds a deterministic multi-series dataset: 6 series over
// hostname/rack, a numeric column, an int column, a sparse string column,
// and per-series timestamp offsets so no two series share a timestamp.
func seedSelectDB(t testing.TB, shards int) *DB {
	t.Helper()
	db := NewDBShards("lms", shards)
	db.SetQueryCacheTTL(0)
	rnd := uint64(1)
	next := func() float64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return float64(rnd%10000) / 10.0
	}
	var pts []lineproto.Point
	for s := 0; s < 6; s++ {
		host := fmt.Sprintf("h%d", s)
		rack := fmt.Sprintf("r%d", s%2)
		for i := 0; i < 200; i++ {
			fields := map[string]lineproto.Value{
				"value": lineproto.Float(next()),
				"ops":   lineproto.Int(int64(i % 17)),
			}
			if i%13 == 0 {
				fields["note"] = lineproto.String(fmt.Sprintf("mark-%d", i))
			}
			pts = append(pts, lineproto.Point{
				Measurement: "m",
				Tags:        map[string]string{"hostname": host, "rack": rack},
				Fields:      fields,
				// Interleaved, unique per series: step 7s, offset s ns.
				Time: time.Unix(0, int64(i)*7e9+int64(s)).UTC(),
			})
		}
	}
	// Write in two halves with the second half out of order to exercise the
	// copy-on-reorder write path as well.
	if err := db.WriteBatch(pts[len(pts)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBatch(pts[:len(pts)/2]); err != nil {
		t.Fatal(err)
	}
	return db
}

func selectQueries() []Query {
	start := time.Unix(0, 0).UTC()
	end := time.Unix(0, 200*7e9).UTC()
	var qs []Query
	for _, agg := range allAggs {
		qs = append(qs,
			Query{Measurement: "m", Agg: agg, Percentile: 90},
			Query{Measurement: "m", Agg: agg, Percentile: 37.5, Every: 60 * time.Second, Start: start, End: end},
			Query{Measurement: "m", Agg: agg, Percentile: 99, GroupByTags: []string{"rack"}},
			Query{Measurement: "m", Agg: agg, Percentile: 50, GroupByTags: []string{"hostname"}, Every: 45 * time.Second},
			Query{Measurement: "m", Agg: agg, Percentile: 75, Filter: TagFilter{"rack": "r1"}, Every: 90 * time.Second, Limit: 5},
		)
	}
	qs = append(qs,
		Query{Measurement: "m"},
		Query{Measurement: "m", Limit: 7},
		Query{Measurement: "m", GroupByTags: []string{"rack"}, Limit: 11},
		Query{Measurement: "m", Fields: []string{"value", "note"}, Filter: TagFilter{"hostname": "h3"}},
	)
	return qs
}

// TestSelectParallelByteIdenticalToSerial checks the acceptance property
// of the two-phase engine: the result with a parallel worker pool is
// byte-identical to the serial engine (workers=1) for every AggFunc and
// query shape.
func TestSelectParallelByteIdenticalToSerial(t *testing.T) {
	t.Parallel()
	serial := seedSelectDB(t, 4)
	serial.SetQueryWorkers(1)
	parallel := seedSelectDB(t, 4)
	parallel.SetQueryWorkers(8)
	for _, q := range selectQueries() {
		want, err1 := serial.Select(q)
		got, err2 := parallel.Select(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("agg %q: errors %v / %v", q.Agg, err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("agg %q every=%v group=%v: parallel result differs from serial\nserial:   %+v\nparallel: %+v",
				q.Agg, q.Every, q.GroupByTags, want, got)
		}
	}
}

// TestSelectMatchesReferenceEngine checks the merged-partial engine
// against the serial concat-sort-aggregate oracle for every AggFunc:
// exactly for the discrete and order-insensitive aggregators, within float
// tolerance for the compensated-sum family (whose merge reorders float
// additions).
func TestSelectMatchesReferenceEngine(t *testing.T) {
	t.Parallel()
	db := seedSelectDB(t, 4)
	exact := map[AggFunc]bool{
		AggCount: true, AggMin: true, AggMax: true, AggSpread: true,
		AggFirst: true, AggLast: true, AggMedian: true, AggPercentile: true,
		AggDerivative: true, AggNone: true,
	}
	for _, q := range selectQueries() {
		want, err1 := referenceSelect(db, q)
		got, err2 := db.Select(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("agg %q: errors %v / %v", q.Agg, err1, err2)
		}
		if len(want) != len(got) {
			t.Fatalf("agg %q: series %d != %d", q.Agg, len(got), len(want))
		}
		for si := range want {
			ws, gs := want[si], got[si]
			if !reflect.DeepEqual(ws.Tags, gs.Tags) || !reflect.DeepEqual(ws.Columns, gs.Columns) {
				t.Fatalf("agg %q series %d: header mismatch", q.Agg, si)
			}
			if len(ws.Rows) != len(gs.Rows) {
				t.Fatalf("agg %q series %d: rows %d != %d", q.Agg, si, len(gs.Rows), len(ws.Rows))
			}
			for ri := range ws.Rows {
				wr, gr := ws.Rows[ri], gs.Rows[ri]
				if !wr.Time.Equal(gr.Time) {
					t.Fatalf("agg %q series %d row %d: time %v != %v", q.Agg, si, ri, gr.Time, wr.Time)
				}
				for ci := range wr.Values {
					wv, gv := wr.Values[ci], gr.Values[ci]
					if (wv == nil) != (gv == nil) {
						t.Fatalf("agg %q series %d row %d col %d: nil mismatch (%v vs %v)",
							q.Agg, si, ri, ci, wv, gv)
					}
					if wv == nil {
						continue
					}
					if exact[q.Agg] {
						if !reflect.DeepEqual(*wv, *gv) {
							t.Fatalf("agg %q series %d row %d col %d: %v != %v",
								q.Agg, si, ri, ci, gv, wv)
						}
						continue
					}
					a, b := wv.FloatVal(), gv.FloatVal()
					if diff := math.Abs(a - b); diff > 1e-9*math.Max(1, math.Abs(a)) {
						t.Fatalf("agg %q series %d row %d col %d: %g != %g (diff %g)",
							q.Agg, si, ri, ci, b, a, diff)
					}
				}
			}
		}
	}
}

// TestSelectRawLimitPushdown checks that the per-series Limit clamp in
// phase 1 preserves the truncation semantics over multi-series groups.
func TestSelectRawLimitPushdown(t *testing.T) {
	t.Parallel()
	db := seedSelectDB(t, 2)
	for _, limit := range []int{1, 3, 10, 199, 200, 5000} {
		q := Query{Measurement: "m", Limit: limit}
		want, err := referenceSelect(db, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("limit %d: pushdown result differs from reference", limit)
		}
	}
}

// TestSelectLimitWithFieldProjection guards against over-eager Limit
// pushdown: when a field projection is requested, rows lacking the fields
// emit nothing, so the snapshot must not be clamped by raw row count —
// matching rows further down the series would be lost.
func TestSelectLimitWithFieldProjection(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 2)
	db.SetQueryCacheTTL(0)
	var pts []lineproto.Point
	for i := 0; i < 40; i++ {
		field := "a"
		if i >= 20 {
			field = "b"
		}
		pts = append(pts, lineproto.Point{
			Measurement: "m",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{field: lineproto.Float(float64(i))},
			Time:        time.Unix(int64(i), 0),
		})
	}
	if err := db.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
	q := Query{Measurement: "m", Fields: []string{"b"}, Limit: 5}
	want, err := referenceSelect(db, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 || len(want[0].Rows) != 5 {
		t.Fatalf("reference sanity: %+v", want)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("projected limit differs from reference:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestQueryCacheHitAndInvalidation covers the TTL'd result cache: repeated
// queries hit, a write to the queried measurement invalidates, a write to
// an unrelated measurement does not, and DropBefore invalidates globally.
func TestQueryCacheHitAndInvalidation(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 4)
	db.SetQueryCacheTTL(time.Hour)
	write := func(meas string, val float64, sec int64) {
		t.Helper()
		err := db.WriteBatch([]lineproto.Point{{
			Measurement: meas,
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{"value": lineproto.Float(val)},
			Time:        time.Unix(sec, 0),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	sumOf := func() float64 {
		t.Helper()
		res, err := db.Select(Query{Measurement: "m1", Agg: AggSum})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Rows[0].Values[0].FloatVal()
	}

	write("m1", 1, 1)
	write("m1", 2, 2)
	write("m2", 100, 1)

	if got := sumOf(); got != 3 {
		t.Fatalf("sum = %v, want 3", got)
	}
	if got := sumOf(); got != 3 {
		t.Fatalf("cached sum = %v, want 3", got)
	}
	hits, misses := db.QueryCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats after repeat = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A write to an unrelated measurement must not invalidate.
	write("m2", 200, 2)
	if got := sumOf(); got != 3 {
		t.Fatalf("sum after unrelated write = %v, want 3", got)
	}
	if hits, _ = db.QueryCacheStats(); hits != 2 {
		t.Fatalf("hits after unrelated write = %d, want 2", hits)
	}

	// A write to the queried measurement must invalidate and the fresh
	// result must include the new point.
	write("m1", 4, 3)
	if got := sumOf(); got != 7 {
		t.Fatalf("sum after write = %v, want 7", got)
	}
	hits, misses = db.QueryCacheStats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats after invalidation = %d hits / %d misses, want 2/2", hits, misses)
	}

	// DropBefore invalidates every cached entry.
	db.DropBefore(time.Unix(2, 0))
	if got := sumOf(); got != 6 {
		t.Fatalf("sum after drop = %v, want 6", got)
	}
	if _, misses = db.QueryCacheStats(); misses != 3 {
		t.Fatalf("misses after drop = %d, want 3", misses)
	}
}

// TestQueryCacheKeyCollision guards the normalized-key framing: queries
// differing only in how list components would concatenate must not share
// a cache entry.
func TestQueryCacheKeyCollision(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(time.Hour)
	err := db.WriteBatch([]lineproto.Point{{
		Measurement: "m",
		Tags:        map[string]string{"hostname": "h1"},
		Fields: map[string]lineproto.Value{
			"a": lineproto.Float(1),
			"b": lineproto.Float(2),
		},
		Time: time.Unix(1, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := db.Select(Query{Measurement: "m", Fields: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 1 || len(r1[0].Rows) != 1 {
		t.Fatalf("sanity: %+v", r1)
	}
	// "a,b" is one (nonexistent) column, not two: no rows may come back,
	// and in particular not the cached result of the two-column query.
	r2, err := db.Select(Query{Measurement: "m", Fields: []string{"a,b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2) != 0 && len(r2[0].Rows) != 0 {
		t.Fatalf("colliding cache key served wrong result: %+v", r2)
	}
}

// TestQueryCacheDisabled checks that a zero TTL bypasses the cache.
func TestQueryCacheDisabled(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(0)
	err := db.WriteBatch([]lineproto.Point{{
		Measurement: "m",
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(1)},
		Time:        time.Unix(1, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Select(Query{Measurement: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := db.QueryCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache counted %d hits / %d misses", hits, misses)
	}
}

// TestQueryCacheExpiry checks that entries stop being served after the TTL.
func TestQueryCacheExpiry(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(time.Millisecond)
	err := db.WriteBatch([]lineproto.Point{{
		Measurement: "m",
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(1)},
		Time:        time.Unix(1, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Select(Query{Measurement: "m"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := db.Select(Query{Measurement: "m"}); err != nil {
		t.Fatal(err)
	}
	if _, misses := db.QueryCacheStats(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (entry should have expired)", misses)
	}
}
