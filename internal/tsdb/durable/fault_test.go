package durable

// Fault-injection sweeps (DESIGN.md §11). The style follows the
// cut-at-every-byte recovery tests: rehearse a deterministic workload
// once on a clean faultfs to learn how many filesystem operations it
// issues, then re-run it once per operation index with a fault injected
// exactly there — EIO, ENOSPC, a short write, or a power cut — and
// assert the ack invariant every time:
//
//   - every acknowledged append survives recovery (byte-identical,
//     in order), and
//   - recovery only ever yields a prefix of the attempted appends —
//     a failed append may survive (it was fully framed before the
//     fault), but nothing is reordered, invented, or half-replayed.
//
// Under FsyncPerBatch the invariant additionally holds across a power
// cut that discards every unsynced byte: an append is only acknowledged
// after its fsync, so the acked prefix is durable by construction — or
// the log seals and the ack never happens.

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/faultfs"
)

const faultWALDir = "wal"

// faultPayloads is the deterministic append sequence: varying sizes so
// frames straddle write boundaries, small segments so the sweep crosses
// size-based rotation, plus one explicit Rotate mid-stream (the
// checkpoint pattern).
func faultPayloads() [][]byte {
	out := make([][]byte, 10)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("payload-%02d-%s", i, bytes.Repeat([]byte{byte('a' + i)}, 5*i)))
	}
	return out
}

// driveWAL runs the workload on f, returning the payloads whose Append
// was acknowledged. Failed appends keep going: the sweep wants to see
// the sealed log refuse them, not stop at the first error. The WAL is
// abandoned with Abort — the no-flush path a crash takes.
func driveWAL(f *faultfs.FS) (acked [][]byte) {
	o := Options{Fsync: FsyncPerBatch, SegmentBytes: 96, FS: f}
	w, err := OpenWAL(faultWALDir, 0, o, nil)
	if err != nil {
		return nil
	}
	for i, p := range faultPayloads() {
		if i == 6 {
			_, _ = w.Rotate()
		}
		if _, _, err := w.Append(p); err == nil {
			acked = append(acked, p)
		}
	}
	w.Abort()
	return acked
}

// recoverWAL reopens the log with faults disarmed and returns the
// replayed payloads.
func recoverWAL(t *testing.T, f *faultfs.FS) [][]byte {
	t.Helper()
	var got [][]byte
	w, err := OpenWAL(faultWALDir, 0, Options{Fsync: FsyncPerBatch, FS: f}, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	w.Abort()
	return got
}

// assertAckedPrefix enforces the two-sided oracle described in the file
// comment.
func assertAckedPrefix(t *testing.T, desc string, acked, replayed [][]byte) {
	t.Helper()
	attempted := faultPayloads()
	if len(replayed) < len(acked) {
		t.Fatalf("%s: %d acked appends but only %d replayed", desc, len(acked), len(replayed))
	}
	if len(replayed) > len(attempted) {
		t.Fatalf("%s: replay invented %d records (attempted %d)", desc, len(replayed), len(attempted))
	}
	for i, p := range replayed {
		if !bytes.Equal(p, attempted[i]) {
			t.Fatalf("%s: replayed[%d] = %q, want %q", desc, i, p, attempted[i])
		}
	}
}

// driveWALClean runs the workload expecting every append to ack.
func driveWALClean(t *testing.T, f *faultfs.FS) [][]byte {
	t.Helper()
	acked := driveWAL(f)
	if len(acked) != len(faultPayloads()) {
		t.Fatalf("clean run acked %d/%d appends", len(acked), len(faultPayloads()))
	}
	return acked
}

// rehearseWAL counts the operations of a clean run (and sanity-checks
// that a fault-free workload acks everything).
func rehearseWAL(t *testing.T) int64 {
	t.Helper()
	f := faultfs.New()
	acked := driveWALClean(t, f)
	assertAckedPrefix(t, "rehearsal", acked, recoverWAL(t, f))
	return f.Ops()
}

// TestWALFaultSweepEIO injects a transient EIO at every operation index.
// The process survives (no power cut): recovery sees the volatile state,
// torn tail and all.
func TestWALFaultSweepEIO(t *testing.T) {
	ops := rehearseWAL(t)
	for idx := int64(0); idx < ops; idx++ {
		f := faultfs.New()
		f.FailOp(idx, faultfs.ErrIO)
		acked := driveWAL(f)
		f.SetInject(nil)
		assertAckedPrefix(t, fmt.Sprintf("EIO at op %d", idx), acked, recoverWAL(t, f))
	}
}

// TestWALFaultSweepShortWrite makes the write at every index land only
// half its bytes — the torn-frame case the CRC framing exists for.
// Non-write operations at the index fail outright instead.
func TestWALFaultSweepShortWrite(t *testing.T) {
	ops := rehearseWAL(t)
	for idx := int64(0); idx < ops; idx++ {
		f := faultfs.New()
		f.SetInject(func(i faultfs.Info) *faultfs.Fault {
			if i.Index != idx {
				return nil
			}
			if i.Op == faultfs.OpWrite {
				return &faultfs.Fault{Err: faultfs.ErrIO, Keep: i.Size / 2}
			}
			return &faultfs.Fault{Err: faultfs.ErrIO}
		})
		acked := driveWAL(f)
		f.SetInject(nil)
		assertAckedPrefix(t, fmt.Sprintf("short write at op %d", idx), acked, recoverWAL(t, f))
	}
}

// TestWALFaultSweepENOSPC fills the disk at every byte budget from zero
// to one past the workload's total footprint.
func TestWALFaultSweepENOSPC(t *testing.T) {
	rehearse := faultfs.New()
	total := int64(0)
	rehearse.SetInject(func(i faultfs.Info) *faultfs.Fault {
		if i.Op == faultfs.OpWrite {
			total += int64(i.Size)
		}
		return nil
	})
	if acked := driveWAL(rehearse); len(acked) != len(faultPayloads()) {
		t.Fatalf("clean rehearsal acked %d/%d appends", len(acked), len(faultPayloads()))
	}
	for budget := int64(0); budget <= total+1; budget++ {
		f := faultfs.New()
		f.SetDiskBudget(budget)
		acked := driveWAL(f)
		f.SetDiskBudget(-1) // the operator freed disk space
		assertAckedPrefix(t, fmt.Sprintf("ENOSPC after %d bytes", budget), acked, recoverWAL(t, f))
	}
}

// TestWALFaultSweepPowerCut kills the machine at every operation index:
// the op and everything after it fail, then Crash() discards every
// unsynced byte and every unsynced directory entry before recovery.
// FsyncPerBatch acks only after fsync, so the acked prefix must still be
// there.
func TestWALFaultSweepPowerCut(t *testing.T) {
	ops := rehearseWAL(t)
	for idx := int64(0); idx <= ops; idx++ {
		f := faultfs.New()
		f.KillAtOp(idx)
		acked := driveWAL(f)
		f.SetInject(nil)
		f.Crash()
		assertAckedPrefix(t, fmt.Sprintf("power cut at op %d", idx), acked, recoverWAL(t, f))
	}
}

// TestTornTailRepairIsDurable pins the repair-durability satellite: when
// recovery truncates a corrupt tail, it must fsync the file and the
// directory before handing the log out, so a crash immediately after
// recovery — before any append has synced the segment as a side effect —
// cannot resurrect the corrupt bytes.
func TestTornTailRepairIsDurable(t *testing.T) {
	f := faultfs.New()
	acked := driveWALClean(t, f)

	// Durably corrupt the newest segment's tail, as a torn multi-frame
	// write followed by an fsync-happy filesystem would.
	w, err := OpenWAL(faultWALDir, 0, Options{Fsync: FsyncPerBatch, FS: f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seg := w.CurrentSegment()
	w.Abort()
	path := w.SegmentPath(seg)
	h, err := f.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte("\xde\xad\xbe\xef torn tail garbage")
	if _, err := h.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	h.Close()

	// Recovery repairs the tail...
	assertAckedPrefix(t, "repair", acked, recoverWAL(t, f))
	// ...and the repair must survive an immediate power cut: the durable
	// view of the segment must not hold the garbage anymore.
	f.Crash()
	data, err := f.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, garbage[:4]) {
		t.Fatalf("crash after recovery resurrected the corrupt tail (%d bytes)", len(data))
	}
	assertAckedPrefix(t, "repair after crash", acked, recoverWAL(t, f))
}

// TestSnapshotFaultSweep drives WriteSnapshot into a fault at every
// operation index, then cuts the power. Whatever happens, recovery must
// land on a valid checkpoint: the new one if WriteSnapshot reported
// success (its durability contract), otherwise either the old or the new
// one — never nothing, never a corrupt hybrid.
func TestSnapshotFaultSweep(t *testing.T) {
	dir := "ckpt"
	older := &Snapshot{Measurements: []Measurement{{
		Name:   "cpu",
		Fields: []FieldSchema{{Name: "user", Kind: 0}},
		Series: []Series{{Tags: map[string]string{"host": "a"},
			Runs: []Run{{Ts: []int64{1, 2, 3}, Cols: []Col{{Name: "user", Floats: []float64{1, 2, 3}}}}}}},
	}}}
	newer := &Snapshot{Measurements: []Measurement{{
		Name:   "mem",
		Fields: []FieldSchema{{Name: "used", Kind: 0}},
		Series: []Series{{Tags: map[string]string{"host": "b"},
			Runs: []Run{{Ts: []int64{9}, Cols: []Col{{Name: "used", Floats: []float64{42}}}}}}},
	}}}

	// Rehearse: ops consumed writing the older checkpoint, then the newer.
	rehearse := faultfs.New()
	if err := WriteSnapshot(rehearse, dir, 3, older); err != nil {
		t.Fatal(err)
	}
	base := rehearse.Ops()
	if err := WriteSnapshot(rehearse, dir, 9, newer); err != nil {
		t.Fatal(err)
	}
	ops := rehearse.Ops() - base

	for idx := int64(0); idx <= ops; idx++ {
		for _, cut := range []bool{false, true} {
			f := faultfs.New()
			if err := WriteSnapshot(f, dir, 3, older); err != nil {
				t.Fatal(err)
			}
			if cut {
				f.KillAtOp(base + idx)
			} else {
				f.FailOp(base+idx, faultfs.ErrIO)
			}
			werr := WriteSnapshot(f, dir, 9, newer)
			f.SetInject(nil)
			if cut {
				f.Crash()
			}
			got, seg, err := LoadLatestSnapshot(f, dir)
			if err != nil {
				t.Fatalf("cut=%v op %d: load after fault: %v", cut, idx, err)
			}
			switch {
			case werr == nil && cut:
				// WriteSnapshot's contract: success means durable.
				if seg != 9 {
					t.Fatalf("cut=%v op %d: WriteSnapshot acked but recovery loaded seg %d", cut, idx, seg)
				}
			case got == nil:
				t.Fatalf("cut=%v op %d: both checkpoints gone (werr=%v)", cut, idx, werr)
			case seg != 3 && seg != 9:
				t.Fatalf("cut=%v op %d: loaded unexpected seg %d", cut, idx, seg)
			}
			if got == nil || len(got.Measurements) != 1 {
				t.Fatalf("cut=%v op %d: invalid snapshot %+v", cut, idx, got)
			}
			want := "cpu"
			if seg == 9 {
				want = "mem"
			}
			if got.Measurements[0].Name != want {
				t.Fatalf("cut=%v op %d: seg %d holds measurement %q", cut, idx, seg, got.Measurements[0].Name)
			}
		}
	}
}
