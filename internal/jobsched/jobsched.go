// Package jobsched simulates the batch system of a commodity cluster.
//
// LMS is deliberately independent of the job scheduler software (paper
// Sect. I): the only coupling is that "the compute nodes or a central
// management server must send signals at (de)allocation of a job to the
// router" (Sect. III-A). This package provides that management server: a
// cluster model, a FIFO queue with opportunistic backfill, whole-node
// allocation, and prolog/epilog hooks from which the simulation wires the
// router's job start/end signals.
//
// Time is simulated: the driver calls Advance(dt) and receives the
// allocation events that occurred, keeping the whole stack deterministic.
package jobsched

import (
	"fmt"
	"sort"
	"sync"
)

// Node is one compute node.
type Node struct {
	Name  string
	Cores int
}

// JobRequest describes a submitted job.
type JobRequest struct {
	ID       string
	User     string
	Nodes    int     // requested node count (whole-node allocation)
	Walltime float64 // requested runtime in seconds
	Tags     map[string]string
}

// JobState enumerates the lifecycle.
type JobState int

// Lifecycle states.
const (
	StateQueued JobState = iota
	StateRunning
	StateFinished
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateFinished:
		return "finished"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Job is the scheduler's view of a job.
type Job struct {
	Req     JobRequest
	State   JobState
	Nodes   []string // allocated node names
	SubmitT float64
	StartT  float64
	EndT    float64 // actual end (start + walltime)
}

// Event is an allocation change reported by Advance.
type Event struct {
	Start bool // true: job started; false: job ended
	Job   *Job
	Time  float64
}

// Scheduler is a FIFO + backfill batch scheduler over whole nodes.
type Scheduler struct {
	mu      sync.Mutex
	now     float64
	nodes   []Node
	free    map[string]bool
	queue   []*Job
	running map[string]*Job
	done    []*Job

	// Backfill enables starting later queued jobs when the queue head does
	// not fit (simple backfill without reservations; see DESIGN.md).
	Backfill bool
}

// New creates a scheduler over the given nodes.
func New(nodes []Node) (*Scheduler, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("jobsched: empty cluster")
	}
	free := make(map[string]bool, len(nodes))
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.Name == "" || n.Cores <= 0 {
			return nil, fmt.Errorf("jobsched: invalid node %+v", n)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("jobsched: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
		free[n.Name] = true
	}
	return &Scheduler{
		nodes:    append([]Node(nil), nodes...),
		free:     free,
		running:  make(map[string]*Job),
		Backfill: true,
	}, nil
}

// Now returns the simulated time.
func (s *Scheduler) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Nodes returns the cluster nodes.
func (s *Scheduler) Nodes() []Node {
	return append([]Node(nil), s.nodes...)
}

// Submit enqueues a job. Jobs requesting more nodes than the cluster has
// are rejected immediately.
func (s *Scheduler) Submit(req JobRequest) error {
	if req.ID == "" {
		return fmt.Errorf("jobsched: empty job id")
	}
	if req.Nodes <= 0 || req.Nodes > len(s.nodes) {
		return fmt.Errorf("jobsched: job %s requests %d nodes, cluster has %d", req.ID, req.Nodes, len(s.nodes))
	}
	if req.Walltime <= 0 {
		return fmt.Errorf("jobsched: job %s has non-positive walltime", req.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.queue {
		if j.Req.ID == req.ID {
			return fmt.Errorf("jobsched: job %s already queued", req.ID)
		}
	}
	if _, ok := s.running[req.ID]; ok {
		return fmt.Errorf("jobsched: job %s already running", req.ID)
	}
	s.queue = append(s.queue, &Job{Req: req, State: StateQueued, SubmitT: s.now})
	return nil
}

// freeCount returns the number of free nodes (lock held).
func (s *Scheduler) freeCount() int {
	n := 0
	for _, f := range s.free {
		if f {
			n++
		}
	}
	return n
}

// allocate picks nodes for a job (lock held). Nodes are assigned in name
// order for determinism.
func (s *Scheduler) allocate(n int) []string {
	names := make([]string, 0, n)
	keys := make([]string, 0, len(s.free))
	for name, f := range s.free {
		if f {
			keys = append(keys, name)
		}
	}
	sort.Strings(keys)
	for _, name := range keys {
		if len(names) == n {
			break
		}
		names = append(names, name)
		s.free[name] = false
	}
	return names
}

// schedule starts queued jobs that fit (lock held) and returns start events.
func (s *Scheduler) schedule() []Event {
	var events []Event
	for i := 0; i < len(s.queue); {
		job := s.queue[i]
		if job.Req.Nodes <= s.freeCount() {
			job.Nodes = s.allocate(job.Req.Nodes)
			job.State = StateRunning
			job.StartT = s.now
			job.EndT = s.now + job.Req.Walltime
			s.running[job.Req.ID] = job
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			events = append(events, Event{Start: true, Job: job, Time: s.now})
			continue // i now points at the next job
		}
		if !s.Backfill {
			break // strict FIFO: head blocks the queue
		}
		i++
	}
	return events
}

// Advance moves simulated time forward by dt seconds and returns the
// allocation events in chronological order. Jobs end exactly at their
// walltime; freed nodes are immediately eligible for queued jobs.
func (s *Scheduler) Advance(dt float64) ([]Event, error) {
	if dt < 0 {
		return nil, fmt.Errorf("jobsched: negative dt")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.now + dt
	var events []Event
	for {
		// Find the earliest job end within the window.
		var next *Job
		for _, j := range s.running {
			if j.EndT <= target && (next == nil || j.EndT < next.EndT ||
				(j.EndT == next.EndT && j.Req.ID < next.Req.ID)) {
				next = j
			}
		}
		if next == nil {
			break
		}
		s.now = next.EndT
		next.State = StateFinished
		delete(s.running, next.Req.ID)
		for _, n := range next.Nodes {
			s.free[n] = true
		}
		s.done = append(s.done, next)
		events = append(events, Event{Start: false, Job: next, Time: s.now})
		events = append(events, s.schedule()...)
	}
	s.now = target
	events = append(events, s.schedule()...)
	return events, nil
}

// Running returns the running jobs sorted by id.
func (s *Scheduler) Running() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Req.ID < out[j].Req.ID })
	return out
}

// Queued returns the queued jobs in queue order.
func (s *Scheduler) Queued() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.queue...)
}

// Finished returns the finished jobs in completion order.
func (s *Scheduler) Finished() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.done...)
}

// Utilization returns the fraction of nodes currently allocated.
func (s *Scheduler) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 1 - float64(s.freeCount())/float64(len(s.nodes))
}

// NodeJob returns the job currently allocated on a node, if any.
func (s *Scheduler) NodeJob(node string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.running {
		for _, n := range j.Nodes {
			if n == node {
				return j, true
			}
		}
	}
	return nil, false
}
