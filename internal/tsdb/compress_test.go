package tsdb

// Tests of the compressed run state (DESIGN.md §13): chunk codec round
// trips over adversarial values, byte-identical query answers across
// compression, the rewrite-on-compressed upsert, the durable V2 frame
// round trip plus V1 back-compat, and the race posture of the background
// compactor. The randomized oracle (column_test.go) additionally
// interleaves sealed-run compression with its workload.

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb/durable"
)

func TestTimestampCodecRoundTrip(t *testing.T) {
	t.Parallel()
	cases := [][]int64{
		{0},
		{-5e9},
		{1439856000000000000},
		{0, 0, 0, 0},
		{minInt64, 0, maxInt64},
		{minInt64, minInt64 + 1, maxInt64 - 1, maxInt64},
		{-3e9, -2e9, -1e9, 0, 1e9},
		{100, 200, 350, 350, 400},
	}
	steady := make([]int64, 1000)
	for i := range steady {
		steady[i] = int64(i) * 1e9
	}
	cases = append(cases, steady)
	rnd := rand.New(rand.NewSource(1))
	jitter := make([]int64, 500)
	cur := int64(-7e12)
	for i := range jitter {
		cur += rnd.Int63n(3e9)
		jitter[i] = cur
	}
	cases = append(cases, jitter)

	for ci, ts := range cases {
		enc := encodeTimestamps(ts)
		got := make([]int64, len(ts))
		if err := decodeTimestamps(enc, got); err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if !reflect.DeepEqual(got, ts) {
			t.Fatalf("case %d: round trip changed timestamps", ci)
		}
		// Every truncation must error, never panic or fabricate rows.
		for cut := 0; cut < len(enc); cut++ {
			if err := decodeTimestamps(enc[:cut], make([]int64, len(ts))); err == nil && len(ts) > 1 {
				t.Fatalf("case %d: truncated chunk (%d/%d bytes) decoded silently", ci, cut, len(enc))
			}
		}
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	t.Parallel()
	nanPayload := math.Float64frombits(0x7ff80000dead0001)
	cases := [][]float64{
		{0},
		{math.NaN(), nanPayload, math.Inf(1), math.Inf(-1)},
		{0, math.Copysign(0, -1), 0},
		{1.5, 1.5, 1.5, 1.5},
		{math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
		{15.5, 14.0625, 3.25, 8.625, 13.1},
	}
	rnd := rand.New(rand.NewSource(2))
	walk := make([]float64, 500)
	v := 100.0
	for i := range walk {
		v += rnd.NormFloat64()
		walk[i] = v
	}
	cases = append(cases, walk)

	for ci, vals := range cases {
		enc := encodeFloats(vals)
		got := make([]float64, len(vals))
		if err := decodeFloats(enc, got); err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("case %d row %d: %x != %x (codec is not bit-exact)",
					ci, i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
	}
}

func TestIntCodecRoundTrip(t *testing.T) {
	t.Parallel()
	cases := [][]int64{
		{0},
		{minInt64, maxInt64, minInt64, 0},
		{1, 1, 1, 1},
		{-1, 1, -2, 2},
		{1 << 40, 1<<40 + 1, 1<<40 + 2},
	}
	for ci, vals := range cases {
		got := make([]int64, len(vals))
		if err := decodeInts(encodeInts(vals), got); err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("case %d: round trip changed ints", ci)
		}
	}
}

func TestStrIDCodecRoundTrip(t *testing.T) {
	t.Parallel()
	cases := [][]uint32{
		{0, 0, 0},
		{1},
		{0, 1, 2, 3, 2, 1, 0},
		{1<<31 - 1, 0, 12345},
	}
	for ci, ids := range cases {
		enc, width := encodeStrIDs(ids)
		maxID := uint32(0)
		for _, id := range ids {
			if id >= maxID {
				maxID = id + 1
			}
		}
		got := make([]uint32, len(ids))
		if err := decodeStrIDs(enc, width, maxID, got); err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("case %d: round trip changed ids", ci)
		}
	}
	// An id at or past the intern table must be rejected, not served.
	enc, width := encodeStrIDs([]uint32{5})
	if err := decodeStrIDs(enc, width, 5, make([]uint32, 1)); err == nil {
		t.Fatal("id == maxID decoded silently")
	}
}

// TestCompressedSelectByteIdentical feeds two in-memory stores the same
// batch sequence; one compresses its resident runs at every step, the
// other never does. Every /query response must match byte for byte at
// every step — compression is a representation change, not a semantic
// one.
func TestCompressedSelectByteIdentical(t *testing.T) {
	t.Parallel()
	plain := NewStore()
	plain.ShardsPerDB = 4
	comp := NewStore()
	comp.ShardsPerDB = 4
	pdb := plain.CreateDatabase("lms")
	cdb := comp.CreateDatabase("lms")
	pdb.SetQueryCacheTTL(0)
	cdb.SetQueryCacheTTL(0)
	for i, b := range corpusBatches() {
		if err := pdb.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := cdb.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
		cdb.Compress()
		if got, want := queryFingerprint(t, comp, "lms"), queryFingerprint(t, plain, "lms"); got != want {
			t.Fatalf("batch %d: compressed store answers differ from raw store", i)
		}
	}
	if cdb.compressionStats().chunks == 0 {
		t.Fatal("corpus produced no compressed chunks; the comparison tested nothing")
	}
}

// TestCompressedRewriteUpsert pins the one mutation a compressed run
// accepts: a batch whose timestamps exactly rewrite the run decompresses,
// merges last-write-wins and recompresses in place. Anything else opens a
// new run beside it.
func TestCompressedRewriteUpsert(t *testing.T) {
	t.Parallel()
	db := NewDB("lms")
	db.SetQueryCacheTTL(0)
	const n = 10
	write := func(pts []lineproto.Point) {
		t.Helper()
		if err := db.WriteBatch(pts); err != nil {
			t.Fatal(err)
		}
	}
	write(rewriteBatchPts("h1", n, func(i int) map[string]lineproto.Value {
		return map[string]lineproto.Value{
			"a": lineproto.Float(float64(i)),
			"b": lineproto.Int(int64(i) * 10),
		}
	}))
	if got := db.Compress(); got != 1 {
		t.Fatalf("Compress() = %d runs, want 1", got)
	}

	// Exact rewrite of field a: values update, row count and compressed
	// state are unchanged, field b keeps its stored values.
	write(rewriteBatchPts("h1", n, func(i int) map[string]lineproto.Value {
		return map[string]lineproto.Value{"a": lineproto.Float(float64(i) + 100)}
	}))
	if got := db.PointCount(); got != n {
		t.Fatalf("exact rewrite changed row count: %d != %d", got, n)
	}
	cs := db.compressionStats()
	if cs.compressedBytes == 0 || cs.buildingBytes != 0 || cs.sealedBytes != 0 {
		t.Fatalf("exact rewrite left the run uncompressed: %+v", cs)
	}
	res, err := db.Select(Query{Measurement: "m"})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res[0].Rows {
		if got := row.Values[0].FloatVal(); got != float64(i)+100 {
			t.Fatalf("row %d field a = %v, want %v", i, got, float64(i)+100)
		}
		if got := row.Values[1].IntVal(); got != int64(i)*10 {
			t.Fatalf("row %d field b = %v, want %v", i, got, int64(i)*10)
		}
	}

	// A partially overlapping batch is not a rewrite: it lands in a new
	// run (possibly merged), and the duplicate timestamp resolves by merge
	// order, exactly as it would against a raw run.
	write(rewriteBatchPts("h1", 3, func(i int) map[string]lineproto.Value {
		return map[string]lineproto.Value{"a": lineproto.Float(-1)}
	})[2:])
	if got := db.PointCount(); got != n+1 {
		t.Fatalf("overlapping batch upserted instead of appending: %d rows, want %d", got, n+1)
	}
}

// TestCompressionStatsAndMetrics covers the scrape-time sweep: resident
// bytes shift from building to compressed, the chunk count appears, and
// the ratio gauge reports the achieved factor.
func TestCompressionStatsAndMetrics(t *testing.T) {
	t.Parallel()
	st := NewStore()
	db := st.CreateDatabase("lms")
	pts := make([]lineproto.Point, 2000)
	for i := range pts {
		pts[i] = lineproto.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": "h0"},
			Fields: map[string]lineproto.Value{
				"user": lineproto.Float(float64(i % 97)),
				"ctx":  lineproto.Int(int64(i)),
			},
			Time: time.Unix(int64(i), 0).UTC(),
		}
	}
	if err := db.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
	before := db.compressionStats()
	if before.buildingBytes == 0 || before.compressedBytes != 0 {
		t.Fatalf("pre-compress stats: %+v", before)
	}
	db.Compress()
	after := db.compressionStats()
	if after.compressedBytes == 0 || after.chunks == 0 {
		t.Fatalf("post-compress stats: %+v", after)
	}
	if after.rawOfCompressed <= after.compressedBytes {
		t.Fatalf("compression did not shrink the run: raw %d vs comp %d",
			after.rawOfCompressed, after.compressedBytes)
	}
}

// TestCompressConcurrentWithQueries exercises the optimistic background
// compactor against live writers and readers; run with -race. Timestamps
// are unique per series, so the final row count is exact.
func TestCompressConcurrentWithQueries(t *testing.T) {
	t.Parallel()
	db := NewDBShards("lms", 4)
	db.SetQueryCacheTTL(0)
	db.SetCompressAfter(time.Millisecond)
	defer db.stopCompressor()

	const writers, batches, per = 4, 30, 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for g := 0; g < writers; g++ {
			g := g
			for bi := 0; bi < batches; bi++ {
				pts := make([]lineproto.Point, per)
				for i := range pts {
					seq := int64(bi*per + i)
					if bi%4 == 3 {
						seq = -seq // out-of-order: force new runs and merges
					}
					pts[i] = lineproto.Point{
						Measurement: "m",
						Tags:        map[string]string{"hostname": string(rune('a' + g))},
						Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(seq))},
						Time:        time.Unix(seq, int64(g)).UTC(),
					}
				}
				if err := db.WriteBatch(pts); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for {
		if _, err := db.Select(Query{Measurement: "m", Agg: AggCount}); err != nil && err != ErrNoMeasurement {
			t.Fatal(err)
		}
		select {
		case <-done:
			if got, want := db.PointCount(), writers*batches*per; got != want {
				t.Fatalf("final resident rows %d, want %d", got, want)
			}
			return
		default:
		}
	}
}

// TestCheckpointCompressedRoundTrip: a checkpoint taken over compressed
// runs stores the chunks verbatim (SnapV2), and recovery adopts them
// still compressed — no decode on either path — with byte-identical
// query answers.
func TestCheckpointCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	batches := corpusBatches()
	st := openDurableStore(t, Durability{Dir: dir})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := db.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if db.Compress() == 0 {
		t.Fatal("nothing compressed before checkpoint")
	}
	before := queryFingerprint(t, st, "lms")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openDurableStore(t, Durability{Dir: dir})
	if after := queryFingerprint(t, st2, "lms"); after != before {
		t.Fatal("recovered answers differ from pre-restart answers")
	}
	if cs := st2.DB("lms").compressionStats(); cs.compressedBytes == 0 {
		t.Fatal("recovery decompressed the checkpointed runs")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointV1BackCompat: a checkpoint in the PR 5 on-disk format
// (SnapV1, raw frames only) must still recover. The test round-trips the
// store's own latest snapshot through the V1 encoder and replaces the
// on-disk file with it.
func TestCheckpointV1BackCompat(t *testing.T) {
	dir := t.TempDir()
	batches := corpusBatches()
	st := openDurableStore(t, Durability{Dir: dir})
	db, err := st.OpenDatabase("lms")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := db.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	dbDir := filepath.Join(dir, "lms")
	snap, seg, err := durable.LoadLatestSnapshot(nil, dbDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.WriteSnapshotVersion(nil, dbDir, seg, snap, durable.SnapV1); err != nil {
		t.Fatal(err)
	}

	st2 := openDurableStore(t, Durability{Dir: dir})
	if got, oracle := queryFingerprint(t, st2, "lms"), queryFingerprint(t, memoryOracle(t, batches), "lms"); got != oracle {
		t.Fatal("V1-format checkpoint recovered different answers than the oracle")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzCompressedChunkDecode: arbitrary bytes through every chunk decoder.
// Decoding must never panic and never over-allocate beyond the caller's
// row count; a chunk that decodes must survive the canonical
// encode/decode round trip value-for-value, or compaction and rewrites
// would silently corrupt accepted data.
func FuzzCompressedChunkDecode(f *testing.F) {
	f.Add(uint8(0), uint16(3), uint8(0), encodeTimestamps([]int64{100, 200, 350}))
	f.Add(uint8(1), uint16(4), uint8(0), encodeFloats([]float64{1.5, math.NaN(), 0, -2.25}))
	f.Add(uint8(2), uint16(3), uint8(0), encodeInts([]int64{-5, 5, 1 << 40}))
	ids, width := encodeStrIDs([]uint32{0, 1, 2, 1})
	f.Add(uint8(3), uint16(4), width, ids)
	f.Add(uint8(0), uint16(1000), uint8(0), []byte{0xff, 0x00})    // starving row count
	f.Add(uint8(1), uint16(2), uint8(0), []byte{})                 // empty chunk
	f.Add(uint8(3), uint16(8), uint8(33), []byte{0xaa})            // implausible width
	f.Add(uint8(2), uint16(2), uint8(0), []byte{0x80, 0x80, 0x80}) // unterminated varint

	f.Fuzz(func(t *testing.T, kind uint8, n uint16, width uint8, data []byte) {
		rows := int(n%2048) + 1
		switch kind % 4 {
		case 0:
			dst := make([]int64, rows)
			if decodeTimestamps(data, dst) != nil {
				return
			}
			rt := make([]int64, rows)
			if err := decodeTimestamps(encodeTimestamps(dst), rt); err != nil {
				t.Fatalf("canonical timestamp chunk does not decode: %v", err)
			}
			if !reflect.DeepEqual(rt, dst) {
				t.Fatal("timestamp round trip changed values")
			}
		case 1:
			dst := make([]float64, rows)
			if decodeFloats(data, dst) != nil {
				return
			}
			rt := make([]float64, rows)
			if err := decodeFloats(encodeFloats(dst), rt); err != nil {
				t.Fatalf("canonical float chunk does not decode: %v", err)
			}
			for i := range dst {
				if math.Float64bits(rt[i]) != math.Float64bits(dst[i]) {
					t.Fatal("float round trip changed bits")
				}
			}
		case 2:
			dst := make([]int64, rows)
			if decodeInts(data, dst) != nil {
				return
			}
			rt := make([]int64, rows)
			if err := decodeInts(encodeInts(dst), rt); err != nil {
				t.Fatalf("canonical int chunk does not decode: %v", err)
			}
			if !reflect.DeepEqual(rt, dst) {
				t.Fatal("int round trip changed values")
			}
		default:
			dst := make([]uint32, rows)
			if decodeStrIDs(data, width, 1<<31, dst) != nil {
				return
			}
			enc, w2 := encodeStrIDs(dst)
			rt := make([]uint32, rows)
			if err := decodeStrIDs(enc, w2, 1<<31, rt); err != nil {
				t.Fatalf("canonical string-id chunk does not decode: %v", err)
			}
			if !reflect.DeepEqual(rt, dst) {
				t.Fatal("string-id round trip changed values")
			}
		}
	})
}
