package cluster

import (
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	b := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n2"}, 64)
	if a.Generation() != b.Generation() {
		t.Fatalf("generation differs across input order: %x vs %x", a.Generation(), b.Generation())
	}
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("member list differs: %v vs %v", a.Nodes(), b.Nodes())
	}
	for _, key := range []string{PlacementKey("lms", "cpu"), PlacementKey("lms", "memory"), PlacementKey("user_x", "cpu")} {
		if got, want := a.Owners(key, 2), b.Owners(key, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("owners(%q) differ: %v vs %v", key, got, want)
		}
	}
}

func TestRingGenerationChangesWithMembership(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2"}, 64)
	b := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	if a.Generation() == b.Generation() {
		t.Fatal("different memberships share a generation")
	}
}

func TestRingOwnersDistinctAndCapped(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	for i := 0; i < 200; i++ {
		key := PlacementKey("lms", "m"+string(rune('a'+i%26))+string(rune('a'+i/26)))
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("want 2 owners, got %v", owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("duplicate owner for %q: %v", key, owners)
		}
	}
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("owner count beyond membership: %v", got)
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Fatalf("zero replication should clamp to 1: %v", got)
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	r := NewRing(nodes, 0) // default vnodes
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		m := "measurement-" + string(rune('a'+i%26)) + "-" + string(rune('0'+(i/26)%10)) + "-" + string(rune('0'+i/260))
		counts[r.Owners(PlacementKey("lms", m), 1)[0]]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of keys — ring badly imbalanced: %v", n, share*100, counts)
		}
	}
}

func TestPlacementKeyUnambiguous(t *testing.T) {
	if PlacementKey("a", "bc") == PlacementKey("ab", "c") {
		t.Fatal("placement key is ambiguous across db/measurement split")
	}
}

func TestHintCodecRoundTrip(t *testing.T) {
	// The hint frame must reproduce db and batch exactly (timestamps are
	// pre-resolved, so replay equals the acknowledged write).
	pts := testPoints("cpu", "h1", 3)
	payload := encodeHint("lms", pts, 12345)
	h, err := decodeHint(payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.db != "lms" || len(h.pts) != 3 {
		t.Fatalf("bad hint decode: db=%q pts=%d", h.db, len(h.pts))
	}
	if !h.pts[0].Time.Equal(pts[0].Time) {
		t.Fatalf("hint timestamp drifted: %v vs %v", h.pts[0].Time, pts[0].Time)
	}
	if _, err := decodeHint(payload[:len(payload)-2]); err == nil {
		t.Fatal("truncated hint decoded")
	}
}
