package hpm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string, vars map[string]float64) float64 {
	t.Helper()
	f, err := CompileFormula(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := f.Eval(vars)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestFormulaBasics(t *testing.T) {
	cases := []struct {
		src  string
		vars map[string]float64
		want float64
	}{
		{"1+2", nil, 3},
		{"2*3+4", nil, 10},
		{"2+3*4", nil, 14},
		{"(2+3)*4", nil, 20},
		{"10/4", nil, 2.5},
		{"10-4-3", nil, 3}, // left associative
		{"100/10/5", nil, 2},
		{"-3+5", nil, 2},
		{"-(3+5)", nil, -8},
		{"--4", nil, 4},
		{"+5", nil, 5},
		{"2*-3", nil, -6},
		{"1.0E-06*2000000", nil, 2},
		{"1.5e3", nil, 1500},
		{".5*4", nil, 2},
		{"A+B*C", map[string]float64{"A": 1, "B": 2, "C": 3}, 7},
		{"FIXC1/FIXC0", map[string]float64{"FIXC1": 10, "FIXC0": 4}, 2.5},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, c.vars); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestFormulaLikwidMetrics(t *testing.T) {
	// The actual FLOPS_DP formula with plausible counter values.
	vars := map[string]float64{
		"PMC0": 1e9, // SSE packed DP
		"PMC1": 5e8, // scalar DP
		"PMC2": 2e9, // AVX packed DP
		"time": 10,
	}
	got := evalOK(t, "1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time", vars)
	want := 1e-6 * (1e9*2 + 5e8 + 2e9*4) / 10
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFormulaDivisionByZeroClampsToZero(t *testing.T) {
	if got := evalOK(t, "5/0", nil); got != 0 {
		t.Fatalf("5/0 = %v, want 0", got)
	}
	if got := evalOK(t, "A/time", map[string]float64{"A": 100, "time": 0}); got != 0 {
		t.Fatalf("A/0 = %v, want 0", got)
	}
}

func TestFormulaUnknownVariable(t *testing.T) {
	f := MustCompileFormula("A+B")
	if _, err := f.Eval(map[string]float64{"A": 1}); err == nil {
		t.Fatal("expected unknown-variable error")
	}
}

func TestFormulaCompileErrors(t *testing.T) {
	bad := []string{
		"", "   ", "1+", "*3", "(1+2", "1+2)", "()", "1 2", "A B",
		"1..2", "1+*2", "5%3", "foo(2)", "1e", "£",
	}
	for _, src := range bad {
		if _, err := CompileFormula(src); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
}

func TestFormulaVariables(t *testing.T) {
	f := MustCompileFormula("1.0E-06*(PMC0+PMC1)*64.0/time+PMC0")
	vars := f.Variables()
	want := map[string]bool{"PMC0": true, "PMC1": true, "time": true}
	if len(vars) != 3 {
		t.Fatalf("vars %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %q", v)
		}
	}
}

func TestFormulaStringers(t *testing.T) {
	f := MustCompileFormula("1+2*3")
	if f.Source() != "1+2*3" {
		t.Error("source")
	}
	if f.String() != "Formula(1+2*3)" {
		t.Error("stringer")
	}
	if f.rpnString() != "1 2 3 * +" {
		t.Errorf("rpn %q", f.rpnString())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompileFormula("((")
}

// randomExpr builds a random expression tree and its expected value.
type exprNode struct {
	s string
	v float64
}

func randomExpr(r *rand.Rand, depth int, vars map[string]float64) exprNode {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 && len(vars) > 0 {
			names := []string{"A", "B", "C"}
			n := names[r.Intn(len(names))]
			return exprNode{s: n, v: vars[n]}
		}
		f := math.Round(r.Float64()*200) / 10
		return exprNode{s: formatNum(f), v: f}
	}
	a := randomExpr(r, depth-1, vars)
	b := randomExpr(r, depth-1, vars)
	switch r.Intn(4) {
	case 0:
		return exprNode{s: "(" + a.s + "+" + b.s + ")", v: a.v + b.v}
	case 1:
		return exprNode{s: "(" + a.s + "-" + b.s + ")", v: a.v - b.v}
	case 2:
		return exprNode{s: "(" + a.s + "*" + b.s + ")", v: a.v * b.v}
	default:
		v := 0.0
		if b.v != 0 {
			v = a.v / b.v
		}
		return exprNode{s: "(" + a.s + "/" + b.s + ")", v: v}
	}
}

func formatNum(f float64) string {
	// strconv via fmt not needed; use Sprintf-free approach in tests is
	// overkill — keep simple.
	return trimFloat(f)
}

func trimFloat(f float64) string {
	s := []byte{}
	if f < 0 {
		s = append(s, '-')
		f = -f
	}
	whole := int64(f)
	frac := int64(math.Round((f - float64(whole)) * 10))
	if frac == 10 {
		whole++
		frac = 0
	}
	s = appendInt(s, whole)
	if frac > 0 {
		s = append(s, '.')
		s = appendInt(s, frac)
	}
	return string(s)
}

func appendInt(b []byte, n int64) []byte {
	if n == 0 {
		return append(b, '0')
	}
	var digits []byte
	for n > 0 {
		digits = append(digits, byte('0'+n%10))
		n /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		b = append(b, digits[i])
	}
	return b
}

// Property: the evaluator agrees with a reference evaluation on random
// expression trees.
func TestFormulaRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vars := map[string]float64{"A": 3, "B": -1.5, "C": 10}
	f := func(seed int64) bool {
		_ = seed
		e := randomExpr(r, 4, vars)
		c, err := CompileFormula(e.s)
		if err != nil {
			t.Logf("compile %q: %v", e.s, err)
			return false
		}
		got, err := c.Eval(vars)
		if err != nil {
			t.Logf("eval %q: %v", e.s, err)
			return false
		}
		if math.IsInf(e.v, 0) {
			return got == 0 // evaluator clamps overflow
		}
		if math.Abs(e.v) > 1e15 {
			return true // reference itself is numerically shaky there
		}
		diff := math.Abs(got - e.v)
		scale := math.Max(1, math.Abs(e.v))
		if diff/scale > 1e-9 {
			t.Logf("%q: got %v want %v", e.s, got, e.v)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
