package lms

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdRefPattern matches documentation references like DESIGN.md or
// EXPERIMENTS.md in Go sources and markdown. Doc files in this repo are
// upper-case by convention, which keeps the pattern from tripping over
// identifiers.
var mdRefPattern = regexp.MustCompile(`\b([A-Z][A-Za-z0-9_-]*\.md)\b`)

// externalRef reports whether a line marks its doc references as living
// outside this repository — "external", "related repo" or "related-repo"
// on the same line as the reference — so pointers into companion repos
// (external docs like COMPACTION_AND_RETENTION.md) are not broken links.
func externalRef(line string) bool {
	l := strings.ToLower(line)
	return strings.Contains(l, "external") ||
		strings.Contains(l, "related repo") ||
		strings.Contains(l, "related-repo")
}

// TestDocLinks fails when a *.md file referenced from Go comments or
// markdown does not exist in the repository, so documentation pointers
// (DESIGN.md, EXPERIMENTS.md, ...) cannot silently rot. References on
// lines marked external (see externalRef) are skipped. Run by CI as the
// doc-link check step.
func TestDocLinks(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string][]string{} // referenced name -> referencing files
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		ext := filepath.Ext(path)
		if ext != ".go" && ext != ".md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, line := range strings.Split(string(data), "\n") {
			if externalRef(line) {
				continue
			}
			for _, m := range mdRefPattern.FindAllStringSubmatch(line, -1) {
				refs[m[1]] = append(refs[m[1]], rel)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no markdown references found; the scanner is broken")
	}
	for name, from := range refs {
		if _, err := os.Stat(filepath.Join(root, name)); err != nil {
			t.Errorf("%s is referenced by %s but does not exist at the repo root",
				name, strings.Join(dedupe(from), ", "))
		}
	}
}

func TestExternalRefMarkers(t *testing.T) {
	for _, tc := range []struct {
		line string
		want bool
	}{
		{"see DESIGN.md for the shard layout", false},
		{"cf. the external `docs/COMPACTION_AND_RETENTION.md`", true},
		{"COMPACTION_AND_RETENTION.md, a related-repo doc", true},
		{"a file in a related repo, not this one", true},
	} {
		if got := externalRef(tc.line); got != tc.want {
			t.Errorf("externalRef(%q) = %v, want %v", tc.line, got, tc.want)
		}
	}
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
