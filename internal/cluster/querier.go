package cluster

// Scatter-gather reads (DESIGN.md §12). Placement is per (db,
// measurement), so every SELECT — and every metadata statement scoped to
// one measurement — is answered whole by any single owner replica: the
// coordinator routes the statement to the healthiest owner and fails over
// to the next on error. That routing, not result stitching, is what keeps
// clustered answers byte-identical to a single node: the two-phase Select
// engine already merges its per-run partials in a fixed order on the
// owning node (agg.go), and splitting one measurement's aggregation
// across nodes would re-order those floating-point merges. Statements
// that span measurements (SHOW MEASUREMENTS, SHOW DATABASES, unscoped
// SHOW TAG VALUES) fan out to every node and union-merge their sorted
// string rows — set union commutes, so merge order cannot show.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

// DistributedQuerier implements tsdb.Querier over the ring. It is the
// read-side twin of SinkFor: every consumer of the Querier interface —
// the dashboard, the analysis engine, the /query handler of each node —
// works against the cluster without change.
type DistributedQuerier struct {
	c *Cluster
}

// Querier returns the cluster's scatter-gather querier.
func (c *Cluster) Querier() *DistributedQuerier {
	return &DistributedQuerier{c: c}
}

// Query implements tsdb.Querier. Statement errors ride inside the
// response exactly as with a LocalQuerier; Query itself fails only when a
// statement's entire replica set is unreachable (the caller's retry is
// then meaningful) or the context is done.
func (q *DistributedQuerier) Query(ctx context.Context, req tsdb.Request) (tsdb.Response, error) {
	stmts := req.Statements
	if len(stmts) == 0 {
		var err error
		stmts, err = tsdb.ParseQuery(req.RawQuery)
		if err != nil {
			return tsdb.Response{}, err
		}
	}
	start := time.Now()
	defer func() { q.c.observeFanout(time.Since(start)) }()
	sp := obs.TraceFrom(ctx).Start("cluster.query").AttrInt("statements", int64(len(stmts)))
	defer sp.End()
	var resp tsdb.Response
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			return tsdb.Response{}, err
		}
		res, err := q.execStatement(ctx, req, st)
		if err != nil {
			return tsdb.Response{}, err
		}
		resp.Results = append(resp.Results, res)
	}
	return resp, nil
}

func (q *DistributedQuerier) execStatement(ctx context.Context, req tsdb.Request, st tsdb.Statement) (tsdb.ExecResult, error) {
	switch st.Kind {
	case tsdb.StmtSelect:
		return q.execRouted(ctx, req, st)
	case tsdb.StmtExplainAnalyze:
		return q.execExplainAnalyze(ctx, req, st)
	case tsdb.StmtShowFieldKeys, tsdb.StmtShowTagKeys, tsdb.StmtShowTagValues:
		if st.Query.Measurement != "" {
			return q.execRouted(ctx, req, st)
		}
		return q.execFanAll(ctx, req, st)
	case tsdb.StmtShowMeasurements, tsdb.StmtShowDatabases:
		return q.execFanAll(ctx, req, st)
	case tsdb.StmtCreateDatabase, tsdb.StmtDropDatabase:
		return q.execFanAllStrict(ctx, req, st)
	default:
		return tsdb.ExecResult{}, fmt.Errorf("cluster: unsupported statement kind %d", st.Kind)
	}
}

// queryNode runs one statement on one node: the local store for self
// (no HTTP hop, native result values), the peer's /query with local=1
// otherwise.
func (q *DistributedQuerier) queryNode(ctx context.Context, id string, req tsdb.Request, st tsdb.Statement) (tsdb.ExecResult, error) {
	one := tsdb.Request{
		Database:   req.Database,
		Statements: []tsdb.Statement{st},
		Epoch:      req.Epoch,
		Limit:      req.Limit,
	}
	n := q.c.nodes[id]
	var resp tsdb.Response
	var err error
	if n != nil && n.local != nil {
		resp, err = tsdb.LocalQuerier{Store: n.local}.Query(ctx, one)
	} else {
		resp, err = q.c.clientFor(id, req.Database).Query(ctx, one)
	}
	if err != nil {
		return tsdb.ExecResult{}, err
	}
	if len(resp.Results) != 1 {
		return tsdb.ExecResult{}, fmt.Errorf("cluster: node %s returned %d results for one statement", id, len(resp.Results))
	}
	return resp.Results[0], nil
}

// isNoDatabase reports the one embedded error that is topology-dependent:
// a replica that never saw the database answers "does not exist" while
// another replica holds it. Every other embedded error (bad aggregate,
// bad epoch) is deterministic across replicas and passes through.
func isNoDatabase(res tsdb.ExecResult) bool {
	return res.Err == tsdb.ErrNoDatabase.Error()
}

// routeAttempt records one replica attempt of a routed statement for the
// EXPLAIN ANALYZE routing profile.
type routeAttempt struct {
	node   string
	durNS  int64
	status string // "ok", "no-database", or the error text
}

// execRouted routes a measurement-scoped statement to its owner slice:
// first healthy owner answers, the rest are failover targets. A replica
// with queued hints is tried last — it is known to be missing
// acknowledged writes until handoff drains.
func (q *DistributedQuerier) execRouted(ctx context.Context, req tsdb.Request, st tsdb.Statement) (tsdb.ExecResult, error) {
	res, _, err := q.execRoutedProf(ctx, req, st)
	return res, err
}

// execRoutedProf is execRouted keeping the per-attempt routing profile:
// which replicas were tried, how long each took, and how each answered.
// The last attempt of a successful route is the chosen replica.
func (q *DistributedQuerier) execRoutedProf(ctx context.Context, req tsdb.Request, st tsdb.Statement) (tsdb.ExecResult, []routeAttempt, error) {
	owners := q.c.owners(req.Database, st.Query.Measurement)
	if len(owners) == 0 {
		return tsdb.ExecResult{}, nil, fmt.Errorf("cluster: empty ring")
	}
	tr := obs.TraceFrom(ctx)
	var attempts []routeAttempt
	var noDB *tsdb.ExecResult
	var lastErr error
	for i, id := range q.c.readOrder(owners) {
		if err := ctx.Err(); err != nil {
			return tsdb.ExecResult{}, attempts, err
		}
		if i > 0 {
			q.c.readFailovers.Add(1)
		}
		sp := tr.Start("cluster.query.node").Attr("peer", id)
		t0 := time.Now()
		res, err := q.queryNode(ctx, id, req, st)
		at := routeAttempt{node: id, durNS: int64(time.Since(t0)), status: "ok"}
		if err != nil {
			at.status = err.Error()
			sp.Attr("error", err.Error())
		} else if isNoDatabase(res) {
			at.status = "no-database"
		}
		sp.End()
		attempts = append(attempts, at)
		if err != nil {
			lastErr = err
			continue
		}
		if isNoDatabase(res) {
			noDB = &res
			continue
		}
		return res, attempts, nil
	}
	if noDB != nil {
		// Every reachable replica lacks the database: same answer a single
		// node would give.
		return *noDB, attempts, nil
	}
	return tsdb.ExecResult{}, attempts, fmt.Errorf("cluster: all %d replicas failed: %w", len(owners), lastErr)
}

// execExplainAnalyze routes EXPLAIN ANALYZE exactly like the SELECT it
// wraps — the chosen replica executes it and returns the SELECT's series
// plus its storage-side profile — and appends the coordinator's routing
// profile as one more series: the chosen replica and every attempt's
// timing (DESIGN.md §14).
func (q *DistributedQuerier) execExplainAnalyze(ctx context.Context, req tsdb.Request, st tsdb.Statement) (tsdb.ExecResult, error) {
	res, attempts, err := q.execRoutedProf(ctx, req, st)
	if err != nil {
		return tsdb.ExecResult{}, err
	}
	s := tsdb.ResultSeries{
		Name:    tsdb.ExplainClusterSeriesName,
		Columns: []string{"metric", "value"},
	}
	chosen := ""
	if n := len(attempts); n > 0 && attempts[n-1].status == "ok" {
		chosen = attempts[n-1].node
	}
	s.Values = append(s.Values,
		[]interface{}{"replication", q.c.cfg.Replication},
		[]interface{}{"chosen_replica", chosen},
		[]interface{}{"attempts", len(attempts)},
	)
	for i, at := range attempts {
		p := "attempt_" + strconv.Itoa(i+1)
		s.Values = append(s.Values,
			[]interface{}{p + "_node", at.node},
			[]interface{}{p + "_ns", at.durNS},
			[]interface{}{p + "_status", at.status},
		)
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// fanResults runs one statement on every cluster member concurrently.
func (q *DistributedQuerier) fanResults(ctx context.Context, req tsdb.Request, st tsdb.Statement) ([]tsdb.ExecResult, []error) {
	ids := q.c.ring.Nodes()
	results := make([]tsdb.ExecResult, len(ids))
	errs := make([]error, len(ids))
	done := make(chan int, len(ids))
	for i, id := range ids {
		go func(i int, id string) {
			results[i], errs[i] = q.queryNode(ctx, id, req, st)
			done <- i
		}(i, id)
	}
	for range ids {
		<-done
	}
	return results, errs
}

// execFanAll answers a cluster-wide metadata statement as the union of
// every reachable node's sorted answer. Down nodes are tolerated: with
// R >= 2 every measurement still has a live owner in the union, so the
// merged answer matches the single-node one with one replica dead — the
// invariant the 3-node harness pins down.
func (q *DistributedQuerier) execFanAll(ctx context.Context, req tsdb.Request, st tsdb.Statement) (tsdb.ExecResult, error) {
	results, errs := q.fanResults(ctx, req, st)
	if err := ctx.Err(); err != nil {
		return tsdb.ExecResult{}, err
	}
	merged := skeletonFor(st)
	seen := make(map[string]struct{})
	var rows []rowKey
	ok, noDB := 0, 0
	var lastErr error
	for i := range results {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		res := results[i]
		if isNoDatabase(res) {
			noDB++
			continue
		}
		if res.Err != "" {
			// Deterministic statement error: identical on every node.
			return res, nil
		}
		ok++
		for _, s := range res.Series {
			for _, row := range s.Values {
				k := rowString(row)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				rows = append(rows, rowKey{key: k, row: row})
			}
		}
	}
	if ok == 0 {
		if noDB > 0 {
			return tsdb.ExecResult{Err: tsdb.ErrNoDatabase.Error()}, nil
		}
		return tsdb.ExecResult{}, fmt.Errorf("cluster: all %d nodes failed: %w", len(results), lastErr)
	}
	// Each node emits its rows sorted; the union re-sorts on the same keys,
	// so the merged order is the order a single node holding all the data
	// would emit. Values stays nil when the union is empty — the JSON door
	// distinguishes null from [] and a single node emits null.
	sort.Slice(rows, func(a, b int) bool { return rows[a].key < rows[b].key })
	for _, r := range rows {
		merged.Series[0].Values = append(merged.Series[0].Values, r.row)
	}
	return merged, nil
}

// execFanAllStrict runs CREATE/DROP DATABASE on every member. Unreachable
// peers are tolerated (they catch up through ensureDatabase and write
// autocreation), but a peer that was reached and refused — a durable open
// failure, say — surfaces: masking it would acknowledge a database that
// cannot durably exist.
func (q *DistributedQuerier) execFanAllStrict(ctx context.Context, req tsdb.Request, st tsdb.Statement) (tsdb.ExecResult, error) {
	results, errs := q.fanResults(ctx, req, st)
	if err := ctx.Err(); err != nil {
		return tsdb.ExecResult{}, err
	}
	reached := 0
	var lastErr error
	for i := range results {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		reached++
		if results[i].Err != "" {
			return results[i], nil
		}
	}
	if reached == 0 {
		return tsdb.ExecResult{}, fmt.Errorf("cluster: all %d nodes failed: %w", len(results), lastErr)
	}
	return tsdb.ExecResult{}, nil
}

type rowKey struct {
	key string
	row []interface{}
}

// rowString is the dedupe/sort key of one metadata row. Metadata rows are
// all-string ([name] or [key, value]); the NUL join keeps multi-column
// rows unambiguous and sorts exactly like the per-node sort.Strings order.
func rowString(row []interface{}) string {
	if len(row) == 1 {
		s, _ := row[0].(string)
		return s
	}
	key := ""
	for i, v := range row {
		s, _ := v.(string)
		if i > 0 {
			key += "\x00"
		}
		key += s
	}
	return key
}

// skeletonFor builds the empty result shell of a fanned metadata
// statement with the exact Name/Columns a single node emits, so a merge
// over zero rows still renders byte-identically.
func skeletonFor(st tsdb.Statement) tsdb.ExecResult {
	var s tsdb.ResultSeries
	switch st.Kind {
	case tsdb.StmtShowDatabases:
		s = tsdb.ResultSeries{Name: "databases", Columns: []string{"name"}}
	case tsdb.StmtShowMeasurements:
		s = tsdb.ResultSeries{Name: "measurements", Columns: []string{"name"}}
	case tsdb.StmtShowFieldKeys:
		s = tsdb.ResultSeries{Name: st.Query.Measurement, Columns: []string{"fieldKey"}}
	case tsdb.StmtShowTagKeys:
		s = tsdb.ResultSeries{Name: st.Query.Measurement, Columns: []string{"tagKey"}}
	case tsdb.StmtShowTagValues:
		s = tsdb.ResultSeries{Name: st.Query.Measurement, Columns: []string{"key", "value"}}
	}
	return tsdb.ExecResult{Series: []tsdb.ResultSeries{s}}
}
