// Package analysis implements the data analysis methodology of the LMS
// paper (Sect. V): elementary resource-utilization metrics drawn from
// system-level, application-level and hardware-performance-counter sources,
// pathological-job detection with threshold + timeout rules (Fig. 4), a
// performance-pattern decision tree for spotting optimization potential
// (refs [17] and the FEPA project [8]), and the online job evaluation table
// shown as the dashboard header (Fig. 2).
package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Condition says on which side of the threshold a sample is pathological.
type Condition int

// Threshold conditions.
const (
	Below Condition = iota
	Above
)

// String names the condition.
func (c Condition) String() string {
	if c == Above {
		return "above"
	}
	return "below"
}

// Rule is one pathological-job detection rule: a metric staying below/above
// a threshold for at least Timeout (paper: "detection of pathological jobs
// is based on simple rules for the resource utilization metrics using
// thresholds and timeouts").
type Rule struct {
	Name        string
	Measurement string
	Field       string
	Cond        Condition
	Threshold   float64
	Timeout     time.Duration
	Description string
}

// DefaultRules is the rule set for the Sect. I pathologies, with the Fig. 4
// 10-minute timeout on the HPM rules.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:        "low_flops",
			Measurement: "likwid_mem_dp", Field: "dp_mflop_s",
			Cond: Below, Threshold: 100, Timeout: 10 * time.Minute,
			Description: "DP FP rate below 100 MFLOP/s",
		},
		{
			Name:        "low_membw",
			Measurement: "likwid_mem_dp", Field: "memory_bandwidth_mbytes_s",
			Cond: Below, Threshold: 500, Timeout: 10 * time.Minute,
			Description: "memory bandwidth below 500 MB/s",
		},
		{
			Name:        "idle_cpu",
			Measurement: "cpu", Field: "percent",
			Cond: Below, Threshold: 5, Timeout: 10 * time.Minute,
			Description: "CPU utilization below 5%",
		},
		{
			Name:        "memory_exceeded",
			Measurement: "memory", Field: "used_percent",
			Cond: Above, Threshold: 95, Timeout: time.Minute,
			Description: "allocated memory above 95% of capacity",
		},
	}
}

// TimedValue is one sample of a metric timeline.
type TimedValue struct {
	T time.Time
	V float64
}

// Violation is one detected pathological interval.
type Violation struct {
	Rule     Rule
	Start    time.Time
	End      time.Time
	Extremum float64 // the worst value inside the interval
	Samples  int
}

// Duration of the violation.
func (v Violation) Duration() time.Duration { return v.End.Sub(v.Start) }

// String renders a human-readable description, the text shown in the job
// evaluation header.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s for %s (from %s to %s, worst %.4g)",
		v.Rule.Name, v.Rule.Description, v.Duration().Round(time.Second),
		v.Start.Format("15:04:05"), v.End.Format("15:04:05"), v.Extremum)
}

// Detect finds all maximal runs of consecutive samples satisfying the rule
// condition whose span is at least the rule timeout. Samples must be in
// chronological order (the tsdb returns them sorted).
func Detect(rule Rule, series []TimedValue) []Violation {
	var out []Violation
	i := 0
	matches := func(v float64) bool {
		if rule.Cond == Below {
			return v < rule.Threshold
		}
		return v > rule.Threshold
	}
	for i < len(series) {
		if !matches(series[i].V) {
			i++
			continue
		}
		j := i
		extremum := series[i].V
		for j+1 < len(series) && matches(series[j+1].V) {
			j++
			if rule.Cond == Below && series[j].V < extremum {
				extremum = series[j].V
			}
			if rule.Cond == Above && series[j].V > extremum {
				extremum = series[j].V
			}
		}
		span := series[j].T.Sub(series[i].T)
		if span >= rule.Timeout {
			out = append(out, Violation{
				Rule:     rule,
				Start:    series[i].T,
				End:      series[j].T,
				Extremum: extremum,
				Samples:  j - i + 1,
			})
		}
		i = j + 1
	}
	return out
}

// DetectStreaming is the online variant: feed samples one at a time and
// receive a violation as soon as the sustained window crosses the timeout
// (instant user feedback, Sect. I). Ongoing violations extend the returned
// interval on subsequent samples.
type DetectStreaming struct {
	Rule Rule

	runStart time.Time
	extremum float64
	samples  int
	inRun    bool
	reported bool
}

// InRun reports whether the detector is currently inside a run of
// condition-matching samples (not necessarily past the timeout yet).
func (d *DetectStreaming) InRun() bool { return d.inRun }

// Feed consumes one sample. The returned violation (if any) covers the run
// up to this sample; it is emitted on every sample once the timeout is
// crossed, so callers see the interval grow live.
func (d *DetectStreaming) Feed(s TimedValue) (Violation, bool) {
	matches := s.V < d.Rule.Threshold
	if d.Rule.Cond == Above {
		matches = s.V > d.Rule.Threshold
	}
	if !matches {
		d.inRun = false
		d.reported = false
		return Violation{}, false
	}
	if !d.inRun {
		d.inRun = true
		d.runStart = s.T
		d.extremum = s.V
		d.samples = 1
	} else {
		d.samples++
		if d.Rule.Cond == Below && s.V < d.extremum {
			d.extremum = s.V
		}
		if d.Rule.Cond == Above && s.V > d.extremum {
			d.extremum = s.V
		}
	}
	if s.T.Sub(d.runStart) >= d.Rule.Timeout {
		d.reported = true
		return Violation{
			Rule:     d.Rule,
			Start:    d.runStart,
			End:      s.T,
			Extremum: d.extremum,
			Samples:  d.samples,
		}, true
	}
	return Violation{}, false
}

// Stats summarizes a sample set: the five numbers the evaluation table
// shows per metric.
type Stats struct {
	Min, Median, Max, Mean, Stddev float64
	N                              int
}

// ComputeStats reduces values to Stats. Empty input yields zero Stats.
func ComputeStats(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	stddev := 0.0
	if len(s) > 1 {
		stddev = math.Sqrt(ss / float64(len(s)-1))
	}
	var median float64
	if len(s)%2 == 1 {
		median = s[len(s)/2]
	} else {
		median = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return Stats{Min: s[0], Median: median, Max: s[len(s)-1], Mean: mean, Stddev: stddev, N: len(s)}
}

// ImbalanceFrac quantifies load imbalance as (max-min)/max over per-node or
// per-core values; 0 = perfectly balanced, 1 = at least one unit fully idle
// while another works.
func ImbalanceFrac(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	st := ComputeStats(values)
	if st.Max <= 0 {
		return 0
	}
	return (st.Max - st.Min) / st.Max
}
