package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func tv(sec int64, v float64) TimedValue {
	return TimedValue{T: time.Unix(sec, 0).UTC(), V: v}
}

func lowFlopsRule() Rule {
	return Rule{
		Name: "low_flops", Measurement: "likwid_mem_dp", Field: "dp_mflop_s",
		Cond: Below, Threshold: 100, Timeout: 10 * time.Minute,
		Description: "DP FP rate below 100 MFLOP/s",
	}
}

func TestDetectFig4Scenario(t *testing.T) {
	// Fig. 4: computation, then a >10 minute break with the FP rate below
	// threshold, then computation resumes. Samples every 60 s.
	rule := lowFlopsRule()
	var series []TimedValue
	for i := 0; i < 120; i++ {
		v := 2000.0 // healthy
		if i >= 30 && i < 45 {
			v = 5.0 // 15 minutes of near-idle
		}
		series = append(series, tv(int64(i*60), v))
	}
	got := Detect(rule, series)
	if len(got) != 1 {
		t.Fatalf("violations %d", len(got))
	}
	v := got[0]
	if v.Start.Unix() != 30*60 || v.End.Unix() != 44*60 {
		t.Fatalf("interval %v..%v", v.Start, v.End)
	}
	if v.Duration() != 14*time.Minute {
		t.Fatalf("duration %v", v.Duration())
	}
	if v.Extremum != 5 || v.Samples != 15 {
		t.Fatalf("%+v", v)
	}
	if !strings.Contains(v.String(), "low_flops") {
		t.Fatalf("string %q", v.String())
	}
}

func TestDetectShortDipIgnored(t *testing.T) {
	rule := lowFlopsRule()
	var series []TimedValue
	for i := 0; i < 60; i++ {
		v := 2000.0
		if i >= 20 && i < 25 { // only 4 minutes below
			v = 5.0
		}
		series = append(series, tv(int64(i*60), v))
	}
	if got := Detect(rule, series); len(got) != 0 {
		t.Fatalf("short dip flagged: %+v", got)
	}
}

func TestDetectMultipleViolations(t *testing.T) {
	rule := lowFlopsRule()
	var series []TimedValue
	for i := 0; i < 200; i++ {
		v := 2000.0
		if (i >= 20 && i < 40) || (i >= 100 && i < 140) {
			v = 1.0
		}
		series = append(series, tv(int64(i*60), v))
	}
	got := Detect(rule, series)
	if len(got) != 2 {
		t.Fatalf("violations %d", len(got))
	}
	if got[0].Duration() != 19*time.Minute || got[1].Duration() != 39*time.Minute {
		t.Fatalf("durations %v %v", got[0].Duration(), got[1].Duration())
	}
}

func TestDetectAboveCondition(t *testing.T) {
	rule := Rule{Name: "mem", Cond: Above, Threshold: 95, Timeout: time.Minute}
	series := []TimedValue{
		tv(0, 50), tv(60, 96), tv(120, 98), tv(180, 99), tv(240, 50),
	}
	got := Detect(rule, series)
	if len(got) != 1 {
		t.Fatalf("violations %+v", got)
	}
	if got[0].Extremum != 99 {
		t.Fatalf("extremum %v", got[0].Extremum)
	}
	if Above.String() != "above" || Below.String() != "below" {
		t.Fatal("condition strings")
	}
}

func TestDetectEdges(t *testing.T) {
	rule := lowFlopsRule()
	if got := Detect(rule, nil); got != nil {
		t.Fatal("nil series")
	}
	// Single sample: zero span, below any positive timeout.
	if got := Detect(rule, []TimedValue{tv(0, 1)}); len(got) != 0 {
		t.Fatal("single sample flagged")
	}
	// Zero timeout: even one sample is a violation.
	rule.Timeout = 0
	if got := Detect(rule, []TimedValue{tv(0, 1)}); len(got) != 1 {
		t.Fatal("zero timeout missed")
	}
	// Violation running to the end of the series is reported.
	rule.Timeout = 10 * time.Minute
	var series []TimedValue
	for i := 0; i < 20; i++ {
		series = append(series, tv(int64(i*60), 1))
	}
	got := Detect(rule, series)
	if len(got) != 1 || got[0].End.Unix() != 19*60 {
		t.Fatalf("%+v", got)
	}
}

func TestDetectStreamingMatchesBatch(t *testing.T) {
	rule := lowFlopsRule()
	var series []TimedValue
	for i := 0; i < 120; i++ {
		v := 2000.0
		if i >= 30 && i < 45 {
			v = 5.0
		}
		series = append(series, tv(int64(i*60), v))
	}
	ds := &DetectStreaming{Rule: rule}
	var last Violation
	fired := 0
	var firstFire time.Time
	for _, s := range series {
		if v, ok := ds.Feed(s); ok {
			if fired == 0 {
				firstFire = s.T
			}
			fired++
			last = v
		}
	}
	if fired == 0 {
		t.Fatal("streaming never fired")
	}
	// First alarm exactly when the sustained window reaches the timeout:
	// run starts at sample 30 (t=1800 s), timeout 10 min -> t=2400 s.
	if firstFire.Unix() != 30*60+600 {
		t.Fatalf("first fire at %v", firstFire)
	}
	batch := Detect(rule, series)[0]
	if !last.Start.Equal(batch.Start) || !last.End.Equal(batch.End) || last.Extremum != batch.Extremum {
		t.Fatalf("streaming %+v vs batch %+v", last, batch)
	}
}

func TestDetectStreamingResets(t *testing.T) {
	rule := Rule{Cond: Below, Threshold: 10, Timeout: 2 * time.Minute}
	ds := &DetectStreaming{Rule: rule}
	if _, ok := ds.Feed(tv(0, 1)); ok {
		t.Fatal("fired too early")
	}
	if _, ok := ds.Feed(tv(60, 1)); ok {
		t.Fatal("fired before timeout")
	}
	// Recovery resets the run.
	if _, ok := ds.Feed(tv(120, 100)); ok {
		t.Fatal("fired on healthy sample")
	}
	if _, ok := ds.Feed(tv(180, 1)); ok {
		t.Fatal("fired right after reset")
	}
	if _, ok := ds.Feed(tv(300, 1)); !ok {
		t.Fatal("did not fire after new sustained window")
	}
}

// Property: batch detection finds exactly the maximal runs >= timeout.
func TestDetectProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	rule := Rule{Cond: Below, Threshold: 0.5, Timeout: 5 * time.Minute}
	f := func(seed int64) bool {
		_ = seed
		n := r.Intn(200) + 2
		series := make([]TimedValue, n)
		below := make([]bool, n)
		for i := 0; i < n; i++ {
			v := r.Float64()
			series[i] = tv(int64(i*60), v)
			below[i] = v < 0.5
		}
		got := Detect(rule, series)
		// Reference: scan runs.
		var want []struct{ start, end int }
		i := 0
		for i < n {
			if !below[i] {
				i++
				continue
			}
			j := i
			for j+1 < n && below[j+1] {
				j++
			}
			if (j-i)*60 >= 300 {
				want = append(want, struct{ start, end int }{i, j})
			}
			i = j + 1
		}
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			if got[k].Start.Unix() != int64(want[k].start*60) || got[k].End.Unix() != int64(want[k].end*60) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats([]float64{4, 1, 3, 2})
	if s.Min != 1 || s.Max != 4 || s.Median != 2.5 || s.Mean != 2.5 || s.N != 4 {
		t.Fatalf("%+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev %v want %v", s.Stddev, want)
	}
	odd := ComputeStats([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median %v", odd.Median)
	}
	if z := ComputeStats(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("%+v", z)
	}
	one := ComputeStats([]float64{7})
	if one.Stddev != 0 || one.Median != 7 {
		t.Fatalf("%+v", one)
	}
}

func TestImbalanceFrac(t *testing.T) {
	if ImbalanceFrac([]float64{10, 10, 10}) != 0 {
		t.Error("balanced")
	}
	if got := ImbalanceFrac([]float64{10, 0}); got != 1 {
		t.Errorf("fully imbalanced %v", got)
	}
	if got := ImbalanceFrac([]float64{10, 5}); got != 0.5 {
		t.Errorf("half %v", got)
	}
	if ImbalanceFrac([]float64{5}) != 0 || ImbalanceFrac(nil) != 0 {
		t.Error("degenerate")
	}
	if ImbalanceFrac([]float64{0, 0}) != 0 {
		t.Error("all zero")
	}
}

func TestClassifyLeaves(t *testing.T) {
	peak := PatternInput{PeakMemBWMBs: 50000, PeakDPMFlops: 300000}
	cases := []struct {
		name string
		in   PatternInput
		want Pattern
	}{
		{"idle", PatternInput{CPUUtil: 0.02}, PatternIdle},
		{"imbalance", with(peak, func(p *PatternInput) { p.CPUUtil = 0.9; p.Imbalance = 0.8 }), PatternLoadImbalance},
		{"bandwidth", with(peak, func(p *PatternInput) {
			p.CPUUtil = 0.9
			p.MemBWMBs = 45000
			p.IPC = 0.7
		}), PatternBandwidthBound},
		{"compute", with(peak, func(p *PatternInput) {
			p.CPUUtil = 0.95
			p.DPMFlops = 200000
			p.IPC = 2.5
		}), PatternComputeBound},
		{"branching", with(peak, func(p *PatternInput) {
			p.CPUUtil = 0.9
			p.IPC = 1.0
			p.BranchMissRatio = 0.2
		}), PatternBranching},
		{"latency", with(peak, func(p *PatternInput) {
			p.CPUUtil = 0.9
			p.IPC = 0.3
		}), PatternLatencyBound},
		{"balanced", with(peak, func(p *PatternInput) {
			p.CPUUtil = 0.9
			p.IPC = 1.5
		}), PatternBalanced},
	}
	for _, c := range cases {
		got := Classify(c.in)
		if got.Pattern != c.want {
			t.Errorf("%s: got %s want %s (path %v)", c.name, got.Pattern, c.want, got.Path)
		}
		if len(got.Path) == 0 || got.Advice == "" {
			t.Errorf("%s: missing explainability: %+v", c.name, got)
		}
	}
}

func with(base PatternInput, f func(*PatternInput)) PatternInput {
	f(&base)
	return base
}

// Property: the decision tree is total — every random input classifies.
func TestClassifyTotalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	valid := map[Pattern]bool{
		PatternIdle: true, PatternLoadImbalance: true, PatternBandwidthBound: true,
		PatternComputeBound: true, PatternLatencyBound: true, PatternBranching: true,
		PatternBalanced: true,
	}
	f := func(seed int64) bool {
		_ = seed
		in := PatternInput{
			CPUUtil:         r.Float64(),
			IPC:             r.Float64() * 4,
			DPMFlops:        r.Float64() * 1e6,
			MemBWMBs:        r.Float64() * 1e5,
			PeakMemBWMBs:    r.Float64() * 1e5,
			PeakDPMFlops:    r.Float64() * 1e6,
			Imbalance:       r.Float64(),
			BranchMissRatio: r.Float64() / 2,
		}
		c := Classify(in)
		return valid[c.Pattern] && len(c.Path) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
