package tsdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestHTTPMultiStatementQuery checks that one request may carry several
// ';'-separated statements, each yielding one entry in "results" — the
// InfluxDB behaviour the dashboard agent uses to batch its panel queries.
func TestHTTPMultiStatementQuery(t *testing.T) {
	store := NewStore()
	db := store.CreateDatabase("lms")
	for i := 0; i < 5; i++ {
		_ = db.WritePoint(pt("cpu", map[string]string{"hostname": "h1"}, float64(i), int64(i)))
	}
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?db=lms&q=" +
		url.QueryEscape("SHOW MEASUREMENTS; SELECT mean(value) FROM cpu"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []ExecResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results %d", len(out.Results))
	}
	if out.Results[0].Series[0].Values[0][0].(string) != "cpu" {
		t.Fatalf("%+v", out.Results[0])
	}
	if out.Results[1].Series[0].Values[0][1].(float64) != 2 {
		t.Fatalf("%+v", out.Results[1])
	}
}

// TestHTTPQueryErrorInResults checks that a statement failing at execution
// reports its error inside the results array (HTTP 200), like InfluxDB.
func TestHTTPQueryErrorInResults(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?db=ghost&q=" + url.QueryEscape("SELECT value FROM cpu"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Results []ExecResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || !strings.Contains(out.Results[0].Err, "database") {
		t.Fatalf("%+v", out.Results)
	}
}

// TestWindowedDerivative exercises the derivative aggregator inside GROUP
// BY time windows, the query shape behind rate graphs of counter metrics.
func TestWindowedDerivative(t *testing.T) {
	db := NewDB("lms")
	// Counter rising 100/s for 60 s, then 200/s for 60 s.
	total := 0.0
	for i := 0; i <= 120; i++ {
		rate := 100.0
		if i > 60 {
			rate = 200.0
		}
		total += rate
		_ = db.WritePoint(pt("net", nil, total, int64(i)*time.Second.Nanoseconds()))
	}
	res, err := db.Select(Query{
		Measurement: "net",
		Every:       30 * time.Second,
		Agg:         AggDerivative,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) < 4 {
		t.Fatalf("rows %d", len(rows))
	}
	// Single-sample windows (the trailing partial one) yield no derivative
	// and render as nil.
	var rates []float64
	for _, r := range rows {
		if r.Values[0] != nil {
			rates = append(rates, r.Values[0].FloatVal())
		}
	}
	if len(rates) < 4 {
		t.Fatalf("rates %v", rates)
	}
	if rates[0] < 90 || rates[0] > 110 {
		t.Fatalf("first window rate %v", rates[0])
	}
	last := rates[len(rates)-1]
	if last < 190 || last > 210 {
		t.Fatalf("last window rate %v", last)
	}
}

// TestShowTagValuesQuotedKey accepts a quoted tag key.
func TestShowTagValuesQuotedKey(t *testing.T) {
	store := seedStore(t)
	res := execOne(t, store, "lms", `SHOW TAG VALUES FROM cpu WITH KEY = "hostname"`)
	if len(res.Series[0].Values) != 2 {
		t.Fatalf("%+v", res.Series[0])
	}
}

// TestLimitThroughInfluxQL verifies LIMIT reaches the executor.
func TestLimitThroughInfluxQL(t *testing.T) {
	store := seedStore(t)
	res := execOne(t, store, "lms", "SELECT value FROM cpu WHERE hostname = 'h1' LIMIT 2")
	if len(res.Series[0].Values) != 2 {
		t.Fatalf("rows %d", len(res.Series[0].Values))
	}
}

// TestSelectFieldSubset checks that selecting one of several fields leaves
// the others out of the columns.
func TestSelectFieldSubset(t *testing.T) {
	db := NewDB("lms")
	_ = db.WritePoint(pt("m", nil, 1, 1))
	p := pt("m", nil, 2, 2)
	p.Fields["extra"] = p.Fields["value"]
	_ = db.WritePoint(p)
	res, err := db.Select(Query{Measurement: "m", Fields: []string{"extra"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Columns) != 1 || res[0].Columns[0] != "extra" {
		t.Fatalf("columns %v", res[0].Columns)
	}
	// Only the row that has the field appears.
	if len(res[0].Rows) != 1 {
		t.Fatalf("rows %+v", res[0].Rows)
	}
}
