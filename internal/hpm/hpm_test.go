package hpm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testTopo() Topology {
	return Topology{Sockets: 2, CoresPerSocket: 4, ThreadsPerCore: 1, BaseClockMHz: 2000}
}

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(testTopo())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTopologyBasics(t *testing.T) {
	topo := testTopo()
	if topo.NumHWThreads() != 8 {
		t.Fatalf("threads %d", topo.NumHWThreads())
	}
	threads := topo.HWThreads()
	if len(threads) != 8 {
		t.Fatalf("len %d", len(threads))
	}
	if threads[0].Socket != 0 || threads[7].Socket != 1 {
		t.Fatalf("sockets %+v", threads)
	}
	if threads[3].Core != 3 || threads[4].Core != 4 {
		t.Fatalf("cores %+v", threads)
	}
	s, err := topo.SocketOf(5)
	if err != nil || s != 1 {
		t.Fatalf("SocketOf(5)=%d,%v", s, err)
	}
	if _, err := topo.SocketOf(8); err == nil {
		t.Fatal("out of range accepted")
	}
	if err := (Topology{}).Validate(); err == nil {
		t.Fatal("zero topology accepted")
	}
	if err := (Topology{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1}).Validate(); err == nil {
		t.Fatal("zero clock accepted")
	}
}

func TestTopologySMT(t *testing.T) {
	topo := Topology{Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 2, BaseClockMHz: 2000}
	threads := topo.HWThreads()
	if len(threads) != 4 {
		t.Fatalf("len %d", len(threads))
	}
	// Two SMT threads of core 0, then two of core 1.
	if threads[0].Core != 0 || threads[1].Core != 0 || threads[2].Core != 1 {
		t.Fatalf("%+v", threads)
	}
}

func TestParseCPUList(t *testing.T) {
	ids, err := ParseCPUList("0-2,5,7", 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 5, 7}
	if len(ids) != len(want) {
		t.Fatalf("ids %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids %v", ids)
		}
	}
	// Duplicates collapse.
	ids, _ = ParseCPUList("1,1,0-1", 4)
	if len(ids) != 2 {
		t.Fatalf("dedup %v", ids)
	}
	for _, bad := range []string{"", "a", "3-1", "0-9", "9", "-1", "1,,2"} {
		if _, err := ParseCPUList(bad, 8); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestEventCatalog(t *testing.T) {
	ev, err := LookupEvent("CAS_COUNT_RD")
	if err != nil || ev.Scope != ScopeSocket {
		t.Fatalf("%+v %v", ev, err)
	}
	ev, err = LookupEvent("INSTR_RETIRED_ANY")
	if err != nil || ev.Scope != ScopeThread {
		t.Fatalf("%+v %v", ev, err)
	}
	if _, err := LookupEvent("MADE_UP"); err == nil {
		t.Fatal("unknown event accepted")
	}
	if len(EventNames()) < 15 {
		t.Fatalf("catalog too small: %d", len(EventNames()))
	}
	if ScopeThread.String() != "thread" || ScopeSocket.String() != "socket" {
		t.Fatal("scope strings")
	}
}

func TestValidCounter(t *testing.T) {
	if err := ValidCounter("PMC0", ScopeThread); err != nil {
		t.Fatal(err)
	}
	if err := ValidCounter("PMC0", ScopeSocket); err == nil {
		t.Fatal("scope mismatch accepted")
	}
	if err := ValidCounter("XYZ0", ScopeThread); err == nil {
		t.Fatal("unknown register accepted")
	}
	if err := ValidCounter("MBOX0C0", ScopeSocket); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinGroupsParse(t *testing.T) {
	names := GroupNames()
	if len(names) < 10 {
		t.Fatalf("only %d groups", len(names))
	}
	for _, n := range names {
		g, err := LookupGroup(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if g.Short == "" || len(g.Events) == 0 || len(g.Metrics) == 0 {
			t.Errorf("%s: incomplete group %+v", n, g)
		}
		if g.Long == "" {
			t.Errorf("%s: missing LONG section", n)
		}
	}
	if _, err := LookupGroup("NOPE"); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestGroupHelpers(t *testing.T) {
	g, _ := LookupGroup("FLOPS_DP")
	ev, ok := g.CounterEvent("PMC1")
	if !ok || ev.Name != "FP_ARITH_INST_RETIRED_SCALAR_DOUBLE" {
		t.Fatalf("%+v %v", ev, ok)
	}
	if _, ok := g.CounterEvent("PMC9"); ok {
		t.Fatal("bogus counter found")
	}
	names := g.MetricNames()
	found := false
	for _, n := range names {
		if n == "DP MFLOP/s" {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics %v", names)
	}
}

func TestParseGroupErrors(t *testing.T) {
	bad := map[string]string{
		"empty":          "",
		"no metrics":     "EVENTSET\nFIXC0 INSTR_RETIRED_ANY\n",
		"no events":      "METRICS\nX time\n",
		"bad event":      "EVENTSET\nFIXC0 NO_SUCH_EVENT\nMETRICS\nX time\n",
		"bad counter":    "EVENTSET\nZZZ INSTR_RETIRED_ANY\nMETRICS\nX time\n",
		"scope mismatch": "EVENTSET\nPMC0 CAS_COUNT_RD\nMETRICS\nX time\n",
		"dup counter":    "EVENTSET\nFIXC0 INSTR_RETIRED_ANY\nFIXC0 CPU_CLK_UNHALTED_CORE\nMETRICS\nX time\n",
		"bad formula":    "EVENTSET\nFIXC0 INSTR_RETIRED_ANY\nMETRICS\nX ((\n",
		"free var":       "EVENTSET\nFIXC0 INSTR_RETIRED_ANY\nMETRICS\nX PMC0/time\n",
		"stray line":     "hello\nEVENTSET\nFIXC0 INSTR_RETIRED_ANY\nMETRICS\nX time\n",
		"eventset junk":  "EVENTSET\nFIXC0 INSTR_RETIRED_ANY extra\nMETRICS\nX time\n",
		"metric no name": "EVENTSET\nFIXC0 INSTR_RETIRED_ANY\nMETRICS\ntime\n",
	}
	for label, text := range bad {
		if _, err := ParseGroup("T", text); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestParseGroupComments(t *testing.T) {
	g, err := ParseGroup("C", `SHORT test
# a comment
EVENTSET
# another
FIXC0 INSTR_RETIRED_ANY

METRICS
MIPS 1.0E-06*FIXC0/time
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Events) != 1 || len(g.Metrics) != 1 {
		t.Fatalf("%+v", g)
	}
}

func TestMachineAdvance(t *testing.T) {
	m := newTestMachine(t)
	err := m.SetRates(0, EventRates{
		"INSTR_RETIRED_ANY":     2e9,
		"CPU_CLK_UNHALTED_CORE": 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(2.5); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadThreadCounter(0, "INSTR_RETIRED_ANY")
	if err != nil {
		t.Fatal(err)
	}
	if v != 5e9 {
		t.Fatalf("instr %d", v)
	}
	v, _ = m.ReadThreadCounter(0, "CPU_CLK_UNHALTED_CORE")
	if v != 25e8 {
		t.Fatalf("cycles %d", v)
	}
	// Other thread untouched.
	v, _ = m.ReadThreadCounter(1, "INSTR_RETIRED_ANY")
	if v != 0 {
		t.Fatalf("thread 1 instr %d", v)
	}
	if m.Now() != 2.5 {
		t.Fatalf("now %v", m.Now())
	}
}

func TestMachineSocketAccumulation(t *testing.T) {
	m := newTestMachine(t)
	// Threads 0 and 1 are socket 0, thread 4 is socket 1.
	_ = m.SetRates(0, EventRates{"CAS_COUNT_RD": 100})
	_ = m.SetRates(1, EventRates{"CAS_COUNT_RD": 50})
	_ = m.SetRates(4, EventRates{"CAS_COUNT_RD": 10})
	_ = m.Advance(2)
	v, err := m.ReadSocketCounter(0, "CAS_COUNT_RD")
	if err != nil {
		t.Fatal(err)
	}
	if v != 300 {
		t.Fatalf("socket0 %d", v)
	}
	v, _ = m.ReadSocketCounter(1, "CAS_COUNT_RD")
	if v != 20 {
		t.Fatalf("socket1 %d", v)
	}
}

func TestMachineFractionalCarry(t *testing.T) {
	m := newTestMachine(t)
	_ = m.SetRates(0, EventRates{"INSTR_RETIRED_ANY": 0.5})
	for i := 0; i < 10; i++ {
		_ = m.Advance(1) // 0.5 events per step
	}
	v, _ := m.ReadThreadCounter(0, "INSTR_RETIRED_ANY")
	if v != 5 {
		t.Fatalf("fractional carry lost events: %d", v)
	}
}

func TestMachineErrors(t *testing.T) {
	m := newTestMachine(t)
	if err := m.SetRates(99, nil); err == nil {
		t.Error("bad thread accepted")
	}
	if err := m.SetRates(0, EventRates{"FAKE": 1}); err == nil {
		t.Error("bad event accepted")
	}
	if err := m.SetRates(0, EventRates{"INSTR_RETIRED_ANY": -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if err := m.Advance(-1); err == nil {
		t.Error("negative dt accepted")
	}
	if _, err := m.ReadThreadCounter(0, "CAS_COUNT_RD"); err == nil {
		t.Error("socket event via thread read accepted")
	}
	if _, err := m.ReadSocketCounter(0, "INSTR_RETIRED_ANY"); err == nil {
		t.Error("thread event via socket read accepted")
	}
	if _, err := m.ReadThreadCounter(-1, "INSTR_RETIRED_ANY"); err == nil {
		t.Error("bad thread read accepted")
	}
	if _, err := m.ReadSocketCounter(9, "CAS_COUNT_RD"); err == nil {
		t.Error("bad socket read accepted")
	}
	if _, err := NewMachine(Topology{}); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestMachineIdle(t *testing.T) {
	m := newTestMachine(t)
	_ = m.SetRates(0, EventRates{"INSTR_RETIRED_ANY": 100})
	_ = m.Advance(1)
	_ = m.Idle(0)
	_ = m.Advance(1)
	v, _ := m.ReadThreadCounter(0, "INSTR_RETIRED_ANY")
	if v != 100 {
		t.Fatalf("idle thread kept counting: %d", v)
	}
}

func TestSessionFLOPSDP(t *testing.T) {
	m := newTestMachine(t)
	// Thread 0: 1 GHz core clock, 2 GFLOP/s via AVX (0.5e9 AVX instr/s).
	_ = m.SetRates(0, EventRates{
		"INSTR_RETIRED_ANY":                        1e9,
		"CPU_CLK_UNHALTED_CORE":                    2e9,
		"CPU_CLK_UNHALTED_REF":                     2e9,
		"FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE": 0.5e9,
	})
	sess, err := NewSession(m, "FLOPS_DP", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	_ = m.Advance(10)
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 10 {
		t.Fatalf("duration %v", res.Duration)
	}
	mflops := res.Metrics[0]["DP MFLOP/s"]
	if math.Abs(mflops-2000) > 1 {
		t.Fatalf("DP MFLOP/s = %v, want ~2000", mflops)
	}
	cpi := res.Metrics[0]["CPI"]
	if math.Abs(cpi-2) > 1e-9 {
		t.Fatalf("CPI %v", cpi)
	}
	clock := res.Metrics[0]["Clock [MHz]"]
	if math.Abs(clock-2000) > 1e-6 {
		t.Fatalf("Clock %v", clock)
	}
}

func TestSessionMemBandwidthSocketAttribution(t *testing.T) {
	m := newTestMachine(t)
	// Two threads on socket 0 each stream 1 GB/s read (64-byte lines).
	lineRate := 1e9 / 64
	for _, tid := range []int{0, 1} {
		_ = m.SetRates(tid, EventRates{
			"INSTR_RETIRED_ANY":     1e9,
			"CPU_CLK_UNHALTED_CORE": 2e9,
			"CPU_CLK_UNHALTED_REF":  2e9,
			"CAS_COUNT_RD":          lineRate,
		})
	}
	sess, _ := NewSession(m, "MEM", []int{0, 1})
	_ = sess.Start()
	_ = m.Advance(5)
	_ = sess.Stop()
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Socket counter attributed to first thread only.
	if res.Raw[1]["MBOX0C0"] != 0 {
		t.Fatalf("socket counter attributed twice: %d", res.Raw[1]["MBOX0C0"])
	}
	bw0 := res.Metrics[0]["Memory read bandwidth [MBytes/s]"]
	if math.Abs(bw0-2000) > 1 { // both threads' traffic: 2 GB/s = 2000 MB/s
		t.Fatalf("bw %v, want ~2000", bw0)
	}
	// Node-level sum counts the socket once.
	if sum := res.Sum("Memory read bandwidth [MBytes/s]"); math.Abs(sum-2000) > 1 {
		t.Fatalf("sum %v", sum)
	}
}

func TestSessionCounterOverflow(t *testing.T) {
	m := newTestMachine(t)
	// Park the counter 1000 events before the 48-bit wrap.
	m.poke(0, "INSTR_RETIRED_ANY", CounterMask-999)
	_ = m.SetRates(0, EventRates{
		"INSTR_RETIRED_ANY":     1e6,
		"CPU_CLK_UNHALTED_CORE": 1e6,
		"CPU_CLK_UNHALTED_REF":  1e6,
	})
	sess, _ := NewSession(m, "CLOCK", []int{0})
	_ = sess.Start()
	_ = m.Advance(1) // 1e6 events, wrapping the register
	_ = sess.Stop()
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Raw[0]["FIXC0"]; got != 1e6 {
		t.Fatalf("overflow delta %d, want 1000000", got)
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	m := newTestMachine(t)
	sess, _ := NewSession(m, "CLOCK", nil)
	if _, err := sess.Result(); err == nil {
		t.Error("result before start accepted")
	}
	if err := sess.Stop(); err == nil {
		t.Error("stop before start accepted")
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Start(); err == nil {
		t.Error("double start accepted")
	}
	if _, err := sess.Result(); err == nil {
		t.Error("result while running accepted")
	}
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Result(); err != nil {
		t.Error(err)
	}
}

func TestSessionValidation(t *testing.T) {
	m := newTestMachine(t)
	if _, err := NewSession(m, "NOPE", nil); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := NewSession(m, "CLOCK", []int{99}); err == nil {
		t.Error("bad thread accepted")
	}
	if _, err := NewSession(m, "CLOCK", []int{1, 1}); err == nil {
		t.Error("duplicate thread accepted")
	}
	sess, err := NewSession(m, "CLOCK", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sess.Threads()); got != m.Topology().NumHWThreads() {
		t.Fatalf("default threads %d", got)
	}
	if sess.Group().Name != "CLOCK" {
		t.Fatal("group accessor")
	}
}

func TestSessionRestart(t *testing.T) {
	m := newTestMachine(t)
	_ = m.SetRates(0, EventRates{
		"INSTR_RETIRED_ANY":     1e6,
		"CPU_CLK_UNHALTED_CORE": 1e6,
		"CPU_CLK_UNHALTED_REF":  1e6,
	})
	sess, _ := NewSession(m, "CLOCK", []int{0})
	for i := 0; i < 3; i++ {
		if err := sess.Start(); err != nil {
			t.Fatal(err)
		}
		_ = m.Advance(2)
		if err := sess.Stop(); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Raw[0]["FIXC0"]; got != 2e6 {
			t.Fatalf("iteration %d: delta %d", i, got)
		}
	}
}

func TestResultAggregates(t *testing.T) {
	m := newTestMachine(t)
	for tid, ipc := range map[int]float64{0: 2, 1: 1, 2: 0.5} {
		_ = m.SetRates(tid, EventRates{
			"INSTR_RETIRED_ANY":     ipc * 1e9,
			"CPU_CLK_UNHALTED_CORE": 1e9,
			"CPU_CLK_UNHALTED_REF":  1e9,
		})
	}
	sess, _ := NewSession(m, "CLOCK", []int{0, 1, 2})
	_ = sess.Start()
	_ = m.Advance(1)
	_ = sess.Stop()
	res, _ := sess.Result()
	if got := res.Max("IPC"); math.Abs(got-2) > 1e-9 {
		t.Fatalf("max %v", got)
	}
	if got := res.Min("IPC"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("min %v", got)
	}
	if got := res.Mean("IPC"); math.Abs(got-(3.5/3)) > 1e-9 {
		t.Fatalf("mean %v", got)
	}
	if len(res.MetricNames()) == 0 {
		t.Fatal("metric names empty")
	}
}

// Property: derived metrics are finite and non-negative for non-negative
// counter rates across all built-in groups.
func TestMetricsNonNegativeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	groups := GroupNames()
	f := func(seed int64) bool {
		_ = seed
		m, _ := NewMachine(testTopo())
		rates := EventRates{}
		for _, ev := range EventNames() {
			if r.Intn(2) == 0 {
				rates[ev] = math.Abs(r.NormFloat64()) * 1e9
			}
		}
		_ = m.SetRates(0, rates)
		g := groups[r.Intn(len(groups))]
		sess, err := NewSession(m, g, []int{0})
		if err != nil {
			return false
		}
		_ = sess.Start()
		_ = m.Advance(r.Float64()*10 + 0.1)
		_ = sess.Stop()
		res, err := sess.Result()
		if err != nil {
			t.Logf("%s: %v", g, err)
			return false
		}
		for name, v := range res.Metrics[0] {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Logf("%s metric %q = %v with rates %v", g, name, v, rates)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: measured FLOP rate matches the configured rate for arbitrary
// mixes of scalar/SSE/AVX instructions.
func TestFlopsRateProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		_ = seed
		m, _ := NewMachine(testTopo())
		scalar := r.Float64() * 1e9
		sse := r.Float64() * 1e9
		avx := r.Float64() * 1e9
		_ = m.SetRates(0, EventRates{
			"INSTR_RETIRED_ANY":                        1e9,
			"CPU_CLK_UNHALTED_CORE":                    2e9,
			"CPU_CLK_UNHALTED_REF":                     2e9,
			"FP_ARITH_INST_RETIRED_SCALAR_DOUBLE":      scalar,
			"FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE": sse,
			"FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE": avx,
		})
		sess, _ := NewSession(m, "FLOPS_DP", []int{0})
		_ = sess.Start()
		dur := r.Float64()*5 + 0.5
		_ = m.Advance(dur)
		_ = sess.Stop()
		res, err := sess.Result()
		if err != nil {
			return false
		}
		want := 1e-6 * (scalar + 2*sse + 4*avx)
		got := res.Metrics[0]["DP MFLOP/s"]
		return math.Abs(got-want)/math.Max(want, 1) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
