package dashboard

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/lineproto"
	"repro/internal/router"
	"repro/internal/tsdb"
)

func seedStore(t *testing.T) (*tsdb.Store, analysis.JobMeta) {
	t.Helper()
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	start := time.Unix(100000, 0).UTC()
	nodes := []string{"h1", "h2"}
	for i := 0; i < 30; i++ {
		ts := start.Add(time.Duration(i) * time.Minute)
		for _, node := range nodes {
			err := db.WritePoints([]lineproto.Point{
				{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields:      map[string]lineproto.Value{"percent": lineproto.Float(90 + float64(i%5))},
					Time:        ts,
				},
				{
					Measurement: "likwid_mem_dp",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields: map[string]lineproto.Value{
						"dp_mflop_s":                lineproto.Float(2000),
						"memory_bandwidth_mbytes_s": lineproto.Float(9000),
						"ipc":                       lineproto.Float(1.4),
					},
					Time: ts,
				},
				{
					Measurement: "pressure",
					Tags:        map[string]string{"hostname": node, "jobid": "42"},
					Fields:      map[string]lineproto.Value{"value": lineproto.Float(5.9)},
					Time:        ts,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = db.WritePoint(lineproto.Point{
		Measurement: "events",
		Tags:        map[string]string{"jobid": "42", "type": "jobstart"},
		Fields:      map[string]lineproto.Value{"text": lineproto.String("jobstart job 42")},
		Time:        start,
	})
	job := analysis.JobMeta{
		ID: "42", User: "alice", Nodes: nodes,
		Start: start, End: start.Add(30 * time.Minute),
	}
	return store, job
}

func TestGenerateJobDashboard(t *testing.T) {
	store, job := seedStore(t)
	qr := tsdb.LocalQuerier{Store: store}
	agent := &Agent{Querier: qr, Database: "lms", Evaluator: &analysis.Evaluator{Querier: qr, Database: "lms"}}
	d, err := agent.GenerateJobDashboard(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Title != "Job 42" || d.UID != "job-42" {
		t.Fatalf("%+v", d)
	}
	if !d.Time.From.Equal(job.Start) || !d.Time.To.Equal(job.End) {
		t.Fatalf("time range %+v", d.Time)
	}
	// Rows: evaluation header + cpu + likwid_mem_dp + pressure (events
	// hidden).
	if len(d.Rows) != 4 {
		titles := make([]string, len(d.Rows))
		for i, r := range d.Rows {
			titles[i] = r.Title
		}
		t.Fatalf("rows %v", titles)
	}
	if d.Rows[0].Title != "Job evaluation" || d.Rows[0].Panels[0].Type != "text" {
		t.Fatalf("header row %+v", d.Rows[0])
	}
	if !strings.Contains(d.Rows[0].Panels[0].Content, "Job 42") {
		t.Fatal("evaluation content missing")
	}
	// The likwid row has one panel per field.
	var likwidRow *Row
	for i := range d.Rows {
		if d.Rows[i].Title == "likwid_mem_dp" {
			likwidRow = &d.Rows[i]
		}
	}
	if likwidRow == nil || len(likwidRow.Panels) != 3 {
		t.Fatalf("likwid row %+v", likwidRow)
	}
	// Queries carry the job id and the time range.
	q := likwidRow.Panels[0].Targets[0].Query
	if !strings.Contains(q, "jobid = '42'") || !strings.Contains(q, "GROUP BY time(60s), hostname") {
		t.Fatalf("query %q", q)
	}
	// The pressure measurement (application-level) used the fallback
	// template.
	found := false
	for _, row := range d.Rows {
		if row.Title == "pressure" {
			found = true
		}
	}
	if !found {
		t.Fatal("application measurement not templated")
	}
	// Annotations reference the job events.
	if len(d.Annotations) != 1 || !strings.Contains(d.Annotations[0].Query, "jobid = '42'") {
		t.Fatalf("annotations %+v", d.Annotations)
	}
}

func TestGenerateJobDashboardHostSelection(t *testing.T) {
	store, job := seedStore(t)
	db := store.DB("lms")
	// Data from an unrelated host in another measurement must not add a row.
	_ = db.WritePoint(lineproto.Point{
		Measurement: "othermetric",
		Tags:        map[string]string{"hostname": "h99"},
		Fields:      map[string]lineproto.Value{"v": lineproto.Float(1)},
		Time:        job.Start,
	})
	agent := &Agent{Querier: tsdb.LocalQuerier{Store: store}, Database: "lms"}
	d, err := agent.GenerateJobDashboard(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row.Title == "othermetric" {
			t.Fatal("foreign host measurement included")
		}
	}
}

func TestGenerateRunningJobDashboard(t *testing.T) {
	store, job := seedStore(t)
	job.End = time.Time{} // running
	agent := &Agent{Querier: tsdb.LocalQuerier{Store: store}, Database: "lms"}
	d, err := agent.GenerateJobDashboard(job)
	if err != nil {
		t.Fatal(err)
	}
	if d.Time.To.Before(d.Time.From) {
		t.Fatal("bad time range for running job")
	}
}

func TestAgentValidation(t *testing.T) {
	agent := &Agent{}
	if _, err := agent.GenerateJobDashboard(analysis.JobMeta{ID: "x"}); err == nil {
		t.Fatal("nil querier accepted")
	}
}

func TestGenerateAdminDashboard(t *testing.T) {
	store, job := seedStore(t)
	agent := &Agent{Querier: tsdb.LocalQuerier{Store: store}, Database: "lms"}
	d, err := agent.GenerateAdminDashboard([]analysis.JobMeta{job, {ID: "7", User: "bob", Nodes: []string{"h3"}, Start: job.Start}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 1 || len(d.Rows[0].Panels) != 2 {
		t.Fatalf("%+v", d.Rows)
	}
	p := d.Rows[0].Panels[0]
	if p.Span != 3 { // thumbnail
		t.Fatalf("span %d", p.Span)
	}
	if !strings.Contains(p.Title, "Job 42 (alice, 2 nodes)") {
		t.Fatalf("title %q", p.Title)
	}
}

func TestDashboardValidateCatchesBadness(t *testing.T) {
	bad := []Dashboard{
		{},
		{Title: "x", Rows: []Row{{Panels: []Panel{{ID: 1, Type: "graph"}}}}},
		{Title: "x", Rows: []Row{{Panels: []Panel{{ID: 1, Type: "graph", Targets: []Target{{Query: " "}}}}}}},
		{Title: "x", Rows: []Row{{Panels: []Panel{{ID: 1, Type: "graph", Targets: []Target{{Query: "NOT A QUERY"}}}}}}},
		{Title: "x", Rows: []Row{{Panels: []Panel{
			{ID: 1, Type: "text"}, {ID: 1, Type: "text"},
		}}}},
		{Title: "x", Time: TimeRange{From: time.Unix(100, 0), To: time.Unix(50, 0)}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRenderPanelTemplateErrors(t *testing.T) {
	agent := &Agent{
		Querier:   tsdb.QuerierFor(tsdb.NewDB("lms")),
		Database:  "lms",
		Templates: []PanelTemplate{{Measurement: "*", JSON: `{{.Broken`}},
	}
	_ = agent
	if _, err := renderPanel(PanelTemplate{Measurement: "x", JSON: "{{.Broken"}, templateContext{}, 1); err == nil {
		t.Fatal("broken template accepted")
	}
	if _, err := renderPanel(PanelTemplate{Measurement: "x", JSON: "not json"}, templateContext{}, 1); err == nil {
		t.Fatal("non-JSON template accepted")
	}
	if _, err := renderPanel(PanelTemplate{Measurement: "x", JSON: `{"title":"{{.NoSuchField}}"}`}, templateContext{}, 1); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp %q", s)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat %q", got)
	}
	if got := Sparkline([]float64{math.NaN(), 1, math.NaN()}); got != " ▁ " {
		t.Errorf("nan %q", got)
	}
	if got := Sparkline([]float64{math.NaN()}); got != " " {
		t.Errorf("all-nan %q", got)
	}
}

func TestRenderDashboardText(t *testing.T) {
	store, job := seedStore(t)
	qr := tsdb.LocalQuerier{Store: store}
	agent := &Agent{Querier: qr, Database: "lms", Evaluator: &analysis.Evaluator{Querier: qr, Database: "lms"}}
	d, err := agent.GenerateJobDashboard(job)
	if err != nil {
		t.Fatal(err)
	}
	text, err := RenderDashboard(context.Background(), qr, "lms", d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"### Job 42 ###",
		"event @", "jobstart job 42",
		"-- likwid_mem_dp --",
		"hostname=h1", "hostname=h2",
		"min", "max", "last",
		"Online job evaluation",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in rendering:\n%s", want, text)
		}
	}
	// Sparkline characters present.
	if !strings.ContainsAny(text, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no sparkline in rendering:\n%s", text)
	}
}

func TestRenderPanelUnknownType(t *testing.T) {
	store, _ := seedStore(t)
	if _, err := RenderPanel(context.Background(), tsdb.LocalQuerier{Store: store}, "lms", Panel{ID: 1, Type: "piechart"}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestRenderPanelNoData(t *testing.T) {
	store := tsdb.NewStore()
	store.CreateDatabase("lms")
	out, err := RenderPanel(context.Background(), tsdb.LocalQuerier{Store: store}, "lms", Panel{
		ID: 1, Type: "graph", Title: "t",
		Targets: []Target{{Query: "SELECT value FROM ghost"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("%q", out)
	}
}

func newViewerEnv(t *testing.T) (*httptest.Server, *router.JobRegistry) {
	t.Helper()
	store, job := seedStore(t)
	qr := tsdb.LocalQuerier{Store: store}
	jobs := router.NewJobRegistry(10)
	_ = jobs.Start(&router.Job{ID: job.ID, User: job.User, Nodes: job.Nodes, Start: job.Start})
	agent := &Agent{Querier: qr, Database: "lms", Evaluator: &analysis.Evaluator{Querier: qr, Database: "lms"}}
	v := NewViewer(qr, "lms", jobs, agent)
	v.Now = func() time.Time { return job.Start.Add(30 * time.Minute) }
	srv := httptest.NewServer(v)
	t.Cleanup(srv.Close)
	return srv, jobs
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestViewerAdminView(t *testing.T) {
	srv, _ := newViewerEnv(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "Running jobs") || !strings.Contains(body, "job 42") {
		t.Fatalf("admin view:\n%s", body)
	}
	if !strings.Contains(body, "/job/42") {
		t.Fatal("job link missing")
	}
	if !strings.Contains(body, "MFLOP/s") {
		t.Fatal("thumbnail missing")
	}
}

func TestViewerJobView(t *testing.T) {
	srv, _ := newViewerEnv(t)
	code, body := get(t, srv.URL+"/job/42")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"Online job evaluation", "likwid_mem_dp", "pressure"} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q:\n%s", want, body)
		}
	}
	code, _ = get(t, srv.URL+"/job/ghost")
	if code != http.StatusNotFound {
		t.Fatalf("ghost job status %d", code)
	}
}

func TestViewerDashboardJSON(t *testing.T) {
	srv, _ := newViewerEnv(t)
	code, body := get(t, srv.URL+"/api/dashboard/42")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var d Dashboard
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.UID != "job-42" || len(d.Rows) == 0 {
		t.Fatalf("%+v", d)
	}
	code, _ = get(t, srv.URL+"/api/dashboard/ghost")
	if code != http.StatusNotFound {
		t.Fatalf("ghost status %d", code)
	}
}

func TestViewerEmptyAdminView(t *testing.T) {
	store := tsdb.NewStore()
	store.CreateDatabase("lms")
	jobs := router.NewJobRegistry(10)
	qr := tsdb.LocalQuerier{Store: store}
	v := NewViewer(qr, "lms", jobs, &Agent{Querier: qr, Database: "lms"})
	srv := httptest.NewServer(v)
	defer srv.Close()
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "no running jobs") {
		t.Fatalf("%d %s", code, body)
	}
	code, _ = get(t, srv.URL+"/nonsense")
	if code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
}

func TestBuiltinTemplatesValid(t *testing.T) {
	ctx := templateContext{
		JobID: "1", User: "u", Measurement: "anything", Field: "value",
		StartNS: 0, EndNS: 1000,
	}
	for _, tpl := range BuiltinTemplates() {
		p, err := renderPanel(tpl, ctx, 1)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Measurement, err)
		}
		for _, tgt := range p.Targets {
			if _, err := tsdb.ParseQuery(tgt.Query); err != nil {
				t.Fatalf("%s: query %q: %v", tpl.Measurement, tgt.Query, err)
			}
		}
	}
}
