package tsdb

// Whole-engine fault-injection sweeps (DESIGN.md §11): the corpus write
// sequence runs through the real durable engine — WriteBatch's
// log-then-apply path, a mid-stream checkpoint, WAL rotations — on a
// faultfs, with a fault injected at every filesystem operation index.
// After the fault (and, in the power-cut variant, after every unsynced
// byte is discarded), the engine recovers and its full /query fingerprint
// must be byte-identical to an in-memory oracle holding some batch prefix
// of at least every acknowledged batch: a failed write may survive, but
// an acknowledged one may never be lost, reordered or half-applied.

import (
	"io"
	"log"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/tsdb/durable"
)

// faultDurability is the engine configuration of the sweeps: per-batch
// fsync (the policy whose ack is a durability promise), segments small
// enough that the corpus crosses rotations, and the checkpoint trigger
// out of reach so the only checkpoint is the deterministic explicit one.
func faultDurability(f *faultfs.FS) Durability {
	return Durability{Dir: "data", Fsync: durable.FsyncPerBatch, SegmentBytes: 2048, FS: f}
}

// driveEngine writes the corpus through a durable DB on f with a
// checkpoint midway, returning how many batches were acknowledged.
// Failed batches keep going — the sweep wants the sealed WAL to refuse
// them, not the workload to stop.
func driveEngine(f *faultfs.FS) (acked int) {
	db, err := openDurableDB("lms", 4, faultDurability(f))
	if err != nil {
		return 0
	}
	batches := corpusBatches()
	for i, b := range batches {
		if i == len(batches)/2 {
			_ = db.Checkpoint()
		}
		if err := db.WriteBatch(b); err == nil {
			acked++
		}
	}
	db.Abort()
	return acked
}

// recoverFingerprint reopens the engine on f (faults disarmed) and
// renders the full corpus-query fingerprint of the recovered state.
func recoverFingerprint(t *testing.T, f *faultfs.FS) string {
	t.Helper()
	db, err := openDurableDB("lms", 4, faultDurability(f))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	st := NewStore()
	st.ShardsPerDB = 4
	st.dbs["lms"] = db
	db.metrics.Store(st.metrics)
	fp := queryFingerprint(t, st, "lms")
	db.Abort()
	return fp
}

// oracleFingerprints precomputes the fingerprint of every batch prefix:
// index k holds the state after acking exactly the first k batches.
func oracleFingerprints(t *testing.T) []string {
	t.Helper()
	batches := corpusBatches()
	fps := make([]string, len(batches)+1)
	for k := 0; k <= len(batches); k++ {
		fps[k] = queryFingerprint(t, memoryOracle(t, batches[:k]), "lms")
	}
	return fps
}

// runEngineFaultSweep rehearses the workload to learn its operation
// count, then re-runs it once per index with arm(f, idx) installing the
// fault, asserting the recovered state is a batch prefix covering every
// ack.
func runEngineFaultSweep(t *testing.T, cut bool, arm func(f *faultfs.FS, idx int64)) {
	t.Helper()
	// The sweeps seal the WAL hundreds of times; keep the per-seal log
	// line (openDurableDB's OnSeal) out of the test output.
	log.SetOutput(io.Discard)
	t.Cleanup(func() { log.SetOutput(os.Stderr) })

	rehearse := faultfs.New()
	if n := driveEngine(rehearse); n != len(corpusBatches()) {
		t.Fatalf("clean rehearsal acked %d/%d batches", n, len(corpusBatches()))
	}
	ops := rehearse.Ops()
	fps := oracleFingerprints(t)

	for idx := int64(0); idx <= ops; idx++ {
		f := faultfs.New()
		arm(f, idx)
		acked := driveEngine(f)
		f.SetInject(nil)
		if cut {
			f.Crash()
		}
		fp := recoverFingerprint(t, f)
		k := -1
		for i, want := range fps {
			if fp == want {
				k = i
				break
			}
		}
		if k < 0 {
			t.Fatalf("cut=%v op %d: recovered state matches no batch prefix (%d acked)", cut, idx, acked)
		}
		if k < acked {
			t.Fatalf("cut=%v op %d: %d batches acked but recovery holds only %d — acked data lost", cut, idx, acked, k)
		}
	}
}

// TestEngineFaultSweepEIO: transient I/O error at every operation, no
// crash — recovery sees the volatile (page-cache) state.
func TestEngineFaultSweepEIO(t *testing.T) {
	runEngineFaultSweep(t, false, func(f *faultfs.FS, idx int64) {
		f.FailOp(idx, faultfs.ErrIO)
	})
}

// TestEngineFaultSweepENOSPC: the disk fills at every operation — writes
// land half their bytes and fail with ENOSPC, everything else errors.
// The operator then frees space (fault disarmed) and the engine restarts.
func TestEngineFaultSweepENOSPC(t *testing.T) {
	runEngineFaultSweep(t, false, func(f *faultfs.FS, idx int64) {
		f.SetInject(func(i faultfs.Info) *faultfs.Fault {
			if i.Index != idx {
				return nil
			}
			if i.Op == faultfs.OpWrite {
				return &faultfs.Fault{Err: faultfs.ErrNoSpace, Keep: i.Size / 2}
			}
			return &faultfs.Fault{Err: faultfs.ErrNoSpace}
		})
	})
}

// TestWALSealedGaugeAndRefusal pins the seal observability satellite: a
// fault that seals the WAL must flip WALSealed and the lms_db_wal_sealed
// gauge on /metrics to 1, and every later write must be refused — no
// silent ack-after-failure, and no sealed database hiding behind a
// healthy-looking scrape.
func TestWALSealedGaugeAndRefusal(t *testing.T) {
	log.SetOutput(io.Discard)
	t.Cleanup(func() { log.SetOutput(os.Stderr) })

	f := faultfs.New()
	db, err := openDurableDB("lms", 4, faultDurability(f))
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	st.ShardsPerDB = 4
	st.dbs["lms"] = db
	db.metrics.Store(st.metrics)

	batches := corpusBatches()
	if err := db.WriteBatch(batches[0]); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	if db.WALSealed() != nil {
		t.Fatalf("healthy WAL reports sealed: %v", db.WALSealed())
	}
	if got := scrapeMetric(t, st, `lms_db_wal_sealed{db="lms"}`); got != "0" {
		t.Fatalf("healthy gauge = %s, want 0", got)
	}

	// Every fsync now fails: the next write must seal the log.
	f.SetInject(func(i faultfs.Info) *faultfs.Fault {
		if i.Op == faultfs.OpSync {
			return &faultfs.Fault{Err: faultfs.ErrIO}
		}
		return nil
	})
	if err := db.WriteBatch(batches[1]); err == nil {
		t.Fatal("write acked through a failing fsync")
	}
	if db.WALSealed() == nil {
		t.Fatal("failed fsync did not seal the WAL")
	}
	if got := scrapeMetric(t, st, `lms_db_wal_sealed{db="lms"}`); got != "1" {
		t.Fatalf("sealed gauge = %s, want 1", got)
	}

	// The disk recovers, but the seal must hold until restart.
	f.SetInject(nil)
	if err := db.WriteBatch(batches[2]); err == nil {
		t.Fatal("sealed WAL acknowledged a write")
	}
	db.Abort()

	// After a power cut (the sealed frame never fsynced), recovery holds
	// exactly the one acked batch.
	f.Crash()
	fp := recoverFingerprint(t, f)
	if want := queryFingerprint(t, memoryOracle(t, batches[:1]), "lms"); fp != want {
		t.Fatal("recovered state does not match the acked prefix")
	}
}

// scrapeMetric renders /metrics and returns the value of one series.
func scrapeMetric(t *testing.T, st *Store, series string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	st.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" ")
		}
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, rec.Body.String())
	return ""
}

// TestEngineFaultSweepPowerCut: the machine dies at every operation and
// reboots having kept only fsynced bytes and fsynced directory entries.
// Under fsync=batch this is the strongest claim the engine makes: every
// acknowledged batch must still be there.
func TestEngineFaultSweepPowerCut(t *testing.T) {
	runEngineFaultSweep(t, true, func(f *faultfs.FS, idx int64) {
		f.KillAtOp(idx)
	})
}
