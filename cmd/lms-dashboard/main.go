// Command lms-dashboard is the dashboard agent: from a job's monitoring
// data it generates the Grafana-model dashboard JSON out of the panel
// templates (paper Sect. III-D) and optionally renders the panels as text
// graphs.
//
// It runs in two modes sharing one code path through the tsdb query API:
//
//   - offline: -data loads a line-protocol dump into an in-process store
//     and queries it through a LocalQuerier;
//   - remote: -db-url points at a running lms-db (or InfluxDB) and all
//     queries go over HTTP — the dashboard agent as its own service, the
//     deployment topology of the paper.
//
// Usage:
//
//	lms-dashboard -data job.lp -job 42 -user alice -nodes node01,node02 \
//	              -render
//	lms-dashboard -db-url http://dbhost:8086 -db lms -job 42 \
//	              -start 2017-08-04T10:00:00Z -end 2017-08-04T12:00:00Z
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/dashboard"
)

func main() { cli.Main("lms-dashboard", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-dashboard", flag.ContinueOnError)
	dataPath := fs.String("data", "", "line-protocol dump file (offline mode)")
	dbURL := fs.String("db-url", "", "base URL of a running lms-db, e.g. http://127.0.0.1:8086 (remote mode)")
	dbName := fs.String("db", "lms", "database name")
	jobID := fs.String("job", "", "job id (required)")
	user := fs.String("user", "", "job owner")
	nodesArg := fs.String("nodes", "", "comma-separated node list (default: hostnames of series tagged with the job, else all hostnames)")
	startArg := fs.String("start", "", "job start (RFC3339; offline default: earliest sample, remote default: end-1h)")
	endArg := fs.String("end", "", "job end (RFC3339; offline default: latest sample, remote default: now)")
	render := fs.Bool("render", false, "render the panels as text instead of emitting JSON")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *jobID == "" {
		return cli.UsageErr(fs, "-job is required")
	}
	if (*dataPath == "") == (*dbURL == "") {
		return cli.UsageErr(fs, "exactly one of -data (offline) or -db-url (remote) is required")
	}

	ctx := context.Background()
	qr, nodes, start, end, err := cli.JobSource{
		DataPath: *dataPath, DBURL: *dbURL, DBName: *dbName, JobID: *jobID,
		StartArg: *startArg, EndArg: *endArg, NodesArg: *nodesArg,
		OfflineEndPad: time.Second, // panels include the last sample
	}.Open(ctx)
	if err != nil {
		return err
	}

	agent := &dashboard.Agent{
		Querier: qr, Database: *dbName,
		Evaluator: &analysis.Evaluator{Querier: qr, Database: *dbName},
	}
	d, err := agent.GenerateJobDashboardContext(ctx, analysis.JobMeta{
		ID: *jobID, User: *user, Nodes: nodes,
		Start: start, End: end,
	})
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("generated dashboard invalid: %w", err)
	}
	if *render {
		text, err := dashboard.RenderDashboard(ctx, qr, *dbName, d)
		if err != nil {
			return fmt.Errorf("render: %w", err)
		}
		fmt.Fprint(stdout, text)
		return nil
	}
	out, err := d.MarshalIndent()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(out))
	return nil
}
