package lms

// Metrics lint (DESIGN.md §14): every /metrics scrape of the stack —
// lms-db's store handler and lms-router, cluster series included — must
// be valid Prometheus text exposition, every series namespaced under
// lms_, with coherent HELP/TYPE metadata and no duplicate series. The
// obs registry already panics on duplicate *registration*; this test
// pins the rendered output end to end, on live handlers that have seen
// real traffic.

import (
	"bufio"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/router"
	"repro/internal/tsdb"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// lintPromText validates one exposition-format payload and returns the
// set of sampled metric names.
func lintPromText(t *testing.T, origin, scrape string) map[string]bool {
	t.Helper()
	typed := map[string]string{}
	helped := map[string]bool{}
	seenSeries := map[string]bool{}
	names := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(scrape))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("%s: malformed HELP line %q", origin, line)
			}
			if helped[parts[0]] {
				t.Fatalf("%s: duplicate HELP for %s", origin, parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("%s: malformed TYPE line %q", origin, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("%s: bad metric type in %q", origin, line)
			}
			if _, dup := typed[parts[0]]; dup {
				t.Fatalf("%s: duplicate TYPE for %s", origin, parts[0])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("%s: malformed sample line %q", origin, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("%s: non-numeric sample value in %q", origin, line)
		}
		if labels != "" {
			for _, lv := range splitLabels(labels) {
				if !labelRe.MatchString(lv) {
					t.Fatalf("%s: malformed label %q in %q", origin, lv, line)
				}
			}
		}
		series := name + "{" + labels + "}"
		if seenSeries[series] {
			t.Fatalf("%s: duplicate series %s", origin, series)
		}
		seenSeries[series] = true

		// Histogram/summary samples hang off their family name.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] != "" {
				family = base
			}
		}
		if !strings.HasPrefix(family, "lms_") {
			t.Fatalf("%s: metric %q escapes the lms_ namespace", origin, name)
		}
		if typed[family] == "" {
			t.Fatalf("%s: sample %q has no TYPE metadata", origin, name)
		}
		if !helped[family] {
			t.Fatalf("%s: sample %q has no HELP metadata", origin, name)
		}
		names[family] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("%s: scrape carried no samples:\n%s", origin, scrape)
	}
	return names
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func TestMetricsLint(t *testing.T) {
	// lms-db: a store handler with cluster series registered, after real
	// write and query traffic (including a slow query and a shed write).
	store := tsdb.NewStore()
	store.CreateDatabase("lms")
	dbh := tsdb.NewHandler(store)
	clu, err := cluster.New(cluster.Config{Peers: []string{"http://n1", "http://n2"}, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	clu.RegisterMetrics(store.Metrics().Registry())
	dbSrv := httptest.NewServer(dbh)
	defer dbSrv.Close()

	// lms-router forwarding into the same store.
	rt, err := router.New(router.Config{Primary: router.LocalSink{DB: store.DB("lms")}})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	for _, url := range []string{
		dbSrv.URL + "/write?db=lms",
		rtSrv.URL + "/write?db=lms",
	} {
		rsp, err := rtSrv.Client().Post(url, "text/plain",
			strings.NewReader("cpu,hostname=h1 value=1 1000000000\n"))
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode != 204 {
			t.Fatalf("POST %s: %d", url, rsp.StatusCode)
		}
	}
	if rsp, err := dbSrv.Client().Get(dbSrv.URL + "/query?db=lms&q=SELECT%20value%20FROM%20cpu"); err != nil {
		t.Fatal(err)
	} else {
		rsp.Body.Close()
	}

	scrape := func(base string) string {
		rsp, err := dbSrv.Client().Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer rsp.Body.Close()
		if rsp.StatusCode != 200 {
			t.Fatalf("GET %s/metrics: %d", base, rsp.StatusCode)
		}
		body, err := io.ReadAll(rsp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	dbNames := lintPromText(t, "lms-db", scrape(dbSrv.URL))
	for _, want := range []string{
		"lms_ingest_points_total", "lms_query_seconds", "lms_http_requests_shed_total",
		"lms_cluster_nodes", "lms_db_points", "lms_wal_fsync_seconds",
	} {
		if !dbNames[want] {
			t.Fatalf("lms-db scrape missing %s (have %v)", want, dbNames)
		}
	}

	rtNames := lintPromText(t, "lms-router", scrape(rtSrv.URL))
	for want := range map[string]bool{"lms_router_received_points_total": true, "lms_router_forwarded_points_total": true} {
		if !rtNames[want] {
			t.Fatalf("lms-router scrape missing %s (have %v)", want, rtNames)
		}
	}
}
