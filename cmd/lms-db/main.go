// Command lms-db runs the standalone time-series database back-end of the
// LIKWID Monitoring Stack: an InfluxDB-compatible HTTP server
// (POST /write, GET /query, GET /ping) that also exposes its own health
// on GET /metrics (Prometheus text format, DESIGN.md §10).
//
// Ingest is bounded: -max-body-mb refuses oversized /write bodies with
// 413, and -max-inflight-reqs / -max-inflight-mb shed excess concurrent
// load with 429 + Retry-After. -slow-query logs queries above a latency
// threshold (the line carries the request's trace id).
//
// Observability (DESIGN.md §14): every /write and /query is traced into a
// bounded in-memory ring served on GET /debug/traces (-traces sets the
// capacity, 0 disables); -debug-addr starts a separate listener with the
// net/http/pprof endpoints and the same /debug/traces; -log-level selects
// the process log verbosity (debug, info, warn, error, off).
//
// The store is shard-partitioned per database for multi-core ingest; the
// -shards flag overrides the lock-shard count (default: GOMAXPROCS).
//
// In cluster mode (-cluster-peers with -node-id, DESIGN.md §12) the node
// joins a consistent-hash ring with its peers: /query requests are
// coordinated across the ring — each statement routed to the replicas
// owning its measurement, metadata statements union-merged — while /write
// stays local (the router places writes on the ring before they arrive).
// -replication sets the replica count R used for query routing; it must
// match the routers' setting.
//
// With -data-dir the store is durable (DESIGN.md §9): batches are logged
// to a write-ahead log before they are acknowledged (-fsync selects the
// sync policy), checkpoints persist the columnar state, and a restart
// recovers every database in the directory. -segment-bytes and
// -checkpoint-bytes tune WAL rotation and checkpoint cadence (the chaos
// harness shrinks both so crash-kills land mid-checkpoint). SIGINT/SIGTERM shut the
// server down gracefully: in-flight requests finish, the WAL is flushed
// and a final checkpoint is written.
//
// Usage:
//
//	lms-db -addr :8086 -db lms -retention 720h -shards 8 \
//	       -data-dir /var/lib/lms-db -fsync batch
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
)

func main() { cli.Main("lms-db", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-db", flag.ContinueOnError)
	addr := fs.String("addr", ":8086", "listen address")
	dbName := fs.String("db", "lms", "database to create at startup")
	retention := fs.Duration("retention", 0, "drop data older than this (0 = keep forever)")
	compressAfter := fs.Duration("compress-after", 0, "compress sealed runs idle this long (0 = off; try 1m)")
	shards := fs.Int("shards", 0, "lock shards per database (0 = GOMAXPROCS)")
	dataDir := fs.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	fsync := fs.String("fsync", "batch", "WAL fsync policy with -data-dir: batch, interval or off")
	segmentBytes := fs.Int64("segment-bytes", 0, "rotate WAL segments past this many bytes with -data-dir (0 = 8 MiB)")
	checkpointBytes := fs.Int64("checkpoint-bytes", 0, "checkpoint once the live WAL exceeds this many bytes with -data-dir (0 = 32 MiB)")
	slowQuery := fs.Duration("slow-query", 0, "log /query requests at least this slow (0 = off)")
	maxBodyMB := fs.Int64("max-body-mb", 0, "refuse /write bodies above this many MiB with 413 (0 = 64)")
	maxInflightMB := fs.Int64("max-inflight-mb", 0, "shed /write with 429 beyond this many MiB of in-flight bodies (0 = unlimited)")
	maxInflightReqs := fs.Int64("max-inflight-reqs", 0, "shed /write with 429 beyond this many concurrent requests (0 = unlimited)")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated base URLs of every cluster node, self included (empty = single node)")
	nodeID := fs.String("node-id", "", "this node's own entry in -cluster-peers")
	replication := fs.Int("replication", 0, "replicas per (db, measurement) in cluster mode (0 = 2)")
	debugAddr := fs.String("debug-addr", "", "separate listener for net/http/pprof and /debug/traces (empty = off)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error or off")
	traceBuf := fs.Int("traces", 256, "completed traces kept for /debug/traces (0 = tracing off)")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	peers := cli.SplitList(*clusterPeers)
	if len(peers) > 0 && *nodeID == "" {
		return cli.UsageErr(fs, "-cluster-peers requires -node-id")
	}
	policy, err := durable.ParseFsyncPolicy(*fsync)
	if err != nil {
		return cli.UsageErr(fs, "%v", err)
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return cli.UsageErr(fs, "%v", err)
	}
	obs.SetLogLevel(level)

	store, err := tsdb.OpenStore(tsdb.StoreOptions{
		ShardsPerDB:   *shards,
		CompressAfter: *compressAfter,
		Durability: tsdb.Durability{
			Dir: *dataDir, Fsync: policy,
			SegmentBytes: *segmentBytes, CheckpointBytes: *checkpointBytes,
		},
	})
	if err != nil {
		return err
	}
	db, err := store.OpenDatabase(*dbName)
	if err != nil {
		return err
	}
	if *retention > 0 {
		// The startup database and every database recovered from the data
		// directory age out on the same window.
		for _, name := range store.Databases() {
			store.DB(name).SetRetention(*retention)
		}
	}
	var ring *obs.TraceRing
	if *traceBuf > 0 {
		ring = obs.NewTraceRing(*traceBuf)
		store.SetTraces(ring)
	}
	handler := tsdb.NewHandler(store)
	handler.SlowQueryThreshold = *slowQuery
	handler.MaxBodyBytes = *maxBodyMB << 20
	handler.SetAdmission(*maxInflightReqs, *maxInflightMB<<20)
	var clu *cluster.Cluster
	if len(peers) > 0 {
		clu, err = cluster.New(cluster.Config{
			Peers:       peers,
			Self:        *nodeID,
			SelfStore:   store,
			Replication: *replication,
		})
		if err != nil {
			_ = store.Close()
			return err
		}
		handler.Distributed = clu.Querier()
		clu.RegisterMetrics(store.Metrics().Registry())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if clu != nil {
			_ = clu.Close()
		}
		_ = store.Close()
		return err
	}
	var debugLn net.Listener
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			if clu != nil {
				_ = clu.Close()
			}
			_ = store.Close()
			return err
		}
		go func() { _ = http.Serve(debugLn, obs.DebugMux(ring)) }()
		fmt.Fprintf(stdout, "lms-db: pprof and /debug/traces on %s\n", debugLn.Addr())
	}
	fmt.Fprintf(stdout, "lms-db: serving database %q (%d shards) on %s\n",
		*dbName, db.ShardCount(), ln.Addr())
	if clu != nil {
		fmt.Fprintf(stdout, "lms-db: cluster mode as %s (%d nodes, R=%d, ring %x)\n",
			*nodeID, len(clu.Ring().Nodes()), clu.Replication(), clu.Ring().Generation())
	}
	if *dataDir != "" {
		fmt.Fprintf(stdout, "lms-db: durable storage in %s (fsync=%s, %d databases recovered)\n",
			*dataDir, policy, len(store.Databases()))
	}

	// Serve until SIGINT/SIGTERM, then shut down gracefully: stop
	// accepting, let in-flight /write and /query requests finish, flush
	// the WAL and write the final checkpoint. The final checkpoint must
	// not race an in-flight /write, hence Shutdown strictly before
	// store.Close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	closeCluster := func() {
		if debugLn != nil {
			_ = debugLn.Close()
		}
		if clu != nil {
			_ = clu.Close()
		}
	}
	select {
	case err := <-errc:
		closeCluster()
		_ = store.Close()
		return err
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			closeCluster()
			_ = store.Close()
			return err
		}
		closeCluster()
		if err := store.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "lms-db: shut down")
		return nil
	}
}
