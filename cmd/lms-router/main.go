// Command lms-router runs the standalone LMS metrics router. It mimics the
// InfluxDB /write interface, tags incoming metrics with job information
// from its tag store, forwards them in per-destination batches to the
// database back-end, optionally duplicates job metrics into per-user
// databases and publishes everything on a ZeroMQ-style PUB socket.
//
// Job signals are received on POST /api/job/start and /api/job/end with a
// JSON body {"jobid": "...", "username": "...", "nodes": ["h1", ...]}.
//
// GET /metrics exposes the router's own pipeline counters (received,
// forwarded, dropped, shed) in the Prometheus text format. Ingest is
// bounded the same way as lms-db: -max-body-mb (413 on oversized bodies)
// and -max-inflight-reqs / -max-inflight-mb (429 + Retry-After on
// overload).
//
// Usage:
//
//	lms-router -addr :8090 -db-url http://localhost:8086 -db lms \
//	           -user-dbs -publish 0.0.0.0:5571
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"

	"repro/internal/cli"
	"repro/internal/pubsub"
	"repro/internal/router"
	"repro/internal/tsdb"
)

func main() { cli.Main("lms-router", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-router", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	dbURL := fs.String("db-url", "http://127.0.0.1:8086", "database back-end base URL")
	dbName := fs.String("db", "lms", "primary database name")
	userDBs := fs.Bool("user-dbs", false, "duplicate job metrics into per-user databases")
	publish := fs.String("publish", "", "ZeroMQ-style publisher listen address (empty = off)")
	hwm := fs.Int("publish-hwm", 0, "publisher high-water mark (0 = default)")
	maxBodyMB := fs.Int64("max-body-mb", 0, "refuse /write bodies above this many MiB with 413 (0 = 64)")
	maxInflightMB := fs.Int64("max-inflight-mb", 0, "shed /write with 429 beyond this many MiB of in-flight bodies (0 = unlimited)")
	maxInflightReqs := fs.Int64("max-inflight-reqs", 0, "shed /write with 429 beyond this many concurrent requests (0 = unlimited)")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	cfg := router.Config{
		Primary:             &tsdb.Client{BaseURL: *dbURL, Database: *dbName},
		MaxBodyBytes:        *maxBodyMB << 20,
		MaxInFlightRequests: *maxInflightReqs,
		MaxInFlightBytes:    *maxInflightMB << 20,
	}
	if *userDBs {
		cfg.UserSink = func(user string) router.Sink {
			return &tsdb.Client{BaseURL: *dbURL, Database: "user_" + user}
		}
	}
	if *publish != "" {
		pub, err := pubsub.NewPublisher(*publish, *hwm)
		if err != nil {
			return err
		}
		defer pub.Close()
		cfg.Publisher = pub
		fmt.Fprintf(stdout, "lms-router: publishing on %s\n", pub.Addr())
	}
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "lms-router: forwarding to %s (db %q) on %s\n", *dbURL, *dbName, ln.Addr())
	return http.Serve(ln, rt)
}
