package lms

// End-to-end tracing acceptance (DESIGN.md §14): one write entering the
// router leaves a trace whose id reappears in the storage node it was
// forwarded to, and both ends serve the trace on GET /debug/traces of a
// live listener.

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/tsdb"
)

func e2eSpans(d obs.TraceData) map[string]bool {
	out := map[string]bool{}
	for _, sp := range d.Spans {
		out[sp.Name] = true
	}
	return out
}

// TestStackTraceSingleProcess: an in-process stack (router and store in
// one process share the ring) records router ingest, enrichment, forward
// and storage apply under one trace.
func TestStackTraceSingleProcess(t *testing.T) {
	stack, err := core.NewStack(core.StackConfig{TraceBuffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if stack.Traces == nil {
		t.Fatal("TraceBuffer did not enable tracing")
	}

	srv := httptest.NewServer(stack.Router)
	defer srv.Close()
	rsp, err := srv.Client().Post(srv.URL+"/write?db=lms", "text/plain",
		strings.NewReader("cpu,hostname=h1 value=1 1000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != 204 {
		t.Fatalf("write: %d", rsp.StatusCode)
	}

	snap := stack.Traces.Snapshot(0, 0)
	if len(snap) == 0 {
		t.Fatal("no trace recorded")
	}
	spans := e2eSpans(snap[0])
	for _, want := range []string{"router.http.write", "router.enrich", "router.forward", "tsdb.apply"} {
		if !spans[want] {
			t.Fatalf("stack trace missing %q: %+v", want, snap[0].Spans)
		}
	}

	// The router serves the same trace on its own /debug/traces.
	rsp2, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp2.Body.Close()
	var got []obs.TraceData
	if err := json.NewDecoder(rsp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != snap[0].ID {
		t.Fatalf("/debug/traces diverges from the ring: %+v", got)
	}
}

// TestRouterToReplicaTrace is the split deployment: lms-router forwards
// over real HTTP to a remote lms-db. The router's ring and the replica's
// ring each hold the same trace id — the router side carrying the
// ingest/forward/rpc spans, the replica side the handler and engine
// spans — and both /debug/traces endpoints serve it.
func TestRouterToReplicaTrace(t *testing.T) {
	store := tsdb.NewStore()
	store.CreateDatabase("lms")
	dbRing := obs.NewTraceRing(16)
	store.SetTraces(dbRing)
	dbSrv := httptest.NewServer(tsdb.NewHandler(store))
	defer dbSrv.Close()

	// A standalone router pointed at the remote store, as lms-router -db-url.
	rtRing := obs.NewTraceRing(16)
	rt, err := router.New(router.Config{
		Primary: &tsdb.Client{BaseURL: dbSrv.URL, Database: "lms"},
		Traces:  rtRing,
	})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	rsp, err := rtSrv.Client().Post(rtSrv.URL+"/write?db=lms", "text/plain",
		strings.NewReader("cpu,hostname=h2 value=2 2000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != 204 {
		t.Fatalf("write: %d", rsp.StatusCode)
	}

	rsnap := rtRing.Snapshot(0, 0)
	if len(rsnap) == 0 {
		t.Fatal("router recorded no trace")
	}
	id := rsnap[0].ID
	rspans := e2eSpans(rsnap[0])
	for _, want := range []string{"router.http.write", "router.forward", "rpc.write"} {
		if !rspans[want] {
			t.Fatalf("router trace missing %q: %+v", want, rsnap[0].Spans)
		}
	}

	// The replica continued the exact same id across the HTTP hop.
	dd, ok := dbRing.Find(id)
	if !ok {
		t.Fatalf("replica has no trace %s; ring %+v", id, dbRing.Snapshot(0, 0))
	}
	dspans := e2eSpans(dd)
	for _, want := range []string{"tsdb.http.write", "tsdb.apply"} {
		if !dspans[want] {
			t.Fatalf("replica trace missing %q: %+v", want, dd.Spans)
		}
	}

	// Both live /debug/traces endpoints serve the trace.
	for _, url := range []string{rtSrv.URL + "/debug/traces", dbSrv.URL + "/debug/traces"} {
		rsp, err := rtSrv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var got []obs.TraceData
		err = json.NewDecoder(rsp.Body).Decode(&got)
		rsp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range got {
			if d.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s does not serve trace %s", url, id)
		}
	}
}
