// Package collector implements the LMS host agent: a plugin-based metric
// collection daemon in the role Diamond plays in the paper's test setup
// (Sect. III-A: "For our tests we used the Python-based data collection
// daemon Diamond, cronjobs sending metrics with curl and cronjobs supplying
// the metrics to Ganglia").
//
// The agent owns a set of plugins; each collection cycle produces a batch of
// line-protocol points tagged with the hostname and pushes them over HTTP to
// the router (or any InfluxDB-compatible endpoint). The simulation driver
// can instead call CollectOnce with a simulated timestamp and push the batch
// itself, keeping simulated time decoupled from wall-clock time.
package collector

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// Plugin produces points for one metric family. Collect receives the
// timestamp to stamp points with (simulated or wall-clock).
type Plugin interface {
	Name() string
	Collect(now time.Time) ([]lineproto.Point, error)
}

// Config configures an Agent.
type Config struct {
	// Hostname is the mandatory tag value for all emitted points.
	Hostname string
	// Endpoint is the router/database base URL. Required unless Sink is set.
	Endpoint string
	// Database is the target database (default "lms").
	Database string
	// Sink bypasses HTTP (in-process delivery for simulations/tests).
	Sink func(payload []byte) error
	// Interval is the collection period for the Run loop (default 10s).
	Interval time.Duration
	// ExtraTags are added to every point (e.g. cluster name).
	ExtraTags map[string]string
	// OnError observes per-plugin and transmission errors. Optional.
	OnError func(plugin string, err error)
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

// Agent is the collection daemon.
type Agent struct {
	cfg     Config
	send    func(payload []byte) error
	mu      sync.Mutex
	plugins []Plugin

	collected int64
	sendFails int64
}

// New validates the configuration and returns an agent with no plugins.
func New(cfg Config) (*Agent, error) {
	if cfg.Hostname == "" {
		return nil, fmt.Errorf("collector: Hostname required")
	}
	if cfg.Endpoint == "" && cfg.Sink == nil {
		return nil, fmt.Errorf("collector: Endpoint or Sink required")
	}
	if cfg.Database == "" {
		cfg.Database = "lms"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	a := &Agent{cfg: cfg}
	if cfg.Sink != nil {
		a.send = cfg.Sink
	} else {
		client := &tsdb.Client{BaseURL: strings.TrimRight(cfg.Endpoint, "/"), Database: cfg.Database, HTTPClient: cfg.HTTPClient}
		a.send = client.WriteBody
	}
	return a, nil
}

// Register adds a plugin. Duplicate names are rejected.
func (a *Agent) Register(p Plugin) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, q := range a.plugins {
		if q.Name() == p.Name() {
			return fmt.Errorf("collector: plugin %q already registered", p.Name())
		}
	}
	a.plugins = append(a.plugins, p)
	return nil
}

// Plugins lists registered plugin names.
func (a *Agent) Plugins() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, len(a.plugins))
	for i, p := range a.plugins {
		names[i] = p.Name()
	}
	sort.Strings(names)
	return names
}

// CollectOnce runs every plugin, tags the points and returns the combined
// batch without sending it. Plugin errors are reported via OnError and skip
// only that plugin's points.
func (a *Agent) CollectOnce(now time.Time) []lineproto.Point {
	a.mu.Lock()
	plugins := append([]Plugin(nil), a.plugins...)
	a.mu.Unlock()
	var out []lineproto.Point
	for _, p := range plugins {
		pts, err := p.Collect(now)
		if err != nil {
			if a.cfg.OnError != nil {
				a.cfg.OnError(p.Name(), err)
			}
			continue
		}
		for _, pt := range pts {
			if pt.Tags == nil {
				pt.Tags = map[string]string{}
			}
			if _, ok := pt.Tags["hostname"]; !ok {
				pt.Tags["hostname"] = a.cfg.Hostname
			}
			for k, v := range a.cfg.ExtraTags {
				if _, ok := pt.Tags[k]; !ok {
					pt.Tags[k] = v
				}
			}
			if pt.Time.IsZero() {
				pt.Time = now
			}
			out = append(out, pt)
		}
	}
	a.mu.Lock()
	a.collected += int64(len(out))
	a.mu.Unlock()
	return out
}

// Push sends a batch produced by CollectOnce.
func (a *Agent) Push(pts []lineproto.Point) error {
	if len(pts) == 0 {
		return nil
	}
	payload, err := lineproto.Encode(pts)
	if err != nil {
		return fmt.Errorf("collector: encode: %w", err)
	}
	if err := a.send(payload); err != nil {
		a.mu.Lock()
		a.sendFails++
		a.mu.Unlock()
		return fmt.Errorf("collector: push: %w", err)
	}
	return nil
}

// CollectAndPush is one full cycle.
func (a *Agent) CollectAndPush(now time.Time) error {
	return a.Push(a.CollectOnce(now))
}

// Run loops CollectAndPush every Interval until stop is closed. Errors are
// reported via OnError and do not stop the loop.
func (a *Agent) Run(stop <-chan struct{}) {
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			if err := a.CollectAndPush(now); err != nil && a.cfg.OnError != nil {
				a.cfg.OnError("push", err)
			}
		case <-stop:
			return
		}
	}
}

// Stats returns collected point and failed push counts.
func (a *Agent) Stats() (collected, sendFails int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.collected, a.sendFails
}

// SanitizeFieldKey converts a LIKWID metric name ("DP MFLOP/s",
// "Memory bandwidth [MBytes/s]") into a line-protocol friendly field key
// ("dp_mflop_s", "memory_bandwidth_mbytes_s").
func SanitizeFieldKey(name string) string {
	var b strings.Builder
	lastUnderscore := true // suppress leading underscore
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		case r == '[' || r == ']' || r == '(' || r == ')':
			// brackets vanish entirely
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}
