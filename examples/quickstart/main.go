// Quickstart: assemble the full LIKWID Monitoring Stack in-process, run one
// job on a simulated two-node cluster, and print the online job evaluation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lms "repro"
)

func main() {
	// A stack with per-user databases; the simulation drives two nodes and
	// samples all monitoring data every 30 simulated seconds.
	stack, sim, err := lms.NewSimulatedStack(
		lms.StackConfig{PerUserDBs: true},
		lms.SimConfig{Nodes: 2, CollectInterval: 30},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// Submit a bandwidth-bound streaming job on both nodes (20 cores each).
	job := lms.JobRequest{ID: "1001.master", User: "alice", Nodes: 2}
	if err := sim.SubmitJob(job, lms.NewTriad(20, 1200)); err != nil {
		log.Fatal(err)
	}

	// Run 25 simulated minutes: the scheduler allocates the job, the router
	// tags every metric with the job id, collectors sample HPM and system
	// metrics, and the job ends.
	if err := sim.Run(1500); err != nil {
		log.Fatal(err)
	}

	received, forwarded, dropped := stack.Router.Stats()
	fmt.Printf("router: received %d points, forwarded %d, dropped %d\n",
		received, forwarded, dropped)
	fmt.Printf("database %q: %d points, measurements: %v\n\n",
		stack.DBName(), stack.DB.PointCount(), stack.DB.Measurements())

	// The online job evaluation (paper Fig. 2): per-metric min/median/max
	// across the nodes plus per-node columns, rule violations and the
	// performance-pattern verdict.
	finished := sim.Sched.Finished()
	report, err := stack.Evaluator.Evaluate(sim.JobMeta(finished[0]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.FormatTable())

	// Job metrics were duplicated into the per-user database.
	userDB := stack.Store.DB("user_alice")
	fmt.Printf("\nper-user database user_alice holds %d points\n", userDB.PointCount())
}
