// Package workload provides synthetic application models that drive the
// simulated hardware (package hpm) and OS (package proc) counters.
//
// The paper evaluates LMS with real applications: Mantevo's miniMD proxy app
// for application-level monitoring (Fig. 3) and production jobs whose
// pathological behaviour shows up in the HPM timelines (Fig. 4). Since this
// reproduction has no silicon to run on, each workload is a small analytic
// model that produces, per simulated core and time, the hardware event rates
// a real run would generate: instructions, cycles, FP operations by SIMD
// width, cache and memory traffic, branches and package energy. The models
// are deliberately simple but dimensionally correct, so the derived LIKWID
// metrics land in physically plausible ranges (a bandwidth-bound triad
// sustains tens of GB/s per socket, a DGEMM reaches a large fraction of
// peak FLOP/s, an idle core counts nothing).
package workload

import (
	"fmt"
	"math"

	"repro/internal/hpm"
)

// CPUProfile is the steady-state execution profile of one core. All rates
// are per second of wall-clock time.
type CPUProfile struct {
	// ClockMHz is the effective core frequency; 0 means idle (halted).
	ClockMHz float64
	// IPC is instructions per core cycle.
	IPC float64
	// ScalarDP, SSEDP and AVXDP are retired FP instructions per second by
	// SIMD width (counting instructions, not flops).
	ScalarDP, SSEDP, AVXDP float64
	// ScalarSP, SSESP, AVXSP are the single-precision equivalents.
	ScalarSP, SSESP, AVXSP float64
	// MemBytes is DRAM traffic in bytes/s caused by this core (read+write,
	// split 2:1 read:write in the counter model).
	MemBytes float64
	// L2Bytes and L3Bytes are cache traffic in bytes/s.
	L2Bytes, L3Bytes float64
	// BranchFrac is the branch share of the instruction mix; MissRatio the
	// mispredicted fraction of branches.
	BranchFrac, MissRatio float64
	// LoadFrac and StoreFrac are the load/store shares of the instruction
	// mix.
	LoadFrac, StoreFrac float64
	// TLBMissRate is DTLB load-miss page walks per second.
	TLBMissRate float64
	// PowerWatts is the package power attributable to this core, including
	// its share of the socket baseline.
	PowerWatts float64
	// UserFrac and SysFrac are the OS-level CPU time shares for /proc.
	UserFrac, SysFrac float64
}

// Idle returns true for a halted-core profile.
func (p CPUProfile) Idle() bool { return p.ClockMHz <= 0 }

// Rates converts the profile into hardware event rates for the simulated
// machine. baseClockMHz is the reference clock of the machine.
func (p CPUProfile) Rates(baseClockMHz float64) hpm.EventRates {
	if p.Idle() {
		// A halted core still draws idle power.
		if p.PowerWatts > 0 {
			return hpm.EventRates{"PWR_PKG_ENERGY": p.PowerWatts * 1e6}
		}
		return nil
	}
	cycles := p.ClockMHz * 1e6
	instr := p.IPC * cycles
	lineRate := func(bytes float64) float64 { return bytes / 64.0 }
	r := hpm.EventRates{
		"INSTR_RETIRED_ANY":     instr,
		"CPU_CLK_UNHALTED_CORE": cycles,
		"CPU_CLK_UNHALTED_REF":  baseClockMHz * 1e6,
	}
	set := func(ev string, rate float64) {
		if rate > 0 {
			r[ev] = rate
		}
	}
	set("FP_ARITH_INST_RETIRED_SCALAR_DOUBLE", p.ScalarDP)
	set("FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE", p.SSEDP)
	set("FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE", p.AVXDP)
	set("FP_ARITH_INST_RETIRED_SCALAR_SINGLE", p.ScalarSP)
	set("FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE", p.SSESP)
	set("FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE", p.AVXSP)
	// DRAM traffic: 2/3 reads, 1/3 writes.
	set("CAS_COUNT_RD", lineRate(p.MemBytes*2/3))
	set("CAS_COUNT_WR", lineRate(p.MemBytes/3))
	// L2 traffic: loads dominate evictions 3:1 in the model.
	set("L1D_REPLACEMENT", lineRate(p.L2Bytes*3/4))
	set("L1D_M_EVICT", lineRate(p.L2Bytes/4))
	set("L2_LINES_IN_ALL", lineRate(p.L3Bytes*3/4))
	set("L2_TRANS_L2_WB", lineRate(p.L3Bytes/4))
	set("BR_INST_RETIRED_ALL_BRANCHES", instr*p.BranchFrac)
	set("BR_MISP_RETIRED_ALL_BRANCHES", instr*p.BranchFrac*p.MissRatio)
	set("MEM_UOPS_RETIRED_LOADS", instr*p.LoadFrac)
	set("MEM_UOPS_RETIRED_STORES", instr*p.StoreFrac)
	set("DTLB_LOAD_MISSES_WALK_COMPLETED", p.TLBMissRate)
	set("PWR_PKG_ENERGY", p.PowerWatts*1e6) // microjoules per second
	return r
}

// Model is a node-level workload: it answers which profile each core runs
// at a given time since job start, and how much memory the job has
// allocated.
type Model interface {
	// Name identifies the workload (used as application tag).
	Name() string
	// ProfileAt returns the profile of core `core` (0-based node-local) at
	// time t seconds after job start.
	ProfileAt(t float64, core int) CPUProfile
	// MemUsedKB returns the allocated memory at time t.
	MemUsedKB(t float64) uint64
	// Duration returns the job's nominal runtime in seconds.
	Duration() float64
}

// idleWatts is the per-core share of the socket idle power in all models.
const idleWatts = 4.0

// busyProfile assembles a generic busy profile used by several models.
func busyProfile(clockMHz, ipc float64) CPUProfile {
	return CPUProfile{
		ClockMHz:   clockMHz,
		IPC:        ipc,
		BranchFrac: 0.08,
		MissRatio:  0.02,
		LoadFrac:   0.25,
		StoreFrac:  0.12,
		UserFrac:   0.97,
		SysFrac:    0.02,
	}
}

// IdleProfile is a halted core drawing only idle power.
func IdleProfile() CPUProfile {
	return CPUProfile{PowerWatts: idleWatts}
}

// --- Triad: bandwidth-bound STREAM-like kernel -----------------------------

// Triad models a memory-bandwidth-bound streaming kernel
// (a[i] = b[i] + s*c[i]): low IPC, SSE/AVX flops limited by DRAM,
// saturating socket bandwidth.
type Triad struct {
	Cores       int     // active cores per node
	BWPerCore   float64 // sustained DRAM bytes/s per core
	RuntimeSecs float64
	MemKB       uint64
}

// NewTriad returns a triad workload with realistic defaults: 6 GB/s DRAM
// traffic per core, 20 GB working set.
func NewTriad(cores int, runtime float64) *Triad {
	return &Triad{Cores: cores, BWPerCore: 6e9, RuntimeSecs: runtime, MemKB: 20 * 1024 * 1024}
}

// Name implements Model.
func (w *Triad) Name() string { return "triad" }

// Duration implements Model.
func (w *Triad) Duration() float64 { return w.RuntimeSecs }

// MemUsedKB implements Model.
func (w *Triad) MemUsedKB(t float64) uint64 {
	if t < 0 || t > w.RuntimeSecs {
		return 0
	}
	return w.MemKB
}

// ProfileAt implements Model.
func (w *Triad) ProfileAt(t float64, core int) CPUProfile {
	if t < 0 || t > w.RuntimeSecs || core >= w.Cores {
		return IdleProfile()
	}
	p := busyProfile(2200, 0.7)
	// Triad: 2 flops per 24 bytes of traffic, executed as AVX.
	flops := w.BWPerCore / 24 * 2
	p.AVXDP = flops / 4
	p.MemBytes = w.BWPerCore
	p.L2Bytes = w.BWPerCore * 1.2
	p.L3Bytes = w.BWPerCore * 1.1
	p.PowerWatts = idleWatts + 5 + w.BWPerCore/1e9*0.8
	p.TLBMissRate = w.BWPerCore / (4096 * 8)
	return p
}

// --- DGEMM: compute-bound dense matrix multiply ----------------------------

// DGEMM models a compute-bound kernel running near peak FLOP/s with high
// IPC and cache-resident data.
type DGEMM struct {
	Cores       int
	FlopsPerSec float64 // per core, sustained
	RuntimeSecs float64
	MemKB       uint64
}

// NewDGEMM returns a DGEMM workload sustaining 12 GFLOP/s per core.
func NewDGEMM(cores int, runtime float64) *DGEMM {
	return &DGEMM{Cores: cores, FlopsPerSec: 12e9, RuntimeSecs: runtime, MemKB: 8 * 1024 * 1024}
}

// Name implements Model.
func (w *DGEMM) Name() string { return "dgemm" }

// Duration implements Model.
func (w *DGEMM) Duration() float64 { return w.RuntimeSecs }

// MemUsedKB implements Model.
func (w *DGEMM) MemUsedKB(t float64) uint64 {
	if t < 0 || t > w.RuntimeSecs {
		return 0
	}
	return w.MemKB
}

// ProfileAt implements Model.
func (w *DGEMM) ProfileAt(t float64, core int) CPUProfile {
	if t < 0 || t > w.RuntimeSecs || core >= w.Cores {
		return IdleProfile()
	}
	p := busyProfile(2800, 2.5) // turbo clock, high ILP
	p.AVXDP = w.FlopsPerSec / 4
	p.MemBytes = w.FlopsPerSec / 100 // high operational intensity
	p.L2Bytes = w.FlopsPerSec / 4
	p.L3Bytes = w.FlopsPerSec / 20
	p.PowerWatts = idleWatts + 14
	return p
}

// --- LoadImbalance: unreasonable strong scaling ----------------------------

// LoadImbalance models a badly decomposed parallel run, the "unreasonable
// strong scaling" pathology of Sect. I: on the first node core 0 does all
// the work while the remaining cores spin in the barrier (high instruction
// count, no flops); all other nodes of the job spin entirely.
type LoadImbalance struct {
	Cores       int
	RuntimeSecs float64
	// NodeIndex is this node's rank within the job (set via WithNodeIndex;
	// node 0 hosts the working core).
	NodeIndex int
}

// NodeAware lets the simulation derive per-node variants of a model, for
// workloads whose behaviour differs across the job's nodes.
type NodeAware interface {
	// WithNodeIndex returns the model as seen by node i of total nodes.
	WithNodeIndex(i, total int) Model
}

// WithNodeIndex implements NodeAware.
func (w *LoadImbalance) WithNodeIndex(i, total int) Model {
	cp := *w
	cp.NodeIndex = i
	return &cp
}

// Name implements Model.
func (w *LoadImbalance) Name() string { return "imbalance" }

// Duration implements Model.
func (w *LoadImbalance) Duration() float64 { return w.RuntimeSecs }

// MemUsedKB implements Model.
func (w *LoadImbalance) MemUsedKB(t float64) uint64 {
	if t < 0 || t > w.RuntimeSecs {
		return 0
	}
	return 4 * 1024 * 1024
}

// ProfileAt implements Model.
func (w *LoadImbalance) ProfileAt(t float64, core int) CPUProfile {
	if t < 0 || t > w.RuntimeSecs || core >= w.Cores {
		return IdleProfile()
	}
	if core == 0 && w.NodeIndex == 0 {
		p := busyProfile(2200, 1.8)
		p.AVXDP = 2e9
		p.MemBytes = 2e9
		p.L2Bytes = 4e9
		p.L3Bytes = 2.5e9
		p.PowerWatts = idleWatts + 12
		return p
	}
	// Spin-waiting: full speed, no useful work.
	p := busyProfile(2200, 1.0)
	p.BranchFrac = 0.4 // tight test-and-branch loop
	p.MissRatio = 0.001
	p.PowerWatts = idleWatts + 8
	return p
}

// --- MemoryLeak: exceeded memory capacity ----------------------------------

// MemoryLeak models a job whose allocated memory grows linearly until it
// exceeds the node capacity (the "exceeded memory capacity" pathology).
type MemoryLeak struct {
	Cores       int
	RuntimeSecs float64
	StartKB     uint64
	LeakKBPerS  float64
}

// Name implements Model.
func (w *MemoryLeak) Name() string { return "memleak" }

// Duration implements Model.
func (w *MemoryLeak) Duration() float64 { return w.RuntimeSecs }

// MemUsedKB implements Model.
func (w *MemoryLeak) MemUsedKB(t float64) uint64 {
	if t < 0 || t > w.RuntimeSecs {
		return 0
	}
	return w.StartKB + uint64(w.LeakKBPerS*t)
}

// ProfileAt implements Model.
func (w *MemoryLeak) ProfileAt(t float64, core int) CPUProfile {
	if t < 0 || t > w.RuntimeSecs || core >= w.Cores {
		return IdleProfile()
	}
	p := busyProfile(2200, 1.1)
	p.ScalarDP = 5e8
	p.MemBytes = 1e9
	p.L2Bytes = 2e9
	p.PowerWatts = idleWatts + 9
	p.SysFrac = 0.15 // allocation churn shows as system time
	p.UserFrac = 0.8
	return p
}

// --- IdleBreak: the Fig. 4 pathological job --------------------------------

// IdleBreak models the four-node job of paper Fig. 4: normal computation,
// then a long break (input starvation / hung rank) during which FP rate and
// memory bandwidth collapse below thresholds, then computation resumes.
type IdleBreak struct {
	Cores       int
	RuntimeSecs float64
	// BreakStart and BreakEnd delimit the idle window in job time.
	BreakStart, BreakEnd float64
	Inner                Model // behaviour outside the break
}

// NewIdleBreak wraps a triad phase with an idle window. The defaults
// reproduce Fig. 4: a break longer than the 10-minute rule timeout.
func NewIdleBreak(cores int, runtime, breakStart, breakEnd float64) *IdleBreak {
	return &IdleBreak{
		Cores:       cores,
		RuntimeSecs: runtime,
		BreakStart:  breakStart,
		BreakEnd:    breakEnd,
		Inner:       NewTriad(cores, runtime),
	}
}

// Name implements Model.
func (w *IdleBreak) Name() string { return "idlebreak" }

// Duration implements Model.
func (w *IdleBreak) Duration() float64 { return w.RuntimeSecs }

// MemUsedKB implements Model.
func (w *IdleBreak) MemUsedKB(t float64) uint64 { return w.Inner.MemUsedKB(t) }

// ProfileAt implements Model.
func (w *IdleBreak) ProfileAt(t float64, core int) CPUProfile {
	if t >= w.BreakStart && t < w.BreakEnd {
		// Waiting in a blocking read: core nearly idle, tiny system load.
		p := IdleProfile()
		if core == 0 && core < w.Cores {
			p = busyProfile(2200, 0.3)
			p.ClockMHz = 1200 // frequency drops when stalled
			p.UserFrac = 0.01
			p.SysFrac = 0.01
			p.PowerWatts = idleWatts + 1
		}
		return p
	}
	return w.Inner.ProfileAt(t, core)
}

// --- Sanity helpers --------------------------------------------------------

// Validate checks a model for basic consistency over its lifetime; used by
// tests and the simulation driver to reject broken custom models.
func Validate(m Model, cores int) error {
	if m.Duration() <= 0 {
		return fmt.Errorf("workload %s: non-positive duration", m.Name())
	}
	for _, t := range []float64{0, m.Duration() / 2, m.Duration() - 0.001} {
		for core := 0; core < cores; core++ {
			p := m.ProfileAt(t, core)
			if p.ClockMHz < 0 || p.IPC < 0 || p.MemBytes < 0 || p.PowerWatts < 0 {
				return fmt.Errorf("workload %s: negative rate at t=%v core=%d", m.Name(), t, core)
			}
			if p.UserFrac < 0 || p.SysFrac < 0 || p.UserFrac+p.SysFrac > 1.001 {
				return fmt.Errorf("workload %s: bad cpu fractions at t=%v core=%d", m.Name(), t, core)
			}
			if !p.Idle() && p.IPC == 0 {
				return fmt.Errorf("workload %s: busy core with zero IPC at t=%v core=%d", m.Name(), t, core)
			}
		}
	}
	return nil
}

// TotalDPFlopRate returns the node DP FLOP/s implied by a profile set, used
// by tests to cross-check HPM measurements against the model.
func TotalDPFlopRate(profiles []CPUProfile) float64 {
	var total float64
	for _, p := range profiles {
		total += p.ScalarDP + 2*p.SSEDP + 4*p.AVXDP
	}
	return total
}

// TotalMemBandwidth returns the node DRAM traffic in bytes/s implied by a
// profile set.
func TotalMemBandwidth(profiles []CPUProfile) float64 {
	var total float64
	for _, p := range profiles {
		total += p.MemBytes
	}
	return total
}

// jitter derives a deterministic pseudo-random factor in [1-amp, 1+amp]
// from a time value, giving the models natural-looking noise without any
// global RNG state.
func jitter(t, amp float64) float64 {
	x := math.Sin(t*12.9898+78.233) * 43758.5453
	frac := x - math.Floor(x)
	return 1 + amp*(2*frac-1)
}
