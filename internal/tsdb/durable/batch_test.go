package durable

import (
	"testing"
	"time"

	"repro/internal/lineproto"
)

func samplePoints() []lineproto.Point {
	return []lineproto.Point{
		{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": "node01", "cpu": "3"},
			Fields: map[string]lineproto.Value{
				"user":   lineproto.Float(42.5),
				"ctx":    lineproto.Int(-123456789),
				"idle":   lineproto.Bool(true),
				"state":  lineproto.String("running, \"ok\""),
				"uptime": lineproto.Int(0),
			},
			Time: time.Unix(1500000000, 12345).UTC(),
		},
		{
			Measurement: "job_events",
			Fields:      map[string]lineproto.Value{"msg": lineproto.String("")},
			Time:        time.Unix(0, -42).UTC(), // pre-epoch timestamps survive
		},
		{
			Measurement: "mem",
			Tags:        map[string]string{"hostname": "node02"},
			Fields:      map[string]lineproto.Value{"used_kb": lineproto.Float(1 << 30)},
			// Zero time: encoded with the server timestamp.
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	pts := samplePoints()
	nowNS := int64(1700000000_000000000)
	payload := AppendBatch(nil, pts, nowNS)
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("decoded %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		want := pts[i]
		if want.Time.IsZero() {
			want.Time = time.Unix(0, nowNS).UTC()
		}
		if !got[i].Equal(want) {
			t.Errorf("point %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestBatchDecodeRejectsTruncation(t *testing.T) {
	payload := AppendBatch(nil, samplePoints(), 0)
	// Every strict prefix must fail loudly, never panic or fabricate data.
	for cut := 0; cut < len(payload); cut++ {
		if pts, err := DecodeBatch(payload[:cut]); err == nil {
			// A prefix that happens to decode cleanly must at least not
			// invent trailing points.
			if len(pts) >= len(samplePoints()) {
				t.Fatalf("cut at %d decoded %d points without error", cut, len(pts))
			}
		}
	}
	if _, err := DecodeBatch(append(payload, 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestBatchEmpty(t *testing.T) {
	payload := AppendBatch(nil, nil, 0)
	pts, err := DecodeBatch(payload)
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty batch: %v, %v", pts, err)
	}
}
