package usermetric

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lineproto"
)

// The paper (Sect. IV) plans to gather "further information ... through the
// tooling interfaces of common parallelization solutions like MPI or
// OpenMP". This file implements those two profilers on top of the
// libusermetric client: an MPI wrapper in the role of a PMPI interposition
// layer (per-operation call counts, bytes and time per rank) and an OpenMP
// region profiler (per-region wall time and imbalance across threads).

// MPIProfiler aggregates MPI call statistics per operation and emits them
// as "mpi" measurements tagged with rank and operation.
type MPIProfiler struct {
	c    *Client
	rank int
	tags map[string]string

	mu  sync.Mutex
	ops map[string]*mpiOpStats
}

type mpiOpStats struct {
	calls   int64
	bytes   int64
	seconds float64
}

// NewMPIProfiler wraps a client for one rank. extraTags may be nil.
func NewMPIProfiler(c *Client, rank int, extraTags map[string]string) *MPIProfiler {
	tags := map[string]string{"rank": fmt.Sprint(rank)}
	for k, v := range extraTags {
		tags[k] = v
	}
	return &MPIProfiler{c: c, rank: rank, tags: tags, ops: make(map[string]*mpiOpStats)}
}

// RecordCall accounts one MPI call (the PMPI wrapper body).
func (p *MPIProfiler) RecordCall(op string, bytes int64, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.ops[op]
	if !ok {
		st = &mpiOpStats{}
		p.ops[op] = st
	}
	st.calls++
	if bytes > 0 {
		st.bytes += bytes
	}
	st.seconds += d.Seconds()
}

// Operations lists the recorded operation names, sorted.
func (p *MPIProfiler) Operations() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.ops))
	for op := range p.ops {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Report emits one "mpi" point per operation with the running totals and
// resets nothing (totals are cumulative, like PMPI counters read
// periodically).
func (p *MPIProfiler) Report() error {
	p.mu.Lock()
	type entry struct {
		op string
		st mpiOpStats
	}
	entries := make([]entry, 0, len(p.ops))
	for op, st := range p.ops {
		entries = append(entries, entry{op: op, st: *st})
	}
	p.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].op < entries[j].op })
	for _, e := range entries {
		tags := map[string]string{"operation": e.op}
		for k, v := range p.tags {
			tags[k] = v
		}
		err := p.c.MetricFields("mpi", map[string]lineproto.Value{
			"calls":   lineproto.Int(e.st.calls),
			"bytes":   lineproto.Int(e.st.bytes),
			"seconds": lineproto.Float(e.st.seconds),
		}, tags)
		if err != nil {
			return err
		}
	}
	return nil
}

// OMPRegionProfiler measures OpenMP parallel regions: wall time per region
// plus the load imbalance across the participating threads, emitted as
// "omp" measurements.
type OMPRegionProfiler struct {
	c    *Client
	tags map[string]string

	mu      sync.Mutex
	regions map[string]*ompRegionStats
}

type ompRegionStats struct {
	entries     int64
	wallSeconds float64
	// imbalanceSum accumulates (max-min)/max of per-thread busy times.
	imbalanceSum float64
}

// NewOMPRegionProfiler wraps a client.
func NewOMPRegionProfiler(c *Client, extraTags map[string]string) *OMPRegionProfiler {
	tags := map[string]string{}
	for k, v := range extraTags {
		tags[k] = v
	}
	return &OMPRegionProfiler{c: c, tags: tags, regions: make(map[string]*ompRegionStats)}
}

// RecordRegion accounts one execution of a parallel region given the
// per-thread busy times (the OMPT callback data).
func (p *OMPRegionProfiler) RecordRegion(region string, threadBusy []time.Duration) error {
	if len(threadBusy) == 0 {
		return fmt.Errorf("usermetric: region %q has no threads", region)
	}
	var wall, minT, maxT time.Duration
	for i, d := range threadBusy {
		if i == 0 || d < minT {
			minT = d
		}
		if d > maxT {
			maxT = d
		}
	}
	wall = maxT // region ends when the slowest thread finishes
	imb := 0.0
	if maxT > 0 {
		imb = float64(maxT-minT) / float64(maxT)
	}
	p.mu.Lock()
	st, ok := p.regions[region]
	if !ok {
		st = &ompRegionStats{}
		p.regions[region] = st
	}
	st.entries++
	st.wallSeconds += wall.Seconds()
	st.imbalanceSum += imb
	p.mu.Unlock()
	return nil
}

// Report emits one "omp" point per region.
func (p *OMPRegionProfiler) Report() error {
	p.mu.Lock()
	type entry struct {
		region string
		st     ompRegionStats
	}
	entries := make([]entry, 0, len(p.regions))
	for r, st := range p.regions {
		entries = append(entries, entry{region: r, st: *st})
	}
	p.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].region < entries[j].region })
	for _, e := range entries {
		tags := map[string]string{"region": e.region}
		for k, v := range p.tags {
			tags[k] = v
		}
		meanImb := 0.0
		if e.st.entries > 0 {
			meanImb = e.st.imbalanceSum / float64(e.st.entries)
		}
		err := p.c.MetricFields("omp", map[string]lineproto.Value{
			"entries":        lineproto.Int(e.st.entries),
			"wall_seconds":   lineproto.Float(e.st.wallSeconds),
			"mean_imbalance": lineproto.Float(meanImb),
		}, tags)
		if err != nil {
			return err
		}
	}
	return nil
}
