// Package tests holds the chaos/soak harness of the LMS stack (DESIGN.md
// §10): a real lms-db HTTP server (durable store, per-batch fsync) fronted
// by a real router, hammered by concurrent writers and queriers while the
// database is restarted underneath them. The harness tracks every
// acknowledged batch and asserts after the final recovery that no acked
// point was lost, the run never deadlocked, and the /metrics documents of
// both components are consistent with the harness's own oracle counts.
//
// The default (short) run is a few seconds so it rides along in CI under
// -race; LMS_CHAOS_LONG=1 switches to the soak configuration used by the
// scheduled chaos-long workflow job.
package tests

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/router"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
)

// chaosParams scale the run: short mode is a CI smoke, long mode a soak.
type chaosParams struct {
	writers  int
	batch    int           // points per write
	duration time.Duration // writer runtime
	restarts int           // db restarts during the run
	restGap  time.Duration // pause between restarts
	queriers int
	queryGap time.Duration
}

func params() chaosParams {
	if os.Getenv("LMS_CHAOS_LONG") == "1" {
		return chaosParams{
			writers: 8, batch: 20, duration: 60 * time.Second,
			restarts: 10, restGap: 4 * time.Second,
			queriers: 4, queryGap: 50 * time.Millisecond,
		}
	}
	return chaosParams{
		writers: 4, batch: 5, duration: 1500 * time.Millisecond,
		restarts: 2, restGap: 400 * time.Millisecond,
		queriers: 2, queryGap: 20 * time.Millisecond,
	}
}

// dbServer is one lms-db incarnation: a durable store served over HTTP on
// a fixed address, so a restarted incarnation is reachable under the same
// base URL.
type dbServer struct {
	store *tsdb.Store
	srv   *http.Server
	addr  string
}

func startDB(t *testing.T, dir, addr string) *dbServer {
	t.Helper()
	store, err := tsdb.OpenStore(tsdb.StoreOptions{
		Durability: tsdb.Durability{Dir: dir, Fsync: durable.FsyncPerBatch},
	})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// The previous incarnation's listener may take a moment to fully
	// release the port; retry briefly instead of failing the run.
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 50 {
			_ = store.Close()
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	h := tsdb.NewHandler(store)
	s := &dbServer{
		store: store,
		srv:   &http.Server{Handler: h},
		addr:  ln.Addr().String(),
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s
}

// stop shuts the incarnation down the way lms-db does on SIGTERM:
// in-flight requests finish, then the store flushes and checkpoints.
func (s *dbServer) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		t.Fatalf("db shutdown: %v", err)
	}
	if err := s.store.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
}

// metricValue extracts one unlabeled sample from a Prometheus text
// document; ok=false when the metric is absent.
func metricValue(doc, name string) (float64, bool) {
	for _, line := range strings.Split(doc, "\n") {
		if rest, found := strings.CutPrefix(line, name+" "); found {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", base, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestChaosRestartNoAckedPointLost is the core chaos run: writers push
// sequenced batches through the router into a durable lms-db that is
// killed and restarted repeatedly; queriers read concurrently. Every
// batch acknowledged with 2xx must be fully present after final recovery.
func TestChaosRestartNoAckedPointLost(t *testing.T) {
	p := params()
	dir := t.TempDir()

	db := startDB(t, dir, "")
	dbAddr := db.addr
	dbURL := "http://" + dbAddr

	rt, err := router.New(router.Config{
		Primary: &tsdb.Client{BaseURL: dbURL, Database: "lms", HTTPClient: &http.Client{Timeout: 5 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// acked[w] is the number of batches writer w got a 2xx for; each
	// acked batch b covers seqs [b*batch, (b+1)*batch).
	acked := make([]int, p.writers)
	base := time.Unix(1_700_000_000, 0).UTC()
	for w := 0; w < p.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &tsdb.Client{BaseURL: rtSrv.URL, Database: "lms", HTTPClient: &http.Client{Timeout: 5 * time.Second}}
			for batchNo := 0; ; batchNo++ {
				pts := make([]lineproto.Point, p.batch)
				for i := range pts {
					seq := batchNo*p.batch + i
					pts[i] = lineproto.Point{
						Measurement: "chaos",
						Tags:        map[string]string{"writer": fmt.Sprintf("w%d", w)},
						Fields:      map[string]lineproto.Value{"seq": lineproto.Int(int64(seq))},
						Time:        base.Add(time.Duration(seq) * time.Millisecond),
					}
				}
				// Retry the same batch until acked — an un-acked batch may
				// be retried across a restart without harm because the seq
				// timestamps make the write idempotent per series.
				for {
					if err := c.WritePoints(pts); err == nil {
						acked[w] = batchNo + 1
						break
					}
					select {
					case <-stop:
						return
					case <-time.After(10 * time.Millisecond):
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	// Queriers read through the db's HTTP API while it restarts; errors
	// are expected mid-restart, hangs and panics are not.
	for q := 0; q < p.queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &tsdb.Client{BaseURL: dbURL, Database: "lms", MaxRetries: -1, HTTPClient: &http.Client{Timeout: 5 * time.Second}}
			for {
				select {
				case <-stop:
					return
				case <-time.After(p.queryGap):
				}
				_, _ = c.QueryString("SELECT count(seq) FROM chaos")
			}
		}()
	}

	// Restart schedule: kill and rebind the database under load.
	deadline := time.After(p.duration)
	for r := 0; r < p.restarts; r++ {
		select {
		case <-deadline:
		case <-time.After(p.restGap):
		}
		db.stop(t)
		db = startDB(t, dir, dbAddr)
	}
	<-deadline
	close(stop)
	wg.Wait()

	// Scrape the live incarnation before stopping it, then recover once
	// more from disk for the oracle check.
	dbMetrics := scrape(t, dbURL)
	rtMetrics := scrape(t, rtSrv.URL)
	db.stop(t)

	store, err := tsdb.OpenStore(tsdb.StoreOptions{
		Durability: tsdb.Durability{Dir: dir, Fsync: durable.FsyncPerBatch},
	})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer store.Close()
	fdb := store.DB("lms")
	if fdb == nil {
		t.Fatal("database lms not recovered")
	}
	series, err := fdb.Select(tsdb.Query{
		Measurement: "chaos",
		Fields:      []string{"seq"},
		GroupByTags: []string{"writer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]map[int64]bool{} // writer -> set of recovered seqs
	stored := 0
	for _, s := range series {
		w := s.Tags["writer"]
		if got[w] == nil {
			got[w] = map[int64]bool{}
		}
		for _, row := range s.Rows {
			for _, v := range row.Values {
				if v != nil {
					got[w][v.IntVal()] = true
					stored++
				}
			}
		}
	}
	ackedPoints := 0
	for w := 0; w < p.writers; w++ {
		name := fmt.Sprintf("w%d", w)
		ackedPoints += acked[w] * p.batch
		for seq := 0; seq < acked[w]*p.batch; seq++ {
			if !got[name][int64(seq)] {
				t.Errorf("writer %s: acked seq %d lost after recovery", name, seq)
			}
		}
	}
	if ackedPoints == 0 {
		t.Fatal("no batch was ever acked; the harness exercised nothing")
	}
	if stored < ackedPoints {
		t.Errorf("stored %d points < %d acked", stored, ackedPoints)
	}
	t.Logf("chaos: %d writers, %d restarts, %d acked points, %d stored",
		p.writers, p.restarts, ackedPoints, stored)

	// Metrics vs oracle. The scraped incarnation only saw writes since the
	// last restart, so its ingest counter is a lower-bound check; the
	// router lived through the whole run, so its counters must balance
	// exactly: every received point was either forwarded or dropped.
	if v, ok := metricValue(dbMetrics, "lms_ingest_points_total"); !ok || v < 0 {
		t.Errorf("db /metrics missing lms_ingest_points_total (ok=%v v=%v)", ok, v)
	}
	recv, ok1 := metricValue(rtMetrics, "lms_router_received_points_total")
	fwd, ok2 := metricValue(rtMetrics, "lms_router_forwarded_points_total")
	drop, ok3 := metricValue(rtMetrics, "lms_router_dropped_points_total")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("router /metrics incomplete:\n%s", rtMetrics)
	}
	if recv != fwd+drop {
		t.Errorf("router pipeline unbalanced: received %v != forwarded %v + dropped %v", recv, fwd, drop)
	}
	if fwd < float64(ackedPoints) {
		t.Errorf("router forwarded %v < %d acked points", fwd, ackedPoints)
	}
	rs, fs, ds := rt.Stats()
	if recv != float64(rs) || fwd != float64(fs) || drop != float64(ds) {
		t.Errorf("router /metrics (%v, %v, %v) disagrees with Stats (%d, %d, %d)",
			recv, fwd, drop, rs, fs, ds)
	}
}

// TestChaosOverloadSheds drives a writer burst into a db whose admission
// gate admits one request at a time and asserts overload is shed with 429
// (visible on /metrics) while admitted writes keep succeeding — the
// bounded-memory overload behavior, end to end.
func TestChaosOverloadSheds(t *testing.T) {
	store := tsdb.NewStore()
	h := tsdb.NewHandler(store)
	h.SetAdmission(1, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	var oks, sheds, other int
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := strings.NewReader(fmt.Sprintf("burst value=%d %d\n", i, int64(i+1)*1e9))
			resp, err := http.Post(srv.URL+"/write?db=lms", "text/plain", body)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusNoContent:
				oks++
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				sheds++
			default:
				other++
			}
		}(i)
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("unexpected statuses: %d", other)
	}
	if oks == 0 {
		t.Fatal("no write admitted under overload")
	}
	doc := scrape(t, srv.URL)
	shedMetric, ok := metricValue(doc, "lms_http_requests_shed_total")
	if !ok || int(shedMetric) != sheds {
		t.Fatalf("lms_http_requests_shed_total = %v (ok=%v), harness counted %d", shedMetric, ok, sheds)
	}
	ingest, _ := metricValue(doc, "lms_ingest_points_total")
	if int(ingest) != oks {
		t.Fatalf("lms_ingest_points_total = %v, harness acked %d", ingest, oks)
	}
}
