package core

import (
	"testing"

	"repro/internal/jobsched"
	"repro/internal/workload"
)

// TestSimulationMemoryLeakDetected covers the "exceeded memory capacity"
// pathology of paper Sect. I: a job whose allocation grows past 95% of the
// node's memory trips the memory_exceeded rule.
func TestSimulationMemoryLeakDetected(t *testing.T) {
	stack, sim, err := NewSimulatedStack(
		StackConfig{},
		SimConfig{
			Nodes:           1,
			Topology:        smallTopo(),
			MemKBPerNode:    16 * 1024 * 1024, // 16 GB node
			CollectInterval: 30,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()

	// Start at 4 GB, leak ~7 MB/s: crosses 95% of 16 GB (15.2 GB) after
	// ~1640 s of the 3600 s job.
	w := &workload.MemoryLeak{
		Cores:       4,
		RuntimeSecs: 3600,
		StartKB:     4 * 1024 * 1024,
		LeakKBPerS:  7 * 1024,
	}
	if err := sim.SubmitJob(jobsched.JobRequest{ID: "leak1", User: "mallory", Nodes: 1}, w); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(4000); err != nil {
		t.Fatal(err)
	}
	job := sim.Sched.Finished()[0]
	rep, err := stack.Evaluator.Evaluate(sim.JobMeta(job))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule.Name == "memory_exceeded" {
			found = true
			if v.Extremum < 95 {
				t.Fatalf("extremum %v below threshold", v.Extremum)
			}
		}
	}
	if !found {
		t.Fatalf("memory_exceeded not detected; violations: %+v", rep.Violations)
	}
	// The allocation growth is visible in the memory row.
	row := false
	for _, r := range rep.Rows {
		if r.Spec.Field == "used_kb" && r.Stats.Mean > 4 {
			row = true
		}
	}
	if !row {
		t.Fatalf("memory row missing: %+v", rep.Rows)
	}
}
