package hpm

import (
	"fmt"
	"sort"
	"strings"
)

// Group is a parsed performance group: an event-to-counter assignment plus
// derived-metric formulas, the LIKWID abstraction (paper Sect. II: "The
// portability with regard to HPM events is abstracted by using the
// performance groups offered by the LIKWID library").
type Group struct {
	Name    string
	Short   string
	Long    string
	Events  []EventAssign
	Metrics []Metric
}

// EventAssign maps one event onto a counter register.
type EventAssign struct {
	Counter string
	Event   Event
}

// Metric is one derived metric of a group.
type Metric struct {
	Name    string // includes the unit, e.g. "Memory bandwidth [MBytes/s]"
	Formula *Formula
}

// Environment variables every metric formula may reference in addition to
// the group's counter registers.
const (
	VarTime         = "time"         // measurement duration in seconds
	VarInverseClock = "inverseClock" // 1 / base clock in Hz
)

// ParseGroup parses the LIKWID performance-group file format:
//
//	SHORT <one line description>
//
//	EVENTSET
//	<COUNTER> <EVENT>
//	...
//
//	METRICS
//	<Metric name [unit]> <formula>
//	...
//
//	LONG
//	<free text until EOF>
//
// The formula is the last whitespace-separated token of a METRICS line;
// everything before it is the metric name. Lines starting with '#' are
// comments.
func ParseGroup(name, text string) (*Group, error) {
	g := &Group{Name: name}
	section := ""
	var longLines []string
	seenCounter := map[string]bool{}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if section != "LONG" {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
		}
		switch {
		case strings.HasPrefix(line, "SHORT"):
			g.Short = strings.TrimSpace(strings.TrimPrefix(line, "SHORT"))
			continue
		case line == "EVENTSET":
			section = "EVENTSET"
			continue
		case line == "METRICS":
			section = "METRICS"
			continue
		case line == "LONG":
			section = "LONG"
			continue
		}
		switch section {
		case "EVENTSET":
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("hpm: group %s line %d: want 'COUNTER EVENT', got %q", name, ln+1, line)
			}
			counter, evName := fields[0], fields[1]
			ev, err := LookupEvent(evName)
			if err != nil {
				return nil, fmt.Errorf("hpm: group %s line %d: %w", name, ln+1, err)
			}
			if err := ValidCounter(counter, ev.Scope); err != nil {
				return nil, fmt.Errorf("hpm: group %s line %d: %w", name, ln+1, err)
			}
			if seenCounter[counter] {
				return nil, fmt.Errorf("hpm: group %s line %d: counter %s assigned twice", name, ln+1, counter)
			}
			seenCounter[counter] = true
			g.Events = append(g.Events, EventAssign{Counter: counter, Event: ev})
		case "METRICS":
			idx := strings.LastIndexAny(line, " \t")
			if idx < 0 {
				return nil, fmt.Errorf("hpm: group %s line %d: metric needs name and formula", name, ln+1)
			}
			mname := strings.TrimSpace(line[:idx])
			fsrc := strings.TrimSpace(line[idx+1:])
			formula, err := CompileFormula(fsrc)
			if err != nil {
				return nil, fmt.Errorf("hpm: group %s line %d: %w", name, ln+1, err)
			}
			g.Metrics = append(g.Metrics, Metric{Name: mname, Formula: formula})
		case "LONG":
			longLines = append(longLines, raw)
		default:
			return nil, fmt.Errorf("hpm: group %s line %d: content outside any section: %q", name, ln+1, line)
		}
	}
	g.Long = strings.TrimSpace(strings.Join(longLines, "\n"))
	if len(g.Events) == 0 {
		return nil, fmt.Errorf("hpm: group %s: empty EVENTSET", name)
	}
	if len(g.Metrics) == 0 {
		return nil, fmt.Errorf("hpm: group %s: empty METRICS", name)
	}
	// Every formula variable must be an assigned counter or an environment
	// variable.
	for _, m := range g.Metrics {
		for _, v := range m.Formula.Variables() {
			if v == VarTime || v == VarInverseClock {
				continue
			}
			if !seenCounter[v] {
				return nil, fmt.Errorf("hpm: group %s metric %q: variable %q is not an assigned counter", name, m.Name, v)
			}
		}
	}
	return g, nil
}

// CounterEvent returns the event assigned to a counter register.
func (g *Group) CounterEvent(counter string) (Event, bool) {
	for _, ea := range g.Events {
		if ea.Counter == counter {
			return ea.Event, true
		}
	}
	return Event{}, false
}

// MetricNames lists the metric names in file order.
func (g *Group) MetricNames() []string {
	names := make([]string, len(g.Metrics))
	for i, m := range g.Metrics {
		names[i] = m.Name
	}
	return names
}

// builtinGroupTexts holds the group files shipped with the simulated
// architecture. The formulas follow the LIKWID originals for Intel
// Broadwell/Haswell; PWR_PKG_ENERGY counts microjoules in our simulation,
// hence the 1.0E-06 scaling in ENERGY.
var builtinGroupTexts = map[string]string{
	"FLOPS_DP": `SHORT Double precision MFLOP/s

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE
PMC1 FP_ARITH_INST_RETIRED_SCALAR_DOUBLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE

METRICS
Runtime (RDTSC) [s] time
Runtime unhalted [s] FIXC1*inverseClock
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
DP MFLOP/s 1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time
AVX DP MFLOP/s 1.0E-06*(PMC2*4.0)/time
Packed MUOPS/s 1.0E-06*(PMC0+PMC2)/time
Scalar MUOPS/s 1.0E-06*PMC1/time

LONG
Double precision floating point rates. SSE packed operations count two,
AVX packed operations four double precision flops per retired instruction.
`,
	"FLOPS_SP": `SHORT Single precision MFLOP/s

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE
PMC1 FP_ARITH_INST_RETIRED_SCALAR_SINGLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE

METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
SP MFLOP/s 1.0E-06*(PMC0*4.0+PMC1+PMC2*8.0)/time

LONG
Single precision floating point rates. SSE packed operations count four,
AVX packed operations eight single precision flops per retired instruction.
`,
	"MEM": `SHORT Main memory bandwidth

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
MBOX0C0 CAS_COUNT_RD
MBOX0C1 CAS_COUNT_WR

METRICS
Runtime (RDTSC) [s] time
CPI FIXC1/FIXC0
Memory read bandwidth [MBytes/s] 1.0E-06*MBOX0C0*64.0/time
Memory write bandwidth [MBytes/s] 1.0E-06*MBOX0C1*64.0/time
Memory bandwidth [MBytes/s] 1.0E-06*(MBOX0C0+MBOX0C1)*64.0/time
Memory data volume [GBytes] 1.0E-09*(MBOX0C0+MBOX0C1)*64.0

LONG
Main memory bandwidth measured at the memory controllers. Each CAS
operation transfers one 64 byte cache line.
`,
	"MEM_DP": `SHORT Memory bandwidth and double precision MFLOP/s

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE
PMC1 FP_ARITH_INST_RETIRED_SCALAR_DOUBLE
PMC2 FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE
MBOX0C0 CAS_COUNT_RD
MBOX0C1 CAS_COUNT_WR

METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
DP MFLOP/s 1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time
Memory bandwidth [MBytes/s] 1.0E-06*(MBOX0C0+MBOX0C1)*64.0/time
Memory data volume [GBytes] 1.0E-09*(MBOX0C0+MBOX0C1)*64.0
Operational intensity (PMC0*2.0+PMC1+PMC2*4.0)/((MBOX0C0+MBOX0C1)*64.0)

LONG
Combined group for roofline-style analysis and the pathological-job rules
of the monitoring stack: double precision FP rate, memory bandwidth and
the resulting operational intensity in a single measurement.
`,
	"L2": `SHORT L2 cache bandwidth

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 L1D_REPLACEMENT
PMC1 L1D_M_EVICT

METRICS
Runtime (RDTSC) [s] time
L2D load bandwidth [MBytes/s] 1.0E-06*PMC0*64.0/time
L2D evict bandwidth [MBytes/s] 1.0E-06*PMC1*64.0/time
L2 bandwidth [MBytes/s] 1.0E-06*(PMC0+PMC1)*64.0/time
L2 data volume [GBytes] 1.0E-09*(PMC0+PMC1)*64.0

LONG
Bandwidth between L1 and L2 caches derived from L1D replacements (loads)
and modified evicts (stores).
`,
	"L3": `SHORT L3 cache bandwidth

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 L2_LINES_IN_ALL
PMC1 L2_TRANS_L2_WB

METRICS
Runtime (RDTSC) [s] time
L3 load bandwidth [MBytes/s] 1.0E-06*PMC0*64.0/time
L3 evict bandwidth [MBytes/s] 1.0E-06*PMC1*64.0/time
L3 bandwidth [MBytes/s] 1.0E-06*(PMC0+PMC1)*64.0/time
L3 data volume [GBytes] 1.0E-09*(PMC0+PMC1)*64.0

LONG
Bandwidth between L2 and L3 caches derived from L2 line allocations and
L2 writebacks.
`,
	"CLOCK": `SHORT Cycles per instruction and clock frequency

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF

METRICS
Runtime (RDTSC) [s] time
Runtime unhalted [s] FIXC1*inverseClock
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
IPC FIXC0/FIXC1
MIPS 1.0E-06*FIXC0/time

LONG
Basic execution efficiency: instruction throughput, cycles per
instruction and the effective core frequency.
`,
	"ENERGY": `SHORT Package energy and power

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PWR0 PWR_PKG_ENERGY

METRICS
Runtime (RDTSC) [s] time
Clock [MHz] 1.0E-06*(FIXC1/FIXC2)/inverseClock
CPI FIXC1/FIXC0
Energy [J] 1.0E-06*PWR0
Power [W] 1.0E-06*PWR0/time

LONG
RAPL package energy. The simulated PWR_PKG_ENERGY register counts
microjoules, hence the 1.0E-06 scaling.
`,
	"BRANCH": `SHORT Branch prediction

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 BR_INST_RETIRED_ALL_BRANCHES
PMC1 BR_MISP_RETIRED_ALL_BRANCHES

METRICS
Runtime (RDTSC) [s] time
Branch rate PMC0/FIXC0
Branch misprediction rate PMC1/FIXC0
Branch misprediction ratio PMC1/PMC0
Instructions per branch FIXC0/PMC0

LONG
Branch instruction density and prediction quality.
`,
	"DATA": `SHORT Load to store ratio

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 MEM_UOPS_RETIRED_LOADS
PMC1 MEM_UOPS_RETIRED_STORES

METRICS
Runtime (RDTSC) [s] time
Load to store ratio PMC0/PMC1
Load rate PMC0/FIXC0
Store rate PMC1/FIXC0

LONG
Ratio of retired load to store micro operations.
`,
	"TLB_DATA": `SHORT Data TLB misses

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
FIXC2 CPU_CLK_UNHALTED_REF
PMC0 DTLB_LOAD_MISSES_WALK_COMPLETED

METRICS
Runtime (RDTSC) [s] time
L1 DTLB load misses PMC0
L1 DTLB load miss rate PMC0/FIXC0

LONG
Completed page walks caused by DTLB load misses.
`,
}

var builtinGroups = func() map[string]*Group {
	m := make(map[string]*Group, len(builtinGroupTexts))
	for name, text := range builtinGroupTexts {
		g, err := ParseGroup(name, text)
		if err != nil {
			panic(err)
		}
		m[name] = g
	}
	return m
}()

// LookupGroup returns a built-in performance group by name.
func LookupGroup(name string) (*Group, error) {
	g, ok := builtinGroups[name]
	if !ok {
		return nil, fmt.Errorf("hpm: unknown performance group %q", name)
	}
	return g, nil
}

// GroupNames lists the built-in groups sorted by name, the equivalent of
// `likwid-perfctr -a`.
func GroupNames() []string {
	names := make([]string, 0, len(builtinGroups))
	for n := range builtinGroups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
