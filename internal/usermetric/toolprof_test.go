package usermetric

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestMPIProfilerAggregation(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	p := NewMPIProfiler(c, 3, map[string]string{"app": "solver"})
	p.RecordCall("MPI_Allreduce", 1024, 2*time.Millisecond)
	p.RecordCall("MPI_Allreduce", 1024, 3*time.Millisecond)
	p.RecordCall("MPI_Send", 4096, time.Millisecond)
	p.RecordCall("MPI_Barrier", 0, 500*time.Microsecond)
	if got := p.Operations(); len(got) != 3 || got[0] != "MPI_Allreduce" {
		t.Fatalf("%v", got)
	}
	if err := p.Report(); err != nil {
		t.Fatal(err)
	}
	_ = c.Flush()
	pts := sink.points(t)
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	byOp := map[string]int{}
	for _, pt := range pts {
		if pt.Measurement != "mpi" {
			t.Fatalf("measurement %q", pt.Measurement)
		}
		if pt.Tags["rank"] != "3" || pt.Tags["app"] != "solver" {
			t.Fatalf("tags %v", pt.Tags)
		}
		byOp[pt.Tags["operation"]]++
		if pt.Tags["operation"] == "MPI_Allreduce" {
			if pt.Fields["calls"].IntVal() != 2 || pt.Fields["bytes"].IntVal() != 2048 {
				t.Fatalf("%+v", pt.Fields)
			}
			if math.Abs(pt.Fields["seconds"].FloatVal()-0.005) > 1e-9 {
				t.Fatalf("seconds %v", pt.Fields["seconds"])
			}
		}
	}
	if len(byOp) != 3 {
		t.Fatalf("%v", byOp)
	}
}

func TestMPIProfilerCumulative(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	p := NewMPIProfiler(c, 0, nil)
	p.RecordCall("MPI_Send", 100, time.Millisecond)
	_ = p.Report()
	p.RecordCall("MPI_Send", 100, time.Millisecond)
	_ = p.Report()
	_ = c.Flush()
	pts := sink.points(t)
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	// Second report carries the cumulative totals, like PMPI counters.
	if pts[1].Fields["calls"].IntVal() != 2 || pts[1].Fields["bytes"].IntVal() != 200 {
		t.Fatalf("%+v", pts[1].Fields)
	}
}

func TestMPIProfilerConcurrent(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	p := NewMPIProfiler(c, 0, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.RecordCall("MPI_Isend", 8, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	_ = p.Report()
	_ = c.Flush()
	pt := sink.points(t)[0]
	if pt.Fields["calls"].IntVal() != 800 {
		t.Fatalf("%+v", pt.Fields)
	}
}

func TestOMPRegionProfiler(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	p := NewOMPRegionProfiler(c, map[string]string{"app": "stencil"})
	// Balanced region: all threads busy 10 ms.
	err := p.RecordRegion("compute_loop", []time.Duration{
		10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Imbalanced region: one thread does half the work.
	err = p.RecordRegion("reduce_loop", []time.Duration{
		10 * time.Millisecond, 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Report(); err != nil {
		t.Fatal(err)
	}
	_ = c.Flush()
	pts := sink.points(t)
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	byRegion := map[string]map[string]float64{}
	for _, pt := range pts {
		if pt.Measurement != "omp" || pt.Tags["app"] != "stencil" {
			t.Fatalf("%+v", pt)
		}
		byRegion[pt.Tags["region"]] = map[string]float64{
			"wall": pt.Fields["wall_seconds"].FloatVal(),
			"imb":  pt.Fields["mean_imbalance"].FloatVal(),
		}
	}
	if math.Abs(byRegion["compute_loop"]["imb"]) > 1e-9 {
		t.Fatalf("balanced imbalance %v", byRegion["compute_loop"]["imb"])
	}
	if math.Abs(byRegion["reduce_loop"]["imb"]-0.5) > 1e-9 {
		t.Fatalf("imbalanced %v", byRegion["reduce_loop"]["imb"])
	}
	// Wall time is the slowest thread.
	if math.Abs(byRegion["reduce_loop"]["wall"]-0.010) > 1e-9 {
		t.Fatalf("wall %v", byRegion["reduce_loop"]["wall"])
	}
}

func TestOMPRegionValidation(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	p := NewOMPRegionProfiler(c, nil)
	if err := p.RecordRegion("r", nil); err == nil {
		t.Fatal("empty thread list accepted")
	}
	// Zero-duration threads: imbalance defined as 0.
	if err := p.RecordRegion("r", []time.Duration{0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = p.Report()
	_ = c.Flush()
	pt := sink.points(t)[0]
	if pt.Fields["mean_imbalance"].FloatVal() != 0 {
		t.Fatalf("%+v", pt.Fields)
	}
}
