// Package pubsub provides a ZeroMQ-style PUB/SUB message fabric over plain
// TCP.
//
// The LMS router (paper Sect. III-B) publishes all metrics and meta
// information (job starts, tags, ...) via ZeroMQ so that aggregators and
// stream analyzers can attach without touching the ingest path. This package
// reproduces the ZeroMQ semantics LMS relies on:
//
//   - topic-prefix subscriptions: a subscriber receives every message whose
//     topic starts with one of its subscribed prefixes ("" subscribes to all),
//   - fire-and-forget fan-out: a slow subscriber never blocks the publisher;
//     once its in-flight queue exceeds the high-water mark, messages to it are
//     dropped (ZeroMQ PUB behaviour),
//   - per-subscriber FIFO ordering of delivered messages.
//
// Wire format (newline-framed, human-readable like the rest of LMS):
//
//	subscriber -> publisher:  SUB <prefix>\n   |  UNSUB <prefix>\n
//	publisher -> subscriber:  MSG <topic> <payload-len>\n<payload>\n
package pubsub

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultHighWaterMark is the per-subscriber queue capacity before messages
// are dropped, mirroring ZeroMQ's ZMQ_SNDHWM default magnitude (scaled down
// for tests).
const DefaultHighWaterMark = 1000

// Message is one published datum.
type Message struct {
	Topic   string
	Payload []byte
}

// Publisher is the PUB side. The zero value is not usable; call NewPublisher.
type Publisher struct {
	ln   net.Listener
	hwm  int
	mu   sync.Mutex
	subs map[*subscriberConn]struct{}
	done chan struct{}

	published atomic.Int64
	dropped   atomic.Int64
	wg        sync.WaitGroup
}

type subscriberConn struct {
	conn     net.Conn
	out      chan Message
	mu       sync.Mutex
	prefixes map[string]struct{}
}

func (s *subscriberConn) wants(topic string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for p := range s.prefixes {
		if strings.HasPrefix(topic, p) {
			return true
		}
	}
	return false
}

// NewPublisher starts a publisher listening on addr (e.g. "127.0.0.1:0").
// hwm <= 0 selects DefaultHighWaterMark.
func NewPublisher(addr string, hwm int) (*Publisher, error) {
	if hwm <= 0 {
		hwm = DefaultHighWaterMark
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: listen: %w", err)
	}
	p := &Publisher{
		ln:   ln,
		hwm:  hwm,
		subs: make(map[*subscriberConn]struct{}),
		done: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listen address (useful with port 0).
func (p *Publisher) Addr() string { return p.ln.Addr().String() }

// Stats returns the number of published (per-subscriber deliveries counted
// once per Publish call) and dropped messages.
func (p *Publisher) Stats() (published, dropped int64) {
	return p.published.Load(), p.dropped.Load()
}

// SubscriberCount returns the number of connected subscribers.
func (p *Publisher) SubscriberCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

func (p *Publisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
				continue
			}
		}
		sc := &subscriberConn{
			conn:     conn,
			out:      make(chan Message, p.hwm),
			prefixes: make(map[string]struct{}),
		}
		p.mu.Lock()
		p.subs[sc] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.readLoop(sc)
		go p.writeLoop(sc)
	}
}

func (p *Publisher) removeSub(sc *subscriberConn) {
	p.mu.Lock()
	if _, ok := p.subs[sc]; ok {
		delete(p.subs, sc)
		close(sc.out)
	}
	p.mu.Unlock()
	_ = sc.conn.Close()
}

// readLoop consumes SUB/UNSUB commands from the subscriber.
func (p *Publisher) readLoop(sc *subscriberConn) {
	defer p.wg.Done()
	defer p.removeSub(sc)
	r := bufio.NewReader(sc.conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "SUB "):
			sc.mu.Lock()
			sc.prefixes[line[4:]] = struct{}{}
			sc.mu.Unlock()
		case line == "SUB":
			sc.mu.Lock()
			sc.prefixes[""] = struct{}{}
			sc.mu.Unlock()
		case strings.HasPrefix(line, "UNSUB "):
			sc.mu.Lock()
			delete(sc.prefixes, line[6:])
			sc.mu.Unlock()
		case line == "UNSUB":
			sc.mu.Lock()
			delete(sc.prefixes, "")
			sc.mu.Unlock()
		}
	}
}

func (p *Publisher) writeLoop(sc *subscriberConn) {
	defer p.wg.Done()
	w := bufio.NewWriter(sc.conn)
	for msg := range sc.out {
		if _, err := fmt.Fprintf(w, "MSG %s %d\n", msg.Topic, len(msg.Payload)); err != nil {
			return
		}
		if _, err := w.Write(msg.Payload); err != nil {
			return
		}
		if err := w.WriteByte('\n'); err != nil {
			return
		}
		// Flush when the queue drains so batches coalesce into few writes.
		if len(sc.out) == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
	_ = w.Flush()
}

// Publish fans the message out to all matching subscribers without blocking.
// Messages to subscribers whose queue is at the high-water mark are dropped.
func (p *Publisher) Publish(topic string, payload []byte) {
	if strings.ContainsAny(topic, " \n") {
		// Topics are space-delimited on the wire; reject unencodable ones.
		p.dropped.Add(1)
		return
	}
	p.published.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for sc := range p.subs {
		if !sc.wants(topic) {
			continue
		}
		select {
		case sc.out <- Message{Topic: topic, Payload: payload}:
		default:
			p.dropped.Add(1)
		}
	}
}

// Close shuts the publisher down and disconnects all subscribers.
func (p *Publisher) Close() error {
	select {
	case <-p.done:
		return nil
	default:
	}
	close(p.done)
	err := p.ln.Close()
	p.mu.Lock()
	for sc := range p.subs {
		delete(p.subs, sc)
		close(sc.out)
		_ = sc.conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// Subscriber is the SUB side.
type Subscriber struct {
	conn net.Conn
	w    *bufio.Writer
	wmu  sync.Mutex
	msgs chan Message
	errs chan error
	once sync.Once
}

// Dial connects to a publisher. The returned subscriber receives nothing
// until Subscribe is called.
func Dial(addr string) (*Subscriber, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: dial: %w", err)
	}
	s := &Subscriber{
		conn: conn,
		w:    bufio.NewWriter(conn),
		msgs: make(chan Message, 256),
		errs: make(chan error, 1),
	}
	go s.readLoop()
	return s, nil
}

// Subscribe adds a topic-prefix subscription. The empty prefix matches all
// topics.
func (s *Subscriber) Subscribe(prefix string) error {
	return s.send("SUB " + prefix)
}

// Unsubscribe removes a previously added prefix.
func (s *Subscriber) Unsubscribe(prefix string) error {
	return s.send("UNSUB " + prefix)
}

func (s *Subscriber) send(cmd string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if _, err := s.w.WriteString(cmd + "\n"); err != nil {
		return err
	}
	return s.w.Flush()
}

// Messages returns the delivery channel. It is closed when the connection
// drops or Close is called.
func (s *Subscriber) Messages() <-chan Message { return s.msgs }

// Err returns the terminal error after Messages is closed, or nil on clean
// shutdown.
func (s *Subscriber) Err() error {
	select {
	case err := <-s.errs:
		return err
	default:
		return nil
	}
}

func (s *Subscriber) readLoop() {
	defer close(s.msgs)
	r := bufio.NewReader(s.conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				select {
				case s.errs <- err:
				default:
				}
			}
			return
		}
		line = strings.TrimRight(line, "\r\n")
		var topic string
		var n int
		if !strings.HasPrefix(line, "MSG ") {
			continue // ignore unknown frames (forward compatibility)
		}
		rest := line[4:]
		sp := strings.LastIndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		topic = rest[:sp]
		n, err = strconv.Atoi(rest[sp+1:])
		if err != nil || n < 0 {
			continue
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		if b, err := r.ReadByte(); err != nil || b != '\n' {
			return
		}
		s.msgs <- Message{Topic: topic, Payload: payload}
	}
}

// Close disconnects the subscriber.
func (s *Subscriber) Close() error {
	var err error
	s.once.Do(func() { err = s.conn.Close() })
	return err
}
