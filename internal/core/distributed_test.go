package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/gmond"
	"repro/internal/hpm"
	"repro/internal/proc"
	"repro/internal/router"
	"repro/internal/tsdb"
	"repro/internal/usermetric"
	"repro/internal/workload"
)

// TestDistributedDeployment wires the components the way the cmd/ binaries
// deploy them — database server, router server, collector agent, gmond
// proxy and libusermetric all talking HTTP — and checks the complete data
// path of paper Fig. 1 without any in-process shortcuts.
func TestDistributedDeployment(t *testing.T) {
	// lms-db.
	store := tsdb.NewStore()
	dbSrv := httptest.NewServer(tsdb.NewHandler(store))
	defer dbSrv.Close()

	// lms-router, forwarding over HTTP with per-user duplication.
	rt, err := router.New(router.Config{
		Primary: &tsdb.Client{BaseURL: dbSrv.URL, Database: "lms"},
		UserSink: func(user string) router.Sink {
			return &tsdb.Client{BaseURL: dbSrv.URL, Database: "user_" + user}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	// Scheduler prolog: job start signal over HTTP.
	sig, _ := json.Marshal(router.JobSignal{
		JobID: "777", User: "erin", Nodes: []string{"node01"},
		Tags: map[string]string{"queue": "devel"},
	})
	resp, err := http.Post(rtSrv.URL+"/api/job/start", "application/json", bytes.NewReader(sig))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("job start status %d", resp.StatusCode)
	}

	// lms-collector: simulated node, HTTP push to the router.
	pstate, err := proc.NewState("node01", 4, 32*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := hpm.NewMachine(hpm.Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 1, BaseClockMHz: 2200})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewTriad(4, 1e9)
	for core := 0; core < 4; core++ {
		p := w.ProfileAt(1, core)
		if err := machine.SetRates(core, p.Rates(2200)); err != nil {
			t.Fatal(err)
		}
		if err := pstate.SetCPULoad(core, p.UserFrac, p.SysFrac); err != nil {
			t.Fatal(err)
		}
	}
	agent, err := collector.New(collector.Config{
		Hostname: "node01",
		Endpoint: rtSrv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []collector.Plugin{
		&collector.CPUPlugin{FS: pstate},
		&collector.MemoryPlugin{FS: pstate},
		&collector.HPMPlugin{Machine: machine, GroupName: "MEM_DP"},
	} {
		if err := agent.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	// Two collection cycles (first arms CPU rates and HPM session).
	if err := agent.CollectAndPush(time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	_ = pstate.Tick(60)
	_ = machine.Advance(60)
	if err := agent.CollectAndPush(time.Unix(160, 0)); err != nil {
		t.Fatal(err)
	}

	// gmond + pulling proxy, pushing over the router's HTTP /write.
	gm := gmond.NewServer("testcluster")
	gm.Update("node01", time.Unix(150, 0), []gmond.Metric{{Name: "pkts_in", Value: 42}})
	if err := gm.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gm.Close()
	rc := &tsdb.Client{BaseURL: rtSrv.URL, Database: "lms"}
	proxy := &gmond.Proxy{
		Addr:   gm.Addr(),
		Ingest: rc.WritePoints,
		Now:    func() time.Time { return time.Unix(155, 0) },
	}
	if n, err := proxy.Pull(); err != nil || n != 1 {
		t.Fatalf("proxy pull %d %v", n, err)
	}

	// libusermetric over HTTP through the router.
	um, err := usermetric.New(usermetric.Config{
		Endpoint:      rtSrv.URL,
		DefaultTags:   map[string]string{"hostname": "node01"},
		FlushInterval: -1,
		Now:           func() time.Time { return time.Unix(170, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = um.Metric("pressure", 5.9, nil)
	_ = um.Event("phase 2", nil)
	if err := um.Close(); err != nil {
		t.Fatal(err)
	}

	// Scheduler epilog.
	end, _ := json.Marshal(router.JobSignal{JobID: "777"})
	resp, err = http.Post(rtSrv.URL+"/api/job/end", "application/json", bytes.NewReader(end))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Everything must have landed in the primary DB, tagged with the job.
	db := store.DB("lms")
	if db == nil {
		t.Fatal("primary db missing")
	}
	for _, meas := range []string{"cpu", "memory", "likwid_mem_dp", "ganglia_pkts_in", "pressure", "events"} {
		res, err := db.Select(tsdb.Query{Measurement: meas})
		if err != nil || len(res) == 0 {
			t.Fatalf("measurement %q missing: %v", meas, err)
		}
	}
	// Tagged with job id (collector data from the second cycle).
	res, err := db.Select(tsdb.Query{Measurement: "likwid_mem_dp", Filter: tsdb.TagFilter{"jobid": "777", "queue": "devel"}})
	if err != nil || len(res) == 0 {
		t.Fatalf("job tagging failed: %v %v", res, err)
	}
	// Per-user duplication over HTTP.
	udb := store.DB("user_erin")
	if udb == nil || udb.PointCount() == 0 {
		t.Fatal("user db missing or empty")
	}
	// The evaluation works on the HTTP-fed database too.
	// Point the evaluator at the database *server*, exactly as a
	// standalone lms-analyze -db-url would.
	ev := &analysis.Evaluator{Querier: &tsdb.Client{BaseURL: dbSrv.URL}, Database: "lms"}
	rep, err := ev.Evaluate(analysis.JobMeta{
		ID: "777", User: "erin", Nodes: []string{"node01"},
		Start: time.Unix(90, 0), End: time.Unix(200, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Rows[0]
	if row.Stats.N == 0 {
		t.Fatalf("evaluation empty: %+v", row)
	}
}
