package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/pubsub"
	"repro/internal/tsdb"
)

func fixedNow() time.Time { return time.Unix(1000, 0).UTC() }

type env struct {
	store  *tsdb.Store
	db     *tsdb.DB
	router *Router
	srv    *httptest.Server
}

func newEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	cfg := Config{Primary: LocalSink{DB: db}, Now: fixedNow}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r)
	t.Cleanup(srv.Close)
	return &env{store: store, db: db, router: r, srv: srv}
}

func (e *env) post(t *testing.T, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(e.srv.URL+path, "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func (e *env) startJob(t *testing.T, sig JobSignal) {
	t.Helper()
	body, _ := json.Marshal(sig)
	resp, err := http.Post(e.srv.URL+"/api/job/start", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("job start status %d", resp.StatusCode)
	}
}

func (e *env) endJob(t *testing.T, id string) {
	t.Helper()
	body, _ := json.Marshal(JobSignal{JobID: id})
	resp, err := http.Post(e.srv.URL+"/api/job/end", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("job end status %d", resp.StatusCode)
	}
}

func TestRouterRequiresPrimary(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing primary accepted")
	}
}

func TestWriteForwardsUntagged(t *testing.T) {
	e := newEnv(t, nil)
	resp := e.post(t, "/write", "cpu,hostname=h1 value=0.5 100\n")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
	res, err := e.db.Select(tsdb.Query{Measurement: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 1 {
		t.Fatalf("res %+v", res)
	}
	rec, fwd, drop := e.router.Stats()
	if rec != 1 || fwd != 1 || drop != 0 {
		t.Fatalf("stats %d %d %d", rec, fwd, drop)
	}
}

func TestJobTagEnrichment(t *testing.T) {
	e := newEnv(t, nil)
	e.startJob(t, JobSignal{
		JobID: "42.master", User: "alice",
		Nodes: []string{"h1", "h2"},
		Tags:  map[string]string{"queue": "batch"},
	})
	e.post(t, "/write", "cpu,hostname=h1 value=1 100\ncpu,hostname=h3 value=2 100\n")
	// h1 is in the job: tagged. h3 is not: untouched.
	res, _ := e.db.Select(tsdb.Query{Measurement: "cpu", Filter: tsdb.TagFilter{"jobid": "42.master"}})
	if len(res) != 1 || len(res[0].Rows) != 1 {
		t.Fatalf("tagged rows %+v", res)
	}
	if res[0].Rows[0].Values[0].FloatVal() != 1 {
		t.Fatal("wrong point tagged")
	}
	res, _ = e.db.Select(tsdb.Query{Measurement: "cpu", Filter: tsdb.TagFilter{"hostname": "h3"}})
	found := false
	for _, s := range res {
		for range s.Rows {
			found = true
		}
	}
	if !found {
		t.Fatal("untagged point lost")
	}
	// Enrichment includes username and custom tags.
	res, _ = e.db.Select(tsdb.Query{Measurement: "cpu",
		Filter: tsdb.TagFilter{"username": "alice", "queue": "batch"}})
	if len(res) != 1 {
		t.Fatalf("custom tags %+v", res)
	}
}

func TestJobEndStopsEnrichment(t *testing.T) {
	e := newEnv(t, nil)
	e.startJob(t, JobSignal{JobID: "1", User: "bob", Nodes: []string{"h1"}})
	e.post(t, "/write", "cpu,hostname=h1 value=1 100\n")
	e.endJob(t, "1")
	e.post(t, "/write", "cpu,hostname=h1 value=2 200\n")
	res, _ := e.db.Select(tsdb.Query{Measurement: "cpu", Filter: tsdb.TagFilter{"jobid": "1"}})
	if len(res) != 1 || len(res[0].Rows) != 1 {
		t.Fatalf("rows tagged after job end: %+v", res)
	}
	if e.router.TagStore().Hosts() != 0 {
		t.Fatal("tag store not cleaned")
	}
}

func TestExplicitTagsWin(t *testing.T) {
	e := newEnv(t, nil)
	e.startJob(t, JobSignal{JobID: "7", Nodes: []string{"h1"}})
	// A point already carrying a jobid (e.g. from libusermetric with custom
	// default tags) keeps it.
	e.post(t, "/write", "app,hostname=h1,jobid=custom value=1 100\n")
	res, _ := e.db.Select(tsdb.Query{Measurement: "app", Filter: tsdb.TagFilter{"jobid": "custom"}})
	if len(res) != 1 {
		t.Fatalf("%+v", res)
	}
}

func TestJobSignalsStoredAsEvents(t *testing.T) {
	e := newEnv(t, nil)
	e.startJob(t, JobSignal{JobID: "9", User: "carol", Nodes: []string{"h1", "h2"}})
	e.endJob(t, "9")
	res, err := e.db.Select(tsdb.Query{Measurement: "events", GroupByTags: []string{"type"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("event series %+v", res)
	}
	kinds := map[string]string{}
	for _, s := range res {
		kinds[s.Tags["type"]] = s.Rows[0].Values[0].StringVal()
	}
	if !strings.Contains(kinds["jobstart"], "jobstart job 9 user carol nodes h1,h2") {
		t.Fatalf("start event %q", kinds["jobstart"])
	}
	if !strings.Contains(kinds["jobend"], "jobend job 9") {
		t.Fatalf("end event %q", kinds["jobend"])
	}
}

func TestPerUserDuplication(t *testing.T) {
	var userStore *tsdb.Store
	e := newEnv(t, func(cfg *Config) {
		userStore = tsdb.NewStore()
		cfg.UserSink = func(user string) Sink {
			return LocalSink{DB: userStore.CreateDatabase("user_" + user)}
		}
	})
	e.startJob(t, JobSignal{JobID: "3", User: "dave", Nodes: []string{"h1"}})
	e.post(t, "/write", "cpu,hostname=h1 value=1 100\ncpu,hostname=h9 value=9 100\n")
	udb := userStore.DB("user_dave")
	if udb == nil {
		t.Fatal("user db not created")
	}
	res, _ := udb.Select(tsdb.Query{Measurement: "cpu"})
	if len(res) != 1 || len(res[0].Rows) != 1 {
		t.Fatalf("user rows %+v", res)
	}
	// Primary got both points.
	if n := e.db.PointCount(); n != 3 { // 2 metrics + 1 start event
		t.Fatalf("primary points %d", n)
	}
	// Duplicated point carries the job tags.
	if res[0].Rows[0].Values[0].FloatVal() != 1 {
		t.Fatal("wrong point duplicated")
	}
}

func TestUserSinkFailureIsBestEffort(t *testing.T) {
	e := newEnv(t, func(cfg *Config) {
		cfg.UserSink = func(user string) Sink { return failSink{} }
	})
	e.startJob(t, JobSignal{JobID: "3", User: "erin", Nodes: []string{"h1"}})
	resp := e.post(t, "/write", "cpu,hostname=h1 value=1 100\n")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
	_, fwd, drop := e.router.Stats()
	if fwd < 1 || drop != 1 {
		t.Fatalf("stats fwd=%d drop=%d", fwd, drop)
	}
}

type failSink struct{}

func (failSink) WritePoints([]lineproto.Point) error { return fmt.Errorf("boom") }

func TestPrimaryFailureIsReported(t *testing.T) {
	store := tsdb.NewStore()
	_ = store
	r, err := New(Config{Primary: failSink{}, Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader("cpu value=1 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestPublisherReceivesMetricsAndMeta(t *testing.T) {
	pub, err := pubsub.NewPublisher("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	e := newEnv(t, func(cfg *Config) { cfg.Publisher = pub })
	sub, err := pubsub.Dial(pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	_ = sub.Subscribe("")
	// Wait until subscription is active: retry the probe until delivered.
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
probeLoop:
	for {
		select {
		case <-tick.C:
			pub.Publish("probe", []byte("x"))
		case m := <-sub.Messages():
			if m.Topic == "probe" {
				break probeLoop
			}
		case <-deadline:
			t.Fatal("subscription inactive")
		}
	}
	e.startJob(t, JobSignal{JobID: "5", User: "f", Nodes: []string{"h1"}})
	e.post(t, "/write", "cpu,hostname=h1 value=1 100\n")
	var sawMeta, sawMetric bool
	timeout := time.After(5 * time.Second)
	for !(sawMeta && sawMetric) {
		select {
		case m := <-sub.Messages():
			switch {
			case m.Topic == "meta/jobstart":
				var job Job
				if err := json.Unmarshal(m.Payload, &job); err != nil || job.ID != "5" {
					t.Fatalf("meta payload %s: %v", m.Payload, err)
				}
				sawMeta = true
			case m.Topic == "metrics/cpu":
				pts, err := lineproto.Parse(m.Payload)
				if err != nil || len(pts) != 1 || pts[0].Tags["jobid"] != "5" {
					t.Fatalf("metric payload %q: %v", m.Payload, err)
				}
				sawMetric = true
			case m.Topic == "probe":
				// leftover
			default:
				t.Fatalf("unexpected topic %q", m.Topic)
			}
		case <-timeout:
			t.Fatalf("missing messages: meta=%v metric=%v", sawMeta, sawMetric)
		}
	}
}

func TestJobsEndpoint(t *testing.T) {
	e := newEnv(t, nil)
	e.startJob(t, JobSignal{JobID: "a", User: "u1", Nodes: []string{"h1"}})
	e.startJob(t, JobSignal{JobID: "b", User: "u2", Nodes: []string{"h2", "h3"}})
	resp, err := http.Get(e.srv.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Fatalf("jobs %+v", jobs)
	}
	if len(jobs[1].Nodes) != 2 {
		t.Fatalf("nodes %+v", jobs[1].Nodes)
	}
	// Single job endpoint.
	resp2, err := http.Get(e.srv.URL + "/api/job/a")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var job Job
	if err := json.NewDecoder(resp2.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.ID != "a" || job.User != "u1" || !job.Running() {
		t.Fatalf("job %+v", job)
	}
	// Finished jobs remain queryable.
	e.endJob(t, "a")
	resp3, err := http.Get(e.srv.URL + "/api/job/a")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if err := json.NewDecoder(resp3.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Running() {
		t.Fatal("ended job reported running")
	}
	resp4, _ := http.Get(e.srv.URL + "/api/job/ghost")
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost status %d", resp4.StatusCode)
	}
}

func TestJobSignalValidation(t *testing.T) {
	e := newEnv(t, nil)
	cases := []struct {
		path, body string
		wantStatus int
	}{
		{"/api/job/start", `{}`, http.StatusBadRequest},            // no jobid
		{"/api/job/start", `{"jobid":"x"}`, http.StatusBadRequest}, // no nodes
		{"/api/job/start", `notjson`, http.StatusBadRequest},       // bad json
		{"/api/job/end", `{"jobid":"ghost"}`, http.StatusNotFound}, // unknown job
		{"/api/job/end", `{}`, http.StatusBadRequest},              // no jobid
	}
	for _, c := range cases {
		resp := e.post(t, c.path, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %q: status %d want %d", c.path, c.body, resp.StatusCode, c.wantStatus)
		}
	}
	// Duplicate start conflicts.
	e.startJob(t, JobSignal{JobID: "dup", Nodes: []string{"h1"}})
	resp := e.post(t, "/api/job/start", `{"jobid":"dup","nodes":["h1"]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status %d", resp.StatusCode)
	}
}

func TestWriteValidation(t *testing.T) {
	e := newEnv(t, nil)
	if resp := e.post(t, "/write", "garbage"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage status %d", resp.StatusCode)
	}
	resp, _ := http.Get(e.srv.URL + "/write")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", resp.StatusCode)
	}
	if resp := e.post(t, "/write", ""); resp.StatusCode != http.StatusNoContent {
		t.Errorf("empty body status %d", resp.StatusCode)
	}
}

func TestPing(t *testing.T) {
	e := newEnv(t, nil)
	resp, err := http.Get(e.srv.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSharedNodeJobStacking(t *testing.T) {
	ts := NewTagStore()
	ts.Set("h1", map[string]string{"jobid": "1", "username": "a"})
	ts.Set("h1", map[string]string{"jobid": "2", "username": "b"})
	tags, ok := ts.Lookup("h1")
	if !ok || tags["jobid"] != "2" {
		t.Fatalf("latest job should win: %v", tags)
	}
	ts.Remove("h1", "2")
	tags, ok = ts.Lookup("h1")
	if !ok || tags["jobid"] != "1" {
		t.Fatalf("earlier job should be restored: %v", tags)
	}
	ts.Remove("h1", "1")
	if _, ok := ts.Lookup("h1"); ok {
		t.Fatal("empty host should miss")
	}
	// Removing an unknown job is a no-op.
	ts.Remove("h1", "ghost")
	// Re-Set of the same job replaces tags.
	ts.Set("h2", map[string]string{"jobid": "x", "v": "1"})
	ts.Set("h2", map[string]string{"jobid": "x", "v": "2"})
	tags, _ = ts.Lookup("h2")
	if tags["v"] != "2" {
		t.Fatalf("retransmission should update: %v", tags)
	}
	if ts.Hosts() != 1 {
		t.Fatalf("hosts %d", ts.Hosts())
	}
}

func TestTagStoreCopiesTags(t *testing.T) {
	ts := NewTagStore()
	src := map[string]string{"jobid": "1"}
	ts.Set("h1", src)
	src["jobid"] = "mutated"
	tags, _ := ts.Lookup("h1")
	if tags["jobid"] != "1" {
		t.Fatal("tag store aliases caller map")
	}
}

func TestJobRegistryHistoryBound(t *testing.T) {
	r := NewJobRegistry(3)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := r.Start(&Job{ID: id}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.End(id, fixedNow()); err != nil {
			t.Fatal(err)
		}
	}
	h := r.History()
	if len(h) != 3 || h[0].ID != "j2" || h[2].ID != "j4" {
		t.Fatalf("history %+v", h)
	}
	if _, err := r.End("ghost", fixedNow()); err == nil {
		t.Fatal("ending unknown job accepted")
	}
	if _, ok := r.Get("j4"); !ok {
		t.Fatal("finished job not found")
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("phantom job found")
	}
}

func TestConcurrentIngestAndSignals(t *testing.T) {
	e := newEnv(t, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				host := fmt.Sprintf("h%d", g)
				pts := []lineproto.Point{{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": host},
					Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i))},
					Time:        time.Unix(int64(i), 0),
				}}
				if err := e.router.Ingest(pts); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("job-%d-%d", g, i)
				_ = e.router.JobStart(JobSignal{JobID: id, Nodes: []string{fmt.Sprintf("h%d", g)}})
				_ = e.router.JobEnd(id)
			}
		}(g)
	}
	wg.Wait()
	rec, fwd, _ := e.router.Stats()
	if rec != 200 {
		t.Fatalf("received %d", rec)
	}
	if fwd < 200 {
		t.Fatalf("forwarded %d", fwd)
	}
}
