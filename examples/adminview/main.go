// Administrator main view and online job evaluation, reproducing paper
// Fig. 2: a small production mix runs on the cluster; mid-run, the admin
// view lists all currently running jobs with thumbnails, and loading a
// job's dashboard computes the evaluation header "with data from the start
// of the job until the loading of the Grafana dashboard".
//
// The example also serves the real web viewer for a moment and fetches the
// admin page over HTTP, exercising the full front-end path.
//
//	go run ./examples/adminview
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	lms "repro"
	"repro/internal/workload"
)

func main() {
	stack, sim, err := lms.NewSimulatedStack(
		lms.StackConfig{PerUserDBs: true},
		lms.SimConfig{Nodes: 8, CollectInterval: 60},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	submissions := []struct {
		id, user string
		nodes    int
		model    lms.WorkloadModel
	}{
		{"2001.master", "alice", 2, lms.NewTriad(20, 3600)},
		{"2002.master", "bob", 4, lms.NewDGEMM(20, 3600)},
		{"2003.master", "carol", 1, lms.NewMiniMD(20, 2097152, 30000)},
		{"2004.master", "dave", 1, &workload.LoadImbalance{Cores: 20, RuntimeSecs: 3600}},
	}
	for _, s := range submissions {
		err := sim.SubmitJob(lms.JobRequest{ID: s.id, User: s.user, Nodes: s.nodes}, s.model)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Run 30 simulated minutes: all four jobs are mid-flight.
	if err := sim.Run(1800); err != nil {
		log.Fatal(err)
	}

	// The admin view over HTTP, as an administrator's browser would see it.
	srv := httptest.NewServer(stack.Viewer)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		log.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== admin view (GET /) ==")
	fmt.Println(string(page))

	// The online evaluation header of one running job, Fig. 2: computed
	// from job start until "now" (the moment the dashboard is loaded).
	for _, job := range sim.Sched.Running() {
		meta := sim.JobMeta(job)
		meta.End = lms.SimTime(sim.Now())
		report, err := stack.Evaluator.Evaluate(meta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(report.FormatTable())
	}

	// The generated Grafana-model dashboard JSON for one job, which the
	// original agent would push to Grafana's API.
	running := sim.Sched.Running()
	if len(running) > 0 {
		meta := sim.JobMeta(running[0])
		meta.End = lms.SimTime(sim.Now())
		d, err := stack.Agent.GenerateJobDashboard(meta)
		if err != nil {
			log.Fatal(err)
		}
		out, _ := d.MarshalIndent()
		fmt.Printf("\n== generated dashboard JSON for job %s (%d bytes, %d rows) ==\n",
			meta.ID, len(out), len(d.Rows))
	}
}
