package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"--help"}, &out); err != nil {
		t.Fatalf("run(--help) = %v, want nil", err)
	}
	for _, flag := range []string{"-addr", "-db", "-retention", "-shards", "-data-dir", "-fsync"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("help output missing %s:\n%s", flag, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("run(-no-such-flag) = nil, want error")
	}
}

func TestRunBadAddr(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-addr", "256.256.256.256:http"}, &out); err == nil {
		t.Fatal("run with unbindable addr = nil, want error")
	}
}

// TestRunServes boots the server on an ephemeral port and exercises the
// /ping and /write endpoints end to end.
func TestRunServes(t *testing.T) {
	pr, pw := io.Pipe()
	go func() {
		if err := run([]string{"-addr", "127.0.0.1:0", "-shards", "2"}, pw); err != nil {
			pw.CloseWithError(fmt.Errorf("run: %w", err))
		}
	}()
	// The first output line announces the bound address.
	buf := make([]byte, 256)
	n, err := pr.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	line := string(buf[:n])
	m := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("no address in startup line %q", line)
	}
	base := "http://" + m[1]
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(base + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/ping status = %d", resp.StatusCode)
	}
	resp, err = client.Post(base+"/write?db=lms", "text/plain",
		strings.NewReader("cpu,hostname=h1 value=1 1500000000000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/write status = %d", resp.StatusCode)
	}
}

// startDB boots run() on an ephemeral port and returns the base URL and
// the channel run's error will arrive on. Output is drained in the
// background so shutdown prints never block the server.
func startDB(t *testing.T, args []string) (string, chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		err := run(args, pw)
		pw.CloseWithError(err)
		errc <- err
	}()
	br := bufio.NewReader(pr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading startup line: %v", err)
	}
	m := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("no address in startup line %q", line)
	}
	go io.Copy(io.Discard, br)
	return "http://" + m[1], errc
}

// TestRunDurableSIGTERMRestartRoundTrip is the acceptance test of the
// durable lms-db: ingest a corpus over HTTP, SIGTERM the server (graceful
// shutdown: WAL flush + final checkpoint), restart it on the same
// -data-dir and require byte-identical /query responses.
func TestRunDurableSIGTERMRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dir}
	client := &http.Client{Timeout: 5 * time.Second}

	post := func(base, body string) {
		t.Helper()
		resp, err := client.Post(base+"/write?db=lms", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("/write status = %d", resp.StatusCode)
		}
	}
	queries := []string{
		"SELECT * FROM cpu",
		"SELECT mean(value) FROM cpu GROUP BY time(10s), hostname",
		"SELECT * FROM events",
		"SHOW MEASUREMENTS",
	}
	fingerprint := func(base string) string {
		t.Helper()
		var sb strings.Builder
		for _, q := range queries {
			resp, err := client.Get(base + "/query?db=lms&epoch=ns&q=" + url.QueryEscape(q))
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/query %q status = %d: %s", q, resp.StatusCode, body)
			}
			sb.Write(body)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	sigterm := func(errc chan error) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("graceful shutdown returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down after SIGTERM")
		}
	}

	base, errc := startDB(t, args)
	for i := 0; i < 5; i++ {
		var lines strings.Builder
		for j := 0; j < 10; j++ {
			n := i*10 + j
			fmt.Fprintf(&lines, "cpu,hostname=h%d value=%d.5,ctx=%di %d\n",
				n%2+1, n, n*3, 1600000000000000000+int64(n)*1e9)
		}
		fmt.Fprintf(&lines, "events,jobid=42 msg=\"flush %d\" %d\n",
			i, 1600000000000000000+int64(i)*1e9)
		post(base, lines.String())
	}
	before := fingerprint(base)
	sigterm(errc)

	base2, errc2 := startDB(t, args)
	if after := fingerprint(base2); after != before {
		t.Fatal("/query responses after restart differ from pre-SIGTERM responses")
	}
	// The restarted server keeps accepting writes, and they land durably.
	post(base2, "cpu,hostname=h1 value=999 1700000000000000000\n")
	grown := fingerprint(base2)
	if grown == before {
		t.Fatal("write after restart is invisible")
	}
	sigterm(errc2)

	base3, errc3 := startDB(t, args)
	if got := fingerprint(base3); got != grown {
		t.Fatal("second restart lost the post-restart write")
	}
	sigterm(errc3)
}
