// Package cli holds the shared command-line plumbing of the cmd/ binaries.
// Every main delegates to a testable run(args, stdout) error; this package
// provides the flag-parsing and exit-code conventions they share:
//
//   - -h/--help prints the usage on stdout and succeeds (exit 0),
//   - usage errors (unknown flag, missing required argument) print the flag
//     listing plus one error line to stderr and exit with status 2
//     (flag.ExitOnError's status),
//   - runtime errors go to stderr and exit with status 1,
//   - normal output never mixes with flag diagnostics, so stdout stays
//     pipeable.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// ErrUsage marks a command-line usage error; mains exit 2 for it.
var ErrUsage = errors.New("usage error")

// Usagef builds an error that unwraps to ErrUsage.
func Usagef(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// Parse runs fs over args with the shared conventions. For -h/--help the
// usage is printed to stdout and done is true with a nil error. On a flag
// error the listing goes to stderr (so operators can discover valid flags
// while stdout stays clean) and the error comes back wrapped as ErrUsage.
func Parse(fs *flag.FlagSet, args []string, stdout io.Writer) (done bool, err error) {
	fs.SetOutput(io.Discard) // we place all diagnostics ourselves
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return true, nil
		}
		return true, UsageErr(fs, "%v", err)
	}
	return false, nil
}

// SplitList splits a comma-separated flag value into its non-empty,
// space-trimmed elements (the -cluster-peers convention). An empty value
// yields nil.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// UsageErr prints fs's flag listing to stderr and returns a usage error for
// main to report (exit status 2). For explicit validation failures after a
// successful Parse, e.g. a missing required flag.
func UsageErr(fs *flag.FlagSet, format string, args ...interface{}) error {
	fs.SetOutput(os.Stderr)
	fs.Usage()
	return Usagef(format, args...)
}

// Exit reports err on stderr (prefixed with the command name) and
// terminates with the conventional status; nil returns normally.
func Exit(name string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	if errors.Is(err, ErrUsage) {
		os.Exit(2)
	}
	os.Exit(1)
}

// Main is the shared main() body.
func Main(name string, run func(args []string, stdout io.Writer) error) {
	Exit(name, run(os.Args[1:], os.Stdout))
}
