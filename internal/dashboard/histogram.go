package dashboard

import (
	"fmt"
	"math"
	"strings"
)

// The paper lists histograms among the templated visualization options of
// the web front-end ("a variety of visualization options like graphs,
// histograms, pie charts and more"). This file adds the histogram panel
// type: the panel's query result values are bucketed into equal-width bins
// and rendered as horizontal bars.

// HistBin is one histogram bucket [Lo, Hi).
type HistBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets values into bins equal-width bins spanning [min, max].
// NaNs are skipped. The last bin is closed ([Lo, Hi]) so the maximum lands
// inside. Returns nil for empty input or bins < 1.
func Histogram(values []float64, bins int) []HistBin {
	if bins < 1 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		n++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if n == 0 {
		return nil
	}
	if lo == hi {
		return []HistBin{{Lo: lo, Hi: hi, Count: n}}
	}
	width := (hi - lo) / float64(bins)
	out := make([]HistBin, bins)
	for i := range out {
		out[i].Lo = lo + float64(i)*width
		out[i].Hi = out[i].Lo + width
	}
	out[bins-1].Hi = hi
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		idx := int((v - lo) / width)
		if idx >= bins {
			idx = bins - 1
		}
		out[idx].Count++
	}
	return out
}

// RenderHistogram draws the buckets as horizontal bars of width <= barMax.
func RenderHistogram(bins []HistBin, barMax int) string {
	if len(bins) == 0 {
		return "(no data)\n"
	}
	if barMax <= 0 {
		barMax = 40
	}
	maxCount := 0
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		barLen := 0
		if maxCount > 0 {
			barLen = b.Count * barMax / maxCount
		}
		if b.Count > 0 && barLen == 0 {
			barLen = 1
		}
		fmt.Fprintf(&sb, "[%12.4g, %12.4g) %-*s %d\n",
			b.Lo, b.Hi, barMax, strings.Repeat("█", barLen), b.Count)
	}
	return sb.String()
}
