package pubsub

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func newPair(t *testing.T, hwm int) (*Publisher, *Subscriber) {
	t.Helper()
	pub, err := NewPublisher("127.0.0.1:0", hwm)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	sub, err := Dial(pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })
	return pub, sub
}

// waitSubscribed publishes until the subscriber sees a probe message,
// guaranteeing the SUB command has been processed.
func waitSubscribed(t *testing.T, pub *Publisher, sub *Subscriber, topic string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			pub.Publish(topic, []byte("probe"))
		case m := <-sub.Messages():
			if string(m.Payload) == "probe" {
				return
			}
		case <-deadline:
			t.Fatal("subscription never became active")
		}
	}
}

func recvPayload(t *testing.T, sub *Subscriber) Message {
	t.Helper()
	select {
	case m, ok := <-sub.Messages():
		if !ok {
			t.Fatal("message channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for message")
		return Message{}
	}
}

func TestPublishSubscribe(t *testing.T) {
	pub, sub := newPair(t, 0)
	if err := sub.Subscribe("metrics/"); err != nil {
		t.Fatal(err)
	}
	waitSubscribed(t, pub, sub, "metrics/cpu")
	pub.Publish("metrics/cpu", []byte("cpu,hostname=h1 value=1 10"))
	m := recvPayload(t, sub)
	if m.Topic != "metrics/cpu" {
		t.Fatalf("topic %q", m.Topic)
	}
	if string(m.Payload) != "cpu,hostname=h1 value=1 10" {
		t.Fatalf("payload %q", m.Payload)
	}
}

func TestTopicPrefixFiltering(t *testing.T) {
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("meta/")
	waitSubscribed(t, pub, sub, "meta/probe")
	pub.Publish("metrics/cpu", []byte("nope"))
	pub.Publish("meta/jobstart", []byte("yes1"))
	pub.Publish("other", []byte("nope"))
	pub.Publish("meta/tags", []byte("yes2"))
	got := []string{string(recvPayload(t, sub).Payload), string(recvPayload(t, sub).Payload)}
	if got[0] != "yes1" || got[1] != "yes2" {
		t.Fatalf("got %v", got)
	}
	select {
	case m := <-sub.Messages():
		t.Fatalf("unexpected extra message %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestEmptyPrefixMatchesAll(t *testing.T) {
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("")
	waitSubscribed(t, pub, sub, "anything")
	pub.Publish("a", []byte("1"))
	pub.Publish("b/c", []byte("2"))
	if string(recvPayload(t, sub).Payload) != "1" {
		t.Fatal("first")
	}
	if string(recvPayload(t, sub).Payload) != "2" {
		t.Fatal("second")
	}
}

func TestUnsubscribe(t *testing.T) {
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("m/")
	waitSubscribed(t, pub, sub, "m/x")
	if err := sub.Unsubscribe("m/"); err != nil {
		t.Fatal(err)
	}
	_ = sub.Subscribe("other/")
	waitSubscribed(t, pub, sub, "other/x")
	pub.Publish("m/x", []byte("should-not-arrive"))
	pub.Publish("other/x", []byte("arrives"))
	if got := string(recvPayload(t, sub).Payload); got != "arrives" {
		t.Fatalf("got %q", got)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	pub, err := NewPublisher("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	const n = 5
	subs := make([]*Subscriber, n)
	for i := range subs {
		s, err := Dial(pub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		_ = s.Subscribe("t/")
		subs[i] = s
	}
	for _, s := range subs {
		waitSubscribed(t, pub, s, "t/probe")
	}
	// Drain any probe cross-talk before the real message: probes go to every
	// subscriber, so flush each channel first.
	for _, s := range subs {
	drain:
		for {
			select {
			case <-s.Messages():
			case <-time.After(30 * time.Millisecond):
				break drain
			}
		}
	}
	pub.Publish("t/data", []byte("fanout"))
	for i, s := range subs {
		if got := string(recvPayload(t, s).Payload); got != "fanout" {
			t.Fatalf("sub %d got %q", i, got)
		}
	}
	if pub.SubscriberCount() != n {
		t.Fatalf("subscriber count %d", pub.SubscriberCount())
	}
}

func TestOrderingPerTopic(t *testing.T) {
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("seq")
	waitSubscribed(t, pub, sub, "seq")
	const n = 500
	for i := 0; i < n; i++ {
		pub.Publish("seq", []byte(fmt.Sprint(i)))
	}
	for i := 0; i < n; i++ {
		m := recvPayload(t, sub)
		if string(m.Payload) != fmt.Sprint(i) {
			t.Fatalf("at %d got %q", i, m.Payload)
		}
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	pub, err := NewPublisher("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := Dial(pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	_ = sub.Subscribe("")
	waitSubscribed(t, pub, sub, "probe")
	// Do not read from sub while publishing far beyond the HWM. The channel
	// buffer (256) + hwm (8) bound deliverable messages; the rest must drop
	// without blocking this goroutine.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5000; i++ {
			pub.Publish("flood", []byte("x"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
	_, dropped := pub.Stats()
	if dropped == 0 {
		t.Fatal("expected drops for slow subscriber")
	}
}

func TestPayloadWithNewlines(t *testing.T) {
	// Batched line-protocol payloads contain newlines; framing must survive.
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("batch")
	waitSubscribed(t, pub, sub, "batch")
	payload := "cpu value=1 1\nmem value=2 2\nnet value=3 3\n"
	pub.Publish("batch", []byte(payload))
	m := recvPayload(t, sub)
	if string(m.Payload) != payload {
		t.Fatalf("payload %q", m.Payload)
	}
}

func TestInvalidTopicDropped(t *testing.T) {
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("")
	waitSubscribed(t, pub, sub, "ok")
	pub.Publish("bad topic", []byte("x"))
	pub.Publish("bad\ntopic", []byte("x"))
	_, dropped := pub.Stats()
	if dropped != 2 {
		t.Fatalf("dropped %d", dropped)
	}
	pub.Publish("good", []byte("y"))
	if got := recvPayload(t, sub); string(got.Payload) != "y" {
		t.Fatalf("got %+v", got)
	}
}

func TestSubscriberCloseEndsChannel(t *testing.T) {
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("")
	waitSubscribed(t, pub, sub, "x")
	_ = sub.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Messages():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("channel not closed after Close")
		}
	}
}

func TestPublisherCloseDisconnectsSubscribers(t *testing.T) {
	pub, err := NewPublisher("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Dial(pub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	_ = sub.Subscribe("")
	waitSubscribed(t, pub, sub, "x")
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Messages():
			if !ok {
				if pub.SubscriberCount() != 0 {
					t.Fatal("subscribers not cleaned up")
				}
				return
			}
		case <-deadline:
			t.Fatal("subscriber channel not closed after publisher Close")
		}
	}
}

func TestPublisherDoubleCloseIsSafe(t *testing.T) {
	pub, err := NewPublisher("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	pub, sub := newPair(t, 4096)
	_ = sub.Subscribe("c/")
	waitSubscribed(t, pub, sub, "c/probe")
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pub.Publish(fmt.Sprintf("c/%d", g), []byte(fmt.Sprintf("%d:%d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	// All 800 messages must arrive (hwm is large enough), with per-topic
	// FIFO order.
	last := map[string]int{}
	for i := 0; i < goroutines*per; i++ {
		m := recvPayload(t, sub)
		var g, seq int
		if _, err := fmt.Sscanf(string(m.Payload), "%d:%d", &g, &seq); err != nil {
			t.Fatalf("payload %q", m.Payload)
		}
		if prev, ok := last[m.Topic]; ok && seq != prev+1 {
			t.Fatalf("topic %s: seq %d after %d", m.Topic, seq, prev)
		}
		last[m.Topic] = seq
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestUnknownFrameIgnored(t *testing.T) {
	// A subscriber must skip frames it does not understand.
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("t")
	waitSubscribed(t, pub, sub, "t")
	// Publish a topic containing what looks like framing in the payload.
	payload := "MSG fake 3\nabc"
	pub.Publish("t", []byte(payload))
	if got := string(recvPayload(t, sub).Payload); got != payload {
		t.Fatalf("got %q", got)
	}
}

func TestStatsPublishedCount(t *testing.T) {
	pub, sub := newPair(t, 0)
	_ = sub.Subscribe("")
	waitSubscribed(t, pub, sub, "x")
	before, _ := pub.Stats()
	for i := 0; i < 10; i++ {
		pub.Publish("x", []byte(strings.Repeat("y", i)))
	}
	after, _ := pub.Stats()
	if after-before != 10 {
		t.Fatalf("published delta %d", after-before)
	}
}
