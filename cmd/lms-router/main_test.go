package main

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestRunHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"--help"}, &out); err != nil {
		t.Fatalf("run(--help) = %v, want nil", err)
	}
	for _, flag := range []string{"-addr", "-db-url", "-user-dbs", "-publish"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("help output missing %s:\n%s", flag, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("run(-bogus) = nil, want error")
	}
}

func TestRunBadPublishAddr(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-publish", "256.256.256.256:http"}, &out); err == nil {
		t.Fatal("run with unbindable publisher addr = nil, want error")
	}
}

// TestRunServes boots the router on an ephemeral port and checks the
// InfluxDB-mimicking /ping plus the job API surface.
func TestRunServes(t *testing.T) {
	pr, pw := io.Pipe()
	go func() {
		if err := run([]string{"-addr", "127.0.0.1:0"}, pw); err != nil {
			pw.CloseWithError(fmt.Errorf("run: %w", err))
		}
	}()
	buf := make([]byte, 256)
	n, err := pr.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	line := string(buf[:n])
	m := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("no address in startup line %q", line)
	}
	base := "http://" + m[1]
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(base + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/ping status = %d", resp.StatusCode)
	}
	if v := resp.Header.Get("X-Influxdb-Version"); v == "" {
		t.Error("/ping missing X-Influxdb-Version header")
	}
	resp, err = client.Get(base + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/jobs status = %d", resp.StatusCode)
	}
	if got := strings.TrimSpace(string(body)); got != "[]" && got != "null" {
		t.Fatalf("/api/jobs = %q, want empty list", got)
	}
}
