package tsdb

// Durable storage glue (DESIGN.md §9). The on-disk formats — segmented
// CRC32-framed WAL, columnar checkpoint files — live in the durable
// subpackage; this file owns their lifecycle around a DB:
//
//   - the durable write path: WriteBatch encodes the batch and appends it
//     to the WAL (fsynced per Durability.Fsync) *before* applying it in
//     memory and acknowledging, under a read-gate shared with checkpoints;
//   - checkpoints: rotate the WAL under the write gate, snapshot the
//     immutable in-memory column blocks (slice headers only — the same
//     invariants the lock-light read path relies on make this cheap),
//     serialize them to a checkpoint file and delete the covered WAL
//     segments;
//   - recovery: load the newest valid checkpoint, then replay the WAL
//     tail through the ordinary columnar write path (applyBatch and its
//     runBuilder), truncating at the first torn frame;
//   - retention: a sweep that dropped rows schedules a checkpoint (rate
//     limited by Durability.RetentionCheckpointEvery), which rewrites the
//     on-disk state without the expired blocks and deletes the expired
//     WAL segments.
//
// The gate ordering is what makes a checkpoint an exact WAL prefix:
// writers hold the gate in read mode across "append to WAL, apply to
// memory", so when a checkpoint holds it in write mode the memory state
// is exactly the contents of all segments below the freshly rotated one.

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fsys"
	"repro/internal/lineproto"
	"repro/internal/obs"
	"repro/internal/tsdb/durable"
)

// ErrDBClosed is returned by writes to a closed durable database.
var ErrDBClosed = errors.New("tsdb: database is closed")

// Durability configures the durable storage engine of a Store or DB. The
// zero value (empty Dir) keeps the database in memory only.
type Durability struct {
	// Dir is the root data directory; each database lives in its own
	// subdirectory. Empty disables persistence.
	Dir string
	// Fsync selects when WAL appends reach stable storage: per batch
	// (default, no acknowledged write ever lost), on an interval, or
	// never (page cache only).
	Fsync durable.FsyncPolicy
	// FsyncInterval is the FsyncEveryInterval period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates WAL segments past this size (default 8 MiB).
	SegmentBytes int64
	// CheckpointBytes triggers a background checkpoint once the live WAL
	// grows past this size (default 32 MiB).
	CheckpointBytes int64
	// RetentionCheckpointEvery rate-limits the checkpoint a retention
	// sweep schedules after dropping rows, so expired data also leaves
	// the disk (default 1 minute).
	RetentionCheckpointEvery time.Duration
	// FS is the filesystem the WAL and checkpoints run on. Nil selects
	// the real one; the fault-injection sweeps (persist_fault_test.go)
	// slide internal/faultfs underneath the whole engine through it.
	FS fsys.FS
}

func (d Durability) withDefaults() Durability {
	if d.CheckpointBytes <= 0 {
		d.CheckpointBytes = 32 << 20
	}
	if d.RetentionCheckpointEvery <= 0 {
		d.RetentionCheckpointEvery = time.Minute
	}
	return d
}

func (d Durability) walOptions() durable.Options {
	return durable.Options{Fsync: d.Fsync, FsyncInterval: d.FsyncInterval, SegmentBytes: d.SegmentBytes, FS: d.FS}
}

// durability is the runtime durable state of one DB.
type durability struct {
	dir  string
	opts Durability
	wal  *durable.WAL

	// gate serializes checkpoints against writers: WriteBatch holds it in
	// read mode across "WAL append + memory apply", Checkpoint in write
	// mode across "rotate + snapshot", so a checkpoint captures exactly
	// the batches in the segments it covers.
	gate sync.RWMutex
	// ckptMu serializes whole checkpoint operations.
	ckptMu     sync.Mutex
	ckptFlight atomic.Bool
	lastCkpt   atomic.Int64 // unix ns of the last completed checkpoint
	lastTry    atomic.Int64 // unix ns of the last background attempt (retry backoff)
}

// ckptRetryBackoff is the floor between background checkpoint attempts:
// a persistently failing checkpoint (disk full) must not retry — and
// rotate, fsync, rebuild the snapshot — on every subsequent batch.
const ckptRetryBackoff = 5 * time.Second

// batchBufPool recycles WAL encode buffers across concurrent writers.
var batchBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// writeDurable is WriteBatch's durable path: log first, apply second,
// acknowledge last. A context carrying a trace (obs.WithTrace) gets
// spans for the WAL append — which, under the per-batch fsync policy,
// includes the group-commit fsync wait — and the in-memory apply.
func (d *durability) writeDurable(ctx context.Context, db *DB, pts []lineproto.Point, now time.Time) error {
	tr := obs.TraceFrom(ctx)
	bufp := batchBufPool.Get().(*[]byte)
	payload := durable.AppendBatch((*bufp)[:0], pts, now.UnixNano())
	d.gate.RLock()
	wsp := tr.Start("tsdb.wal.append").AttrInt("bytes", int64(len(payload)))
	_, _, err := d.wal.Append(payload)
	wsp.End()
	if err == nil {
		asp := tr.Start("tsdb.apply").AttrInt("points", int64(len(pts)))
		db.applyBatch(pts, now)
		asp.End()
	}
	d.gate.RUnlock()
	*bufp = payload[:0]
	batchBufPool.Put(bufp)
	if err != nil {
		if errors.Is(err, durable.ErrClosed) {
			return ErrDBClosed
		}
		return fmt.Errorf("tsdb: WAL append: %w", err)
	}
	if d.wal.TotalSize() >= d.opts.CheckpointBytes {
		d.asyncCheckpoint(db)
	}
	return nil
}

// asyncCheckpoint starts a background checkpoint unless one is already in
// flight or one was attempted within the retry backoff. A failed
// background checkpoint leaves the WAL intact, so no data is at risk; the
// next trigger past the backoff (or Close) retries.
func (d *durability) asyncCheckpoint(db *DB) {
	now := time.Now().UnixNano()
	last := d.lastTry.Load()
	if now-last < int64(ckptRetryBackoff) || !d.lastTry.CompareAndSwap(last, now) {
		return
	}
	if !d.ckptFlight.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer d.ckptFlight.Store(false)
		_ = db.Checkpoint()
	}()
}

// noteRetentionDrop is called after a retention sweep removed rows:
// schedule a checkpoint so the expired rows leave the disk too, rate
// limited so steady ingest with retention does not checkpoint every sweep.
func (d *durability) noteRetentionDrop(db *DB) {
	if time.Now().UnixNano()-d.lastCkpt.Load() < int64(d.opts.RetentionCheckpointEvery) {
		return
	}
	d.asyncCheckpoint(db)
}

// Checkpoint writes the database's current state to a fresh checkpoint
// file and deletes the WAL segments it covers. On an in-memory database
// it is a no-op. Checkpoints run automatically (WAL growth, retention
// sweeps, Close); calling this is only needed for tests and tooling.
func (db *DB) Checkpoint() error {
	d := db.dur
	if d == nil {
		return nil
	}
	// A checkpoint is not tied to any one request, so it records its own
	// trace (ring permitting): rotate + snapshot under the write gate,
	// then the serialization outside it.
	tr := db.traceRing().StartTrace("tsdb.checkpoint", "")
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	d.gate.Lock()
	rsp := tr.Start("tsdb.checkpoint.rotate").Attr("db", db.name)
	seg, err := d.wal.Rotate()
	if err != nil {
		d.gate.Unlock()
		if errors.Is(err, durable.ErrClosed) {
			return ErrDBClosed
		}
		return err
	}
	rsp.End()
	ssp := tr.Start("tsdb.checkpoint.snapshot")
	snap := db.buildSnapshot()
	ssp.End()
	d.gate.Unlock()
	wsp := tr.Start("tsdb.checkpoint.write")
	if err := durable.WriteSnapshot(d.opts.FS, d.dir, seg, snap); err != nil {
		return fmt.Errorf("tsdb: checkpoint: %w", err)
	}
	wsp.End()
	d.lastCkpt.Store(time.Now().UnixNano())
	db.noteCheckpoint()
	err = d.wal.RemoveBelow(seg)
	tr.Finish()
	return err
}

// WALSealed reports the error that sealed the database's WAL against
// appends after a write or fsync failure, or nil for a healthy (or
// in-memory, or merely closed) database. Exported on /metrics as the
// lms_db_wal_sealed gauge.
func (db *DB) WALSealed() error {
	if db.dur == nil {
		return nil
	}
	return db.dur.wal.Sealed()
}

// Close stops the retention ticker and, for a durable database, writes a
// final checkpoint and closes the WAL. Further writes return ErrDBClosed.
// Closing twice is safe.
func (db *DB) Close() error {
	return db.closeInternal(true)
}

// Abort closes a durable database the hard way: no final checkpoint, no
// fsync — exactly the state a process crash would leave behind. The
// crash-recovery tests and benchmarks reopen the data directory after
// calling it.
func (db *DB) Abort() {
	if !db.closed.CompareAndSwap(false, true) {
		return
	}
	db.stopRetention()
	db.stopCompressor()
	if db.dur != nil {
		db.dur.wal.Abort()
	}
}

func (db *DB) closeInternal(checkpoint bool) error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.stopRetention()
	db.stopCompressor()
	if db.dur == nil {
		return nil
	}
	var err error
	if checkpoint {
		err = db.Checkpoint()
	}
	if cerr := db.dur.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// dbDirName maps a database name to its directory name under the data
// dir. Names whose escaped form would resolve outside the data directory
// ("." / "..") or collide with the store's own files are refused — a
// handler-auto-created database named ".." must never scatter WAL files
// into the data directory's parent, let alone let DropDatabase RemoveAll
// it.
func dbDirName(name string) (string, error) {
	esc := url.PathEscape(name)
	switch esc {
	case "", ".", "..", "LOCK":
		return "", fmt.Errorf("tsdb: invalid database name %q", name)
	}
	return esc, nil
}

// openDurableDB opens (recovering if the directory already has state) a
// durable database under opts.Dir.
func openDurableDB(name string, shards int, opts Durability) (*DB, error) {
	opts = opts.withDefaults()
	dirName, err := dbDirName(name)
	if err != nil {
		return nil, err
	}
	db := NewDBShards(name, shards)
	dir := filepath.Join(opts.Dir, dirName)
	snap, floor, err := durable.LoadLatestSnapshot(opts.FS, dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: open %q: %w", name, err)
	}
	if snap != nil {
		db.loadSnapshot(snap)
	}
	wo := opts.walOptions()
	// Feed the WAL fsync latency histogram (metrics.go). The DB reads its
	// metrics pointer per observation, so attaching the bundle after the
	// open (openLocked does) still instruments every later sync.
	wo.SyncObserver = db.observeFsync
	// A sealed log is an operational event, not just a stream of failed
	// writes: log the reason once, and let the lms_db_wal_sealed gauge
	// (metrics.go, sampling WALSealed at scrape time) raise the alert.
	wo.OnSeal = func(err error) {
		obs.Errorf("tsdb: %s: %v", name, err)
	}
	wal, err := durable.OpenWAL(dir, floor, wo, func(payload []byte) error {
		pts, err := durable.DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("tsdb: WAL replay of %q: %w", name, err)
		}
		// Replay feeds the tail through the ordinary columnar write path
		// (shard runBuilders, compaction, rewrite dedup), so the recovered
		// state is bit-for-bit what the pre-crash writes built. Timestamps
		// were resolved before encoding, so the wall clock is never used.
		db.applyBatch(pts, time.Now())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tsdb: open %q: %w", name, err)
	}
	db.dur = &durability{dir: dir, opts: opts, wal: wal}
	db.dur.lastCkpt.Store(time.Now().UnixNano())
	// Recovery resumes the stream clock: the downtime does not count as
	// idle time for the retention ticker (SetRetention).
	db.lastWrite.Store(time.Now().UnixNano())
	return db, nil
}

// --- in-memory state <-> durable.Snapshot -------------------------------

// buildSnapshot captures the database's full columnar state as a
// durable.Snapshot. It only copies slice headers: runs are immutable to
// readers (the same invariants Select's phase 1 relies on), so the
// serialization can proceed outside any lock. Callers must hold the
// durability gate in write mode (or otherwise exclude writers) so the
// capture is an exact WAL prefix.
func (db *DB) buildSnapshot() *durable.Snapshot {
	snap := &durable.Snapshot{}
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, m := range sh.measurements {
			dm := durable.Measurement{Name: m.name}
			fields := make([]string, 0, len(m.fields))
			for f := range m.fields {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				dm.Fields = append(dm.Fields, durable.FieldSchema{Name: f, Kind: m.fields[f]})
			}
			dm.Strs = m.strs.vals[:len(m.strs.vals):len(m.strs.vals)]
			keys := make([]string, 0, len(m.series))
			for k := range m.series {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				sr := m.series[k]
				ds := durable.Series{Tags: sr.tags}
				for _, run := range sr.runs {
					if c := run.comp; c != nil {
						// Compressed runs pass their chunks through to the
						// checkpoint verbatim: no re-encode on write, no
						// decode on recovery (DESIGN.md §13).
						dc := &durable.CompRun{
							N: c.n, MinTS: c.minTS, MaxTS: c.maxTS,
							RawBytes: c.rawBytes, Ts: c.ts,
						}
						for ci := range c.cols {
							cc := &c.cols[ci]
							dc.Cols = append(dc.Cols, durable.CompCol{
								Name:    cc.name,
								Kind:    cc.kind,
								Mixed:   cc.mixed,
								Width:   cc.width,
								Present: cc.present,
								Data:    cc.data,
								Vals:    cc.vals,
							})
						}
						ds.Runs = append(ds.Runs, durable.Run{Comp: dc})
						continue
					}
					dr := durable.Run{Ts: run.ts}
					for ci := range run.cols {
						c := &run.cols[ci]
						dr.Cols = append(dr.Cols, durable.Col{
							Name:    c.name,
							Kind:    c.kind,
							Mixed:   c.mixed,
							Present: c.present,
							Floats:  c.floats,
							Ints:    c.ints,
							StrIDs:  c.strs,
							Vals:    c.vals,
						})
					}
					ds.Runs = append(ds.Runs, dr)
				}
				dm.Series = append(dm.Series, ds)
			}
			snap.Measurements = append(snap.Measurements, dm)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(snap.Measurements, func(i, j int) bool {
		return snap.Measurements[i].Name < snap.Measurements[j].Name
	})
	return snap
}

// loadSnapshot rebuilds the in-memory columnar state from a checkpoint.
// Only called while the DB is private to the opener (before any reader or
// writer can see it).
func (db *DB) loadSnapshot(snap *durable.Snapshot) {
	newest := int64(minInt64)
	// Recovered runs are "fresh" for the background compressor: they only
	// become compression candidates once they sit idle for the configured
	// window after the restart.
	loadNS := time.Now().UnixNano()
	for mi := range snap.Measurements {
		dm := &snap.Measurements[mi]
		m := &measurement{
			name:   dm.Name,
			series: make(map[string]*series, len(dm.Series)),
			fields: make(map[string]lineproto.ValueKind, len(dm.Fields)),
			names:  make(map[string]string, len(dm.Fields)),
		}
		for _, f := range dm.Fields {
			m.names[f.Name] = f.Name
			m.fields[f.Name] = f.Kind
		}
		m.strs.vals = dm.Strs
		if len(dm.Strs) > 0 {
			m.strs.ids = make(map[string]uint32, len(dm.Strs))
			for id, s := range dm.Strs {
				m.strs.ids[s] = uint32(id)
			}
		}
		for si := range dm.Series {
			ds := &dm.Series[si]
			sr := &series{tags: ds.Tags}
			if sr.tags == nil {
				sr.tags = map[string]string{}
			}
			for ri := range ds.Runs {
				dr := &ds.Runs[ri]
				if dc := dr.Comp; dc != nil {
					// Compressed frame: adopt the chunks as-is — no decode
					// pass on the recovery path.
					run := &colRun{modNS: loadNS, comp: &compRun{
						n: dc.N, minTS: dc.MinTS, maxTS: dc.MaxTS,
						rawBytes: dc.RawBytes, ts: dc.Ts,
					}}
					for ci := range dc.Cols {
						cc := &dc.Cols[ci]
						name := cc.Name
						if canon, ok := m.names[name]; ok {
							name = canon
						} else {
							m.names[name] = name
							m.fields[name] = cc.Kind
						}
						run.comp.cols = append(run.comp.cols, compCol{
							name:    name,
							kind:    cc.Kind,
							mixed:   cc.Mixed,
							width:   cc.Width,
							present: cc.Present,
							data:    cc.Data,
							vals:    cc.Vals,
						})
					}
					sr.runs = append(sr.runs, run)
					if dc.MaxTS > newest {
						newest = dc.MaxTS
					}
					continue
				}
				run := &colRun{ts: dr.Ts, modNS: loadNS}
				for ci := range dr.Cols {
					dc := &dr.Cols[ci]
					name := dc.Name
					if canon, ok := m.names[name]; ok {
						name = canon // share one string per schema field
					} else {
						m.names[name] = name
						m.fields[name] = dc.Kind
					}
					run.cols = append(run.cols, col{
						name:    name,
						kind:    dc.Kind,
						mixed:   dc.Mixed,
						n:       len(dr.Ts),
						present: dc.Present,
						floats:  dc.Floats,
						ints:    dc.Ints,
						strs:    dc.StrIDs,
						vals:    dc.Vals,
					})
				}
				sr.runs = append(sr.runs, run)
				if n := len(dr.Ts); n > 0 && dr.Ts[n-1] > newest {
					newest = dr.Ts[n-1]
				}
			}
			m.series[seriesKey(sr.tags)] = sr
		}
		db.shardFor(dm.Name).measurements[dm.Name] = m
	}
	if newest != int64(minInt64) {
		db.newest.Store(newest)
	}
}

// --- store-level lifecycle ---------------------------------------------

// StoreOptions configure OpenStore.
type StoreOptions struct {
	// ShardsPerDB and QueryWorkersPerDB mirror the Store fields of the
	// same name (0 = GOMAXPROCS each).
	ShardsPerDB       int
	QueryWorkersPerDB int
	// CompressAfter mirrors Store.CompressAfter: sealed runs idle this
	// long are background-compressed (0 = never).
	CompressAfter time.Duration
	// Durability enables the durable storage engine when Dir is set.
	Durability Durability
}

// OpenStore builds a store with the given options and, when durability is
// enabled, recovers every database already present under the data
// directory, so a restarted server answers queries for all of them
// without waiting for a write. The data directory is flock'd for the
// store's lifetime: a second process opening the same directory would
// interleave WAL frames and delete each other's segments, so it is
// refused instead.
func OpenStore(o StoreOptions) (*Store, error) {
	s := NewStore()
	s.ShardsPerDB = o.ShardsPerDB
	s.QueryWorkersPerDB = o.QueryWorkersPerDB
	s.CompressAfter = o.CompressAfter
	if o.Durability.Dir == "" {
		return s, nil
	}
	s.durOpts = o.Durability.withDefaults()
	if err := os.MkdirAll(s.durOpts.Dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDataDir(s.durOpts.Dir)
	if err != nil {
		return nil, err
	}
	s.dirLock = lock
	entries, err := os.ReadDir(s.durOpts.Dir)
	if err != nil {
		s.unlockDataDir()
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil || url.PathEscape(name) != e.Name() {
			// Not a directory this store created: a non-canonical escape
			// would round-trip to a *different* directory name and the
			// store would silently serve (and drop!) the wrong one.
			continue
		}
		if _, err := s.OpenDatabase(name); err != nil {
			s.Abort()
			return nil, err
		}
	}
	return s, nil
}

// lockDataDir takes an exclusive, non-blocking flock on <dir>/LOCK.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("tsdb: data directory %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func (s *Store) unlockDataDir() {
	if s.dirLock != nil {
		_ = s.dirLock.Close() // closing drops the flock
		s.dirLock = nil
	}
}

// OpenDatabase creates (or returns the existing) database with that name,
// reporting durable-open failures instead of falling back the way
// CreateDatabase does.
func (s *Store) OpenDatabase(name string) (*DB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.openLocked(name)
}

func (s *Store) openLocked(name string) (*DB, error) {
	if db, ok := s.dbs[name]; ok {
		return db, nil
	}
	var db *DB
	if s.durOpts.Dir != "" {
		if s.closed {
			// The directory flock was released by Close/Abort: opening a
			// fresh durable database now would write into a directory
			// another process may legitimately hold.
			return nil, ErrDBClosed
		}
		var err error
		db, err = openDurableDB(name, s.ShardsPerDB, s.durOpts)
		if err != nil {
			return nil, err
		}
	} else {
		db = NewDBShards(name, s.ShardsPerDB)
	}
	if s.QueryWorkersPerDB > 0 {
		db.SetQueryWorkers(s.QueryWorkersPerDB)
	}
	if s.CompressAfter > 0 {
		db.SetCompressAfter(s.CompressAfter)
	}
	db.metrics.Store(s.metrics)
	s.dbs[name] = db
	return db, nil
}

// Close closes every database: final checkpoints are written, WALs
// flushed and closed, and the data directory lock is released. The store
// keeps serving reads of already-open in-memory databases, but durable
// writes fail after Close.
func (s *Store) Close() error {
	var errs []error
	for _, db := range s.snapshotDBs() {
		if err := db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", db.Name(), err))
		}
	}
	s.mu.Lock()
	s.closed = true
	s.unlockDataDir()
	s.mu.Unlock()
	return errors.Join(errs...)
}

// Abort closes every database without flushing or checkpointing,
// simulating a process crash (see DB.Abort). The directory lock is
// released (a real crash releases a flock too).
func (s *Store) Abort() {
	for _, db := range s.snapshotDBs() {
		db.Abort()
	}
	s.mu.Lock()
	s.closed = true
	s.unlockDataDir()
	s.mu.Unlock()
}

func (s *Store) snapshotDBs() []*DB {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dbs := make([]*DB, 0, len(s.dbs))
	for _, db := range s.dbs {
		dbs = append(dbs, db)
	}
	return dbs
}
