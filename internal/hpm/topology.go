// Package hpm is the hardware-performance-monitoring substrate of the LMS
// reproduction: a from-scratch, simulation-backed re-implementation of the
// parts of the LIKWID tools library the monitoring stack builds on
// (paper Sect. II and V).
//
// LIKWID abstracts processor-specific raw events behind *performance
// groups*: named event sets plus formulas for derived metrics (IPC, DP
// MFLOP/s, memory bandwidth, power, ...). LMS consumes only those derived
// metrics, which is what makes it portable across architectures. This
// package reproduces the full pipeline:
//
//	topology -> event catalog -> group files -> counter registers ->
//	measurement session -> derived metrics
//
// with the silicon replaced by a simulated Machine whose counters are driven
// by synthetic workload rate functions (see package workload). Counter
// registers wrap at 48 bits like real x86 PMCs, and the session logic
// handles the overflow, so the software path is exercised end to end.
package hpm

import (
	"fmt"
	"sort"
)

// Topology describes the simulated machine layout, the equivalent of
// likwid-topology output.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	// BaseClockMHz is the nominal (reference) clock.
	BaseClockMHz float64
}

// DefaultTopology mirrors the dual-socket 10-core Haswell nodes of the
// RRZE "Emmy" cluster the authors operate.
func DefaultTopology() Topology {
	return Topology{Sockets: 2, CoresPerSocket: 10, ThreadsPerCore: 1, BaseClockMHz: 2200}
}

// Validate checks the topology for positive dimensions.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 || t.ThreadsPerCore <= 0 {
		return fmt.Errorf("hpm: invalid topology %+v", t)
	}
	if t.BaseClockMHz <= 0 {
		return fmt.Errorf("hpm: invalid base clock %v", t.BaseClockMHz)
	}
	return nil
}

// NumHWThreads returns the total hardware thread count.
func (t Topology) NumHWThreads() int {
	return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore
}

// HWThread identifies one hardware thread and its position.
type HWThread struct {
	ID     int // APIC-style global id, 0..NumHWThreads-1
	Core   int // global core id
	Socket int
}

// HWThreads enumerates all hardware threads. Threads are numbered
// socket-major, core-minor, SMT-last, matching likwid-topology's physical
// ordering.
func (t Topology) HWThreads() []HWThread {
	threads := make([]HWThread, 0, t.NumHWThreads())
	id := 0
	for s := 0; s < t.Sockets; s++ {
		for c := 0; c < t.CoresPerSocket; c++ {
			for smt := 0; smt < t.ThreadsPerCore; smt++ {
				threads = append(threads, HWThread{
					ID:     id,
					Core:   s*t.CoresPerSocket + c,
					Socket: s,
				})
				id++
			}
		}
	}
	return threads
}

// SocketOf returns the socket that owns hardware thread id.
func (t Topology) SocketOf(id int) (int, error) {
	if id < 0 || id >= t.NumHWThreads() {
		return 0, fmt.Errorf("hpm: hwthread %d out of range [0,%d)", id, t.NumHWThreads())
	}
	return id / (t.CoresPerSocket * t.ThreadsPerCore), nil
}

// ParseCPUList parses a likwid-style CPU list expression: comma-separated
// entries that are either single ids ("3") or inclusive ranges ("0-4").
// The result is sorted and de-duplicated.
func ParseCPUList(expr string, max int) ([]int, error) {
	if expr == "" {
		return nil, fmt.Errorf("hpm: empty cpu list")
	}
	seen := map[int]struct{}{}
	start := 0
	parse := func(s string) (int, error) {
		n := 0
		if s == "" {
			return 0, fmt.Errorf("hpm: empty cpu id in %q", expr)
		}
		for i := 0; i < len(s); i++ {
			if s[i] < '0' || s[i] > '9' {
				return 0, fmt.Errorf("hpm: bad cpu id %q", s)
			}
			n = n*10 + int(s[i]-'0')
		}
		return n, nil
	}
	add := func(id int) error {
		if id < 0 || id >= max {
			return fmt.Errorf("hpm: cpu id %d out of range [0,%d)", id, max)
		}
		seen[id] = struct{}{}
		return nil
	}
	for i := 0; i <= len(expr); i++ {
		if i < len(expr) && expr[i] != ',' {
			continue
		}
		entry := expr[start:i]
		start = i + 1
		dash := -1
		for j := range entry {
			if entry[j] == '-' {
				dash = j
				break
			}
		}
		if dash < 0 {
			id, err := parse(entry)
			if err != nil {
				return nil, err
			}
			if err := add(id); err != nil {
				return nil, err
			}
			continue
		}
		lo, err := parse(entry[:dash])
		if err != nil {
			return nil, err
		}
		hi, err := parse(entry[dash+1:])
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("hpm: inverted range %q", entry)
		}
		for id := lo; id <= hi; id++ {
			if err := add(id); err != nil {
				return nil, err
			}
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}
