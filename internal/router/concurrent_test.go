package router

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// The tests in this file exercise the batched ingest pipeline under
// goroutine fan-out and are meant to run under the race detector.

// concBatch builds one batch of n points starting at timestamp base
// seconds. Rounds must use distinct bases: re-ingesting identical
// timestamps is an upsert in the store (tsdb same-timestamp rewrite,
// InfluxDB duplicate-point semantics), so fixed timestamps would make the
// PointCount assertions below count deduplication instead of lost points.
func concBatch(meas, host string, base, n int) []lineproto.Point {
	pts := make([]lineproto.Point, n)
	for i := range pts {
		pts[i] = lineproto.Point{
			Measurement: meas,
			Tags:        map[string]string{"hostname": host},
			Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i))},
			Time:        time.Unix(int64(base+i), 0),
		}
	}
	return pts
}

// TestRouterConcurrentIngest fans many agents into one router with per-user
// duplication enabled and asserts that no point is lost or double-counted.
func TestRouterConcurrentIngest(t *testing.T) {
	t.Parallel()
	const (
		agents  = 8
		rounds  = 30
		perB    = 10
		jobHost = "job-host"
	)
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	rt, err := New(Config{
		Primary: LocalSink{DB: db},
		UserSink: func(user string) Sink {
			return LocalSink{DB: store.CreateDatabase("user_" + user)}
		},
		Now: func() time.Time { return time.Unix(1000, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.JobStart(JobSignal{
		JobID: "1", User: "alice", Nodes: []string{jobHost},
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			host := fmt.Sprintf("host%02d", a)
			if a == 0 {
				host = jobHost // one agent runs inside the job
			}
			meas := fmt.Sprintf("cpu%02d", a)
			for i := 0; i < rounds; i++ {
				if err := rt.Ingest(concBatch(meas, host, i*perB, perB)); err != nil {
					t.Errorf("agent %d: %v", a, err)
					return
				}
			}
		}(a)
	}
	wg.Wait()

	wantPts := int64(agents * rounds * perB)
	received, forwarded, dropped := rt.Stats()
	// JobStart wrote one annotation event through the primary sink.
	if received != wantPts {
		t.Fatalf("received = %d, want %d", received, wantPts)
	}
	if forwarded != wantPts+1 {
		t.Fatalf("forwarded = %d, want %d", forwarded, wantPts+1)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if got, want := db.PointCount(), int(wantPts)+1; got != want {
		t.Fatalf("primary PointCount = %d, want %d", got, want)
	}
	// The job agent's points were duplicated into alice's database.
	udb := store.DB("user_alice")
	if udb == nil {
		t.Fatal("user_alice database missing")
	}
	if got, want := udb.PointCount(), rounds*perB; got != want {
		t.Fatalf("user PointCount = %d, want %d", got, want)
	}
}

// TestRouterConcurrentIngestBatch drives the payload-based entry point (the
// path shared by HTTP /write and the in-process agents) concurrently.
func TestRouterConcurrentIngestBatch(t *testing.T) {
	t.Parallel()
	const (
		agents = 6
		rounds = 25
		perB   = 8
	)
	db := tsdb.NewDB("lms")
	rt, err := New(Config{Primary: LocalSink{DB: db}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				payload, err := lineproto.Encode(concBatch(fmt.Sprintf("net%02d", a), "h1", i*perB, perB))
				if err != nil {
					t.Errorf("encode: %v", err)
					return
				}
				if err := rt.IngestBatch(payload); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if got, want := db.PointCount(), agents*rounds*perB; got != want {
		t.Fatalf("PointCount = %d, want %d", got, want)
	}
}

// TestRouterConcurrentJobChurn mixes metric ingest with job start/end churn
// and registry/stat reads: the tag store and job registry must stay
// race-free while enrichment is in flight.
func TestRouterConcurrentJobChurn(t *testing.T) {
	t.Parallel()
	const rounds = 40
	db := tsdb.NewDB("lms")
	rt, err := New(Config{
		Primary: LocalSink{DB: db},
		Now:     func() time.Time { return time.Unix(2000, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Metric traffic from two hosts.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			host := fmt.Sprintf("churn%02d", a)
			for i := 0; i < rounds; i++ {
				if err := rt.Ingest(concBatch("load", host, i*5, 5)); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(a)
	}
	// Job churn on the same hosts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			id := fmt.Sprintf("job%d", i)
			err := rt.JobStart(JobSignal{
				JobID: id, User: "bob", Nodes: []string{"churn00", "churn01"},
			})
			if err != nil {
				t.Errorf("start: %v", err)
				return
			}
			if err := rt.JobEnd(id); err != nil {
				t.Errorf("end: %v", err)
				return
			}
		}
	}()
	// Observers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			rt.Stats()
			rt.Jobs().Running()
			rt.TagStore().Lookup("churn00")
		}
	}()
	wg.Wait()

	received, forwarded, dropped := rt.Stats()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	// Every received metric point plus 2 events per job must have been
	// forwarded.
	want := received + 2*rounds
	if forwarded != want {
		t.Fatalf("forwarded = %d, want %d", forwarded, want)
	}
}
