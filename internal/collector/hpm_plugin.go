package collector

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hpm"
	"repro/internal/lineproto"
)

// HPMPlugin measures a LIKWID performance group continuously between
// collection cycles (the timeline mode of likwid-perfctr) and emits the
// derived metrics.
//
// Each Collect call stops the running measurement interval, evaluates it,
// and immediately starts the next one, so consecutive points cover
// contiguous windows. Metrics are emitted as one point per node
// (measurement "likwid_<group>", fields = sanitized metric names) and
// optionally one point per hardware thread (measurement
// "likwid_<group>_thread", tag "thread").
//
// Node aggregation follows metric semantics: rate- and volume-like metrics
// (".../s]", "volume", "Energy", "MUOPS", "MFLOP", "MIPS", "misses") are
// summed over threads, intensive metrics (CPI, Clock, ratios) are averaged.
type HPMPlugin struct {
	Machine   *hpm.Machine
	GroupName string
	Threads   []int // nil = all
	PerThread bool
	// Groups optionally resolves GroupName against a custom set (built-in
	// plus site-local group files); nil uses the built-in groups.
	Groups *hpm.GroupSet

	sess    *hpm.Session
	started bool
}

// Name implements Plugin.
func (p *HPMPlugin) Name() string { return "likwid_" + strings.ToLower(p.GroupName) }

// Collect implements Plugin.
func (p *HPMPlugin) Collect(now time.Time) ([]lineproto.Point, error) {
	if p.sess == nil {
		var sess *hpm.Session
		var err error
		if p.Groups != nil {
			var g *hpm.Group
			if g, err = p.Groups.Lookup(p.GroupName); err == nil {
				sess, err = hpm.NewSessionGroup(p.Machine, g, p.Threads)
			}
		} else {
			sess, err = hpm.NewSession(p.Machine, p.GroupName, p.Threads)
		}
		if err != nil {
			return nil, err
		}
		p.sess = sess
	}
	if !p.started {
		// First cycle arms the counters; data arrives from the second on.
		if err := p.sess.Start(); err != nil {
			return nil, err
		}
		p.started = true
		return nil, nil
	}
	if err := p.sess.Stop(); err != nil {
		return nil, err
	}
	res, err := p.sess.Result()
	if err != nil {
		return nil, err
	}
	if err := p.sess.Start(); err != nil {
		return nil, err
	}
	if res.Duration <= 0 {
		return nil, nil
	}

	meas := "likwid_" + strings.ToLower(p.GroupName)
	fields := map[string]lineproto.Value{}
	for _, metric := range res.MetricNames() {
		key := SanitizeFieldKey(metric)
		if key == "" {
			continue
		}
		var v float64
		if SumMetric(metric) {
			v = res.Sum(metric)
		} else {
			v = res.Mean(metric)
		}
		fields[key] = lineproto.Float(v)
	}
	out := []lineproto.Point{{Measurement: meas, Fields: fields, Time: now}}
	if p.PerThread {
		for _, tid := range res.Threads {
			tf := map[string]lineproto.Value{}
			for _, metric := range res.MetricNames() {
				key := SanitizeFieldKey(metric)
				if key == "" {
					continue
				}
				tf[key] = lineproto.Float(res.Metrics[tid][metric])
			}
			out = append(out, lineproto.Point{
				Measurement: meas + "_thread",
				Tags:        map[string]string{"thread": fmt.Sprint(tid)},
				Fields:      tf,
				Time:        now,
			})
		}
	}
	return out, nil
}

// SumMetric decides whether a LIKWID metric is extensive (summed over
// threads for the node value) or intensive (averaged).
func SumMetric(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range []string{"/s]", "flop/s", "muops", "mips", "volume", "energy", "misses"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}
