package usermetric

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

func fixedNow() time.Time { return time.Unix(500, 0).UTC() }

// collectSink gathers flushed payloads.
type collectSink struct {
	mu       sync.Mutex
	payloads [][]byte
	fail     int // fail this many sends
}

func (s *collectSink) send(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail > 0 {
		s.fail--
		return errors.New("sink down")
	}
	cp := append([]byte(nil), p...)
	s.payloads = append(s.payloads, cp)
	return nil
}

func (s *collectSink) points(t *testing.T) []lineproto.Point {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var pts []lineproto.Point
	for _, p := range s.payloads {
		got, err := lineproto.Parse(p)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, got...)
	}
	return pts
}

func newClient(t *testing.T, sink *collectSink, mutate func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		Sink:          sink.send,
		DefaultTags:   map[string]string{"hostname": "h1", "app": "test"},
		FlushInterval: -1, // manual flush
		Now:           fixedNow,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestMetricBufferedUntilFlush(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	if err := c.Metric("pressure", 5.9, nil); err != nil {
		t.Fatal(err)
	}
	if len(sink.points(t)) != 0 {
		t.Fatal("sent before flush")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	pts := sink.points(t)
	if len(pts) != 1 {
		t.Fatalf("points %d", len(pts))
	}
	p := pts[0]
	if p.Measurement != "pressure" || p.Fields["value"].FloatVal() != 5.9 {
		t.Fatalf("%+v", p)
	}
	if p.Tags["hostname"] != "h1" || p.Tags["app"] != "test" {
		t.Fatalf("default tags %v", p.Tags)
	}
	if !p.Time.Equal(fixedNow()) {
		t.Fatalf("time %v", p.Time)
	}
}

func TestPerCallTags(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	_ = c.Metric("runtime", 1.2, map[string]string{"tid": "3", "app": "override"})
	_ = c.Flush()
	p := sink.points(t)[0]
	if p.Tags["tid"] != "3" {
		t.Fatalf("per-call tag missing: %v", p.Tags)
	}
	if p.Tags["app"] != "override" {
		t.Fatalf("per-call tag should override default: %v", p.Tags)
	}
}

func TestMetricFields(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	_ = c.MetricFields("minimd", map[string]lineproto.Value{
		"pressure":    lineproto.Float(5.9),
		"temperature": lineproto.Float(0.9),
		"energy":      lineproto.Float(-4.6),
	}, nil)
	_ = c.Flush()
	p := sink.points(t)[0]
	if len(p.Fields) != 3 {
		t.Fatalf("%+v", p.Fields)
	}
}

func TestEvent(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	_ = c.Event("starting miniMD", map[string]string{"phase": "init"})
	_ = c.Flush()
	p := sink.points(t)[0]
	if p.Measurement != "events" {
		t.Fatalf("measurement %q", p.Measurement)
	}
	if p.Fields["text"].StringVal() != "starting miniMD" {
		t.Fatalf("%+v", p.Fields)
	}
	if p.Tags["phase"] != "init" || p.Tags["hostname"] != "h1" {
		t.Fatalf("%v", p.Tags)
	}
}

func TestBatchingSingleSend(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	for i := 0; i < 10; i++ {
		_ = c.Metric("m", float64(i), nil)
	}
	_ = c.Flush()
	sink.mu.Lock()
	n := len(sink.payloads)
	sink.mu.Unlock()
	if n != 1 {
		t.Fatalf("expected 1 batched send, got %d", n)
	}
	if len(sink.points(t)) != 10 {
		t.Fatalf("points %d", len(sink.points(t)))
	}
}

func TestMaxBatchTriggersEarlyFlush(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, func(cfg *Config) { cfg.MaxBatch = 5 })
	for i := 0; i < 5; i++ {
		_ = c.Metric("m", float64(i), nil)
	}
	if got := len(sink.points(t)); got != 5 {
		t.Fatalf("auto flush points %d", got)
	}
}

func TestRetryOnFailure(t *testing.T) {
	sink := &collectSink{fail: 2}
	c := newClient(t, sink, nil)
	_ = c.Metric("m", 1, nil)
	if err := c.Flush(); err == nil {
		t.Fatal("expected error")
	}
	if err := c.Flush(); err == nil {
		t.Fatal("expected second error")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.points(t)); got != 1 {
		t.Fatalf("points after retry %d", got)
	}
	sent, dropped := c.Stats()
	if sent != 1 || dropped != 0 {
		t.Fatalf("stats %d %d", sent, dropped)
	}
}

func TestRetryLimitDrops(t *testing.T) {
	sink := &collectSink{fail: 100}
	c := newClient(t, sink, func(cfg *Config) { cfg.RetryLimit = 2 })
	_ = c.Metric("m", 1, nil)
	for i := 0; i < 5; i++ {
		_ = c.Flush()
	}
	_, dropped := c.Stats()
	if dropped != 1 {
		t.Fatalf("dropped %d", dropped)
	}
	// New metrics after the drop go through once the sink recovers.
	sink.mu.Lock()
	sink.fail = 0
	sink.mu.Unlock()
	_ = c.Metric("m2", 2, nil)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.points(t)); got != 1 {
		t.Fatalf("points %d", got)
	}
}

func TestOrderPreservedAcrossRetry(t *testing.T) {
	sink := &collectSink{fail: 1}
	c := newClient(t, sink, nil)
	_ = c.Metric("a", 1, nil)
	_ = c.Flush() // fails, payload pending
	_ = c.Metric("b", 2, nil)
	_ = c.Flush() // sends pending "a" first, then "b"
	pts := sink.points(t)
	if len(pts) != 2 || pts[0].Measurement != "a" || pts[1].Measurement != "b" {
		t.Fatalf("order %+v", pts)
	}
}

func TestInvalidMetricRejected(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	if err := c.Metric("", 1, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := c.MetricFields("m", nil, nil); err == nil {
		t.Fatal("no fields accepted")
	}
}

func TestBackgroundFlush(t *testing.T) {
	sink := &collectSink{}
	cfg := Config{
		Sink:          sink.send,
		FlushInterval: 10 * time.Millisecond,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Metric("bg", 1, nil)
	deadline := time.After(5 * time.Second)
	for len(sink.points(t)) == 0 {
		select {
		case <-deadline:
			t.Fatal("background flush never happened")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestCloseFlushesAndIsIdempotent(t *testing.T) {
	sink := &collectSink{}
	cfg := Config{Sink: sink.send, FlushInterval: time.Hour}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Metric("final", 1, nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.points(t)) != 1 {
		t.Fatal("close did not flush")
	}
	if err := c.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestHTTPTransmissionEndToEnd(t *testing.T) {
	store := tsdb.NewStore()
	srv := httptest.NewServer(tsdb.NewHandler(store))
	defer srv.Close()
	c, err := New(Config{
		Endpoint:      srv.URL,
		Database:      "lms",
		DefaultTags:   map[string]string{"hostname": "h1"},
		FlushInterval: -1,
		Now:           fixedNow,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Metric("pressure", 5.9, nil)
	_ = c.Event("run start", nil)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	db := store.DB("lms")
	if db == nil || db.PointCount() != 2 {
		t.Fatalf("db state %v", db)
	}
}

func TestHTTPErrorSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := New(Config{Endpoint: srv.URL, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Metric("m", 1, nil)
	if err := c.Flush(); err == nil {
		t.Fatal("expected flush error")
	}
}

func TestTrackerAllocation(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	tr := NewTracker(c)
	_ = tr.TrackAlloc(1024, nil)
	_ = tr.TrackAlloc(2048, nil)
	_ = tr.TrackAlloc(-1024, nil)
	if tr.Allocated() != 2048 {
		t.Fatalf("allocated %d", tr.Allocated())
	}
	// Free below zero clamps.
	_ = tr.TrackAlloc(-99999, nil)
	if tr.Allocated() != 0 {
		t.Fatalf("allocated %d", tr.Allocated())
	}
	_ = c.Flush()
	pts := sink.points(t)
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[1].Fields["total"].IntVal() != 3072 {
		t.Fatalf("running total %+v", pts[1].Fields)
	}
}

func TestTrackerAffinity(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, nil)
	tr := NewTracker(c)
	_ = tr.TrackAffinity(7, 12, map[string]string{"rank": "0"})
	_ = c.Flush()
	p := sink.points(t)[0]
	if p.Measurement != "app_affinity" || p.Tags["tid"] != "7" || p.Tags["rank"] != "0" {
		t.Fatalf("%+v", p)
	}
	if p.Fields["cpu"].IntVal() != 12 {
		t.Fatalf("%+v", p.Fields)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	sink := &collectSink{}
	c := newClient(t, sink, func(cfg *Config) { cfg.MaxBatch = 1 << 30 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = c.Metric("m", float64(i), nil)
			}
		}(g)
	}
	wg.Wait()
	_ = c.Flush()
	if got := len(sink.points(t)); got != 800 {
		t.Fatalf("points %d", got)
	}
}
