package tsdb

// Bit-granular stream reader/writer backing the compressed chunk codecs
// (compress.go, DESIGN.md §13). Bits are packed MSB-first into bytes —
// the layout Gorilla, Prometheus and InfluxDB use — so a chunk is a plain
// []byte that the durable snapshot codec can frame and CRC without
// knowing anything about its contents.
//
// The writer grows a byte slice and never fails; the reader is fully
// bounds-checked and returns errShortChunk instead of panicking, because
// query-time decode may face bytes that came off a disk (the checkpoint
// CRC makes corruption here effectively unreachable, but the fuzz targets
// hold the decoder to "never panics" regardless).

import "errors"

var errShortChunk = errors.New("tsdb: compressed chunk truncated")

// bitWriter appends bits MSB-first to a byte slice.
type bitWriter struct {
	b    []byte
	free uint8 // unwritten bits remaining in the last byte of b
}

// writeBit appends a single bit.
func (w *bitWriter) writeBit(bit bool) {
	if w.free == 0 {
		w.b = append(w.b, 0)
		w.free = 8
	}
	if bit {
		w.b[len(w.b)-1] |= 1 << (w.free - 1)
	}
	w.free--
}

// writeByte appends 8 bits.
func (w *bitWriter) writeByte(v byte) {
	if w.free == 0 {
		w.b = append(w.b, v)
		return
	}
	// Split across the partial last byte and a fresh one.
	i := len(w.b) - 1
	w.b[i] |= v >> (8 - w.free)
	w.b = append(w.b, v<<w.free)
}

// writeBits appends the low n bits of v (1 <= n <= 64), MSB-first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	v <<= 64 - n
	for n >= 8 {
		w.writeByte(byte(v >> 56))
		v <<= 8
		n -= 8
	}
	for n > 0 {
		w.writeBit(v>>63 == 1)
		v <<= 1
		n--
	}
}

// bytes returns the finished stream. Trailing free bits stay zero.
func (w *bitWriter) bytes() []byte { return w.b }

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	b    []byte
	pos  int   // next byte to consume from
	used uint8 // bits already consumed of b[pos]
}

// readBit consumes a single bit.
func (r *bitReader) readBit() (bool, error) {
	if r.pos >= len(r.b) {
		return false, errShortChunk
	}
	bit := r.b[r.pos]&(1<<(7-r.used)) != 0
	if r.used++; r.used == 8 {
		r.pos++
		r.used = 0
	}
	return bit, nil
}

// readByte consumes 8 bits.
func (r *bitReader) readByte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, errShortChunk
	}
	if r.used == 0 {
		v := r.b[r.pos]
		r.pos++
		return v, nil
	}
	if r.pos+1 >= len(r.b) {
		return 0, errShortChunk
	}
	v := r.b[r.pos]<<r.used | r.b[r.pos+1]>>(8-r.used)
	r.pos++
	return v, nil
}

// readBits consumes n bits (1 <= n <= 64) into the low bits of the result.
func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for n >= 8 {
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		v = v<<8 | uint64(b)
		n -= 8
	}
	for n > 0 {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if bit {
			v |= 1
		}
		n--
	}
	return v, nil
}
