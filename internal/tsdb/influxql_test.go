package tsdb

import (
	"testing"
	"time"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	stmts, err := ParseQuery(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("parse %q: %d statements", q, len(stmts))
	}
	return stmts[0]
}

func TestParseSelectSimple(t *testing.T) {
	st := mustParse(t, "SELECT value FROM cpu_load")
	if st.Kind != StmtSelect || st.Query.Measurement != "cpu_load" {
		t.Fatalf("%+v", st)
	}
	if len(st.AggCols) != 1 || st.AggCols[0].Field != "value" || st.AggCols[0].Agg != AggNone {
		t.Fatalf("cols %+v", st.AggCols)
	}
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM mem")
	if !st.Star {
		t.Fatal("star not detected")
	}
}

func TestParseSelectAggregate(t *testing.T) {
	st := mustParse(t, "SELECT mean(value) FROM likwid_mem WHERE time >= 100 AND time <= 200 GROUP BY time(10s), hostname LIMIT 5")
	if st.AggCols[0].Agg != AggMean || st.AggCols[0].Field != "value" {
		t.Fatalf("agg %+v", st.AggCols)
	}
	if st.Query.Start.UnixNano() != 100 || st.Query.End.UnixNano() != 200 {
		t.Fatalf("range %v %v", st.Query.Start, st.Query.End)
	}
	if st.Query.Every != 10*time.Second {
		t.Fatalf("every %v", st.Query.Every)
	}
	if len(st.Query.GroupByTags) != 1 || st.Query.GroupByTags[0] != "hostname" {
		t.Fatalf("groupby %v", st.Query.GroupByTags)
	}
	if st.Query.Limit != 5 {
		t.Fatalf("limit %d", st.Query.Limit)
	}
}

func TestParseSelectPercentile(t *testing.T) {
	st := mustParse(t, "SELECT percentile(value, 95) FROM m")
	if st.AggCols[0].Agg != AggPercentile || st.AggCols[0].Pct != 95 {
		t.Fatalf("%+v", st.AggCols)
	}
}

func TestParseSelectTagCondition(t *testing.T) {
	st := mustParse(t, "SELECT value FROM cpu WHERE hostname = 'node01' AND jobid = '42.master'")
	if st.Query.Filter["hostname"] != "node01" || st.Query.Filter["jobid"] != "42.master" {
		t.Fatalf("filter %v", st.Query.Filter)
	}
}

func TestParseSelectQuotedIdent(t *testing.T) {
	st := mustParse(t, `SELECT "value" FROM "my measurement"`)
	if st.Query.Measurement != "my measurement" {
		t.Fatalf("measurement %q", st.Query.Measurement)
	}
}

func TestParseSelectGroupByStar(t *testing.T) {
	st := mustParse(t, "SELECT last(value) FROM cpu GROUP BY *")
	if len(st.Query.GroupByTags) != 1 || st.Query.GroupByTags[0] != "*" {
		t.Fatalf("groupby %v", st.Query.GroupByTags)
	}
}

func TestParseTimeRFC3339(t *testing.T) {
	st := mustParse(t, "SELECT value FROM m WHERE time >= '2017-08-04T10:00:00Z'")
	want := time.Date(2017, 8, 4, 10, 0, 0, 0, time.UTC)
	if !st.Query.Start.Equal(want) {
		t.Fatalf("start %v", st.Query.Start)
	}
}

func TestParseTimeWithUnit(t *testing.T) {
	st := mustParse(t, "SELECT value FROM m WHERE time >= 100s AND time < 200s")
	if st.Query.Start.UnixNano() != 100*time.Second.Nanoseconds() {
		t.Fatalf("start %v", st.Query.Start)
	}
	if st.Query.End.UnixNano() != 200*time.Second.Nanoseconds() {
		t.Fatalf("end %v", st.Query.End)
	}
}

func TestParseShowStatements(t *testing.T) {
	cases := []struct {
		q    string
		kind StmtKind
	}{
		{"SHOW DATABASES", StmtShowDatabases},
		{"SHOW MEASUREMENTS", StmtShowMeasurements},
		{"SHOW FIELD KEYS FROM cpu", StmtShowFieldKeys},
		{"SHOW TAG KEYS FROM cpu", StmtShowTagKeys},
		{"SHOW TAG VALUES FROM cpu WITH KEY = hostname", StmtShowTagValues},
		{"SHOW TAG VALUES WITH KEY = hostname", StmtShowTagValues},
	}
	for _, c := range cases {
		st := mustParse(t, c.q)
		if st.Kind != c.kind {
			t.Errorf("%q: kind %v", c.q, st.Kind)
		}
	}
}

func TestParseCreateDrop(t *testing.T) {
	st := mustParse(t, "CREATE DATABASE lms")
	if st.Kind != StmtCreateDatabase || st.Target != "lms" {
		t.Fatalf("%+v", st)
	}
	st = mustParse(t, "DROP DATABASE lms")
	if st.Kind != StmtDropDatabase || st.Target != "lms" {
		t.Fatalf("%+v", st)
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := ParseQuery("CREATE DATABASE a; CREATE DATABASE b")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 || stmts[0].Target != "a" || stmts[1].Target != "b" {
		t.Fatalf("%+v", stmts)
	}
}

func TestParseErrorsQL(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT value",
		"SELECT value FROM",
		"SELECT bogus(value) FROM m",
		"SELECT value FROM m WHERE",
		"SELECT value FROM m WHERE time ! 5",
		"SELECT value FROM m GROUP",
		"SELECT value FROM m GROUP BY time(abc)",
		"SELECT percentile(value) FROM m",
		"CREATE TABLE x",
		"DROP TABLE x",
		"SHOW NONSENSE",
		"SELECT value FROM m WHERE tag = unquoted",
		"EXPLAIN SELECT",
		"SELECT value FROM m LIMIT xyz",
	}
	for _, q := range bad {
		if _, err := ParseQuery(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestParseDurationUnits(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"10s", 10 * time.Second}, {"5m", 5 * time.Minute}, {"1h", time.Hour},
		{"500ms", 500 * time.Millisecond}, {"100u", 100 * time.Microsecond},
		{"42ns", 42}, {"42", 42}, {"1d", 24 * time.Hour}, {"2w", 14 * 24 * time.Hour},
		{"1.5s", 1500 * time.Millisecond},
	}
	for _, c := range cases {
		got, err := parseDuration(c.in)
		if err != nil || got != c.want {
			t.Errorf("%q: got %v err %v", c.in, got, err)
		}
	}
	if _, err := parseDuration("10x"); err == nil {
		t.Error("bad unit accepted")
	}
	if _, err := parseDuration("xs"); err == nil {
		t.Error("bad number accepted")
	}
}

func execOne(t *testing.T, store *Store, db, q string) ExecResult {
	t.Helper()
	stmts, err := ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(store, db, stmts[0])
	if err != nil {
		t.Fatalf("execute %q: %v", q, err)
	}
	return res
}

func seedStore(t *testing.T) *Store {
	t.Helper()
	store := NewStore()
	db := store.CreateDatabase("lms")
	for i := 0; i < 10; i++ {
		host := "h1"
		if i%2 == 1 {
			host = "h2"
		}
		if err := db.WritePoint(pt("cpu", map[string]string{"hostname": host}, float64(i), int64(i)*time.Second.Nanoseconds())); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestExecuteSelectRaw(t *testing.T) {
	store := seedStore(t)
	res := execOne(t, store, "lms", "SELECT value FROM cpu WHERE hostname = 'h1'")
	if len(res.Series) != 1 {
		t.Fatalf("series %d", len(res.Series))
	}
	s := res.Series[0]
	if s.Columns[0] != "time" || s.Columns[1] != "value" {
		t.Fatalf("columns %v", s.Columns)
	}
	if len(s.Values) != 5 {
		t.Fatalf("rows %d", len(s.Values))
	}
	if s.Values[0][1].(float64) != 0.0 {
		t.Fatalf("first value %v", s.Values[0][1])
	}
}

func TestExecuteSelectAggGroupBy(t *testing.T) {
	store := seedStore(t)
	res := execOne(t, store, "lms", "SELECT mean(value) FROM cpu GROUP BY hostname")
	if len(res.Series) != 2 {
		t.Fatalf("series %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Columns[1] != "mean_value" {
			t.Fatalf("columns %v", s.Columns)
		}
		if len(s.Values) != 1 {
			t.Fatalf("rows %d", len(s.Values))
		}
		host := s.Tags["hostname"]
		v := s.Values[0][1].(float64)
		if host == "h1" && v != 4 { // 0,2,4,6,8
			t.Errorf("h1 mean %v", v)
		}
		if host == "h2" && v != 5 { // 1,3,5,7,9
			t.Errorf("h2 mean %v", v)
		}
	}
}

func TestExecuteSelectGroupByStar(t *testing.T) {
	store := seedStore(t)
	res := execOne(t, store, "lms", "SELECT last(value) FROM cpu GROUP BY *")
	if len(res.Series) != 2 {
		t.Fatalf("series %d", len(res.Series))
	}
}

func TestExecuteShow(t *testing.T) {
	store := seedStore(t)
	res := execOne(t, store, "", "SHOW DATABASES")
	if res.Series[0].Values[0][0].(string) != "lms" {
		t.Fatalf("%v", res.Series[0].Values)
	}
	res = execOne(t, store, "lms", "SHOW MEASUREMENTS")
	if res.Series[0].Values[0][0].(string) != "cpu" {
		t.Fatalf("%v", res.Series[0].Values)
	}
	res = execOne(t, store, "lms", "SHOW TAG VALUES FROM cpu WITH KEY = hostname")
	if len(res.Series[0].Values) != 2 {
		t.Fatalf("%v", res.Series[0].Values)
	}
	res = execOne(t, store, "lms", "SHOW FIELD KEYS FROM cpu")
	if res.Series[0].Values[0][0].(string) != "value" {
		t.Fatalf("%v", res.Series[0].Values)
	}
}

func TestExecuteCreateDrop(t *testing.T) {
	store := NewStore()
	execOne(t, store, "", "CREATE DATABASE userdb")
	if store.DB("userdb") == nil {
		t.Fatal("create failed")
	}
	execOne(t, store, "", "DROP DATABASE userdb")
	if store.DB("userdb") != nil {
		t.Fatal("drop failed")
	}
}

func TestExecuteMissingDatabase(t *testing.T) {
	store := NewStore()
	stmts, _ := ParseQuery("SELECT value FROM cpu")
	if _, err := Execute(store, "ghost", stmts[0]); err != ErrNoDatabase {
		t.Fatalf("err %v", err)
	}
}

func TestExecuteMissingMeasurementIsEmpty(t *testing.T) {
	store := NewStore()
	store.CreateDatabase("lms")
	res := execOne(t, store, "lms", "SELECT value FROM ghost")
	if len(res.Series) != 0 {
		t.Fatalf("expected empty result, got %+v", res)
	}
}
