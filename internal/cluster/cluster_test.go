package cluster

// The 3-node in-process harness (ISSUE 8 acceptance): three real lms-db
// handlers behind httptest servers, each with its own store and its own
// cluster view, plus a coordinator standing in for the router. The suite
// pins the cluster's core invariant — scatter-gather answers are
// byte-identical to a single-node store over the same corpus, with every
// replica up AND with one replica down mid-query — and the hinted-handoff
// guarantee that no acknowledged point is lost across a peer outage.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

func testPoints(m, host string, n int) []lineproto.Point {
	base := time.Unix(2000, 0).UTC()
	pts := make([]lineproto.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, lineproto.Point{
			Measurement: m,
			Tags:        map[string]string{"hostname": host},
			Fields:      map[string]lineproto.Value{"value": lineproto.Float(float64(i))},
			Time:        base.Add(time.Duration(i) * time.Second),
		})
	}
	return pts
}

// corpusBatches mirrors the tsdb equivalence corpus (querier_test.go):
// several measurements and tag sets, floats, int64s beyond 2^53, bools,
// sparse and mixed-kind columns, and an out-of-order batch.
func corpusBatches() [][]lineproto.Point {
	base := time.Unix(1000, 0).UTC()
	var pts []lineproto.Point
	for i := 0; i < 50; i++ {
		ts := base.Add(time.Duration(i) * time.Second)
		for _, host := range []string{"h1", "h2"} {
			fields := map[string]lineproto.Value{
				"value": lineproto.Float(float64(i%7) + 0.25),
				"ticks": lineproto.Int(9007199254740993 + int64(i)), // > 2^53
				"busy":  lineproto.Bool(i%2 == 0),
			}
			if i%13 == 0 {
				fields["note"] = lineproto.String(fmt.Sprintf("mark-%d", i))
			}
			if i%5 == 0 {
				if i%2 == 0 {
					fields["mode"] = lineproto.Float(float64(i))
				} else {
					fields["mode"] = lineproto.String("burst")
				}
			}
			pts = append(pts,
				lineproto.Point{
					Measurement: "cpu",
					Tags:        map[string]string{"hostname": host, "jobid": "42"},
					Fields:      fields,
					Time:        ts,
				},
				lineproto.Point{
					Measurement: "likwid_mem_dp",
					Tags:        map[string]string{"hostname": host},
					Fields:      map[string]lineproto.Value{"dp_mflop_s": lineproto.Float(2000 + float64(i))},
					Time:        ts,
				})
		}
	}
	pts = append(pts, lineproto.Point{
		Measurement: "events",
		Tags:        map[string]string{"jobid": "42"},
		Fields:      map[string]lineproto.Value{"text": lineproto.String("jobstart")},
		Time:        base,
	})
	outOfOrder := []lineproto.Point{{
		Measurement: "cpu",
		Tags:        map[string]string{"hostname": "h1", "jobid": "42"},
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(99)},
		Time:        base.Add(-10 * time.Second),
	}}
	return [][]lineproto.Point{pts, outOfOrder}
}

// clusterEquivalenceStatements matches the tsdb equivalence suite: raw
// selects, aggregation, windowing, grouping, limits, percentiles, ghost
// measurements, metadata statements and a multi-statement script.
var clusterEquivalenceStatements = []string{
	"SELECT * FROM cpu",
	"SELECT value FROM cpu",
	"SELECT value FROM cpu WHERE hostname = 'h1' LIMIT 3",
	"SELECT ticks FROM cpu LIMIT 5",
	"SELECT mean(value) FROM cpu GROUP BY time(10s), hostname",
	"SELECT max(value) FROM cpu GROUP BY hostname",
	"SELECT count(value) FROM cpu WHERE time >= 1005000000000 AND time <= 1030000000000",
	"SELECT percentile(value, 90) FROM cpu",
	"SELECT note FROM cpu",
	"SELECT note, mode FROM cpu WHERE hostname = 'h2'",
	"SELECT count(note) FROM cpu GROUP BY time(15s)",
	"SELECT last(mode) FROM cpu GROUP BY hostname",
	"SELECT sum(dp_mflop_s) FROM likwid_mem_dp GROUP BY time(20s)",
	"SELECT text FROM events WHERE jobid = '42'",
	"SELECT value FROM ghost_measurement",
	"SHOW DATABASES",
	"SHOW MEASUREMENTS",
	"SHOW FIELD KEYS FROM cpu",
	"SHOW TAG KEYS FROM cpu",
	"SHOW TAG VALUES FROM cpu WITH KEY = hostname",
	"SHOW TAG VALUES WITH KEY = jobid",
	"SHOW MEASUREMENTS; SELECT mean(value) FROM cpu GROUP BY hostname",
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// testNode is one cluster member: a real store behind a real handler,
// with a kill switch that answers 503 while "down" — the view a peer has
// of a dead node once TCP gives up.
type testNode struct {
	store   *tsdb.Store
	handler *tsdb.Handler
	srv     *httptest.Server
	down    atomic.Bool
}

type harness struct {
	peers  []string
	nodes  map[string]*testNode
	oracle *tsdb.Store // the single-node store every answer is compared to
	coord  *Cluster    // the router's view: coordinator without a ring slice
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{nodes: map[string]*testNode{}, oracle: tsdb.NewStore()}
	short := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 3; i++ {
		tn := &testNode{store: tsdb.NewStore()}
		tn.handler = tsdb.NewHandler(tn.store)
		wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if tn.down.Load() {
				http.Error(w, "node down", http.StatusServiceUnavailable)
				return
			}
			tn.handler.ServeHTTP(w, r)
		})
		tn.srv = httptest.NewServer(wrapped)
		t.Cleanup(tn.srv.Close)
		h.peers = append(h.peers, tn.srv.URL)
		h.nodes[tn.srv.URL] = tn
	}
	for url, tn := range h.nodes {
		c, err := New(Config{
			Peers:       h.peers,
			Self:        url,
			SelfStore:   tn.store,
			Replication: cfg.Replication,
			HTTPClient:  short,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		tn.handler.Distributed = c.Querier()
	}
	ccfg := cfg
	ccfg.Peers = h.peers
	ccfg.HTTPClient = short
	if ccfg.DrainInterval == 0 {
		ccfg.DrainInterval = 10 * time.Millisecond
	}
	coord, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close() })
	h.coord = coord
	return h
}

// seed writes the corpus through the replicated sink and, identically,
// into the single-node oracle.
func (h *harness) seed(t *testing.T) {
	t.Helper()
	db := h.oracle.CreateDatabase("lms")
	sink := h.coord.SinkFor("lms")
	for _, batch := range corpusBatches() {
		if err := db.WriteBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	for _, batch := range corpusBatches() {
		if err := sink.WritePoints(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.coord.Ensure(context.Background(), "lms"); err != nil {
		t.Fatal(err)
	}
}

// checkEquivalence holds every door into the cluster — the coordinator's
// querier and each live node's coordinated /query — to byte-identical
// JSON against the single-node oracle, across epochs and chunking.
func (h *harness) checkEquivalence(t *testing.T, label string) {
	t.Helper()
	ctx := context.Background()
	oracle := tsdb.LocalQuerier{Store: h.oracle}
	type door struct {
		name string
		qr   tsdb.Querier
	}
	doors := []door{{"coordinator", h.coord.Querier()}}
	for _, url := range h.peers {
		if tn := h.nodes[url]; !tn.down.Load() {
			doors = append(doors, door{"node " + url, &tsdb.Client{BaseURL: url, Database: "lms"}})
		}
	}
	for _, epoch := range []string{"", "ns", "s"} {
		for _, chunked := range []bool{false, true} {
			for _, qtext := range clusterEquivalenceStatements {
				req := tsdb.Request{Database: "lms", RawQuery: qtext, Epoch: epoch, Chunked: chunked}
				want, err := oracle.Query(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				wantJSON := mustJSON(t, want)
				for _, d := range doors {
					got, err := d.qr.Query(ctx, req)
					if err != nil {
						t.Fatalf("%s: %s: %q (epoch=%q chunked=%v): %v", label, d.name, qtext, epoch, chunked, err)
					}
					if gotJSON := mustJSON(t, got); gotJSON != wantJSON {
						t.Fatalf("%s: %s: %q (epoch=%q chunked=%v) diverged:\n cluster: %s\n oracle:  %s",
							label, d.name, qtext, epoch, chunked, gotJSON, wantJSON)
					}
				}
			}
		}
	}
}

// TestClusterEquivalenceAndReplicaDown is acceptance (a)+(b): byte-
// identical answers over the corpus, then again with one replica killed.
func TestClusterEquivalenceAndReplicaDown(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 1})
	h.seed(t)
	h.checkEquivalence(t, "healthy")

	// Kill the primary owner of cpu — the node a naive router would have
	// sent every cpu query to.
	victim := h.coord.owners("lms", "cpu")[0]
	h.nodes[victim].down.Store(true)
	h.checkEquivalence(t, "replica down")
	if h.coord.readFailovers.Load() == 0 {
		t.Fatal("no read failovers recorded with a replica down")
	}

	h.nodes[victim].down.Store(false)
	h.checkEquivalence(t, "healed")
}

// TestClusterHintedHandoffDrains is acceptance (c): writes acknowledged
// during a replica outage reach the healed replica through the durable
// hint queue, with no acknowledged point lost.
func TestClusterHintedHandoffDrains(t *testing.T) {
	h := newHarness(t, Config{
		Replication: 2,
		WriteQuorum: 1,
		HintsDir:    t.TempDir(),
	})
	h.seed(t)

	victim := h.coord.owners("lms", "cpu")[0]
	h.nodes[victim].down.Store(true)

	// Writes during the outage: every one must still acknowledge (W=1 and
	// the second replica is up) and land in the oracle.
	db := h.oracle.DB("lms")
	sink := h.coord.SinkFor("lms")
	base := time.Unix(1100, 0).UTC()
	for i := 0; i < 5; i++ {
		batch := []lineproto.Point{
			{
				Measurement: "cpu",
				Tags:        map[string]string{"hostname": "h1", "jobid": "42"},
				Fields:      map[string]lineproto.Value{"value": lineproto.Float(1000 + float64(i))},
				Time:        base.Add(time.Duration(i) * time.Second),
			},
			{
				Measurement: "likwid_mem_dp",
				Tags:        map[string]string{"hostname": "h2"},
				Fields:      map[string]lineproto.Value{"dp_mflop_s": lineproto.Float(3000 + float64(i))},
				Time:        base.Add(time.Duration(i) * time.Second),
			},
		}
		if err := db.WriteBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := sink.WritePoints(batch); err != nil {
			t.Fatalf("write during outage not acknowledged: %v", err)
		}
	}
	if h.coord.PendingHints() == 0 {
		t.Fatal("no hints queued while a replica is down")
	}
	// Mid-outage reads already match the oracle (the healthy replica
	// answers; readOrder routes around the hinted peer).
	h.checkEquivalence(t, "during outage")

	// Heal. The background drain loop must empty the queue on its own.
	h.nodes[victim].down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for h.coord.PendingHints() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hint queue did not drain after heal (%d pending)", h.coord.PendingHints())
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.checkEquivalence(t, "after heal")

	// No acked point lost, checked replica by replica: the healed node's
	// own store must answer byte-identically to the oracle for every
	// measurement it owns.
	ctx := context.Background()
	oracle := tsdb.LocalQuerier{Store: h.oracle}
	victimLocal := tsdb.LocalQuerier{Store: h.nodes[victim].store}
	for _, m := range []string{"cpu", "likwid_mem_dp", "events"} {
		owned := false
		for _, id := range h.coord.owners("lms", m) {
			if id == victim {
				owned = true
			}
		}
		if !owned {
			continue
		}
		req := tsdb.Request{Database: "lms", RawQuery: "SELECT * FROM " + m, Epoch: "ns"}
		want, err := oracle.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := victimLocal.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if mustJSON(t, got) != mustJSON(t, want) {
			t.Fatalf("healed replica diverges on owned measurement %q:\n replica: %s\n oracle:  %s",
				m, mustJSON(t, got), mustJSON(t, want))
		}
	}
}

// TestClusterHintsSurviveCoordinatorRestart: the hint queue is durable —
// a coordinator restart recovers parked hints from its WAL and still
// drains them into the healed peer.
func TestClusterHintsSurviveCoordinatorRestart(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 1, HintsDir: t.TempDir(), DrainInterval: time.Hour})
	h.seed(t)

	victim := h.coord.owners("lms", "outage_m")[0]
	h.nodes[victim].down.Store(true)
	sink := h.coord.SinkFor("lms")
	if err := sink.WritePoints(testPoints("outage_m", "h9", 4)); err != nil {
		t.Fatal(err)
	}
	if h.coord.PendingHints() == 0 {
		t.Fatal("no hints queued")
	}
	hintsDir := h.coord.cfg.HintsDir
	if err := h.coord.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarted coordinator: same peers, same hints dir.
	coord2, err := New(Config{
		Peers:         h.peers,
		Replication:   2,
		HintsDir:      hintsDir,
		DrainInterval: time.Hour,
		HTTPClient:    &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if got := coord2.PendingHints(); got == 0 {
		t.Fatal("restart lost the parked hints")
	}
	h.nodes[victim].down.Store(false)
	if err := coord2.DrainHints(context.Background()); err != nil {
		t.Fatal(err)
	}
	if coord2.PendingHints() != 0 {
		t.Fatal("hints still pending after drain")
	}
	res, err := tsdb.LocalQuerier{Store: h.nodes[victim].store}.Query(context.Background(),
		tsdb.Request{Database: "lms", RawQuery: "SELECT value FROM outage_m", Epoch: "ns"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || len(res.Results[0].Series) != 1 || len(res.Results[0].Series[0].Values) != 4 {
		t.Fatalf("healed replica missing replayed points: %s", mustJSON(t, res))
	}
}

// TestClusterQuorumFailure: with W=R=2 and one owner dead, writes to its
// measurements must fail upstream (the router counts them dropped and the
// client retries) instead of acking below quorum.
func TestClusterQuorumFailure(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 2})
	h.seed(t)
	victim := h.coord.owners("lms", "cpu")[0]
	h.nodes[victim].down.Store(true)
	err := h.coord.SinkFor("lms").WritePoints(testPoints("cpu", "h1", 2))
	if err == nil {
		t.Fatal("write acked below write quorum")
	}
	if !strings.Contains(err.Error(), "replicas acked") {
		t.Fatalf("unexpected quorum error: %v", err)
	}
	if h.coord.quorumFailures.Load() == 0 {
		t.Fatal("quorum failure not counted")
	}
}

// TestClusterStampsZeroTimestamps: the coordinator resolves missing
// timestamps once, so replicas store identical copies and a read failover
// cannot change answers.
func TestClusterStampsZeroTimestamps(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 2})
	pts := []lineproto.Point{{
		Measurement: "zt",
		Tags:        map[string]string{"hostname": "h1"},
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(1)},
	}}
	if err := h.coord.SinkFor("lms").WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	owners := h.coord.owners("lms", "zt")
	req := tsdb.Request{Database: "lms", RawQuery: "SELECT * FROM zt", Epoch: "ns"}
	var answers []string
	for _, id := range owners {
		res, err := tsdb.LocalQuerier{Store: h.nodes[id].store}.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, mustJSON(t, res))
	}
	if answers[0] != answers[1] {
		t.Fatalf("replicas diverged on server-assigned timestamps:\n %s\n %s", answers[0], answers[1])
	}
	if pts[0].Time.IsZero() {
		// The caller's batch must not be mutated (the router publishes it
		// downstream after the sink returns).
		t.Log("caller batch left untouched")
	} else {
		t.Fatal("coordinator mutated the caller's batch")
	}
}

// TestClusterMetricsExposed: the cluster registers its series into an
// existing registry and the scrape carries the per-peer write counters,
// hint gauges and the ring generation.
func TestClusterMetricsExposed(t *testing.T) {
	h := newHarness(t, Config{Replication: 2, WriteQuorum: 1, HintsDir: t.TempDir(), DrainInterval: time.Hour})
	reg := obs.NewRegistry()
	h.coord.RegisterMetrics(reg)
	h.seed(t)
	victim := h.coord.owners("lms", "cpu")[0]
	h.nodes[victim].down.Store(true)
	_ = h.coord.SinkFor("lms").WritePoints(testPoints("cpu", "h1", 2))

	var sb strings.Builder
	reg.Render(&sb)
	scrape := sb.String()
	for _, want := range []string{
		"lms_cluster_ring_generation",
		"lms_cluster_nodes 3",
		`lms_cluster_replicated_batches_total{peer="` + victim + `",status="error"}`,
		`lms_cluster_hint_queue_depth{peer="` + victim + `"} 1`,
		"lms_cluster_hints_replayed_total",
		"lms_cluster_fanout_seconds",
		"lms_cluster_quorum_failures_total",
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("scrape missing %q:\n%s", want, scrape)
		}
	}
}
