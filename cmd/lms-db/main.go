// Command lms-db runs the standalone time-series database back-end of the
// LIKWID Monitoring Stack: an InfluxDB-compatible HTTP server
// (POST /write, GET /query, GET /ping).
//
// Usage:
//
//	lms-db -addr :8086 -db lms -retention 720h
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/tsdb"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	dbName := flag.String("db", "lms", "database to create at startup")
	retention := flag.Duration("retention", 0, "drop data older than this (0 = keep forever)")
	flag.Parse()

	store := tsdb.NewStore()
	db := store.CreateDatabase(*dbName)
	if *retention > 0 {
		db.SetRetention(*retention)
	}
	handler := tsdb.NewHandler(store)
	fmt.Printf("lms-db: serving database %q on %s\n", *dbName, *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
