package stream

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/lineproto"
	"repro/internal/pubsub"
	"repro/internal/router"
	"repro/internal/tsdb"
)

func metricPayload(t *testing.T, meas, host string, field string, v float64, sec int64) []byte {
	t.Helper()
	enc, err := lineproto.Encode([]lineproto.Point{{
		Measurement: meas,
		Tags:        map[string]string{"hostname": host, "jobid": "42"},
		Fields:      map[string]lineproto.Value{field: lineproto.Float(v)},
		Time:        time.Unix(sec, 0).UTC(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestAggregates(t *testing.T) {
	a := New(Config{})
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Handle("metrics/cpu", metricPayload(t, "cpu", "h1", "percent", v, int64(i)))
	}
	stats, processed, malformed := a.Snapshot()
	if processed != 8 || malformed != 0 {
		t.Fatalf("processed %d malformed %d", processed, malformed)
	}
	if len(stats) != 1 {
		t.Fatalf("stats %+v", stats)
	}
	s := stats[0]
	if s.Count != 8 || s.Min != 2 || s.Max != 9 || s.Last != 9 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if math.Abs(s.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev %v", s.Stddev())
	}
}

func TestAggregatesPerSeries(t *testing.T) {
	a := New(Config{})
	a.Handle("metrics/cpu", metricPayload(t, "cpu", "h1", "percent", 10, 0))
	a.Handle("metrics/cpu", metricPayload(t, "cpu", "h2", "percent", 20, 0))
	a.Handle("metrics/mem", metricPayload(t, "mem", "h1", "used", 30, 0))
	stats, _, _ := a.Snapshot()
	if len(stats) != 3 {
		t.Fatalf("series %d", len(stats))
	}
	// Sorted by measurement, field, host.
	if stats[0].Measurement != "cpu" || stats[0].Host != "h1" || stats[2].Measurement != "mem" {
		t.Fatalf("%+v", stats)
	}
}

func TestStringFieldsSkipped(t *testing.T) {
	a := New(Config{})
	enc, _ := lineproto.Encode([]lineproto.Point{{
		Measurement: "events",
		Tags:        map[string]string{"hostname": "h1"},
		Fields:      map[string]lineproto.Value{"text": lineproto.String("hello")},
		Time:        time.Unix(0, 0),
	}})
	a.Handle("metrics/events", enc)
	stats, processed, _ := a.Snapshot()
	if processed != 1 || len(stats) != 0 {
		t.Fatalf("%d %+v", processed, stats)
	}
}

func TestMalformedCounted(t *testing.T) {
	a := New(Config{})
	a.Handle("metrics/cpu", []byte("not line protocol"))
	a.Handle("meta/jobstart", []byte("not json"))
	_, _, malformed := a.Snapshot()
	if malformed != 2 {
		t.Fatalf("malformed %d", malformed)
	}
}

func TestOnlineAlarmOncePerOnset(t *testing.T) {
	rule := analysis.Rule{
		Name: "low", Measurement: "likwid_mem_dp", Field: "dp_mflop_s",
		Cond: analysis.Below, Threshold: 100, Timeout: 5 * time.Minute,
	}
	var alarms []Alarm
	a := New(Config{
		Rules:   []analysis.Rule{rule},
		OnAlarm: func(al Alarm) { alarms = append(alarms, al) },
	})
	// Healthy, then a 10-minute dip, recovery, then another dip.
	feed := func(v float64, minute int64) {
		a.Handle("metrics/likwid_mem_dp",
			metricPayload(t, "likwid_mem_dp", "h1", "dp_mflop_s", v, minute*60))
	}
	for m := int64(0); m < 5; m++ {
		feed(5000, m)
	}
	for m := int64(5); m < 16; m++ {
		feed(1, m)
	}
	for m := int64(16); m < 20; m++ {
		feed(5000, m)
	}
	for m := int64(20); m < 30; m++ {
		feed(1, m)
	}
	if len(alarms) != 2 {
		t.Fatalf("alarms %d: %+v", len(alarms), alarms)
	}
	first := alarms[0]
	if first.Host != "h1" || first.JobID != "42" {
		t.Fatalf("%+v", first)
	}
	// Alarm at minute 10 (run start minute 5 + 5m timeout).
	if first.Violation.End.Unix() != 10*60 {
		t.Fatalf("alarm time %v", first.Violation.End)
	}
	if alarms[1].Violation.Start.Unix() != 20*60 {
		t.Fatalf("second onset %v", alarms[1].Violation.Start)
	}
}

func TestJobEvents(t *testing.T) {
	var events []JobEvent
	a := New(Config{OnJob: func(ev JobEvent) { events = append(events, ev) }})
	start, _ := json.Marshal(map[string]interface{}{"jobid": "7", "username": "u", "nodes": []string{"h1"}})
	a.Handle("meta/jobstart", start)
	a.Handle("meta/jobend", start)
	if len(events) != 2 || !events[0].Start || events[1].Start {
		t.Fatalf("%+v", events)
	}
	if events[0].JobID != "7" || events[0].User != "u" {
		t.Fatalf("%+v", events[0])
	}
}

func TestFormatSnapshot(t *testing.T) {
	a := New(Config{})
	a.Handle("metrics/cpu", metricPayload(t, "cpu", "h1", "percent", 42, 0))
	out := a.FormatSnapshot()
	if !strings.Contains(out, "1 points processed") || !strings.Contains(out, "percent") {
		t.Fatalf("%q", out)
	}
}

func TestAttachToLivePublisherViaRouter(t *testing.T) {
	// Full online path: router publishes, analyzer attaches over TCP,
	// alarms fire during ingestion.
	pub, err := pubsub.NewPublisher("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	db := tsdb.NewDB("lms")
	rt, err := router.New(router.Config{Primary: router.LocalSink{DB: db}, Publisher: pub})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var alarms []Alarm
	var jobEvents []JobEvent
	rule := analysis.Rule{
		Name: "low", Measurement: "likwid_mem_dp", Field: "dp_mflop_s",
		Cond: analysis.Below, Threshold: 100, Timeout: 3 * time.Minute,
	}
	a := New(Config{
		Rules:   []analysis.Rule{rule},
		OnAlarm: func(al Alarm) { mu.Lock(); alarms = append(alarms, al); mu.Unlock() },
		OnJob:   func(ev JobEvent) { mu.Lock(); jobEvents = append(jobEvents, ev); mu.Unlock() },
	})
	if err := a.Attach(pub.Addr()); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Wait for the subscription to become active by probing through the
	// full path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = rt.Ingest([]lineproto.Point{{
			Measurement: "probe",
			Tags:        map[string]string{"hostname": "h0"},
			Fields:      map[string]lineproto.Value{"v": lineproto.Float(1)},
			Time:        time.Unix(0, 0),
		}})
		_, processed, _ := a.Snapshot()
		if processed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("analyzer never received the probe")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := rt.JobStart(router.JobSignal{JobID: "9", User: "u", Nodes: []string{"h1"}}); err != nil {
		t.Fatal(err)
	}
	for m := int64(0); m < 6; m++ {
		err := rt.Ingest([]lineproto.Point{{
			Measurement: "likwid_mem_dp",
			Tags:        map[string]string{"hostname": "h1"},
			Fields:      map[string]lineproto.Value{"dp_mflop_s": lineproto.Float(1)},
			Time:        time.Unix(m*60, 0),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		nAlarms, nJobs := len(alarms), len(jobEvents)
		mu.Unlock()
		if nAlarms > 0 && nJobs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alarms %d jobEvents %d", nAlarms, nJobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if alarms[0].Host != "h1" || alarms[0].JobID != "9" {
		t.Fatalf("%+v", alarms[0])
	}
	if jobEvents[0].JobID != "9" || !jobEvents[0].Start {
		t.Fatalf("%+v", jobEvents[0])
	}
}

func TestConcurrentHandle(t *testing.T) {
	a := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			host := fmt.Sprintf("h%d", g)
			for i := 0; i < 100; i++ {
				a.Handle("metrics/cpu", metricPayload(t, "cpu", host, "percent", float64(i), int64(i)))
			}
		}(g)
	}
	wg.Wait()
	stats, processed, _ := a.Snapshot()
	if processed != 800 || len(stats) != 8 {
		t.Fatalf("processed %d series %d", processed, len(stats))
	}
	for _, s := range stats {
		if s.Count != 100 {
			t.Fatalf("%+v", s)
		}
	}
}
