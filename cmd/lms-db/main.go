// Command lms-db runs the standalone time-series database back-end of the
// LIKWID Monitoring Stack: an InfluxDB-compatible HTTP server
// (POST /write, GET /query, GET /ping) that also exposes its own health
// on GET /metrics (Prometheus text format, DESIGN.md §10).
//
// Ingest is bounded: -max-body-mb refuses oversized /write bodies with
// 413, and -max-inflight-reqs / -max-inflight-mb shed excess concurrent
// load with 429 + Retry-After. -slow-query logs queries above a latency
// threshold.
//
// The store is shard-partitioned per database for multi-core ingest; the
// -shards flag overrides the lock-shard count (default: GOMAXPROCS).
//
// With -data-dir the store is durable (DESIGN.md §9): batches are logged
// to a write-ahead log before they are acknowledged (-fsync selects the
// sync policy), checkpoints persist the columnar state, and a restart
// recovers every database in the directory. -segment-bytes and
// -checkpoint-bytes tune WAL rotation and checkpoint cadence (the chaos
// harness shrinks both so crash-kills land mid-checkpoint). SIGINT/SIGTERM shut the
// server down gracefully: in-flight requests finish, the WAL is flushed
// and a final checkpoint is written.
//
// Usage:
//
//	lms-db -addr :8086 -db lms -retention 720h -shards 8 \
//	       -data-dir /var/lib/lms-db -fsync batch
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
)

func main() { cli.Main("lms-db", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-db", flag.ContinueOnError)
	addr := fs.String("addr", ":8086", "listen address")
	dbName := fs.String("db", "lms", "database to create at startup")
	retention := fs.Duration("retention", 0, "drop data older than this (0 = keep forever)")
	shards := fs.Int("shards", 0, "lock shards per database (0 = GOMAXPROCS)")
	dataDir := fs.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	fsync := fs.String("fsync", "batch", "WAL fsync policy with -data-dir: batch, interval or off")
	segmentBytes := fs.Int64("segment-bytes", 0, "rotate WAL segments past this many bytes with -data-dir (0 = 8 MiB)")
	checkpointBytes := fs.Int64("checkpoint-bytes", 0, "checkpoint once the live WAL exceeds this many bytes with -data-dir (0 = 32 MiB)")
	slowQuery := fs.Duration("slow-query", 0, "log /query requests at least this slow (0 = off)")
	maxBodyMB := fs.Int64("max-body-mb", 0, "refuse /write bodies above this many MiB with 413 (0 = 64)")
	maxInflightMB := fs.Int64("max-inflight-mb", 0, "shed /write with 429 beyond this many MiB of in-flight bodies (0 = unlimited)")
	maxInflightReqs := fs.Int64("max-inflight-reqs", 0, "shed /write with 429 beyond this many concurrent requests (0 = unlimited)")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	policy, err := durable.ParseFsyncPolicy(*fsync)
	if err != nil {
		return cli.UsageErr(fs, "%v", err)
	}

	store, err := tsdb.OpenStore(tsdb.StoreOptions{
		ShardsPerDB: *shards,
		Durability: tsdb.Durability{
			Dir: *dataDir, Fsync: policy,
			SegmentBytes: *segmentBytes, CheckpointBytes: *checkpointBytes,
		},
	})
	if err != nil {
		return err
	}
	db, err := store.OpenDatabase(*dbName)
	if err != nil {
		return err
	}
	if *retention > 0 {
		// The startup database and every database recovered from the data
		// directory age out on the same window.
		for _, name := range store.Databases() {
			store.DB(name).SetRetention(*retention)
		}
	}
	handler := tsdb.NewHandler(store)
	handler.SlowQueryThreshold = *slowQuery
	handler.MaxBodyBytes = *maxBodyMB << 20
	handler.SetAdmission(*maxInflightReqs, *maxInflightMB<<20)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = store.Close()
		return err
	}
	fmt.Fprintf(stdout, "lms-db: serving database %q (%d shards) on %s\n",
		*dbName, db.ShardCount(), ln.Addr())
	if *dataDir != "" {
		fmt.Fprintf(stdout, "lms-db: durable storage in %s (fsync=%s, %d databases recovered)\n",
			*dataDir, policy, len(store.Databases()))
	}

	// Serve until SIGINT/SIGTERM, then shut down gracefully: stop
	// accepting, let in-flight /write and /query requests finish, flush
	// the WAL and write the final checkpoint. The final checkpoint must
	// not race an in-flight /write, hence Shutdown strictly before
	// store.Close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		_ = store.Close()
		return err
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			_ = store.Close()
			return err
		}
		if err := store.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "lms-db: shut down")
		return nil
	}
}
