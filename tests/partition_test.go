package tests

// Router-side network partition chaos (DESIGN.md §11). A scriptable TCP
// proxy sits between lms-router and lms-db and switches between three
// link conditions: pass (healthy), blackhole (bytes vanish, connections
// stay open — the nastiest partition, since nothing fails fast) and
// latency (every transfer delayed, but under the client timeout). The
// test pins the router's dropped-point accounting through the partition:
// every point of a client-visible 500 is counted dropped, every point of
// a 204 is counted forwarded and actually reaches the database, and the
// pipeline balance received == forwarded + dropped holds on /metrics and
// Stats() at every phase boundary.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/tsdb"
)

const (
	linkPass = iota
	linkBlackhole
	linkLatency
)

// flakyProxy is a byte-level TCP proxy whose link condition is checked on
// every transfer, so mode switches also apply to pooled keep-alive
// connections established earlier.
type flakyProxy struct {
	ln     net.Listener
	target string
	mode   atomic.Int32
	delay  time.Duration

	mu    sync.Mutex
	conns map[net.Conn]bool
	wg    sync.WaitGroup
}

func newFlakyProxy(t *testing.T, target string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, target: target, delay: 30 * time.Millisecond, conns: map[net.Conn]bool{}}
	p.wg.Add(1)
	go p.accept()
	t.Cleanup(p.close)
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.track(conn, up)
		p.wg.Add(2)
		go p.pipe(up, conn)
		go p.pipe(conn, up)
	}
}

func (p *flakyProxy) track(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cs {
		p.conns[c] = true
	}
}

// pipe copies src to dst honoring the link condition per chunk. In
// blackhole mode bytes are read and discarded: the sender sees a healthy
// TCP connection that never answers.
func (p *flakyProxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	defer func() {
		dst.Close()
		src.Close()
		p.mu.Lock()
		delete(p.conns, src)
		p.mu.Unlock()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			switch p.mode.Load() {
			case linkPass:
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			case linkLatency:
				time.Sleep(p.delay)
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			case linkBlackhole:
				// swallowed
			}
		}
		if err != nil {
			return
		}
	}
}

// setMode switches the link condition. Leaving blackhole closes every
// open connection: half a request may have vanished into the hole, so
// surviving conns carry corrupt HTTP framing and must be redialed.
func (p *flakyProxy) setMode(mode int32) {
	prev := p.mode.Swap(mode)
	if prev == linkBlackhole && mode != linkBlackhole {
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	}
}

func (p *flakyProxy) close() {
	_ = p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// TestChaosRouterPartition drives writes through router → proxy → db
// across the pass/blackhole/latency phases.
func TestChaosRouterPartition(t *testing.T) {
	store := tsdb.NewStore()
	dbSrv := httptest.NewServer(tsdb.NewHandler(store))
	defer dbSrv.Close()

	proxy := newFlakyProxy(t, strings.TrimPrefix(dbSrv.URL, "http://"))
	rt, err := router.New(router.Config{
		Primary: &tsdb.Client{
			BaseURL:  "http://" + proxy.addr(),
			Database: "lms",
			// Short timeout so each blackholed forward fails fast; well
			// above the latency-phase delay so slow links still succeed.
			HTTPClient: &http.Client{Timeout: 500 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	const batch = 4
	seq := 0
	write := func() int {
		body := &strings.Builder{}
		for i := 0; i < batch; i++ {
			fmt.Fprintf(body, "part value=%di %d\n", seq, int64(seq+1)*1e6)
			seq++
		}
		resp, err := http.Post(rtSrv.URL+"/write?db=lms", "text/plain", strings.NewReader(body.String()))
		if err != nil {
			t.Fatalf("write through router: %v", err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	balance := func(phase string) (recv, fwd, drop float64) {
		t.Helper()
		doc := scrape(t, rtSrv.URL)
		recv, ok1 := metricValue(doc, "lms_router_received_points_total")
		fwd, ok2 := metricValue(doc, "lms_router_forwarded_points_total")
		drop, ok3 := metricValue(doc, "lms_router_dropped_points_total")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s: router /metrics incomplete:\n%s", phase, doc)
		}
		if recv != fwd+drop {
			t.Errorf("%s: pipeline unbalanced: received %v != forwarded %v + dropped %v", phase, recv, fwd, drop)
		}
		rs, fs, ds := rt.Stats()
		if recv != float64(rs) || fwd != float64(fs) || drop != float64(ds) {
			t.Errorf("%s: /metrics (%v, %v, %v) disagrees with Stats (%d, %d, %d)",
				phase, recv, fwd, drop, rs, fs, ds)
		}
		return recv, fwd, drop
	}

	// Phase 1 — healthy link: every write forwards.
	for i := 0; i < 5; i++ {
		if code := write(); code != http.StatusNoContent {
			t.Fatalf("healthy write %d: status %d", i, code)
		}
	}
	_, fwd1, drop1 := balance("pass")
	if fwd1 != 5*batch || drop1 != 0 {
		t.Fatalf("pass phase: forwarded %v dropped %v, want %d and 0", fwd1, drop1, 5*batch)
	}

	// Phase 2 — blackhole: the db is unreachable but connections look
	// alive. Every write must come back 500 and be counted dropped,
	// point for point.
	proxy.setMode(linkBlackhole)
	failed := 0
	for i := 0; i < 3; i++ {
		switch code := write(); code {
		case http.StatusInternalServerError:
			failed++
		default:
			t.Fatalf("blackholed write %d: status %d, want 500", i, code)
		}
	}
	_, fwd2, drop2 := balance("blackhole")
	if fwd2 != fwd1 {
		t.Errorf("blackhole phase forwarded points: %v -> %v", fwd1, fwd2)
	}
	if drop2 != float64(failed*batch) {
		t.Errorf("blackhole phase: dropped %v, harness saw %d failed points", drop2, failed*batch)
	}

	// Phase 3 — heal: the partition ends, forwarding resumes with no new
	// drops.
	proxy.setMode(linkPass)
	for i := 0; i < 3; i++ {
		if code := write(); code != http.StatusNoContent {
			t.Fatalf("healed write %d: status %d", i, code)
		}
	}
	_, fwd3, drop3 := balance("heal")
	if fwd3 != fwd2+3*batch || drop3 != drop2 {
		t.Errorf("heal phase: forwarded %v dropped %v, want %v and %v", fwd3, drop3, fwd2+3*batch, drop2)
	}

	// Phase 4 — latency: a slow link under the client timeout degrades
	// nothing but speed.
	proxy.setMode(linkLatency)
	for i := 0; i < 2; i++ {
		if code := write(); code != http.StatusNoContent {
			t.Fatalf("slow write %d: status %d", i, code)
		}
	}
	_, fwd4, drop4 := balance("latency")
	if fwd4 != fwd3+2*batch || drop4 != drop3 {
		t.Errorf("latency phase: forwarded %v dropped %v, want %v and %v", fwd4, drop4, fwd3+2*batch, drop3)
	}

	// End to end: every forwarded point actually reached the database —
	// the router never counts a point forwarded that the db did not ack.
	dbDoc := scrape(t, dbSrv.URL)
	ingested, ok := metricValue(dbDoc, "lms_ingest_points_total")
	if !ok {
		t.Fatalf("db /metrics missing lms_ingest_points_total:\n%s", dbDoc)
	}
	if ingested != fwd4 {
		t.Errorf("db ingested %v points, router forwarded %v", ingested, fwd4)
	}
}
