package analysis

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func mkReport(id, user string, nodes int, hours float64, pattern Pattern, violations int) *Report {
	start := time.Unix(0, 0).UTC()
	meta := JobMeta{ID: id, User: user, Start: start, End: start.Add(time.Duration(hours * float64(time.Hour)))}
	for i := 0; i < nodes; i++ {
		meta.Nodes = append(meta.Nodes, "h"+string(rune('1'+i)))
	}
	rep := &Report{Job: meta, Classification: Classification{Pattern: pattern}}
	rep.Rows = []MetricRow{
		{
			Spec:    MetricSpec{Measurement: "cpu", Field: "percent"},
			PerNode: map[string]float64{"h1": 90},
			Stats:   ComputeStats([]float64{90}),
		},
		{
			Spec:    MetricSpec{Measurement: "likwid_mem_dp", Field: "dp_mflop_s"},
			PerNode: map[string]float64{"h1": 5000},
			Stats:   ComputeStats([]float64{5000}),
		},
	}
	for i := 0; i < violations; i++ {
		rep.Violations = append(rep.Violations, NodeViolation{
			Node: "h1",
			Violation: Violation{
				Rule:  DefaultRules()[0],
				Start: start,
				End:   start.Add(30 * time.Minute),
			},
		})
	}
	return rep
}

func TestRecordFromReport(t *testing.T) {
	rep := mkReport("1", "alice", 4, 2, PatternBandwidthBound, 2)
	rec := RecordFromReport(rep)
	if rec.JobID != "1" || rec.User != "alice" || rec.Nodes != 4 {
		t.Fatalf("%+v", rec)
	}
	if rec.Walltime != 2*time.Hour || rec.NodeHours != 8 {
		t.Fatalf("walltime %v nodehours %v", rec.Walltime, rec.NodeHours)
	}
	if !rec.Pathological || rec.Pattern != PatternBandwidthBound {
		t.Fatalf("%+v", rec)
	}
	if rec.WastedNodeHours != 1 { // 2 violations x 30 min
		t.Fatalf("wasted %v", rec.WastedNodeHours)
	}
	if math.Abs(rec.MeanCPUUtil-0.9) > 1e-9 || rec.MeanDPMFlops != 5000 {
		t.Fatalf("%+v", rec)
	}
}

func TestRecordRunningJobZeroWalltime(t *testing.T) {
	rep := mkReport("1", "a", 1, 1, PatternIdle, 0)
	rep.Job.End = rep.Job.Start.Add(-time.Hour) // inverted (running/missing)
	rec := RecordFromReport(rep)
	if rec.Walltime != 0 || rec.NodeHours != 0 {
		t.Fatalf("%+v", rec)
	}
}

func seedUsage() *UsageStats {
	var s UsageStats
	s.Add(RecordFromReport(mkReport("1", "alice", 4, 2, PatternBandwidthBound, 0)))
	s.Add(RecordFromReport(mkReport("2", "alice", 2, 1, PatternBandwidthBound, 1)))
	s.Add(RecordFromReport(mkReport("3", "bob", 8, 4, PatternComputeBound, 0)))
	s.Add(RecordFromReport(mkReport("4", "carol", 1, 10, PatternIdle, 3)))
	return &s
}

func TestPerUserAggregation(t *testing.T) {
	s := seedUsage()
	users := s.PerUser()
	if len(users) != 3 {
		t.Fatalf("users %d", len(users))
	}
	// Sorted by node-hours: bob 32, carol 10, alice 10 -> tie broken by name.
	if users[0].User != "bob" || users[0].NodeHours != 32 {
		t.Fatalf("%+v", users[0])
	}
	if users[1].User != "alice" || users[2].User != "carol" {
		t.Fatalf("%+v %+v", users[1], users[2])
	}
	alice := users[1]
	if alice.Jobs != 2 || alice.PathologicalJobs != 1 || alice.Patterns[PatternBandwidthBound] != 2 {
		t.Fatalf("%+v", alice)
	}
	if math.Abs(alice.MeanCPUUtil()-0.9) > 1e-9 {
		t.Fatalf("cpu util %v", alice.MeanCPUUtil())
	}
}

func TestClusterSummary(t *testing.T) {
	s := seedUsage()
	sum := s.Summary()
	if sum.Jobs != 4 || sum.Users != 3 {
		t.Fatalf("%+v", sum)
	}
	if sum.NodeHours != 8+2+32+10 {
		t.Fatalf("node hours %v", sum.NodeHours)
	}
	if sum.PathologicalJobs != 2 {
		t.Fatalf("patho %d", sum.PathologicalJobs)
	}
	if sum.WastedNodeHours != 0.5+1.5 {
		t.Fatalf("wasted %v", sum.WastedNodeHours)
	}
	if math.Abs(sum.BandwidthBoundShare-0.5) > 1e-9 {
		t.Fatalf("bw share %v", sum.BandwidthBoundShare)
	}
	if math.Abs(sum.ComputeBoundShare-0.25) > 1e-9 {
		t.Fatalf("compute share %v", sum.ComputeBoundShare)
	}
}

func TestUsageStatsMerge(t *testing.T) {
	// Evaluating jobs across workers and merging the partial accumulators
	// must equal the serial accumulation, whatever the split.
	serial := seedUsage()
	var a, b UsageStats
	a.Add(RecordFromReport(mkReport("1", "alice", 4, 2, PatternBandwidthBound, 0)))
	a.Add(RecordFromReport(mkReport("2", "alice", 2, 1, PatternBandwidthBound, 1)))
	b.Add(RecordFromReport(mkReport("3", "bob", 8, 4, PatternComputeBound, 0)))
	b.Add(RecordFromReport(mkReport("4", "carol", 1, 10, PatternIdle, 3)))
	var merged UsageStats
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(nil) // no-op
	if merged.Len() != serial.Len() {
		t.Fatalf("len %d != %d", merged.Len(), serial.Len())
	}
	if got, want := merged.Summary(), serial.Summary(); !reflect.DeepEqual(got, want) {
		t.Fatalf("summary mismatch:\n%+v\n%+v", got, want)
	}
	if got, want := merged.PerUser(), serial.PerUser(); !reflect.DeepEqual(got, want) {
		t.Fatalf("per-user mismatch:\n%+v\n%+v", got, want)
	}
}

func TestEmptyUsage(t *testing.T) {
	var s UsageStats
	if s.Len() != 0 {
		t.Fatal("len")
	}
	sum := s.Summary()
	if sum.Jobs != 0 || sum.BandwidthBoundShare != 0 {
		t.Fatalf("%+v", sum)
	}
	if got := s.FormatReport(); !strings.Contains(got, "0 jobs") {
		t.Fatalf("%q", got)
	}
	if len(s.PerUser()) != 0 {
		t.Fatal("per user")
	}
}

func TestFormatUsageReport(t *testing.T) {
	s := seedUsage()
	out := s.FormatReport()
	for _, want := range []string{
		"4 jobs by 3 users",
		"Pathological jobs: 2 (50%)",
		"Procurement signal: 50% bandwidth-bound vs 25% compute-bound",
		"alice", "bob", "carol",
		"bandwidth_saturation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDominantPatternDeterministic(t *testing.T) {
	p := map[Pattern]int{PatternIdle: 2, PatternComputeBound: 2}
	// Tie: lexicographically first wins, deterministically.
	if got := dominantPattern(p); got != PatternComputeBound {
		t.Fatalf("%v", got)
	}
	if got := dominantPattern(nil); got != "-" {
		t.Fatalf("%v", got)
	}
}
