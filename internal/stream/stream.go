// Package stream implements online stream analysis on the router's
// publisher feed.
//
// The paper (Sect. III-B) attaches "other tools like aggregators and
// stream analyzers" to the router via ZeroMQ: they receive every metric
// and all meta information without touching the ingest path, and the
// analysis "can be performed online to detect badly behaving jobs directly
// for instant user feedback". This package provides that consumer: an
// Analyzer subscribes to the pub/sub fabric, decodes the line-protocol
// payloads, maintains running aggregates per (measurement, field, host)
// and feeds the streaming threshold detectors, raising alarms the moment a
// rule's sustained window crosses its timeout.
package stream

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/lineproto"
	"repro/internal/pubsub"
)

// Alarm is one online rule violation, attributed to a host and (when the
// router tagged the data) a job.
type Alarm struct {
	Host      string
	JobID     string
	Violation analysis.Violation
}

// Aggregate is a running per-series summary (Welford's online algorithm
// for the variance).
type Aggregate struct {
	Count    int64
	Min, Max float64
	Mean     float64
	m2       float64
	Last     float64
}

func (a *Aggregate) observe(v float64) {
	if a.Count == 0 {
		a.Min, a.Max = v, v
	}
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
	a.Count++
	delta := v - a.Mean
	a.Mean += delta / float64(a.Count)
	a.m2 += delta * (v - a.Mean)
	a.Last = v
}

// Stddev returns the running sample standard deviation.
func (a *Aggregate) Stddev() float64 {
	if a.Count < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.Count-1))
}

// seriesKey identifies one tracked series.
type seriesKey struct {
	measurement, field, host string
}

// JobEvent is a decoded meta message (job start/end). Start is derived
// from the topic, not the payload (the payload's "start" key is the
// timestamp).
type JobEvent struct {
	Start bool     `json:"-"`
	JobID string   `json:"jobid"`
	User  string   `json:"username"`
	Nodes []string `json:"nodes"`
}

// Analyzer consumes a publisher feed. Zero value is not usable; construct
// with New.
type Analyzer struct {
	// Rules are evaluated online per host (default analysis.DefaultRules).
	rules []analysis.Rule
	// OnAlarm fires once per violation onset (not for every extension).
	onAlarm func(Alarm)
	// OnJob observes job start/end meta messages. Optional.
	onJob func(JobEvent)

	mu        sync.Mutex
	aggs      map[seriesKey]*Aggregate
	detectors map[seriesKey]*analysis.DetectStreaming
	alarmed   map[seriesKey]bool
	processed int64
	malformed int64

	sub  *pubsub.Subscriber
	done chan struct{}
}

// Config for New.
type Config struct {
	Rules   []analysis.Rule
	OnAlarm func(Alarm)
	OnJob   func(JobEvent)
}

// New builds an analyzer.
func New(cfg Config) *Analyzer {
	rules := cfg.Rules
	if rules == nil {
		rules = analysis.DefaultRules()
	}
	return &Analyzer{
		rules:     rules,
		onAlarm:   cfg.OnAlarm,
		onJob:     cfg.OnJob,
		aggs:      make(map[seriesKey]*Aggregate),
		detectors: make(map[seriesKey]*analysis.DetectStreaming),
		alarmed:   make(map[seriesKey]bool),
	}
}

// Attach connects to a publisher and consumes messages until Close (or the
// publisher disconnects). Subscribes to all metrics and all meta topics.
func (a *Analyzer) Attach(addr string) error {
	sub, err := pubsub.Dial(addr)
	if err != nil {
		return err
	}
	// meta/ first: subscription commands are processed in order, so once a
	// metrics/ message is observed, the meta/ subscription is active too
	// (callers probe readiness with a metric).
	if err := sub.Subscribe("meta/"); err != nil {
		_ = sub.Close()
		return err
	}
	if err := sub.Subscribe("metrics/"); err != nil {
		_ = sub.Close()
		return err
	}
	a.mu.Lock()
	a.sub = sub
	a.done = make(chan struct{})
	a.mu.Unlock()
	go func() {
		defer close(a.done)
		for msg := range sub.Messages() {
			a.Handle(msg.Topic, msg.Payload)
		}
	}()
	return nil
}

// Close detaches from the publisher.
func (a *Analyzer) Close() error {
	a.mu.Lock()
	sub, done := a.sub, a.done
	a.sub = nil
	a.mu.Unlock()
	if sub == nil {
		return nil
	}
	err := sub.Close()
	<-done
	return err
}

// Handle processes one published message; exported so tests and embedded
// deployments can bypass the network.
func (a *Analyzer) Handle(topic string, payload []byte) {
	switch {
	case strings.HasPrefix(topic, "metrics/"):
		pts, err := lineproto.Parse(payload)
		if err != nil {
			a.mu.Lock()
			a.malformed++
			a.mu.Unlock()
			return
		}
		for _, p := range pts {
			a.observePoint(p)
		}
	case topic == "meta/jobstart" || topic == "meta/jobend":
		var ev JobEvent
		if err := json.Unmarshal(payload, &ev); err != nil || ev.JobID == "" {
			a.mu.Lock()
			a.malformed++
			a.mu.Unlock()
			return
		}
		ev.Start = topic == "meta/jobstart"
		if a.onJob != nil {
			a.onJob(ev)
		}
	}
}

func (a *Analyzer) observePoint(p lineproto.Point) {
	host := p.Tags["hostname"]
	jobID := p.Tags["jobid"]
	a.mu.Lock()
	defer a.mu.Unlock()
	a.processed++
	for field, val := range p.Fields {
		if val.Kind() == lineproto.KindString {
			continue
		}
		v := val.FloatVal()
		key := seriesKey{p.Measurement, field, host}
		agg, ok := a.aggs[key]
		if !ok {
			agg = &Aggregate{}
			a.aggs[key] = agg
		}
		agg.observe(v)

		for _, rule := range a.rules {
			if rule.Measurement != p.Measurement || rule.Field != field {
				continue
			}
			dkey := seriesKey{rule.Name, field, host}
			det, ok := a.detectors[dkey]
			if !ok {
				det = &analysis.DetectStreaming{Rule: rule}
				a.detectors[dkey] = det
			}
			violation, fired := det.Feed(analysis.TimedValue{T: p.Time, V: v})
			if fired {
				if !a.alarmed[dkey] {
					a.alarmed[dkey] = true
					if a.onAlarm != nil {
						// Release the lock around the callback to allow
						// re-entrant Snapshot calls.
						alarm := Alarm{Host: host, JobID: jobID, Violation: violation}
						a.mu.Unlock()
						a.onAlarm(alarm)
						a.mu.Lock()
					}
				}
			} else if !det.InRun() {
				a.alarmed[dkey] = false
			}
		}
	}
}

// SeriesStats is one entry of the snapshot.
type SeriesStats struct {
	Measurement, Field, Host string
	Aggregate
}

// Snapshot returns the running aggregates sorted by series identity, plus
// processed/malformed message counts.
func (a *Analyzer) Snapshot() ([]SeriesStats, int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SeriesStats, 0, len(a.aggs))
	for k, agg := range a.aggs {
		out = append(out, SeriesStats{
			Measurement: k.measurement, Field: k.field, Host: k.host,
			Aggregate: *agg,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Measurement != b.Measurement {
			return a.Measurement < b.Measurement
		}
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		return a.Host < b.Host
	})
	return out, a.processed, a.malformed
}

// FormatSnapshot renders the aggregates as a table for operator consoles.
func (a *Analyzer) FormatSnapshot() string {
	stats, processed, malformed := a.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "stream analyzer: %d points processed, %d malformed messages\n", processed, malformed)
	for _, s := range stats {
		fmt.Fprintf(&b, "%-24s %-28s %-10s n=%-6d mean=%-12.4g min=%-12.4g max=%-12.4g last=%.4g\n",
			s.Measurement, s.Field, s.Host, s.Count, s.Mean, s.Min, s.Max, s.Last)
	}
	return b.String()
}
